// Figure 5 / Prop. 3.3: the reduction from #Bipartite-Edge-Cover to
// PHomL(⊔1WP, 1WP).
//
//  * Construction scaling: the reduction is built in PTIME — we sweep it to
//    bipartite graphs with 10^4 edges.
//  * Exactness: for every m <= 14 the probability recovered through the
//    reduction equals brute-force edge-cover counting, Pr · 2^m exactly.
//  * Hardness shape: exact solving time grows as 2^m (this is the point of
//    the reduction — the cell is #P-hard).

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "src/reductions/edge_cover_reduction.h"

namespace phom {
namespace {

void BM_Fig5_BuildReduction(benchmark::State& state) {
  Rng rng(41);
  size_t m = state.range(0);
  size_t side = std::max<size_t>(2, m / 4);
  BipartiteGraph bipartite =
      bench::BipartiteWithEdges(side, (m + side - 1) / side + 1, m, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(BuildEdgeCoverReductionLabeled(bipartite));
  }
  state.SetComplexityN(m);
}
BENCHMARK(BM_Fig5_BuildReduction)->RangeMultiplier(4)->Range(16, 1024)
    ->Unit(benchmark::kMicrosecond)->Complexity();

void ExactnessAndGrowth() {
  std::printf("\n=== Figure 5 (paper): #Bipartite-Edge-Cover -> "
              "PHomL(u1WP, 1WP), Prop. 3.3 ===\n");
  Rng rng(42);
  std::printf("%4s %10s %12s %14s %10s %12s\n", "m", "instance", "query",
              "#covers", "check", "seconds");
  for (size_t m = 4; m <= 14; m += 2) {
    // Near-complete bipartite shapes so every vertex is (very likely)
    // covered and the counts are non-trivial.
    size_t nl = m <= 4 ? 2 : 3;
    size_t nr = (m + nl - 1) / nl;
    BipartiteGraph bipartite = bench::BipartiteWithEdges(nl, nr, m, &rng);
    EdgeCoverReduction red = BuildEdgeCoverReductionLabeled(bipartite);
    PHOM_CHECK(IsOneWayPath(red.instance.graph()));
    PHOM_CHECK(Classify(red.query).all_1wp);
    auto start = std::chrono::steady_clock::now();
    Result<Rational> prob = SolveProbability(red.query, red.instance);
    double secs = bench::SecondsSince(start);
    PHOM_CHECK_MSG(prob.ok(), prob.status().ToString());
    BigInt recovered = RecoverCount(*prob, red.num_probabilistic_edges);
    BigInt expected = CountEdgeCoversBruteForce(bipartite);
    std::printf("%4zu %9zue %11zue %14s %10s %11.3fs\n", m,
                red.instance.num_edges(), red.query.num_edges(),
                recovered.ToString().c_str(),
                recovered == expected ? "exact" : "MISMATCH", secs);
    PHOM_CHECK(recovered == expected);
  }
  std::printf("(time column grows ~2x per +2 edges: the 2^m hard-cell "
              "shape)\n");

  // Construction-only scaling far beyond what exact solving can reach.
  std::printf("\nconstruction-only scaling (PTIME):\n%8s %12s %10s\n", "m",
              "instance", "seconds");
  for (size_t m : {500u, 1000u, 2500u}) {
    BipartiteGraph big = bench::BipartiteWithEdges(50, 50, m, &rng);
    auto start = std::chrono::steady_clock::now();
    EdgeCoverReduction red = BuildEdgeCoverReductionLabeled(big);
    double secs = bench::SecondsSince(start);
    std::printf("%8zu %11zue %9.3fs\n", m, red.instance.num_edges(), secs);
  }
}

}  // namespace
}  // namespace phom

int main(int argc, char** argv) {
  phom::bench::RunBenchmarks(argc, argv);
  phom::ExactnessAndGrowth();
  return 0;
}
