// Ablations over the design choices called out in DESIGN.md:
//  A. Prop. 4.10 engines: direct run-length tree DP vs. the literal paper
//     pipeline (materialized β-acyclic DNF lineage + memoized Shannon
//     expansion along the tree order).
//  B. Prop. 5.4 engine vs. the exact exponential fallback on small
//     polytrees (what tractability buys).
//  C. Prop. 4.11's minimal-interval two-pointer vs. forced fallback.
//  D. Exact-rational growth: output size (numerator+denominator bits) as a
//     function of instance size — the "hidden" cost of exact inference.
//
// Engine selection goes through the engine registry (engine.h): every
// forced variant names its engine via SolveOptions::force_engine, so these
// benches exercise exactly the dispatch path production code uses.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "src/circuits/dnnf.h"
#include "src/core/engine.h"
#include "src/lineage/dnf_compile.h"

namespace phom {
namespace {

using bench::ProperShape;
using bench::Shape;

void BM_AblationA_DwtDirectDp(benchmark::State& state) {
  Rng rng(81);
  size_t n = state.range(0);
  ProbGraph h = AttachRandomProbabilities(
      &rng, ProperShape(Shape::kDwt, n, 2, &rng), 4);
  DiGraph q = RandomOneWayPath(&rng, 4, 2);
  Solver solver;
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver.Solve(q, h));
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_AblationA_DwtDirectDp)->RangeMultiplier(2)->Range(64, 1024)
    ->Unit(benchmark::kMillisecond)->Complexity();

void BM_AblationA_DwtLineageShannon(benchmark::State& state) {
  Rng rng(81);  // same seed: identical inputs
  size_t n = state.range(0);
  ProbGraph h = AttachRandomProbabilities(
      &rng, ProperShape(Shape::kDwt, n, 2, &rng), 4);
  DiGraph q = RandomOneWayPath(&rng, 4, 2);
  SolveOptions options;
  options.force_engine = "dwt-lineage-shannon";
  Solver solver(options);
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver.Solve(q, h));
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_AblationA_DwtLineageShannon)->RangeMultiplier(2)->Range(64, 1024)
    ->Unit(benchmark::kMillisecond)->Complexity();

void BM_AblationA_DwtCompiledDnnf(benchmark::State& state) {
  // Third engine: materialize the β-acyclic lineage, compile it to a d-DNNF
  // (dnf_compile.h), evaluate the circuit — the knowledge-compilation route.
  Rng rng(81);  // same seed: identical inputs
  size_t n = state.range(0);
  ProbGraph h = AttachRandomProbabilities(
      &rng, ProperShape(Shape::kDwt, n, 2, &rng), 4);
  DiGraph q = RandomOneWayPath(&rng, 4, 2);
  std::vector<LabelId> pattern = OneWayPathLabels(q);
  for (auto _ : state) {
    MonotoneDnf lineage(0);
    Result<Rational> direct =
        SolvePathOnDwtForestViaLineage(pattern, h, &lineage);
    PHOM_CHECK(direct.ok());
    DnnfCompilation compiled = *CompileDnfToDnnf(lineage);
    benchmark::DoNotOptimize(
        DnnfProbability(compiled.circuit, compiled.root_gate, h.probs()));
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_AblationA_DwtCompiledDnnf)->RangeMultiplier(2)->Range(64, 1024)
    ->Unit(benchmark::kMillisecond)->Complexity();

void BM_AblationB_PolytreeAutomaton(benchmark::State& state) {
  Rng rng(82);
  size_t n = state.range(0);
  ProbGraph h = AttachRandomProbabilities(
      &rng, ProperShape(Shape::kPt, n, 1, &rng), 2);
  DiGraph q = MakeOneWayPath(3);
  Solver solver;
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver.Solve(q, h));
  }
}
BENCHMARK(BM_AblationB_PolytreeAutomaton)->DenseRange(8, 20, 4)
    ->Unit(benchmark::kMillisecond);

void BM_AblationB_PolytreeFallback(benchmark::State& state) {
  Rng rng(82);  // same instances as above
  size_t n = state.range(0);
  ProbGraph h = AttachRandomProbabilities(
      &rng, ProperShape(Shape::kPt, n, 1, &rng), 2);
  DiGraph q = MakeOneWayPath(3);
  SolveOptions options;
  options.force_engine = "fallback";
  Solver solver(options);
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver.Solve(q, h));
  }
}
BENCHMARK(BM_AblationB_PolytreeFallback)->DenseRange(8, 16, 4)
    ->Unit(benchmark::kMillisecond);

void BM_AblationC_2wpMinimalIntervals(benchmark::State& state) {
  Rng rng(83);
  size_t n = state.range(0);
  ProbGraph h = AttachRandomProbabilities(
      &rng, ProperShape(Shape::k2wp, n, 1, &rng), 2);
  DiGraph q = ProperShape(Shape::k2wp, 4, 1, &rng);
  Solver solver;
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver.Solve(q, h));
  }
}
BENCHMARK(BM_AblationC_2wpMinimalIntervals)->DenseRange(8, 20, 4)
    ->Unit(benchmark::kMillisecond);

void BM_AblationC_2wpFallback(benchmark::State& state) {
  Rng rng(83);
  size_t n = state.range(0);
  ProbGraph h = AttachRandomProbabilities(
      &rng, ProperShape(Shape::k2wp, n, 1, &rng), 2);
  DiGraph q = ProperShape(Shape::k2wp, 4, 1, &rng);
  SolveOptions options;
  options.force_engine = "fallback";
  Solver solver(options);
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver.Solve(q, h));
  }
}
BENCHMARK(BM_AblationC_2wpFallback)->DenseRange(8, 16, 4)
    ->Unit(benchmark::kMillisecond);

void EngineRegistryReport() {
  std::printf("\n=== Registered engines (selection order) ===\n");
  for (const Engine* e : EngineRegistry::Global().engines()) {
    std::printf("  %-24s algorithm=%-24s %s\n",
                std::string(e->name()).c_str(), ToString(e->algorithm()),
                e->exact() ? "exact" : "estimator");
  }
}

void RationalGrowthReport() {
  std::printf("\n=== Ablation D: exact-rational answer size ===\n");
  std::printf("%8s %16s %16s\n", "n", "num bits", "den bits");
  for (size_t n : {64u, 256u, 1024u, 4096u}) {
    Rng rng(84);
    ProbGraph h = AttachRandomProbabilities(
        &rng, ProperShape(Shape::kDwt, n, 1, &rng), 4);
    Result<Rational> p = SolveProbability(MakeOneWayPath(3), h);
    PHOM_CHECK_MSG(p.ok(), p.status().ToString());
    std::printf("%8zu %16llu %16llu\n", n,
                (unsigned long long)p->num().BitLength(),
                (unsigned long long)p->den().BitLength());
  }
  std::printf("(exact output size grows linearly with the instance — the\n"
              " polynomial bit-cost the complexity analysis accounts for)\n");
}

}  // namespace
}  // namespace phom

int main(int argc, char** argv) {
  phom::bench::RunBenchmarks(argc, argv);
  phom::EngineRegistryReport();
  phom::RationalGrowthReport();
  return 0;
}
