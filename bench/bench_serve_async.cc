// The asynchronous serving API (request.h/async.h) against its own
// synchronous wrappers: submit+collect vs SolveBatch on the same pool
// (results are bit-identical by construction — tests/serve_async_test.cc),
// and the deadline-miss behavior of an oversubmitted pool. NOTE: the dev
// container is single-core — locally these quantify overhead, not speedup;
// the thread scaling and realistic miss ratios are meaningful on multi-core
// CI/production hardware.

#include <benchmark/benchmark.h>

#include <chrono>
#include <utility>
#include <vector>

#include "bench/bench_util.h"
#include "src/core/eval_session.h"
#include "src/serve/async.h"
#include "src/serve/executor.h"
#include "src/serve/request.h"
#include "src/serve/shard.h"

namespace phom {
namespace {

using bench::ProperShape;
using bench::Shape;
using serve::BatchExecutor;
using serve::ExecutorOptions;
using serve::RequestClock;
using serve::SolveRequest;
using serve::SolveTicket;

/// Same serving corpus family as bench_serve_parallel.cc: one instance with
/// several components and a small-query batch over two labels.
struct Corpus {
  ProbGraph instance{0};
  std::vector<DiGraph> queries;
};

Corpus MakeCorpus(size_t components, size_t component_size, size_t batch) {
  Rng rng(20170514);
  std::vector<DiGraph> parts;
  for (size_t c = 0; c < components; ++c) {
    parts.push_back(ProperShape(Shape::k2wp, component_size, 2, &rng));
  }
  Corpus corpus;
  corpus.instance =
      AttachRandomProbabilities(&rng, DisjointUnion(parts), 4);
  for (size_t q = 0; q < batch; ++q) {
    corpus.queries.push_back(
        ProperShape(Shape::k2wp, 4 + q % 3, 2, &rng));
  }
  return corpus;
}

SolveOptions ServingOptions() {
  SolveOptions options;
  options.numeric = NumericBackend::kDouble;  // the serving regime
  return options;
}

// ---------------------------------------------------------------------------
// The sync wrapper vs the async path it is built on: measures the pure
// ticket/submission overhead (same pool, same tasks).
// ---------------------------------------------------------------------------

void BM_ServeSyncWrapperBatch(benchmark::State& state) {
  Corpus corpus = MakeCorpus(4, 24, 16);
  ExecutorOptions exec_options;
  exec_options.threads = static_cast<size_t>(state.range(0));
  BatchExecutor executor(exec_options);
  EvalSession session(corpus.instance, ServingOptions());
  executor.SolveBatch(session, corpus.queries);  // warm the context cache
  for (auto _ : state) {
    benchmark::DoNotOptimize(executor.SolveBatch(session, corpus.queries));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(corpus.queries.size()));
}
BENCHMARK(BM_ServeSyncWrapperBatch)
    ->Arg(1)->Arg(2)->Arg(8)
    ->Unit(benchmark::kMillisecond);

void BM_ServeSubmitCollect(benchmark::State& state) {
  Corpus corpus = MakeCorpus(4, 24, 16);
  ExecutorOptions exec_options;
  exec_options.threads = static_cast<size_t>(state.range(0));
  BatchExecutor executor(exec_options);
  EvalSession session(corpus.instance, ServingOptions());
  executor.SolveBatch(session, corpus.queries);  // warm-up
  for (auto _ : state) {
    std::vector<SolveTicket> tickets;
    tickets.reserve(corpus.queries.size());
    for (const DiGraph& q : corpus.queries) {
      tickets.push_back(
          executor.Submit(session, SolveRequest::BorrowQuery(q)));
    }
    benchmark::DoNotOptimize(executor.CollectHelping(tickets));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(corpus.queries.size()));
}
BENCHMARK(BM_ServeSubmitCollect)
    ->Arg(1)->Arg(2)->Arg(8)
    ->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------------------
// Deadline pressure: oversubmit a small pool with per-request deadlines and
// report the miss ratio. Tight deadlines fail fast (expired requests are
// skipped at dequeue without solving), so throughput degrades gracefully
// rather than queueing without bound.
// ---------------------------------------------------------------------------

void BM_ServeDeadlineMissRatio(benchmark::State& state) {
  const auto budget = std::chrono::microseconds(state.range(0));
  Corpus corpus = MakeCorpus(4, 24, 8);
  ExecutorOptions exec_options;
  exec_options.threads = 2;
  BatchExecutor executor(exec_options);
  EvalSession session(corpus.instance, ServingOptions());
  executor.SolveBatch(session, corpus.queries);  // warm-up
  constexpr size_t kOversubmit = 8;  // 8x the batch, one shared deadline

  int64_t missed = 0;
  int64_t total = 0;
  for (auto _ : state) {
    std::vector<SolveTicket> tickets;
    tickets.reserve(kOversubmit * corpus.queries.size());
    const RequestClock::time_point deadline = RequestClock::now() + budget;
    for (size_t round = 0; round < kOversubmit; ++round) {
      for (const DiGraph& q : corpus.queries) {
        SolveRequest request = SolveRequest::BorrowQuery(q);
        request.WithDeadline(deadline);
        tickets.push_back(executor.Submit(session, std::move(request)));
      }
    }
    for (SolveTicket& ticket : tickets) {
      Result<SolveResult> result = ticket.Take();
      ++total;
      if (!result.ok() &&
          result.status().code() == Status::Code::kDeadlineExceeded) {
        ++missed;
      }
    }
  }
  state.SetItemsProcessed(total);
  state.counters["miss_ratio"] =
      total == 0 ? 0.0 : static_cast<double>(missed) / static_cast<double>(total);
}
BENCHMARK(BM_ServeDeadlineMissRatio)
    ->Arg(50)->Arg(1000)->Arg(100000)
    ->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------------------
// Sharded submit+collect: the server's async front door end to end.
// ---------------------------------------------------------------------------

void BM_ServeShardedSubmitCollect(benchmark::State& state) {
  const size_t shards = static_cast<size_t>(state.range(0));
  Corpus corpus = MakeCorpus(2, 16, 12);
  std::vector<ProbGraph> instances(shards, corpus.instance);
  serve::ShardedServerOptions options;
  options.solve = ServingOptions();
  options.executor.threads = 4;
  serve::ShardedServer server(std::move(instances), options);

  std::vector<SolveRequest> prototype;
  for (size_t i = 0; i < corpus.queries.size(); ++i) {
    prototype.push_back(
        SolveRequest::BorrowQuery(corpus.queries[i], i % shards));
  }
  {
    std::vector<SolveRequest> warm = prototype;
    std::vector<SolveTicket> tickets = server.SubmitBatch(std::move(warm));
    server.Collect(tickets);  // warm the shared LRU
  }
  for (auto _ : state) {
    std::vector<SolveRequest> requests = prototype;
    std::vector<SolveTicket> tickets = server.SubmitBatch(std::move(requests));
    benchmark::DoNotOptimize(server.Collect(tickets));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(prototype.size()));
}
BENCHMARK(BM_ServeShardedSubmitCollect)
    ->Arg(1)->Arg(4)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace phom

int main(int argc, char** argv) {
  phom::bench::RunBenchmarks(argc, argv);
  return 0;
}
