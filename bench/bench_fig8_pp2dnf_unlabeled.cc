// Figure 8 / Prop. 5.6: the unlabeled variant of the #PP2DNF reduction —
// two-wayness in the query simulates the labels (S ↦ →→←, T ↦ →→→), so
// PHom̸L(2WP, PT) is #P-hard even though PHom̸L(DWT, PT) is PTIME
// (Prop. 5.5). This bench demonstrates exactly that contrast.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "src/reductions/edge_cover_reduction.h"
#include "src/reductions/pp2dnf_reduction.h"

namespace phom {
namespace {

void BM_Fig8_BuildReduction(benchmark::State& state) {
  Rng rng(71);
  size_t m = state.range(0);
  Pp2Dnf formula = RandomPp2Dnf(&rng, m / 2 + 1, m / 2 + 1, m);
  for (auto _ : state) {
    benchmark::DoNotOptimize(BuildPp2DnfReductionUnlabeled(formula));
  }
  state.SetComplexityN(m);
}
BENCHMARK(BM_Fig8_BuildReduction)->RangeMultiplier(4)->Range(8, 2048)
    ->Unit(benchmark::kMicrosecond)->Complexity();

void SweepAndContrast() {
  std::printf("\n=== Figure 8 (paper): #PP2DNF -> PHom!L(2WP, PT), "
              "Prop. 5.6 ===\n");
  std::printf("%8s %10s %12s %10s %10s\n", "n1+n2", "instance", "#SAT",
              "check", "seconds");
  Rng rng(72);
  for (size_t vars = 4; vars <= 10; vars += 2) {
    Pp2Dnf formula = RandomPp2Dnf(&rng, vars / 2, vars / 2, vars);
    Pp2DnfReduction r = BuildPp2DnfReductionUnlabeled(formula);
    PHOM_CHECK(IsTwoWayPath(r.query));
    PHOM_CHECK(IsPolytree(r.instance.graph()));
    PHOM_CHECK(r.instance.graph().UsesSingleLabel());
    auto start = std::chrono::steady_clock::now();
    Result<Rational> p = SolveProbability(r.query, r.instance);
    double secs = bench::SecondsSince(start);
    PHOM_CHECK_MSG(p.ok(), p.status().ToString());
    BigInt recovered = RecoverCount(*p, r.num_probabilistic_edges);
    BigInt expected = CountSatisfyingAssignments(formula);
    std::printf("%8zu %9zue %12s %10s %9.3fs\n", vars,
                r.instance.num_edges(), recovered.ToString().c_str(),
                recovered == expected ? "exact" : "MISMATCH", secs);
    PHOM_CHECK(recovered == expected);
  }

  // Contrast: replace the 2WP query by the DWT query →^|G| of the same
  // length — Prop. 5.5 makes that PTIME on the very same instances.
  std::printf("\ncontrast (the dichotomy boundary): same polytree instances, "
              "query →^k instead of the 2WP coding\n");
  std::printf("%8s %10s %12s\n", "n1+n2", "instance", "seconds");
  Rng rng2(73);
  for (size_t vars = 4; vars <= 10; vars += 2) {
    Pp2Dnf formula = RandomPp2Dnf(&rng2, vars / 2, vars / 2, vars);
    Pp2DnfReduction r = BuildPp2DnfReductionUnlabeled(formula);
    DiGraph path_query = MakeOneWayPath(r.query.num_edges());
    auto start = std::chrono::steady_clock::now();
    Result<Rational> p = SolveProbability(path_query, r.instance);
    double secs = bench::SecondsSince(start);
    PHOM_CHECK_MSG(p.ok(), p.status().ToString());
    std::printf("%8zu %9zue %11.3fs\n", vars, r.instance.num_edges(), secs);
  }
  std::printf("(PTIME flat vs. the exponential column above: two-wayness in "
              "the query is exactly what breaks tractability)\n");
}

}  // namespace
}  // namespace phom

int main(int argc, char** argv) {
  phom::bench::RunBenchmarks(argc, argv);
  phom::SweepAndContrast();
  return 0;
}
