// Figure 6 / Definition 3.5: graded DAGs and level mappings. The level
// mapping drives both query collapses (Props. 3.6 and 5.5), so its cost and
// correctness matter for every unlabeled solve.
//
//  * Scaling: AnalyzeGraded is a single BFS — linear up to 10^5 vertices.
//  * Detection: a jumping edge or a directed cycle must always be caught;
//    we verify on perturbed random graded DAGs.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"

namespace phom {
namespace {

void BM_Fig6_AnalyzeGradedDag(benchmark::State& state) {
  Rng rng(51);
  size_t n = state.range(0);
  DiGraph g = RandomGradedDag(&rng, n, 12, 4.0 / n, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(AnalyzeGraded(g));
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_Fig6_AnalyzeGradedDag)->RangeMultiplier(4)->Range(256, 65536)
    ->Unit(benchmark::kMicrosecond)->Complexity();

void BM_Fig6_AnalyzeDeepPath(benchmark::State& state) {
  size_t n = state.range(0);
  DiGraph g = MakeOneWayPath(n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(AnalyzeGraded(g));
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_Fig6_AnalyzeDeepPath)->RangeMultiplier(4)->Range(256, 65536)
    ->Unit(benchmark::kMicrosecond)->Complexity();

void DetectionSweep() {
  std::printf("\n=== Figure 6 (paper): graded DAGs & level mappings ===\n");
  Rng rng(52);
  size_t graded_ok = 0;
  size_t perturbed_caught = 0;
  size_t trials = 300;
  for (size_t t = 0; t < trials; ++t) {
    DiGraph g = RandomGradedDag(&rng, 40, 6, 0.15, 1);
    GradedAnalysis a = AnalyzeGraded(g);
    PHOM_CHECK(a.is_graded);
    ++graded_ok;
    // Verify the level-mapping property on every edge (Definition 3.5).
    for (const Edge& e : g.edges()) {
      PHOM_CHECK(a.levels[e.dst] == a.levels[e.src] - 1);
    }
    // Add a jumping edge (level difference 2) and expect detection, when a
    // suitable vertex pair exists in one component.
    bool added = false;
    for (VertexId u = 0; u < g.num_vertices() && !added; ++u) {
      for (VertexId v = 0; v < g.num_vertices() && !added; ++v) {
        if (a.levels[u] == a.levels[v] + 2 && !g.FindEdge(u, v).has_value()) {
          // Only meaningful within one connected component; adding across
          // components just shifts levels. Check by re-analysis.
          DiGraph bad = g;
          AddEdgeOrDie(&bad, u, v, 0);
          GradedAnalysis after = AnalyzeGraded(bad);
          if (!after.is_graded) {
            ++perturbed_caught;
            added = true;
          }
        }
      }
    }
  }
  std::printf("random graded DAGs analyzed: %zu (all graded, all level "
              "mappings valid)\n", graded_ok);
  std::printf("jumping-edge perturbations detected as non-graded: %zu\n",
              perturbed_caught);
  std::printf("difference-of-levels drives the collapsed query length m "
              "(Props. 3.6/5.5).\n");
}

}  // namespace
}  // namespace phom

int main(int argc, char** argv) {
  phom::bench::RunBenchmarks(argc, argv);
  phom::DetectionSweep();
  return 0;
}
