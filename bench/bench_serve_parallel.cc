// Parallel batch serving: the thread-pool BatchExecutor and the sharded
// multi-session server (src/serve/) against the serial EvalSession baseline.
// Results are bit-identical by construction (tests/serve_executor_test.cc),
// so this bench measures only the throughput axis: batch fan-out, component
// fan-out, and the cross-instance context LRU. NOTE: the dev container is
// single-core — locally these quantify overhead, not speedup; the thread
// scaling is meaningful on multi-core CI/production hardware.

#include <benchmark/benchmark.h>

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "bench/bench_util.h"
#include "src/core/eval_session.h"
#include "src/serve/executor.h"
#include "src/serve/mpmc_queue.h"
#include "src/serve/relaxed_queue.h"
#include "src/serve/shard.h"
#include "src/serve/work_steal_deque.h"

namespace phom {
namespace {

using bench::ProperShape;
using bench::Shape;
using serve::BatchExecutor;
using serve::ExecutorOptions;
using serve::ShardedServer;
using serve::ShardedServerOptions;
using serve::ShardRequest;

/// A serving corpus: one instance with several components (the within-query
/// parallel units) and a small-query batch over two labels.
struct Corpus {
  ProbGraph instance{0};
  std::vector<DiGraph> queries;
};

Corpus MakeCorpus(size_t components, size_t component_size, size_t batch) {
  Rng rng(20170514);
  std::vector<DiGraph> parts;
  for (size_t c = 0; c < components; ++c) {
    parts.push_back(ProperShape(Shape::k2wp, component_size, 2, &rng));
  }
  Corpus corpus;
  corpus.instance =
      AttachRandomProbabilities(&rng, DisjointUnion(parts), 4);
  for (size_t q = 0; q < batch; ++q) {
    corpus.queries.push_back(
        ProperShape(Shape::k2wp, 4 + q % 3, 2, &rng));
  }
  return corpus;
}

SolveOptions ServingOptions() {
  SolveOptions options;
  options.numeric = NumericBackend::kDouble;  // the serving regime
  return options;
}

// ---------------------------------------------------------------------------
// Serial baseline vs executor at varying thread counts.
// ---------------------------------------------------------------------------

void BM_ServeSerialBatch(benchmark::State& state) {
  Corpus corpus = MakeCorpus(4, 24, 16);
  EvalSession session(corpus.instance, ServingOptions());
  session.SolveBatch(corpus.queries);  // warm the context cache
  for (auto _ : state) {
    benchmark::DoNotOptimize(session.SolveBatch(corpus.queries));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(corpus.queries.size()));
}
BENCHMARK(BM_ServeSerialBatch)->Unit(benchmark::kMillisecond);

void BM_ServeExecutorBatch(benchmark::State& state) {
  Corpus corpus = MakeCorpus(4, 24, 16);
  ExecutorOptions exec_options;
  exec_options.threads = static_cast<size_t>(state.range(0));
  BatchExecutor executor(exec_options);
  EvalSession session(corpus.instance, ServingOptions());
  executor.SolveBatch(session, corpus.queries);  // warm-up
  for (auto _ : state) {
    benchmark::DoNotOptimize(executor.SolveBatch(session, corpus.queries));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(corpus.queries.size()));
}
BENCHMARK(BM_ServeExecutorBatch)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

void BM_ServeExecutorNoComponentSplit(benchmark::State& state) {
  // Isolates the within-query fan-out: same pool, whole-query tasks only.
  Corpus corpus = MakeCorpus(4, 24, 16);
  ExecutorOptions exec_options;
  exec_options.threads = static_cast<size_t>(state.range(0));
  exec_options.split_components = false;
  BatchExecutor executor(exec_options);
  EvalSession session(corpus.instance, ServingOptions());
  executor.SolveBatch(session, corpus.queries);
  for (auto _ : state) {
    benchmark::DoNotOptimize(executor.SolveBatch(session, corpus.queries));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(corpus.queries.size()));
}
BENCHMARK(BM_ServeExecutorNoComponentSplit)
    ->Arg(2)->Arg(8)
    ->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------------------
// Scheduling-core contenders. Two layers: raw per-op costs of the three
// task stores (global Vyukov MPMC, Chase–Lev deque, relaxed block queue),
// then the executor measured end to end under each dispatch shape — the
// pre-rebuild single global FIFO vs per-worker deques + stealing vs the
// relaxed multi-block injection queue — on a dispatch-heavy corpus (many
// small componentwise queries) where per-dispatch overhead dominates.
// ---------------------------------------------------------------------------

void BM_QueueOpGlobalMpmc(benchmark::State& state) {
  serve::MpmcQueue<uint64_t> queue(1024);
  uint64_t v = 0;
  uint64_t out = 0;
  for (auto _ : state) {
    for (int i = 0; i < 64; ++i) queue.TryPush(v++);
    for (int i = 0; i < 64; ++i) queue.TryPop(&out);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_QueueOpGlobalMpmc);

void BM_QueueOpDequeOwner(benchmark::State& state) {
  // Owner-side push/pop round trip. Nodes are recycled through a pool so
  // the numbers measure the deque, not the allocator.
  serve::WorkStealDeque<uint64_t> deque(1024);
  std::vector<std::unique_ptr<uint64_t>> pool;
  for (uint64_t i = 0; i < 64; ++i) pool.push_back(std::make_unique<uint64_t>(i));
  for (auto _ : state) {
    for (int i = 0; i < 64; ++i) deque.PushBottom(pool[i]);
    for (int i = 0; i < 64; ++i) deque.PopBottom(&pool[i]);
    benchmark::DoNotOptimize(pool.data());
  }
  state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_QueueOpDequeOwner);

void BM_QueueOpDequeSteal(benchmark::State& state) {
  // Thief-side path (uncontended): push at the bottom, steal from the top.
  serve::WorkStealDeque<uint64_t> deque(1024);
  std::vector<std::unique_ptr<uint64_t>> pool;
  for (uint64_t i = 0; i < 64; ++i) pool.push_back(std::make_unique<uint64_t>(i));
  for (auto _ : state) {
    for (int i = 0; i < 64; ++i) deque.PushBottom(pool[i]);
    for (int i = 0; i < 64; ++i) deque.TrySteal(&pool[i]);
    benchmark::DoNotOptimize(pool.data());
  }
  state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_QueueOpDequeSteal);

void BM_QueueOpRelaxedBlocks(benchmark::State& state) {
  serve::RelaxedBlockQueue<uint64_t> queue(1024,
                                           static_cast<size_t>(state.range(0)));
  uint64_t v = 0;
  uint64_t out = 0;
  for (auto _ : state) {
    for (int i = 0; i < 64; ++i) queue.TryPush(v++);
    for (int i = 0; i < 64; ++i) queue.TryPop(&out);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_QueueOpRelaxedBlocks)->Arg(1)->Arg(8)->ArgName("blocks");

/// Executor dispatch shapes for the contender run.
///   0 = the pre-rebuild core: one global strict-FIFO queue, no stealing
///   1 = per-worker deques + randomized stealing (strict-FIFO injection)
///   2 = relaxed multi-block injection only, no stealing
void BM_ServeDispatchContender(benchmark::State& state) {
  const size_t threads = static_cast<size_t>(state.range(0));
  const int64_t shape = state.range(1);
  // Dispatch-heavy: 4 instance components per query and a wide batch of
  // small queries, so scheduling overhead is a visible fraction.
  Corpus corpus = MakeCorpus(4, 8, 32);
  ExecutorOptions exec_options;
  exec_options.threads = threads;
  switch (shape) {
    case 0:
      exec_options.enable_stealing = false;
      exec_options.injection_blocks = 1;
      state.SetLabel("global-mpmc");
      break;
    case 1:
      exec_options.enable_stealing = true;
      exec_options.injection_blocks = 1;
      state.SetLabel("deques+stealing");
      break;
    default:
      exec_options.enable_stealing = false;
      exec_options.injection_blocks = 8;
      state.SetLabel("relaxed-injection");
      break;
  }
  BatchExecutor executor(exec_options);
  EvalSession session(corpus.instance, ServingOptions());
  executor.SolveBatch(session, corpus.queries);  // warm-up
  for (auto _ : state) {
    benchmark::DoNotOptimize(executor.SolveBatch(session, corpus.queries));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(corpus.queries.size()));
}
BENCHMARK(BM_ServeDispatchContender)
    ->ArgNames({"threads", "shape"})
    ->ArgsProduct({{1, 2, 8}, {0, 1, 2}})
    ->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------------------
// Sharded server: cross-shard request batches and the shared context LRU.
// ---------------------------------------------------------------------------

void BM_ServeShardedRequests(benchmark::State& state) {
  const size_t shards = static_cast<size_t>(state.range(0));
  Corpus corpus = MakeCorpus(2, 16, 12);
  std::vector<ProbGraph> instances(shards, corpus.instance);

  ShardedServerOptions options;
  options.solve = ServingOptions();
  options.executor.threads = 4;
  ShardedServer server(std::move(instances), options);

  std::vector<ShardRequest> requests;
  for (size_t i = 0; i < corpus.queries.size(); ++i) {
    requests.push_back({i % shards, &corpus.queries[i]});
  }
  server.SolveRequests(requests);  // warm the shared LRU
  for (auto _ : state) {
    benchmark::DoNotOptimize(server.SolveRequests(requests));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(requests.size()));
}
BENCHMARK(BM_ServeShardedRequests)
    ->Arg(1)->Arg(2)->Arg(4)
    ->Unit(benchmark::kMillisecond);

void BM_ServeLruColdVsShared(benchmark::State& state) {
  // Cost of first-touch preparation through the shared LRU: identical
  // shards mean one shard's miss is every other shard's hit. Measures a
  // full cold start (fresh server per iteration) over `shards` identical
  // instances — the LRU makes it O(1) builds instead of O(shards).
  const size_t shards = static_cast<size_t>(state.range(0));
  Corpus corpus = MakeCorpus(2, 16, 4);
  for (auto _ : state) {
    std::vector<ProbGraph> instances(shards, corpus.instance);
    ShardedServerOptions options;
    options.solve = ServingOptions();
    options.executor.threads = 2;
    ShardedServer server(std::move(instances), options);
    std::vector<ShardRequest> requests;
    for (size_t s = 0; s < shards; ++s) {
      for (const DiGraph& q : corpus.queries) requests.push_back({s, &q});
    }
    benchmark::DoNotOptimize(server.SolveRequests(requests));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(shards));
}
BENCHMARK(BM_ServeLruColdVsShared)
    ->Arg(1)->Arg(4)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace phom

int main(int argc, char** argv) {
  phom::bench::RunBenchmarks(argc, argv);
  return 0;
}
