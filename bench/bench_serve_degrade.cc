// Graceful degradation under deadline pressure (DegradePolicy, solver.h):
// the same oversubmitted workload served with the policy OFF (deadline
// misses → DeadlineExceeded, the PR-4 behavior) vs ON (misses → budgeted
// Monte Carlo estimates). The headline counters are the deadline-miss
// ratio vs the estimate-conversion ratio per time budget: with the policy
// on, miss_ratio must read 0.0 at every budget — every would-be miss comes
// back as a degraded estimate with provenance instead. A separate sweep
// shows a single #P-hard cell (a 2^20 world enumeration) converting via
// the in-component yield points. NOTE: the dev container is single-core —
// locally these quantify the conversion behavior, not throughput; realistic
// miss ratios need multi-core CI/production hardware.

#include <benchmark/benchmark.h>

#include <chrono>
#include <utility>
#include <vector>

#include "bench/bench_util.h"
#include "src/core/eval_session.h"
#include "src/serve/async.h"
#include "src/serve/executor.h"
#include "src/serve/request.h"
#include "tests/test_util.h"

namespace phom {
namespace {

using bench::ProperShape;
using bench::Shape;
using serve::BatchExecutor;
using serve::ExecutorOptions;
using serve::RequestClock;
using serve::SolveRequest;
using serve::SolveTicket;

/// Same serving corpus family as bench_serve_async.cc.
struct Corpus {
  ProbGraph instance{0};
  std::vector<DiGraph> queries;
};

Corpus MakeCorpus(size_t components, size_t component_size, size_t batch) {
  Rng rng(20170514);
  std::vector<DiGraph> parts;
  for (size_t c = 0; c < components; ++c) {
    parts.push_back(ProperShape(Shape::k2wp, component_size, 2, &rng));
  }
  Corpus corpus;
  corpus.instance = AttachRandomProbabilities(&rng, DisjointUnion(parts), 4);
  for (size_t q = 0; q < batch; ++q) {
    corpus.queries.push_back(ProperShape(Shape::k2wp, 4 + q % 3, 2, &rng));
  }
  return corpus;
}

SolveOptions ServingOptions() {
  SolveOptions options;
  options.numeric = NumericBackend::kDouble;  // the serving regime
  return options;
}

DegradePolicy CheapPolicy() {
  DegradePolicy policy;
  policy.mode = DegradeMode::kOnDeadlineRisk;
  policy.min_samples = 128;  // a cheap floor keeps conversions fast
  return policy;
}

struct OutcomeCounts {
  int64_t total = 0;
  int64_t missed = 0;    ///< DeadlineExceeded
  int64_t degraded = 0;  ///< OK with degrade provenance
  int64_t exact = 0;     ///< OK, exact
};

/// 8x-oversubmits the corpus against a 2-thread pool under one shared
/// absolute deadline, optionally with the degrade policy, and tallies the
/// outcome of every ticket.
OutcomeCounts RunOversubmitted(BatchExecutor& executor, EvalSession& session,
                               const Corpus& corpus,
                               std::chrono::microseconds budget,
                               bool degrade) {
  constexpr size_t kOversubmit = 8;
  OutcomeCounts counts;
  std::vector<SolveTicket> tickets;
  tickets.reserve(kOversubmit * corpus.queries.size());
  const RequestClock::time_point deadline = RequestClock::now() + budget;
  for (size_t round = 0; round < kOversubmit; ++round) {
    for (const DiGraph& q : corpus.queries) {
      SolveRequest request = SolveRequest::BorrowQuery(q);
      request.WithDeadline(deadline);
      if (degrade) request.WithDegrade(CheapPolicy());
      tickets.push_back(executor.Submit(session, std::move(request)));
    }
  }
  for (SolveTicket& ticket : tickets) {
    Result<SolveResult> result = ticket.Take();
    ++counts.total;
    if (!result.ok()) {
      if (result.status().code() == Status::Code::kDeadlineExceeded) {
        ++counts.missed;
      }
    } else if (result->degrade.degraded) {
      ++counts.degraded;
    } else {
      ++counts.exact;
    }
  }
  return counts;
}

void ReportRatios(benchmark::State& state, const OutcomeCounts& counts) {
  double total = counts.total == 0 ? 1.0 : static_cast<double>(counts.total);
  state.counters["miss_ratio"] = static_cast<double>(counts.missed) / total;
  state.counters["degraded_ratio"] =
      static_cast<double>(counts.degraded) / total;
  state.counters["exact_ratio"] = static_cast<double>(counts.exact) / total;
}

// ---------------------------------------------------------------------------
// The headline sweep: miss ratio (policy off) vs conversion ratio (policy
// on) over time budgets, same pool, same workload, same deadlines.
// ---------------------------------------------------------------------------

void BM_ServeDegradePolicyOff(benchmark::State& state) {
  const auto budget = std::chrono::microseconds(state.range(0));
  Corpus corpus = MakeCorpus(4, 24, 8);
  BatchExecutor executor(ExecutorOptions{.threads = 2});
  EvalSession session(corpus.instance, ServingOptions());
  executor.SolveBatch(session, corpus.queries);  // warm the context cache
  OutcomeCounts counts;
  for (auto _ : state) {
    OutcomeCounts round = RunOversubmitted(executor, session, corpus, budget,
                                           /*degrade=*/false);
    counts.total += round.total;
    counts.missed += round.missed;
    counts.degraded += round.degraded;
    counts.exact += round.exact;
  }
  state.SetItemsProcessed(counts.total);
  ReportRatios(state, counts);
}
BENCHMARK(BM_ServeDegradePolicyOff)
    ->Arg(50)->Arg(1000)->Arg(100000)
    ->Unit(benchmark::kMillisecond);

void BM_ServeDegradePolicyOn(benchmark::State& state) {
  const auto budget = std::chrono::microseconds(state.range(0));
  Corpus corpus = MakeCorpus(4, 24, 8);
  BatchExecutor executor(ExecutorOptions{.threads = 2});
  EvalSession session(corpus.instance, ServingOptions());
  executor.SolveBatch(session, corpus.queries);  // warm-up
  OutcomeCounts counts;
  for (auto _ : state) {
    OutcomeCounts round = RunOversubmitted(executor, session, corpus, budget,
                                           /*degrade=*/true);
    counts.total += round.total;
    counts.missed += round.missed;
    counts.degraded += round.degraded;
    counts.exact += round.exact;
  }
  state.SetItemsProcessed(counts.total);
  ReportRatios(state, counts);
  // Every would-be DeadlineExceeded converts: miss_ratio must be 0.0 here,
  // with the mass moved into degraded_ratio (tight budgets) or exact_ratio
  // (generous budgets).
}
BENCHMARK(BM_ServeDegradePolicyOn)
    ->Arg(50)->Arg(1000)->Arg(100000)
    ->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------------------
// A single #P-hard cell under a budget sweep: tight budgets abort the 2^20
// world enumeration at the in-component yield points and convert; a huge
// budget lets the exact enumeration finish.
// ---------------------------------------------------------------------------

void BM_ServeDegradeHardCellBudget(benchmark::State& state) {
  const auto budget = std::chrono::microseconds(state.range(0));
  // The same hard-cell workload serve_degrade_test pins down (shared
  // builder in tests/test_util.h — the bench must measure what the tests
  // prove).
  Rng rng(424243);
  test_util::HardCellEnumerationCase hard(&rng, /*edges=*/20);
  const ProbGraph& instance = hard.instance;
  const DiGraph& query = hard.query;
  BatchExecutor executor(ExecutorOptions{.threads = 1});
  EvalSession session(instance, ServingOptions());
  int64_t degraded = 0;
  int64_t total = 0;
  for (auto _ : state) {
    SolveRequest request = SolveRequest::BorrowQuery(query);
    request.WithTimeout(budget).WithDegrade(CheapPolicy());
    SolveTicket ticket = executor.Submit(session, std::move(request));
    Result<SolveResult> result = ticket.Take();
    benchmark::DoNotOptimize(result);
    ++total;
    if (result.ok() && result->degrade.degraded) ++degraded;
  }
  state.SetItemsProcessed(total);
  state.counters["degraded_ratio"] =
      total == 0 ? 0.0 : static_cast<double>(degraded) / static_cast<double>(total);
}
BENCHMARK(BM_ServeDegradeHardCellBudget)
    ->Arg(2000)->Arg(10'000'000)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace phom

int main(int argc, char** argv) {
  phom::bench::RunBenchmarks(argc, argv);
  return 0;
}
