// Regenerates Table 2: tractability of PHomL in the connected case
// (rows 1WP, 2WP, DWT, PT, Connected; columns the same instance classes).
//
//  * PTIME cells: scaling sweeps for Prop. 4.10 (1WP queries on DWTs via
//    tree-KMP + run-length DP) and Prop. 4.11 (connected queries on 2WPs via
//    X-property AC + interval DP), in both the instance and the query size.
//  * #P-hard cells: the Prop. 4.1 reduction from #PP2DNF (see also
//    bench_fig7) plus fallback growth on (2WP, DWT) per Prop. 4.5.
//  * Prints the regenerated table.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "src/reductions/edge_cover_reduction.h"
#include "src/reductions/pp2dnf_reduction.h"

namespace phom {
namespace {

using bench::ProperShape;
using bench::Shape;

constexpr size_t kLabels = 3;

// --- PTIME cells ------------------------------------------------------------

void BM_Table2_1wpQuery_OnDwt_InstanceScaling(benchmark::State& state) {
  Rng rng(11);
  size_t n = state.range(0);
  DiGraph query = RandomOneWayPath(&rng, 4, 2);
  ProbGraph h = AttachRandomProbabilities(
      &rng, ProperShape(Shape::kDwt, n, 2, &rng), 4);
  Solver solver;
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver.Solve(query, h));
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_Table2_1wpQuery_OnDwt_InstanceScaling)
    ->RangeMultiplier(2)->Range(64, 2048)
    ->Unit(benchmark::kMillisecond)->Complexity();

void BM_Table2_1wpQuery_OnDwt_QueryScaling(benchmark::State& state) {
  Rng rng(12);
  size_t m = state.range(0);
  DiGraph query = RandomOneWayPath(&rng, m, 2);
  ProbGraph h = AttachRandomProbabilities(
      &rng, ProperShape(Shape::kDwt, 512, 2, &rng), 4);
  Solver solver;
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver.Solve(query, h));
  }
  state.SetComplexityN(m);
}
BENCHMARK(BM_Table2_1wpQuery_OnDwt_QueryScaling)
    ->RangeMultiplier(2)->Range(2, 64)
    ->Unit(benchmark::kMillisecond)->Complexity();

void BM_Table2_ConnectedQuery_On2wp_InstanceScaling(benchmark::State& state) {
  Rng rng(13);
  size_t n = state.range(0);
  DiGraph query = ProperShape(Shape::kPt, 6, kLabels, &rng);
  ProbGraph h = AttachRandomProbabilities(
      &rng, ProperShape(Shape::k2wp, n, kLabels, &rng), 4);
  Solver solver;
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver.Solve(query, h));
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_Table2_ConnectedQuery_On2wp_InstanceScaling)
    ->RangeMultiplier(2)->Range(32, 512)
    ->Unit(benchmark::kMillisecond)->Complexity();

void BM_Table2_ConnectedQuery_On2wp_QueryScaling(benchmark::State& state) {
  Rng rng(14);
  size_t qsize = state.range(0);
  DiGraph query = RandomTwoWayPath(&rng, qsize, 2);
  ProbGraph h = AttachRandomProbabilities(
      &rng, ProperShape(Shape::k2wp, 128, 2, &rng), 4);
  Solver solver;
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver.Solve(query, h));
  }
  state.SetComplexityN(qsize);
}
BENCHMARK(BM_Table2_ConnectedQuery_On2wp_QueryScaling)
    ->RangeMultiplier(2)->Range(2, 64)
    ->Unit(benchmark::kMillisecond)->Complexity();

// --- Hard-cell evidence -------------------------------------------------------

void HardCellDemo() {
  std::printf(
      "\n--- #P-hard cell (1WP, PT): Prop. 4.1 reduction from #PP2DNF ---\n");
  std::printf("%8s %10s %14s %10s\n", "n1+n2", "worlds", "check", "seconds");
  Rng rng(15);
  for (size_t vars = 4; vars <= 12; vars += 2) {
    Pp2Dnf formula = RandomPp2Dnf(&rng, vars / 2, vars / 2, vars);
    Pp2DnfReduction red = BuildPp2DnfReductionLabeled(formula);
    auto start = std::chrono::steady_clock::now();
    Result<Rational> prob = SolveProbability(red.query, red.instance);
    double secs = bench::SecondsSince(start);
    PHOM_CHECK_MSG(prob.ok(), prob.status().ToString());
    BigInt recovered = RecoverCount(*prob, red.num_probabilistic_edges);
    bool exact = recovered == CountSatisfyingAssignments(formula);
    std::printf("%8zu %10llu %14s %9.3fs\n", vars,
                (unsigned long long)(1ull << vars),
                exact ? "exact" : "MISMATCH", secs);
    PHOM_CHECK(exact);
  }

  std::printf(
      "\n--- #P-hard cell (2WP, DWT): Prop. 4.5 — fallback growth ---\n");
  std::printf("%8s %10s %10s\n", "edges", "worlds", "seconds");
  for (size_t n = 8; n <= 16; n += 2) {
    Rng local(16);
    ProbGraph h = AttachRandomProbabilities(
        &local, ProperShape(Shape::kDwt, n + 1, 2, &local), 2);
    DiGraph query = ProperShape(Shape::k2wp, 4, 2, &local);
    auto start = std::chrono::steady_clock::now();
    SolveOptions options;
    options.fallback.max_uncertain_edges = 24;
    Result<Rational> p = SolveProbability(query, h, options);
    double secs = bench::SecondsSince(start);
    PHOM_CHECK_MSG(p.ok(), p.status().ToString());
    std::printf("%8zu %10llu %9.3fs\n", n,
                (unsigned long long)(1ull << n), secs);
  }
}

// --- The regenerated table ----------------------------------------------------

void PrintTable2() {
  Rng rng(17);
  const std::vector<std::pair<std::string, Shape>> axes = {
      {"1WP", Shape::k1wp},
      {"2WP", Shape::k2wp},
      {"DWT", Shape::kDwt},
      {"PT", Shape::kPt},
      {"Connected", Shape::kConnected},
  };
  std::vector<std::string> names;
  for (const auto& [n, s] : axes) names.push_back(n);
  std::vector<bench::TableCell> cells;
  for (const auto& [rname, rshape] : axes) {
    for (const auto& [cname, cshape] : axes) {
      // Two labels keep the problem genuinely labeled after restriction.
      DiGraph query = ProperShape(rshape, 5, 2, &rng);
      while (query.UsedLabels().size() < 2) {
        query = ProperShape(rshape, 5, 2, &rng);
      }
      bench::TableCell cell;
      cell.row = rname;
      cell.col = cname;
      cell.analysis = AnalyzeCase(
          query, ProbGraph::Certain(ProperShape(cshape, 6, 2, &rng)));
      size_t n = cell.analysis.tractable ? 256 : 8;
      ProbGraph h = AttachRandomProbabilities(
          &rng, ProperShape(cshape, n, 2, &rng), 3);
      auto start = std::chrono::steady_clock::now();
      SolveOptions options;
      options.fallback.max_uncertain_edges = 24;
      Result<SolveResult> result = Solver(options).Solve(query, h);
      if (result.ok()) cell.solve_seconds = bench::SecondsSince(start);
      cells.push_back(std::move(cell));
    }
  }
  bench::PrintTable("Table 2 (paper): PHomL, connected case — regenerated",
                    names, names, cells);
  std::printf(
      "(PTIME cells solved at instance size 256; hard cells at size 8 via "
      "the exact exponential fallback.)\n");
}

}  // namespace
}  // namespace phom

int main(int argc, char** argv) {
  phom::bench::RunBenchmarks(argc, argv);
  phom::HardCellDemo();
  phom::PrintTable2();
  return 0;
}
