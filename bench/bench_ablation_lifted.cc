// Ablations for the UCQ front door (src/lifted/): what the Dalvi–Suciu
// safe-plan compiler buys and what its pieces cost.
//  A. Independent-union plans: k label-disjoint disjuncts, each leaf a
//     PTIME 1WP solve on its own label-restricted instance slice.
//  B. Inclusion–exclusion plans: k pairwise-entangled two-label disjuncts
//     (2^k - 1 engine-solved units), leaves in PTIME cells — against the
//     SAME union with every unit forced through the exponential fallback
//     engine, and against whole-union Monte Carlo sampling.
//  C. Compile cost: PrepareUcq alone (normalization + subsumption checks +
//     plan construction), the per-query price of the front door.
//
// Engine selection goes through the ordinary registry: the lifted engine is
// auto-matched for UCQ plans, and force_engine reaches the plan UNITS, so
// these benches exercise exactly the production dispatch path.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "src/graph/ucq.h"
#include "src/lifted/lift.h"
#include "src/lifted/plan.h"

namespace phom {
namespace {

/// k label-disjoint 1WP disjuncts: label j's disjunct is the 2-edge path
/// j,j. Groups are singletons, so the plan is iunion(L0, ..., Lk-1).
Ucq LabelDisjointUnion(size_t k) {
  Ucq ucq;
  for (size_t j = 0; j < k; ++j) {
    LabelId l = static_cast<LabelId>(j);
    ucq.disjuncts.push_back(MakeLabeledPath({l, l}));
  }
  return ucq;
}

/// One 3-edge path per label, disjointly: each leaf's label-restricted
/// context is a single tiny 1WP component.
ProbGraph PerLabelPathInstance(size_t labels, Rng* rng) {
  std::vector<DiGraph> parts;
  for (size_t j = 0; j < labels; ++j) {
    LabelId l = static_cast<LabelId>(j);
    parts.push_back(MakeLabeledPath({l, l, l}));
  }
  return AttachRandomProbabilities(rng, DisjointUnion(parts), 4);
}

/// k pairwise-entangled disjuncts over the SHARED labels {0, 1}: the four
/// 2-step orientation patterns are pairwise hom-incomparable, so none is
/// subsumed and the compiler builds one inclusion–exclusion group with
/// 2^k - 1 units.
Ucq EntangledUnion(size_t k) {
  PHOM_CHECK(k <= 4);
  Ucq ucq;
  for (size_t j = 0; j < k; ++j) {
    std::vector<TwoWayStep> steps(2);
    steps[0].label = 0;
    steps[0].forward = (j & 1) == 0;
    steps[1].label = 1;
    steps[1].forward = (j & 2) == 0;
    ucq.disjuncts.push_back(MakeTwoWayPath(steps));
  }
  return ucq;
}

ProbGraph TwoWayPathInstance(size_t edges, Rng* rng) {
  return AttachRandomProbabilities(rng, RandomTwoWayPath(rng, edges, 2), 4);
}

// ---------------------------------------------------------------------------
// A. Independent-union plans, k label-disjoint disjuncts.
// ---------------------------------------------------------------------------

void BM_UcqLifted_IndependentUnion(benchmark::State& state) {
  Rng rng(91);
  size_t k = state.range(0);
  ProbGraph h = PerLabelPathInstance(k, &rng);
  Ucq ucq = LabelDisjointUnion(k);
  Solver solver;
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver.SolveUcq(ucq, h));
  }
  state.SetComplexityN(k);
}
BENCHMARK(BM_UcqLifted_IndependentUnion)->RangeMultiplier(2)->Range(2, 16)
    ->Unit(benchmark::kMicrosecond)->Complexity();

// ---------------------------------------------------------------------------
// B. Inclusion–exclusion plans: lifted vs forced fallback vs Monte Carlo.
// ---------------------------------------------------------------------------

void BM_UcqLifted_InclusionExclusion(benchmark::State& state) {
  Rng rng(92);
  size_t k = state.range(0);
  ProbGraph h = TwoWayPathInstance(14, &rng);
  Ucq ucq = EntangledUnion(k);
  Solver solver;
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver.SolveUcq(ucq, h));
  }
  state.SetComplexityN(k);
}
BENCHMARK(BM_UcqLifted_InclusionExclusion)->DenseRange(2, 4, 1)
    ->Unit(benchmark::kMicrosecond)->Complexity();

void BM_UcqForcedFallbackUnits(benchmark::State& state) {
  Rng rng(92);  // same seed: identical instance and union
  size_t k = state.range(0);
  ProbGraph h = TwoWayPathInstance(14, &rng);
  Ucq ucq = EntangledUnion(k);
  SolveOptions options;
  options.force_engine = "fallback";
  Solver solver(options);
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver.SolveUcq(ucq, h));
  }
  state.SetComplexityN(k);
}
BENCHMARK(BM_UcqForcedFallbackUnits)->DenseRange(2, 4, 1)
    ->Unit(benchmark::kMillisecond)->Complexity();

void BM_UcqForcedMonteCarlo(benchmark::State& state) {
  Rng rng(92);  // same seed: identical instance and union
  ProbGraph h = TwoWayPathInstance(14, &rng);
  Ucq ucq = EntangledUnion(3);
  SolveOptions options;
  options.force_engine = "monte-carlo";
  options.monte_carlo.samples = 20'000;
  Solver solver(options);
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver.SolveUcq(ucq, h));
  }
}
BENCHMARK(BM_UcqForcedMonteCarlo)->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------------------
// C. Compile cost: PrepareUcq alone.
// ---------------------------------------------------------------------------

void BM_UcqPrepareCompile(benchmark::State& state) {
  Rng rng(93);
  size_t k = state.range(0);
  ProbGraph h = PerLabelPathInstance(k, &rng);
  Ucq ucq = LabelDisjointUnion(k);
  for (auto _ : state) {
    benchmark::DoNotOptimize(lifted::PrepareUcq(ucq, h));
  }
  state.SetComplexityN(k);
}
BENCHMARK(BM_UcqPrepareCompile)->RangeMultiplier(2)->Range(2, 16)
    ->Unit(benchmark::kMicrosecond)->Complexity();

void LiftedPlanReport() {
  Rng rng(94);
  std::printf("\n=== Lifted plans behind the ablations ===\n");
  {
    ProbGraph h = PerLabelPathInstance(4, &rng);
    PreparedProblem p = lifted::PrepareUcq(LabelDisjointUnion(4), h);
    PHOM_CHECK(p.ucq != nullptr);
    std::printf("  label-disjoint k=4: %-30s verdict=%s\n",
                lifted::FormatLiftedPlan(p.ucq->plan).c_str(),
                p.ucq->plan.lifted ? "lifted" : "not-liftable");
  }
  {
    ProbGraph h = TwoWayPathInstance(14, &rng);
    PreparedProblem p = lifted::PrepareUcq(EntangledUnion(3), h);
    PHOM_CHECK(p.ucq != nullptr);
    std::printf("  entangled k=3:      %-30s verdict=%s\n",
                lifted::FormatLiftedPlan(p.ucq->plan).c_str(),
                p.ucq->plan.lifted ? "lifted" : "not-liftable");
  }
}

}  // namespace
}  // namespace phom

int main(int argc, char** argv) {
  phom::bench::RunBenchmarks(argc, argv);
  phom::LiftedPlanReport();
  return 0;
}
