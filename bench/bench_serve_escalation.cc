// Width-aware result escalation (EscalationPolicy, solver.h;
// BatchExecutor::MaybeEscalate, serve/executor.h) and the compensated
// interval arithmetic behind it (interval_double.h):
//
//  * BM_EscalationThresholdSweep — the same interval-backend batch served
//    under a sweep of WithMaxWidth thresholds; counters report the
//    escalated ratio and the mean pre-escalation width, the time column
//    prices the exact re-runs the threshold buys. Threshold 0 = policy off
//    (the baseline row).
//  * BM_IntervalSumPlainDirected / BM_IntervalSumCompensated — the
//    compensation ablation on the accumulation shape the DP kernels share:
//    n-term disjoint-event sums under per-term outward rounding (the seed
//    arithmetic) vs the compensated DownSum/UpSum accumulators. The width
//    counter is the point: plain grows ~n ulps of the running sum,
//    compensated stays within a couple ulps total, at comparable speed.
//  * BM_EnclosureWidthCorpus — end-to-end enclosure widths of the serving
//    corpus after compensation (mean and max over the batch): the
//    regression guard for "compensated kernels measurably shrink width
//    with unchanged exact/double results".
//
// NOTE: the dev container is single-core — escalation re-runs serialize
// here; multi-core hardware overlaps them with fresh interval solves.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <utility>
#include <vector>

#include "bench/bench_util.h"
#include "src/core/eval_session.h"
#include "src/serve/async.h"
#include "src/serve/executor.h"
#include "src/serve/request.h"
#include "src/util/interval_double.h"
#include "tests/test_util.h"

namespace phom {
namespace {

using bench::ProperShape;
using bench::Shape;
using serve::BatchExecutor;
using serve::ExecutorOptions;
using serve::SolveRequest;
using serve::SolveTicket;

struct Corpus {
  ProbGraph instance{0};
  std::vector<DiGraph> queries;
};

/// Same family as bench_serve_async/degrade: a multi-component 2WP
/// instance, tractable connected queries (denominator-4 probabilities are
/// NOT dyadic-closed through the kernels, so enclosures have real width).
Corpus MakeCorpus(size_t components, size_t component_size, size_t batch) {
  Rng rng(20170514);
  std::vector<DiGraph> parts;
  for (size_t c = 0; c < components; ++c) {
    parts.push_back(ProperShape(Shape::k2wp, component_size, 2, &rng));
  }
  Corpus corpus;
  corpus.instance = AttachRandomProbabilities(&rng, DisjointUnion(parts), 3);
  for (size_t q = 0; q < batch; ++q) {
    corpus.queries.push_back(ProperShape(Shape::k2wp, 4 + q % 3, 2, &rng));
  }
  return corpus;
}

// ---------------------------------------------------------------------------
// Escalated ratio / latency vs width threshold.
// ---------------------------------------------------------------------------

void BM_EscalationThresholdSweep(benchmark::State& state) {
  // range(0) = negated decimal exponent of the threshold; 0 = policy off.
  const int exponent = static_cast<int>(state.range(0));
  const double max_width = exponent == 0 ? 0.0 : std::pow(10.0, -exponent);
  Corpus corpus = MakeCorpus(/*components=*/4, /*component_size=*/12,
                             /*batch=*/16);
  EvalSession session(corpus.instance);
  BatchExecutor executor(ExecutorOptions{.threads = 1});
  int64_t total = 0;
  int64_t escalated = 0;
  double width_before_sum = 0.0;
  for (auto _ : state) {
    std::vector<SolveTicket> tickets;
    tickets.reserve(corpus.queries.size());
    for (const DiGraph& q : corpus.queries) {
      SolveRequest request = SolveRequest::BorrowQuery(q);
      request.WithNumeric(NumericBackend::kIntervalDouble);
      if (max_width > 0.0) request.WithMaxWidth(max_width);
      tickets.push_back(executor.Submit(session, std::move(request)));
    }
    for (SolveTicket& t : tickets) {
      Result<SolveResult> r = t.Take();
      benchmark::DoNotOptimize(r);
      ++total;
      if (r.ok() && r->escalate.escalated) {
        ++escalated;
        width_before_sum += r->escalate.width_before;
      }
    }
  }
  state.SetItemsProcessed(total);
  state.counters["escalated_ratio"] =
      total == 0 ? 0.0
                 : static_cast<double>(escalated) / static_cast<double>(total);
  state.counters["mean_width_before"] =
      escalated == 0 ? 0.0 : width_before_sum / static_cast<double>(escalated);
}
BENCHMARK(BM_EscalationThresholdSweep)
    ->Arg(0)    // off: the no-escalation baseline
    ->Arg(6)    // 1e-6: loose, nothing tractable escalates
    ->Arg(12)   // 1e-12: borderline
    ->Arg(16)   // 1e-16: everything nondegenerate escalates
    ->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------------------
// Compensation ablation: plain per-term outward rounding vs DownSum/UpSum.
// ---------------------------------------------------------------------------

std::vector<double> SumTerms(size_t n) {
  // Inexact, like-signed terms of mixed magnitude — the disjoint-event
  // sums of the DP kernels (run-start states, deterministic-OR inputs).
  std::vector<double> terms;
  terms.reserve(n);
  Rng rng(424242);
  for (size_t i = 0; i < n; ++i) {
    terms.push_back(static_cast<double>(rng.UniformInt(1, 1 << 20)) /
                    std::ldexp(3.0, 21));
  }
  return terms;
}

void BM_IntervalSumPlainDirected(benchmark::State& state) {
  const std::vector<double> terms = SumTerms(state.range(0));
  double width = 0.0;
  for (auto _ : state) {
    double lo = 0.0;
    double hi = 0.0;
    for (double x : terms) {
      lo = interval_internal::Down(lo + x);
      hi = interval_internal::Up(hi + x);
    }
    width = hi - lo;
    benchmark::DoNotOptimize(width);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(terms.size()));
  state.counters["width"] = width;
}
BENCHMARK(BM_IntervalSumPlainDirected)->Arg(1 << 8)->Arg(1 << 12);

void BM_IntervalSumCompensated(benchmark::State& state) {
  const std::vector<double> terms = SumTerms(state.range(0));
  double width = 0.0;
  for (auto _ : state) {
    interval_internal::DownSum lo;
    interval_internal::UpSum hi;
    for (double x : terms) {
      lo.Add(x);
      hi.Add(x);
    }
    width = hi.Value() - lo.Value();
    benchmark::DoNotOptimize(width);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(terms.size()));
  state.counters["width"] = width;
}
BENCHMARK(BM_IntervalSumCompensated)->Arg(1 << 8)->Arg(1 << 12);

// ---------------------------------------------------------------------------
// End-to-end enclosure widths of the serving corpus.
// ---------------------------------------------------------------------------

void BM_EnclosureWidthCorpus(benchmark::State& state) {
  Corpus corpus = MakeCorpus(/*components=*/4, /*component_size=*/12,
                             /*batch=*/16);
  EvalSession session(corpus.instance);
  SolveOverrides interval;
  interval.numeric = NumericBackend::kIntervalDouble;
  double mean_width = 0.0;
  double max_width = 0.0;
  for (auto _ : state) {
    double sum = 0.0;
    double worst = 0.0;
    size_t counted = 0;
    for (const DiGraph& q : corpus.queries) {
      Result<SolveResult> r = session.Solve(q, interval);
      benchmark::DoNotOptimize(r);
      if (r.ok() && r->bound.certified) {
        const double w = r->bound.hi - r->bound.lo;
        sum += w;
        worst = std::max(worst, w);
        ++counted;
      }
    }
    mean_width = counted == 0 ? 0.0 : sum / static_cast<double>(counted);
    max_width = worst;
  }
  state.counters["mean_width"] = mean_width;
  state.counters["max_width"] = max_width;
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(corpus.queries.size()));
}
BENCHMARK(BM_EnclosureWidthCorpus)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace phom

int main(int argc, char** argv) {
  phom::bench::RunBenchmarks(argc, argv);
  return 0;
}
