// Numeric-backend ablation: exact BigInt rationals vs. IEEE doubles,
// per engine. The paper's complexity analysis charges polynomial bit-cost
// for exact arithmetic (the answer's numerator/denominator grow linearly
// with the instance); the double backend trades that for constant-width
// arithmetic — this bench quantifies the gap engine by engine, plus the
// amortization the session layer buys on top. The interval-double rows
// price the self-verifying middle ground: the same constant-width
// arithmetic run twice (outward-rounded [lo, hi] endpoints), buying a
// machine-checkable enclosure of the exact answer.

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/core/engine.h"
#include "src/core/eval_session.h"

namespace phom {
namespace {

using bench::ProperShape;
using bench::Shape;

SolveOptions WithBackend(NumericBackend numeric,
                         const std::string& engine = "") {
  SolveOptions options;
  options.numeric = numeric;
  options.force_engine = engine;
  return options;
}

// ---------------------------------------------------------------------------
// Per-engine exact vs. double on the engine's own cell.
// ---------------------------------------------------------------------------

void RunNumeric(benchmark::State& state, const DiGraph& q, const ProbGraph& h,
                const SolveOptions& options) {
  Solver solver(options);
  {
    // Fail loudly if the forced engine rejects the workload.
    Result<SolveResult> r = solver.Solve(q, h);
    PHOM_CHECK_MSG(r.ok(), r.status().ToString());
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver.Solve(q, h));
  }
  state.SetComplexityN(state.range(0));
}

void BM_Numeric2wpExact(benchmark::State& state) {
  Rng rng(91);
  ProbGraph h = AttachRandomProbabilities(
      &rng, ProperShape(Shape::k2wp, state.range(0), 1, &rng), 4);
  DiGraph q = ProperShape(Shape::k2wp, 4, 1, &rng);
  RunNumeric(state, q, h, WithBackend(NumericBackend::kExact,
                                      "connected-on-2wp"));
}
BENCHMARK(BM_Numeric2wpExact)->RangeMultiplier(2)->Range(64, 512)
    ->Unit(benchmark::kMillisecond)->Complexity();

void BM_Numeric2wpDouble(benchmark::State& state) {
  Rng rng(91);  // same seed: identical inputs
  ProbGraph h = AttachRandomProbabilities(
      &rng, ProperShape(Shape::k2wp, state.range(0), 1, &rng), 4);
  DiGraph q = ProperShape(Shape::k2wp, 4, 1, &rng);
  RunNumeric(state, q, h, WithBackend(NumericBackend::kDouble,
                                      "connected-on-2wp"));
}
BENCHMARK(BM_Numeric2wpDouble)->RangeMultiplier(2)->Range(64, 512)
    ->Unit(benchmark::kMillisecond)->Complexity();

void BM_Numeric2wpInterval(benchmark::State& state) {
  Rng rng(91);  // same seed: identical inputs
  ProbGraph h = AttachRandomProbabilities(
      &rng, ProperShape(Shape::k2wp, state.range(0), 1, &rng), 4);
  DiGraph q = ProperShape(Shape::k2wp, 4, 1, &rng);
  RunNumeric(state, q, h, WithBackend(NumericBackend::kIntervalDouble,
                                      "connected-on-2wp"));
}
BENCHMARK(BM_Numeric2wpInterval)->RangeMultiplier(2)->Range(64, 512)
    ->Unit(benchmark::kMillisecond)->Complexity();

void BM_NumericDwtExact(benchmark::State& state) {
  Rng rng(92);
  ProbGraph h = AttachRandomProbabilities(
      &rng, ProperShape(Shape::kDwt, state.range(0), 2, &rng), 4);
  DiGraph q = RandomOneWayPath(&rng, 4, 2);
  RunNumeric(state, q, h, WithBackend(NumericBackend::kExact, "path-on-dwt"));
}
BENCHMARK(BM_NumericDwtExact)->RangeMultiplier(2)->Range(64, 1024)
    ->Unit(benchmark::kMillisecond)->Complexity();

void BM_NumericDwtDouble(benchmark::State& state) {
  Rng rng(92);  // same seed: identical inputs
  ProbGraph h = AttachRandomProbabilities(
      &rng, ProperShape(Shape::kDwt, state.range(0), 2, &rng), 4);
  DiGraph q = RandomOneWayPath(&rng, 4, 2);
  RunNumeric(state, q, h, WithBackend(NumericBackend::kDouble, "path-on-dwt"));
}
BENCHMARK(BM_NumericDwtDouble)->RangeMultiplier(2)->Range(64, 1024)
    ->Unit(benchmark::kMillisecond)->Complexity();

void BM_NumericDwtInterval(benchmark::State& state) {
  Rng rng(92);  // same seed: identical inputs
  ProbGraph h = AttachRandomProbabilities(
      &rng, ProperShape(Shape::kDwt, state.range(0), 2, &rng), 4);
  DiGraph q = RandomOneWayPath(&rng, 4, 2);
  RunNumeric(state, q, h, WithBackend(NumericBackend::kIntervalDouble,
                                      "path-on-dwt"));
}
BENCHMARK(BM_NumericDwtInterval)->RangeMultiplier(2)->Range(64, 1024)
    ->Unit(benchmark::kMillisecond)->Complexity();

void BM_NumericDwtLineageExact(benchmark::State& state) {
  Rng rng(92);
  ProbGraph h = AttachRandomProbabilities(
      &rng, ProperShape(Shape::kDwt, state.range(0), 2, &rng), 4);
  DiGraph q = RandomOneWayPath(&rng, 4, 2);
  RunNumeric(state, q, h, WithBackend(NumericBackend::kExact,
                                      "dwt-lineage-shannon"));
}
BENCHMARK(BM_NumericDwtLineageExact)->RangeMultiplier(2)->Range(64, 256)
    ->Unit(benchmark::kMillisecond)->Complexity();

void BM_NumericDwtLineageDouble(benchmark::State& state) {
  Rng rng(92);  // same seed: identical inputs
  ProbGraph h = AttachRandomProbabilities(
      &rng, ProperShape(Shape::kDwt, state.range(0), 2, &rng), 4);
  DiGraph q = RandomOneWayPath(&rng, 4, 2);
  RunNumeric(state, q, h, WithBackend(NumericBackend::kDouble,
                                      "dwt-lineage-shannon"));
}
BENCHMARK(BM_NumericDwtLineageDouble)->RangeMultiplier(2)->Range(64, 256)
    ->Unit(benchmark::kMillisecond)->Complexity();

void BM_NumericDwtLineageInterval(benchmark::State& state) {
  Rng rng(92);  // same seed: identical inputs
  ProbGraph h = AttachRandomProbabilities(
      &rng, ProperShape(Shape::kDwt, state.range(0), 2, &rng), 4);
  DiGraph q = RandomOneWayPath(&rng, 4, 2);
  RunNumeric(state, q, h, WithBackend(NumericBackend::kIntervalDouble,
                                      "dwt-lineage-shannon"));
}
BENCHMARK(BM_NumericDwtLineageInterval)->RangeMultiplier(2)->Range(64, 256)
    ->Unit(benchmark::kMillisecond)->Complexity();

void BM_NumericPolytreeExact(benchmark::State& state) {
  Rng rng(93);
  ProbGraph h = AttachRandomProbabilities(
      &rng, ProperShape(Shape::kPt, state.range(0), 1, &rng), 2);
  DiGraph q = MakeOneWayPath(3);
  RunNumeric(state, q, h, WithBackend(NumericBackend::kExact,
                                      "unlabeled-polytree"));
}
BENCHMARK(BM_NumericPolytreeExact)->RangeMultiplier(2)->Range(16, 128)
    ->Unit(benchmark::kMillisecond)->Complexity();

void BM_NumericPolytreeDouble(benchmark::State& state) {
  Rng rng(93);  // same seed: identical inputs
  ProbGraph h = AttachRandomProbabilities(
      &rng, ProperShape(Shape::kPt, state.range(0), 1, &rng), 2);
  DiGraph q = MakeOneWayPath(3);
  RunNumeric(state, q, h, WithBackend(NumericBackend::kDouble,
                                      "unlabeled-polytree"));
}
BENCHMARK(BM_NumericPolytreeDouble)->RangeMultiplier(2)->Range(16, 128)
    ->Unit(benchmark::kMillisecond)->Complexity();

void BM_NumericPolytreeInterval(benchmark::State& state) {
  Rng rng(93);  // same seed: identical inputs
  ProbGraph h = AttachRandomProbabilities(
      &rng, ProperShape(Shape::kPt, state.range(0), 1, &rng), 2);
  DiGraph q = MakeOneWayPath(3);
  RunNumeric(state, q, h, WithBackend(NumericBackend::kIntervalDouble,
                                      "unlabeled-polytree"));
}
BENCHMARK(BM_NumericPolytreeInterval)->RangeMultiplier(2)->Range(16, 128)
    ->Unit(benchmark::kMillisecond)->Complexity();

void BM_NumericFallbackExact(benchmark::State& state) {
  Rng rng(94);
  ProbGraph h = AttachRandomProbabilities(
      &rng, ProperShape(Shape::k2wp, state.range(0), 1, &rng), 2);
  DiGraph q = ProperShape(Shape::k2wp, 4, 1, &rng);
  RunNumeric(state, q, h, WithBackend(NumericBackend::kExact, "fallback"));
}
BENCHMARK(BM_NumericFallbackExact)->DenseRange(8, 16, 4)
    ->Unit(benchmark::kMillisecond);

void BM_NumericFallbackDouble(benchmark::State& state) {
  Rng rng(94);  // same seed: identical inputs
  ProbGraph h = AttachRandomProbabilities(
      &rng, ProperShape(Shape::k2wp, state.range(0), 1, &rng), 2);
  DiGraph q = ProperShape(Shape::k2wp, 4, 1, &rng);
  RunNumeric(state, q, h, WithBackend(NumericBackend::kDouble, "fallback"));
}
BENCHMARK(BM_NumericFallbackDouble)->DenseRange(8, 16, 4)
    ->Unit(benchmark::kMillisecond);

void BM_NumericFallbackInterval(benchmark::State& state) {
  Rng rng(94);  // same seed: identical inputs
  ProbGraph h = AttachRandomProbabilities(
      &rng, ProperShape(Shape::k2wp, state.range(0), 1, &rng), 2);
  DiGraph q = ProperShape(Shape::k2wp, 4, 1, &rng);
  RunNumeric(state, q, h, WithBackend(NumericBackend::kIntervalDouble,
                                      "fallback"));
}
BENCHMARK(BM_NumericFallbackInterval)->DenseRange(8, 16, 4)
    ->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------------------
// Session amortization: N small queries against one instance, one-shot
// solver vs. EvalSession (cached marginalization/split/classification).
// Runs in the double backend — the serving regime the session layer is for;
// with exact rationals the arithmetic dominates and hides the prep cost.
// ---------------------------------------------------------------------------

std::vector<DiGraph> SmallQueryBatch(Rng* rng, size_t count) {
  std::vector<DiGraph> out;
  out.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    out.push_back(RandomOneWayPath(rng, 1 + i % 4, 2));
  }
  return out;
}

void BM_SessionOneShot(benchmark::State& state) {
  Rng rng(95);
  ProbGraph h = AttachRandomProbabilities(
      &rng, ProperShape(Shape::kDwt, state.range(0), 2, &rng), 4);
  std::vector<DiGraph> queries = SmallQueryBatch(&rng, 32);
  Solver solver(WithBackend(NumericBackend::kDouble));
  for (auto _ : state) {
    for (const DiGraph& q : queries) {
      benchmark::DoNotOptimize(solver.Solve(q, h));
    }
  }
  state.SetItemsProcessed(state.iterations() * queries.size());
}
BENCHMARK(BM_SessionOneShot)->RangeMultiplier(4)->Range(64, 1024)
    ->Unit(benchmark::kMillisecond);

void BM_SessionAmortized(benchmark::State& state) {
  Rng rng(95);  // same seed: identical inputs
  ProbGraph h = AttachRandomProbabilities(
      &rng, ProperShape(Shape::kDwt, state.range(0), 2, &rng), 4);
  std::vector<DiGraph> queries = SmallQueryBatch(&rng, 32);
  for (auto _ : state) {
    EvalSession session(h, WithBackend(NumericBackend::kDouble));
    for (const DiGraph& q : queries) {
      benchmark::DoNotOptimize(session.Solve(q));
    }
  }
  state.SetItemsProcessed(state.iterations() * queries.size());
}
BENCHMARK(BM_SessionAmortized)->RangeMultiplier(4)->Range(64, 1024)
    ->Unit(benchmark::kMillisecond);

void BM_SessionAmortizedWarm(benchmark::State& state) {
  // Steady-state serving: the session (and its context cache) outlives the
  // measurement loop entirely.
  Rng rng(95);  // same seed: identical inputs
  ProbGraph h = AttachRandomProbabilities(
      &rng, ProperShape(Shape::kDwt, state.range(0), 2, &rng), 4);
  std::vector<DiGraph> queries = SmallQueryBatch(&rng, 32);
  EvalSession session(h, WithBackend(NumericBackend::kDouble));
  for (auto _ : state) {
    for (const DiGraph& q : queries) {
      benchmark::DoNotOptimize(session.Solve(q));
    }
  }
  state.SetItemsProcessed(state.iterations() * queries.size());
}
BENCHMARK(BM_SessionAmortizedWarm)->RangeMultiplier(4)->Range(64, 1024)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace phom

int main(int argc, char** argv) {
  phom::bench::RunBenchmarks(argc, argv);
  return 0;
}
