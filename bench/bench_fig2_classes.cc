// Figure 2: the inclusion diagram of the graph classes
//   1WP ⊆ 2WP ⊆ PT,  1WP ⊆ DWT ⊆ PT ⊆ Connected ⊆ All.
// This bench measures recognizer throughput and verifies every inclusion
// edge of the diagram on a large random sample, plus the near-disjointness
// of 2WP and DWT beyond out-directed paths.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"

namespace phom {
namespace {

void BM_Fig2_ClassifyPolytree(benchmark::State& state) {
  Rng rng(31);
  DiGraph g = RandomPolytree(&rng, state.range(0), 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Classify(g));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_Fig2_ClassifyPolytree)->RangeMultiplier(4)->Range(64, 65536)
    ->Unit(benchmark::kMicrosecond)->Complexity();

void BM_Fig2_ClassifyDisconnected(benchmark::State& state) {
  Rng rng(32);
  DiGraph g = RandomDisjointUnion(&rng, 16, [&](Rng* r) {
    return RandomPolytree(r, state.range(0) / 16 + 2, 2);
  });
  for (auto _ : state) {
    benchmark::DoNotOptimize(Classify(g));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_Fig2_ClassifyDisconnected)->RangeMultiplier(4)->Range(64, 16384)
    ->Unit(benchmark::kMicrosecond)->Complexity();

void VerifyInclusionDiagram() {
  Rng rng(33);
  size_t samples = 20000;
  size_t violations = 0;
  size_t count_1wp = 0, count_2wp = 0, count_dwt = 0, count_pt = 0;
  for (size_t i = 0; i < samples; ++i) {
    DiGraph g = RandomPolytree(&rng, 1 + rng.UniformInt(0, 11), 1);
    bool is1 = IsOneWayPath(g), is2 = IsTwoWayPath(g), isd = IsDownwardTree(g),
         isp = IsPolytree(g), isc = IsConnected(g);
    count_1wp += is1;
    count_2wp += is2;
    count_dwt += isd;
    count_pt += isp;
    if (is1 && !(is2 && isd)) ++violations;
    if (is2 && !isp) ++violations;
    if (isd && !isp) ++violations;
    if (isp && !isc) ++violations;
  }
  std::printf("\n=== Figure 2 (paper): class inclusion diagram ===\n");
  std::printf("random polytrees sampled: %zu\n", samples);
  std::printf("  |1WP| = %zu  |2WP| = %zu  |DWT| = %zu  |PT| = %zu\n",
              count_1wp, count_2wp, count_dwt, count_pt);
  std::printf("  inclusion violations (1WP⊆2WP, 1WP⊆DWT, 2WP⊆PT, DWT⊆PT, "
              "PT⊆Connected): %zu\n", violations);
  PHOM_CHECK(violations == 0);
  std::printf("  all inclusion edges of Figure 2 hold on the sample.\n");
}

}  // namespace
}  // namespace phom

int main(int argc, char** argv) {
  phom::bench::RunBenchmarks(argc, argv);
  phom::VerifyInclusionDiagram();
  return 0;
}
