#pragma once

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "src/core/phom.h"
#include "src/reductions/bipartite.h"

/// \file bench_util.h
/// Shared helpers for the benchmark binaries that regenerate the paper's
/// tables: proper-class workload generators (a "proper" DWT is not also a
/// 2WP, etc.), wall-clock helpers for the hard-cell demonstrations, and the
/// table printer.

namespace phom::bench {

/// Runs google-benchmark with a default --benchmark_min_time of 0.1s unless
/// the caller passed one, keeping the full `for b in bench/*` sweep at a
/// sane wall-clock while still allowing longer runs explicitly.
inline void RunBenchmarks(int argc, char** argv) {
  static std::vector<std::string> storage(argv, argv + argc);
  bool has_min_time = false;
  for (const std::string& arg : storage) {
    if (arg.rfind("--benchmark_min_time", 0) == 0) has_min_time = true;
  }
  if (!has_min_time) storage.push_back("--benchmark_min_time=0.1");
  static std::vector<char*> args;
  for (std::string& s : storage) args.push_back(s.data());
  int count = static_cast<int>(args.size());
  ::benchmark::Initialize(&count, args.data());
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
}

inline double SecondsSince(
    const std::chrono::steady_clock::time_point& start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

/// Graph shapes named after the tables' rows/columns.
enum class Shape { k1wp, k2wp, kDwt, kPt, kConnected };

inline const char* ToString(Shape s) {
  switch (s) {
    case Shape::k1wp: return "1WP";
    case Shape::k2wp: return "2WP";
    case Shape::kDwt: return "DWT";
    case Shape::kPt: return "PT";
    case Shape::kConnected: return "Connected";
  }
  return "?";
}

/// A member of the class that is NOT in any finer class of Figure 2, so each
/// table cell is exercised by a graph that pins the row/column exactly.
inline DiGraph ProperShape(Shape shape, size_t size, size_t num_labels,
                           Rng* rng) {
  PHOM_CHECK(size >= 4);
  switch (shape) {
    case Shape::k1wp:
      return RandomOneWayPath(rng, size, num_labels);
    case Shape::k2wp: {
      for (int attempt = 0; attempt < 100; ++attempt) {
        DiGraph g = RandomTwoWayPath(rng, size, num_labels);
        if (!IsOneWayPath(g) && !IsDownwardTree(g)) return g;
      }
      PHOM_CHECK_MSG(false, "failed to build a proper 2WP");
      break;
    }
    case Shape::kDwt: {
      for (int attempt = 0; attempt < 100; ++attempt) {
        DiGraph g = RandomDownwardTree(rng, size, num_labels, 0.5);
        if (!IsTwoWayPath(g)) return g;
      }
      PHOM_CHECK_MSG(false, "failed to build a proper DWT");
      break;
    }
    case Shape::kPt: {
      for (int attempt = 0; attempt < 100; ++attempt) {
        DiGraph g = RandomPolytree(rng, size, num_labels);
        if (!IsTwoWayPath(g) && !IsDownwardTree(g)) return g;
      }
      PHOM_CHECK_MSG(false, "failed to build a proper PT");
      break;
    }
    case Shape::kConnected:
      return RandomConnected(rng, size, size / 2, num_labels);
  }
  PHOM_CHECK(false);
  return DiGraph(1);
}

/// Disjoint union of two proper-shape components (the ⊔ rows).
inline DiGraph ProperUnion(Shape shape, size_t size, size_t num_labels,
                           Rng* rng) {
  return DisjointUnion({ProperShape(shape, size, num_labels, rng),
                        ProperShape(shape, size, num_labels, rng)});
}

/// Bipartite graph with exactly `m` edges (shuffled grid prefix) — used by
/// the hard-cell demos so the 2^m growth axis is exact.
inline BipartiteGraph BipartiteWithEdges(size_t nl, size_t nr, size_t m,
                                         Rng* rng) {
  PHOM_CHECK(m <= nl * nr);
  std::vector<std::pair<uint32_t, uint32_t>> pairs;
  for (uint32_t x = 0; x < nl; ++x) {
    for (uint32_t y = 0; y < nr; ++y) pairs.emplace_back(x, y);
  }
  std::shuffle(pairs.begin(), pairs.end(), rng->engine());
  BipartiteGraph out;
  out.left_size = nl;
  out.right_size = nr;
  out.edges.assign(pairs.begin(), pairs.begin() + m);
  std::sort(out.edges.begin(), out.edges.end());
  return out;
}

struct TableCell {
  std::string row;
  std::string col;
  CaseAnalysis analysis;
  double solve_seconds = -1.0;  ///< wall-clock of one Solve, if run
};

/// Prints a regenerated classification table in the paper's row/col layout.
inline void PrintTable(const std::string& title,
                       const std::vector<std::string>& rows,
                       const std::vector<std::string>& cols,
                       const std::vector<TableCell>& cells) {
  std::printf("\n=== %s ===\n", title.c_str());
  std::printf("%-12s", "query\\inst");
  for (const std::string& c : cols) std::printf(" | %-22s", c.c_str());
  std::printf("\n");
  for (const std::string& r : rows) {
    std::printf("%-12s", r.c_str());
    for (const std::string& c : cols) {
      const TableCell* cell = nullptr;
      for (const TableCell& candidate : cells) {
        if (candidate.row == r && candidate.col == c) cell = &candidate;
      }
      if (cell == nullptr) {
        std::printf(" | %-22s", "-");
        continue;
      }
      std::string text = cell->analysis.tractable ? "PTIME" : "#P-hard";
      text += " ";
      // Shorten the citation to fit the cell.
      std::string prop = cell->analysis.proposition;
      size_t paren = prop.find(" (");
      if (paren != std::string::npos) prop = prop.substr(0, paren);
      if (prop.size() > 15) prop = prop.substr(0, 15);
      text += prop;
      if (cell->solve_seconds >= 0) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), " %.3fs", cell->solve_seconds);
        text += buf;
      }
      std::printf(" | %-22s", text.c_str());
    }
    std::printf("\n");
  }
}

}  // namespace phom::bench
