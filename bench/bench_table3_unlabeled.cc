// Regenerates Table 3: tractability of PHom̸L in the connected case.
//
//  * PTIME cells: the automaton pipeline of Prop. 5.4 (1WP/DWT queries on
//    polytrees) swept in instance size and in query length; Prop. 4.11 on
//    2WPs; Prop. 3.6 on DWTs.
//  * #P-hard cells: Prop. 5.6's reduction (see bench_fig8) and the classic
//    →→ query on connected instances (Prop. 5.1) via the exact fallback.
//  * Prints the regenerated table.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"

namespace phom {
namespace {

using bench::ProperShape;
using bench::Shape;

void BM_Table3_1wpQuery_OnPt_InstanceScaling(benchmark::State& state) {
  Rng rng(21);
  size_t n = state.range(0);
  DiGraph query = MakeOneWayPath(4);
  ProbGraph h = AttachRandomProbabilities(
      &rng, ProperShape(Shape::kPt, n, 1, &rng), 4);
  Solver solver;
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver.Solve(query, h));
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_Table3_1wpQuery_OnPt_InstanceScaling)
    ->RangeMultiplier(2)->Range(64, 2048)
    ->Unit(benchmark::kMillisecond)->Complexity();

void BM_Table3_1wpQuery_OnPt_QueryScaling(benchmark::State& state) {
  // Combined complexity: the automaton has O(m^3) states; measure how the
  // pipeline scales with the query length m at fixed instance size.
  Rng rng(22);
  size_t m = state.range(0);
  DiGraph query = MakeOneWayPath(m);
  ProbGraph h = AttachRandomProbabilities(
      &rng, ProperShape(Shape::kPt, 256, 1, &rng), 4);
  Solver solver;
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver.Solve(query, h));
  }
  state.SetComplexityN(m);
}
BENCHMARK(BM_Table3_1wpQuery_OnPt_QueryScaling)
    ->RangeMultiplier(2)->Range(2, 32)
    ->Unit(benchmark::kMillisecond)->Complexity();

void BM_Table3_DwtQuery_OnPt(benchmark::State& state) {
  // Prop. 5.5: the DWT query first collapses to →^height.
  Rng rng(23);
  size_t n = state.range(0);
  DiGraph query = ProperShape(Shape::kDwt, 16, 1, &rng);
  ProbGraph h = AttachRandomProbabilities(
      &rng, ProperShape(Shape::kPt, n, 1, &rng), 4);
  Solver solver;
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver.Solve(query, h));
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_Table3_DwtQuery_OnPt)->RangeMultiplier(2)->Range(64, 1024)
    ->Unit(benchmark::kMillisecond)->Complexity();

void BM_Table3_2wpQuery_On2wp(benchmark::State& state) {
  Rng rng(24);
  size_t n = state.range(0);
  DiGraph query = ProperShape(Shape::k2wp, 5, 1, &rng);
  ProbGraph h = AttachRandomProbabilities(
      &rng, ProperShape(Shape::k2wp, n, 1, &rng), 4);
  Solver solver;
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver.Solve(query, h));
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_Table3_2wpQuery_On2wp)->RangeMultiplier(2)->Range(32, 512)
    ->Unit(benchmark::kMillisecond)->Complexity();

void BM_Table3_ConnectedQuery_OnDwt(benchmark::State& state) {
  // Prop. 3.6 with a connected non-path query (graded collapse per solve).
  Rng rng(25);
  size_t n = state.range(0);
  DiGraph query = ProperShape(Shape::kPt, 8, 1, &rng);
  ProbGraph h = AttachRandomProbabilities(
      &rng, ProperShape(Shape::kDwt, n, 1, &rng), 4);
  Solver solver;
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver.Solve(query, h));
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_Table3_ConnectedQuery_OnDwt)->RangeMultiplier(2)->Range(64, 2048)
    ->Unit(benchmark::kMillisecond)->Complexity();

// --- Hard-cell evidence -------------------------------------------------------

void HardCellDemo() {
  std::printf(
      "\n--- #P-hard cell (1WP, Connected): →→ on random connected "
      "instances (Prop. 5.1), exact fallback ---\n");
  std::printf("%8s %10s %10s\n", "edges", "worlds", "seconds");
  for (size_t edges = 10; edges <= 18; edges += 2) {
    Rng rng(26);
    DiGraph shape = RandomConnected(&rng, edges - 2, 3, 1);
    ProbGraph h = AttachRandomProbabilities(&rng, shape, 2);
    auto start = std::chrono::steady_clock::now();
    SolveOptions options;
    options.fallback.max_uncertain_edges = 24;
    Result<Rational> p = SolveProbability(MakeOneWayPath(2), h, options);
    double secs = bench::SecondsSince(start);
    PHOM_CHECK_MSG(p.ok(), p.status().ToString());
    std::printf("%8zu %10llu %9.3fs\n", h.num_edges(),
                (unsigned long long)(1ull << h.NumUncertainEdges()), secs);
  }
}

// --- The regenerated table ----------------------------------------------------

void PrintTable3() {
  Rng rng(27);
  const std::vector<std::pair<std::string, Shape>> axes = {
      {"1WP", Shape::k1wp},
      {"2WP", Shape::k2wp},
      {"DWT", Shape::kDwt},
      {"PT", Shape::kPt},
      {"Connected", Shape::kConnected},
  };
  std::vector<std::string> names;
  for (const auto& [n, s] : axes) names.push_back(n);
  std::vector<bench::TableCell> cells;
  for (const auto& [rname, rshape] : axes) {
    for (const auto& [cname, cshape] : axes) {
      DiGraph query = ProperShape(rshape, 5, 1, &rng);
      bench::TableCell cell;
      cell.row = rname;
      cell.col = cname;
      cell.analysis = AnalyzeCase(
          query, ProbGraph::Certain(ProperShape(cshape, 6, 1, &rng)));
      size_t n = cell.analysis.tractable ? 256 : 8;
      ProbGraph h = AttachRandomProbabilities(
          &rng, ProperShape(cshape, n, 1, &rng), 3);
      auto start = std::chrono::steady_clock::now();
      SolveOptions options;
      options.fallback.max_uncertain_edges = 24;
      Result<SolveResult> result = Solver(options).Solve(query, h);
      if (result.ok()) cell.solve_seconds = bench::SecondsSince(start);
      cells.push_back(std::move(cell));
    }
  }
  bench::PrintTable("Table 3 (paper): PHom!L, connected case — regenerated",
                    names, names, cells);
  std::printf(
      "(PTIME cells solved at instance size 256; hard cells at size 8 via "
      "the exact exponential fallback.)\n");
}

}  // namespace
}  // namespace phom

int main(int argc, char** argv) {
  phom::bench::RunBenchmarks(argc, argv);
  phom::HardCellDemo();
  phom::PrintTable3();
  return 0;
}
