// Figure 7 / Prop. 4.1: the reduction from #PP2DNF to PHomL(1WP, PT) —
// a one-way path query on a polytree instance is already #P-hard with
// labels.
//
//  * Construction scaling (PTIME): formulas with thousands of clauses.
//  * Exactness: Pr · 2^(n1+n2) equals brute-force #PP2DNF for all small
//    formulas, including the paper's own example X1Y2 v X1Y1 v X2Y2.
//  * Hardness shape: exact solve time doubles per added variable.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "src/reductions/edge_cover_reduction.h"
#include "src/reductions/pp2dnf_reduction.h"

namespace phom {
namespace {

void BM_Fig7_BuildReduction(benchmark::State& state) {
  Rng rng(61);
  size_t m = state.range(0);
  Pp2Dnf formula = RandomPp2Dnf(&rng, m / 2 + 1, m / 2 + 1, m);
  for (auto _ : state) {
    benchmark::DoNotOptimize(BuildPp2DnfReductionLabeled(formula));
  }
  state.SetComplexityN(m);
}
BENCHMARK(BM_Fig7_BuildReduction)->RangeMultiplier(4)->Range(8, 2048)
    ->Unit(benchmark::kMicrosecond)->Complexity();

void PaperExampleAndSweep() {
  std::printf("\n=== Figure 7 (paper): #PP2DNF -> PHomL(1WP, PT), "
              "Prop. 4.1 ===\n");
  // The paper's example formula: X1Y2 v X1Y1 v X2Y2 (8 of 16 valuations).
  Pp2Dnf example;
  example.num_x = 2;
  example.num_y = 2;
  example.clauses = {{0, 1}, {0, 0}, {1, 1}};
  Pp2DnfReduction red = BuildPp2DnfReductionLabeled(example);
  PHOM_CHECK(IsOneWayPath(red.query));
  PHOM_CHECK(IsPolytree(red.instance.graph()));
  Result<Rational> prob = SolveProbability(red.query, red.instance);
  PHOM_CHECK_MSG(prob.ok(), prob.status().ToString());
  std::printf("paper example X1Y2 v X1Y1 v X2Y2: Pr = %s (expect 1/2), "
              "#SAT = %s (expect 8)\n", prob->ToString().c_str(),
              RecoverCount(*prob, 4).ToString().c_str());
  PHOM_CHECK(*prob == Rational::Half());

  std::printf("\n%8s %8s %10s %12s %10s %10s\n", "n1+n2", "clauses",
              "instance", "#SAT", "check", "seconds");
  Rng rng(62);
  for (size_t vars = 4; vars <= 14; vars += 2) {
    Pp2Dnf formula = RandomPp2Dnf(&rng, vars / 2, vars / 2, vars);
    Pp2DnfReduction r = BuildPp2DnfReductionLabeled(formula);
    auto start = std::chrono::steady_clock::now();
    Result<Rational> p = SolveProbability(r.query, r.instance);
    double secs = bench::SecondsSince(start);
    PHOM_CHECK_MSG(p.ok(), p.status().ToString());
    BigInt recovered = RecoverCount(*p, r.num_probabilistic_edges);
    BigInt expected = CountSatisfyingAssignments(formula);
    std::printf("%8zu %8zu %9zue %12s %10s %9.3fs\n", vars,
                formula.clauses.size(), r.instance.num_edges(),
                recovered.ToString().c_str(),
                recovered == expected ? "exact" : "MISMATCH", secs);
    PHOM_CHECK(recovered == expected);
  }
  std::printf("(the time column doubles per +1 variable: the 2^n hard-cell "
              "shape of Prop. 4.1)\n");
}

}  // namespace
}  // namespace phom

int main(int argc, char** argv) {
  phom::bench::RunBenchmarks(argc, argv);
  phom::PaperExampleAndSweep();
  return 0;
}
