// Predictive admission control & slack-ordered scheduling (CostModel,
// cost_model.h; BatchExecutor::Submit, executor.h): the same oversubmitted
// workload served three ways — degrade policy REACTIVE-ONLY (the PR-5
// behavior: every conversion happens after a real deadline lapse), degrade
// policy + a learned CostModel (doomed requests convert PROACTIVELY at
// submit, skipping the exact attempt), and no-degrade + CostModel with
// shedding (hopeless requests answer kResourceExhausted at submit instead
// of queueing to miss). The headline counters are the proactive-conversion
// and shed ratios per time budget, plus the per-submit overhead of the
// prediction itself (Snapshot + PredictSolveCost + DecideAdmission).
// NOTE: the dev container is single-core — locally these quantify the
// decision mix, not throughput; realistic backlogs need multi-core CI.

#include <benchmark/benchmark.h>

#include <chrono>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "bench/bench_util.h"
#include "src/core/eval_session.h"
#include "src/serve/async.h"
#include "src/serve/cost_model.h"
#include "src/serve/executor.h"
#include "src/serve/request.h"

namespace phom {
namespace {

using bench::ProperShape;
using bench::Shape;
using serve::BatchExecutor;
using serve::CostModel;
using serve::ExecutorOptions;
using serve::ExecutorStats;
using serve::RequestClock;
using serve::SolveRequest;
using serve::SolveTicket;

/// Same serving corpus family as bench_serve_degrade.cc.
struct Corpus {
  ProbGraph instance{0};
  std::vector<DiGraph> queries;
};

Corpus MakeCorpus(size_t components, size_t component_size, size_t batch) {
  Rng rng(20170514);
  std::vector<DiGraph> parts;
  for (size_t c = 0; c < components; ++c) {
    parts.push_back(ProperShape(Shape::k2wp, component_size, 2, &rng));
  }
  Corpus corpus;
  corpus.instance = AttachRandomProbabilities(&rng, DisjointUnion(parts), 4);
  for (size_t q = 0; q < batch; ++q) {
    corpus.queries.push_back(ProperShape(Shape::k2wp, 4 + q % 3, 2, &rng));
  }
  return corpus;
}

SolveOptions ServingOptions() {
  SolveOptions options;
  options.numeric = NumericBackend::kDouble;  // the serving regime
  return options;
}

DegradePolicy CheapPolicy() {
  DegradePolicy policy;
  policy.mode = DegradeMode::kOnDeadlineRisk;
  policy.min_samples = 128;
  return policy;
}

struct OutcomeCounts {
  int64_t total = 0;
  int64_t missed = 0;    ///< DeadlineExceeded
  int64_t shed = 0;      ///< ResourceExhausted at submit
  int64_t degraded = 0;  ///< OK with degrade provenance (either kind)
  int64_t exact = 0;     ///< OK, exact
};

/// 8x-oversubmits the corpus under one shared absolute deadline (same
/// protocol as bench_serve_degrade.cc) and tallies every ticket's outcome.
OutcomeCounts RunOversubmitted(BatchExecutor& executor, EvalSession& session,
                               const Corpus& corpus,
                               std::chrono::microseconds budget,
                               bool degrade) {
  constexpr size_t kOversubmit = 8;
  OutcomeCounts counts;
  std::vector<SolveTicket> tickets;
  tickets.reserve(kOversubmit * corpus.queries.size());
  const RequestClock::time_point deadline = RequestClock::now() + budget;
  for (size_t round = 0; round < kOversubmit; ++round) {
    for (const DiGraph& q : corpus.queries) {
      SolveRequest request = SolveRequest::BorrowQuery(q);
      request.WithDeadline(deadline);
      if (degrade) request.WithDegrade(CheapPolicy());
      tickets.push_back(executor.Submit(session, std::move(request)));
    }
  }
  for (SolveTicket& ticket : tickets) {
    Result<SolveResult> result = ticket.Take();
    ++counts.total;
    if (!result.ok()) {
      if (result.status().code() == Status::Code::kDeadlineExceeded) {
        ++counts.missed;
      } else if (result.status().code() ==
                 Status::Code::kResourceExhausted) {
        ++counts.shed;
      }
    } else if (result->degrade.degraded) {
      ++counts.degraded;
    } else {
      ++counts.exact;
    }
  }
  return counts;
}

void ReportRatios(benchmark::State& state, const OutcomeCounts& counts,
                  const ExecutorStats& stats) {
  double total = counts.total == 0 ? 1.0 : static_cast<double>(counts.total);
  state.counters["miss_ratio"] = static_cast<double>(counts.missed) / total;
  state.counters["shed_ratio"] = static_cast<double>(counts.shed) / total;
  state.counters["degraded_ratio"] =
      static_cast<double>(counts.degraded) / total;
  state.counters["exact_ratio"] = static_cast<double>(counts.exact) / total;
  // Provenance split, from the executor's own counters (deltas over the
  // timed region): proactive conversions never started an exact solve.
  state.counters["proactive_ratio"] =
      static_cast<double>(stats.degraded_proactive) / total;
  state.counters["reactive_ratio"] =
      static_cast<double>(stats.degraded_reactive) / total;
}

ExecutorStats StatsDelta(const ExecutorStats& before,
                         const ExecutorStats& after) {
  ExecutorStats d;
  d.submitted = after.submitted - before.submitted;
  d.exact_solves_started =
      after.exact_solves_started - before.exact_solves_started;
  d.degraded_proactive = after.degraded_proactive - before.degraded_proactive;
  d.degraded_reactive = after.degraded_reactive - before.degraded_reactive;
  d.shed = after.shed - before.shed;
  return d;
}

// ---------------------------------------------------------------------------
// The headline sweep: the same workload/budget under three admission
// configurations. ReactiveOnly is the PR-5 baseline (no model installed);
// ProactiveModel adds a CostModel so doomed requests convert at submit;
// Shedding drops degradation and lets the model reject hopeless requests.
// ---------------------------------------------------------------------------

void BM_ServeAdmissionReactiveOnly(benchmark::State& state) {
  const auto budget = std::chrono::microseconds(state.range(0));
  Corpus corpus = MakeCorpus(4, 24, 8);
  BatchExecutor executor(ExecutorOptions{.threads = 2});
  EvalSession session(corpus.instance, ServingOptions());
  executor.SolveBatch(session, corpus.queries);  // warm the context cache
  OutcomeCounts counts;
  ExecutorStats before = executor.stats();
  for (auto _ : state) {
    OutcomeCounts round = RunOversubmitted(executor, session, corpus, budget,
                                           /*degrade=*/true);
    counts.total += round.total;
    counts.missed += round.missed;
    counts.shed += round.shed;
    counts.degraded += round.degraded;
    counts.exact += round.exact;
  }
  state.SetItemsProcessed(counts.total);
  ReportRatios(state, counts, StatsDelta(before, executor.stats()));
  // proactive_ratio must read 0.0 here: with no model installed every
  // conversion is reactive (a real deadline lapse inside the worker).
}
BENCHMARK(BM_ServeAdmissionReactiveOnly)
    ->Arg(50)->Arg(1000)->Arg(100000)
    ->Unit(benchmark::kMillisecond);

void BM_ServeAdmissionProactiveModel(benchmark::State& state) {
  const auto budget = std::chrono::microseconds(state.range(0));
  Corpus corpus = MakeCorpus(4, 24, 8);
  ExecutorOptions exec_options{.threads = 2};
  exec_options.cost_model = std::make_shared<CostModel>();
  BatchExecutor executor(exec_options);
  EvalSession session(corpus.instance, ServingOptions());
  // Warm-up doubles as model training: every completed solve below records
  // its latency, so the sweep proper decides against LEARNED cells.
  executor.SolveBatch(session, corpus.queries);
  executor.SolveBatch(session, corpus.queries);
  OutcomeCounts counts;
  ExecutorStats before = executor.stats();
  for (auto _ : state) {
    OutcomeCounts round = RunOversubmitted(executor, session, corpus, budget,
                                           /*degrade=*/true);
    counts.total += round.total;
    counts.missed += round.missed;
    counts.shed += round.shed;
    counts.degraded += round.degraded;
    counts.exact += round.exact;
  }
  state.SetItemsProcessed(counts.total);
  ReportRatios(state, counts, StatsDelta(before, executor.stats()));
  // Tight budgets should shift conversions from reactive_ratio into
  // proactive_ratio: the model predicts the miss at submit and skips the
  // doomed exact attempt instead of burning a worker on it.
}
BENCHMARK(BM_ServeAdmissionProactiveModel)
    ->Arg(50)->Arg(1000)->Arg(100000)
    ->Unit(benchmark::kMillisecond);

void BM_ServeAdmissionShedding(benchmark::State& state) {
  const auto budget = std::chrono::microseconds(state.range(0));
  Corpus corpus = MakeCorpus(4, 24, 8);
  ExecutorOptions exec_options{.threads = 2};
  exec_options.cost_model = std::make_shared<CostModel>();
  exec_options.enable_shedding = true;
  BatchExecutor executor(exec_options);
  EvalSession session(corpus.instance, ServingOptions());
  executor.SolveBatch(session, corpus.queries);  // warm-up + model training
  executor.SolveBatch(session, corpus.queries);
  OutcomeCounts counts;
  ExecutorStats before = executor.stats();
  for (auto _ : state) {
    // No degrade policy: a hopeless request's only graceful exit is the
    // submit-time kResourceExhausted.
    OutcomeCounts round = RunOversubmitted(executor, session, corpus, budget,
                                           /*degrade=*/false);
    counts.total += round.total;
    counts.missed += round.missed;
    counts.shed += round.shed;
    counts.degraded += round.degraded;
    counts.exact += round.exact;
  }
  state.SetItemsProcessed(counts.total);
  ReportRatios(state, counts, StatsDelta(before, executor.stats()));
  // shed requests consume a Submit call but never a worker slot: under
  // tight budgets shed_ratio + miss_ratio covers what ReactiveOnly
  // reported purely as misses, at a fraction of the queue churn.
}
BENCHMARK(BM_ServeAdmissionShedding)
    ->Arg(50)->Arg(1000)->Arg(100000)
    ->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------------------
// The price of a decision: Snapshot + PredictSolveCost + DecideAdmission
// per prepared problem, against a model warmed on the serving corpus. This
// is the overhead every Submit pays when a CostModel is installed.
// ---------------------------------------------------------------------------

void BM_ServeAdmissionPredictOverhead(benchmark::State& state) {
  Corpus corpus = MakeCorpus(4, 24, 8);
  auto model = std::make_shared<CostModel>();
  {
    ExecutorOptions exec_options{.threads = 2};
    exec_options.cost_model = model;
    BatchExecutor executor(exec_options);
    EvalSession session(corpus.instance, ServingOptions());
    executor.SolveBatch(session, corpus.queries);  // train the model
  }
  EvalSession session(corpus.instance, ServingOptions());
  const SolveOptions& options = session.options();
  struct Unit {
    PreparedProblem prepared{DiGraph(0), nullptr, std::nullopt, {}};
    ComponentDispatch plan;
  };
  std::vector<Unit> units;
  for (const DiGraph& q : corpus.queries) {
    Unit u;
    u.prepared = session.Prepare(q);
    u.plan = PlanComponentDispatch(u.prepared, options);
    units.push_back(std::move(u));
  }
  const auto remaining = std::optional<std::chrono::nanoseconds>(
      std::chrono::milliseconds(1));
  int64_t decisions = 0;
  for (auto _ : state) {
    // Snapshot per batch (what Submit amortizes via the version cache),
    // one decision per unit.
    std::shared_ptr<const serve::CostModelSnapshot> snapshot =
        model->Snapshot();
    for (const Unit& u : units) {
      serve::AdmissionDecision decision = serve::DecideAdmission(
          *snapshot, u.prepared, u.plan, options, remaining);
      benchmark::DoNotOptimize(decision);
      ++decisions;
    }
  }
  state.SetItemsProcessed(decisions);
}
BENCHMARK(BM_ServeAdmissionPredictOverhead)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace phom

int main(int argc, char** argv) {
  phom::bench::RunBenchmarks(argc, argv);
  return 0;
}
