// Regenerates Table 1: tractability of PHom̸L for disconnected queries
// (rows ⊔1WP, ⊔2WP, ⊔DWT, ⊔PT, All; columns 1WP, 2WP, DWT, PT, Connected).
//
//  * PTIME cells: google-benchmark scaling sweeps over the instance size for
//    the designated algorithms (Props. 3.6 and 5.4/5.5 via query collapse),
//    with fitted complexity exponents.
//  * #P-hard cells: the Prop. 3.4 reduction from #Bipartite-Edge-Cover is
//    solved exactly at growing sizes, exhibiting 2^m growth while recovering
//    the exact count.
//  * Finally the table itself is printed with the classifier's verdict and a
//    one-shot wall-clock measurement per cell.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "src/reductions/edge_cover_reduction.h"

namespace phom {
namespace {

using bench::ProperShape;
using bench::ProperUnion;
using bench::Shape;

ProbGraph Instance(Shape shape, size_t n, Rng* rng) {
  return AttachRandomProbabilities(rng, ProperShape(shape, n, 1, rng), 4);
}

// --- PTIME cells ----------------------------------------------------------

void BM_Table1_U1wpQuery_OnPt(benchmark::State& state) {
  Rng rng(1);
  size_t n = state.range(0);
  DiGraph query = ProperUnion(Shape::k1wp, 4, 1, &rng);
  ProbGraph h = Instance(Shape::kPt, n, &rng);
  Solver solver;
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver.Solve(query, h));
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_Table1_U1wpQuery_OnPt)->RangeMultiplier(2)->Range(64, 1024)
    ->Unit(benchmark::kMillisecond)->Complexity();

void BM_Table1_UDwtQuery_OnPt(benchmark::State& state) {
  Rng rng(2);
  size_t n = state.range(0);
  DiGraph query = ProperUnion(Shape::kDwt, 6, 1, &rng);
  ProbGraph h = Instance(Shape::kPt, n, &rng);
  Solver solver;
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver.Solve(query, h));
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_Table1_UDwtQuery_OnPt)->RangeMultiplier(2)->Range(64, 1024)
    ->Unit(benchmark::kMillisecond)->Complexity();

void BM_Table1_AllQuery_OnDwt(benchmark::State& state) {
  // Prop. 3.6: an arbitrary (here: disconnected ⊔PT, graded or not)
  // unlabeled query on a ⊔DWT instance.
  Rng rng(3);
  size_t n = state.range(0);
  DiGraph query = ProperUnion(Shape::kPt, 6, 1, &rng);
  ProbGraph h = Instance(Shape::kDwt, n, &rng);
  Solver solver;
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver.Solve(query, h));
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_Table1_AllQuery_OnDwt)->RangeMultiplier(2)->Range(64, 2048)
    ->Unit(benchmark::kMillisecond)->Complexity();

void BM_Table1_QueryScaling_OnDwt(benchmark::State& state) {
  // Combined complexity: grow the QUERY at fixed instance size.
  Rng rng(4);
  size_t qsize = state.range(0);
  DiGraph query = ProperUnion(Shape::kDwt, qsize, 1, &rng);
  ProbGraph h = Instance(Shape::kDwt, 512, &rng);
  Solver solver;
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver.Solve(query, h));
  }
  state.SetComplexityN(qsize);
}
BENCHMARK(BM_Table1_QueryScaling_OnDwt)->RangeMultiplier(2)->Range(8, 256)
    ->Unit(benchmark::kMillisecond)->Complexity();

// --- Hard-cell evidence -----------------------------------------------------

void HardCellDemo() {
  std::printf(
      "\n--- #P-hard cell (⊔2WP, 2WP): Prop. 3.4 reduction, exact fallback "
      "---\n");
  std::printf("%6s %10s %14s %14s %10s\n", "m", "worlds", "#covers", "check",
              "seconds");
  Rng rng(5);
  for (size_t m = 4; m <= 10; ++m) {
    BipartiteGraph bipartite = bench::BipartiteWithEdges(3, 4, m, &rng);
    EdgeCoverReduction red = BuildEdgeCoverReductionUnlabeled(bipartite);
    auto start = std::chrono::steady_clock::now();
    SolveOptions options;
    options.fallback.max_uncertain_edges = 16;
    Result<Rational> prob =
        SolveProbability(red.query, red.instance, options);
    double secs = bench::SecondsSince(start);
    PHOM_CHECK_MSG(prob.ok(), prob.status().ToString());
    BigInt recovered = RecoverCount(*prob, red.num_probabilistic_edges);
    BigInt expected = CountEdgeCoversBruteForce(bipartite);
    std::printf("%6zu %10llu %14s %14s %9.3fs\n", m,
                (unsigned long long)(1ull << m), recovered.ToString().c_str(),
                recovered == expected ? "exact" : "MISMATCH", secs);
    PHOM_CHECK(recovered == expected);
  }
}

// --- The regenerated table ---------------------------------------------------

void PrintTable1() {
  Rng rng(6);
  const std::vector<std::pair<std::string, Shape>> rows = {
      {"u1WP", Shape::k1wp},
      {"u2WP", Shape::k2wp},
      {"uDWT", Shape::kDwt},
      {"uPT", Shape::kPt},
      {"All", Shape::kConnected},
  };
  const std::vector<std::pair<std::string, Shape>> cols = {
      {"1WP", Shape::k1wp},
      {"2WP", Shape::k2wp},
      {"DWT", Shape::kDwt},
      {"PT", Shape::kPt},
      {"Connected", Shape::kConnected},
  };
  std::vector<bench::TableCell> cells;
  std::vector<std::string> row_names;
  std::vector<std::string> col_names;
  for (const auto& [rn, rs] : rows) row_names.push_back(rn);
  for (const auto& [cn, cs] : cols) col_names.push_back(cn);
  Solver solver;
  for (const auto& [rname, rshape] : rows) {
    for (const auto& [cname, cshape] : cols) {
      DiGraph query =
          rname == "All"
              ? DisjointUnion({ProperShape(Shape::kConnected, 5, 1, &rng),
                               ProperShape(Shape::k2wp, 4, 1, &rng)})
              : ProperUnion(rshape, 5, 1, &rng);
      // Small instances for hard cells (fallback must finish), larger for
      // tractable cells.
      bench::TableCell cell;
      cell.row = rname;
      cell.col = cname;
      cell.analysis = AnalyzeCase(query, ProbGraph::Certain(
          ProperShape(cshape, 6, 1, &rng)));
      size_t n = cell.analysis.tractable ? 256 : 8;
      ProbGraph h = AttachRandomProbabilities(
          &rng, ProperShape(cshape, n, 1, &rng), 3);
      auto start = std::chrono::steady_clock::now();
      SolveOptions options;
      options.fallback.max_uncertain_edges = 24;
      Result<SolveResult> result = Solver(options).Solve(query, h);
      if (result.ok()) cell.solve_seconds = bench::SecondsSince(start);
      cells.push_back(std::move(cell));
    }
  }
  bench::PrintTable(
      "Table 1 (paper): PHom!L, disconnected queries — regenerated",
      row_names, col_names, cells);
  std::printf(
      "(PTIME cells solved at instance size 256; hard cells at size 8 via "
      "the exact exponential fallback.)\n");
}

}  // namespace
}  // namespace phom

int main(int argc, char** argv) {
  phom::bench::RunBenchmarks(argc, argv);
  phom::HardCellDemo();
  phom::PrintTable1();
  return 0;
}
