#pragma once

#include <cassert>
#include <cmath>
#include <type_traits>
#include <vector>

#include "src/util/rational.h"

/// \file numeric.h
/// Pluggable numeric policy for probability arithmetic. Every probability
/// kernel in the library (interval DP, Shannon expansion, d-DNNF evaluation,
/// the tree DPs, world enumeration) is templated on a number type `Num` and
/// instantiated for two backends:
///
///   * Rational — exact BigInt rationals, the default; answers are bit-exact
///     and the #P-hardness reductions can recover integer model counts.
///   * double   — IEEE floating point, the practical regime for serving
///     workloads (cf. Amarilli–van Bremen–Gaspard–Meel 2023); answers carry
///     rounding error but every kernel stays within ~1e-12 relative error on
///     the sizes the exact backend can verify.
///
/// Input probabilities always live on the instance as exact Rationals (the
/// model is exact); a backend choice only changes the arithmetic used to
/// COMBINE them. NumericOps<Num> is the small trait surface the kernels use.

namespace phom {

enum class NumericBackend {
  kExact = 0,  ///< exact BigInt rationals (default)
  kDouble,     ///< IEEE double: fast, approximate
};

inline const char* ToString(NumericBackend b) {
  switch (b) {
    case NumericBackend::kExact: return "exact";
    case NumericBackend::kDouble: return "double";
  }
  return "?";
}

template <class Num>
struct NumericOps;

template <>
struct NumericOps<Rational> {
  static constexpr NumericBackend kBackend = NumericBackend::kExact;
  static Rational Zero() { return Rational::Zero(); }
  static Rational One() { return Rational::One(); }
  static Rational From(const Rational& p) { return p; }
  static Rational Complement(const Rational& x) { return x.Complement(); }
  static bool IsZero(const Rational& x) { return x.is_zero(); }
  static bool IsOne(const Rational& x) { return x.is_one(); }
  static double ToDouble(const Rational& x) { return x.ToDouble(); }
};

/// Contract: the double backend never sees NaN. Instance probabilities enter
/// as exact Rationals in [0, 1] (finite after From), and every combining
/// operation the kernels perform (+, *, 1-x on finite operands) preserves
/// finiteness — so a NaN here means a bug upstream, not data. Debug builds
/// assert at the IsZero/IsOne decision points, where a NaN would otherwise
/// silently compare unequal to both 0 and 1 and corrupt short-circuit logic.
template <>
struct NumericOps<double> {
  static constexpr NumericBackend kBackend = NumericBackend::kDouble;
  static double Zero() { return 0.0; }
  static double One() { return 1.0; }
  static double From(const Rational& p) { return p.ToDouble(); }
  static double Complement(double x) { return 1.0 - x; }
  static bool IsZero(double x) {
    assert(!std::isnan(x) && "NaN probability in the double backend");
    // Explicitly treat IEEE negative zero as zero: rounding can produce
    // -0.0 (e.g. the complement of a probability that rounded to exactly
    // 1.0), and it must short-circuit the same way +0.0 does. The
    // comparison below does exactly that (-0.0 == 0.0 under IEEE 754);
    // std::signbit is NOT consulted.
    return x == 0.0;
  }
  static bool IsOne(double x) {
    assert(!std::isnan(x) && "NaN probability in the double backend");
    return x == 1.0;
  }
  static double ToDouble(double x) { return x; }
};

/// The instance's exact edge probabilities converted into the backend type.
template <class Num>
std::vector<Num> ConvertProbs(const std::vector<Rational>& probs) {
  std::vector<Num> out;
  out.reserve(probs.size());
  for (const Rational& p : probs) out.push_back(NumericOps<Num>::From(p));
  return out;
}

/// Zero-copy view of exact probabilities in the backend type: the exact
/// backend references the caller's vector (which must outlive the view);
/// the double backend converts once. Keeps the hot exact paths free of
/// BigInt copies.
template <class Num>
class BackendProbs {
 public:
  explicit BackendProbs(const std::vector<Rational>& probs) {
    if constexpr (std::is_same_v<Num, Rational>) {
      probs_ = &probs;
    } else {
      converted_ = ConvertProbs<Num>(probs);
    }
  }

  const std::vector<Num>& operator*() const {
    if constexpr (std::is_same_v<Num, Rational>) {
      return *probs_;
    } else {
      return converted_;
    }
  }
  const Num& operator[](size_t i) const { return (**this)[i]; }

 private:
  const std::vector<Rational>* probs_ = nullptr;
  std::vector<Num> converted_;
};

}  // namespace phom
