#pragma once

#include <cassert>
#include <cmath>
#include <string_view>
#include <type_traits>
#include <vector>

#include "src/util/interval_double.h"
#include "src/util/rational.h"
#include "src/util/result.h"

/// \file numeric.h
/// Pluggable numeric policy for probability arithmetic. Every probability
/// kernel in the library (interval DP, Shannon expansion, d-DNNF evaluation,
/// the tree DPs, world enumeration) is templated on a number type `Num` and
/// instantiated for three backends:
///
///   * Rational — exact BigInt rationals, the default; answers are bit-exact
///     and the #P-hardness reductions can recover integer model counts.
///   * double   — IEEE floating point, the practical regime for serving
///     workloads (cf. Amarilli–van Bremen–Gaspard–Meel 2023); answers carry
///     rounding error but every kernel stays within ~1e-12 relative error on
///     the sizes the exact backend can verify.
///   * IntervalDouble — a [lo, hi] double pair with outward directed
///     rounding (interval_double.h): float-speed arithmetic whose result
///     PROVABLY encloses the exact Rational answer, so the error bound is
///     machine-checked per answer instead of validated empirically.
///
/// Input probabilities always live on the instance as exact Rationals (the
/// model is exact); a backend choice only changes the arithmetic used to
/// COMBINE them. NumericOps<Num> is the small trait surface the kernels use.

namespace phom {

enum class NumericBackend {
  kExact = 0,      ///< exact BigInt rationals (default)
  kDouble,         ///< IEEE double: fast, approximate
  kIntervalDouble, ///< [lo, hi] doubles, directed rounding: fast, certified
};

inline const char* ToString(NumericBackend b) {
  switch (b) {
    case NumericBackend::kExact: return "exact";
    case NumericBackend::kDouble: return "double";
    case NumericBackend::kIntervalDouble: return "interval-double";
  }
  PHOM_CHECK_MSG(false, "unknown NumericBackend value");
}

/// Inverse of ToString — for persistence JSON and bench/CLI flags.
inline Result<NumericBackend> ParseNumericBackend(std::string_view text) {
  if (text == "exact") return NumericBackend::kExact;
  if (text == "double") return NumericBackend::kDouble;
  if (text == "interval-double") return NumericBackend::kIntervalDouble;
  return Status::Invalid(std::string("unknown numeric backend: ") +
                         std::string(text));
}

template <class Num>
struct NumericOps;

template <>
struct NumericOps<Rational> {
  static constexpr NumericBackend kBackend = NumericBackend::kExact;
  static Rational Zero() { return Rational::Zero(); }
  static Rational One() { return Rational::One(); }
  static Rational From(const Rational& p) { return p; }
  static Rational Complement(const Rational& x) { return x.Complement(); }
  static bool IsZero(const Rational& x) { return x.is_zero(); }
  static bool IsOne(const Rational& x) { return x.is_one(); }
  static double ToDouble(const Rational& x) { return x.ToDouble(); }
};

/// Contract: the double backend never sees NaN. Instance probabilities enter
/// as exact Rationals in [0, 1] (finite after From), and every combining
/// operation the kernels perform (+, *, 1-x on finite operands) preserves
/// finiteness — so a NaN here means a bug upstream, not data. Debug builds
/// assert at the IsZero/IsOne decision points, where a NaN would otherwise
/// silently compare unequal to both 0 and 1 and corrupt short-circuit logic.
template <>
struct NumericOps<double> {
  static constexpr NumericBackend kBackend = NumericBackend::kDouble;
  static double Zero() { return 0.0; }
  static double One() { return 1.0; }
  static double From(const Rational& p) { return p.ToDouble(); }
  static double Complement(double x) { return 1.0 - x; }
  static bool IsZero(double x) {
    assert(!std::isnan(x) && "NaN probability in the double backend");
    // Explicitly treat IEEE negative zero as zero: rounding can produce
    // -0.0 (e.g. the complement of a probability that rounded to exactly
    // 1.0), and it must short-circuit the same way +0.0 does. The
    // comparison below does exactly that (-0.0 == 0.0 under IEEE 754);
    // std::signbit is NOT consulted.
    return x == 0.0;
  }
  static bool IsOne(double x) {
    assert(!std::isnan(x) && "NaN probability in the double backend");
    return x == 1.0;
  }
  static double ToDouble(double x) { return x; }
};

/// Certified-enclosure backend. From() proves its interval by exact Rational
/// comparison (Rational::FromDouble is lossless), so the enclosure invariant
/// holds END TO END: input conversion, every kernel op (outward-rounded in
/// interval_double.h), and the final [lo, hi] the caller reads. Like the
/// double backend, NaN endpoints indicate an upstream bug, never data.
template <>
struct NumericOps<IntervalDouble> {
  static constexpr NumericBackend kBackend = NumericBackend::kIntervalDouble;
  static IntervalDouble Zero() { return IntervalDouble(0.0, 0.0); }
  static IntervalDouble One() { return IntervalDouble(1.0, 1.0); }
  static IntervalDouble From(const Rational& p) {
    assert(p.IsProbability() && "interval backend converts probabilities");
    const double d = p.ToDouble();
    double lo = d;
    double hi = d;
    // Widen outward until enclosure is PROVEN by exact comparison. ToDouble
    // is within an ulp or two of correctly rounded, so each loop runs a
    // handful of times at most; when d is exactly p the interval stays a
    // point and exact-representable inputs (0, 1, dyadics) cost nothing.
    while (Rational::FromDouble(lo) > p) lo = interval_internal::Down(lo);
    while (Rational::FromDouble(hi) < p) hi = interval_internal::Up(hi);
    return IntervalDouble(lo, hi).ClampedToUnit();
  }
  static IntervalDouble Complement(const IntervalDouble& x) {
    // Compensated directed rounding (interval_double.h): 1 − x is EXACT for
    // x in [1/2, 2] (Sterbenz) and for every dyadic probability, so the
    // residual-aware subtraction keeps point complements point instead of
    // paying the old unconditional ulp each side.
    return IntervalDouble(interval_internal::DownSub(1.0, x.hi),
                          interval_internal::UpSub(1.0, x.lo))
        .ClampedToUnit();
  }
  // Zero/one tests demand the POINT interval: a nondegenerate interval only
  // brackets the exact value, so short-circuiting on it would be unsound.
  // Returning a conservative `false` merely skips an optimization — every
  // kernel's general path computes the same enclosure.
  static bool IsZero(const IntervalDouble& x) {
    assert(!std::isnan(x.lo) && !std::isnan(x.hi) &&
           "NaN probability in the interval backend");
    return x.lo == 0.0 && x.hi == 0.0;
  }
  static bool IsOne(const IntervalDouble& x) {
    assert(!std::isnan(x.lo) && !std::isnan(x.hi) &&
           "NaN probability in the interval backend");
    return x.lo == 1.0 && x.hi == 1.0;
  }
  static double ToDouble(const IntervalDouble& x) { return x.midpoint(); }
};

/// Streaming sum of the probabilities of DISJOINT events (deterministic-OR
/// gates, the run-start states of the interval DP): the generic accumulator
/// is exactly the sequential `+=` the kernels always used, so the Rational
/// and double backends are bit-identical to a plain loop. The IntervalDouble
/// specialization below compensates instead of clamp-and-round per step.
template <class Num>
class DisjointSumAccumulator {
 public:
  void Add(const Num& term) { total_ += term; }
  Num Total() const { return total_; }

 private:
  Num total_ = NumericOps<Num>::Zero();
};

/// Interval backend: both endpoints run through the compensated directed
/// accumulators (interval_double.h), so a k-term sum costs ulps of the
/// RESIDUAL stream instead of k outward roundings of the running sum. The
/// single final clamp is sound because the total — unlike a signed partial
/// sum — is itself the probability of the disjoint union.
template <>
class DisjointSumAccumulator<IntervalDouble> {
 public:
  void Add(const IntervalDouble& term) {
    lo_.Add(term.lo);
    hi_.Add(term.hi);
  }
  IntervalDouble Total() const {
    return IntervalDouble(lo_.Value(), hi_.Value()).ClampedToUnit();
  }

 private:
  interval_internal::DownSum lo_;
  interval_internal::UpSum hi_;
};

/// The instance's exact edge probabilities converted into the backend type.
template <class Num>
std::vector<Num> ConvertProbs(const std::vector<Rational>& probs) {
  std::vector<Num> out;
  out.reserve(probs.size());
  for (const Rational& p : probs) out.push_back(NumericOps<Num>::From(p));
  return out;
}

/// Zero-copy view of exact probabilities in the backend type: the exact
/// backend references the caller's vector (which must outlive the view);
/// the double backend converts once. Keeps the hot exact paths free of
/// BigInt copies.
template <class Num>
class BackendProbs {
 public:
  explicit BackendProbs(const std::vector<Rational>& probs) {
    if constexpr (std::is_same_v<Num, Rational>) {
      probs_ = &probs;
    } else {
      converted_ = ConvertProbs<Num>(probs);
    }
  }

  const std::vector<Num>& operator*() const {
    if constexpr (std::is_same_v<Num, Rational>) {
      return *probs_;
    } else {
      return converted_;
    }
  }
  const Num& operator[](size_t i) const { return (**this)[i]; }

 private:
  const std::vector<Rational>* probs_ = nullptr;
  std::vector<Num> converted_;
};

}  // namespace phom
