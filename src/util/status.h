#pragma once

#include <sstream>
#include <stdexcept>
#include <string>
#include <utility>

/// \file status.h
/// Arrow/RocksDB-style error model: fallible operations return a Status (or a
/// Result<T>, see result.h) instead of throwing. Internal invariant violations
/// use PHOM_CHECK, which throws std::logic_error (they indicate bugs, not
/// recoverable conditions).

namespace phom {

/// Outcome of a fallible operation.
class Status {
 public:
  enum class Code {
    kOk = 0,
    kInvalidArgument,
    kNotSupported,      ///< e.g. requesting a PTIME algorithm outside its cell
    kResourceExhausted, ///< fallback solver exceeded its configured limits
    kDeadlineExceeded,  ///< per-request deadline passed before completion
    kCancelled          ///< caller cancelled the request via its ticket
  };

  Status() : code_(Code::kOk) {}

  static Status OK() { return Status(); }
  static Status Invalid(std::string msg) {
    return Status(Code::kInvalidArgument, std::move(msg));
  }
  static Status NotSupported(std::string msg) {
    return Status(Code::kNotSupported, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(Code::kResourceExhausted, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(Code::kDeadlineExceeded, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(Code::kCancelled, std::move(msg));
  }

  bool ok() const { return code_ == Code::kOk; }
  Code code() const { return code_; }
  const std::string& message() const { return message_; }

  std::string ToString() const {
    if (ok()) return "OK";
    std::string name;
    switch (code_) {
      case Code::kOk: name = "OK"; break;
      case Code::kInvalidArgument: name = "Invalid"; break;
      case Code::kNotSupported: name = "NotSupported"; break;
      case Code::kResourceExhausted: name = "ResourceExhausted"; break;
      case Code::kDeadlineExceeded: name = "DeadlineExceeded"; break;
      case Code::kCancelled: name = "Cancelled"; break;
    }
    return name + ": " + message_;
  }

 private:
  Status(Code code, std::string msg) : code_(code), message_(std::move(msg)) {}

  Code code_;
  std::string message_;
};

namespace internal {
[[noreturn]] inline void ThrowCheckFailure(const char* expr, const char* file,
                                           int line, const std::string& extra) {
  std::ostringstream os;
  os << "PHOM_CHECK failed: " << expr << " at " << file << ":" << line;
  if (!extra.empty()) os << " — " << extra;
  throw std::logic_error(os.str());
}
}  // namespace internal

}  // namespace phom

/// Internal invariant check; failure is a bug in this library.
#define PHOM_CHECK(expr)                                                      \
  do {                                                                        \
    if (!(expr)) {                                                            \
      ::phom::internal::ThrowCheckFailure(#expr, __FILE__, __LINE__, "");     \
    }                                                                         \
  } while (0)

#define PHOM_CHECK_MSG(expr, msg)                                             \
  do {                                                                        \
    if (!(expr)) {                                                            \
      std::ostringstream phom_check_os_;                                      \
      phom_check_os_ << msg;                                                  \
      ::phom::internal::ThrowCheckFailure(#expr, __FILE__, __LINE__,          \
                                          phom_check_os_.str());              \
    }                                                                         \
  } while (0)

/// Propagate a non-OK Status to the caller.
#define PHOM_RETURN_NOT_OK(expr)                \
  do {                                          \
    ::phom::Status phom_status_ = (expr);       \
    if (!phom_status_.ok()) return phom_status_; \
  } while (0)
