#pragma once

#include <atomic>
#include <chrono>
#include <sstream>
#include <stdexcept>
#include <string>
#include <utility>

/// \file status.h
/// Arrow/RocksDB-style error model: fallible operations return a Status (or a
/// Result<T>, see result.h) instead of throwing. Internal invariant violations
/// use PHOM_CHECK, which throws std::logic_error (they indicate bugs, not
/// recoverable conditions). Also home of CancelToken, the cooperative
/// interruption primitive whose Check() speaks this error model — it lives
/// here (not in solver.h) so the leaf kernels (fallback.h, monte_carlo.h)
/// can hold a token without depending on the dispatch layer.

namespace phom {

/// Outcome of a fallible operation.
class Status {
 public:
  enum class Code {
    kOk = 0,
    kInvalidArgument,
    kNotSupported,      ///< e.g. requesting a PTIME algorithm outside its cell
    kResourceExhausted, ///< fallback solver exceeded its configured limits
    kDeadlineExceeded,  ///< per-request deadline passed before completion
    kCancelled          ///< caller cancelled the request via its ticket
  };

  Status() : code_(Code::kOk) {}

  static Status OK() { return Status(); }
  static Status Invalid(std::string msg) {
    return Status(Code::kInvalidArgument, std::move(msg));
  }
  static Status NotSupported(std::string msg) {
    return Status(Code::kNotSupported, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(Code::kResourceExhausted, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(Code::kDeadlineExceeded, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(Code::kCancelled, std::move(msg));
  }

  bool ok() const { return code_ == Code::kOk; }
  Code code() const { return code_; }
  const std::string& message() const { return message_; }

  std::string ToString() const {
    if (ok()) return "OK";
    std::string name;
    switch (code_) {
      case Code::kOk: name = "OK"; break;
      case Code::kInvalidArgument: name = "Invalid"; break;
      case Code::kNotSupported: name = "NotSupported"; break;
      case Code::kResourceExhausted: name = "ResourceExhausted"; break;
      case Code::kDeadlineExceeded: name = "DeadlineExceeded"; break;
      case Code::kCancelled: name = "Cancelled"; break;
    }
    return name + ": " + message_;
  }

 private:
  Status(Code code, std::string msg) : code_(code), message_(std::move(msg)) {}

  Code code_;
  std::string message_;
};

/// Cooperative interruption for long solves (the serve layer's deadline and
/// cancellation support). Computations consult the token at well-defined
/// yield points — before each component subproblem of a componentwise
/// dispatch (solver.h), and every cancel_check_interval iterations INSIDE
/// the world-enumeration / match-enumeration / Monte Carlo sampling loops
/// (fallback.h, monte_carlo.h) — and abort with DeadlineExceeded / Cancelled
/// when it fires. A token that never fires changes nothing: the answer is
/// bit-identical to solving without one.
///
/// Thread safety: Cancel/cancelled/Check may race freely (the flag is
/// atomic). SetDeadline is NOT synchronized — set it before sharing the
/// token with solving threads.
class CancelToken {
 public:
  using Clock = std::chrono::steady_clock;

  /// Requests cancellation. Cooperative: a solve already past its last
  /// yield point still completes normally.
  void Cancel() { cancelled_.store(true, std::memory_order_relaxed); }
  bool cancelled() const {
    return cancelled_.load(std::memory_order_relaxed);
  }

  /// Absolute deadline; call before handing the token to solving threads.
  void SetDeadline(Clock::time_point deadline) { deadline_ = deadline; }
  bool has_deadline() const {
    return deadline_ != Clock::time_point::max();
  }
  bool expired() const {
    return has_deadline() && Clock::now() >= deadline_;
  }

  /// OK while the computation may continue; otherwise Cancelled (checked
  /// first: an explicit cancel beats a deadline that lapsed in parallel)
  /// or DeadlineExceeded.
  Status Check() const {
    if (cancelled()) {
      return Status::Cancelled("solve cancelled by caller");
    }
    if (expired()) {
      return Status::DeadlineExceeded("solve deadline exceeded");
    }
    return Status::OK();
  }

 private:
  std::atomic<bool> cancelled_{false};
  Clock::time_point deadline_ = Clock::time_point::max();
};

namespace internal {
[[noreturn]] inline void ThrowCheckFailure(const char* expr, const char* file,
                                           int line, const std::string& extra) {
  std::ostringstream os;
  os << "PHOM_CHECK failed: " << expr << " at " << file << ":" << line;
  if (!extra.empty()) os << " — " << extra;
  throw std::logic_error(os.str());
}
}  // namespace internal

}  // namespace phom

/// Internal invariant check; failure is a bug in this library.
#define PHOM_CHECK(expr)                                                      \
  do {                                                                        \
    if (!(expr)) {                                                            \
      ::phom::internal::ThrowCheckFailure(#expr, __FILE__, __LINE__, "");     \
    }                                                                         \
  } while (0)

#define PHOM_CHECK_MSG(expr, msg)                                             \
  do {                                                                        \
    if (!(expr)) {                                                            \
      std::ostringstream phom_check_os_;                                      \
      phom_check_os_ << msg;                                                  \
      ::phom::internal::ThrowCheckFailure(#expr, __FILE__, __LINE__,          \
                                          phom_check_os_.str());              \
    }                                                                         \
  } while (0)

/// Propagate a non-OK Status to the caller.
#define PHOM_RETURN_NOT_OK(expr)                \
  do {                                          \
    ::phom::Status phom_status_ = (expr);       \
    if (!phom_status_.ok()) return phom_status_; \
  } while (0)
