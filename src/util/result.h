#pragma once

#include <utility>
#include <variant>

#include "src/util/status.h"

/// \file result.h
/// Result<T> holds either a value or a non-OK Status (Arrow's arrow::Result
/// idiom). Accessing the value of an errored Result is a programming error.

namespace phom {

template <typename T>
class Result {
 public:
  /*implicit*/ Result(T value) : repr_(std::move(value)) {}
  /*implicit*/ Result(Status status) : repr_(std::move(status)) {
    PHOM_CHECK_MSG(!std::get<Status>(repr_).ok(),
                   "Result constructed from OK status");
  }

  bool ok() const { return std::holds_alternative<T>(repr_); }

  const Status status() const {
    return ok() ? Status::OK() : std::get<Status>(repr_);
  }

  const T& ValueOrDie() const {
    PHOM_CHECK_MSG(ok(), "ValueOrDie on errored Result: " +
                             std::get<Status>(repr_).ToString());
    return std::get<T>(repr_);
  }

  T& ValueOrDie() {
    PHOM_CHECK_MSG(ok(), "ValueOrDie on errored Result: " +
                             std::get<Status>(repr_).ToString());
    return std::get<T>(repr_);
  }

  T MoveValueOrDie() {
    PHOM_CHECK_MSG(ok(), "MoveValueOrDie on errored Result: " +
                             std::get<Status>(repr_).ToString());
    return std::move(std::get<T>(repr_));
  }

  const T& operator*() const { return ValueOrDie(); }
  const T* operator->() const { return &ValueOrDie(); }

 private:
  std::variant<Status, T> repr_;
};

}  // namespace phom

/// Assign the value of a Result expression to `lhs`, or propagate its Status.
#define PHOM_ASSIGN_OR_RETURN_IMPL(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                               \
  if (!tmp.ok()) return tmp.status();               \
  lhs = tmp.MoveValueOrDie();

#define PHOM_ASSIGN_OR_RETURN(lhs, rexpr)                                 \
  PHOM_ASSIGN_OR_RETURN_IMPL(PHOM_CONCAT_(phom_result_, __LINE__), lhs, \
                             rexpr)

#define PHOM_CONCAT_INNER_(a, b) a##b
#define PHOM_CONCAT_(a, b) PHOM_CONCAT_INNER_(a, b)
