#include "src/util/rational.h"

#include <cmath>
#include <utility>

namespace phom {

Rational::Rational(BigInt num, BigInt den)
    : num_(std::move(num)), den_(std::move(den)) {
  PHOM_CHECK_MSG(!den_.is_zero(), "Rational with zero denominator");
  if (den_.is_negative()) {
    num_ = num_.Negated();
    den_ = den_.Negated();
  }
  if (num_.is_zero()) {
    den_ = BigInt(1);
    return;
  }
  BigInt g = BigInt::Gcd(num_, den_);
  if (g != BigInt(1)) {
    num_ = num_ / g;
    den_ = den_ / g;
  }
}

Rational Rational::FromDouble(double value) {
  PHOM_CHECK_MSG(std::isfinite(value), "Rational::FromDouble of non-finite");
  if (value == 0.0) return Rational::Zero();
  int exp = 0;
  const double mantissa = std::frexp(value, &exp);  // value = mantissa·2^exp
  // 53 bits make the scaled mantissa exactly integral (|mantissa| ∈ [0.5, 1)).
  const int64_t m = static_cast<int64_t>(std::ldexp(mantissa, 53));
  const int shift = exp - 53;
  if (shift >= 0) {
    return Rational(BigInt(m).ShiftLeft(static_cast<uint64_t>(shift)),
                    BigInt(1));
  }
  return Rational(BigInt(m), BigInt::Pow2(static_cast<uint64_t>(-shift)));
}

bool Rational::IsProbability() const {
  return !num_.is_negative() && num_ <= den_;
}

Rational Rational::operator+(const Rational& other) const {
  return Rational(num_ * other.den_ + other.num_ * den_, den_ * other.den_);
}

Rational Rational::operator-(const Rational& other) const {
  return Rational(num_ * other.den_ - other.num_ * den_, den_ * other.den_);
}

Rational Rational::operator*(const Rational& other) const {
  return Rational(num_ * other.num_, den_ * other.den_);
}

Rational Rational::operator/(const Rational& other) const {
  PHOM_CHECK_MSG(!other.is_zero(), "Rational division by zero");
  return Rational(num_ * other.den_, den_ * other.num_);
}

Rational Rational::operator-() const {
  Rational out = *this;
  out.num_ = out.num_.Negated();
  return out;
}

Rational Rational::Pow(uint64_t exponent) const {
  Rational result = One();
  Rational base = *this;
  while (exponent) {
    if (exponent & 1) result *= base;
    base *= base;
    exponent >>= 1;
  }
  return result;
}

int Rational::Compare(const Rational& other) const {
  return (num_ * other.den_).Compare(other.num_ * den_);
}

Result<Rational> Rational::FromString(std::string_view text) {
  if (text.empty()) return Status::Invalid("empty rational literal");
  size_t slash = text.find('/');
  if (slash != std::string_view::npos) {
    PHOM_ASSIGN_OR_RETURN(BigInt num, BigInt::FromString(text.substr(0, slash)));
    PHOM_ASSIGN_OR_RETURN(BigInt den,
                          BigInt::FromString(text.substr(slash + 1)));
    if (den.is_zero()) return Status::Invalid("zero denominator: " +
                                              std::string(text));
    return Rational(std::move(num), std::move(den));
  }
  size_t dot = text.find('.');
  if (dot == std::string_view::npos) {
    PHOM_ASSIGN_OR_RETURN(BigInt num, BigInt::FromString(text));
    return Rational(std::move(num), BigInt(1));
  }
  std::string digits(text.substr(0, dot));
  std::string_view frac = text.substr(dot + 1);
  if (frac.empty()) return Status::Invalid("trailing dot: " + std::string(text));
  bool negative = !digits.empty() && digits[0] == '-';
  digits += std::string(frac);
  PHOM_ASSIGN_OR_RETURN(BigInt num, BigInt::FromString(digits));
  BigInt den(1);
  for (size_t i = 0; i < frac.size(); ++i) den = den * BigInt(10);
  (void)negative;
  return Rational(std::move(num), std::move(den));
}

std::string Rational::ToString() const {
  if (den_ == BigInt(1)) return num_.ToString();
  return num_.ToString() + "/" + den_.ToString();
}

std::string Rational::ToDecimalString(int digits) const {
  BigInt scale(1);
  for (int i = 0; i < digits; ++i) scale = scale * BigInt(10);
  BigInt scaled = num_.Abs() * scale / den_;
  std::string body = scaled.ToString();
  if (static_cast<int>(body.size()) <= digits) {
    body.insert(0, digits + 1 - body.size(), '0');
  }
  body.insert(body.size() - digits, ".");
  if (num_.is_negative()) body.insert(0, "-");
  return body;
}

double Rational::ToDouble() const {
  // Scale so both operands fit comfortably in double range.
  uint64_t num_bits = num_.BitLength();
  uint64_t den_bits = den_.BitLength();
  uint64_t excess = 0;
  uint64_t max_bits = std::max(num_bits, den_bits);
  if (max_bits > 900) excess = max_bits - 900;
  BigInt n = num_.ShiftRight(excess);
  BigInt d = den_.ShiftRight(excess);
  if (d.is_zero()) return 0.0;
  return n.ToDouble() / d.ToDouble();
}

size_t Rational::Hash() const {
  size_t h = num_.Hash();
  h ^= den_.Hash() + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
  return h;
}

}  // namespace phom
