#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "src/util/bigint.h"
#include "src/util/result.h"

/// \file rational.h
/// Exact rational numbers over BigInt. All probabilities in the library are
/// Rationals, so computed answers are exact (tests compare with ==, and the
/// #P-hardness reductions recover integer model counts via Pr * 2^m).

namespace phom {

class Rational {
 public:
  /// Zero.
  Rational() : num_(0), den_(1) {}
  /*implicit*/ Rational(int64_t value) : num_(value), den_(1) {}
  Rational(int64_t num, int64_t den) : Rational(BigInt(num), BigInt(den)) {}
  /// Normalizes: gcd-reduced, denominator > 0. PHOM_CHECKs den != 0.
  Rational(BigInt num, BigInt den);

  /// Parses "3", "-3", "3/4", "0.35", "-1.5".
  static Result<Rational> FromString(std::string_view text);
  /// Exact value of an IEEE double (every finite double is a dyadic
  /// rational m/2^k). PHOM_CHECKs that `value` is finite. This is the
  /// lossless bridge the interval backend uses to PROVE its enclosures.
  static Rational FromDouble(double value);
  static Rational Zero() { return Rational(0); }
  static Rational One() { return Rational(1); }
  static Rational Half() { return Rational(1, 2); }

  const BigInt& num() const { return num_; }
  const BigInt& den() const { return den_; }

  bool is_zero() const { return num_.is_zero(); }
  bool is_one() const { return num_ == den_; }
  bool is_negative() const { return num_.is_negative(); }
  /// True iff 0 <= *this <= 1.
  bool IsProbability() const;

  Rational operator+(const Rational& other) const;
  Rational operator-(const Rational& other) const;
  Rational operator*(const Rational& other) const;
  /// PHOM_CHECKs against division by zero.
  Rational operator/(const Rational& other) const;
  Rational operator-() const;

  Rational& operator+=(const Rational& o) { return *this = *this + o; }
  Rational& operator-=(const Rational& o) { return *this = *this - o; }
  Rational& operator*=(const Rational& o) { return *this = *this * o; }
  Rational& operator/=(const Rational& o) { return *this = *this / o; }

  /// 1 - *this; the probability of the complementary event.
  Rational Complement() const { return One() - *this; }
  Rational Pow(uint64_t exponent) const;

  int Compare(const Rational& other) const;
  bool operator==(const Rational& o) const { return Compare(o) == 0; }
  bool operator!=(const Rational& o) const { return Compare(o) != 0; }
  bool operator<(const Rational& o) const { return Compare(o) < 0; }
  bool operator<=(const Rational& o) const { return Compare(o) <= 0; }
  bool operator>(const Rational& o) const { return Compare(o) > 0; }
  bool operator>=(const Rational& o) const { return Compare(o) >= 0; }

  /// "num/den", or just "num" when den == 1.
  std::string ToString() const;
  /// Truncated decimal expansion with `digits` fractional digits.
  std::string ToDecimalString(int digits) const;
  double ToDouble() const;

  size_t Hash() const;

 private:
  BigInt num_;
  BigInt den_;  // always > 0
};

}  // namespace phom
