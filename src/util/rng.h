#pragma once

#include <cstdint>
#include <random>
#include <vector>

#include "src/util/rational.h"
#include "src/util/status.h"

/// \file rng.h
/// Seeded random number generation for workload generators. All generators in
/// the library take an explicit Rng so every experiment is reproducible.

namespace phom {

class Rng {
 public:
  explicit Rng(uint64_t seed) : engine_(seed) {}

  /// Uniform integer in [lo, hi] (inclusive).
  int64_t UniformInt(int64_t lo, int64_t hi) {
    PHOM_CHECK(lo <= hi);
    return std::uniform_int_distribution<int64_t>(lo, hi)(engine_);
  }

  /// Bernoulli draw with probability p (given as double; generator-only use).
  bool Bernoulli(double p) {
    return std::bernoulli_distribution(p)(engine_);
  }

  /// Uniform dyadic probability k / 2^log2_den with k in [0, 2^log2_den].
  /// Both endpoints (0 and 1) are included, matching the paper's allowance of
  /// certain and impossible edges.
  Rational DyadicProbability(int log2_den) {
    PHOM_CHECK(log2_den >= 1 && log2_den <= 62);
    int64_t den = int64_t{1} << log2_den;
    return Rational(UniformInt(0, den), den);
  }

  /// Uniform dyadic probability excluding the endpoints 0 and 1.
  Rational NontrivialDyadicProbability(int log2_den) {
    PHOM_CHECK(log2_den >= 1 && log2_den <= 62);
    int64_t den = int64_t{1} << log2_den;
    return Rational(UniformInt(1, den - 1), den);
  }

  /// Uniformly picks an element of a non-empty vector.
  template <typename T>
  const T& Pick(const std::vector<T>& items) {
    PHOM_CHECK(!items.empty());
    return items[static_cast<size_t>(UniformInt(0, items.size() - 1))];
  }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace phom
