#include "src/util/bigint.h"

#include <algorithm>
#include <cmath>

namespace phom {

namespace {
constexpr uint64_t kLimbBits = 32;
constexpr uint64_t kLimbBase = uint64_t{1} << kLimbBits;
}  // namespace

BigInt::BigInt(int sign, std::vector<uint32_t> mag)
    : sign_(sign), mag_(std::move(mag)) {
  Normalize(&mag_);
  if (mag_.empty()) sign_ = 0;
  PHOM_CHECK(mag_.empty() == (sign_ == 0));
}

BigInt::BigInt(int64_t value) {
  if (value == 0) {
    sign_ = 0;
    return;
  }
  sign_ = value > 0 ? 1 : -1;
  // Avoid UB on INT64_MIN by going through uint64_t.
  uint64_t mag = value > 0 ? static_cast<uint64_t>(value)
                           : ~static_cast<uint64_t>(value) + 1;
  mag_.push_back(static_cast<uint32_t>(mag & 0xffffffffu));
  if (mag >> kLimbBits) mag_.push_back(static_cast<uint32_t>(mag >> kLimbBits));
}

void BigInt::Normalize(std::vector<uint32_t>* mag) {
  while (!mag->empty() && mag->back() == 0) mag->pop_back();
}

int BigInt::CompareMag(const std::vector<uint32_t>& a,
                       const std::vector<uint32_t>& b) {
  if (a.size() != b.size()) return a.size() < b.size() ? -1 : 1;
  for (size_t i = a.size(); i-- > 0;) {
    if (a[i] != b[i]) return a[i] < b[i] ? -1 : 1;
  }
  return 0;
}

std::vector<uint32_t> BigInt::AddMag(const std::vector<uint32_t>& a,
                                     const std::vector<uint32_t>& b) {
  const std::vector<uint32_t>& longer = a.size() >= b.size() ? a : b;
  const std::vector<uint32_t>& shorter = a.size() >= b.size() ? b : a;
  std::vector<uint32_t> out;
  out.reserve(longer.size() + 1);
  uint64_t carry = 0;
  for (size_t i = 0; i < longer.size(); ++i) {
    uint64_t sum = carry + longer[i] + (i < shorter.size() ? shorter[i] : 0);
    out.push_back(static_cast<uint32_t>(sum & 0xffffffffu));
    carry = sum >> kLimbBits;
  }
  if (carry) out.push_back(static_cast<uint32_t>(carry));
  return out;
}

std::vector<uint32_t> BigInt::SubMag(const std::vector<uint32_t>& a,
                                     const std::vector<uint32_t>& b) {
  PHOM_CHECK(CompareMag(a, b) >= 0);
  std::vector<uint32_t> out;
  out.reserve(a.size());
  int64_t borrow = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    int64_t diff = static_cast<int64_t>(a[i]) -
                   (i < b.size() ? static_cast<int64_t>(b[i]) : 0) - borrow;
    if (diff < 0) {
      diff += static_cast<int64_t>(kLimbBase);
      borrow = 1;
    } else {
      borrow = 0;
    }
    out.push_back(static_cast<uint32_t>(diff));
  }
  Normalize(&out);
  return out;
}

std::vector<uint32_t> BigInt::MulMag(const std::vector<uint32_t>& a,
                                     const std::vector<uint32_t>& b) {
  if (a.empty() || b.empty()) return {};
  std::vector<uint32_t> out(a.size() + b.size(), 0);
  for (size_t i = 0; i < a.size(); ++i) {
    uint64_t carry = 0;
    for (size_t j = 0; j < b.size(); ++j) {
      uint64_t cur = static_cast<uint64_t>(a[i]) * b[j] + out[i + j] + carry;
      out[i + j] = static_cast<uint32_t>(cur & 0xffffffffu);
      carry = cur >> kLimbBits;
    }
    size_t k = i + b.size();
    while (carry) {
      uint64_t cur = out[k] + carry;
      out[k] = static_cast<uint32_t>(cur & 0xffffffffu);
      carry = cur >> kLimbBits;
      ++k;
    }
  }
  Normalize(&out);
  return out;
}

BigInt BigInt::operator+(const BigInt& other) const {
  if (sign_ == 0) return other;
  if (other.sign_ == 0) return *this;
  if (sign_ == other.sign_) return BigInt(sign_, AddMag(mag_, other.mag_));
  int cmp = CompareMag(mag_, other.mag_);
  if (cmp == 0) return BigInt();
  if (cmp > 0) return BigInt(sign_, SubMag(mag_, other.mag_));
  return BigInt(other.sign_, SubMag(other.mag_, mag_));
}

BigInt BigInt::operator-(const BigInt& other) const {
  return *this + other.Negated();
}

BigInt BigInt::operator*(const BigInt& other) const {
  if (sign_ == 0 || other.sign_ == 0) return BigInt();
  return BigInt(sign_ * other.sign_, MulMag(mag_, other.mag_));
}

BigInt BigInt::Abs() const { return BigInt(sign_ == 0 ? 0 : 1, mag_); }

BigInt BigInt::Negated() const { return BigInt(-sign_, mag_); }

uint64_t BigInt::BitLength() const {
  if (mag_.empty()) return 0;
  uint32_t top = mag_.back();
  uint64_t bits = (mag_.size() - 1) * kLimbBits;
  while (top) {
    ++bits;
    top >>= 1;
  }
  return bits;
}

bool BigInt::Bit(uint64_t i) const {
  size_t limb = i / kLimbBits;
  if (limb >= mag_.size()) return false;
  return (mag_[limb] >> (i % kLimbBits)) & 1u;
}

bool BigInt::IsPowerOfTwo() const {
  if (sign_ <= 0) return false;
  return TrailingZeroBits() + 1 == BitLength();
}

uint64_t BigInt::TrailingZeroBits() const {
  if (mag_.empty()) return 0;
  uint64_t bits = 0;
  for (uint32_t limb : mag_) {
    if (limb == 0) {
      bits += kLimbBits;
    } else {
      bits += static_cast<uint64_t>(__builtin_ctz(limb));
      break;
    }
  }
  return bits;
}

BigInt BigInt::ShiftLeft(uint64_t bits) const {
  if (sign_ == 0 || bits == 0) return *this;
  size_t limb_shift = bits / kLimbBits;
  uint32_t bit_shift = static_cast<uint32_t>(bits % kLimbBits);
  std::vector<uint32_t> out(limb_shift, 0);
  uint32_t carry = 0;
  for (uint32_t limb : mag_) {
    if (bit_shift == 0) {
      out.push_back(limb);
    } else {
      out.push_back((limb << bit_shift) | carry);
      carry = static_cast<uint32_t>(static_cast<uint64_t>(limb) >>
                                    (kLimbBits - bit_shift));
    }
  }
  if (carry) out.push_back(carry);
  return BigInt(sign_, std::move(out));
}

BigInt BigInt::ShiftRight(uint64_t bits) const {
  if (sign_ == 0) return *this;
  if (bits >= BitLength()) return BigInt();
  size_t limb_shift = bits / kLimbBits;
  uint32_t bit_shift = static_cast<uint32_t>(bits % kLimbBits);
  std::vector<uint32_t> out;
  out.reserve(mag_.size() - limb_shift);
  for (size_t i = limb_shift; i < mag_.size(); ++i) {
    uint64_t cur = mag_[i] >> bit_shift;
    if (bit_shift && i + 1 < mag_.size()) {
      cur |= static_cast<uint64_t>(mag_[i + 1]) << (kLimbBits - bit_shift);
    }
    out.push_back(static_cast<uint32_t>(cur & 0xffffffffu));
  }
  return BigInt(sign_, std::move(out));
}

void BigInt::DivMod(const BigInt& divisor, BigInt* quotient,
                    BigInt* remainder) const {
  PHOM_CHECK_MSG(!divisor.is_zero(), "BigInt division by zero");
  int cmp = CompareMag(mag_, divisor.mag_);
  if (sign_ == 0 || cmp < 0) {
    *quotient = BigInt();
    *remainder = *this;
    return;
  }
  // Fast path: single-limb divisor.
  if (divisor.mag_.size() == 1) {
    std::vector<uint32_t> q = mag_;
    uint32_t r = DivModSmall(&q, divisor.mag_[0]);
    *quotient = BigInt(sign_ * divisor.sign_, std::move(q));
    *remainder = BigInt(r == 0 ? 0 : sign_,
                        std::vector<uint32_t>{r});
    return;
  }
  // Binary long division on magnitudes.
  BigInt rem;   // accumulates |this| bit by bit
  uint64_t n = BitLength();
  std::vector<uint32_t> q((n + kLimbBits - 1) / kLimbBits, 0);
  BigInt divisor_abs = divisor.Abs();
  for (uint64_t i = n; i-- > 0;) {
    rem = rem.ShiftLeft(1);
    if (Bit(i)) {
      if (rem.sign_ == 0) {
        rem = BigInt(1);
      } else {
        rem.mag_[0] |= 1u;
      }
    }
    if (rem.Compare(divisor_abs) >= 0) {
      rem = rem - divisor_abs;
      q[i / kLimbBits] |= uint32_t{1} << (i % kLimbBits);
    }
  }
  *quotient = BigInt(sign_ * divisor.sign_, std::move(q));
  *remainder = rem.is_zero() ? BigInt() : BigInt(sign_, rem.mag_);
}

BigInt BigInt::operator/(const BigInt& other) const {
  BigInt q, r;
  DivMod(other, &q, &r);
  return q;
}

BigInt BigInt::operator%(const BigInt& other) const {
  BigInt q, r;
  DivMod(other, &q, &r);
  return r;
}

int BigInt::Compare(const BigInt& other) const {
  if (sign_ != other.sign_) return sign_ < other.sign_ ? -1 : 1;
  int mag_cmp = CompareMag(mag_, other.mag_);
  return sign_ >= 0 ? mag_cmp : -mag_cmp;
}

BigInt BigInt::Pow2(uint64_t exponent) { return BigInt(1).ShiftLeft(exponent); }

BigInt BigInt::Gcd(const BigInt& a, const BigInt& b) {
  BigInt x = a.Abs();
  BigInt y = b.Abs();
  if (x.is_zero()) return y;
  if (y.is_zero()) return x;
  uint64_t shift = std::min(x.TrailingZeroBits(), y.TrailingZeroBits());
  x = x.ShiftRight(x.TrailingZeroBits());
  do {
    y = y.ShiftRight(y.TrailingZeroBits());
    if (x.Compare(y) > 0) std::swap(x, y);
    y = y - x;
  } while (!y.is_zero());
  return x.ShiftLeft(shift);
}

uint32_t BigInt::DivModSmall(std::vector<uint32_t>* mag, uint32_t divisor) {
  PHOM_CHECK(divisor != 0);
  uint64_t rem = 0;
  for (size_t i = mag->size(); i-- > 0;) {
    uint64_t cur = (rem << kLimbBits) | (*mag)[i];
    (*mag)[i] = static_cast<uint32_t>(cur / divisor);
    rem = cur % divisor;
  }
  Normalize(mag);
  return static_cast<uint32_t>(rem);
}

void BigInt::MulSmallAdd(std::vector<uint32_t>* mag, uint32_t factor,
                         uint32_t addend) {
  uint64_t carry = addend;
  for (uint32_t& limb : *mag) {
    uint64_t cur = static_cast<uint64_t>(limb) * factor + carry;
    limb = static_cast<uint32_t>(cur & 0xffffffffu);
    carry = cur >> kLimbBits;
  }
  while (carry) {
    mag->push_back(static_cast<uint32_t>(carry & 0xffffffffu));
    carry >>= kLimbBits;
  }
  Normalize(mag);
}

Result<BigInt> BigInt::FromString(std::string_view text) {
  if (text.empty()) return Status::Invalid("empty integer literal");
  int sign = 1;
  size_t pos = 0;
  if (text[0] == '-' || text[0] == '+') {
    sign = text[0] == '-' ? -1 : 1;
    pos = 1;
  }
  if (pos == text.size()) return Status::Invalid("sign without digits");
  std::vector<uint32_t> mag;
  for (; pos < text.size(); ++pos) {
    char c = text[pos];
    if (c < '0' || c > '9') {
      return Status::Invalid("invalid digit in integer literal: " +
                             std::string(text));
    }
    MulSmallAdd(&mag, 10, static_cast<uint32_t>(c - '0'));
  }
  Normalize(&mag);
  int final_sign = mag.empty() ? 0 : sign;  // read before the move below
  return BigInt(final_sign, std::move(mag));
}

std::string BigInt::ToString() const {
  if (sign_ == 0) return "0";
  std::vector<uint32_t> mag = mag_;
  std::string digits;
  while (!mag.empty()) {
    uint32_t chunk = DivModSmall(&mag, 1000000000u);
    for (int i = 0; i < 9; ++i) {
      digits.push_back(static_cast<char>('0' + chunk % 10));
      chunk /= 10;
    }
  }
  while (digits.size() > 1 && digits.back() == '0') digits.pop_back();
  if (sign_ < 0) digits.push_back('-');
  std::reverse(digits.begin(), digits.end());
  return digits;
}

double BigInt::ToDouble() const {
  double out = 0.0;
  for (size_t i = mag_.size(); i-- > 0;) {
    out = out * static_cast<double>(kLimbBase) + static_cast<double>(mag_[i]);
  }
  return sign_ < 0 ? -out : out;
}

std::optional<int64_t> BigInt::ToInt64() const {
  if (BitLength() > 63) {
    // The only 64-bit-magnitude value that fits is INT64_MIN (= -2^63).
    bool is_int64_min =
        sign_ < 0 && BitLength() == 64 && TrailingZeroBits() == 63;
    if (!is_int64_min) return std::nullopt;
  }
  uint64_t mag = 0;
  for (size_t i = mag_.size(); i-- > 0;) {
    mag = (mag << kLimbBits) | mag_[i];
  }
  if (sign_ < 0) return -static_cast<int64_t>(mag);
  return static_cast<int64_t>(mag);
}

size_t BigInt::Hash() const {
  size_t h = static_cast<size_t>(sign_) * 0x9e3779b97f4a7c15ull;
  for (uint32_t limb : mag_) {
    h ^= limb + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
  }
  return h;
}

}  // namespace phom
