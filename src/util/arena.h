#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <type_traits>
#include <vector>

#include "src/util/status.h"

/// \file arena.h
/// MonotonicArena: a chunked bump allocator for per-task scratch memory.
///
/// The serve layer's hot kernels (the 2WP minimal-window sweep in
/// algo_two_way_path.cc and its XPropertyHomomorphism calls) used to perform
/// thousands of small heap allocations per component solve. A worker instead
/// owns one arena, threads it through SolveOptions::scratch, and calls
/// Reset() between tasks: after the first task has warmed the chunk, every
/// later task's scratch is a pointer bump — no malloc on the solving hot
/// path.
///
/// Rules of use:
///  * Allocation never fails for reasonable sizes (chunks grow
///    geometrically); there is no per-object deallocation.
///  * Only trivially-destructible payloads may live in the arena — Reset()
///    reclaims memory without running destructors (enforced for the typed
///    helpers with a static_assert).
///  * NOT thread-safe: one arena belongs to one thread at a time. The serve
///    executor gives each worker its own arena, which is exactly that
///    discipline.
/// Reset() keeps the largest chunk, so a long-lived worker converges to a
/// single allocation-free buffer sized for its largest task.

namespace phom {

class MonotonicArena {
 public:
  /// `first_chunk_bytes` sizes the initial chunk (allocated lazily on first
  /// use); later chunks double until kMaxChunkBytes.
  explicit MonotonicArena(size_t first_chunk_bytes = 4096)
      : next_chunk_bytes_(first_chunk_bytes < kMinChunkBytes
                              ? kMinChunkBytes
                              : first_chunk_bytes) {}

  MonotonicArena(const MonotonicArena&) = delete;
  MonotonicArena& operator=(const MonotonicArena&) = delete;

  /// Bump-allocates `bytes` aligned to `align` (a power of two). The memory
  /// is uninitialized and lives until Reset() or destruction.
  void* Allocate(size_t bytes, size_t align = alignof(std::max_align_t)) {
    PHOM_CHECK((align & (align - 1)) == 0);
    if (bytes == 0) bytes = 1;
    uintptr_t p = (cursor_ + (align - 1)) & ~uintptr_t(align - 1);
    if (p + bytes > limit_) {
      AddChunk(bytes + align);
      p = (cursor_ + (align - 1)) & ~uintptr_t(align - 1);
    }
    cursor_ = p + bytes;
    return reinterpret_cast<void*>(p);
  }

  /// Typed array of `n` default-initialized elements (POD scratch buffers).
  template <class T>
  T* AllocateArray(size_t n) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "arena memory is reclaimed without running destructors");
    return static_cast<T*>(Allocate(n * sizeof(T), alignof(T)));
  }

  /// Reclaims everything allocated since the last Reset. Keeps the single
  /// largest chunk (so steady-state reuse is allocation-free) and drops the
  /// rest.
  void Reset() {
    if (chunks_.empty()) return;
    size_t largest = 0;
    for (size_t i = 1; i < chunks_.size(); ++i) {
      if (chunks_[i].size > chunks_[largest].size) largest = i;
    }
    Chunk keep = std::move(chunks_[largest]);
    chunks_.clear();
    cursor_ = reinterpret_cast<uintptr_t>(keep.data.get());
    limit_ = cursor_ + keep.size;
    chunks_.push_back(std::move(keep));
  }

  /// Bytes currently reserved across all chunks (observability/tests).
  size_t bytes_reserved() const {
    size_t total = 0;
    for (const Chunk& c : chunks_) total += c.size;
    return total;
  }

 private:
  static constexpr size_t kMinChunkBytes = 256;
  static constexpr size_t kMaxChunkBytes = size_t{1} << 22;  // 4 MiB

  struct Chunk {
    std::unique_ptr<std::byte[]> data;
    size_t size = 0;
  };

  void AddChunk(size_t at_least) {
    size_t size = next_chunk_bytes_;
    while (size < at_least) size *= 2;
    if (next_chunk_bytes_ < kMaxChunkBytes) next_chunk_bytes_ *= 2;
    Chunk chunk{std::make_unique<std::byte[]>(size), size};
    cursor_ = reinterpret_cast<uintptr_t>(chunk.data.get());
    limit_ = cursor_ + size;
    chunks_.push_back(std::move(chunk));
  }

  std::vector<Chunk> chunks_;
  uintptr_t cursor_ = 0;
  uintptr_t limit_ = 0;
  size_t next_chunk_bytes_;
};

}  // namespace phom
