#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "src/util/result.h"
#include "src/util/status.h"

/// \file bigint.h
/// Arbitrary-precision signed integers. The paper manipulates probabilities
/// as exact rationals (e.g. hardness reductions recover integer counts as
/// Pr · 2^m), so the whole library computes with exact arithmetic built on
/// this type. Representation: sign + little-endian base-2^32 magnitude.

namespace phom {

class BigInt {
 public:
  /// Zero.
  BigInt() : sign_(0) {}
  /*implicit*/ BigInt(int64_t value);

  /// Parses an optionally signed decimal integer.
  static Result<BigInt> FromString(std::string_view text);
  /// Returns 2^exponent.
  static BigInt Pow2(uint64_t exponent);
  /// Greatest common divisor of |a| and |b| (binary GCD; Gcd(0,0) == 0).
  static BigInt Gcd(const BigInt& a, const BigInt& b);

  bool is_zero() const { return sign_ == 0; }
  bool is_negative() const { return sign_ < 0; }
  /// -1, 0 or +1.
  int sign() const { return sign_; }

  BigInt Abs() const;
  BigInt Negated() const;

  /// Number of bits in the magnitude (0 for zero).
  uint64_t BitLength() const;
  /// Bit i (little-endian) of the magnitude.
  bool Bit(uint64_t i) const;
  /// True iff the magnitude is a power of two times `2^0` (i.e. == 2^k).
  bool IsPowerOfTwo() const;
  /// Largest k such that 2^k divides the magnitude (0 for zero).
  uint64_t TrailingZeroBits() const;

  BigInt ShiftLeft(uint64_t bits) const;
  BigInt ShiftRight(uint64_t bits) const;

  BigInt operator+(const BigInt& other) const;
  BigInt operator-(const BigInt& other) const;
  BigInt operator*(const BigInt& other) const;
  /// Quotient truncated toward zero. PHOM_CHECKs against division by zero.
  BigInt operator/(const BigInt& other) const;
  /// Remainder with the sign of the dividend (C++ semantics).
  BigInt operator%(const BigInt& other) const;
  BigInt operator-() const { return Negated(); }

  BigInt& operator+=(const BigInt& other) { return *this = *this + other; }
  BigInt& operator-=(const BigInt& other) { return *this = *this - other; }
  BigInt& operator*=(const BigInt& other) { return *this = *this * other; }

  /// Computes both quotient (toward zero) and remainder at once.
  void DivMod(const BigInt& divisor, BigInt* quotient, BigInt* remainder) const;

  /// Three-way comparison: negative, zero or positive.
  int Compare(const BigInt& other) const;
  bool operator==(const BigInt& other) const { return Compare(other) == 0; }
  bool operator!=(const BigInt& other) const { return Compare(other) != 0; }
  bool operator<(const BigInt& other) const { return Compare(other) < 0; }
  bool operator<=(const BigInt& other) const { return Compare(other) <= 0; }
  bool operator>(const BigInt& other) const { return Compare(other) > 0; }
  bool operator>=(const BigInt& other) const { return Compare(other) >= 0; }

  /// Decimal rendering, e.g. "-1234".
  std::string ToString() const;
  /// Nearest double (may overflow to +/-inf for huge values).
  double ToDouble() const;
  /// Value as int64_t if it fits, nullopt otherwise.
  std::optional<int64_t> ToInt64() const;

  size_t Hash() const;

 private:
  static std::vector<uint32_t> AddMag(const std::vector<uint32_t>& a,
                                      const std::vector<uint32_t>& b);
  /// Requires |a| >= |b| as magnitudes.
  static std::vector<uint32_t> SubMag(const std::vector<uint32_t>& a,
                                      const std::vector<uint32_t>& b);
  static std::vector<uint32_t> MulMag(const std::vector<uint32_t>& a,
                                      const std::vector<uint32_t>& b);
  static int CompareMag(const std::vector<uint32_t>& a,
                        const std::vector<uint32_t>& b);
  static void Normalize(std::vector<uint32_t>* mag);
  /// Divides magnitude by a single limb; returns remainder.
  static uint32_t DivModSmall(std::vector<uint32_t>* mag, uint32_t divisor);
  static void MulSmallAdd(std::vector<uint32_t>* mag, uint32_t factor,
                          uint32_t addend);

  BigInt(int sign, std::vector<uint32_t> mag);

  int sign_;                   // -1, 0, +1; 0 iff mag_ empty
  std::vector<uint32_t> mag_;  // little-endian limbs, no leading zero limb
};

}  // namespace phom
