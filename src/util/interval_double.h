#pragma once

#include <cassert>
#include <cmath>
#include <limits>

/// \file interval_double.h
/// Self-verifying floating-point probability: a `[lo, hi]` pair of IEEE
/// doubles maintained with OUTWARD directed rounding, so the true (exact
/// Rational) value of every kernel intermediate is provably contained in the
/// interval. IEEE round-to-nearest is within 1/2 ulp of the true result of
/// `+`, `*`, and `1 - x`, so stepping the naturally-rounded result one ulp
/// down (for `lo`) and one ulp up (for `hi`) via std::nextafter yields a
/// sound enclosure without touching the FP environment (no fesetround, so
/// the backend stays safe under -frounding-math-less builds, FMA contraction
/// aside — which std::nextafter on the already-rounded scalar result does
/// not depend on).
///
/// Soundness of the [0, 1] clamp: every intermediate the probability kernels
/// compute is itself the probability of an event — partial sums range over
/// DISJOINT events (world enumeration, deterministic-OR gates, run-start
/// DP states) and products/convex combinations of probabilities stay in
/// [0, 1] — so intersecting each freshly-rounded interval with [0, 1] never
/// discards the true value, and keeps multiplication monotone (nonnegative
/// endpoints) without case analysis.

namespace phom {

namespace interval_internal {

inline double Down(double x) {
  return std::nextafter(x, -std::numeric_limits<double>::infinity());
}

inline double Up(double x) {
  return std::nextafter(x, std::numeric_limits<double>::infinity());
}

}  // namespace interval_internal

struct IntervalDouble {
  double lo = 0.0;
  double hi = 0.0;

  constexpr IntervalDouble() = default;
  /// Point interval [p, p]: exact knowledge of a representable value.
  constexpr explicit IntervalDouble(double point) : lo(point), hi(point) {}
  constexpr IntervalDouble(double lo_in, double hi_in)
      : lo(lo_in), hi(hi_in) {}

  double width() const { return hi - lo; }
  double midpoint() const { return 0.5 * (lo + hi); }

  /// Intersection with [0, 1] — sound per the event-probability invariant
  /// documented above; also restores a nonnegative lo after Down() steps a
  /// zero product/sum to -denorm.
  IntervalDouble ClampedToUnit() const {
    return IntervalDouble(lo < 0.0 ? 0.0 : lo, hi > 1.0 ? 1.0 : hi);
  }

  bool operator==(const IntervalDouble& o) const {
    return lo == o.lo && hi == o.hi;
  }
  bool operator!=(const IntervalDouble& o) const { return !(*this == o); }
};

inline IntervalDouble operator+(const IntervalDouble& a,
                                const IntervalDouble& b) {
  return IntervalDouble(interval_internal::Down(a.lo + b.lo),
                        interval_internal::Up(a.hi + b.hi))
      .ClampedToUnit();
}

/// Endpoint products suffice: both operands are clamped to [0, 1] by
/// construction, so * is monotone in each argument over the whole interval.
inline IntervalDouble operator*(const IntervalDouble& a,
                                const IntervalDouble& b) {
  assert(a.lo >= 0.0 && b.lo >= 0.0 &&
         "IntervalDouble multiplication requires nonnegative intervals");
  return IntervalDouble(interval_internal::Down(a.lo * b.lo),
                        interval_internal::Up(a.hi * b.hi))
      .ClampedToUnit();
}

/// UNCLAMPED outward-rounded sum, for accumulations whose PARTIAL sums may
/// legitimately leave [0, 1] — the signed inclusion–exclusion sums of the
/// lifted UCQ plans (src/lifted/plan.h). Clamping such a partial sum would
/// discard the true value; callers clamp only the final result (which IS an
/// event probability) via ClampedToUnit().
inline IntervalDouble WideAdd(const IntervalDouble& a,
                              const IntervalDouble& b) {
  return IntervalDouble(interval_internal::Down(a.lo + b.lo),
                        interval_internal::Up(a.hi + b.hi));
}

/// UNCLAMPED outward-rounded difference a − b (see WideAdd). Endpoints pair
/// crosswise: the smallest difference is lo_a − hi_b, the largest
/// hi_a − lo_b.
inline IntervalDouble WideSub(const IntervalDouble& a,
                              const IntervalDouble& b) {
  return IntervalDouble(interval_internal::Down(a.lo - b.hi),
                        interval_internal::Up(a.hi - b.lo));
}

inline IntervalDouble& operator+=(IntervalDouble& a, const IntervalDouble& b) {
  return a = a + b;
}

inline IntervalDouble& operator*=(IntervalDouble& a, const IntervalDouble& b) {
  return a = a * b;
}

}  // namespace phom
