#pragma once

#include <cassert>
#include <cmath>
#include <limits>

/// \file interval_double.h
/// Self-verifying floating-point probability: a `[lo, hi]` pair of IEEE
/// doubles maintained with OUTWARD directed rounding, so the true (exact
/// Rational) value of every kernel intermediate is provably contained in the
/// interval. IEEE round-to-nearest is within 1/2 ulp of the true result of
/// `+`, `*`, and `1 - x`, so a std::nextafter step on the naturally-rounded
/// result yields a sound enclosure without touching the FP environment (no
/// fesetround, so the backend stays safe under -frounding-math-less builds).
/// The directed primitives are COMPENSATED: an error-free transformation
/// (TwoSum for ±, the fma residual for ×) recovers the exact rounding error,
/// and the ulp step is taken only when that residual says the rounded value
/// sits on the wrong side — exact operations (dyadic probabilities,
/// like-scaled sums) cost zero width, halving typical per-op width growth.
///
/// Soundness of the [0, 1] clamp: every intermediate the probability kernels
/// compute is itself the probability of an event — partial sums range over
/// DISJOINT events (world enumeration, deterministic-OR gates, run-start
/// DP states) and products/convex combinations of probabilities stay in
/// [0, 1] — so intersecting each freshly-rounded interval with [0, 1] never
/// discards the true value, and keeps multiplication monotone (nonnegative
/// endpoints) without case analysis.

namespace phom {

namespace interval_internal {

inline double Down(double x) {
  return std::nextafter(x, -std::numeric_limits<double>::infinity());
}

inline double Up(double x) {
  return std::nextafter(x, std::numeric_limits<double>::infinity());
}

// --- Compensated directed rounding via error-free transformations. -------
//
// The seed implementation stepped EVERY naturally-rounded result one ulp
// outward, paying a full ulp of width per operation even when the rounded
// result was exact (dyadic probabilities, sums of like-scaled terms) or
// already on the correct side. The primitives below recover the EXACT
// rounding residual — TwoSum for ±, an fma cross-check for × — and step
// only when the residual's sign says the rounded value sits on the wrong
// side of the true result. Soundness of the single step: round-to-nearest
// puts the true value strictly between the neighbors of the rounded result,
// so one nextafter in the residual's direction always restores containment.
// Width cost per op drops from exactly 2 ulp to 0–2 ulp (0 when exact),
// which compounds through the deep DPs (2WP / DWT / interval DP / Shannon)
// into measurably tighter enclosures — see bench_serve_escalation.

/// Knuth's TwoSum: returns the EXACT residual (a + b) − fl(a + b), valid for
/// any finite a, b with no overflow (probabilities and their partial sums
/// never overflow). `*rounded` receives fl(a + b).
inline double TwoSumErr(double a, double b, double* rounded) {
  const double s = a + b;
  const double bb = s - a;
  *rounded = s;
  return (a - (s - bb)) + (b - bb);
}

/// fl(a + b) tightened to a certified LOWER bound on the true a + b.
inline double DownAdd(double a, double b) {
  double s;
  const double err = TwoSumErr(a, b, &s);
  // err >= 0 ⇒ true = s + err >= s: s itself is already a lower bound.
  // err < 0 ⇒ true < s, and round-to-nearest guarantees true > prev(s).
  // (NaN propagates: err comparisons are false, Down(NaN) == NaN.)
  return err >= 0.0 ? s : Down(s);
}

/// fl(a + b) tightened to a certified UPPER bound on the true a + b.
inline double UpAdd(double a, double b) {
  double s;
  const double err = TwoSumErr(a, b, &s);
  return err <= 0.0 ? s : Up(s);
}

/// Certified lower / upper bounds on a − b (negation is exact).
inline double DownSub(double a, double b) { return DownAdd(a, -b); }
inline double UpSub(double a, double b) { return UpAdd(a, -b); }

/// fl(a · b) tightened to a certified LOWER bound on the true a · b. The
/// fma residual fma(a, b, −p) is the exact rounding error whenever the
/// product does not over- or underflow; probabilities cannot overflow, and
/// an underflowed (subnormal or spuriously-zero) product falls back to the
/// unconditional one-ulp step, which is always sound.
inline double DownMul(double a, double b) {
  const double p = a * b;
  if (a == 0.0 || b == 0.0) return p;  // exact zero, no step
  if (std::isnormal(p)) {
    const double err = std::fma(a, b, -p);
    return err >= 0.0 ? p : Down(p);
  }
  return Down(p);
}

/// fl(a · b) tightened to a certified UPPER bound on the true a · b.
inline double UpMul(double a, double b) {
  const double p = a * b;
  if (a == 0.0 || b == 0.0) return p;
  if (std::isnormal(p)) {
    const double err = std::fma(a, b, -p);
    return err <= 0.0 ? p : Up(p);
  }
  return Up(p);
}

/// Compensated DIRECTED accumulator (lower-bound side): a Kahan-style
/// (sum, compensation) pair where the running sum is advanced with exact
/// TwoSum residuals and only the tiny residual stream is rounded downward.
/// Invariant: sum + comp <= exact sum of every Add'ed term, with comp a
/// certified lower bound on the exact residual total — so the per-term
/// width cost is an ulp of the RESIDUAL's magnitude (~1e-16 of a term)
/// instead of an ulp of the running sum. Terms may be signed (the lifted
/// inclusion–exclusion sums); nothing here assumes [0, 1].
struct DownSum {
  double sum = 0.0;
  double comp = 0.0;
  void Add(double x) {
    double s;
    const double err = TwoSumErr(sum, x, &s);
    sum = s;
    comp = DownAdd(comp, err);
  }
  /// Certified lower bound on the exact sum of the terms so far.
  double Value() const { return DownAdd(sum, comp); }
};

/// Upper-bound twin of DownSum: sum + comp >= exact sum.
struct UpSum {
  double sum = 0.0;
  double comp = 0.0;
  void Add(double x) {
    double s;
    const double err = TwoSumErr(sum, x, &s);
    sum = s;
    comp = UpAdd(comp, err);
  }
  /// Certified upper bound on the exact sum of the terms so far.
  double Value() const { return UpAdd(sum, comp); }
};

}  // namespace interval_internal

struct IntervalDouble {
  double lo = 0.0;
  double hi = 0.0;

  constexpr IntervalDouble() = default;
  /// Point interval [p, p]: exact knowledge of a representable value.
  constexpr explicit IntervalDouble(double point) : lo(point), hi(point) {}
  constexpr IntervalDouble(double lo_in, double hi_in)
      : lo(lo_in), hi(hi_in) {}

  double width() const { return hi - lo; }
  double midpoint() const { return 0.5 * (lo + hi); }

  /// Intersection with [0, 1] — sound per the event-probability invariant
  /// documented above; also restores a nonnegative lo after Down() steps a
  /// zero product/sum to -denorm.
  IntervalDouble ClampedToUnit() const {
    return IntervalDouble(lo < 0.0 ? 0.0 : lo, hi > 1.0 ? 1.0 : hi);
  }

  bool operator==(const IntervalDouble& o) const {
    return lo == o.lo && hi == o.hi;
  }
  bool operator!=(const IntervalDouble& o) const { return !(*this == o); }
};

inline IntervalDouble operator+(const IntervalDouble& a,
                                const IntervalDouble& b) {
  return IntervalDouble(interval_internal::DownAdd(a.lo, b.lo),
                        interval_internal::UpAdd(a.hi, b.hi))
      .ClampedToUnit();
}

/// Endpoint products suffice: both operands are clamped to [0, 1] by
/// construction, so * is monotone in each argument over the whole interval.
inline IntervalDouble operator*(const IntervalDouble& a,
                                const IntervalDouble& b) {
  assert(a.lo >= 0.0 && b.lo >= 0.0 &&
         "IntervalDouble multiplication requires nonnegative intervals");
  return IntervalDouble(interval_internal::DownMul(a.lo, b.lo),
                        interval_internal::UpMul(a.hi, b.hi))
      .ClampedToUnit();
}

/// UNCLAMPED outward-rounded sum, for accumulations whose PARTIAL sums may
/// legitimately leave [0, 1] — the signed inclusion–exclusion sums of the
/// lifted UCQ plans (src/lifted/plan.h). Clamping such a partial sum would
/// discard the true value; callers clamp only the final result (which IS an
/// event probability) via ClampedToUnit().
inline IntervalDouble WideAdd(const IntervalDouble& a,
                              const IntervalDouble& b) {
  return IntervalDouble(interval_internal::DownAdd(a.lo, b.lo),
                        interval_internal::UpAdd(a.hi, b.hi));
}

/// UNCLAMPED outward-rounded difference a − b (see WideAdd). Endpoints pair
/// crosswise: the smallest difference is lo_a − hi_b, the largest
/// hi_a − lo_b.
inline IntervalDouble WideSub(const IntervalDouble& a,
                              const IntervalDouble& b) {
  return IntervalDouble(interval_internal::DownSub(a.lo, b.hi),
                        interval_internal::UpSub(a.hi, b.lo));
}

inline IntervalDouble& operator+=(IntervalDouble& a, const IntervalDouble& b) {
  return a = a + b;
}

inline IntervalDouble& operator*=(IntervalDouble& a, const IntervalDouble& b) {
  return a = a * b;
}

}  // namespace phom
