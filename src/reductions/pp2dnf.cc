#include "src/reductions/pp2dnf.h"

#include <set>

#include "src/util/status.h"

namespace phom {

Pp2Dnf RandomPp2Dnf(Rng* rng, size_t num_x, size_t num_y,
                    size_t num_clauses) {
  PHOM_CHECK(num_x >= 1 && num_y >= 1);
  Pp2Dnf out;
  out.num_x = num_x;
  out.num_y = num_y;
  std::set<std::pair<uint32_t, uint32_t>> clauses;
  size_t attempts = 0;
  while (clauses.size() < num_clauses && attempts < 100 * num_clauses + 100) {
    ++attempts;
    clauses.emplace(static_cast<uint32_t>(rng->UniformInt(0, num_x - 1)),
                    static_cast<uint32_t>(rng->UniformInt(0, num_y - 1)));
  }
  out.clauses.assign(clauses.begin(), clauses.end());
  return out;
}

BigInt CountSatisfyingAssignments(const Pp2Dnf& formula) {
  size_t n = formula.num_x + formula.num_y;
  PHOM_CHECK_MSG(n <= 26, "brute-force #PP2DNF limited to 26 variables");
  BigInt count(0);
  for (uint64_t mask = 0; mask < (uint64_t{1} << n); ++mask) {
    bool satisfied = false;
    for (const auto& [x, y] : formula.clauses) {
      bool xv = (mask >> x) & 1;
      bool yv = (mask >> (formula.num_x + y)) & 1;
      if (xv && yv) {
        satisfied = true;
        break;
      }
    }
    if (satisfied) count += BigInt(1);
  }
  return count;
}

}  // namespace phom
