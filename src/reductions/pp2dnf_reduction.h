#pragma once

#include "src/graph/alphabet.h"
#include "src/graph/prob_graph.h"
#include "src/reductions/pp2dnf.h"
#include "src/util/bigint.h"

/// \file pp2dnf_reduction.h
/// The #P-hardness reductions from #PP2DNF:
///  * Prop. 4.1 — PHomL(1WP, PT), labels {S, T}: the polytree instance hangs
///    one branch per variable off the shared vertex R; the variable edges
///    (X_i -S-> R and R -S-> Y_i) have probability 1/2; gadget T-edges at
///    depth j mark the clauses containing each variable. The 1WP query
///    T S^{m+3} T has a match iff some clause has both variables true
///    (the S-distance m+3 forces the two T gadgets to belong to the same
///    clause index). See Figure 7.
///  * Prop. 5.6 — PHom̸L(2WP, PT): same with S ↦ →→← (middle edge carries
///    the probability) and T ↦ →→→; query →→→ (→→←)^{m+3} →→→. Figure 8.
/// In both cases #SAT(ϕ) = Pr(G ⇝ H) · 2^(n₁+n₂).

namespace phom {

inline constexpr LabelId kPpLabelS = 0;
inline constexpr LabelId kPpLabelT = 1;

Alphabet Pp2DnfAlphabet();

struct Pp2DnfReduction {
  ProbGraph instance;  ///< a polytree
  DiGraph query;       ///< 1WP (labeled) / 2WP (unlabeled)
  size_t num_probabilistic_edges = 0;  ///< n1 + n2
};

/// Prop. 4.1: labeled, query ∈ 1WP, instance ∈ PT.
Pp2DnfReduction BuildPp2DnfReductionLabeled(const Pp2Dnf& formula);

/// Prop. 5.6: unlabeled, query ∈ 2WP, instance ∈ PT.
Pp2DnfReduction BuildPp2DnfReductionUnlabeled(const Pp2Dnf& formula);

}  // namespace phom
