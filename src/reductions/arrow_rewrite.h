#pragma once

#include <map>
#include <string>

#include "src/graph/prob_graph.h"

/// \file arrow_rewrite.h
/// The label-elimination gadget shared by Props. 3.4 and 5.6: every labeled
/// edge a -R-> b is replaced by an unlabeled arrow path between a and b
/// (e.g. R ↦ "→→←" creates a → x1 → x2 ← b). Distinct labels map to arrow
/// patterns that cannot be confused with each other inside the rewritten
/// graph, which is how two-wayness simulates labels.

namespace phom {

struct ArrowRewriteRule {
  /// '>' = forward step, '<' = backward step; non-empty.
  std::string pattern;
  /// Which step inherits the original edge's probability (all other steps
  /// are certain). Ignored for certain edges.
  size_t prob_position = 0;
};

/// Rewrites every edge according to the rule of its label. All output edges
/// carry `out_label`.
ProbGraph RewriteArrows(const ProbGraph& g,
                        const std::map<LabelId, ArrowRewriteRule>& rules,
                        LabelId out_label = kUnlabeled);

/// Structure-only variant for query graphs.
DiGraph RewriteArrows(const DiGraph& g,
                      const std::map<LabelId, ArrowRewriteRule>& rules,
                      LabelId out_label = kUnlabeled);

}  // namespace phom
