#pragma once

#include "src/graph/alphabet.h"
#include "src/graph/prob_graph.h"
#include "src/reductions/bipartite.h"
#include "src/util/bigint.h"

/// \file edge_cover_reduction.h
/// The #P-hardness reductions from #Bipartite-Edge-Cover:
///  * Prop. 3.3 — PHomL(⊔1WP, 1WP), labels {C, L, V, R}: the 1WP instance
///    chains one block (L^{l_j} V R^{r_j}) per bipartite edge e_j = (x_{l_j},
///    y_{r_j}) between C separators; the V edges have probability 1/2. One
///    1WP query component per bipartite vertex codes its covering constraint
///    (C L^i V for x_i, V R^i C for y_i). See Figure 5.
///  * Prop. 3.4 — PHom̸L(⊔2WP, 2WP): same construction with labels
///    simulated by arrows (L, R ↦ →→←; C ↦ ←←←; V ↦ →→→→→←, first edge
///    probabilistic).
/// In both cases #EdgeCovers(Γ) = Pr(G ⇝ H) · 2^|E(Γ)|.

namespace phom {

/// Fixed label ids used by the labeled reduction.
inline constexpr LabelId kCoverLabelC = 0;
inline constexpr LabelId kCoverLabelL = 1;
inline constexpr LabelId kCoverLabelV = 2;
inline constexpr LabelId kCoverLabelR = 3;

/// Alphabet mapping the ids above to "C", "L", "V", "R".
Alphabet EdgeCoverAlphabet();

struct EdgeCoverReduction {
  ProbGraph instance;
  DiGraph query;
  /// |E(Γ)|: the count is Pr · 2^this.
  size_t num_probabilistic_edges = 0;
};

/// Prop. 3.3: labeled, instance ∈ 1WP, query ∈ ⊔1WP.
EdgeCoverReduction BuildEdgeCoverReductionLabeled(const BipartiteGraph& graph);

/// Prop. 3.4: unlabeled, instance ∈ 2WP, query ∈ ⊔2WP.
EdgeCoverReduction BuildEdgeCoverReductionUnlabeled(
    const BipartiteGraph& graph);

/// count = prob · 2^num_probabilistic_edges; PHOM_CHECKs integrality.
BigInt RecoverCount(const Rational& prob, size_t num_probabilistic_edges);

}  // namespace phom
