#include "src/reductions/bipartite.h"

#include <set>

#include "src/util/status.h"

namespace phom {

BipartiteGraph RandomBipartite(Rng* rng, size_t nl, size_t nr,
                               double edge_prob, bool cover_all) {
  BipartiteGraph g;
  g.left_size = nl;
  g.right_size = nr;
  std::set<std::pair<uint32_t, uint32_t>> edges;
  for (uint32_t x = 0; x < nl; ++x) {
    for (uint32_t y = 0; y < nr; ++y) {
      if (rng->Bernoulli(edge_prob)) edges.emplace(x, y);
    }
  }
  if (cover_all && nl > 0 && nr > 0) {
    std::vector<bool> left_covered(nl, false);
    std::vector<bool> right_covered(nr, false);
    for (const auto& [x, y] : edges) {
      left_covered[x] = true;
      right_covered[y] = true;
    }
    for (uint32_t x = 0; x < nl; ++x) {
      if (!left_covered[x]) {
        edges.emplace(x, static_cast<uint32_t>(rng->UniformInt(0, nr - 1)));
      }
    }
    for (const auto& [x, y] : edges) right_covered[y] = true;
    for (uint32_t y = 0; y < nr; ++y) {
      if (!right_covered[y]) {
        edges.emplace(static_cast<uint32_t>(rng->UniformInt(0, nl - 1)), y);
      }
    }
  }
  g.edges.assign(edges.begin(), edges.end());
  return g;
}

BigInt CountEdgeCoversBruteForce(const BipartiteGraph& graph) {
  size_t m = graph.edges.size();
  PHOM_CHECK_MSG(m <= 26, "brute-force edge cover limited to 26 edges");
  // A vertex with no incident edge can never be covered.
  std::vector<uint32_t> left_degree(graph.left_size, 0);
  std::vector<uint32_t> right_degree(graph.right_size, 0);
  for (const auto& [x, y] : graph.edges) {
    ++left_degree[x];
    ++right_degree[y];
  }
  for (uint32_t d : left_degree) {
    if (d == 0) return BigInt(0);
  }
  for (uint32_t d : right_degree) {
    if (d == 0) return BigInt(0);
  }

  BigInt count(0);
  std::vector<bool> left_cov(graph.left_size);
  std::vector<bool> right_cov(graph.right_size);
  for (uint64_t mask = 0; mask < (uint64_t{1} << m); ++mask) {
    std::fill(left_cov.begin(), left_cov.end(), false);
    std::fill(right_cov.begin(), right_cov.end(), false);
    for (size_t i = 0; i < m; ++i) {
      if ((mask >> i) & 1) {
        left_cov[graph.edges[i].first] = true;
        right_cov[graph.edges[i].second] = true;
      }
    }
    bool cover = true;
    for (size_t x = 0; x < graph.left_size && cover; ++x) cover = left_cov[x];
    for (size_t y = 0; y < graph.right_size && cover; ++y) cover = right_cov[y];
    if (cover) count += BigInt(1);
  }
  return count;
}

}  // namespace phom
