#include "src/reductions/edge_cover_reduction.h"

#include "src/graph/builders.h"
#include "src/reductions/arrow_rewrite.h"

namespace phom {

Alphabet EdgeCoverAlphabet() {
  Alphabet alphabet;
  PHOM_CHECK(alphabet.Intern("C") == kCoverLabelC);
  PHOM_CHECK(alphabet.Intern("L") == kCoverLabelL);
  PHOM_CHECK(alphabet.Intern("V") == kCoverLabelV);
  PHOM_CHECK(alphabet.Intern("R") == kCoverLabelR);
  return alphabet;
}

EdgeCoverReduction BuildEdgeCoverReductionLabeled(
    const BipartiteGraph& graph) {
  EdgeCoverReduction out;
  out.num_probabilistic_edges = graph.edges.size();

  // Instance: C (L^{l_j} V R^{r_j}) C ... C — one block per bipartite edge,
  // C separators around them; V edges have probability 1/2, the rest 1.
  // Endpoint indices are 1-based in the gadget lengths.
  ProbGraph instance(1);
  VertexId tip = 0;
  auto extend = [&instance, &tip](LabelId label, const Rational& p) {
    VertexId next = instance.AddVertex();
    AddEdgeOrDie(&instance, tip, next, label, p);
    tip = next;
  };
  extend(kCoverLabelC, Rational::One());
  for (const auto& [x, y] : graph.edges) {
    for (uint32_t i = 0; i < x + 1; ++i) extend(kCoverLabelL, Rational::One());
    extend(kCoverLabelV, Rational::Half());
    for (uint32_t i = 0; i < y + 1; ++i) extend(kCoverLabelR, Rational::One());
    extend(kCoverLabelC, Rational::One());
  }
  out.instance = std::move(instance);

  // Query: one component per vertex of Γ. x_i: C L^{i+1} V. y_i: V R^{i+1} C.
  std::vector<DiGraph> components;
  components.reserve(graph.left_size + graph.right_size);
  for (uint32_t i = 0; i < graph.left_size; ++i) {
    std::vector<LabelId> labels{kCoverLabelC};
    labels.insert(labels.end(), i + 1, kCoverLabelL);
    labels.push_back(kCoverLabelV);
    components.push_back(MakeLabeledPath(labels));
  }
  for (uint32_t i = 0; i < graph.right_size; ++i) {
    std::vector<LabelId> labels{kCoverLabelV};
    labels.insert(labels.end(), i + 1, kCoverLabelR);
    labels.push_back(kCoverLabelC);
    components.push_back(MakeLabeledPath(labels));
  }
  out.query = DisjointUnion(components);
  return out;
}

EdgeCoverReduction BuildEdgeCoverReductionUnlabeled(
    const BipartiteGraph& graph) {
  EdgeCoverReduction labeled = BuildEdgeCoverReductionLabeled(graph);
  // Prop. 3.4 rewriting: L, R ↦ →→←; C ↦ ←←←; V ↦ →→→→→← with the first
  // edge of the V block carrying the 1/2 probability.
  std::map<LabelId, ArrowRewriteRule> rules;
  rules[kCoverLabelL] = ArrowRewriteRule{">><", 0};
  rules[kCoverLabelR] = ArrowRewriteRule{">><", 0};
  rules[kCoverLabelC] = ArrowRewriteRule{"<<<", 0};
  rules[kCoverLabelV] = ArrowRewriteRule{">>>>><", 0};

  EdgeCoverReduction out;
  out.num_probabilistic_edges = labeled.num_probabilistic_edges;
  out.instance = RewriteArrows(labeled.instance, rules);
  out.query = RewriteArrows(labeled.query, rules);
  return out;
}

BigInt RecoverCount(const Rational& prob, size_t num_probabilistic_edges) {
  Rational scaled = prob * Rational(BigInt::Pow2(num_probabilistic_edges),
                                    BigInt(1));
  PHOM_CHECK_MSG(scaled.den() == BigInt(1),
                 "probability is not an integer multiple of 2^-m");
  return scaled.num();
}

}  // namespace phom
