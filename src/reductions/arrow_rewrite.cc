#include "src/reductions/arrow_rewrite.h"

#include "src/util/status.h"

namespace phom {

namespace {

/// Shared skeleton: emits rewritten edges through a callback taking
/// (src, dst, probability).
template <typename EmitEdge, typename AddVertex>
void RewriteImpl(const DiGraph& g,
                 const std::map<LabelId, ArrowRewriteRule>& rules,
                 const std::vector<Rational>* probs, AddVertex add_vertex,
                 EmitEdge emit) {
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const Edge& edge = g.edge(e);
    auto it = rules.find(edge.label);
    PHOM_CHECK_MSG(it != rules.end(), "no arrow rule for label " +
                                          std::to_string(edge.label));
    const ArrowRewriteRule& rule = it->second;
    PHOM_CHECK(!rule.pattern.empty());
    PHOM_CHECK(rule.prob_position < rule.pattern.size());
    size_t steps = rule.pattern.size();
    std::vector<VertexId> chain(steps + 1);
    chain[0] = edge.src;
    chain[steps] = edge.dst;
    for (size_t s = 1; s < steps; ++s) chain[s] = add_vertex();
    for (size_t s = 0; s < steps; ++s) {
      char c = rule.pattern[s];
      PHOM_CHECK_MSG(c == '>' || c == '<', "arrow pattern must be '>'/'<'");
      Rational p = Rational::One();
      if (probs != nullptr && s == rule.prob_position) p = (*probs)[e];
      if (c == '>') {
        emit(chain[s], chain[s + 1], p);
      } else {
        emit(chain[s + 1], chain[s], p);
      }
    }
  }
}

}  // namespace

ProbGraph RewriteArrows(const ProbGraph& g,
                        const std::map<LabelId, ArrowRewriteRule>& rules,
                        LabelId out_label) {
  ProbGraph out(g.num_vertices());
  RewriteImpl(
      g.graph(), rules, &g.probs(), [&out] { return out.AddVertex(); },
      [&out, out_label](VertexId a, VertexId b, const Rational& p) {
        AddEdgeOrDie(&out, a, b, out_label, p);
      });
  return out;
}

DiGraph RewriteArrows(const DiGraph& g,
                      const std::map<LabelId, ArrowRewriteRule>& rules,
                      LabelId out_label) {
  DiGraph out(g.num_vertices());
  RewriteImpl(
      g, rules, nullptr, [&out] { return out.AddVertex(); },
      [&out, out_label](VertexId a, VertexId b, const Rational&) {
        AddEdgeOrDie(&out, a, b, out_label);
      });
  return out;
}

}  // namespace phom
