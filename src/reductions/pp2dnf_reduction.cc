#include "src/reductions/pp2dnf_reduction.h"

#include "src/graph/builders.h"
#include "src/reductions/arrow_rewrite.h"

namespace phom {

Alphabet Pp2DnfAlphabet() {
  Alphabet alphabet;
  PHOM_CHECK(alphabet.Intern("S") == kPpLabelS);
  PHOM_CHECK(alphabet.Intern("T") == kPpLabelT);
  return alphabet;
}

Pp2DnfReduction BuildPp2DnfReductionLabeled(const Pp2Dnf& formula) {
  size_t n1 = formula.num_x;
  size_t n2 = formula.num_y;
  size_t m = formula.clauses.size();

  Pp2DnfReduction out;
  out.num_probabilistic_edges = n1 + n2;

  // Vertex layout: R | X_i | Y_i | X_{i,j} | Y_{i,j} | A_j | B_j.
  size_t total = 1 + n1 + n2 + n1 * m + n2 * m + m + m;
  ProbGraph instance(total);
  auto r_vertex = [] { return VertexId{0}; };
  auto x_vertex = [&](size_t i) { return static_cast<VertexId>(1 + i); };
  auto y_vertex = [&](size_t i) { return static_cast<VertexId>(1 + n1 + i); };
  auto xij_vertex = [&](size_t i, size_t j) {
    return static_cast<VertexId>(1 + n1 + n2 + i * m + j);
  };
  auto yij_vertex = [&](size_t i, size_t j) {
    return static_cast<VertexId>(1 + n1 + n2 + n1 * m + i * m + j);
  };
  auto a_vertex = [&](size_t j) {
    return static_cast<VertexId>(1 + n1 + n2 + (n1 + n2) * m + j);
  };
  auto b_vertex = [&](size_t j) {
    return static_cast<VertexId>(1 + n1 + n2 + (n1 + n2) * m + m + j);
  };

  // Variable edges (probability 1/2): X_i -S-> R and R -S-> Y_i.
  for (size_t i = 0; i < n1; ++i) {
    AddEdgeOrDie(&instance, x_vertex(i), r_vertex(), kPpLabelS,
                 Rational::Half());
  }
  for (size_t i = 0; i < n2; ++i) {
    AddEdgeOrDie(&instance, r_vertex(), y_vertex(i), kPpLabelS,
                 Rational::Half());
  }
  // X chains: X_{i,0} -> ... -> X_{i,m-1} -> X_i (upward toward R).
  for (size_t i = 0; i < n1; ++i) {
    for (size_t j = 0; j + 1 < m; ++j) {
      AddEdgeOrDie(&instance, xij_vertex(i, j), xij_vertex(i, j + 1),
                   kPpLabelS, Rational::One());
    }
    if (m > 0) {
      AddEdgeOrDie(&instance, xij_vertex(i, m - 1), x_vertex(i), kPpLabelS,
                   Rational::One());
    }
  }
  // Y chains: Y_i -> Y_{i,0} -> ... -> Y_{i,m-1} (downward from R).
  for (size_t i = 0; i < n2; ++i) {
    if (m > 0) {
      AddEdgeOrDie(&instance, y_vertex(i), yij_vertex(i, 0), kPpLabelS,
                   Rational::One());
    }
    for (size_t j = 0; j + 1 < m; ++j) {
      AddEdgeOrDie(&instance, yij_vertex(i, j), yij_vertex(i, j + 1),
                   kPpLabelS, Rational::One());
    }
  }
  // Clause gadgets: A_j -T-> X_{x_j, j} and Y_{y_j, j} -T-> B_j.
  for (size_t j = 0; j < m; ++j) {
    const auto& [x, y] = formula.clauses[j];
    AddEdgeOrDie(&instance, a_vertex(j), xij_vertex(x, j), kPpLabelT,
                 Rational::One());
    AddEdgeOrDie(&instance, yij_vertex(y, j), b_vertex(j), kPpLabelT,
                 Rational::One());
  }
  out.instance = std::move(instance);

  // Query: T S^{m+3} T.
  std::vector<LabelId> labels{kPpLabelT};
  labels.insert(labels.end(), m + 3, kPpLabelS);
  labels.push_back(kPpLabelT);
  out.query = MakeLabeledPath(labels);
  return out;
}

Pp2DnfReduction BuildPp2DnfReductionUnlabeled(const Pp2Dnf& formula) {
  Pp2DnfReduction labeled = BuildPp2DnfReductionLabeled(formula);
  // Prop. 5.6 rewriting: S ↦ →→← (middle edge probabilistic), T ↦ →→→.
  std::map<LabelId, ArrowRewriteRule> rules;
  rules[kPpLabelS] = ArrowRewriteRule{">><", 1};
  rules[kPpLabelT] = ArrowRewriteRule{">>>", 0};

  Pp2DnfReduction out;
  out.num_probabilistic_edges = labeled.num_probabilistic_edges;
  out.instance = RewriteArrows(labeled.instance, rules);
  out.query = RewriteArrows(labeled.query, rules);
  return out;
}

}  // namespace phom
