#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "src/util/bigint.h"
#include "src/util/rng.h"

/// \file pp2dnf.h
/// Positive partitioned 2-DNF formulas (Definition 4.3): variables X ⊔ Y and
/// clauses X_{x_j} ∧ Y_{y_j}. Counting satisfying assignments (#PP2DNF,
/// all probabilities 1/2) is #P-hard [Provan & Ball]; the source problem of
/// the reductions in Props. 4.1 and 5.6.

namespace phom {

struct Pp2Dnf {
  size_t num_x = 0;
  size_t num_y = 0;
  /// Clauses (x_j, y_j), 0-based into X and Y respectively.
  std::vector<std::pair<uint32_t, uint32_t>> clauses;
};

/// `num_clauses` distinct random clauses (fewer if the grid is exhausted).
Pp2Dnf RandomPp2Dnf(Rng* rng, size_t num_x, size_t num_y, size_t num_clauses);

/// 2^(num_x + num_y) enumeration; PHOM_CHECKs num_x + num_y <= 26.
BigInt CountSatisfyingAssignments(const Pp2Dnf& formula);

}  // namespace phom
