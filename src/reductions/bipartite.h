#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "src/util/bigint.h"
#include "src/util/rng.h"

/// \file bipartite.h
/// Bipartite undirected graphs and the #Bipartite-Edge-Cover problem
/// (Definition 3.1): counting the subsets of edges covering every vertex.
/// #P-complete (Theorem 3.2); the source problem of the reductions in
/// Props. 3.3 and 3.4.

namespace phom {

struct BipartiteGraph {
  size_t left_size = 0;
  size_t right_size = 0;
  /// (x, y) with x in [0, left_size), y in [0, right_size). No multi-edges.
  std::vector<std::pair<uint32_t, uint32_t>> edges;
};

/// Uniform random bipartite graph; each of the nl × nr pairs is an edge with
/// probability edge_prob. When `cover_all` is set, every isolated vertex gets
/// one incident random edge so the edge-cover count is non-zero.
BipartiteGraph RandomBipartite(Rng* rng, size_t nl, size_t nr,
                               double edge_prob, bool cover_all = true);

/// 2^|E| enumeration; PHOM_CHECKs |E| <= 26.
BigInt CountEdgeCoversBruteForce(const BipartiteGraph& graph);

}  // namespace phom
