#pragma once

#include "src/circuits/circuit.h"
#include "src/lineage/dnf.h"
#include "src/lineage/dnf_prob.h"
#include "src/util/result.h"

/// \file dnf_compile.h
/// Knowledge compilation of monotone DNFs into d-DNNF circuits
/// (Definition 5.3) by the same memoized Shannon expansion as
/// DnfProbabilityShannon: decision nodes are deterministic ORs
/// (x ∧ F|x=1) ∨ (¬x ∧ F|x=0), component splits become decomposable ANDs,
/// and residuals are cached so shared subformulas share gates.
///
/// This ties the paper's two tractability tools together: the β-acyclic
/// lineages of Props. 4.10/4.11 compile to polynomial-size d-DNNFs (same
/// state bound as the probability engine), the same target the automaton
/// pipeline of Prop. 5.4 produces directly.

namespace phom {

struct DnnfCompilation {
  Circuit circuit;
  uint32_t root_gate = 0;
  ShannonStats stats;
};

/// Compiles `dnf` to a d-DNNF over the same variable ids. The circuit
/// computes exactly the DNF's Boolean function; probabilities follow via
/// DnnfProbability. Fails with ResourceExhausted past options.max_states.
Result<DnnfCompilation> CompileDnfToDnnf(const MonotoneDnf& dnf,
                                         const ShannonOptions& options = {});

}  // namespace phom
