#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/lineage/hypergraph.h"
#include "src/util/status.h"

/// \file dnf.h
/// Positive (monotone) DNF formulas (Definition 4.3): disjunctions of
/// conjunctions of variables. Lineages of conjunctive queries on probabilistic
/// graphs are monotone DNFs whose variables are instance edges and whose
/// clauses are the candidate matches (Definition 4.6).

namespace phom {

class MonotoneDnf {
 public:
  explicit MonotoneDnf(uint32_t num_vars) : num_vars_(num_vars) {}

  uint32_t num_vars() const { return num_vars_; }
  size_t num_clauses() const { return clauses_.size(); }
  const std::vector<std::vector<uint32_t>>& clauses() const {
    return clauses_;
  }

  /// Adds a clause (sorted, deduplicated). An empty clause makes the formula
  /// constantly true.
  void AddClause(std::vector<uint32_t> vars);

  /// No clauses at all: the formula is constantly false.
  bool IsConstantFalse() const { return clauses_.empty(); }
  /// Contains an empty clause: constantly true.
  bool IsConstantTrue() const;

  /// Removes clauses that are supersets of other clauses (logically
  /// redundant for monotone DNF) and duplicate clauses.
  void RemoveSubsumed();

  bool EvaluatesTrue(const std::vector<bool>& assignment) const;

  /// The clause hypergraph H(ϕ) of Definition 4.8.
  Hypergraph ToHypergraph() const;
  bool IsBetaAcyclic() const { return ToHypergraph().IsBetaAcyclic(); }

  std::string ToString() const;

 private:
  uint32_t num_vars_;
  std::vector<std::vector<uint32_t>> clauses_;
};

}  // namespace phom
