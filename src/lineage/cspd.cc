#include "src/lineage/cspd.h"

#include <algorithm>

namespace phom {

WeightedConstraint::WeightedConstraint(std::vector<uint32_t> vars,
                                       Rational default_value)
    : vars_(std::move(vars)), default_value_(std::move(default_value)) {
  std::sort(vars_.begin(), vars_.end());
  vars_.erase(std::unique(vars_.begin(), vars_.end()), vars_.end());
  PHOM_CHECK_MSG(!vars_.empty(), "constraint scopes must be non-empty");
  PHOM_CHECK_MSG(vars_.size() <= 63, "constraint scope too wide");
  PHOM_CHECK_MSG(!default_value_.is_negative(),
                 "weights must be non-negative");
}

void WeightedConstraint::SetWeight(uint64_t valuation_bits, Rational weight) {
  PHOM_CHECK(valuation_bits < (uint64_t{1} << vars_.size()));
  PHOM_CHECK_MSG(!weight.is_negative(), "weights must be non-negative");
  support_[valuation_bits] = std::move(weight);
}

const Rational& WeightedConstraint::Weight(uint64_t valuation_bits) const {
  auto it = support_.find(valuation_bits);
  return it == support_.end() ? default_value_ : it->second;
}

Rational WeightedConstraint::WeightUnder(
    const std::vector<bool>& valuation) const {
  uint64_t bits = 0;
  for (size_t i = 0; i < vars_.size(); ++i) {
    PHOM_CHECK(vars_[i] < valuation.size());
    if (valuation[vars_[i]]) bits |= uint64_t{1} << i;
  }
  return Weight(bits);
}

void CspdInstance::AddConstraint(WeightedConstraint constraint) {
  for (uint32_t v : constraint.vars()) PHOM_CHECK(v < num_vars_);
  constraints_.push_back(std::move(constraint));
}

Hypergraph CspdInstance::ToHypergraph() const {
  Hypergraph h(num_vars_);
  for (const WeightedConstraint& c : constraints_) {
    h.AddHyperedge(c.vars());
  }
  return h;
}

Rational CspdInstance::PartitionFunctionBruteForce() const {
  PHOM_CHECK_MSG(num_vars_ <= 26,
                 "brute-force partition function limited to 26 variables");
  Rational total = Rational::Zero();
  std::vector<bool> valuation(num_vars_, false);
  for (uint64_t mask = 0; mask < (uint64_t{1} << num_vars_); ++mask) {
    for (uint32_t i = 0; i < num_vars_; ++i) {
      valuation[i] = (mask >> i) & 1;
    }
    Rational product = Rational::One();
    for (const WeightedConstraint& c : constraints_) {
      product *= c.WeightUnder(valuation);
      if (product.is_zero()) break;
    }
    total += product;
  }
  return total;
}

CspdInstance EncodeDnfProbabilityAsCspd(const MonotoneDnf& dnf,
                                        const std::vector<Rational>& probs) {
  PHOM_CHECK(probs.size() >= dnf.num_vars());
  CspdInstance instance(dnf.num_vars());
  // Variable weights: the primed variable X' stands for ¬X, so
  // π'(X') = 1 − π(X). c_{X'}(1) = π'(X'), c_{X'}(0) = 1 − π'(X').
  for (uint32_t x = 0; x < dnf.num_vars(); ++x) {
    WeightedConstraint c({x}, Rational::Zero());
    c.SetWeight(1, probs[x].Complement());
    c.SetWeight(0, probs[x]);
    instance.AddConstraint(c);
  }
  // Clause constraints: the De Morgan dual of the DNF clause ∧ X_i is the
  // CNF clause ∨ X'_i, violated exactly by the all-false valuation of the
  // primed variables — weight 0 there, default 1 (Lemma 3 of [BCM15]).
  for (const std::vector<uint32_t>& clause : dnf.clauses()) {
    if (clause.empty()) {
      // A constantly-true DNF: its negation is unsatisfiable; encode with an
      // always-zero constraint over a dummy scope ({0} exists since the DNF
      // has an empty clause only when it has variables... guard anyway).
      PHOM_CHECK_MSG(dnf.num_vars() > 0,
                     "cannot encode the empty clause without variables");
      WeightedConstraint c({0}, Rational::Zero());
      instance.AddConstraint(c);
      continue;
    }
    WeightedConstraint c(clause, Rational::One());
    c.SetWeight(0, Rational::Zero());  // all primed variables false
    instance.AddConstraint(c);
  }
  return instance;
}

}  // namespace phom
