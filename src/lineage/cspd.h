#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "src/lineage/dnf.h"
#include "src/lineage/hypergraph.h"
#include "src/util/rational.h"
#include "src/util/result.h"

/// \file cspd.h
/// The #CSP^d formalism of Brault-Baron, Capelli and Mengel as used in the
/// paper's proof of Theorem 4.9 (appendix B): weighted constraints with
/// default values over a Boolean domain, whose partition function
///
///   w(I) = Σ_{ν ∈ {0,1}^var(I)} Π_{c ∈ I} c(ν|var(c))
///
/// generalizes weighted model counting. The paper reduces probability
/// computation for β-acyclic positive DNFs to β-acyclic #CSP^d: negate the
/// DNF into a monotone CNF by De Morgan, encode each CNF clause as a
/// constraint that maps the all-false valuation to 0 (default 1), and each
/// variable's probability as a singleton constraint; then
/// Pr(ϕ, π) = 1 − w(I). This module implements the formalism, the encoding,
/// and exact evaluation of w(I) (enumerative for reference; the PTIME route
/// in this library evaluates the original DNF with the memoized Shannon
/// engine, see dnf_prob.h).

namespace phom {

/// A weighted constraint with default value (Definition 1-2 of [BCM15],
/// Boolean domain): an explicit support table plus a default weight for
/// valuations outside the support.
class WeightedConstraint {
 public:
  /// `vars`: the constraint scope (sorted, deduplicated internally).
  WeightedConstraint(std::vector<uint32_t> vars, Rational default_value);

  const std::vector<uint32_t>& vars() const { return vars_; }
  const Rational& default_value() const { return default_value_; }
  size_t support_size() const { return support_.size(); }

  /// Sets the weight of one valuation of the scope, given as bits aligned
  /// with vars() (bit i = value of vars()[i]).
  void SetWeight(uint64_t valuation_bits, Rational weight);

  /// The induced total function: support weight or default.
  const Rational& Weight(uint64_t valuation_bits) const;

  /// Weight under a full valuation of all variables.
  Rational WeightUnder(const std::vector<bool>& valuation) const;

 private:
  std::vector<uint32_t> vars_;
  Rational default_value_;
  std::map<uint64_t, Rational> support_;
};

/// A #CSP^d instance: a set of weighted constraints over variables
/// 0..num_vars-1.
class CspdInstance {
 public:
  explicit CspdInstance(uint32_t num_vars) : num_vars_(num_vars) {}

  uint32_t num_vars() const { return num_vars_; }
  const std::vector<WeightedConstraint>& constraints() const {
    return constraints_;
  }
  void AddConstraint(WeightedConstraint constraint);

  /// The constraint hypergraph H(I); the instance is β-acyclic iff this is.
  Hypergraph ToHypergraph() const;
  bool IsBetaAcyclic() const { return ToHypergraph().IsBetaAcyclic(); }

  /// The partition function w(I) by enumeration (PHOM_CHECKs
  /// num_vars <= 26) — the reference semantics.
  Rational PartitionFunctionBruteForce() const;

 private:
  uint32_t num_vars_;
  std::vector<WeightedConstraint> constraints_;
};

/// The paper's appendix-B encoding: from a positive DNF ϕ and variable
/// probabilities π, build the #CSP^d instance I (over the De-Morgan-negated
/// CNF) such that Pr(ϕ, π) = 1 − w(I). Preserves β-acyclicity (the clause
/// hypergraph is unchanged; singleton scopes never break β-leaves).
CspdInstance EncodeDnfProbabilityAsCspd(const MonotoneDnf& dnf,
                                        const std::vector<Rational>& probs);

}  // namespace phom
