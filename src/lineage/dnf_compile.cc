#include "src/lineage/dnf_compile.h"

#include <unordered_map>
#include <utility>

#include "src/lineage/dnf_internal.h"

namespace phom {

namespace {

using dnf_internal::Canonicalize;
using dnf_internal::Clauses;
using dnf_internal::ClausesKey;
using dnf_internal::ClausesKeyHash;
using dnf_internal::MakeKey;
using dnf_internal::SplitVariableComponents;

/// Compiles both polarities at once: for each residual formula F we build a
/// gate computing F and a gate computing ¬F. Negation thereby only ever
/// touches literals, and the two d-DNNF-breaking constructions become legal:
///  * decision:  F = (x ∧ F|x=1) ∨ (¬x ∧ F|x=0)       — deterministic OR;
///               ¬F analogously from the negated cofactors;
///  * disjoint components F = F₁ ∨ ... ∨ F_k:
///               ¬F = ∧ ¬F_i                            — decomposable AND;
///               F  = ∨_i (¬F₁ ∧ ... ∧ ¬F_{i-1} ∧ F_i)  — deterministic
///                 ("which component is the first true one"), decomposable
///                 because components share no variables.
/// The component rule is what keeps tree-shaped lineages (Prop. 4.10)
/// polynomial, exactly as component caching does in the probability engine.
class Compiler {
 public:
  struct Gates {
    uint32_t pos = 0;
    uint32_t neg = 0;
  };

  Compiler(Circuit* circuit, std::vector<uint32_t> rank, uint64_t max_states,
           ShannonStats* stats)
      : circuit_(circuit), rank_(std::move(rank)), max_states_(max_states),
        stats_(stats) {}

  Gates Compile(Clauses clauses) {
    if (exhausted_) return {};
    Canonicalize(&clauses);
    if (clauses.empty()) return ConstGates(false);
    if (clauses.front().empty()) return ConstGates(true);

    ClausesKey key = MakeKey(clauses);
    auto it = cache_.find(key);
    if (it != cache_.end()) {
      if (stats_ != nullptr) ++stats_->cache_hits;
      return it->second;
    }
    if (stats_ != nullptr) ++stats_->states;
    if (++states_ > max_states_) {
      exhausted_ = true;
      return {};
    }

    Gates gates = CompileComponents(clauses);
    cache_.emplace(std::move(key), gates);
    return gates;
  }

  bool exhausted() const { return exhausted_; }

 private:
  Gates ConstGates(bool value) {
    if (!consts_built_) {
      true_gate_ = circuit_->AddConst(true);
      false_gate_ = circuit_->AddConst(false);
      consts_built_ = true;
    }
    return value ? Gates{true_gate_, false_gate_}
                 : Gates{false_gate_, true_gate_};
  }

  Gates CompileComponents(const Clauses& clauses) {
    std::vector<Clauses> groups = SplitVariableComponents(clauses);
    if (groups.size() > 1) {
      if (stats_ != nullptr) ++stats_->component_splits;
      std::vector<Gates> parts;
      parts.reserve(groups.size());
      for (Clauses& group : groups) {
        parts.push_back(Compile(std::move(group)));
        if (exhausted_) return {};
      }
      // ¬F = ∧ ¬F_i.
      std::vector<uint32_t> neg_inputs;
      neg_inputs.reserve(parts.size());
      for (const Gates& p : parts) neg_inputs.push_back(p.neg);
      uint32_t neg = circuit_->AddAnd(neg_inputs);
      // F = ∨_i (first true component is i).
      std::vector<uint32_t> disjuncts;
      disjuncts.reserve(parts.size());
      for (size_t i = 0; i < parts.size(); ++i) {
        std::vector<uint32_t> conj;
        conj.reserve(i + 1);
        for (size_t j = 0; j < i; ++j) conj.push_back(parts[j].neg);
        conj.push_back(parts[i].pos);
        disjuncts.push_back(conj.size() == 1 ? conj[0]
                                             : circuit_->AddAnd(conj));
      }
      uint32_t pos = circuit_->AddOr(disjuncts);
      return Gates{pos, neg};
    }

    // Branch on the variable of minimal rank in the formula.
    uint32_t branch = 0;
    uint32_t best_rank = UINT32_MAX;
    for (const auto& c : clauses) {
      for (uint32_t v : c) {
        if (rank_[v] < best_rank) {
          best_rank = rank_[v];
          branch = v;
        }
      }
    }
    Clauses pos_clauses;
    Clauses neg_clauses;
    pos_clauses.reserve(clauses.size());
    neg_clauses.reserve(clauses.size());
    for (const auto& c : clauses) {
      auto it = std::lower_bound(c.begin(), c.end(), branch);
      if (it != c.end() && *it == branch) {
        std::vector<uint32_t> shrunk(c.begin(), it);
        shrunk.insert(shrunk.end(), it + 1, c.end());
        pos_clauses.push_back(std::move(shrunk));
      } else {
        pos_clauses.push_back(c);
        neg_clauses.push_back(c);
      }
    }
    Gates g1 = Compile(std::move(pos_clauses));
    if (exhausted_) return {};
    Gates g0 = Compile(std::move(neg_clauses));
    if (exhausted_) return {};
    uint32_t x = circuit_->AddVar(branch);
    uint32_t nx = circuit_->AddNegVar(branch);
    uint32_t pos = circuit_->AddOr(
        {circuit_->AddAnd({x, g1.pos}), circuit_->AddAnd({nx, g0.pos})});
    uint32_t neg = circuit_->AddOr(
        {circuit_->AddAnd({x, g1.neg}), circuit_->AddAnd({nx, g0.neg})});
    return Gates{pos, neg};
  }

  Circuit* circuit_;
  std::vector<uint32_t> rank_;
  uint64_t max_states_;
  ShannonStats* stats_;
  uint64_t states_ = 0;
  bool exhausted_ = false;
  bool consts_built_ = false;
  uint32_t true_gate_ = 0;
  uint32_t false_gate_ = 0;
  std::unordered_map<ClausesKey, Gates, ClausesKeyHash> cache_;
};

}  // namespace

Result<DnnfCompilation> CompileDnfToDnnf(const MonotoneDnf& dnf,
                                         const ShannonOptions& options) {
  std::vector<uint32_t> rank(dnf.num_vars());
  if (options.variable_order.empty()) {
    for (uint32_t i = 0; i < dnf.num_vars(); ++i) rank[i] = i;
  } else {
    std::fill(rank.begin(), rank.end(), UINT32_MAX);
    uint32_t r = 0;
    for (uint32_t v : options.variable_order) {
      PHOM_CHECK(v < dnf.num_vars());
      rank[v] = r++;
    }
    for (uint32_t v = 0; v < dnf.num_vars(); ++v) {
      PHOM_CHECK_MSG(rank[v] != UINT32_MAX,
                     "variable_order must cover all variables");
    }
  }
  DnnfCompilation out{Circuit(dnf.num_vars()), 0, {}};
  Compiler compiler(&out.circuit, std::move(rank), options.max_states,
                    &out.stats);
  Compiler::Gates gates = compiler.Compile(dnf.clauses());
  if (compiler.exhausted()) {
    return Status::ResourceExhausted("d-DNNF compilation exceeded max_states");
  }
  out.root_gate = gates.pos;
  return out;
}

}  // namespace phom
