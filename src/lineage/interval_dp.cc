#include "src/lineage/interval_dp.h"

#include <algorithm>

#include "src/util/status.h"

namespace phom {

template <class Num>
Num IntervalDnfProbabilityT(const std::vector<Num>& edge_probs,
                            std::vector<EdgeInterval> intervals) {
  using Ops = NumericOps<Num>;
  const uint32_t kNone = UINT32_MAX;
  size_t L = edge_probs.size();
  if (intervals.empty()) return Ops::Zero();
  for (const EdgeInterval& iv : intervals) {
    PHOM_CHECK_MSG(iv.first <= iv.second && iv.second < L,
                   "interval out of range");
  }

  // Keep only inclusion-minimal intervals: scan by lo descending, keeping an
  // interval iff its hi is smaller than every hi seen so far.
  std::sort(intervals.begin(), intervals.end(),
            [](const EdgeInterval& a, const EdgeInterval& b) {
              if (a.first != b.first) return a.first > b.first;
              return a.second < b.second;
            });
  // earliest_lo_ending_at[hi] = lo of the (unique) minimal interval ending
  // at hi, or kNone.
  std::vector<uint32_t> lo_ending_at(L, kNone);
  uint32_t min_hi = kNone;
  for (const EdgeInterval& iv : intervals) {
    if (min_hi == kNone || iv.second < min_hi) {
      min_hi = iv.second;
      lo_ending_at[iv.second] = iv.first;
    }
  }

  // dist[s] = probability that the process survives (no clause fired) with
  // current run start s; s == k+1 encodes "edge k absent". Edges processed
  // left to right.
  std::vector<Num> dist(L + 2, Ops::Zero());
  dist[0] = Ops::One();
  for (uint32_t k = 0; k < L; ++k) {
    std::vector<Num> next(L + 2, Ops::Zero());
    const Num& p = edge_probs[k];
    Num q = Ops::Complement(p);
    for (uint32_t s = 0; s <= k; ++s) {
      if (Ops::IsZero(dist[s])) continue;
      // Edge k present: run start stays s; clause [lo, k] fires iff s <= lo.
      bool fires = lo_ending_at[k] != kNone && s <= lo_ending_at[k];
      if (!fires && !Ops::IsZero(p)) next[s] += dist[s] * p;
      if (!Ops::IsZero(q)) next[k + 1] += dist[s] * q;
    }
    // s == k means previous edge absent (run start would be k).
    // (Covered by the loop above since s ranges to k.)
    dist = std::move(next);
  }
  // The run-start states are disjoint events, so their survival
  // probabilities sum — compensated for the interval backend (numeric.h),
  // the plain sequential sum bit-for-bit on the exact/double backends.
  DisjointSumAccumulator<Num> survive;
  for (const Num& r : dist) survive.Add(r);
  return Ops::Complement(survive.Total());
}

template Rational IntervalDnfProbabilityT<Rational>(
    const std::vector<Rational>&, std::vector<EdgeInterval>);
template double IntervalDnfProbabilityT<double>(const std::vector<double>&,
                                                std::vector<EdgeInterval>);
template IntervalDouble IntervalDnfProbabilityT<IntervalDouble>(
    const std::vector<IntervalDouble>&, std::vector<EdgeInterval>);

}  // namespace phom
