#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "src/util/status.h"

/// \file hypergraph.h
/// Hypergraphs and β-acyclicity (Definition 4.7). A vertex is a β-leaf when
/// the hyperedges containing it are totally ordered by inclusion; a
/// hypergraph is β-acyclic when repeatedly deleting β-leaves (collapsing
/// duplicate hyperedges, dropping empty ones) empties it. The paper's
/// tractable lineages (Props. 4.10 and 4.11) are β-acyclic, which is what
/// makes their probability computable in PTIME (Theorem 4.9).

namespace phom {

class Hypergraph {
 public:
  explicit Hypergraph(uint32_t num_vertices) : num_vertices_(num_vertices) {}

  uint32_t num_vertices() const { return num_vertices_; }
  size_t num_hyperedges() const { return edges_.size(); }
  const std::vector<std::vector<uint32_t>>& hyperedges() const {
    return edges_;
  }

  /// Adds a non-empty hyperedge (vertices sorted and deduplicated).
  /// Duplicate hyperedges are kept (E is a multiset here; β-leaf logic
  /// treats equal sets as comparable, so duplicates are harmless).
  void AddHyperedge(std::vector<uint32_t> vertices);

  /// Is v a β-leaf: are the hyperedges containing v a ⊆-chain?
  bool IsBetaLeaf(uint32_t v) const;

  /// A β-elimination order covering all vertices, or nullopt if none exists.
  /// Vertices in no hyperedge are trivially β-leaves and come last.
  std::optional<std::vector<uint32_t>> BetaEliminationOrder() const;

  bool IsBetaAcyclic() const { return BetaEliminationOrder().has_value(); }

 private:
  uint32_t num_vertices_;
  std::vector<std::vector<uint32_t>> edges_;
};

}  // namespace phom
