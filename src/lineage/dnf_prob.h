#pragma once

#include <cstdint>
#include <vector>

#include "src/lineage/dnf.h"
#include "src/util/numeric.h"
#include "src/util/rational.h"
#include "src/util/result.h"

/// \file dnf_prob.h
/// Probability of a monotone DNF under independent variables (the Boolean
/// probability computation problem, Definition 4.2). Three engines:
///
///  1. Brute force over all 2^n valuations — the oracle for tests.
///  2. Inclusion–exclusion over clauses — a second, independent oracle.
///  3. Memoized Shannon expansion with subsumption canonicalization and
///     connected-component decomposition, conditioning variables along a
///     caller-supplied order. This is our realization of Theorem 4.9's
///     tractability for β-acyclic positive DNFs: on the lineage families
///     the paper's PTIME cases produce (interval clauses along a 2WP,
///     rootward path clauses in a DWT), conditioning along the path/tree
///     order collapses the residual formulas to polynomially many distinct
///     states, so the engine runs in polynomial time; on arbitrary DNFs it
///     remains exact but may be exponential (it is a DPLL model counter with
///     component caching).

namespace phom {

/// 2^n enumeration. PHOM_CHECKs num_vars <= 30.
Rational DnfProbabilityBruteForce(const MonotoneDnf& dnf,
                                  const std::vector<Rational>& probs);

/// Inclusion–exclusion over clause subsets. PHOM_CHECKs num_clauses <= 20
/// after subsumption removal.
Rational DnfProbabilityInclusionExclusion(const MonotoneDnf& dnf,
                                          const std::vector<Rational>& probs);

struct ShannonOptions {
  /// Variables are conditioned in this order (a permutation of a superset of
  /// the used variables). Empty: identity order. For β-acyclic lineages pass
  /// the natural elimination order (path order / bottom-up tree order).
  std::vector<uint32_t> variable_order;
  /// Abort with ResourceExhausted beyond this many distinct residuals.
  uint64_t max_states = 4'000'000;
};

struct ShannonStats {
  uint64_t states = 0;       ///< distinct residual formulas evaluated
  uint64_t cache_hits = 0;
  uint64_t component_splits = 0;
};

/// The memoized Shannon engine in the numeric backend of `Num` (exact
/// Rational or double; see util/numeric.h). The residual-formula state space
/// is identical for both backends — only the arithmetic combining cached
/// sub-results differs.
template <class Num>
Result<Num> DnfProbabilityShannonT(const MonotoneDnf& dnf,
                                   const std::vector<Num>& probs,
                                   const ShannonOptions& options = {},
                                   ShannonStats* stats = nullptr);

extern template Result<Rational> DnfProbabilityShannonT<Rational>(
    const MonotoneDnf&, const std::vector<Rational>&, const ShannonOptions&,
    ShannonStats*);
extern template Result<double> DnfProbabilityShannonT<double>(
    const MonotoneDnf&, const std::vector<double>&, const ShannonOptions&,
    ShannonStats*);
extern template Result<IntervalDouble> DnfProbabilityShannonT<IntervalDouble>(
    const MonotoneDnf&, const std::vector<IntervalDouble>&,
    const ShannonOptions&, ShannonStats*);

/// Exact-backend convenience (the historical entry point).
inline Result<Rational> DnfProbabilityShannon(
    const MonotoneDnf& dnf, const std::vector<Rational>& probs,
    const ShannonOptions& options = {}, ShannonStats* stats = nullptr) {
  return DnfProbabilityShannonT<Rational>(dnf, probs, options, stats);
}

/// Convenience: Shannon expansion along a β-elimination order of the clause
/// hypergraph when one exists (identity order otherwise).
Result<Rational> DnfProbabilityBetaAcyclic(const MonotoneDnf& dnf,
                                           const std::vector<Rational>& probs,
                                           ShannonStats* stats = nullptr);

}  // namespace phom
