#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "src/util/numeric.h"
#include "src/util/rational.h"

/// \file interval_dp.h
/// Specialized O(L²) evaluation of interval DNFs: variables are the edges
/// e_0, ..., e_{L-1} of a path in order, each clause is a contiguous interval
/// [lo, hi] of edge indices (all those edges conjoined). These are exactly
/// the lineages produced by connected queries on 2WP instances (Prop. 4.11);
/// their clause hypergraphs are β-acyclic (eliminate variables from one path
/// endpoint inward), and this DP is the direct dynamic-programming form of
/// that elimination: it tracks the distribution of the current run-start
/// position (the leftmost index s such that edges s..k are all present).

namespace phom {

/// Inclusive edge-index interval.
using EdgeInterval = std::pair<uint32_t, uint32_t>;

/// Pr(at least one interval fully present) with independent edge
/// probabilities, in the numeric backend of `Num` (Rational or double).
/// Intervals may overlap arbitrarily; dominated (superset) intervals are
/// removed internally.
template <class Num>
Num IntervalDnfProbabilityT(const std::vector<Num>& edge_probs,
                            std::vector<EdgeInterval> intervals);

extern template Rational IntervalDnfProbabilityT<Rational>(
    const std::vector<Rational>&, std::vector<EdgeInterval>);
extern template double IntervalDnfProbabilityT<double>(
    const std::vector<double>&, std::vector<EdgeInterval>);
extern template IntervalDouble IntervalDnfProbabilityT<IntervalDouble>(
    const std::vector<IntervalDouble>&, std::vector<EdgeInterval>);

/// Exact-backend convenience (the historical entry point).
inline Rational IntervalDnfProbability(const std::vector<Rational>& edge_probs,
                                       std::vector<EdgeInterval> intervals) {
  return IntervalDnfProbabilityT<Rational>(edge_probs, std::move(intervals));
}

}  // namespace phom
