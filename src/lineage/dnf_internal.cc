#include "src/lineage/dnf_internal.h"

#include <unordered_map>

namespace phom::dnf_internal {

std::vector<Clauses> SplitVariableComponents(const Clauses& clauses) {
  if (clauses.size() <= 1) return {clauses};
  std::unordered_map<uint32_t, size_t> var_owner;
  std::vector<size_t> parent(clauses.size());
  for (size_t i = 0; i < parent.size(); ++i) parent[i] = i;
  auto find = [&parent](size_t x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  };
  for (size_t i = 0; i < clauses.size(); ++i) {
    for (uint32_t v : clauses[i]) {
      auto [it, inserted] = var_owner.emplace(v, i);
      if (!inserted) parent[find(i)] = find(it->second);
    }
  }
  std::unordered_map<size_t, Clauses> groups;
  for (size_t i = 0; i < clauses.size(); ++i) {
    groups[find(i)].push_back(clauses[i]);
  }
  std::vector<Clauses> out;
  out.reserve(groups.size());
  for (auto& [root, group] : groups) out.push_back(std::move(group));
  return out;
}

}  // namespace phom::dnf_internal
