#include "src/lineage/dnf.h"

#include <algorithm>
#include <sstream>

namespace phom {

void MonotoneDnf::AddClause(std::vector<uint32_t> vars) {
  std::sort(vars.begin(), vars.end());
  vars.erase(std::unique(vars.begin(), vars.end()), vars.end());
  for (uint32_t v : vars) PHOM_CHECK(v < num_vars_);
  clauses_.push_back(std::move(vars));
}

bool MonotoneDnf::IsConstantTrue() const {
  for (const auto& c : clauses_) {
    if (c.empty()) return true;
  }
  return false;
}

void MonotoneDnf::RemoveSubsumed() {
  // Sort by size so potential subsumers come first.
  std::sort(clauses_.begin(), clauses_.end(),
            [](const auto& a, const auto& b) {
              if (a.size() != b.size()) return a.size() < b.size();
              return a < b;
            });
  std::vector<std::vector<uint32_t>> kept;
  for (const auto& clause : clauses_) {
    bool subsumed = false;
    for (const auto& k : kept) {
      if (std::includes(clause.begin(), clause.end(), k.begin(), k.end())) {
        subsumed = true;
        break;
      }
    }
    if (!subsumed) kept.push_back(clause);
  }
  clauses_ = std::move(kept);
}

bool MonotoneDnf::EvaluatesTrue(const std::vector<bool>& assignment) const {
  PHOM_CHECK(assignment.size() >= num_vars_);
  for (const auto& clause : clauses_) {
    bool all = true;
    for (uint32_t v : clause) {
      if (!assignment[v]) {
        all = false;
        break;
      }
    }
    if (all) return true;
  }
  return false;
}

Hypergraph MonotoneDnf::ToHypergraph() const {
  Hypergraph h(num_vars_);
  for (const auto& clause : clauses_) {
    if (!clause.empty()) h.AddHyperedge(clause);
  }
  return h;
}

std::string MonotoneDnf::ToString() const {
  if (clauses_.empty()) return "false";
  std::ostringstream os;
  for (size_t i = 0; i < clauses_.size(); ++i) {
    if (i) os << " v ";
    if (clauses_[i].empty()) {
      os << "true";
      continue;
    }
    os << "(";
    for (size_t j = 0; j < clauses_[i].size(); ++j) {
      if (j) os << "&";
      os << "x" << clauses_[i][j];
    }
    os << ")";
  }
  return os.str();
}

}  // namespace phom
