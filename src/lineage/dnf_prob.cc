#include "src/lineage/dnf_prob.h"

#include <algorithm>
#include <functional>
#include <optional>
#include <unordered_map>

#include "src/lineage/dnf_internal.h"

namespace phom {

Rational DnfProbabilityBruteForce(const MonotoneDnf& dnf,
                                  const std::vector<Rational>& probs) {
  PHOM_CHECK(probs.size() >= dnf.num_vars());
  PHOM_CHECK_MSG(dnf.num_vars() <= 30, "brute force limited to 30 variables");
  uint32_t n = dnf.num_vars();
  Rational total = Rational::Zero();
  std::vector<bool> assignment(n, false);
  for (uint64_t mask = 0; mask < (uint64_t{1} << n); ++mask) {
    for (uint32_t i = 0; i < n; ++i) assignment[i] = (mask >> i) & 1;
    if (!dnf.EvaluatesTrue(assignment)) continue;
    Rational w = Rational::One();
    for (uint32_t i = 0; i < n; ++i) {
      w *= assignment[i] ? probs[i] : probs[i].Complement();
    }
    total += w;
  }
  return total;
}

Rational DnfProbabilityInclusionExclusion(const MonotoneDnf& dnf,
                                          const std::vector<Rational>& probs) {
  MonotoneDnf reduced = dnf;
  reduced.RemoveSubsumed();
  if (reduced.IsConstantTrue()) return Rational::One();
  size_t k = reduced.num_clauses();
  PHOM_CHECK_MSG(k <= 20, "inclusion-exclusion limited to 20 clauses");
  Rational total = Rational::Zero();
  std::vector<uint32_t> union_vars;
  for (uint64_t mask = 1; mask < (uint64_t{1} << k); ++mask) {
    union_vars.clear();
    for (size_t i = 0; i < k; ++i) {
      if ((mask >> i) & 1) {
        const auto& c = reduced.clauses()[i];
        union_vars.insert(union_vars.end(), c.begin(), c.end());
      }
    }
    std::sort(union_vars.begin(), union_vars.end());
    union_vars.erase(std::unique(union_vars.begin(), union_vars.end()),
                     union_vars.end());
    Rational term = Rational::One();
    for (uint32_t v : union_vars) term *= probs[v];
    if (__builtin_popcountll(mask) % 2 == 1) {
      total += term;
    } else {
      total -= term;
    }
  }
  return total;
}

namespace {

using dnf_internal::Canonicalize;
using dnf_internal::ClauseInterner;
using dnf_internal::Clauses;
using dnf_internal::ClauseVecHash;
using dnf_internal::SplitVariableComponents;

template <class Num>
class ShannonEvaluator {
  using Ops = NumericOps<Num>;

 public:
  ShannonEvaluator(const std::vector<Num>& probs, std::vector<uint32_t> rank,
                   uint64_t max_states, ShannonStats* stats)
      : probs_(probs), rank_(std::move(rank)), max_states_(max_states),
        stats_(stats) {}

  Num Eval(Clauses clauses) {
    if (exhausted_) return Ops::Zero();
    Canonicalize(&clauses);
    if (clauses.empty()) return Ops::Zero();
    if (clauses.front().empty()) return Ops::One();

    // Memo key = the sequence of interned clause ids (canonical clause set
    // ⇔ canonical id sequence, so hit/miss behavior is identical to the old
    // serialize-every-variable key). Small states — at most kPackWidth
    // clauses, every id below kPackBase — pack the whole sequence into one
    // uint64 and hit an integer-keyed map: no allocation, one-word hashing.
    // Wider states fall back to the id-vector map, whose key is still a
    // fraction of the old full serialization. `ids_buf_` is reused across
    // calls; only a wide-map INSERT copies it.
    ids_buf_.clear();
    for (const auto& c : clauses) ids_buf_.push_back(interner_.Intern(c));
    uint64_t packed = 0;
    bool packable = ids_buf_.size() <= kPackWidth;
    if (packable) {
      for (uint32_t id : ids_buf_) {
        if (id + 1 >= kPackBase) {
          packable = false;
          break;
        }
        packed = (packed << 8) | (id + 1);  // +1: zero byte means "unused"
      }
    }
    if (packable) {
      auto it = packed_cache_.find(packed);
      if (it != packed_cache_.end()) {
        if (stats_ != nullptr) ++stats_->cache_hits;
        return it->second;
      }
    } else {
      auto it = wide_cache_.find(ids_buf_);
      if (it != wide_cache_.end()) {
        if (stats_ != nullptr) ++stats_->cache_hits;
        return it->second;
      }
    }
    if (stats_ != nullptr) ++stats_->states;
    if (++states_ > max_states_) {
      exhausted_ = true;
      return Ops::Zero();
    }

    // EvalComponents recurses into Eval, which reuses ids_buf_ — recompute
    // nothing from it afterwards (packed / the map key copy are taken now).
    std::vector<uint32_t> wide_key;
    if (!packable) wide_key = ids_buf_;
    Num result = EvalComponents(clauses);
    if (packable) {
      packed_cache_.emplace(packed, result);
    } else {
      wide_cache_.emplace(std::move(wide_key), result);
    }
    return result;
  }

  bool exhausted() const { return exhausted_; }

 private:
  Num EvalComponents(const Clauses& clauses) {
    // Split clauses into variable-connected components: independent parts
    // combine as 1 - Π(1 - p_i).
    std::vector<Clauses> groups = SplitVariableComponents(clauses);
    if (groups.size() > 1) {
      if (stats_ != nullptr) ++stats_->component_splits;
      Num none = Ops::One();  // Pr(no component true)
      for (Clauses& group : groups) {
        none *= Ops::Complement(Eval(std::move(group)));
        if (exhausted_) return Ops::Zero();
      }
      return Ops::Complement(none);
    }

    // Branch on the variable of minimal rank occurring in the formula.
    uint32_t branch = 0;
    uint32_t best_rank = UINT32_MAX;
    for (const auto& c : clauses) {
      for (uint32_t v : c) {
        if (rank_[v] < best_rank) {
          best_rank = rank_[v];
          branch = v;
        }
      }
    }
    Clauses pos;
    Clauses neg;
    pos.reserve(clauses.size());
    neg.reserve(clauses.size());
    for (const auto& c : clauses) {
      auto it = std::lower_bound(c.begin(), c.end(), branch);
      if (it != c.end() && *it == branch) {
        std::vector<uint32_t> shrunk;
        shrunk.reserve(c.size() - 1);
        shrunk.insert(shrunk.end(), c.begin(), it);
        shrunk.insert(shrunk.end(), it + 1, c.end());
        pos.push_back(std::move(shrunk));
      } else {
        pos.push_back(c);
        neg.push_back(c);
      }
    }
    const Num& p = probs_[branch];
    Num r1 = Ops::IsZero(p) ? Ops::Zero() : Eval(std::move(pos));
    if (exhausted_) return Ops::Zero();
    Num r0 = Ops::IsOne(p) ? Ops::Zero() : Eval(std::move(neg));
    if (exhausted_) return Ops::Zero();
    return p * r1 + Ops::Complement(p) * r0;
  }

  /// Packed-key geometry: up to 8 ids of one byte each (byte value id+1,
  /// so 0 marks an unused slot and length needs no separate tag).
  static constexpr size_t kPackWidth = 8;
  static constexpr uint32_t kPackBase = 256;

  const std::vector<Num>& probs_;
  std::vector<uint32_t> rank_;
  uint64_t max_states_;
  ShannonStats* stats_;
  uint64_t states_ = 0;
  bool exhausted_ = false;
  ClauseInterner interner_;
  std::vector<uint32_t> ids_buf_;
  std::unordered_map<uint64_t, Num> packed_cache_;
  std::unordered_map<std::vector<uint32_t>, Num, ClauseVecHash> wide_cache_;
};

}  // namespace

template <class Num>
Result<Num> DnfProbabilityShannonT(const MonotoneDnf& dnf,
                                   const std::vector<Num>& probs,
                                   const ShannonOptions& options,
                                   ShannonStats* stats) {
  PHOM_CHECK(probs.size() >= dnf.num_vars());
  std::vector<uint32_t> rank(dnf.num_vars());
  if (options.variable_order.empty()) {
    for (uint32_t i = 0; i < dnf.num_vars(); ++i) rank[i] = i;
  } else {
    std::fill(rank.begin(), rank.end(), UINT32_MAX);
    uint32_t r = 0;
    for (uint32_t v : options.variable_order) {
      PHOM_CHECK(v < dnf.num_vars());
      rank[v] = r++;
    }
    for (uint32_t v = 0; v < dnf.num_vars(); ++v) {
      PHOM_CHECK_MSG(rank[v] != UINT32_MAX,
                     "variable_order must cover all variables");
    }
  }
  ShannonEvaluator<Num> evaluator(probs, std::move(rank), options.max_states,
                                  stats);
  Num result = evaluator.Eval(dnf.clauses());
  if (evaluator.exhausted()) {
    return Status::ResourceExhausted("Shannon expansion exceeded max_states");
  }
  return result;
}

template Result<Rational> DnfProbabilityShannonT<Rational>(
    const MonotoneDnf&, const std::vector<Rational>&, const ShannonOptions&,
    ShannonStats*);
template Result<double> DnfProbabilityShannonT<double>(
    const MonotoneDnf&, const std::vector<double>&, const ShannonOptions&,
    ShannonStats*);
template Result<IntervalDouble> DnfProbabilityShannonT<IntervalDouble>(
    const MonotoneDnf&, const std::vector<IntervalDouble>&,
    const ShannonOptions&, ShannonStats*);

Result<Rational> DnfProbabilityBetaAcyclic(const MonotoneDnf& dnf,
                                           const std::vector<Rational>& probs,
                                           ShannonStats* stats) {
  ShannonOptions options;
  std::optional<std::vector<uint32_t>> order =
      dnf.ToHypergraph().BetaEliminationOrder();
  if (order.has_value()) options.variable_order = std::move(*order);
  return DnfProbabilityShannon(dnf, probs, options, stats);
}

}  // namespace phom
