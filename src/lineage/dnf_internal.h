#pragma once

#include <algorithm>
#include <cstdint>
#include <unordered_map>
#include <vector>

/// \file dnf_internal.h
/// Shared internals of the Shannon-expansion DNF engines (dnf_prob.cc and
/// dnf_compile.cc): residual clause sets, canonicalization by subsumption,
/// and the memoization key. Not part of the public API.

namespace phom::dnf_internal {

using Clauses = std::vector<std::vector<uint32_t>>;

/// Canonical serialization of a clause set for memoization.
struct ClausesKey {
  std::vector<uint32_t> data;

  bool operator==(const ClausesKey& other) const { return data == other.data; }
};

struct ClausesKeyHash {
  size_t operator()(const ClausesKey& key) const {
    size_t h = 0xcbf29ce484222325ull;
    for (uint32_t v : key.data) {
      h ^= v;
      h *= 0x100000001b3ull;
    }
    return h;
  }
};

inline ClausesKey MakeKey(const Clauses& clauses) {
  ClausesKey key;
  size_t total = clauses.size();
  for (const auto& c : clauses) total += c.size();
  key.data.reserve(total);
  for (const auto& c : clauses) {
    key.data.push_back(static_cast<uint32_t>(c.size()) | 0x80000000u);
    key.data.insert(key.data.end(), c.begin(), c.end());
  }
  return key;
}

/// Subsumption removal + canonical clause order (shortest first, then
/// lexicographic). After this, an empty first clause means "constant true".
inline void Canonicalize(Clauses* clauses) {
  std::sort(clauses->begin(), clauses->end(),
            [](const auto& a, const auto& b) {
              if (a.size() != b.size()) return a.size() < b.size();
              return a < b;
            });
  Clauses kept;
  for (auto& clause : *clauses) {
    bool subsumed = false;
    for (const auto& k : kept) {
      if (std::includes(clause.begin(), clause.end(), k.begin(), k.end())) {
        subsumed = true;
        break;
      }
    }
    if (!subsumed) kept.push_back(std::move(clause));
  }
  *clauses = std::move(kept);
}

/// FNV-1a-style hash of one clause (its variable list), length-mixed so a
/// prefix and its extension do not collide trivially.
struct ClauseVecHash {
  size_t operator()(const std::vector<uint32_t>& v) const {
    size_t h = 0xcbf29ce484222325ull;
    for (uint32_t x : v) {
      h ^= x;
      h *= 0x100000001b3ull;
    }
    h ^= v.size();
    h *= 0x100000001b3ull;
    return h;
  }
};

/// Interns canonical clauses to dense uint32 ids. Shannon expansion revisits
/// the same residual clauses constantly (each branch only removes one
/// variable), so a memo key over CLAUSE IDS — instead of the old
/// serialize-every-variable ClausesKey — is both shorter to hash and, for
/// small states, packable into a single uint64 (see ShannonEvaluator in
/// dnf_prob.cc). Interning is exact (id equality ⇔ clause equality), so the
/// memoization behavior is bit-identical to content keying; lookups of
/// already-seen clauses allocate nothing (find by const reference).
class ClauseInterner {
 public:
  /// Returns the stable id of `clause`, assigning the next dense id on
  /// first sight (the only allocation: one stored copy per DISTINCT clause).
  uint32_t Intern(const std::vector<uint32_t>& clause) {
    auto it = ids_.find(clause);
    if (it != ids_.end()) return it->second;
    uint32_t id = static_cast<uint32_t>(ids_.size());
    ids_.emplace(clause, id);
    return id;
  }

  size_t size() const { return ids_.size(); }

 private:
  std::unordered_map<std::vector<uint32_t>, uint32_t, ClauseVecHash> ids_;
};

/// Splits clauses into variable-connected components; returns one group per
/// component (singleton result when already connected).
std::vector<Clauses> SplitVariableComponents(const Clauses& clauses);

}  // namespace phom::dnf_internal
