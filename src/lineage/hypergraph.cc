#include "src/lineage/hypergraph.h"

#include <algorithm>

namespace phom {

namespace {

/// Is a ⊆ b for sorted vectors?
bool IsSubset(const std::vector<uint32_t>& a, const std::vector<uint32_t>& b) {
  return std::includes(b.begin(), b.end(), a.begin(), a.end());
}

bool ChainUnderInclusion(std::vector<const std::vector<uint32_t>*> edges) {
  std::sort(edges.begin(), edges.end(),
            [](const auto* a, const auto* b) { return a->size() < b->size(); });
  for (size_t i = 0; i + 1 < edges.size(); ++i) {
    if (!IsSubset(*edges[i], *edges[i + 1])) return false;
  }
  return true;
}

}  // namespace

void Hypergraph::AddHyperedge(std::vector<uint32_t> vertices) {
  PHOM_CHECK_MSG(!vertices.empty(), "hyperedges must be non-empty");
  std::sort(vertices.begin(), vertices.end());
  vertices.erase(std::unique(vertices.begin(), vertices.end()),
                 vertices.end());
  for (uint32_t v : vertices) PHOM_CHECK(v < num_vertices_);
  edges_.push_back(std::move(vertices));
}

bool Hypergraph::IsBetaLeaf(uint32_t v) const {
  std::vector<const std::vector<uint32_t>*> incident;
  for (const auto& e : edges_) {
    if (std::binary_search(e.begin(), e.end(), v)) incident.push_back(&e);
  }
  return ChainUnderInclusion(std::move(incident));
}

std::optional<std::vector<uint32_t>> Hypergraph::BetaEliminationOrder() const {
  // Work on a copy: eliminate β-leaves one by one, dropping emptied edges.
  std::vector<std::vector<uint32_t>> edges = edges_;
  std::vector<bool> removed(num_vertices_, false);
  std::vector<uint32_t> order;
  order.reserve(num_vertices_);

  auto is_leaf_now = [&edges](uint32_t v) {
    std::vector<const std::vector<uint32_t>*> incident;
    for (const auto& e : edges) {
      if (std::binary_search(e.begin(), e.end(), v)) incident.push_back(&e);
    }
    return ChainUnderInclusion(std::move(incident));
  };

  // Vertices appearing in some hyperedge, to eliminate first.
  std::vector<bool> active(num_vertices_, false);
  for (const auto& e : edges) {
    for (uint32_t v : e) active[v] = true;
  }

  size_t remaining = 0;
  for (uint32_t v = 0; v < num_vertices_; ++v) {
    if (active[v]) ++remaining;
  }

  while (remaining > 0) {
    bool progressed = false;
    for (uint32_t v = 0; v < num_vertices_; ++v) {
      if (!active[v] || removed[v]) continue;
      if (!is_leaf_now(v)) continue;
      // Eliminate v.
      removed[v] = true;
      order.push_back(v);
      --remaining;
      for (auto& e : edges) {
        auto it = std::lower_bound(e.begin(), e.end(), v);
        if (it != e.end() && *it == v) e.erase(it);
      }
      edges.erase(std::remove_if(edges.begin(), edges.end(),
                                 [](const auto& e) { return e.empty(); }),
                  edges.end());
      progressed = true;
      break;
    }
    if (!progressed) return std::nullopt;  // stuck: not β-acyclic
  }

  for (uint32_t v = 0; v < num_vertices_; ++v) {
    if (!active[v]) order.push_back(v);
  }
  return order;
}

}  // namespace phom
