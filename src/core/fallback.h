#pragma once

#include "src/graph/prob_graph.h"
#include "src/hom/backtrack.h"
#include "src/util/numeric.h"
#include "src/util/rational.h"
#include "src/util/result.h"

/// \file fallback.h
/// Exact exponential solvers for the #P-hard cells (and the ground-truth
/// oracle for every tractable algorithm's tests):
///  * world enumeration — conditions on the uncertain edges (probability
///    strictly between 0 and 1) and tests query ⇝ world by backtracking;
///  * match lineage — enumerates homomorphism images of a connected query,
///    builds the (generally non-β-acyclic) monotone DNF, and evaluates it
///    with the memoized Shannon engine. Often far faster than 2^edges when
///    there are few matches; exponential in the worst case.
/// Both are templated on the numeric backend; "exact" refers to the
/// enumeration being exhaustive — with the double backend the world weights
/// are still combined in floating point.

namespace phom {

struct FallbackOptions {
  /// World enumeration refuses instances with more uncertain edges.
  size_t max_uncertain_edges = 26;
  /// Per-world homomorphism search budget.
  BacktrackOptions backtrack;
  /// Cap on enumerated homomorphisms for the match-lineage solver.
  uint64_t max_matches = 200'000;
  /// Cooperative interruption INSIDE a single hard component (non-owning;
  /// null = never interrupted). The world-enumeration and match-enumeration
  /// loops consult the token every cancel_check_interval iterations and
  /// abort with its Check() status — so a 2^m enumeration no longer runs to
  /// completion after its request's deadline has lapsed. Dispatch threads
  /// SolveOptions::cancel in here automatically (engines.cc).
  const CancelToken* cancel = nullptr;
  /// Worlds/matches between token checks (0 behaves as 1). The default
  /// keeps the check overhead well under 1% of a world's hom test while
  /// bounding the post-deadline overrun to ~a millisecond of work.
  uint64_t cancel_check_interval = 1024;
};

struct FallbackStats {
  uint64_t worlds = 0;
  uint64_t matches = 0;
};

template <class Num>
Result<Num> SolveByWorldEnumerationT(const DiGraph& query,
                                     const ProbGraph& instance,
                                     const FallbackOptions& options,
                                     FallbackStats* stats);

/// Requires a connected query with >= 1 edge.
template <class Num>
Result<Num> SolveByMatchLineageT(const DiGraph& query,
                                 const ProbGraph& instance,
                                 const FallbackOptions& options,
                                 FallbackStats* stats);

extern template Result<Rational> SolveByWorldEnumerationT<Rational>(
    const DiGraph&, const ProbGraph&, const FallbackOptions&, FallbackStats*);
extern template Result<double> SolveByWorldEnumerationT<double>(
    const DiGraph&, const ProbGraph&, const FallbackOptions&, FallbackStats*);
extern template Result<IntervalDouble>
SolveByWorldEnumerationT<IntervalDouble>(const DiGraph&, const ProbGraph&,
                                         const FallbackOptions&,
                                         FallbackStats*);
extern template Result<Rational> SolveByMatchLineageT<Rational>(
    const DiGraph&, const ProbGraph&, const FallbackOptions&, FallbackStats*);
extern template Result<double> SolveByMatchLineageT<double>(
    const DiGraph&, const ProbGraph&, const FallbackOptions&, FallbackStats*);
extern template Result<IntervalDouble> SolveByMatchLineageT<IntervalDouble>(
    const DiGraph&, const ProbGraph&, const FallbackOptions&, FallbackStats*);

/// Exact-backend conveniences (the historical entry points).
inline Result<Rational> SolveByWorldEnumeration(
    const DiGraph& query, const ProbGraph& instance,
    const FallbackOptions& options = {}, FallbackStats* stats = nullptr) {
  return SolveByWorldEnumerationT<Rational>(query, instance, options, stats);
}
inline Result<Rational> SolveByMatchLineage(const DiGraph& query,
                                            const ProbGraph& instance,
                                            const FallbackOptions& options = {},
                                            FallbackStats* stats = nullptr) {
  return SolveByMatchLineageT<Rational>(query, instance, options, stats);
}

}  // namespace phom
