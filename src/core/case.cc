#include "src/core/case.h"

#include "src/graph/builders.h"

namespace phom {

const char* ToString(Algorithm a) {
  switch (a) {
    case Algorithm::kTrivial: return "trivial";
    case Algorithm::kConnectedOn2wp: return "connected-on-2wp";
    case Algorithm::kPathOnDwt: return "path-on-dwt";
    case Algorithm::kUnlabeledDwtInstance: return "unlabeled-dwt-instance";
    case Algorithm::kUnlabeledPolytree: return "unlabeled-polytree";
    case Algorithm::kPerComponent: return "per-component";
    case Algorithm::kFallback: return "fallback";
    case Algorithm::kLiftedUcq: return "lifted-ucq";
  }
  return "?";
}

DiGraph DropIsolatedVertices(const DiGraph& g) {
  std::vector<int64_t> remap(g.num_vertices(), -1);
  size_t kept = 0;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    if (g.UndirectedDegree(v) > 0) remap[v] = static_cast<int64_t>(kept++);
  }
  DiGraph out(kept);
  for (const Edge& e : g.edges()) {
    AddEdgeOrDie(&out, static_cast<VertexId>(remap[e.src]),
                 static_cast<VertexId>(remap[e.dst]), e.label);
  }
  return out;
}

std::string TableClassLabel(const Classification& c) {
  if (c.connected) return ToString(c.finest);
  if (c.all_1wp) return "u1WP";
  if (c.all_2wp && c.all_dwt) return "u(2WP|DWT)";
  if (c.all_2wp) return "u2WP";
  if (c.all_dwt) return "uDWT";
  if (c.all_pt) return "uPT";
  return "All";
}

namespace {

/// Can this instance component be solved in PTIME for this query shape?
/// Mirrors the per-component dispatch in solver.cc.
bool ComponentPolySolvable(const Classification& comp, bool query_is_1wp,
                           bool unlabeled) {
  if (comp.is_2wp) return true;                                  // Prop. 4.11
  if (comp.is_dwt) return query_is_1wp || unlabeled;  // Props. 4.10 / 3.6
  if (comp.is_pt) return unlabeled && query_is_1wp;   // Props. 5.4/5.5
  return false;
}

std::string HardnessCitation(bool unlabeled, const Classification& query,
                             const Classification& instance) {
  if (!unlabeled) {
    if (!query.connected) return "Prop. 3.3 (#P-hard)";
    if (instance.all_dwt) {
      if (query.is_2wp) return "Prop. 4.5 (#P-hard)";
      return "Prop. 4.4 (#P-hard)";
    }
    if (instance.all_pt) return "Prop. 4.1 (#P-hard)";
    return "Prop. 4.1 / [Dalvi & Suciu] (#P-hard)";
  }
  if (!query.connected) return "Prop. 3.4 (#P-hard)";
  if (instance.all_pt) return "Prop. 5.6 (#P-hard)";
  return "Prop. 5.1 / [Suciu et al.] (#P-hard)";
}

}  // namespace

const ProbGraph& PreparedProblem::instance() const {
  static const ProbGraph kEmpty(0);
  return context != nullptr ? context->instance : kEmpty;
}

std::shared_ptr<const InstanceContext> BuildInstanceContext(
    const ProbGraph& instance, const std::vector<LabelId>& labels) {
  auto ctx = std::make_shared<InstanceContext>();
  ctx->instance = instance.RestrictToLabels(labels);
  ctx->instance_class = Classify(ctx->instance.graph());
  ctx->components = SplitComponents(ctx->instance);
  ctx->component_classes.reserve(ctx->components.size());
  for (const ComponentView& comp : ctx->components) {
    ctx->component_classes.push_back(Classify(comp.graph.graph()));
  }
  return ctx;
}

PreparedProblem PrepareProblem(const DiGraph& query,
                               const ProbGraph& instance) {
  return PrepareProblemWithProvider(
      query, instance.num_vertices(),
      [&instance](const std::vector<LabelId>& labels) {
        return BuildInstanceContext(instance, labels);
      });
}

PreparedProblem PrepareProblemWithProvider(
    const DiGraph& query, size_t instance_num_vertices,
    const InstanceContextProvider& provider) {
  PreparedProblem out{DiGraph(0), nullptr, std::nullopt, {}};

  // Trivial shells: empty vertex sets.
  if (query.num_vertices() == 0) {
    out.analysis.algorithm = Algorithm::kTrivial;
    out.analysis.tractable = true;
    out.analysis.proposition = "trivial (empty query)";
    out.immediate = Rational::One();
    return out;
  }
  if (instance_num_vertices == 0) {
    out.analysis.algorithm = Algorithm::kTrivial;
    out.analysis.tractable = true;
    out.analysis.proposition = "trivial (empty instance)";
    out.immediate = Rational::Zero();
    return out;
  }

  // 1. Drop isolated query vertices (instance is non-empty).
  DiGraph q = DropIsolatedVertices(query);
  if (q.num_edges() == 0) {
    out.analysis.algorithm = Algorithm::kTrivial;
    out.analysis.tractable = true;
    out.analysis.proposition = "trivial (edgeless query)";
    out.immediate = Rational::One();
    return out;
  }

  // 2. Restrict the instance to the query's labels (delegated so sessions
  // can reuse a cached context for the label set).
  std::vector<LabelId> labels = q.UsedLabels();
  out.context = provider(labels);
  PHOM_CHECK_MSG(out.context != nullptr, "context provider returned null");
  bool unlabeled = labels.size() <= 1;
  out.analysis.effective_unlabeled = unlabeled;

  Classification qc = Classify(q);
  const Classification& ic = out.context->instance_class;

  // 3. Unlabeled collapses to a 1WP query.
  if (unlabeled) {
    if (qc.all_dwt) {
      // Prop. 5.5: a ⊔DWT query is equivalent to →^maxheight everywhere.
      GradedAnalysis ga = AnalyzeGraded(q);
      PHOM_CHECK(ga.is_graded);  // trees are graded
      out.analysis.query_collapsed = true;
      out.analysis.collapsed_length = ga.difference_of_levels;
      q = MakeOneWayPath(static_cast<size_t>(ga.difference_of_levels),
                         labels[0]);
      qc = Classify(q);
    } else if (ic.all_dwt) {
      // Prop. 3.6: on forest instances any graded query collapses; a
      // non-graded query has probability 0.
      GradedAnalysis ga = AnalyzeGraded(q);
      if (!ga.is_graded) {
        out.analysis.algorithm = Algorithm::kUnlabeledDwtInstance;
        out.analysis.tractable = true;
        out.analysis.proposition = "Prop. 3.6 (non-graded query)";
        out.analysis.query_class = qc;
        out.analysis.instance_class = ic;
        out.analysis.cell = "PHom!L(" + TableClassLabel(qc) + ", " +
                            TableClassLabel(ic) + ")";
        out.immediate = Rational::Zero();
        return out;
      }
      out.analysis.query_collapsed = true;
      out.analysis.collapsed_length = ga.difference_of_levels;
      q = MakeOneWayPath(static_cast<size_t>(ga.difference_of_levels),
                         labels[0]);
      qc = Classify(q);
    }
  }

  out.analysis.query_class = qc;
  out.analysis.instance_class = ic;
  out.analysis.cell = std::string(unlabeled ? "PHom!L(" : "PHomL(") +
                      TableClassLabel(qc) + ", " + TableClassLabel(ic) + ")";

  // 4. Verdict + algorithm.
  bool query_is_1wp = qc.is_1wp;
  if (!qc.connected) {
    out.analysis.tractable = false;
    out.analysis.algorithm = Algorithm::kFallback;
    out.analysis.proposition = HardnessCitation(unlabeled, qc, ic);
  } else {
    // Per-component solvability over the instance (classifications cached
    // in the context).
    bool all_poly = true;
    bool any_dwt = false;
    bool any_pt_strict = false;
    bool all_2wp = true;
    for (const Classification& cc : out.context->component_classes) {
      all_poly =
          all_poly && ComponentPolySolvable(cc, query_is_1wp, unlabeled);
      any_dwt = any_dwt || (cc.is_dwt && !cc.is_2wp);
      any_pt_strict = any_pt_strict || (cc.is_pt && !cc.is_dwt && !cc.is_2wp);
      all_2wp = all_2wp && cc.is_2wp;
    }
    out.analysis.tractable = all_poly;
    if (!all_poly) {
      out.analysis.algorithm = Algorithm::kFallback;
      out.analysis.proposition = HardnessCitation(unlabeled, qc, ic);
    } else if (all_2wp) {
      out.analysis.algorithm = Algorithm::kConnectedOn2wp;
      out.analysis.proposition = "Prop. 4.11";
    } else if (unlabeled && ic.all_dwt) {
      out.analysis.algorithm = out.analysis.query_collapsed
                                   ? Algorithm::kUnlabeledDwtInstance
                                   : Algorithm::kPathOnDwt;
      out.analysis.proposition =
          out.analysis.query_collapsed ? "Prop. 3.6" : "Prop. 4.10";
    } else if (!unlabeled && ic.all_dwt) {
      out.analysis.algorithm = Algorithm::kPathOnDwt;
      out.analysis.proposition = "Prop. 4.10";
    } else if (unlabeled && any_pt_strict && !any_dwt && ic.all_pt) {
      out.analysis.algorithm = Algorithm::kUnlabeledPolytree;
      out.analysis.proposition = "Props. 5.4/5.5";
    } else {
      out.analysis.algorithm = Algorithm::kPerComponent;
      out.analysis.proposition = "Props. 4.11/4.10/3.6/5.4 + Lemma 3.7";
    }
  }

  out.query = std::move(q);
  return out;
}

CaseAnalysis AnalyzeCase(const DiGraph& query, const ProbGraph& instance) {
  return PrepareProblem(query, instance).analysis;
}

}  // namespace phom
