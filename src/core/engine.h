#pragma once

#include <memory>
#include <shared_mutex>
#include <string_view>
#include <vector>

#include "src/core/case.h"
#include "src/core/solver.h"
#include "src/util/numeric.h"
#include "src/util/result.h"

/// \file engine.h
/// The engine layer: every solving strategy of the library (the paper's
/// PTIME algorithms, the exact exponential fallbacks, and the Monte Carlo
/// estimator) is an Engine registered in an EngineRegistry. Solver::Solve
/// is pure dispatch: prepare the problem (case.h), pick an engine, run it in
/// the requested numeric backend. Ablation benches and cross-checks select
/// engines by name or by Algorithm instead of hard-coded branches, and new
/// strategies plug in by registering — no solver changes.

namespace phom {

/// One engine run's answer in the backend it was computed in.
struct EngineAnswer {
  Rational exact;          ///< set iff backend == kExact
  double approx = 0.0;     ///< set for every backend
  /// Bracket on the true probability (solver.h): certified outward-rounded
  /// point for kExact, the kernel's directed-rounding enclosure for
  /// kIntervalDouble, the statistical estimate ± half-width for Monte Carlo
  /// runs, vacuous [0, 1] for plain kDouble.
  ProbabilityBound bound;
  /// Certified relative 95% error of a Monte Carlo run (0 otherwise).
  double relative_error_95 = 0.0;
  NumericBackend backend = NumericBackend::kExact;
  /// Filled by the Monte Carlo engine when a lapsed deadline truncated its
  /// sampling (solver.h): the caller must be able to tell a floor-sized
  /// estimate from the full-budget run it asked for. All-default otherwise.
  DegradeInfo degrade;
};

/// A solving strategy for prepared problems. Implementations must be
/// stateless (a registry instance is shared; per-call state lives on the
/// stack) and must answer in the backend requested by options.numeric.
class Engine {
 public:
  virtual ~Engine() = default;

  /// Registry name, e.g. "path-on-dwt" (stable; used by force_engine).
  virtual std::string_view name() const = 0;
  /// The dichotomy algorithm this engine realizes. Engines outside the
  /// dichotomy's own cells (oracles, estimators) report kFallback.
  virtual Algorithm algorithm() const = 0;
  /// False for estimators (Monte Carlo): never eligible for auto dispatch,
  /// and their "exact" answer is only an exactly-represented estimate.
  virtual bool exact() const { return true; }

  /// True for engines that solve each instance component independently and
  /// combine by Lemma 3.7. Such dispatches expose within-query parallelism:
  /// the serve layer resolves the engine once per query with
  /// PlanComponentDispatch, solves components on different threads via
  /// SolvePreparedComponent and merges with CombinePreparedComponents
  /// (solver.h) — bit-identically to this engine's serial Solve.
  virtual bool componentwise() const { return false; }

  /// Whether this engine can answer the analyzed cell at all (used to
  /// validate forced selection). Must be conservative: if this returns
  /// true, Solve must not give a wrong answer (it may still error).
  virtual bool Applies(const CaseAnalysis& analysis) const = 0;

  /// Whether auto dispatch should pick this engine for the analyzed cell.
  /// The default claims exactly the cells the dichotomy assigns to this
  /// engine's algorithm; oracle/estimator engines override to false.
  virtual bool AutoMatch(const CaseAnalysis& analysis) const {
    return analysis.algorithm == algorithm() && Applies(analysis);
  }

  /// Solves the prepared problem (immediate answers are handled by the
  /// caller; prepared.context is non-null here).
  virtual Result<EngineAnswer> Solve(const PreparedProblem& prepared,
                                     const SolveOptions& options,
                                     SolveStats* stats) const = 0;
};

/// Ordered collection of engines. Auto dispatch scans registration order and
/// picks the first exact engine whose AutoMatch claims the cell, so finer
/// strategies must be registered before coarser ones.
///
/// Thread safety: all members lock an internal shared_mutex — lookups
/// (FindByName/FindByAlgorithm/SelectAuto/engines) take a shared lock and
/// may run concurrently from any number of serving threads; Register takes
/// an exclusive lock. The intended invariant is REGISTER BEFORE SERVE:
/// perform all registration at process startup (Global() populates the
/// default engines exactly once, via thread-safe static initialization),
/// before the first solving thread starts. Registration while serving is
/// memory-safe under the lock, but whether in-flight queries observe the new
/// engine is then a race the caller owns. Engine pointers returned by
/// lookups stay valid for the registry's lifetime (engines are never
/// removed).
class EngineRegistry {
 public:
  /// The process-wide registry, populated with the default engines on first
  /// use (thread-safe: C++ static-local initialization guarantees exactly
  /// one RegisterDefaultEngines run even under concurrent first calls).
  /// Register additional engines on it at startup, before serving.
  static EngineRegistry& Global();

  void Register(std::unique_ptr<Engine> engine);

  /// nullptr when absent. FindByAlgorithm returns the first registered
  /// engine realizing the algorithm.
  const Engine* FindByName(std::string_view name) const;
  const Engine* FindByAlgorithm(Algorithm algorithm) const;

  /// The engine auto dispatch runs for this analysis (never null once the
  /// default engines are registered: the fallback engine accepts anything).
  const Engine* SelectAuto(const CaseAnalysis& analysis) const;

  std::vector<const Engine*> engines() const;

 private:
  mutable std::shared_mutex mu_;
  std::vector<std::unique_ptr<Engine>> engines_;  ///< guarded by mu_
};

/// Engine selection exactly as SolvePrepared performs it: a forced engine
/// name resolves first (Invalid on a typo, even when the prepared answer is
/// immediate), then immediate answers return a null engine (no engine runs),
/// then a forced algorithm resolves (Invalid when unregistered), then auto
/// dispatch. Forced selections that do not apply to the analyzed cell are
/// NotSupported. `*forced` reports whether the selection was forced (the
/// caller then reports the engine's own algorithm as primary).
Result<const Engine*> SelectEngineForProblem(const EngineRegistry& registry,
                                             const PreparedProblem& prepared,
                                             const SolveOptions& options,
                                             bool* forced);

/// Registers the built-in engines, in auto-dispatch priority order:
///   connected-on-2wp, path-on-dwt, unlabeled-dwt-instance,
///   unlabeled-polytree, per-component, fallback,
///   dwt-lineage-shannon, match-lineage, monte-carlo, lifted-ucq
/// (dwt-lineage-shannon, match-lineage and monte-carlo never auto-match:
/// they are oracles/ablation routes. lifted-ucq auto-matches exactly the
/// kLiftedUcq cells that PrepareUcq emits, so its position is immaterial.)
void RegisterDefaultEngines(EngineRegistry* registry);

}  // namespace phom
