#include "src/core/monte_carlo.h"

#include <algorithm>
#include <cmath>

namespace phom {

namespace {

double HalfWidth95(uint64_t hits, uint64_t samples) {
  double p = static_cast<double>(hits) / static_cast<double>(samples);
  return 1.96 * std::sqrt(p * (1.0 - p) / static_cast<double>(samples));
}

}  // namespace

Result<MonteCarloEstimate> EstimateProbabilityMonteCarlo(
    const DiGraph& query, const ProbGraph& instance, uint64_t seed,
    const MonteCarloOptions& options) {
  MonteCarloEstimate out;
  if (options.samples == 0) return Status::Invalid("samples must be > 0");
  const uint64_t min_samples = std::min(options.min_samples, options.samples);
  const uint64_t check_step =
      options.check_interval == 0 ? 1 : options.check_interval;
  // The floor after which the target-ε rule may stop (never at 0 samples:
  // an empty estimate has a degenerate half-width of 0).
  const uint64_t target_floor = std::max<uint64_t>(min_samples, 1);

  const DiGraph& g = instance.graph();
  // Pre-convert probabilities once; sampling uses double precision, which is
  // fine for an estimator.
  std::vector<double> probs;
  probs.reserve(g.num_edges());
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    probs.push_back(instance.prob(e).ToDouble());
  }

  Rng rng(seed);
  uint64_t hits = 0;
  uint64_t s = 0;
  for (; s < options.samples; ++s) {
    if (s % check_step == 0) {
      // Chunk boundary: the budget gates. Checking on the sample COUNT (not
      // wall time) keeps the stopping point — and with it the estimate —
      // deterministic for a fixed stop cause.
      if (options.cancel != nullptr) {
        Status gate = options.cancel->Check();
        if (!gate.ok()) {
          // An explicit cancel always aborts; a lapsed deadline aborts only
          // below the degraded-mode floor, and truncates above it.
          if (gate.code() == Status::Code::kCancelled || min_samples == 0) {
            return gate;
          }
          if (s >= min_samples) {
            out.deadline_truncated = true;
            break;
          }
        }
      }
      // The target rule requires an INTERIOR estimate: at hits == 0 or
      // hits == s the normal-approximation half-width degenerates to 0 and
      // would declare convergence no matter how few samples are in.
      if (options.target_half_width > 0.0 && s >= target_floor &&
          hits > 0 && hits < s &&
          HalfWidth95(hits, s) <= options.target_half_width) {
        out.converged = true;
        break;
      }
    }
    DiGraph world(g.num_vertices());
    for (EdgeId e = 0; e < g.num_edges(); ++e) {
      if (rng.Bernoulli(probs[e])) {
        const Edge& edge = g.edge(e);
        AddEdgeOrDie(&world, edge.src, edge.dst, edge.label);
      }
    }
    PHOM_ASSIGN_OR_RETURN(bool hom,
                          HasHomomorphism(query, world, options.backtrack));
    if (hom) ++hits;
  }
  out.samples = s;  // >= 1: every stop rule requires at least one sample
  out.hits = hits;
  out.estimate = static_cast<double>(hits) / static_cast<double>(s);
  out.half_width_95 = HalfWidth95(hits, s);
  return out;
}

}  // namespace phom
