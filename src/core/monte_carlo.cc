#include "src/core/monte_carlo.h"

#include <cmath>

namespace phom {

Result<MonteCarloEstimate> EstimateProbabilityMonteCarlo(
    const DiGraph& query, const ProbGraph& instance, uint64_t seed,
    const MonteCarloOptions& options) {
  MonteCarloEstimate out;
  out.samples = options.samples;
  if (options.samples == 0) return Status::Invalid("samples must be > 0");

  const DiGraph& g = instance.graph();
  // Pre-convert probabilities once; sampling uses double precision, which is
  // fine for an estimator.
  std::vector<double> probs;
  probs.reserve(g.num_edges());
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    probs.push_back(instance.prob(e).ToDouble());
  }

  Rng rng(seed);
  uint64_t hits = 0;
  for (uint64_t s = 0; s < options.samples; ++s) {
    DiGraph world(g.num_vertices());
    for (EdgeId e = 0; e < g.num_edges(); ++e) {
      if (rng.Bernoulli(probs[e])) {
        const Edge& edge = g.edge(e);
        AddEdgeOrDie(&world, edge.src, edge.dst, edge.label);
      }
    }
    PHOM_ASSIGN_OR_RETURN(bool hom,
                          HasHomomorphism(query, world, options.backtrack));
    if (hom) ++hits;
  }
  out.hits = hits;
  out.estimate = static_cast<double>(hits) / options.samples;
  double p = out.estimate;
  out.half_width_95 =
      1.96 * std::sqrt(p * (1.0 - p) / static_cast<double>(options.samples));
  return out;
}

}  // namespace phom
