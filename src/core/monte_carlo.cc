#include "src/core/monte_carlo.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "src/util/interval_double.h"

namespace phom {

namespace {

double HalfWidth95(uint64_t hits, uint64_t samples) {
  double p = static_cast<double>(hits) / static_cast<double>(samples);
  return 1.96 * std::sqrt(p * (1.0 - p) / static_cast<double>(samples));
}

struct LineageLowerBound {
  /// max over enumerated matches of Π π(e) over the match's DISTINCT image
  /// edges, every multiplication rounded DOWN — a certified lower bound on
  /// p for any enumeration prefix (each match alone forces only its image).
  double lower_bound = 0.0;
  /// COMPLETE enumeration of the positive-probability subgraph found no
  /// match: p == 0 exactly.
  bool exact_zero = false;
};

/// The deterministic pre-pass behind target_relative_error. Never errors:
/// a truncated or step-capped enumeration keeps the best bound found so far
/// (sound — just weaker), and only an error-free empty enumeration claims
/// the exact-zero certificate.
LineageLowerBound LowerBoundViaLineage(const DiGraph& query,
                                       const ProbGraph& instance,
                                       const MonteCarloOptions& options) {
  LineageLowerBound out;
  const DiGraph& g = instance.graph();
  // Matches through a zero-probability edge contribute nothing (their
  // product is 0) and their absence is what certifies p == 0, so enumerate
  // against the positive-probability subgraph only. Vertex ids are shared
  // with `g`, so FindEdge on `g` recovers each image edge's probability.
  DiGraph positive(g.num_vertices());
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    if (instance.prob(e).is_zero()) continue;
    const Edge& edge = g.edge(e);
    AddEdgeOrDie(&positive, edge.src, edge.dst, edge.label);
  }
  // Down(ToDouble(π)) under-approximates each factor even when ToDouble
  // rounds up, keeping the product certified at the cost of <= 1 ulp per
  // edge. This pass runs under deadline pressure: bound its backtracking
  // steps independently of the (huge) sampling-loop default.
  std::vector<double> prob_floor(g.num_edges(), 0.0);
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    prob_floor[e] =
        std::max(0.0, interval_internal::Down(instance.prob(e).ToDouble()));
  }
  BacktrackOptions bt = options.backtrack;
  bt.max_steps = std::min<uint64_t>(bt.max_steps, 1'000'000);
  const uint64_t cap =
      options.lower_bound_match_cap == 0 ? 1 : options.lower_bound_match_cap;
  uint64_t visited = 0;
  std::vector<EdgeId> used;
  Result<uint64_t> enumerated = ForEachHomomorphism(
      query, positive,
      [&](const std::vector<VertexId>& image) {
        ++visited;
        used.clear();
        for (const Edge& qe : query.edges()) {
          // The match maps query edge (u, v) onto instance pair
          // (image[u], image[v]); positive ⊆ g guarantees it exists in g.
          std::optional<EdgeId> ie = g.FindEdge(image[qe.src], image[qe.dst]);
          if (!ie.has_value()) return false;  // defensive: cannot happen
          used.push_back(*ie);
        }
        // Distinct edges only: two query edges on the same image edge are
        // one Bernoulli event, and counting it twice would (soundly but
        // needlessly) weaken the bound.
        std::sort(used.begin(), used.end());
        used.erase(std::unique(used.begin(), used.end()), used.end());
        double product = 1.0;
        for (EdgeId ie : used) {
          product =
              std::max(0.0, interval_internal::Down(product * prob_floor[ie]));
          if (product <= out.lower_bound) break;  // cannot improve the max
        }
        out.lower_bound = std::max(out.lower_bound, product);
        return visited < cap;
      },
      bt);
  out.exact_zero = enumerated.ok() && visited == 0;
  return out;
}

/// Shared sampling loop for one query or a union of disjuncts: a world is a
/// hit when ANY query in `queries` maps into it (tested in order,
/// short-circuiting). With queries.size() == 1 this is the original
/// single-CQ estimator, bit for bit: the sample stream is consumed
/// identically and every stop rule sees the same counts.
Result<MonteCarloEstimate> EstimateImpl(
    const std::vector<const DiGraph*>& queries, const ProbGraph& instance,
    uint64_t seed, const MonteCarloOptions& options) {
  MonteCarloEstimate out;
  if (options.samples == 0) return Status::Invalid("samples must be > 0");
  const uint64_t min_samples = std::min(options.min_samples, options.samples);
  const uint64_t check_step =
      options.check_interval == 0 ? 1 : options.check_interval;
  // The floor after which the target-ε rule may stop (never at 0 samples:
  // an empty estimate has a degenerate half-width of 0).
  const uint64_t target_floor = std::max<uint64_t>(min_samples, 1);

  double lower_bound = 0.0;
  if (options.target_relative_error > 0.0) {
    // Each disjunct alone lower-bounds the union, so the max over disjuncts
    // is certified; the exact-zero certificate needs EVERY disjunct's
    // complete enumeration to come up empty.
    bool all_exact_zero = true;
    for (const DiGraph* query : queries) {
      LineageLowerBound lb = LowerBoundViaLineage(*query, instance, options);
      all_exact_zero = all_exact_zero && lb.exact_zero;
      lower_bound = std::max(lower_bound, lb.lower_bound);
    }
    if (all_exact_zero) {
      // p == 0 is PROVED — sampling would only estimate a known constant.
      out.exact_zero = true;
      out.converged = true;
      out.relative_error_95 = 0.0;
      return out;
    }
  }

  const DiGraph& g = instance.graph();
  // Pre-convert probabilities once; sampling uses double precision, which is
  // fine for an estimator.
  std::vector<double> probs;
  probs.reserve(g.num_edges());
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    probs.push_back(instance.prob(e).ToDouble());
  }

  Rng rng(seed);
  uint64_t hits = 0;
  uint64_t s = 0;
  for (; s < options.samples; ++s) {
    if (s % check_step == 0) {
      // Chunk boundary: the budget gates. Checking on the sample COUNT (not
      // wall time) keeps the stopping point — and with it the estimate —
      // deterministic for a fixed stop cause.
      if (options.cancel != nullptr) {
        Status gate = options.cancel->Check();
        if (!gate.ok()) {
          // An explicit cancel always aborts; a lapsed deadline aborts only
          // below the degraded-mode floor, and truncates above it.
          if (gate.code() == Status::Code::kCancelled || min_samples == 0) {
            return gate;
          }
          if (s >= min_samples) {
            out.deadline_truncated = true;
            break;
          }
        }
      }
      // The target rule requires an INTERIOR estimate: at hits == 0 or
      // hits == s the normal-approximation half-width degenerates to 0 and
      // would declare convergence no matter how few samples are in.
      if (options.target_half_width > 0.0 && s >= target_floor &&
          hits > 0 && hits < s &&
          HalfWidth95(hits, s) <= options.target_half_width) {
        out.converged = true;
        break;
      }
      // The relative rule compares against the certified floor: once the
      // half-width is within target · lb it is a fortiori within target · p
      // (lb <= p), so the RELATIVE 95% bound is certifiably met. No
      // interior-hit guard needed — CertifiedHalfWidth95's rule-of-three
      // branch handles the boundary counts non-degenerately (3/s > target·lb
      // for small s, so an all-miss/all-hit prefix keeps sampling).
      if (options.target_relative_error > 0.0 && lower_bound > 0.0 &&
          s >= target_floor &&
          CertifiedHalfWidth95(hits, s) <=
              options.target_relative_error * lower_bound) {
        out.converged = true;
        break;
      }
    }
    DiGraph world(g.num_vertices());
    for (EdgeId e = 0; e < g.num_edges(); ++e) {
      if (rng.Bernoulli(probs[e])) {
        const Edge& edge = g.edge(e);
        AddEdgeOrDie(&world, edge.src, edge.dst, edge.label);
      }
    }
    for (const DiGraph* query : queries) {
      PHOM_ASSIGN_OR_RETURN(bool hom,
                            HasHomomorphism(*query, world, options.backtrack));
      if (hom) {
        ++hits;
        break;
      }
    }
  }
  out.samples = s;  // >= 1: every stop rule above requires >= 1 sample
  out.hits = hits;
  out.estimate = static_cast<double>(hits) / static_cast<double>(s);
  out.half_width_95 = HalfWidth95(hits, s);
  out.lower_bound = lower_bound;
  out.relative_error_95 =
      lower_bound > 0.0 ? CertifiedHalfWidth95(hits, s) / lower_bound
                        : std::numeric_limits<double>::infinity();
  return out;
}

}  // namespace

double CertifiedHalfWidth95(uint64_t hits, uint64_t samples) {
  // samples == 0 divides by zero below (3/0 = inf, or NaN after a later
  // inf·0): return the vacuous 95% bound 1 instead — p and any in-range
  // estimate both live in [0, 1], so |estimate − p| <= 1 always holds.
  if (samples == 0) return 1.0;
  if (hits == 0 || hits == samples) return 3.0 / static_cast<double>(samples);
  return HalfWidth95(hits, samples);
}

Result<MonteCarloEstimate> EstimateProbabilityMonteCarlo(
    const DiGraph& query, const ProbGraph& instance, uint64_t seed,
    const MonteCarloOptions& options) {
  return EstimateImpl({&query}, instance, seed, options);
}

Result<MonteCarloEstimate> EstimateUcqProbabilityMonteCarlo(
    const std::vector<DiGraph>& disjuncts, const ProbGraph& instance,
    uint64_t seed, const MonteCarloOptions& options) {
  if (disjuncts.empty()) {
    return Status::Invalid("the union must have at least one disjunct");
  }
  std::vector<const DiGraph*> queries;
  queries.reserve(disjuncts.size());
  for (const DiGraph& d : disjuncts) queries.push_back(&d);
  return EstimateImpl(queries, instance, seed, options);
}

}  // namespace phom
