#include "src/core/fallback.h"

#include <algorithm>
#include <set>

#include "src/graph/classify.h"
#include "src/lineage/dnf.h"
#include "src/lineage/dnf_prob.h"

namespace phom {

template <class Num>
Result<Num> SolveByWorldEnumerationT(const DiGraph& query,
                                     const ProbGraph& instance,
                                     const FallbackOptions& options,
                                     FallbackStats* stats) {
  using Ops = NumericOps<Num>;
  const DiGraph& g = instance.graph();
  if (query.num_vertices() == 0) return Ops::One();
  if (g.num_vertices() == 0) return Ops::Zero();

  std::vector<EdgeId> uncertain;
  std::vector<EdgeId> certain;
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const Rational& p = instance.prob(e);
    if (p.is_one()) {
      certain.push_back(e);
    } else if (!p.is_zero()) {
      uncertain.push_back(e);
    }
  }
  if (uncertain.size() > options.max_uncertain_edges) {
    return Status::ResourceExhausted(
        "world enumeration over " + std::to_string(uncertain.size()) +
        " uncertain edges exceeds the limit of " +
        std::to_string(options.max_uncertain_edges));
  }

  // Short-circuits: hom with only certain edges -> 1; no hom even with all
  // uncertain edges -> 0.
  auto build_world = [&](uint64_t mask) {
    DiGraph world(g.num_vertices());
    for (EdgeId e : certain) {
      const Edge& edge = g.edge(e);
      AddEdgeOrDie(&world, edge.src, edge.dst, edge.label);
    }
    for (size_t i = 0; i < uncertain.size(); ++i) {
      if ((mask >> i) & 1) {
        const Edge& edge = g.edge(uncertain[i]);
        AddEdgeOrDie(&world, edge.src, edge.dst, edge.label);
      }
    }
    return world;
  };
  {
    PHOM_ASSIGN_OR_RETURN(
        bool certain_hom,
        HasHomomorphism(query, build_world(0), options.backtrack));
    if (certain_hom) return Ops::One();
    uint64_t full = uncertain.size() >= 64
                        ? ~uint64_t{0}
                        : (uint64_t{1} << uncertain.size()) - 1;
    PHOM_ASSIGN_OR_RETURN(
        bool any_hom,
        HasHomomorphism(query, build_world(full), options.backtrack));
    if (!any_hom) return Ops::Zero();
  }

  std::vector<Num> uncertain_probs;
  uncertain_probs.reserve(uncertain.size());
  for (EdgeId e : uncertain) {
    uncertain_probs.push_back(Ops::From(instance.prob(e)));
  }
  Num total = Ops::Zero();
  uint64_t num_worlds = uint64_t{1} << uncertain.size();
  const uint64_t check_step =
      options.cancel_check_interval == 0 ? 1 : options.cancel_check_interval;
  for (uint64_t mask = 0; mask < num_worlds; ++mask) {
    // The in-component yield point: a single hard cell may enumerate 2^26
    // worlds, far too long to only notice deadlines between components.
    if (options.cancel != nullptr && mask % check_step == 0) {
      PHOM_RETURN_NOT_OK(options.cancel->Check());
    }
    if (stats != nullptr) ++stats->worlds;
    DiGraph world = build_world(mask);
    PHOM_ASSIGN_OR_RETURN(bool hom,
                          HasHomomorphism(query, world, options.backtrack));
    if (!hom) continue;
    Num w = Ops::One();
    for (size_t i = 0; i < uncertain.size(); ++i) {
      const Num& p = uncertain_probs[i];
      w *= ((mask >> i) & 1) ? p : Ops::Complement(p);
    }
    total += w;
  }
  return total;
}

template <class Num>
Result<Num> SolveByMatchLineageT(const DiGraph& query,
                                 const ProbGraph& instance,
                                 const FallbackOptions& options,
                                 FallbackStats* stats) {
  if (!IsConnected(query) || query.num_edges() == 0) {
    return Status::Invalid(
        "match-lineage fallback requires a connected query with edges");
  }
  const DiGraph& g = instance.graph();
  // Remove probability-0 edges from consideration.
  std::set<std::vector<uint32_t>> images;
  uint64_t matches = 0;
  bool exhausted = false;
  const uint64_t check_step =
      options.cancel_check_interval == 0 ? 1 : options.cancel_check_interval;
  Status interrupted = Status::OK();
  uint64_t visited = 0;  // every enumerated assignment, unlike `matches`,
                         // which skips impossible (zero-probability) images
  auto collect = [&](const std::vector<VertexId>& assignment) {
    // Same in-component yield point as world enumeration: match
    // enumeration is exponential in the worst case too.
    if (options.cancel != nullptr && visited++ % check_step == 0) {
      interrupted = options.cancel->Check();
      if (!interrupted.ok()) return false;
    }
    std::vector<uint32_t> image;
    image.reserve(query.num_edges());
    for (const Edge& qe : query.edges()) {
      std::optional<EdgeId> e =
          g.FindEdge(assignment[qe.src], assignment[qe.dst]);
      PHOM_CHECK(e.has_value());
      if (instance.prob(*e).is_zero()) return true;  // impossible image
      image.push_back(*e);
    }
    std::sort(image.begin(), image.end());
    image.erase(std::unique(image.begin(), image.end()), image.end());
    images.insert(std::move(image));
    if (++matches > options.max_matches) {
      exhausted = true;
      return false;
    }
    return true;
  };
  PHOM_ASSIGN_OR_RETURN(
      uint64_t total,
      ForEachHomomorphism(query, g, collect, options.backtrack));
  (void)total;
  if (!interrupted.ok()) return interrupted;
  if (exhausted) {
    return Status::ResourceExhausted("match-lineage exceeded max_matches");
  }
  if (stats != nullptr) stats->matches = matches;

  MonotoneDnf lineage(static_cast<uint32_t>(g.num_edges()));
  for (const auto& image : images) {
    lineage.AddClause(image);
  }
  lineage.RemoveSubsumed();
  BackendProbs<Num> probs(instance.probs());
  return DnfProbabilityShannonT<Num>(lineage, *probs, {}, nullptr);
}

template Result<Rational> SolveByWorldEnumerationT<Rational>(
    const DiGraph&, const ProbGraph&, const FallbackOptions&, FallbackStats*);
template Result<double> SolveByWorldEnumerationT<double>(
    const DiGraph&, const ProbGraph&, const FallbackOptions&, FallbackStats*);
template Result<IntervalDouble> SolveByWorldEnumerationT<IntervalDouble>(
    const DiGraph&, const ProbGraph&, const FallbackOptions&, FallbackStats*);
template Result<Rational> SolveByMatchLineageT<Rational>(
    const DiGraph&, const ProbGraph&, const FallbackOptions&, FallbackStats*);
template Result<double> SolveByMatchLineageT<double>(
    const DiGraph&, const ProbGraph&, const FallbackOptions&, FallbackStats*);
template Result<IntervalDouble> SolveByMatchLineageT<IntervalDouble>(
    const DiGraph&, const ProbGraph&, const FallbackOptions&, FallbackStats*);

}  // namespace phom
