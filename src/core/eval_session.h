#pragma once

#include <map>
#include <memory>
#include <vector>

#include "src/core/solver.h"

/// \file eval_session.h
/// Amortized evaluation sessions: a server holding one probabilistic
/// instance and answering many queries against it. One-shot Solver::Solve
/// re-derives the instance-side preparation (label marginalization,
/// component split, per-component classification) on every call — work that
/// dominates latency for small queries. EvalSession builds that preparation
/// once per distinct query label set, caches it as an immutable
/// InstanceContext, and shares it across the batch; the answers are
/// bit-identical to one-shot solving because both run the same
/// PrepareProblemWithProvider + SolvePrepared pipeline.

namespace phom {

struct SessionStats {
  size_t queries = 0;
  /// Distinct label-set preparations built (the amortized work).
  size_t instance_preparations = 0;
  /// Queries whose label set hit the context cache.
  size_t context_cache_hits = 0;
};

class EvalSession {
 public:
  explicit EvalSession(ProbGraph instance, SolveOptions options = {})
      : instance_(std::move(instance)), options_(std::move(options)) {}

  /// Answers one query; equivalent to Solver(options).Solve(query, instance)
  /// bit for bit.
  Result<SolveResult> Solve(const DiGraph& query);

  /// Answers a batch in order (per-query failures stay per-query).
  std::vector<Result<SolveResult>> SolveBatch(
      const std::vector<DiGraph>& queries);

  const ProbGraph& instance() const { return instance_; }
  const SolveOptions& options() const { return options_; }
  const SessionStats& stats() const { return stats_; }

 private:
  ProbGraph instance_;
  SolveOptions options_;
  /// Label set (sorted) -> cached instance-side preparation.
  std::map<std::vector<LabelId>, std::shared_ptr<const InstanceContext>>
      contexts_;
  SessionStats stats_;
};

}  // namespace phom
