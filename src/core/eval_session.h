#pragma once

#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "src/core/solver.h"

/// \file eval_session.h
/// Amortized evaluation sessions: a server holding one probabilistic
/// instance and answering many queries against it. One-shot Solver::Solve
/// re-derives the instance-side preparation (label marginalization,
/// component split, per-component classification) on every call — work that
/// dominates latency for small queries. EvalSession builds that preparation
/// once per distinct query label set, caches it as an immutable
/// InstanceContext, and shares it across the batch; the answers are
/// bit-identical to one-shot solving because both run the same
/// PrepareProblemWithProvider + SolvePrepared pipeline.
///
/// Thread safety: EvalSession is safe to call from many threads at once.
/// An internal mutex guards the context-cache index and the stats; both the
/// solving AND the context construction (the expensive parts) run outside
/// it — a cold build holds only its own entry's mutex, so it blocks
/// same-label-set queries (which reuse the one build: exactly-once) and
/// nothing else.

namespace phom {

struct SessionStats {
  size_t queries = 0;
  /// Distinct label-set preparations built (the amortized work).
  size_t instance_preparations = 0;
  /// Queries whose label set hit the context cache (the session's own map
  /// or the shared InstanceContextCache).
  size_t context_cache_hits = 0;
  /// Serial-path solves converted to a budgeted Monte Carlo estimate by the
  /// session's DegradePolicy (EvalSession::Solve only; the serve executor
  /// counts its own conversions in serve::ExecutorStats).
  size_t degraded_solves = 0;
};

/// Pluggable cross-session cache of InstanceContexts, so several sessions
/// (e.g. the shards of a serve::ShardedServer) can share preparations for
/// identical (instance, label set) pairs. Implementations must be
/// thread-safe and must build via BuildInstanceContext on a miss.
/// `instance_fingerprint` is the caller's ProbGraph::Fingerprint(), passed
/// in so sessions hash their instance once, not per query. `*hit` reports
/// whether the context was already cached (by any session).
class InstanceContextCache {
 public:
  virtual ~InstanceContextCache() = default;
  virtual std::shared_ptr<const InstanceContext> GetOrBuild(
      const ProbGraph& instance, uint64_t instance_fingerprint,
      const std::vector<LabelId>& labels, bool* hit) = 0;
};

/// Canonical form of a query label set used as a context-cache key: sorted
/// with duplicates removed. Label MULTISETS that denote the same set (e.g.
/// {R, S, S} from a hand-built provider call vs {R, S}) restrict the
/// instance identically, so they must map to the same cache entry — keying
/// on the raw vector would miss the cache and double-build the context.
std::vector<LabelId> NormalizeLabelKey(std::vector<LabelId> labels);

class EvalSession {
 public:
  explicit EvalSession(ProbGraph instance, SolveOptions options = {})
      : EvalSession(std::move(instance), std::move(options), nullptr) {}

  /// A session whose context cache is shared with other sessions (see
  /// InstanceContextCache; pass nullptr for a private per-session cache).
  EvalSession(ProbGraph instance, SolveOptions options,
              std::shared_ptr<InstanceContextCache> shared_cache);

  /// Answers one query; equivalent to Solver(options).Solve(query, instance)
  /// bit for bit. Thread-safe. When the session options carry a CancelToken
  /// AND a DegradePolicy with mode kOnDeadlineRisk, a DeadlineExceeded solve
  /// is re-dispatched to the budgeted Monte Carlo estimator
  /// (SolveDegradedMonteCarlo, solver.h) — the serial twin of the serve
  /// layer's degradation path.
  Result<SolveResult> Solve(const DiGraph& query);

  /// Answers one query with per-request overrides applied on top of this
  /// session's options (the serial twin of the serve layer's per-request
  /// override path): equivalent to
  /// Solver(ApplyOverrides(options(), overrides)).Solve(query, instance)
  /// bit for bit, while still sharing this session's context cache.
  Result<SolveResult> Solve(const DiGraph& query,
                            const SolveOverrides& overrides);

  /// Answers a UCQ (union of conjunctive queries); equivalent to
  /// Solver(options).SolveUcq(ucq, instance) bit for bit, while sharing the
  /// session's context cache (the union's label-set context is keyed and
  /// reused like any single-CQ context). A one-disjunct union is answered
  /// bit-identically to Solve(disjunct). Thread-safe; degrades to whole-
  /// union Monte Carlo sampling under the same policy as Solve.
  Result<SolveResult> SolveUcq(const Ucq& ucq);

  /// SolveUcq with per-request overrides, mirroring the single-CQ overload.
  Result<SolveResult> SolveUcq(const Ucq& ucq, const SolveOverrides& overrides);

  /// Answers a batch in order (per-query failures stay per-query).
  std::vector<Result<SolveResult>> SolveBatch(
      const std::vector<DiGraph>& queries);

  /// The preparation half of Solve, with this session's context caching:
  /// Solve(q) == SolvePrepared(Prepare(q), options()). Exposed so the serve
  /// layer can prepare once and fan the component subproblems out over a
  /// thread pool (solver.h, serve/executor.h). Thread-safe.
  PreparedProblem Prepare(const DiGraph& query);

  /// The preparation half of SolveUcq, with this session's context caching:
  /// SolveUcq(u) == SolvePrepared(PrepareUcq(u), options()). Thread-safe.
  PreparedProblem PrepareUcq(const Ucq& ucq);

  const ProbGraph& instance() const { return instance_; }
  const SolveOptions& options() const { return options_; }
  /// Snapshot of the counters (copied under the session lock, so it is safe
  /// to call while other threads are solving).
  SessionStats stats() const;

 private:
  /// One context (or the right to build it): `m` serializes same-key
  /// builders/waiters without holding the session-wide lock.
  struct ContextSlot {
    std::mutex m;
    std::shared_ptr<const InstanceContext> context;  ///< guarded by m
  };

  /// Prepare + SolvePrepared + the DegradePolicy re-dispatch (shared by
  /// both Solve overloads).
  Result<SolveResult> SolveWithOptions(const DiGraph& query,
                                       const SolveOptions& options);

  /// SolvePrepared + the DegradePolicy re-dispatch on an already-prepared
  /// problem (the tail shared by the CQ and UCQ solve paths).
  Result<SolveResult> SolvePreparedWithDegrade(const PreparedProblem& prepared,
                                               const SolveOptions& options);

  std::shared_ptr<const InstanceContext> LookupContext(
      const std::vector<LabelId>& labels);

  ProbGraph instance_;
  SolveOptions options_;
  std::shared_ptr<InstanceContextCache> shared_cache_;
  uint64_t fingerprint_ = 0;  ///< instance_.Fingerprint(), set iff shared
  mutable std::mutex mu_;
  /// Normalized label key -> context slot (private cache, used only when no
  /// shared cache was given). Guarded by mu_.
  std::map<std::vector<LabelId>, std::shared_ptr<ContextSlot>> contexts_;
  SessionStats stats_;  ///< guarded by mu_
};

}  // namespace phom
