#include "src/core/solver.h"

#include <algorithm>

#include "src/core/engine.h"
#include "src/lifted/lift.h"

namespace phom {

SolveOptions ApplyOverrides(SolveOptions base, const SolveOverrides& overrides) {
  if (overrides.numeric.has_value()) base.numeric = *overrides.numeric;
  if (overrides.force_engine.has_value()) {
    base.force_engine = *overrides.force_engine;
  }
  if (overrides.monte_carlo_seed.has_value()) {
    base.monte_carlo_seed = *overrides.monte_carlo_seed;
  }
  if (overrides.degrade.has_value()) base.degrade = *overrides.degrade;
  // After `degrade` on purpose: the field-level override composes with (or
  // on top of) a whole-policy override in the same request.
  if (overrides.target_relative_error.has_value()) {
    base.degrade.target_relative_error = *overrides.target_relative_error;
  }
  if (overrides.escalate.has_value()) base.escalate = *overrides.escalate;
  // After `escalate` on purpose, mirroring target_relative_error above: the
  // field-level width override composes with a whole-policy override.
  if (overrides.max_width.has_value()) {
    base.escalate.max_width = *overrides.max_width;
    if (*overrides.max_width > 0.0) {
      base.escalate.mode = EscalationMode::kOnWideResult;
    }
  }
  return base;
}

ProbabilityBound CertifiedPointBound(const Rational& p) {
  const IntervalDouble iv = NumericOps<IntervalDouble>::From(p);
  return ProbabilityBound{iv.lo, iv.hi, /*certified=*/true};
}

Result<const Engine*> SelectEngineForProblem(const EngineRegistry& registry,
                                             const PreparedProblem& prepared,
                                             const SolveOptions& options,
                                             bool* forced) {
  *forced = false;
  const Engine* engine = nullptr;
  if (!options.force_engine.empty()) {
    // Name resolution errors even when the answer is immediate: a typo'd
    // engine name must not be masked by a trivial first input.
    engine = registry.FindByName(options.force_engine);
    if (engine == nullptr) {
      return Status::Invalid("no engine named '" + options.force_engine +
                             "' is registered");
    }
    *forced = true;
  }

  // Immediate answers are decided during preparation; no engine runs (and a
  // forced-but-inapplicable engine is not an error on them).
  if (prepared.immediate.has_value()) return static_cast<const Engine*>(nullptr);

  // UCQ inputs always route through the lifted engine: any single-CQ engine
  // handed the prepared problem would silently solve disjunct 0 only. A
  // forced engine still resolved above (typos error identically), and the
  // force passes through to the plan's unit solves — except "monte-carlo",
  // which samples the whole UNION directly (a signed sum of independent
  // per-unit estimates would be statistically far worse).
  if (prepared.ucq != nullptr) {
    if (*forced && engine->name() == "monte-carlo") return engine;
    const Engine* lifted = registry.FindByName("lifted-ucq");
    PHOM_CHECK_MSG(lifted != nullptr, "lifted-ucq engine is not registered");
    return lifted;
  }

  if (!*forced) {
    if (options.force_algorithm.has_value()) {
      engine = registry.FindByAlgorithm(*options.force_algorithm);
      if (engine == nullptr) {
        return Status::Invalid(
            std::string("no engine registered for algorithm ") +
            ToString(*options.force_algorithm));
      }
      *forced = true;
    } else {
      engine = registry.SelectAuto(prepared.analysis);
    }
  }
  PHOM_CHECK_MSG(engine != nullptr,
                 "engine registry has no engine for " + prepared.analysis.cell);
  if (*forced && !engine->Applies(prepared.analysis)) {
    return Status::NotSupported(std::string(engine->name()) +
                                " does not apply to " +
                                prepared.analysis.cell);
  }
  return engine;
}

Result<SolveResult> SolvePrepared(const PreparedProblem& prepared,
                                  const SolveOptions& options) {
  SolveResult out;
  out.analysis = prepared.analysis;
  out.numeric = options.numeric;
  out.stats.primary = prepared.analysis.algorithm;

  bool forced = false;
  PHOM_ASSIGN_OR_RETURN(
      const Engine* engine,
      SelectEngineForProblem(EngineRegistry::Global(), prepared, options,
                             &forced));

  if (engine == nullptr) {  // immediate answer
    if (options.numeric == NumericBackend::kExact) {
      out.probability = *prepared.immediate;
    }
    out.probability_double = prepared.immediate->ToDouble();
    // Preparation decided the answer exactly, whatever the backend.
    out.bound = CertifiedPointBound(*prepared.immediate);
    return out;
  }

  if (forced) out.stats.primary = engine->algorithm();
  out.stats.engine = std::string(engine->name());

  const CancelToken::Clock::time_point engine_start =
      CancelToken::Clock::now();
  PHOM_ASSIGN_OR_RETURN(EngineAnswer answer,
                        engine->Solve(prepared, options, &out.stats));
  out.stats.duration = CancelToken::Clock::now() - engine_start;
  out.probability = std::move(answer.exact);
  out.probability_double = answer.approx;
  out.bound = answer.bound;
  out.relative_error_95 = answer.relative_error_95;
  out.numeric = answer.backend;  // what the engine actually computed in
  out.degrade = answer.degrade;  // truncation provenance (Monte Carlo)
  return out;
}

Result<SolveResult> SolveDegradedMonteCarlo(const PreparedProblem& prepared,
                                            const SolveOptions& options) {
  const CancelToken::Clock::time_point start = CancelToken::Clock::now();
  SolveResult out;
  out.analysis = prepared.analysis;
  out.numeric = options.numeric;
  out.stats.primary = prepared.analysis.algorithm;
  if (prepared.immediate.has_value()) {
    // Preparation already decided the answer; "degrading" it would only
    // replace a free exact answer by an estimate of itself.
    if (options.numeric == NumericBackend::kExact) {
      out.probability = *prepared.immediate;
    }
    out.probability_double = prepared.immediate->ToDouble();
    out.bound = CertifiedPointBound(*prepared.immediate);
    return out;
  }

  const DegradePolicy& policy = options.degrade;
  MonteCarloOptions mc = options.monte_carlo;
  // min_samples >= 1 keeps the estimator from answering DeadlineExceeded:
  // the whole point of this path is an estimate instead of that error.
  mc.min_samples = policy.min_samples == 0 ? 1 : policy.min_samples;
  mc.samples = std::max(policy.max_samples, mc.min_samples);
  mc.target_half_width = policy.target_half_width;
  mc.target_relative_error = policy.target_relative_error;
  if (options.cancel != nullptr) mc.cancel = options.cancel;
  // UCQ requests degrade by sampling the whole UNION per world (any-disjunct
  // hit), never by combining per-unit estimates through the signed plan.
  Result<MonteCarloEstimate> sampled =
      prepared.ucq != nullptr
          ? EstimateUcqProbabilityMonteCarlo(
                prepared.ucq->normalized.disjuncts, prepared.instance(),
                options.monte_carlo_seed, mc)
          : EstimateProbabilityMonteCarlo(prepared.query, prepared.instance(),
                                          options.monte_carlo_seed, mc);
  PHOM_ASSIGN_OR_RETURN(MonteCarloEstimate est, std::move(sampled));
  out.stats.primary = Algorithm::kFallback;
  out.stats.engine = "monte-carlo";
  out.stats.worlds = est.samples;
  out.probability_double = est.estimate;
  if (est.exact_zero) {
    // The lower-bound pre-pass PROVED p == 0: return the exact answer
    // un-degraded (out.probability defaults to zero in every backend).
    out.bound = ProbabilityBound{0.0, 0.0, /*certified=*/true};
    out.stats.duration = CancelToken::Clock::now() - start;
    return out;
  }
  if (options.numeric == NumericBackend::kExact) {
    // hits/samples is exactly representable; still only an estimate.
    out.probability = Rational(static_cast<int64_t>(est.hits),
                               static_cast<int64_t>(est.samples));
  }
  // Statistical 95% bracket — informative, not certified.
  out.bound =
      ProbabilityBound{std::max(0.0, est.estimate - est.half_width_95),
                       std::min(1.0, est.estimate + est.half_width_95),
                       /*certified=*/false};
  out.relative_error_95 =
      policy.target_relative_error > 0.0 ? est.relative_error_95 : 0.0;
  out.degrade.degraded = true;
  out.degrade.estimate = est.estimate;
  out.degrade.half_width_95 = est.half_width_95;
  out.degrade.lower_bound = est.lower_bound;
  out.degrade.relative_error_95 = out.relative_error_95;
  out.degrade.samples_used = est.samples;
  out.degrade.budget_spent = CancelToken::Clock::now() - start;
  out.stats.duration = out.degrade.budget_spent;
  return out;
}

Result<SolveResult> Solver::Solve(const DiGraph& query,
                                  const ProbGraph& instance) const {
  return SolvePrepared(PrepareProblem(query, instance), options_);
}

Result<SolveResult> Solver::SolveUcq(const Ucq& ucq,
                                     const ProbGraph& instance) const {
  return SolvePrepared(lifted::PrepareUcq(ucq, instance), options_);
}

Result<Rational> SolveProbability(const DiGraph& query,
                                  const ProbGraph& instance,
                                  const SolveOptions& options) {
  SolveOptions exact_options = options;
  // The Rational return type promises an exact answer; ignore a stray
  // double-backend setting rather than silently returning zero.
  exact_options.numeric = NumericBackend::kExact;
  Solver solver(std::move(exact_options));
  PHOM_ASSIGN_OR_RETURN(SolveResult result, solver.Solve(query, instance));
  return result.probability;
}

Result<double> SolveProbabilityDouble(const DiGraph& query,
                                      const ProbGraph& instance,
                                      SolveOptions options) {
  options.numeric = NumericBackend::kDouble;
  Solver solver(std::move(options));
  PHOM_ASSIGN_OR_RETURN(SolveResult result, solver.Solve(query, instance));
  return result.probability_double;
}

Result<BigInt> CountSatisfyingWorlds(const DiGraph& query,
                                     const DiGraph& instance,
                                     const SolveOptions& options) {
  std::vector<Rational> halves(instance.num_edges(), Rational::Half());
  ProbGraph h(instance, std::move(halves));
  // SolveProbability pins the exact backend, which counting requires.
  PHOM_ASSIGN_OR_RETURN(Rational prob, SolveProbability(query, h, options));
  Rational scaled = prob * Rational(BigInt::Pow2(instance.num_edges()),
                                    BigInt(1));
  PHOM_CHECK_MSG(scaled.den() == BigInt(1),
                 "world count must be integral with uniform 1/2 weights");
  return scaled.num();
}

}  // namespace phom
