#include "src/core/solver.h"

#include "src/core/algo_dwt.h"
#include "src/core/algo_polytree.h"
#include "src/core/algo_two_way_path.h"
#include "src/graph/graded.h"

namespace phom {

namespace {

/// Per-component dispatch for a connected query with >= 1 edge.
Result<Rational> SolveComponent(const DiGraph& query, bool query_is_1wp,
                                bool unlabeled, const ProbGraph& component,
                                const SolveOptions& options,
                                SolveStats* stats) {
  if (component.num_edges() == 0) return Rational::Zero();
  Classification cc = Classify(component.graph());

  if (cc.is_2wp) {
    TwoWayPathStats s;
    PHOM_ASSIGN_OR_RETURN(
        Rational p, SolveConnectedOn2wpComponent(query, component, &s));
    stats->hom_tests += s.hom_tests;
    stats->lineage_clauses += s.minimal_intervals;
    return p;
  }

  if (cc.is_dwt) {
    std::vector<LabelId> pattern;
    if (query_is_1wp) {
      pattern = OneWayPathLabels(query);
    } else if (unlabeled) {
      // Prop. 3.6 applied to this component.
      GradedAnalysis graded = AnalyzeGraded(query);
      if (!graded.is_graded) return Rational::Zero();
      pattern.assign(static_cast<size_t>(graded.difference_of_levels),
                     query.UsedLabels()[0]);
    } else {
      // Hard cell (Props. 4.4/4.5): exact fallback on this component.
      ++stats->fallback_components;
      FallbackStats fs;
      PHOM_ASSIGN_OR_RETURN(
          Rational p,
          SolveByWorldEnumeration(query, component, options.fallback, &fs));
      stats->worlds += fs.worlds;
      return p;
    }
    DwtStats s;
    Result<Rational> result =
        options.dwt_via_lineage
            ? SolvePathOnDwtForestViaLineage(pattern, component, nullptr, &s)
            : SolvePathOnDwtForest(pattern, component, &s);
    if (result.ok()) stats->match_ends += s.match_ends;
    return result;
  }

  if (cc.is_pt && unlabeled && query_is_1wp) {
    PolytreeStats s;
    PHOM_ASSIGN_OR_RETURN(
        Rational p,
        SolvePathProbabilityOnPolytree(
            static_cast<uint32_t>(query.num_edges()), component, &s));
    stats->circuit_gates += s.circuit_gates;
    return p;
  }

  // Hard cell (Props. 4.1 / 5.6 / 5.1): exact fallback on this component.
  ++stats->fallback_components;
  FallbackStats fs;
  PHOM_ASSIGN_OR_RETURN(
      Rational p,
      SolveByWorldEnumeration(query, component, options.fallback, &fs));
  stats->worlds += fs.worlds;
  return p;
}

}  // namespace

Result<SolveResult> Solver::Solve(const DiGraph& query,
                                  const ProbGraph& instance) const {
  PreparedProblem prepared = PrepareProblem(query, instance);
  SolveResult out{Rational::Zero(), prepared.analysis, {}};
  out.stats.primary = prepared.analysis.algorithm;

  if (prepared.immediate.has_value()) {
    out.probability = *prepared.immediate;
    return out;
  }

  const DiGraph& q = prepared.query;
  const ProbGraph& h = prepared.instance;
  bool unlabeled = prepared.analysis.effective_unlabeled;

  if (options_.force_algorithm.has_value()) {
    switch (*options_.force_algorithm) {
      case Algorithm::kFallback: {
        FallbackStats fs;
        PHOM_ASSIGN_OR_RETURN(
            out.probability,
            SolveByWorldEnumeration(q, h, options_.fallback, &fs));
        out.stats.worlds = fs.worlds;
        out.stats.primary = Algorithm::kFallback;
        return out;
      }
      case Algorithm::kUnlabeledPolytree: {
        if (!unlabeled) {
          return Status::NotSupported(
              "the automaton pipeline is for the unlabeled setting");
        }
        PolytreeStats s;
        PHOM_ASSIGN_OR_RETURN(out.probability,
                              SolveDwtQueryOnPolytreeForest(q, h, &s));
        out.stats.circuit_gates = s.circuit_gates;
        out.stats.primary = Algorithm::kUnlabeledPolytree;
        return out;
      }
      case Algorithm::kUnlabeledDwtInstance: {
        if (!unlabeled) {
          return Status::NotSupported("instance/query is labeled");
        }
        DwtStats s;
        PHOM_ASSIGN_OR_RETURN(out.probability,
                              SolveUnlabeledOnDwtForest(q, h, &s));
        out.stats.match_ends = s.match_ends;
        out.stats.primary = Algorithm::kUnlabeledDwtInstance;
        return out;
      }
      default:
        break;  // the remaining algorithms are component-level; fall through
    }
  }

  Classification qc = Classify(q);
  if (!qc.connected) {
    // Disconnected query outside the collapsible cases: #P-hard cell
    // (Props. 3.3/3.4); solve exactly within limits.
    FallbackStats fs;
    PHOM_ASSIGN_OR_RETURN(
        out.probability, SolveByWorldEnumeration(q, h, options_.fallback, &fs));
    out.stats.worlds = fs.worlds;
    return out;
  }

  // Connected query: per-component algorithms + Lemma 3.7.
  Rational none = Rational::One();
  bool query_is_1wp = qc.is_1wp;
  for (const ComponentView& comp : SplitComponents(h)) {
    ++out.stats.components;
    PHOM_ASSIGN_OR_RETURN(
        Rational p, SolveComponent(q, query_is_1wp, unlabeled, comp.graph,
                                   options_, &out.stats));
    none *= p.Complement();
  }
  out.probability = none.Complement();
  return out;
}

Result<Rational> SolveProbability(const DiGraph& query,
                                  const ProbGraph& instance,
                                  const SolveOptions& options) {
  Solver solver(options);
  PHOM_ASSIGN_OR_RETURN(SolveResult result, solver.Solve(query, instance));
  return result.probability;
}

Result<BigInt> CountSatisfyingWorlds(const DiGraph& query,
                                     const DiGraph& instance,
                                     const SolveOptions& options) {
  std::vector<Rational> halves(instance.num_edges(), Rational::Half());
  ProbGraph h(instance, std::move(halves));
  PHOM_ASSIGN_OR_RETURN(Rational prob, SolveProbability(query, h, options));
  Rational scaled = prob * Rational(BigInt::Pow2(instance.num_edges()),
                                    BigInt(1));
  PHOM_CHECK_MSG(scaled.den() == BigInt(1),
                 "world count must be integral with uniform 1/2 weights");
  return scaled.num();
}

}  // namespace phom
