#include "src/core/solver.h"

#include "src/core/engine.h"

namespace phom {

Status CancelToken::Check() const {
  if (cancelled()) {
    return Status::Cancelled("solve cancelled by caller");
  }
  if (expired()) {
    return Status::DeadlineExceeded("solve deadline exceeded");
  }
  return Status::OK();
}

SolveOptions ApplyOverrides(SolveOptions base, const SolveOverrides& overrides) {
  if (overrides.numeric.has_value()) base.numeric = *overrides.numeric;
  if (overrides.force_engine.has_value()) {
    base.force_engine = *overrides.force_engine;
  }
  if (overrides.monte_carlo_seed.has_value()) {
    base.monte_carlo_seed = *overrides.monte_carlo_seed;
  }
  return base;
}

Result<const Engine*> SelectEngineForProblem(const EngineRegistry& registry,
                                             const PreparedProblem& prepared,
                                             const SolveOptions& options,
                                             bool* forced) {
  *forced = false;
  const Engine* engine = nullptr;
  if (!options.force_engine.empty()) {
    // Name resolution errors even when the answer is immediate: a typo'd
    // engine name must not be masked by a trivial first input.
    engine = registry.FindByName(options.force_engine);
    if (engine == nullptr) {
      return Status::Invalid("no engine named '" + options.force_engine +
                             "' is registered");
    }
    *forced = true;
  }

  // Immediate answers are decided during preparation; no engine runs (and a
  // forced-but-inapplicable engine is not an error on them).
  if (prepared.immediate.has_value()) return static_cast<const Engine*>(nullptr);

  if (!*forced) {
    if (options.force_algorithm.has_value()) {
      engine = registry.FindByAlgorithm(*options.force_algorithm);
      if (engine == nullptr) {
        return Status::Invalid(
            std::string("no engine registered for algorithm ") +
            ToString(*options.force_algorithm));
      }
      *forced = true;
    } else {
      engine = registry.SelectAuto(prepared.analysis);
    }
  }
  PHOM_CHECK_MSG(engine != nullptr,
                 "engine registry has no engine for " + prepared.analysis.cell);
  if (*forced && !engine->Applies(prepared.analysis)) {
    return Status::NotSupported(std::string(engine->name()) +
                                " does not apply to " +
                                prepared.analysis.cell);
  }
  return engine;
}

Result<SolveResult> SolvePrepared(const PreparedProblem& prepared,
                                  const SolveOptions& options) {
  SolveResult out;
  out.analysis = prepared.analysis;
  out.numeric = options.numeric;
  out.stats.primary = prepared.analysis.algorithm;

  bool forced = false;
  PHOM_ASSIGN_OR_RETURN(
      const Engine* engine,
      SelectEngineForProblem(EngineRegistry::Global(), prepared, options,
                             &forced));

  if (engine == nullptr) {  // immediate answer
    if (options.numeric == NumericBackend::kExact) {
      out.probability = *prepared.immediate;
    }
    out.probability_double = prepared.immediate->ToDouble();
    return out;
  }

  if (forced) out.stats.primary = engine->algorithm();
  out.stats.engine = std::string(engine->name());

  PHOM_ASSIGN_OR_RETURN(EngineAnswer answer,
                        engine->Solve(prepared, options, &out.stats));
  out.probability = std::move(answer.exact);
  out.probability_double = answer.approx;
  out.numeric = answer.backend;  // what the engine actually computed in
  return out;
}

Result<SolveResult> Solver::Solve(const DiGraph& query,
                                  const ProbGraph& instance) const {
  return SolvePrepared(PrepareProblem(query, instance), options_);
}

Result<Rational> SolveProbability(const DiGraph& query,
                                  const ProbGraph& instance,
                                  const SolveOptions& options) {
  SolveOptions exact_options = options;
  // The Rational return type promises an exact answer; ignore a stray
  // double-backend setting rather than silently returning zero.
  exact_options.numeric = NumericBackend::kExact;
  Solver solver(std::move(exact_options));
  PHOM_ASSIGN_OR_RETURN(SolveResult result, solver.Solve(query, instance));
  return result.probability;
}

Result<double> SolveProbabilityDouble(const DiGraph& query,
                                      const ProbGraph& instance,
                                      SolveOptions options) {
  options.numeric = NumericBackend::kDouble;
  Solver solver(std::move(options));
  PHOM_ASSIGN_OR_RETURN(SolveResult result, solver.Solve(query, instance));
  return result.probability_double;
}

Result<BigInt> CountSatisfyingWorlds(const DiGraph& query,
                                     const DiGraph& instance,
                                     const SolveOptions& options) {
  std::vector<Rational> halves(instance.num_edges(), Rational::Half());
  ProbGraph h(instance, std::move(halves));
  // SolveProbability pins the exact backend, which counting requires.
  PHOM_ASSIGN_OR_RETURN(Rational prob, SolveProbability(query, h, options));
  Rational scaled = prob * Rational(BigInt::Pow2(instance.num_edges()),
                                    BigInt(1));
  PHOM_CHECK_MSG(scaled.den() == BigInt(1),
                 "world count must be integral with uniform 1/2 weights");
  return scaled.num();
}

}  // namespace phom
