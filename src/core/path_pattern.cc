#include "src/core/path_pattern.h"

#include <algorithm>
#include <map>
#include <queue>
#include <sstream>
#include <unordered_map>

namespace phom {

std::string PathPattern::ToString() const {
  std::ostringstream os;
  for (const PatternStep& s : steps) {
    os << (s.descendant ? "//" : "/") << "L" << s.label;
  }
  return os.str();
}

namespace {

/// NFA over pattern positions 0..m: position i means "steps 1..i matched".
/// Reading a present edge with label l from position i:
///   * advance to i+1 when steps[i].label == l;
///   * stay at i when steps[i].descendant (the edge is part of the gap).
/// Suffix-run semantics inject position 0 before every transition (a match
/// may start at any edge of the present run). Subsets are bitmasks
/// (patterns are limited to 63 steps), determinized lazily.
class SuffixRunDfa {
 public:
  SuffixRunDfa(const PathPattern& pattern, size_t max_states)
      : pattern_(pattern), max_states_(max_states) {
    PHOM_CHECK_MSG(pattern.steps.size() <= 63,
                   "patterns limited to 63 steps");
    empty_state_ = Intern(0);  // the reset state (no active run)
  }

  uint32_t empty_state() const { return empty_state_; }
  size_t num_states() const { return subsets_.size(); }
  bool exhausted() const { return exhausted_; }

  bool Accepting(uint32_t state) const {
    uint64_t final_bit = uint64_t{1} << pattern_.steps.size();
    return (subsets_[state] & final_bit) != 0;
  }

  /// δ(S ∪ {0}, label).
  uint32_t Step(uint32_t state, LabelId label) {
    auto it = transitions_.find({state, label});
    if (it != transitions_.end()) return it->second;
    uint64_t set = subsets_[state] | 1;  // inject position 0
    uint64_t next = 0;
    size_t m = pattern_.steps.size();
    for (size_t i = 0; i < m; ++i) {
      if (!(set >> i & 1)) continue;
      const PatternStep& step = pattern_.steps[i];
      if (step.label == label) next |= uint64_t{1} << (i + 1);
      if (step.descendant) next |= uint64_t{1} << i;
    }
    // The final position persists: once matched, the run stays accepting
    // (acceptance is checked at every vertex anyway; keeping the bit makes
    // Accepting monotone along runs, harmless and simpler).
    if (set >> m & 1) next |= uint64_t{1} << m;
    uint32_t id = Intern(next);
    transitions_.emplace(std::make_pair(state, label), id);
    return id;
  }

 private:
  uint32_t Intern(uint64_t subset) {
    auto it = ids_.find(subset);
    if (it != ids_.end()) return it->second;
    if (subsets_.size() >= max_states_) {
      exhausted_ = true;
      return empty_state_;
    }
    uint32_t id = static_cast<uint32_t>(subsets_.size());
    subsets_.push_back(subset);
    ids_.emplace(subset, id);
    return id;
  }

  const PathPattern& pattern_;
  size_t max_states_;
  bool exhausted_ = false;
  uint32_t empty_state_ = 0;
  std::vector<uint64_t> subsets_;
  std::unordered_map<uint64_t, uint32_t> ids_;
  std::map<std::pair<uint32_t, LabelId>, uint32_t> transitions_;
};

struct Forest {
  std::vector<VertexId> bfs_order;
  std::vector<int64_t> parent;
};

Result<Forest> BuildDownwardForest(const DiGraph& g) {
  Forest f;
  size_t n = g.num_vertices();
  f.parent.assign(n, -1);
  f.bfs_order.reserve(n);
  std::vector<bool> seen(n, false);
  std::queue<VertexId> queue;
  for (VertexId v = 0; v < n; ++v) {
    if (g.InDegree(v) == 0) {
      queue.push(v);
      seen[v] = true;
    }
  }
  while (!queue.empty()) {
    VertexId v = queue.front();
    queue.pop();
    f.bfs_order.push_back(v);
    for (EdgeId e : g.OutEdges(v)) {
      VertexId w = g.edge(e).dst;
      if (seen[w] || g.InDegree(w) != 1) {
        return Status::Invalid("instance is not a downward forest");
      }
      seen[w] = true;
      f.parent[w] = v;
      queue.push(w);
    }
  }
  if (f.bfs_order.size() != n) {
    return Status::Invalid("instance is not a downward forest (cycle)");
  }
  return f;
}

}  // namespace

Result<Rational> SolvePathPatternOnDwtForest(const PathPattern& pattern,
                                             const ProbGraph& instance,
                                             const PathPatternOptions& options,
                                             PathPatternStats* stats) {
  if (pattern.steps.empty()) return Rational::One();
  const DiGraph& g = instance.graph();
  PHOM_ASSIGN_OR_RETURN(Forest forest, BuildDownwardForest(g));
  SuffixRunDfa dfa(pattern, options.max_dfa_states);

  // Top-down: reachable DFA states per vertex (the reset state is always
  // reachable: the incoming edge may be absent).
  size_t n = g.num_vertices();
  std::vector<std::vector<uint32_t>> reach(n);
  for (VertexId v : forest.bfs_order) {
    if (forest.parent[v] < 0) reach[v] = {dfa.empty_state()};
    for (EdgeId e : g.OutEdges(v)) {
      VertexId c = g.edge(e).dst;
      std::vector<uint32_t> states;
      states.push_back(dfa.empty_state());
      for (uint32_t s : reach[v]) {
        states.push_back(dfa.Step(s, g.edge(e).label));
      }
      std::sort(states.begin(), states.end());
      states.erase(std::unique(states.begin(), states.end()), states.end());
      reach[c] = std::move(states);
    }
  }
  if (dfa.exhausted()) {
    return Status::ResourceExhausted(
        "pattern determinization exceeded max_dfa_states");
  }

  // Bottom-up DP: f[v][s] = Pr(no match in v's subtree | run state s at v).
  std::vector<std::unordered_map<uint32_t, Rational>> f(n);
  for (size_t idx = forest.bfs_order.size(); idx-- > 0;) {
    VertexId v = forest.bfs_order[idx];
    for (uint32_t s : reach[v]) {
      if (stats != nullptr) ++stats->table_cells;
      if (dfa.Accepting(s)) {
        f[v].emplace(s, Rational::Zero());
        continue;
      }
      Rational value = Rational::One();
      for (EdgeId e : g.OutEdges(v)) {
        VertexId c = g.edge(e).dst;
        const Rational& p = instance.prob(e);
        uint32_t s_present = dfa.Step(s, g.edge(e).label);
        value *= p * f[c].at(s_present) +
                 p.Complement() * f[c].at(dfa.empty_state());
      }
      f[v].emplace(s, std::move(value));
    }
    for (EdgeId e : g.OutEdges(v)) {
      f[g.edge(e).dst].clear();
    }
  }
  if (dfa.exhausted()) {
    return Status::ResourceExhausted(
        "pattern determinization exceeded max_dfa_states");
  }
  if (stats != nullptr) stats->dfa_states = dfa.num_states();

  Rational no_match = Rational::One();
  for (VertexId v = 0; v < n; ++v) {
    if (forest.parent[v] < 0) no_match *= f[v].at(dfa.empty_state());
  }
  return no_match.Complement();
}

bool WorldHasPatternMatch(const PathPattern& pattern, const DiGraph& forest,
                          const std::vector<bool>& kept) {
  if (pattern.steps.empty()) return true;
  SuffixRunDfa dfa(pattern, 1u << 20);
  // DFS from every root over kept edges, carrying the run state.
  std::vector<std::pair<VertexId, uint32_t>> stack;
  for (VertexId v = 0; v < forest.num_vertices(); ++v) {
    if (forest.InDegree(v) == 0) stack.emplace_back(v, dfa.empty_state());
  }
  while (!stack.empty()) {
    auto [v, s] = stack.back();
    stack.pop_back();
    if (dfa.Accepting(s)) return true;
    for (EdgeId e : forest.OutEdges(v)) {
      VertexId c = forest.edge(e).dst;
      uint32_t next =
          kept[e] ? dfa.Step(s, forest.edge(e).label) : dfa.empty_state();
      stack.emplace_back(c, next);
    }
  }
  return false;
}

}  // namespace phom
