#include "src/core/algo_two_way_path.h"

#include "src/graph/classify.h"
#include "src/hom/arc_consistency.h"
#include "src/lineage/interval_dp.h"

namespace phom {

template <class Num>
Result<Num> SolveConnectedOn2wpComponentT(const DiGraph& query,
                                          const ProbGraph& component,
                                          TwoWayPathStats* stats,
                                          MonotoneDnf* lineage_out,
                                          MonotonicArena* scratch_arena) {
  using Ops = NumericOps<Num>;
  const DiGraph& g = component.graph();
  if (!IsTwoWayPath(g)) {
    return Status::Invalid("SolveConnectedOn2wpComponent requires a 2WP");
  }
  if (!IsConnected(query) || query.num_edges() == 0) {
    return Status::Invalid("query must be connected with at least one edge");
  }
  if (lineage_out != nullptr) {
    *lineage_out = MonotoneDnf(static_cast<uint32_t>(g.num_edges()));
  }
  std::vector<VertexId> order = TwoWayPathOrder(g);
  size_t length = g.num_edges();
  if (length == 0) return Ops::Zero();

  // Path edges in order: edge k joins order[k] and order[k+1].
  std::vector<EdgeId> path_edges(length);
  std::vector<Num> edge_probs(length, Ops::Zero());
  for (size_t k = 0; k < length; ++k) {
    std::optional<EdgeId> e = g.FindEdge(order[k], order[k + 1]);
    if (!e.has_value()) e = g.FindEdge(order[k + 1], order[k]);
    PHOM_CHECK(e.has_value());
    path_edges[k] = *e;
    edge_probs[k] = Ops::From(component.prob(*e));
  }

  // Two-pointer sweep for the minimal homomorphic vertex windows
  // [a .. b] (b > a); r(a) is non-decreasing in a. The sweep performs O(L)
  // homomorphism tests against the SAME instance: one shared XPropScratch
  // (backed by the caller's per-task arena when provided) serves them all,
  // and the window domain is a span of `order` — no per-test allocations.
  MonotonicArena local_arena;
  XPropScratch scratch(scratch_arena != nullptr ? scratch_arena
                                                : &local_arena);
  auto window_has_hom = [&](size_t a, size_t b) {
    if (stats != nullptr) ++stats->hom_tests;
    return XPropertyHomomorphism(query, g, order, order.data() + a, b - a + 1,
                                 &scratch)
        .has_hom;
  };

  std::vector<EdgeInterval> intervals;
  size_t b = 1;
  for (size_t a = 0; a + 1 <= length; ++a) {
    if (b < a + 1) b = a + 1;
    while (b <= length && !window_has_hom(a, b)) ++b;
    if (b > length) break;  // no window starting at or after a can work
    intervals.emplace_back(static_cast<uint32_t>(a),
                           static_cast<uint32_t>(b - 1));
  }
  if (stats != nullptr) stats->minimal_intervals = intervals.size();
  if (lineage_out != nullptr) {
    for (const EdgeInterval& iv : intervals) {
      std::vector<uint32_t> clause;
      for (uint32_t k = iv.first; k <= iv.second; ++k) {
        clause.push_back(path_edges[k]);
      }
      lineage_out->AddClause(std::move(clause));
    }
  }
  if (intervals.empty()) return Ops::Zero();
  return IntervalDnfProbabilityT<Num>(edge_probs, std::move(intervals));
}

template Result<Rational> SolveConnectedOn2wpComponentT<Rational>(
    const DiGraph&, const ProbGraph&, TwoWayPathStats*, MonotoneDnf*,
    MonotonicArena*);
template Result<double> SolveConnectedOn2wpComponentT<double>(
    const DiGraph&, const ProbGraph&, TwoWayPathStats*, MonotoneDnf*,
    MonotonicArena*);
template Result<IntervalDouble>
SolveConnectedOn2wpComponentT<IntervalDouble>(const DiGraph&, const ProbGraph&,
                                              TwoWayPathStats*, MonotoneDnf*,
                                              MonotonicArena*);

}  // namespace phom
