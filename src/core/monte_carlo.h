#pragma once

#include "src/graph/prob_graph.h"
#include "src/hom/backtrack.h"
#include "src/util/rng.h"

/// \file monte_carlo.h
/// Monte Carlo estimation of Pr(G ⇝ H): the standard practical fallback for
/// #P-hard cells in probabilistic database systems (and the FPRAS route of
/// Amarilli–van Bremen–Gaspard–Meel 2023 for exactly these workloads).
/// Samples possible worlds independently and returns the match frequency
/// with a normal-approximation confidence half-width. Used as a cross-check,
/// as a baseline in the ablation benchmarks, and — via the serve layer's
/// DegradePolicy (solver.h) — as the budgeted estimator a deadline-
/// threatened request degrades to. NOT exact, unlike everything else in
/// this library.
///
/// Budgeting: sampling proceeds in chunks of check_interval samples; at each
/// chunk boundary the estimator consults `cancel` (when given) and the
/// target-ε stop rule. Given the same (query, instance, seed) and the same
/// stopping sample count, the estimate is bit-deterministic — the sample
/// stream is a pure function of the seed, consumed in order.

namespace phom {

struct MonteCarloOptions {
  /// Hard cap on samples (the whole budget when nothing stops earlier).
  uint64_t samples = 100'000;
  /// Degraded-mode floor: when > 0, an expired DEADLINE is ignored until
  /// this many samples are in (bounded overrun — the price of an estimate
  /// instead of an error), after which it truncates sampling and the
  /// partial estimate is returned with deadline_truncated set. When 0, an
  /// expired deadline aborts with DeadlineExceeded like any other kernel.
  /// An explicit Cancel() always aborts with Cancelled, regardless.
  uint64_t min_samples = 0;
  /// Target ε: stop once the 95% confidence half-width is <= this (checked
  /// at chunk boundaries after max(min_samples, 1) samples; 0 = disabled).
  /// Only fires on an INTERIOR hit count (0 < hits < samples): at the
  /// boundaries the normal approximation degenerates to half-width 0, so an
  /// all-miss/all-hit prefix keeps sampling instead of claiming a met ε.
  double target_half_width = 0.0;
  /// Samples between cancel/target checks (0 behaves as 1).
  uint64_t check_interval = 256;
  /// Cooperative interruption (non-owning; null = never interrupted).
  /// Dispatch threads SolveOptions::cancel in here automatically.
  const CancelToken* cancel = nullptr;
  BacktrackOptions backtrack;
};

struct MonteCarloEstimate {
  double estimate = 0.0;
  /// 95% confidence half-width (1.96 · sqrt(p(1-p)/n)).
  double half_width_95 = 0.0;
  /// Samples actually drawn (== options.samples unless a stop rule fired).
  uint64_t samples = 0;
  uint64_t hits = 0;
  /// Sampling was truncated by an expired deadline after min_samples.
  bool deadline_truncated = false;
  /// Sampling stopped early because target_half_width was reached.
  bool converged = false;
};

/// Samples worlds of `instance` with the given seed and tests query ⇝ world.
Result<MonteCarloEstimate> EstimateProbabilityMonteCarlo(
    const DiGraph& query, const ProbGraph& instance, uint64_t seed,
    const MonteCarloOptions& options = {});

}  // namespace phom
