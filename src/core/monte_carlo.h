#pragma once

#include "src/graph/prob_graph.h"
#include "src/hom/backtrack.h"
#include "src/util/rng.h"

/// \file monte_carlo.h
/// Monte Carlo estimation of Pr(G ⇝ H): the standard practical fallback for
/// #P-hard cells in probabilistic database systems. Samples possible worlds
/// independently and returns the match frequency with a normal-approximation
/// confidence half-width. Used as a cross-check and as a baseline in the
/// ablation benchmarks; NOT exact, unlike everything else in this library.

namespace phom {

struct MonteCarloOptions {
  uint64_t samples = 100'000;
  BacktrackOptions backtrack;
};

struct MonteCarloEstimate {
  double estimate = 0.0;
  /// 95% confidence half-width (1.96 · sqrt(p(1-p)/n)).
  double half_width_95 = 0.0;
  uint64_t samples = 0;
  uint64_t hits = 0;
};

/// Samples worlds of `instance` with the given seed and tests query ⇝ world.
Result<MonteCarloEstimate> EstimateProbabilityMonteCarlo(
    const DiGraph& query, const ProbGraph& instance, uint64_t seed,
    const MonteCarloOptions& options = {});

}  // namespace phom
