#pragma once

#include "src/graph/prob_graph.h"
#include "src/hom/backtrack.h"
#include "src/util/rng.h"

/// \file monte_carlo.h
/// Monte Carlo estimation of Pr(G ⇝ H): the standard practical fallback for
/// #P-hard cells in probabilistic database systems (and the FPRAS route of
/// Amarilli–van Bremen–Gaspard–Meel 2023 for exactly these workloads).
/// Samples possible worlds independently and returns the match frequency
/// with a normal-approximation confidence half-width. Used as a cross-check,
/// as a baseline in the ablation benchmarks, and — via the serve layer's
/// DegradePolicy (solver.h) — as the budgeted estimator a deadline-
/// threatened request degrades to. NOT exact, unlike everything else in
/// this library.
///
/// Budgeting: sampling proceeds in chunks of check_interval samples; at each
/// chunk boundary the estimator consults `cancel` (when given) and the
/// target-ε stop rule. Given the same (query, instance, seed) and the same
/// stopping sample count, the estimate is bit-deterministic — the sample
/// stream is a pure function of the seed, consumed in order.

namespace phom {

struct MonteCarloOptions {
  /// Hard cap on samples (the whole budget when nothing stops earlier).
  uint64_t samples = 100'000;
  /// Degraded-mode floor: when > 0, an expired DEADLINE is ignored until
  /// this many samples are in (bounded overrun — the price of an estimate
  /// instead of an error), after which it truncates sampling and the
  /// partial estimate is returned with deadline_truncated set. When 0, an
  /// expired deadline aborts with DeadlineExceeded like any other kernel.
  /// An explicit Cancel() always aborts with Cancelled, regardless.
  uint64_t min_samples = 0;
  /// Target ε: stop once the 95% confidence half-width is <= this (checked
  /// at chunk boundaries after max(min_samples, 1) samples; 0 = disabled).
  /// Only fires on an INTERIOR hit count (0 < hits < samples): at the
  /// boundaries the normal approximation degenerates to half-width 0, so an
  /// all-miss/all-hit prefix keeps sampling instead of claiming a met ε.
  double target_half_width = 0.0;
  /// Target RELATIVE 95% error (the multiplicative guarantee of the FPRAS
  /// in Amarilli–van Bremen–Gaspard–Meel 2023; 0 = disabled). When set, a
  /// deterministic pre-pass lower-bounds p by the best single-match product
  /// of the lineage: every homomorphism match M forces only the edges of
  /// its image, so p >= Π_{e ∈ image(M)} π(e) for EACH match, and the max
  /// over enumerated matches is a certified lower bound `lb`. Sampling then
  /// stops (same interior-hit guard as target_half_width) once
  /// half_width_95 <= target_relative_error · lb. Two free wins fall out:
  /// zero matches into the positive-probability subgraph CERTIFIES p == 0
  /// (the estimator returns the exact answer without sampling), and the
  /// final estimate always reports its certified relative_error_95.
  double target_relative_error = 0.0;
  /// Cap on matches the lower-bound pre-pass enumerates (0 behaves as 1).
  /// A truncated enumeration is still sound — the max over a subset of
  /// matches lower-bounds p — it just certifies a smaller lb.
  uint64_t lower_bound_match_cap = 64;
  /// Samples between cancel/target checks (0 behaves as 1).
  uint64_t check_interval = 256;
  /// Cooperative interruption (non-owning; null = never interrupted).
  /// Dispatch threads SolveOptions::cancel in here automatically.
  const CancelToken* cancel = nullptr;
  BacktrackOptions backtrack;
};

struct MonteCarloEstimate {
  double estimate = 0.0;
  /// 95% confidence half-width (1.96 · sqrt(p(1-p)/n)).
  double half_width_95 = 0.0;
  /// Certified deterministic lower bound on p from the lineage pre-pass
  /// (only computed when target_relative_error > 0; 0 otherwise).
  double lower_bound = 0.0;
  /// Certified relative 95% error: half_width_95 / lower_bound when
  /// lower_bound > 0; 0 on the exact-zero certificate; +infinity when no
  /// positive lower bound is available (relative targeting off, or no
  /// positive-probability match was found in the capped enumeration).
  double relative_error_95 = 0.0;
  /// Samples actually drawn (== options.samples unless a stop rule fired;
  /// >= 1 except on the exact-zero certificate, which draws none).
  uint64_t samples = 0;
  uint64_t hits = 0;
  /// The lower-bound pre-pass PROVED p == 0 (complete match enumeration of
  /// the positive-probability subgraph came up empty): estimate 0 is the
  /// exact answer, not an estimate, and samples == 0.
  bool exact_zero = false;
  /// Sampling was truncated by an expired deadline after min_samples.
  bool deadline_truncated = false;
  /// Sampling stopped early because a target (absolute target_half_width or
  /// relative target_relative_error) was certifiably reached — or because
  /// exact_zero made sampling pointless.
  bool converged = false;
};

/// The 95% half-width backing the CERTIFIED relative bound: the normal
/// approximation on interior counts, the rule-of-three bound 3/n at the
/// boundary counts where the normal approximation degenerates to a false 0,
/// and the vacuous-but-sound bound 1 at samples == 0 (p ∈ [0, 1], so any
/// estimate in-range is within 1 of the truth — and 3/0 would be inf/NaN,
/// which poisoned the zero-remaining-budget degrade path downstream).
double CertifiedHalfWidth95(uint64_t hits, uint64_t samples);

/// Samples worlds of `instance` with the given seed and tests query ⇝ world.
Result<MonteCarloEstimate> EstimateProbabilityMonteCarlo(
    const DiGraph& query, const ProbGraph& instance, uint64_t seed,
    const MonteCarloOptions& options = {});

/// The UCQ variant: a sampled world is a hit when ANY disjunct has a
/// homomorphism into it (disjuncts tested in order, short-circuiting).
/// Whole-union sampling — never a signed combination of per-disjunct
/// estimates, whose variance would be far worse. The lineage lower bound is
/// the max over disjuncts (each alone lower-bounds the union), and the
/// exact-zero certificate requires EVERY disjunct's enumeration to come up
/// empty. With one disjunct this is bit-identical to
/// EstimateProbabilityMonteCarlo (same sample stream, same stop rules).
Result<MonteCarloEstimate> EstimateUcqProbabilityMonteCarlo(
    const std::vector<DiGraph>& disjuncts, const ProbGraph& instance,
    uint64_t seed, const MonteCarloOptions& options = {});

}  // namespace phom
