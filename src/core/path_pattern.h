#pragma once

#include <string>
#include <vector>

#include "src/graph/prob_graph.h"
#include "src/util/rational.h"
#include "src/util/result.h"

/// \file path_pattern.h
/// An implemented slice of the paper's future work (§6): "allow a descendant
/// axis in the spirit of XML query languages". A PathPattern is a downward
/// path query whose steps use either the child axis (the next edge must
/// carry the label) or the descendant axis (any number of intermediate
/// edges, then the label) — e.g. catalog//price. On ⊔DWT instances the
/// probability remains computable by the Prop. 4.10 run-length DP with the
/// KMP state generalized to a lazily-determinized automaton over suffixes of
/// the current present-run:
///
///   a match is a downward path of PRESENT edges whose label word lies in
///   p_1 Σ*? p_2 Σ*? ... (Σ* exactly at descendant steps),
///
/// so the per-vertex state is the subset of pattern positions reachable by
/// some suffix of the run ending there. Data complexity stays polynomial;
/// the state count can grow exponentially in the PATTERN in the worst case
/// (this is why the paper lists the extension as future work — combined
/// tractability is open), so the solver reports ResourceExhausted past a
/// configurable state budget.

namespace phom {

struct PatternStep {
  LabelId label;
  /// false: child axis (edge directly below); true: descendant axis (any
  /// downward present path, then the labeled edge).
  bool descendant = false;
};

struct PathPattern {
  std::vector<PatternStep> steps;

  /// "R/S//T" given label names resolved by the caller — helper for tests
  /// and examples: child steps from `labels`, descendant flags aligned.
  static PathPattern Of(std::vector<PatternStep> steps) {
    return PathPattern{std::move(steps)};
  }

  std::string ToString() const;
};

struct PathPatternStats {
  size_t dfa_states = 0;   ///< lazily materialized subset states
  size_t table_cells = 0;  ///< (vertex, state) pairs evaluated
};

struct PathPatternOptions {
  /// Abort when the lazy determinization exceeds this many subset states.
  size_t max_dfa_states = 100'000;
};

/// Pr(some possible world contains a match of `pattern`) on a ⊔DWT
/// instance. With all-child-axis patterns this coincides with
/// SolvePathOnDwtForest.
Result<Rational> SolvePathPatternOnDwtForest(
    const PathPattern& pattern, const ProbGraph& instance,
    const PathPatternOptions& options = {},
    PathPatternStats* stats = nullptr);

/// Oracle for tests: does the FIXED world (kept edges) contain a downward
/// path of kept edges whose label word matches the pattern?
bool WorldHasPatternMatch(const PathPattern& pattern, const DiGraph& forest,
                          const std::vector<bool>& kept);

}  // namespace phom
