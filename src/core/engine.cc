#include "src/core/engine.h"

namespace phom {

EngineRegistry& EngineRegistry::Global() {
  static EngineRegistry* registry = [] {
    auto* r = new EngineRegistry();
    RegisterDefaultEngines(r);
    return r;
  }();
  return *registry;
}

void EngineRegistry::Register(std::unique_ptr<Engine> engine) {
  PHOM_CHECK_MSG(engine != nullptr, "cannot register a null engine");
  PHOM_CHECK_MSG(FindByName(engine->name()) == nullptr,
                 "an engine named '" + std::string(engine->name()) +
                     "' is already registered");
  engines_.push_back(std::move(engine));
}

const Engine* EngineRegistry::FindByName(std::string_view name) const {
  for (const auto& engine : engines_) {
    if (engine->name() == name) return engine.get();
  }
  return nullptr;
}

const Engine* EngineRegistry::FindByAlgorithm(Algorithm algorithm) const {
  for (const auto& engine : engines_) {
    if (engine->algorithm() == algorithm) return engine.get();
  }
  return nullptr;
}

const Engine* EngineRegistry::SelectAuto(const CaseAnalysis& analysis) const {
  for (const auto& engine : engines_) {
    if (engine->exact() && engine->AutoMatch(analysis)) return engine.get();
  }
  return nullptr;
}

std::vector<const Engine*> EngineRegistry::engines() const {
  std::vector<const Engine*> out;
  out.reserve(engines_.size());
  for (const auto& engine : engines_) out.push_back(engine.get());
  return out;
}

}  // namespace phom
