#include "src/core/engine.h"

#include <mutex>

namespace phom {

namespace {

/// Lock-free scan shared by Register (under the exclusive lock) and
/// FindByName (under a shared lock); callers hold mu_.
const Engine* FindByNameUnlocked(
    const std::vector<std::unique_ptr<Engine>>& engines,
    std::string_view name) {
  for (const auto& engine : engines) {
    if (engine->name() == name) return engine.get();
  }
  return nullptr;
}

}  // namespace

EngineRegistry& EngineRegistry::Global() {
  // Static-local initialization is the std::call_once of this pattern: the
  // C++ runtime guarantees exactly one concurrent first caller constructs
  // and populates the registry; everyone else blocks until it is ready.
  static EngineRegistry* registry = [] {
    auto* r = new EngineRegistry();
    RegisterDefaultEngines(r);
    return r;
  }();
  return *registry;
}

void EngineRegistry::Register(std::unique_ptr<Engine> engine) {
  PHOM_CHECK_MSG(engine != nullptr, "cannot register a null engine");
  std::unique_lock lock(mu_);
  PHOM_CHECK_MSG(FindByNameUnlocked(engines_, engine->name()) == nullptr,
                 "an engine named '" + std::string(engine->name()) +
                     "' is already registered");
  engines_.push_back(std::move(engine));
}

const Engine* EngineRegistry::FindByName(std::string_view name) const {
  std::shared_lock lock(mu_);
  return FindByNameUnlocked(engines_, name);
}

const Engine* EngineRegistry::FindByAlgorithm(Algorithm algorithm) const {
  std::shared_lock lock(mu_);
  for (const auto& engine : engines_) {
    if (engine->algorithm() == algorithm) return engine.get();
  }
  return nullptr;
}

const Engine* EngineRegistry::SelectAuto(const CaseAnalysis& analysis) const {
  std::shared_lock lock(mu_);
  for (const auto& engine : engines_) {
    if (engine->exact() && engine->AutoMatch(analysis)) return engine.get();
  }
  return nullptr;
}

std::vector<const Engine*> EngineRegistry::engines() const {
  std::shared_lock lock(mu_);
  std::vector<const Engine*> out;
  out.reserve(engines_.size());
  for (const auto& engine : engines_) out.push_back(engine.get());
  return out;
}

}  // namespace phom
