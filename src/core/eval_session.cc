#include "src/core/eval_session.h"

namespace phom {

Result<SolveResult> EvalSession::Solve(const DiGraph& query) {
  ++stats_.queries;
  PreparedProblem prepared = PrepareProblemWithProvider(
      query, instance_.num_vertices(),
      [this](const std::vector<LabelId>& labels) {
        auto it = contexts_.find(labels);
        if (it != contexts_.end()) {
          ++stats_.context_cache_hits;
          return it->second;
        }
        ++stats_.instance_preparations;
        std::shared_ptr<const InstanceContext> ctx =
            BuildInstanceContext(instance_, labels);
        contexts_.emplace(labels, ctx);
        return ctx;
      });
  return SolvePrepared(prepared, options_);
}

std::vector<Result<SolveResult>> EvalSession::SolveBatch(
    const std::vector<DiGraph>& queries) {
  std::vector<Result<SolveResult>> out;
  out.reserve(queries.size());
  for (const DiGraph& query : queries) out.push_back(Solve(query));
  return out;
}

}  // namespace phom
