#include "src/core/eval_session.h"

#include <algorithm>

#include "src/lifted/lift.h"

namespace phom {

std::vector<LabelId> NormalizeLabelKey(std::vector<LabelId> labels) {
  std::sort(labels.begin(), labels.end());
  labels.erase(std::unique(labels.begin(), labels.end()), labels.end());
  return labels;
}

EvalSession::EvalSession(ProbGraph instance, SolveOptions options,
                         std::shared_ptr<InstanceContextCache> shared_cache)
    : instance_(std::move(instance)),
      options_(std::move(options)),
      shared_cache_(std::move(shared_cache)) {
  if (shared_cache_ != nullptr) fingerprint_ = instance_.Fingerprint();
}

std::shared_ptr<const InstanceContext> EvalSession::LookupContext(
    const std::vector<LabelId>& labels) {
  if (shared_cache_ != nullptr) {
    // GetOrBuild's contract includes normalization — don't do it twice.
    bool hit = false;
    std::shared_ptr<const InstanceContext> ctx =
        shared_cache_->GetOrBuild(instance_, fingerprint_, labels, &hit);
    std::lock_guard<std::mutex> lock(mu_);
    if (hit) {
      ++stats_.context_cache_hits;
    } else {
      ++stats_.instance_preparations;
    }
    return ctx;
  }
  // Normalize before any cache operation: hits and preparations are
  // accounted against the canonical key, so equivalent label multisets
  // share one entry (and one stats bucket) instead of missing the cache.
  std::vector<LabelId> key = NormalizeLabelKey(labels);
  std::shared_ptr<ContextSlot> slot;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto [it, inserted] = contexts_.try_emplace(key);
    if (inserted) {
      it->second = std::make_shared<ContextSlot>();
      ++stats_.instance_preparations;
    } else {
      ++stats_.context_cache_hits;
    }
    slot = it->second;
  }
  // Build (or wait for the builder) outside the session-wide lock: a cold
  // build blocks only same-label-set queries — which reuse its result, so
  // each label set is still prepared exactly once under concurrency.
  std::lock_guard<std::mutex> slot_lock(slot->m);
  if (slot->context == nullptr) {
    slot->context = BuildInstanceContext(instance_, key);
  }
  return slot->context;
}

PreparedProblem EvalSession::Prepare(const DiGraph& query) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.queries;
  }
  return PrepareProblemWithProvider(
      query, instance_.num_vertices(),
      [this](const std::vector<LabelId>& labels) {
        return LookupContext(labels);
      });
}

PreparedProblem EvalSession::PrepareUcq(const Ucq& ucq) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.queries;
  }
  return lifted::PrepareUcqWithProvider(
      ucq, instance_.num_vertices(),
      [this](const std::vector<LabelId>& labels) {
        return LookupContext(labels);
      });
}

Result<SolveResult> EvalSession::SolvePreparedWithDegrade(
    const PreparedProblem& prepared, const SolveOptions& options) {
  Result<SolveResult> result = SolvePrepared(prepared, options);
  // The serial twin of the serve layer's degradation re-dispatch: a solve
  // that hit its deadline (options.cancel) converts to a budgeted Monte
  // Carlo estimate instead of an error, when the policy allows. Explicit
  // cancellation and every other error pass through untouched, and with
  // the policy off (the default) this is exactly the old behavior.
  if (!result.ok() && ShouldDegradeStatus(result.status(), options.degrade)) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.degraded_solves;
    }
    return SolveDegradedMonteCarlo(prepared, options);
  }
  return result;
}

Result<SolveResult> EvalSession::SolveWithOptions(const DiGraph& query,
                                                  const SolveOptions& options) {
  return SolvePreparedWithDegrade(Prepare(query), options);
}

Result<SolveResult> EvalSession::Solve(const DiGraph& query) {
  return SolveWithOptions(query, options_);
}

Result<SolveResult> EvalSession::Solve(const DiGraph& query,
                                       const SolveOverrides& overrides) {
  return SolveWithOptions(query, ApplyOverrides(options_, overrides));
}

Result<SolveResult> EvalSession::SolveUcq(const Ucq& ucq) {
  return SolvePreparedWithDegrade(PrepareUcq(ucq), options_);
}

Result<SolveResult> EvalSession::SolveUcq(const Ucq& ucq,
                                          const SolveOverrides& overrides) {
  return SolvePreparedWithDegrade(PrepareUcq(ucq),
                                  ApplyOverrides(options_, overrides));
}

std::vector<Result<SolveResult>> EvalSession::SolveBatch(
    const std::vector<DiGraph>& queries) {
  std::vector<Result<SolveResult>> out;
  out.reserve(queries.size());
  for (const DiGraph& query : queries) out.push_back(Solve(query));
  return out;
}

SessionStats EvalSession::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace phom
