#include <algorithm>
#include <type_traits>

#include "src/core/algo_dwt.h"
#include "src/core/algo_polytree.h"
#include "src/core/algo_two_way_path.h"
#include "src/core/engine.h"
#include "src/core/fallback.h"
#include "src/core/monte_carlo.h"
#include "src/graph/graded.h"
#include "src/lifted/lift.h"

/// \file engines.cc
/// The built-in engines. Each engine is a thin adapter from the registry
/// interface onto the templated kernels (algo_*.h, fallback.h); the numeric
/// backend is threaded through with RunInBackend so every engine answers in
/// exact rationals or doubles as requested.

namespace phom {

namespace {

/// Runs `fn` — a generic callable invoked with a std::type_identity<Num>
/// tag and returning Result<Num> — in the requested backend and packages
/// the answer. The exact and plain-double arms are untouched relative to the
/// two-backend era (bit-identity contract); the interval arm reports the
/// kernel's enclosure as a certified bound and its midpoint as the double.
template <class Fn>
Result<EngineAnswer> RunInBackend(NumericBackend backend, Fn&& fn) {
  EngineAnswer out;
  out.backend = backend;
  if (backend == NumericBackend::kExact) {
    PHOM_ASSIGN_OR_RETURN(out.exact, fn(std::type_identity<Rational>{}));
    out.approx = out.exact.ToDouble();
    out.bound = CertifiedPointBound(out.exact);
  } else if (backend == NumericBackend::kIntervalDouble) {
    PHOM_ASSIGN_OR_RETURN(IntervalDouble enclosure,
                          fn(std::type_identity<IntervalDouble>{}));
    out.approx = enclosure.midpoint();
    out.bound = ProbabilityBound{enclosure.lo, enclosure.hi,
                                 /*certified=*/true};
  } else {
    PHOM_ASSIGN_OR_RETURN(out.approx, fn(std::type_identity<double>{}));
  }
  return out;
}

/// FallbackOptions with SolveOptions::cancel threaded in, so the exact
/// exponential loops yield INSIDE a single hard component (fallback.h) —
/// not just between components.
FallbackOptions FallbackWithCancel(const SolveOptions& options) {
  FallbackOptions fb = options.fallback;
  if (options.cancel != nullptr) fb.cancel = options.cancel;
  return fb;
}

/// Per-component dispatch for a connected query with >= 1 edge: the finest
/// applicable algorithm per component class, exact exponential enumeration
/// on #P-hard components.
template <class Num>
Result<Num> SolveComponentT(const DiGraph& query, bool query_is_1wp,
                            bool unlabeled, const ProbGraph& component,
                            const Classification& cc,
                            const SolveOptions& options, SolveStats* stats) {
  using Ops = NumericOps<Num>;
  if (component.num_edges() == 0) return Ops::Zero();

  if (cc.is_2wp) {
    TwoWayPathStats s;
    PHOM_ASSIGN_OR_RETURN(Num p, SolveConnectedOn2wpComponentT<Num>(
                                     query, component, &s, nullptr,
                                     options.scratch));
    stats->hom_tests += s.hom_tests;
    stats->lineage_clauses += s.minimal_intervals;
    return p;
  }

  if (cc.is_dwt) {
    std::vector<LabelId> pattern;
    if (query_is_1wp) {
      pattern = OneWayPathLabels(query);
    } else if (unlabeled) {
      // Prop. 3.6 applied to this component.
      GradedAnalysis graded = AnalyzeGraded(query);
      if (!graded.is_graded) return Ops::Zero();
      pattern.assign(static_cast<size_t>(graded.difference_of_levels),
                     query.UsedLabels()[0]);
    } else {
      // Hard cell (Props. 4.4/4.5): exact fallback on this component.
      ++stats->fallback_components;
      FallbackStats fs;
      PHOM_ASSIGN_OR_RETURN(
          Num p, SolveByWorldEnumerationT<Num>(query, component,
                                               FallbackWithCancel(options),
                                               &fs));
      stats->worlds += fs.worlds;
      return p;
    }
    DwtStats s;
    Result<Num> result =
        options.dwt_via_lineage
            ? SolvePathOnDwtForestViaLineageT<Num>(pattern, component,
                                                   nullptr, &s)
            : SolvePathOnDwtForestT<Num>(pattern, component, &s);
    if (result.ok()) stats->match_ends += s.match_ends;
    return result;
  }

  if (cc.is_pt && unlabeled && query_is_1wp) {
    PolytreeStats s;
    PHOM_ASSIGN_OR_RETURN(
        Num p, SolvePathProbabilityOnPolytreeT<Num>(
                   static_cast<uint32_t>(query.num_edges()), component, &s));
    stats->circuit_gates += s.circuit_gates;
    return p;
  }

  // Hard cell (Props. 4.1 / 5.6 / 5.1): exact fallback on this component.
  ++stats->fallback_components;
  FallbackStats fs;
  PHOM_ASSIGN_OR_RETURN(
      Num p, SolveByWorldEnumerationT<Num>(query, component,
                                           FallbackWithCancel(options), &fs));
  stats->worlds += fs.worlds;
  return p;
}

/// Lemma 3.7 over the cached component split.
template <class Num>
Result<Num> SolvePerComponentT(const PreparedProblem& prepared,
                               const SolveOptions& options,
                               SolveStats* stats) {
  using Ops = NumericOps<Num>;
  const InstanceContext& ctx = *prepared.context;
  bool unlabeled = prepared.analysis.effective_unlabeled;
  bool query_is_1wp = prepared.analysis.query_class.is_1wp;
  Num none = Ops::One();
  for (size_t i = 0; i < ctx.components.size(); ++i) {
    // The cooperative-interruption yield point (CancelToken, solver.h):
    // components are the natural work quanta of this dispatch, and checking
    // before each one mirrors the serve layer's per-component-task gate.
    if (options.cancel != nullptr) {
      PHOM_RETURN_NOT_OK(options.cancel->Check());
    }
    ++stats->components;
    PHOM_ASSIGN_OR_RETURN(
        Num p, SolveComponentT<Num>(prepared.query, query_is_1wp, unlabeled,
                                    ctx.components[i].graph,
                                    ctx.component_classes[i], options, stats));
    none *= Ops::Complement(p);
  }
  return Ops::Complement(none);
}

// ---------------------------------------------------------------------------
// The dichotomy's PTIME engines.
// ---------------------------------------------------------------------------

class TwoWayPathEngine : public Engine {
 public:
  std::string_view name() const override { return "connected-on-2wp"; }
  Algorithm algorithm() const override { return Algorithm::kConnectedOn2wp; }
  bool componentwise() const override { return true; }
  bool Applies(const CaseAnalysis& a) const override {
    return a.query_class.connected && a.instance_class.all_2wp;
  }
  Result<EngineAnswer> Solve(const PreparedProblem& prepared,
                             const SolveOptions& options,
                             SolveStats* stats) const override {
    return RunInBackend(options.numeric, [&](auto tag) {
      using Num = typename decltype(tag)::type;
      return SolvePerComponentT<Num>(prepared, options, stats);
    });
  }
};

class DwtPathEngine : public Engine {
 public:
  std::string_view name() const override { return "path-on-dwt"; }
  Algorithm algorithm() const override { return Algorithm::kPathOnDwt; }
  bool componentwise() const override { return true; }
  bool Applies(const CaseAnalysis& a) const override {
    return a.query_class.is_1wp && a.instance_class.all_dwt;
  }
  Result<EngineAnswer> Solve(const PreparedProblem& prepared,
                             const SolveOptions& options,
                             SolveStats* stats) const override {
    return RunInBackend(options.numeric, [&](auto tag) {
      using Num = typename decltype(tag)::type;
      return SolvePerComponentT<Num>(prepared, options, stats);
    });
  }
};

class UnlabeledDwtInstanceEngine : public Engine {
 public:
  std::string_view name() const override { return "unlabeled-dwt-instance"; }
  Algorithm algorithm() const override {
    return Algorithm::kUnlabeledDwtInstance;
  }
  bool Applies(const CaseAnalysis& a) const override {
    return a.effective_unlabeled && a.instance_class.all_dwt;
  }
  Result<EngineAnswer> Solve(const PreparedProblem& prepared,
                             const SolveOptions& options,
                             SolveStats* stats) const override {
    return RunInBackend(options.numeric, [&](auto tag) -> Result<
                                              typename decltype(tag)::type> {
      using Num = typename decltype(tag)::type;
      DwtStats s;
      PHOM_ASSIGN_OR_RETURN(Num p, SolveUnlabeledOnDwtForestT<Num>(
                                       prepared.query, prepared.instance(),
                                       &s));
      stats->match_ends += s.match_ends;
      return p;
    });
  }
};

class PolytreeEngine : public Engine {
 public:
  std::string_view name() const override { return "unlabeled-polytree"; }
  Algorithm algorithm() const override {
    return Algorithm::kUnlabeledPolytree;
  }
  bool Applies(const CaseAnalysis& a) const override {
    return a.effective_unlabeled && a.query_class.all_dwt &&
           a.instance_class.all_pt;
  }
  Result<EngineAnswer> Solve(const PreparedProblem& prepared,
                             const SolveOptions& options,
                             SolveStats* stats) const override {
    // Prop. 5.5 collapse + Prop. 5.4 per polytree component + Lemma 3.7,
    // all inside the kernel (Applies guarantees its ⊔DWT precondition).
    return RunInBackend(options.numeric, [&](auto tag) -> Result<
                                              typename decltype(tag)::type> {
      using Num = typename decltype(tag)::type;
      PolytreeStats s;
      PHOM_ASSIGN_OR_RETURN(
          Num p, SolveDwtQueryOnPolytreeForestT<Num>(prepared.query,
                                                     prepared.instance(), &s));
      stats->circuit_gates += s.circuit_gates;
      return p;
    });
  }
};

class PerComponentEngine : public Engine {
 public:
  std::string_view name() const override { return "per-component"; }
  Algorithm algorithm() const override { return Algorithm::kPerComponent; }
  bool componentwise() const override { return true; }
  bool Applies(const CaseAnalysis& a) const override {
    return a.query_class.connected;
  }
  bool AutoMatch(const CaseAnalysis& a) const override {
    // Claims its own cells AND connected-query hard cells: enumerating
    // worlds per component is exponentially cheaper than on the whole
    // instance, and the tractable components still use their fine engines.
    return a.query_class.connected && (a.algorithm == Algorithm::kPerComponent ||
                                       a.algorithm == Algorithm::kFallback);
  }
  Result<EngineAnswer> Solve(const PreparedProblem& prepared,
                             const SolveOptions& options,
                             SolveStats* stats) const override {
    return RunInBackend(options.numeric, [&](auto tag) {
      using Num = typename decltype(tag)::type;
      return SolvePerComponentT<Num>(prepared, options, stats);
    });
  }
};

// ---------------------------------------------------------------------------
// Exponential oracles and the estimator.
// ---------------------------------------------------------------------------

class FallbackEngine : public Engine {
 public:
  std::string_view name() const override { return "fallback"; }
  Algorithm algorithm() const override { return Algorithm::kFallback; }
  bool Applies(const CaseAnalysis&) const override { return true; }
  Result<EngineAnswer> Solve(const PreparedProblem& prepared,
                             const SolveOptions& options,
                             SolveStats* stats) const override {
    return RunInBackend(options.numeric, [&](auto tag) -> Result<
                                              typename decltype(tag)::type> {
      using Num = typename decltype(tag)::type;
      FallbackStats fs;
      PHOM_ASSIGN_OR_RETURN(
          Num p, SolveByWorldEnumerationT<Num>(prepared.query,
                                               prepared.instance(),
                                               FallbackWithCancel(options),
                                               &fs));
      stats->worlds += fs.worlds;
      return p;
    });
  }
};

class DwtLineageShannonEngine : public Engine {
 public:
  std::string_view name() const override { return "dwt-lineage-shannon"; }
  Algorithm algorithm() const override { return Algorithm::kPathOnDwt; }
  bool Applies(const CaseAnalysis& a) const override {
    return a.query_class.is_1wp && a.instance_class.all_dwt;
  }
  bool AutoMatch(const CaseAnalysis&) const override { return false; }
  Result<EngineAnswer> Solve(const PreparedProblem& prepared,
                             const SolveOptions& options,
                             SolveStats* stats) const override {
    std::vector<LabelId> pattern = OneWayPathLabels(prepared.query);
    return RunInBackend(options.numeric, [&](auto tag) -> Result<
                                              typename decltype(tag)::type> {
      using Num = typename decltype(tag)::type;
      DwtStats s;
      PHOM_ASSIGN_OR_RETURN(
          Num p, SolvePathOnDwtForestViaLineageT<Num>(
                     pattern, prepared.instance(), nullptr, &s));
      stats->match_ends += s.match_ends;
      return p;
    });
  }
};

class MatchLineageEngine : public Engine {
 public:
  std::string_view name() const override { return "match-lineage"; }
  Algorithm algorithm() const override { return Algorithm::kFallback; }
  bool Applies(const CaseAnalysis& a) const override {
    return a.query_class.connected;
  }
  bool AutoMatch(const CaseAnalysis&) const override { return false; }
  Result<EngineAnswer> Solve(const PreparedProblem& prepared,
                             const SolveOptions& options,
                             SolveStats* stats) const override {
    return RunInBackend(options.numeric, [&](auto tag) -> Result<
                                              typename decltype(tag)::type> {
      using Num = typename decltype(tag)::type;
      FallbackStats fs;
      PHOM_ASSIGN_OR_RETURN(
          Num p, SolveByMatchLineageT<Num>(prepared.query,
                                           prepared.instance(),
                                           FallbackWithCancel(options), &fs));
      stats->lineage_clauses += fs.matches;
      return p;
    });
  }
};

class MonteCarloEngine : public Engine {
 public:
  std::string_view name() const override { return "monte-carlo"; }
  Algorithm algorithm() const override { return Algorithm::kFallback; }
  bool exact() const override { return false; }
  bool Applies(const CaseAnalysis&) const override { return true; }
  bool AutoMatch(const CaseAnalysis&) const override { return false; }
  Result<EngineAnswer> Solve(const PreparedProblem& prepared,
                             const SolveOptions& options,
                             SolveStats* stats) const override {
    // Thread the dispatch-level token into the per-sample yield points
    // (monte_carlo.h); with the default min_samples = 0 an expired deadline
    // aborts sampling like any other kernel.
    const CancelToken::Clock::time_point start = CancelToken::Clock::now();
    MonteCarloOptions mc = options.monte_carlo;
    if (options.cancel != nullptr) mc.cancel = options.cancel;
    // A UCQ problem samples the whole UNION per world (any-disjunct hit):
    // sampling prepared.query alone would silently estimate disjunct 0.
    Result<MonteCarloEstimate> est =
        prepared.ucq != nullptr
            ? EstimateUcqProbabilityMonteCarlo(
                  prepared.ucq->normalized.disjuncts, prepared.instance(),
                  options.monte_carlo_seed, mc)
            : EstimateProbabilityMonteCarlo(prepared.query,
                                            prepared.instance(),
                                            options.monte_carlo_seed, mc);
    if (!est.ok()) return est.status();
    stats->worlds += est->samples;
    EngineAnswer out;
    out.backend = options.numeric;
    out.approx = est->estimate;
    if (est->exact_zero) {
      // The lower-bound pre-pass PROVED p == 0 without sampling; this is an
      // exact answer (certified point bound), not an estimate.
      out.bound = ProbabilityBound{0.0, 0.0, /*certified=*/true};
      return out;
    }
    if (options.numeric == NumericBackend::kExact) {
      // hits/samples is exactly representable; still only an estimate.
      out.exact = Rational(static_cast<int64_t>(est->hits),
                           static_cast<int64_t>(est->samples));
    }
    // Statistical bracket: estimate ± half-width, clamped into [0, 1] —
    // a 95% confidence statement, NOT a certificate.
    out.bound =
        ProbabilityBound{std::max(0.0, est->estimate - est->half_width_95),
                         std::min(1.0, est->estimate + est->half_width_95),
                         /*certified=*/false};
    out.relative_error_95 =
        mc.target_relative_error > 0.0 ? est->relative_error_95 : 0.0;
    out.degrade.lower_bound = est->lower_bound;
    out.degrade.relative_error_95 = out.relative_error_95;
    if (est->deadline_truncated) {
      // The caller got fewer samples than it budgeted for — surface the
      // same provenance the DegradePolicy path reports, so a floor-sized
      // estimate is never mistaken for the requested precision.
      out.degrade.degraded = true;
      out.degrade.estimate = est->estimate;
      out.degrade.half_width_95 = est->half_width_95;
      out.degrade.samples_used = est->samples;
      out.degrade.budget_spent = CancelToken::Clock::now() - start;
    }
    return out;
  }
};

}  // namespace

// ---------------------------------------------------------------------------
// Within-query component parallelism (solver.h). Lives here because it reuses
// the same SolveComponentT kernel adapters as the serial componentwise
// engines — that sharing is what makes the parallel merge bit-identical.
// ---------------------------------------------------------------------------

ComponentDispatch PlanComponentDispatch(const PreparedProblem& prepared,
                                        const SolveOptions& options) {
  ComponentDispatch plan;
  if (prepared.immediate.has_value() || prepared.context == nullptr) {
    return plan;
  }
  // A UCQ fans out over its plan's UNITS (the leaves of the lifted plan),
  // not over instance components: each unit is itself a full single-CQ
  // solve. A non-compilable plan has no units and stays serial, so its
  // typed error surfaces through the ordinary SolvePrepared path.
  const size_t n = prepared.ucq != nullptr
                       ? prepared.ucq->plan.units.size()
                       : prepared.context->components.size();
  if (n < 2) return plan;  // one component: a single SolvePrepared task is best
  // The ONE registry scan of a componentwise query (shared_mutex inside):
  // every component task reuses this plan instead of re-resolving.
  bool forced = false;
  Result<const Engine*> engine = SelectEngineForProblem(
      EngineRegistry::Global(), prepared, options, &forced);
  // Selection errors (typo'd names, inapplicable forced engines) must
  // surface through the ordinary SolvePrepared path, identically.
  if (!engine.ok() || *engine == nullptr || !(*engine)->componentwise()) {
    return plan;
  }
  plan.engine = *engine;
  plan.forced = forced;
  plan.components = n;
  return plan;
}

size_t PreparedComponentParallelism(const PreparedProblem& prepared,
                                    const SolveOptions& options) {
  return PlanComponentDispatch(prepared, options).components;
}

Result<SolveResult> SolvePreparedComponent(const PreparedProblem& prepared,
                                           const ComponentDispatch& dispatch,
                                           size_t component_index,
                                           const SolveOptions& options) {
  // Same yield point as the serial per-component loop, so an interrupted
  // parallel dispatch fails exactly where its serial twin would.
  if (options.cancel != nullptr) {
    PHOM_RETURN_NOT_OK(options.cancel->Check());
  }
  if (prepared.ucq != nullptr) {
    // UCQ fan-out: one task per lifted-plan unit (PlanComponentDispatch
    // sized the dispatch accordingly); the combine replays the safe plan.
    PHOM_CHECK_MSG(dispatch.components == prepared.ucq->plan.units.size() &&
                       component_index < dispatch.components,
                   "SolvePreparedComponent outside a UCQ unit dispatch");
    return lifted::SolveUcqUnit(prepared, component_index, options);
  }
  const Engine* engine = dispatch.engine;
  PHOM_CHECK_MSG(engine != nullptr && engine->componentwise() &&
                     prepared.context != nullptr &&
                     dispatch.components ==
                         prepared.context->components.size() &&
                     component_index < dispatch.components,
                 "SolvePreparedComponent outside a componentwise dispatch");
  SolveResult out;
  out.analysis = prepared.analysis;
  out.numeric = options.numeric;
  out.stats.primary =
      dispatch.forced ? engine->algorithm() : prepared.analysis.algorithm;
  out.stats.engine = std::string(engine->name());
  const InstanceContext& ctx = *prepared.context;
  const bool unlabeled = prepared.analysis.effective_unlabeled;
  const bool query_is_1wp = prepared.analysis.query_class.is_1wp;
  ++out.stats.components;
  const CancelToken::Clock::time_point kernel_start =
      CancelToken::Clock::now();
  PHOM_ASSIGN_OR_RETURN(
      EngineAnswer answer,
      RunInBackend(options.numeric, [&](auto tag) {
        using Num = typename decltype(tag)::type;
        return SolveComponentT<Num>(prepared.query, query_is_1wp, unlabeled,
                                    ctx.components[component_index].graph,
                                    ctx.component_classes[component_index],
                                    options, &out.stats);
      }));
  out.stats.duration = CancelToken::Clock::now() - kernel_start;
  out.probability = std::move(answer.exact);
  out.probability_double = answer.approx;
  out.bound = answer.bound;
  out.numeric = answer.backend;
  return out;
}

Result<SolveResult> CombinePreparedComponents(
    const PreparedProblem& prepared, const ComponentDispatch& dispatch,
    const SolveOptions& options,
    std::vector<Result<SolveResult>> components) {
  if (prepared.ucq != nullptr) {
    // Unit answers merge through the lifted plan's evaluator, not through
    // Lemma 3.7 (units are NOT independent instance components).
    return lifted::CombineUcqUnitResults(prepared, options,
                                         std::move(components));
  }
  const Engine* engine = dispatch.engine;
  PHOM_CHECK_MSG(engine != nullptr && prepared.context != nullptr &&
                     components.size() == prepared.context->components.size(),
                 "CombinePreparedComponents arity mismatch");
  SolveResult out;
  out.analysis = prepared.analysis;
  out.numeric = options.numeric;
  out.stats.primary =
      dispatch.forced ? engine->algorithm() : prepared.analysis.algorithm;
  out.stats.engine = std::string(engine->name());
  for (size_t i = 0; i < components.size(); ++i) {
    // Serial SolvePerComponentT stops at the first failing component in
    // index order; reproduce exactly that error.
    if (!components[i].ok()) return components[i].status();
    const SolveStats& s = components[i]->stats;
    out.stats.components += s.components;
    out.stats.fallback_components += s.fallback_components;
    out.stats.worlds += s.worlds;
    out.stats.hom_tests += s.hom_tests;
    out.stats.lineage_clauses += s.lineage_clauses;
    out.stats.circuit_gates += s.circuit_gates;
    out.stats.match_ends += s.match_ends;
    out.stats.duration += s.duration;
  }
  // Lemma 3.7 in component-index order — the same operations, in the same
  // order, as the serial combine in SolvePerComponentT, so the merged answer
  // is bit-identical in every backend.
  if (options.numeric == NumericBackend::kExact) {
    Rational none = Rational::One();
    for (const Result<SolveResult>& c : components) {
      none *= c->probability.Complement();
    }
    out.probability = none.Complement();
    out.probability_double = out.probability.ToDouble();
    out.bound = CertifiedPointBound(out.probability);
  } else if (options.numeric == NumericBackend::kIntervalDouble) {
    // Each component's bound IS its kernel enclosure (SolvePreparedComponent
    // copies it verbatim), so replaying the serial combine on the intervals
    // reproduces the serial interval answer — and its certificate — bit for
    // bit. A component that fell back to an uncertified bound (impossible
    // today, defensive tomorrow) taints the merged certificate.
    using Ops = NumericOps<IntervalDouble>;
    IntervalDouble none = Ops::One();
    bool certified = true;
    for (const Result<SolveResult>& c : components) {
      none *= Ops::Complement(IntervalDouble(c->bound.lo, c->bound.hi));
      certified = certified && c->bound.certified;
    }
    const IntervalDouble enclosure = Ops::Complement(none);
    out.probability_double = enclosure.midpoint();
    out.bound = ProbabilityBound{enclosure.lo, enclosure.hi, certified};
  } else {
    double none = 1.0;
    for (const Result<SolveResult>& c : components) {
      none *= 1.0 - c->probability_double;
    }
    out.probability_double = 1.0 - none;
  }
  return out;
}

void RegisterDefaultEngines(EngineRegistry* registry) {
  registry->Register(std::make_unique<TwoWayPathEngine>());
  registry->Register(std::make_unique<DwtPathEngine>());
  registry->Register(std::make_unique<UnlabeledDwtInstanceEngine>());
  registry->Register(std::make_unique<PolytreeEngine>());
  registry->Register(std::make_unique<PerComponentEngine>());
  registry->Register(std::make_unique<FallbackEngine>());
  registry->Register(std::make_unique<DwtLineageShannonEngine>());
  registry->Register(std::make_unique<MatchLineageEngine>());
  registry->Register(std::make_unique<MonteCarloEngine>());
  registry->Register(lifted::MakeLiftedUcqEngine());
}

}  // namespace phom
