#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/graph/classify.h"
#include "src/graph/graded.h"
#include "src/graph/prob_graph.h"
#include "src/util/rational.h"

/// \file case.h
/// The dichotomy of Tables 1–3 as code: given a PHom input, decide whether it
/// falls in a PTIME cell (and which algorithm/proposition applies) or in a
/// #P-hard cell (and which hardness proposition witnesses it).
///
/// Preparation steps applied before classification (all sound for PHom):
///  1. isolated query vertices are dropped (possible worlds keep all instance
///     vertices, so they only require a non-empty instance);
///  2. the instance is marginalized to the labels used by the query;
///  3. in the (effective) unlabeled setting, a ⊔DWT query is replaced by the
///     equivalent one-way path →^height (Prop. 5.5), and any query on a ⊔DWT
///     instance is replaced by →^(difference of levels) via its level mapping
///     or answered 0 when not graded (Prop. 3.6).
///
/// Step 2 and everything derived from the restricted instance (component
/// split, per-component classification) depend only on the instance and the
/// query's LABEL SET, not on the query's shape. That work is factored into
/// an immutable, shareable InstanceContext so an EvalSession can pay for it
/// once per label set and amortize it across a batch of queries.

namespace phom {

enum class Algorithm {
  kTrivial = 0,            ///< answered during preparation
  kConnectedOn2wp,         ///< Prop. 4.11 (X-property + β-acyclic interval DNF)
  kPathOnDwt,              ///< Prop. 4.10 (tree-KMP matches + run-length DP)
  kUnlabeledDwtInstance,   ///< Prop. 3.6 (level-mapping collapse, then DWT DP)
  kUnlabeledPolytree,      ///< Props. 5.4/5.5 (tree automaton → d-DNNF)
  kPerComponent,           ///< mixed instance: per-component algorithms + Lemma 3.7
  kFallback,               ///< #P-hard cell: exact exponential solver
  kLiftedUcq,              ///< UCQ input: Dalvi–Suciu lifted plan (src/lifted/)
};

const char* ToString(Algorithm a);

struct CaseAnalysis {
  /// |σ_effective| <= 1 after restricting to the query's labels.
  bool effective_unlabeled = false;
  /// The query was replaced by an equivalent / world-equivalent 1WP.
  bool query_collapsed = false;
  /// Length of the collapsed path (valid if query_collapsed).
  int64_t collapsed_length = 0;

  Classification query_class;     ///< of the prepared query
  Classification instance_class;  ///< of the restricted instance

  /// Verdict of Tables 1–3 for this cell (union classes included).
  bool tractable = false;
  Algorithm algorithm = Algorithm::kFallback;
  /// The proposition(s) justifying the verdict, e.g. "Prop. 4.11".
  std::string proposition;
  /// Human-readable cell, e.g. "PHomL(⊔1WP, 1WP)".
  std::string cell;
};

/// The query-independent half of problem preparation: the instance restricted
/// to one label set, split into components, each component classified.
/// Immutable once built; shared (and cached) via shared_ptr.
struct InstanceContext {
  ProbGraph instance;  ///< label-restricted instance
  Classification instance_class;
  std::vector<ComponentView> components;
  std::vector<Classification> component_classes;  ///< aligned with components
};

/// Builds the context for `labels` (the query's used labels, sorted).
std::shared_ptr<const InstanceContext> BuildInstanceContext(
    const ProbGraph& instance, const std::vector<LabelId>& labels);

namespace lifted {
struct PreparedUcq;  // src/lifted/plan.h
}  // namespace lifted

struct PreparedProblem {
  DiGraph query;       ///< simplified (and possibly collapsed) query
  /// Query-independent preparation of the instance (restriction, component
  /// split, classification); null only for the trivial shells where
  /// `immediate` is set before the instance is touched.
  std::shared_ptr<const InstanceContext> context;
  /// Set when preparation alone decides the answer (trivial cases and the
  /// non-graded-query-on-forest case of Prop. 3.6).
  std::optional<Rational> immediate;
  CaseAnalysis analysis;
  /// Non-null only for UCQ inputs with >= 2 normalized disjuncts (built by
  /// lifted::PrepareUcq; a UCQ that normalizes to one disjunct takes the
  /// plain single-CQ path above, bit-identically). When set, `query` holds
  /// the first disjunct and `context` the union-label context — enough for
  /// the generic plumbing — while the lifted plan drives the actual solve.
  std::shared_ptr<const lifted::PreparedUcq> ucq;

  /// The label-restricted instance (empty graph when context is null).
  const ProbGraph& instance() const;
};

PreparedProblem PrepareProblem(const DiGraph& query, const ProbGraph& instance);

/// Maps a label set to a (possibly cached) InstanceContext. Called at most
/// once per preparation, and only after the trivial shells are ruled out.
using InstanceContextProvider =
    std::function<std::shared_ptr<const InstanceContext>(
        const std::vector<LabelId>&)>;

/// PrepareProblem with the instance-side work delegated to `provider` —
/// the amortization hook used by EvalSession. `instance_num_vertices` is the
/// vertex count of the (unrestricted) instance, needed for the trivial
/// shells that short-circuit before any context is built.
PreparedProblem PrepareProblemWithProvider(
    const DiGraph& query, size_t instance_num_vertices,
    const InstanceContextProvider& provider);

/// Classification only (PrepareProblem's analysis).
CaseAnalysis AnalyzeCase(const DiGraph& query, const ProbGraph& instance);

/// Removes vertices with no incident edges (keeps edge order).
DiGraph DropIsolatedVertices(const DiGraph& g);

/// Row/column label of a graph in the tables: 1WP/2WP/DWT/PT/Connected for
/// connected graphs, ⊔1WP/⊔2WP/⊔DWT/⊔PT/All otherwise.
std::string TableClassLabel(const Classification& c);

}  // namespace phom
