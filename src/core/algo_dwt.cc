#include "src/core/algo_dwt.h"

#include <algorithm>
#include <queue>

#include "src/graph/classify.h"
#include "src/graph/graded.h"
#include "src/lineage/dnf_prob.h"

namespace phom {

namespace {

/// Forest structure: BFS order (parents before children), parent edge ids.
struct Forest {
  std::vector<VertexId> bfs_order;
  std::vector<int64_t> parent;       // -1 for roots
  std::vector<EdgeId> parent_edge;   // valid when parent >= 0
};

Result<Forest> BuildForest(const DiGraph& g) {
  Forest f;
  size_t n = g.num_vertices();
  f.parent.assign(n, -1);
  f.parent_edge.assign(n, 0);
  f.bfs_order.reserve(n);
  std::vector<bool> seen(n, false);
  std::queue<VertexId> queue;
  for (VertexId v = 0; v < n; ++v) {
    if (g.InDegree(v) == 0) {
      queue.push(v);
      seen[v] = true;
    }
  }
  while (!queue.empty()) {
    VertexId v = queue.front();
    queue.pop();
    f.bfs_order.push_back(v);
    for (EdgeId e : g.OutEdges(v)) {
      VertexId w = g.edge(e).dst;
      if (seen[w] || g.InDegree(w) != 1) {
        return Status::Invalid("instance is not a downward forest");
      }
      seen[w] = true;
      f.parent[w] = v;
      f.parent_edge[w] = e;
      queue.push(w);
    }
  }
  if (f.bfs_order.size() != n) {
    return Status::Invalid("instance is not a downward forest (cycle)");
  }
  return f;
}

/// KMP failure function of the query label word.
std::vector<uint32_t> KmpFailure(const std::vector<LabelId>& pattern) {
  std::vector<uint32_t> fail(pattern.size(), 0);
  for (size_t i = 1; i < pattern.size(); ++i) {
    uint32_t s = fail[i - 1];
    while (s > 0 && pattern[s] != pattern[i]) s = fail[s - 1];
    if (pattern[s] == pattern[i]) ++s;
    fail[i] = s;
  }
  return fail;
}

/// match[v] = true iff the m rootward edges ending at v carry exactly the
/// query labels (KMP streamed down the forest).
std::vector<bool> MatchEnds(const std::vector<LabelId>& pattern,
                            const DiGraph& g, const Forest& forest,
                            size_t* match_count) {
  uint32_t m = static_cast<uint32_t>(pattern.size());
  std::vector<uint32_t> fail = KmpFailure(pattern);
  std::vector<uint32_t> state(g.num_vertices(), 0);
  std::vector<bool> match(g.num_vertices(), false);
  for (VertexId v : forest.bfs_order) {
    if (forest.parent[v] < 0) {
      state[v] = 0;
      continue;
    }
    LabelId label = g.edge(forest.parent_edge[v]).label;
    uint32_t s = state[static_cast<VertexId>(forest.parent[v])];
    if (s == m) s = fail[m - 1];  // continue matching past a full match
    while (s > 0 && pattern[s] != label) s = fail[s - 1];
    if (pattern[s] == label) ++s;
    state[v] = s;
    if (s == m) {
      match[v] = true;
      if (match_count != nullptr) ++*match_count;
    }
  }
  return match;
}

}  // namespace

template <class Num>
Result<Num> SolvePathOnDwtForestT(const std::vector<LabelId>& query_labels,
                                  const ProbGraph& instance, DwtStats* stats) {
  using Ops = NumericOps<Num>;
  if (query_labels.empty()) {
    return Status::Invalid("query must have at least one edge");
  }
  PHOM_ASSIGN_OR_RETURN(Forest forest, BuildForest(instance.graph()));
  const DiGraph& g = instance.graph();
  uint32_t m = static_cast<uint32_t>(query_labels.size());
  size_t match_count = 0;
  std::vector<bool> match = MatchEnds(query_labels, g, forest, &match_count);
  if (stats != nullptr) stats->match_ends = match_count;

  // f[v][s] = Pr(no match fires in v's subtree | capped run of present
  // edges ending at v is s). Children processed before parents. Subtrees
  // without any match end contribute factor 1 for every s, so tables are
  // only materialized on the "match spine" — the ancestors of match ends —
  // which is what keeps the DP cheap when matches are sparse.
  size_t n = g.num_vertices();
  std::vector<bool> match_below(n, false);
  for (size_t idx = forest.bfs_order.size(); idx-- > 0;) {
    VertexId v = forest.bfs_order[idx];
    bool below = match[v];
    for (EdgeId e : g.OutEdges(v)) {
      below = below || match_below[g.edge(e).dst];
    }
    match_below[v] = below;
  }

  BackendProbs<Num> probs(instance.probs());
  std::vector<std::vector<Num>> f(n);
  for (size_t idx = forest.bfs_order.size(); idx-- > 0;) {
    VertexId v = forest.bfs_order[idx];
    if (!match_below[v]) continue;  // f[v][s] == 1 for all s
    f[v].assign(m + 1, Ops::One());
    for (uint32_t s = 0; s <= m; ++s) {
      if (match[v] && s == m) {
        f[v][s] = Ops::Zero();
        continue;
      }
      Num value = Ops::One();
      for (EdgeId e : g.OutEdges(v)) {
        VertexId c = g.edge(e).dst;
        if (!match_below[c]) continue;  // contributes p·1 + (1-p)·1 = 1
        const Num& p = probs[e];
        uint32_t s_present = std::min(m, s + 1);
        value *= p * f[c][s_present] + Ops::Complement(p) * f[c][0];
      }
      f[v][s] = std::move(value);
    }
    // Free children tables: no longer needed once v is computed.
    for (EdgeId e : g.OutEdges(v)) {
      f[g.edge(e).dst].clear();
      f[g.edge(e).dst].shrink_to_fit();
    }
  }

  Num no_match = Ops::One();
  for (VertexId v = 0; v < n; ++v) {
    if (forest.parent[v] < 0 && match_below[v]) no_match *= f[v][0];
  }
  return Ops::Complement(no_match);
}

template <class Num>
Result<Num> SolvePathOnDwtForestViaLineageT(
    const std::vector<LabelId>& query_labels, const ProbGraph& instance,
    MonotoneDnf* lineage_out, DwtStats* stats) {
  if (query_labels.empty()) {
    return Status::Invalid("query must have at least one edge");
  }
  PHOM_ASSIGN_OR_RETURN(Forest forest, BuildForest(instance.graph()));
  const DiGraph& g = instance.graph();
  uint32_t m = static_cast<uint32_t>(query_labels.size());
  size_t match_count = 0;
  std::vector<bool> match = MatchEnds(query_labels, g, forest, &match_count);
  if (stats != nullptr) stats->match_ends = match_count;

  MonotoneDnf lineage(static_cast<uint32_t>(g.num_edges()));
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    if (!match[v]) continue;
    std::vector<uint32_t> clause;
    clause.reserve(m);
    VertexId w = v;
    for (uint32_t step = 0; step < m; ++step) {
      PHOM_CHECK(forest.parent[w] >= 0);
      clause.push_back(forest.parent_edge[w]);
      w = static_cast<VertexId>(forest.parent[w]);
    }
    lineage.AddClause(std::move(clause));
  }

  // Condition edges top-down (by depth of the child endpoint): together with
  // component caching this keeps the number of residuals polynomial.
  std::vector<uint32_t> order;
  order.reserve(g.num_edges());
  for (VertexId v : forest.bfs_order) {
    if (forest.parent[v] >= 0) order.push_back(forest.parent_edge[v]);
  }
  ShannonOptions options;
  options.variable_order = std::move(order);
  BackendProbs<Num> probs(instance.probs());
  Result<Num> result =
      DnfProbabilityShannonT<Num>(lineage, *probs, options, nullptr);
  if (lineage_out != nullptr) *lineage_out = std::move(lineage);
  return result;
}

template <class Num>
Result<Num> SolveUnlabeledOnDwtForestT(const DiGraph& query,
                                       const ProbGraph& instance,
                                       DwtStats* stats) {
  if (query.num_edges() == 0) {
    return Status::Invalid("query must have at least one edge");
  }
  std::vector<LabelId> labels = query.UsedLabels();
  if (labels.size() != 1) {
    return Status::Invalid("SolveUnlabeledOnDwtForest requires one label");
  }
  GradedAnalysis graded = AnalyzeGraded(query);
  if (!graded.is_graded) return NumericOps<Num>::Zero();  // Prop. 3.6
  PHOM_CHECK(graded.difference_of_levels >= 1);
  std::vector<LabelId> pattern(
      static_cast<size_t>(graded.difference_of_levels), labels[0]);
  return SolvePathOnDwtForestT<Num>(pattern, instance, stats);
}

template Result<Rational> SolvePathOnDwtForestT<Rational>(
    const std::vector<LabelId>&, const ProbGraph&, DwtStats*);
template Result<double> SolvePathOnDwtForestT<double>(
    const std::vector<LabelId>&, const ProbGraph&, DwtStats*);
template Result<IntervalDouble> SolvePathOnDwtForestT<IntervalDouble>(
    const std::vector<LabelId>&, const ProbGraph&, DwtStats*);
template Result<Rational> SolvePathOnDwtForestViaLineageT<Rational>(
    const std::vector<LabelId>&, const ProbGraph&, MonotoneDnf*, DwtStats*);
template Result<double> SolvePathOnDwtForestViaLineageT<double>(
    const std::vector<LabelId>&, const ProbGraph&, MonotoneDnf*, DwtStats*);
template Result<IntervalDouble>
SolvePathOnDwtForestViaLineageT<IntervalDouble>(const std::vector<LabelId>&,
                                                const ProbGraph&, MonotoneDnf*,
                                                DwtStats*);
template Result<Rational> SolveUnlabeledOnDwtForestT<Rational>(
    const DiGraph&, const ProbGraph&, DwtStats*);
template Result<double> SolveUnlabeledOnDwtForestT<double>(
    const DiGraph&, const ProbGraph&, DwtStats*);
template Result<IntervalDouble>
SolveUnlabeledOnDwtForestT<IntervalDouble>(const DiGraph&, const ProbGraph&,
                                           DwtStats*);

}  // namespace phom
