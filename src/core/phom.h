#pragma once

/// \file phom.h
/// Umbrella header for the phom library: probabilistic query evaluation on
/// graphs with combined-complexity-aware dispatch, reproducing
/// "Conjunctive Queries on Probabilistic Graphs: Combined Complexity"
/// (Amarilli, Monet, Senellart; PODS 2017).

#include "src/core/algo_dwt.h"
#include "src/core/algo_polytree.h"
#include "src/core/algo_two_way_path.h"
#include "src/core/case.h"
#include "src/core/engine.h"
#include "src/core/eval_session.h"
#include "src/core/fallback.h"
#include "src/core/monte_carlo.h"
#include "src/core/solver.h"
#include "src/graph/alphabet.h"
#include "src/graph/builders.h"
#include "src/graph/classify.h"
#include "src/graph/digraph.h"
#include "src/graph/generators.h"
#include "src/graph/graded.h"
#include "src/graph/io.h"
#include "src/graph/prob_graph.h"
#include "src/hom/backtrack.h"
#include "src/hom/equivalence.h"
#include "src/util/numeric.h"
#include "src/util/rational.h"
#include "src/util/rng.h"
