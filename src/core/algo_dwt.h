#pragma once

#include <vector>

#include "src/graph/prob_graph.h"
#include "src/lineage/dnf.h"
#include "src/util/numeric.h"
#include "src/util/rational.h"
#include "src/util/result.h"

/// \file algo_dwt.h
/// Prop. 4.10: PHomL(1WP, DWT) in PTIME — and, through the level-mapping
/// collapse of Prop. 3.6, PHom̸L(All, ⊔DWT).
///
/// Matches of a 1WP query in a downward forest are downward paths; every
/// vertex is the bottom end of at most one candidate match, found by
/// streaming the query's label word along root-to-leaf paths (KMP on the
/// forest). Two probability engines:
///  * a direct O(n·m) dynamic program over (vertex, capped run length of
///    consecutively present edges ending there) — the operational form of
///    the β-acyclic lineage evaluation;
///  * the literal paper pipeline: materialize the DNF lineage (one clause of
///    m edges per matching vertex), which is β-acyclic by bottom-up
///    elimination, and evaluate it with the memoized Shannon engine.
/// Both are exposed; tests check they agree. All entry points are templated
/// on the numeric backend (exact Rational or double, util/numeric.h).

namespace phom {

struct DwtStats {
  size_t match_ends = 0;  ///< vertices whose rootward m-path matches the query
};

/// Pr(1WP query with labels `query_labels` ⇝ instance), instance ∈ ⊔DWT
/// (a forest where every vertex has in-degree <= 1). Requires >= 1 label.
template <class Num>
Result<Num> SolvePathOnDwtForestT(const std::vector<LabelId>& query_labels,
                                  const ProbGraph& instance, DwtStats* stats);

/// Same value via the explicit β-acyclic DNF lineage + Shannon engine.
/// `lineage_out`, if non-null, receives the DNF over instance edge ids.
template <class Num>
Result<Num> SolvePathOnDwtForestViaLineageT(
    const std::vector<LabelId>& query_labels, const ProbGraph& instance,
    MonotoneDnf* lineage_out, DwtStats* stats);

/// Prop. 3.6: arbitrary unlabeled query on a ⊔DWT instance. Grades the
/// query (probability 0 if not graded), collapses it to →^m, and delegates.
template <class Num>
Result<Num> SolveUnlabeledOnDwtForestT(const DiGraph& query,
                                       const ProbGraph& instance,
                                       DwtStats* stats);

extern template Result<Rational> SolvePathOnDwtForestT<Rational>(
    const std::vector<LabelId>&, const ProbGraph&, DwtStats*);
extern template Result<double> SolvePathOnDwtForestT<double>(
    const std::vector<LabelId>&, const ProbGraph&, DwtStats*);
extern template Result<IntervalDouble> SolvePathOnDwtForestT<IntervalDouble>(
    const std::vector<LabelId>&, const ProbGraph&, DwtStats*);
extern template Result<Rational> SolvePathOnDwtForestViaLineageT<Rational>(
    const std::vector<LabelId>&, const ProbGraph&, MonotoneDnf*, DwtStats*);
extern template Result<double> SolvePathOnDwtForestViaLineageT<double>(
    const std::vector<LabelId>&, const ProbGraph&, MonotoneDnf*, DwtStats*);
extern template Result<IntervalDouble>
SolvePathOnDwtForestViaLineageT<IntervalDouble>(const std::vector<LabelId>&,
                                                const ProbGraph&, MonotoneDnf*,
                                                DwtStats*);
extern template Result<Rational> SolveUnlabeledOnDwtForestT<Rational>(
    const DiGraph&, const ProbGraph&, DwtStats*);
extern template Result<double> SolveUnlabeledOnDwtForestT<double>(
    const DiGraph&, const ProbGraph&, DwtStats*);
extern template Result<IntervalDouble>
SolveUnlabeledOnDwtForestT<IntervalDouble>(const DiGraph&, const ProbGraph&,
                                           DwtStats*);

/// Exact-backend conveniences (the historical entry points).
inline Result<Rational> SolvePathOnDwtForest(
    const std::vector<LabelId>& query_labels, const ProbGraph& instance,
    DwtStats* stats = nullptr) {
  return SolvePathOnDwtForestT<Rational>(query_labels, instance, stats);
}
inline Result<Rational> SolvePathOnDwtForestViaLineage(
    const std::vector<LabelId>& query_labels, const ProbGraph& instance,
    MonotoneDnf* lineage_out = nullptr, DwtStats* stats = nullptr) {
  return SolvePathOnDwtForestViaLineageT<Rational>(query_labels, instance,
                                                   lineage_out, stats);
}
inline Result<Rational> SolveUnlabeledOnDwtForest(const DiGraph& query,
                                                  const ProbGraph& instance,
                                                  DwtStats* stats = nullptr) {
  return SolveUnlabeledOnDwtForestT<Rational>(query, instance, stats);
}

}  // namespace phom
