#include "src/core/algo_polytree.h"

#include <algorithm>

#include "src/automata/binary_encoding.h"
#include "src/automata/provenance.h"
#include "src/automata/tree_automaton.h"
#include "src/circuits/dnnf.h"
#include "src/graph/classify.h"
#include "src/graph/graded.h"

namespace phom {

template <class Num>
Result<Num> SolvePathProbabilityOnPolytreeT(uint32_t m,
                                            const ProbGraph& component,
                                            PolytreeStats* stats) {
  using Ops = NumericOps<Num>;
  if (m == 0) return Ops::One();
  if (component.num_edges() == 0) return Ops::Zero();
  PHOM_ASSIGN_OR_RETURN(EncodedPolytree tree, EncodePolytree(component));
  LongestRunAutomaton automaton(m);
  ProvenanceCircuit provenance = BuildProvenanceCircuit(automaton, tree);
  if (stats != nullptr) {
    stats->encoded_nodes += tree.nodes.size();
    stats->circuit_gates += provenance.circuit.num_gates();
    stats->state_pairs += provenance.state_pairs;
    stats->max_states_per_node =
        std::max(stats->max_states_per_node, provenance.max_states_per_node);
  }
  BackendProbs<Num> var_probs(provenance.var_probs);
  return DnnfProbabilityT<Num>(provenance.circuit, provenance.root_gate,
                               *var_probs);
}

template <class Num>
Result<Num> SolveDwtQueryOnPolytreeForestT(const DiGraph& query,
                                           const ProbGraph& instance,
                                           PolytreeStats* stats) {
  using Ops = NumericOps<Num>;
  Classification qc = Classify(query);
  if (!qc.all_dwt) {
    return Status::Invalid(
        "SolveDwtQueryOnPolytreeForest requires a ⊔DWT query");
  }
  if (query.num_edges() == 0) return Ops::One();
  // Prop. 5.5: the query is equivalent to →^m, m = max component height
  // = difference of levels.
  GradedAnalysis graded = AnalyzeGraded(query);
  PHOM_CHECK(graded.is_graded);
  uint32_t m = static_cast<uint32_t>(graded.difference_of_levels);

  // Lemma 3.7 across components.
  Num none = Ops::One();
  for (const ComponentView& comp : SplitComponents(instance)) {
    if (!IsPolytree(comp.graph.graph())) {
      return Status::Invalid("instance component is not a polytree");
    }
    PHOM_ASSIGN_OR_RETURN(
        Num p, SolvePathProbabilityOnPolytreeT<Num>(m, comp.graph, stats));
    none *= Ops::Complement(p);
  }
  return Ops::Complement(none);
}

template Result<Rational> SolvePathProbabilityOnPolytreeT<Rational>(
    uint32_t, const ProbGraph&, PolytreeStats*);
template Result<double> SolvePathProbabilityOnPolytreeT<double>(
    uint32_t, const ProbGraph&, PolytreeStats*);
template Result<IntervalDouble>
SolvePathProbabilityOnPolytreeT<IntervalDouble>(uint32_t, const ProbGraph&,
                                                PolytreeStats*);
template Result<Rational> SolveDwtQueryOnPolytreeForestT<Rational>(
    const DiGraph&, const ProbGraph&, PolytreeStats*);
template Result<double> SolveDwtQueryOnPolytreeForestT<double>(
    const DiGraph&, const ProbGraph&, PolytreeStats*);
template Result<IntervalDouble>
SolveDwtQueryOnPolytreeForestT<IntervalDouble>(const DiGraph&,
                                               const ProbGraph&,
                                               PolytreeStats*);

}  // namespace phom
