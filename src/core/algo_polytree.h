#pragma once

#include "src/graph/prob_graph.h"
#include "src/util/numeric.h"
#include "src/util/rational.h"
#include "src/util/result.h"

/// \file algo_polytree.h
/// Props. 5.4/5.5: PHom̸L(⊔DWT, PT) in PTIME via tree automata.
///
/// Per polytree component: encode as a full binary probabilistic tree
/// (Appendix C), run the deterministic ⟨↑, ↓, Max⟩ automaton symbolically by
/// building its provenance circuit — a d-DNNF because the automaton is
/// deterministic — and evaluate the circuit's probability bottom-up.
/// ⊔DWT queries first collapse to →^height (Prop. 5.5); components combine
/// by Lemma 3.7. Circuit construction is numeric-independent; only the
/// bottom-up evaluation pass runs in the selected backend.

namespace phom {

struct PolytreeStats {
  size_t encoded_nodes = 0;
  size_t circuit_gates = 0;
  size_t state_pairs = 0;
  size_t max_states_per_node = 0;
};

/// Pr(the world contains a directed path of m >= 1 edges) for a single
/// polytree component, in the numeric backend of `Num`.
template <class Num>
Result<Num> SolvePathProbabilityOnPolytreeT(uint32_t m,
                                            const ProbGraph& component,
                                            PolytreeStats* stats);

/// Full Props. 5.4/5.5 solver: unlabeled ⊔DWT query on a ⊔PT instance.
template <class Num>
Result<Num> SolveDwtQueryOnPolytreeForestT(const DiGraph& query,
                                           const ProbGraph& instance,
                                           PolytreeStats* stats);

extern template Result<Rational> SolvePathProbabilityOnPolytreeT<Rational>(
    uint32_t, const ProbGraph&, PolytreeStats*);
extern template Result<double> SolvePathProbabilityOnPolytreeT<double>(
    uint32_t, const ProbGraph&, PolytreeStats*);
extern template Result<IntervalDouble>
SolvePathProbabilityOnPolytreeT<IntervalDouble>(uint32_t, const ProbGraph&,
                                                PolytreeStats*);
extern template Result<Rational> SolveDwtQueryOnPolytreeForestT<Rational>(
    const DiGraph&, const ProbGraph&, PolytreeStats*);
extern template Result<double> SolveDwtQueryOnPolytreeForestT<double>(
    const DiGraph&, const ProbGraph&, PolytreeStats*);
extern template Result<IntervalDouble>
SolveDwtQueryOnPolytreeForestT<IntervalDouble>(const DiGraph&,
                                               const ProbGraph&,
                                               PolytreeStats*);

/// Exact-backend conveniences (the historical entry points).
inline Result<Rational> SolvePathProbabilityOnPolytree(
    uint32_t m, const ProbGraph& component, PolytreeStats* stats = nullptr) {
  return SolvePathProbabilityOnPolytreeT<Rational>(m, component, stats);
}
inline Result<Rational> SolveDwtQueryOnPolytreeForest(
    const DiGraph& query, const ProbGraph& instance,
    PolytreeStats* stats = nullptr) {
  return SolveDwtQueryOnPolytreeForestT<Rational>(query, instance, stats);
}

}  // namespace phom
