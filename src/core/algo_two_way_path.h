#pragma once

#include "src/graph/prob_graph.h"
#include "src/lineage/dnf.h"
#include "src/util/arena.h"
#include "src/util/numeric.h"
#include "src/util/rational.h"
#include "src/util/result.h"

/// \file algo_two_way_path.h
/// Prop. 4.11: PHom(Connected, 2WP) in PTIME, labeled or not.
///
/// Pipeline (the three-step scheme of §4.2):
///  1. enumerate candidate matches = connected subpaths of the instance path;
///     by monotonicity only the inclusion-minimal homomorphic subpaths
///     matter, found with a two-pointer sweep (min right endpoint is
///     monotone in the left endpoint), so O(L) X-property homomorphism
///     tests suffice;
///  2. each test uses arc consistency, valid because every subpath has the
///     X-property w.r.t. the path order (Theorem 4.13);
///  3. the lineage is an interval DNF — β-acyclic by eliminating edges from
///     the path's end inward — evaluated by the O(L²) run-length DP.

namespace phom {

struct TwoWayPathStats {
  size_t hom_tests = 0;
  size_t minimal_intervals = 0;
};

/// Pr(query ⇝ component) for a connected query with >= 1 edge on a single
/// 2WP component, in the numeric backend of `Num`. `lineage_out`, if
/// non-null, receives the interval DNF over the component's edge ids (for
/// β-acyclicity checks and ablations). `scratch_arena`, if non-null, backs
/// the sweep's homomorphism-test scratch (util/arena.h; the serve executor
/// threads its per-task arena here via SolveOptions::scratch) — null falls
/// back to a kernel-local arena, identical results either way.
template <class Num>
Result<Num> SolveConnectedOn2wpComponentT(const DiGraph& query,
                                          const ProbGraph& component,
                                          TwoWayPathStats* stats,
                                          MonotoneDnf* lineage_out,
                                          MonotonicArena* scratch_arena =
                                              nullptr);

extern template Result<Rational> SolveConnectedOn2wpComponentT<Rational>(
    const DiGraph&, const ProbGraph&, TwoWayPathStats*, MonotoneDnf*,
    MonotonicArena*);
extern template Result<double> SolveConnectedOn2wpComponentT<double>(
    const DiGraph&, const ProbGraph&, TwoWayPathStats*, MonotoneDnf*,
    MonotonicArena*);
extern template Result<IntervalDouble>
SolveConnectedOn2wpComponentT<IntervalDouble>(const DiGraph&, const ProbGraph&,
                                              TwoWayPathStats*, MonotoneDnf*,
                                              MonotonicArena*);

/// Exact-backend convenience (the historical entry point).
inline Result<Rational> SolveConnectedOn2wpComponent(
    const DiGraph& query, const ProbGraph& component,
    TwoWayPathStats* stats = nullptr, MonotoneDnf* lineage_out = nullptr) {
  return SolveConnectedOn2wpComponentT<Rational>(query, component, stats,
                                                 lineage_out);
}

}  // namespace phom
