#pragma once

#include <optional>

#include "src/core/case.h"
#include "src/core/fallback.h"
#include "src/graph/prob_graph.h"
#include "src/util/rational.h"
#include "src/util/result.h"

/// \file solver.h
/// The PHom solver: Pr(G ⇝ H) for a query graph G and probabilistic
/// instance (H, π). Dispatches per the dichotomy of Tables 1–3:
///
///   * trivial/collapse preparation (case.h);
///   * connected queries are solved per instance component and combined by
///     Lemma 3.7, each component with the finest applicable algorithm
///     (Prop. 4.11 on 2WPs; Prop. 4.10 / 3.6 on DWTs; Props. 5.4/5.5 on
///     polytrees) — this also covers instances mixing component classes;
///   * anything in a #P-hard cell falls back to the exact exponential
///     solver, subject to FallbackOptions limits.

namespace phom {

struct SolveOptions {
  /// Force a specific algorithm (ablations / cross-checks). NotSupported if
  /// the algorithm does not apply to the prepared problem.
  std::optional<Algorithm> force_algorithm;
  /// Use the lineage+Shannon engine instead of the direct DP on DWTs.
  bool dwt_via_lineage = false;
  FallbackOptions fallback;
};

struct SolveStats {
  Algorithm primary = Algorithm::kTrivial;
  size_t components = 0;
  size_t fallback_components = 0;
  uint64_t worlds = 0;             ///< worlds enumerated by fallbacks
  size_t hom_tests = 0;            ///< X-property AC calls (Prop. 4.11)
  size_t lineage_clauses = 0;      ///< interval/match clauses built
  size_t circuit_gates = 0;        ///< provenance circuit size (Prop. 5.4)
  size_t match_ends = 0;           ///< DWT match ends (Prop. 4.10)
};

struct SolveResult {
  Rational probability;
  CaseAnalysis analysis;
  SolveStats stats;
};

class Solver {
 public:
  explicit Solver(SolveOptions options = {}) : options_(std::move(options)) {}

  Result<SolveResult> Solve(const DiGraph& query,
                            const ProbGraph& instance) const;

 private:
  SolveOptions options_;
};

/// One-call convenience.
Result<Rational> SolveProbability(const DiGraph& query,
                                  const ProbGraph& instance,
                                  const SolveOptions& options = {});

/// The unweighted counting view (the paper's future-work "counting CSP"
/// variant where every probability is 1/2): the number of subgraphs of
/// `instance` to which `query` has a homomorphism. Computed as
/// Pr(G ⇝ H_{π≡1/2}) · 2^|E|, which is exact by construction.
Result<BigInt> CountSatisfyingWorlds(const DiGraph& query,
                                     const DiGraph& instance,
                                     const SolveOptions& options = {});

}  // namespace phom
