#pragma once

#include <chrono>
#include <cstdint>
#include <limits>
#include <optional>
#include <string>
#include <vector>

#include "src/core/case.h"
#include "src/core/fallback.h"
#include "src/core/monte_carlo.h"
#include "src/graph/prob_graph.h"
#include "src/util/arena.h"
#include "src/util/numeric.h"
#include "src/util/rational.h"
#include "src/util/result.h"
#include "src/util/status.h"

/// \file solver.h
/// The PHom solver: Pr(G ⇝ H) for a query graph G and probabilistic
/// instance (H, π). Dispatches per the dichotomy of Tables 1–3:
///
///   * trivial/collapse preparation (case.h);
///   * the prepared problem is routed through the engine registry
///     (engine.h): connected queries are solved per instance component and
///     combined by Lemma 3.7, each component with the finest applicable
///     algorithm (Prop. 4.11 on 2WPs; Prop. 4.10 / 3.6 on DWTs; Props.
///     5.4/5.5 on polytrees) — this also covers instances mixing component
///     classes;
///   * anything in a #P-hard cell falls back to the exact exponential
///     solver, subject to FallbackOptions limits.
///
/// Probability arithmetic runs in the numeric backend selected by
/// SolveOptions::numeric (exact rationals by default; see util/numeric.h).

namespace phom {

class Engine;
struct Ucq;  // src/graph/ucq.h

// CancelToken (cooperative interruption) lives in src/util/status.h so the
// leaf kernels can hold one; dispatch consults it before each component
// subproblem of a componentwise engine (Lemma 3.7 loop), and the kernels
// consult it INSIDE their world-enumeration / match-enumeration / sampling
// loops (FallbackOptions / MonteCarloOptions).

/// When a serving layer may convert a deadline-threatened exact solve into
/// a budgeted Monte Carlo estimate (à la Amarilli–van Bremen–Gaspard–Meel
/// 2023: an FPRAS exists for exactly the #P-hard cells that miss
/// deadlines).
enum class DegradeMode : uint8_t {
  kOff = 0,          ///< deadline misses fail with DeadlineExceeded (default)
  kOnDeadlineRisk,   ///< re-dispatch to the Monte Carlo estimator instead
};

/// Per-request (or session-default) graceful-degradation policy. With mode
/// kOnDeadlineRisk, a request whose exact solve hits DeadlineExceeded — at
/// dequeue, between components, or inside a hard cell via the in-component
/// yield points — is re-solved by budgeted Monte Carlo sampling with the
/// remaining time budget, and the result carries DegradeInfo provenance.
/// Explicit cancellation (CancelToken::Cancel) is never degraded: the
/// caller asked for the request to stop, not for an estimate.
struct DegradePolicy {
  DegradeMode mode = DegradeMode::kOff;
  /// A degraded estimate is backed by at least this many samples even when
  /// the deadline has already lapsed (bounded overrun: ~min_samples hom
  /// tests is the price of an answer instead of an error). Clamped to >= 1.
  uint64_t min_samples = 512;
  /// Stop sampling early once the 95% confidence half-width reaches this
  /// target ε (0 = sample until the deadline or max_samples).
  double target_half_width = 0.0;
  /// Stop sampling early once the RELATIVE 95% error — half-width divided by
  /// a certified deterministic lower bound on the answer (best single-match
  /// probability of the lineage; monte_carlo.h) — reaches this target
  /// (0 = disabled). The multiplicative guarantee of the FPRAS in
  /// Amarilli–van Bremen–Gaspard–Meel 2023: meaningful even when the answer
  /// itself is tiny, where an absolute ε is vacuously satisfied.
  double target_relative_error = 0.0;
  /// Hard cap on degraded sampling.
  uint64_t max_samples = 1'000'000;
};

/// THE degrade trigger, shared by every conversion site (EvalSession's
/// serial path and the serve executor's gates/merges must never drift):
/// only a deadline miss converts — explicit cancellation and every other
/// error pass through — and only under mode kOnDeadlineRisk.
inline bool ShouldDegradeStatus(const Status& status,
                                const DegradePolicy& policy) {
  return status.code() == Status::Code::kDeadlineExceeded &&
         policy.mode == DegradeMode::kOnDeadlineRisk;
}

/// When a serving layer may RE-RUN a certified-interval answer under the
/// exact backend because its enclosure came back too wide — the mirror image
/// of DegradePolicy: degradation trades precision for latency under deadline
/// pressure; escalation trades latency for precision under width pressure.
enum class EscalationMode : uint8_t {
  kOff = 0,        ///< wide enclosures are published as-is (default)
  kOnWideResult,   ///< re-dispatch to the exact backend when too wide
};

/// Per-request (or session-default) width-escalation policy, acted on by the
/// serve executor (serve/executor.h). With mode kOnWideResult, a successful
/// kIntervalDouble solve whose certified enclosure width (hi − lo) exceeds
/// the target is re-solved under NumericBackend::kExact on the same thread —
/// provided the request's deadline (if any) has not lapsed and the cost
/// model (if any) predicts the exact re-run fits the remaining budget. The
/// escalated result carries SolveResult::escalate provenance and is exactly
/// the answer a cold exact solve would have produced (bit-identical: same
/// prepared problem, same engine resolution, exact arithmetic).
struct EscalationPolicy {
  EscalationMode mode = EscalationMode::kOff;
  /// Escalate when hi − lo > max_width (0 = the absolute trigger is off).
  double max_width = 0.0;
  /// Escalate when hi − lo > target_relative_width · hi (0 = the relative
  /// trigger is off). Relative to hi, the certified upper bound: sound even
  /// when lo == 0, where width / answer would divide by zero.
  double target_relative_width = 0.0;
};

/// THE escalation trigger, shared by every site that inspects a width (the
/// serve executor's finish hook and its admission pricing must never drift):
/// a certified enclosure escalates when EITHER enabled trigger fires. A
/// non-finite width (NaN from an invalid enclosure, inf) compares true
/// against any threshold — an invalid enclosure is the widest possible one.
inline bool ShouldEscalateWidth(double width, double hi,
                                const EscalationPolicy& policy) {
  if (policy.mode != EscalationMode::kOnWideResult) return false;
  // NaN or negative width: the enclosure invariant broke (hi < lo or a NaN
  // endpoint) — escalate on any armed trigger, never publish silently.
  const bool invalid = !(width >= 0.0);
  if (invalid) return policy.max_width > 0.0 || policy.target_relative_width > 0.0;
  if (policy.max_width > 0.0 && width > policy.max_width) return true;
  return policy.target_relative_width > 0.0 &&
         width > policy.target_relative_width * hi;
}

/// Degradation provenance, set on results produced by the Monte Carlo
/// degradation path (SolveDegradedMonteCarlo / the serve layer's
/// DegradePolicy re-dispatch), and on forced "monte-carlo" engine runs
/// whose sampling was truncated by a lapsed deadline. All-default on exact
/// results.
struct DegradeInfo {
  /// The result is a Monte Carlo ESTIMATE, not the exact probability.
  bool degraded = false;
  /// The degradation was decided PROACTIVELY at admission: the serve layer's
  /// cost model predicted the exact solve could not fit the remaining budget,
  /// so the exact attempt was skipped entirely (serve/cost_model.h). False
  /// for reactive conversions, which fire only after a deadline actually
  /// lapsed mid-solve or in the queue.
  bool proactive = false;
  /// The estimate (== probability_double; duplicated so provenance survives
  /// callers that only forward the numeric fields).
  double estimate = 0.0;
  /// 95% confidence half-width of the estimate.
  double half_width_95 = 0.0;
  /// Certified deterministic lower bound on the true probability (the best
  /// single-match product over the enumerated lineage; 0 when the relative
  /// stop rule was off or no positive-probability match was found).
  double lower_bound = 0.0;
  /// RELATIVE 95% error: half_width_95 / lower_bound. Infinity when no
  /// positive lower bound is available; 0 on the exact-zero certificate
  /// (no match exists, so the estimate is not an estimate at all).
  /// Meaningful only on degraded/Monte Carlo results (0 otherwise).
  double relative_error_95 = 0.0;
  /// Samples backing the estimate.
  uint64_t samples_used = 0;
  /// Wall time the degraded sampling run consumed.
  std::chrono::nanoseconds budget_spent{0};
};

/// Escalation provenance, set by the serve executor on results it re-ran
/// under the exact backend after a too-wide certified enclosure. All-default
/// on every other result (in particular on results whose width met the
/// target, and everywhere EscalationMode::kOff).
struct EscalateInfo {
  /// The published answer is the EXACT re-run, not the interval solve.
  bool escalated = false;
  /// Enclosure width (hi − lo) of the interval answer that triggered the
  /// re-run (NaN when the trigger was an invalid hi < lo enclosure).
  double width_before = 0.0;
  /// Wall time the exact re-run consumed (on top of the interval solve).
  std::chrono::nanoseconds budget_spent{0};
};

struct SolveOptions {
  /// Force a specific algorithm (ablations / cross-checks). NotSupported if
  /// the algorithm's engine does not apply to the prepared problem.
  std::optional<Algorithm> force_algorithm;
  /// Force an engine by registry name (see engine.h); takes precedence over
  /// force_algorithm. Invalid if no such engine is registered, NotSupported
  /// if it does not apply to the prepared problem.
  std::string force_engine;
  /// Use the lineage+Shannon engine instead of the direct DP on DWTs.
  bool dwt_via_lineage = false;
  /// Numeric backend for probability arithmetic (exact by default).
  NumericBackend numeric = NumericBackend::kExact;
  FallbackOptions fallback;
  /// Budget/seed for the (non-exact) "monte-carlo" engine, which is only
  /// reachable via force_engine or the degradation path.
  MonteCarloOptions monte_carlo;
  uint64_t monte_carlo_seed = 20170514;
  /// Graceful degradation under deadline pressure (serve layer /
  /// EvalSession::Solve): see DegradePolicy. Off by default.
  DegradePolicy degrade;
  /// Width-triggered escalation of too-wide interval enclosures (acted on by
  /// the serve executor only; see EscalationPolicy). Off by default.
  EscalationPolicy escalate;
  /// Cooperative interruption hook (non-owning; null = never interrupted).
  /// Checked before each component subproblem of a componentwise dispatch
  /// AND inside the fallback/Monte Carlo loops (dispatch copies this
  /// pointer into FallbackOptions/MonteCarloOptions, overriding any token
  /// set there when non-null; a token set directly on those options is
  /// honored otherwise); see CancelToken (util/status.h). The pointee must
  /// outlive the solve.
  const CancelToken* cancel = nullptr;
  /// Per-task scratch arena (util/arena.h) threaded down to allocation-hot
  /// kernels (currently the 2WP minimal-window sweep and its
  /// XPropertyHomomorphism scratch). Non-owning; null = kernels fall back
  /// to a solve-local arena, with identical results. NOT thread-safe: the
  /// pointee must be used by one solve at a time (the serve executor gives
  /// each worker its own arena and resets it between tasks). Never affects
  /// answers — scratch memory only.
  MonotonicArena* scratch = nullptr;
};

/// The per-request knobs a serving layer may override on top of a session's
/// base SolveOptions (serve::SolveRequest carries one of these). Unset
/// fields inherit the base; preparation/caching is unaffected because
/// instance contexts depend only on the query's label set.
struct SolveOverrides {
  std::optional<NumericBackend> numeric;
  std::optional<std::string> force_engine;
  std::optional<uint64_t> monte_carlo_seed;
  std::optional<DegradePolicy> degrade;
  /// Overrides degrade.target_relative_error ALONE, composing with a base
  /// policy (set `degrade` to replace the whole policy instead).
  std::optional<double> target_relative_error;
  /// Replaces the whole width-escalation policy (EscalationPolicy).
  std::optional<EscalationPolicy> escalate;
  /// Overrides escalate.max_width ALONE (and forces mode kOnWideResult when
  /// > 0), composing with a base policy — the WithMaxWidth fluent setter.
  std::optional<double> max_width;
};

SolveOptions ApplyOverrides(SolveOptions base, const SolveOverrides& overrides);

struct SolveStats {
  Algorithm primary = Algorithm::kTrivial;
  std::string engine;              ///< registry name of the engine that ran
  size_t components = 0;
  size_t fallback_components = 0;
  uint64_t worlds = 0;             ///< worlds enumerated/sampled by fallbacks
  size_t hom_tests = 0;            ///< X-property AC calls (Prop. 4.11)
  size_t lineage_clauses = 0;      ///< interval/match clauses built
  size_t circuit_gates = 0;        ///< provenance circuit size (Prop. 5.4)
  size_t match_ends = 0;           ///< DWT match ends (Prop. 4.10)
  /// UCQ provenance (lifted-ucq solves only; zero/empty otherwise):
  /// disjuncts of the normalized union and engine-solved plan units.
  size_t ucq_disjuncts = 0;
  size_t ucq_units = 0;
  /// "lifted" when the compiled plan is safe (every leaf in a PTIME cell),
  /// "not-liftable: <reason>" when hard leaves ran exponential engines;
  /// empty for non-UCQ solves.
  std::string ucq_verdict;
  /// Wall time of the engine run that produced this result (summed over
  /// component results by CombinePreparedComponents; zero for immediate
  /// answers, the sampling time for degraded estimates). Observability only
  /// — it feeds the serve layer's latency cost model (serve/cost_model.h)
  /// and never influences the answer.
  std::chrono::nanoseconds duration{0};
};

/// A [lo, hi] bracket on the true probability, attached to every answer.
struct ProbabilityBound {
  double lo = 0.0;
  double hi = 1.0;
  /// True when [lo, hi] PROVABLY contains the exact answer: the exact
  /// backend reports an outward-rounded point (proven by Rational::FromDouble
  /// comparison), the interval backend its directed-rounding enclosure.
  /// False for plain-double answers (vacuous [0, 1]) and Monte Carlo
  /// estimates (estimate ± half-width — a 95% statistical bracket, not a
  /// certificate).
  bool certified = false;
};

/// Certified outward-rounded point enclosure of an exactly-known answer
/// (NumericOps<IntervalDouble>::From proves it by Rational comparison).
/// Shared by dispatch, the component merges, and the lifted UCQ combine.
ProbabilityBound CertifiedPointBound(const Rational& p);

/// The error story an answer carries — the provenance column the serve
/// layer surfaces per request (serve/request.h).
enum class Guarantee : uint8_t {
  kExact = 0,          ///< exact Rational answer (or exact-zero certificate)
  kIntervalEnclosure,  ///< machine-checked [lo, hi] enclosure (certified)
  kEmpiricalDouble,    ///< plain double: ~1e-12 validated empirically only
  kAbsolute95,         ///< MC estimate with additive 95% half-width
  kRelative95,         ///< MC estimate with certified relative 95% bound
};

inline const char* ToString(Guarantee g) {
  switch (g) {
    case Guarantee::kExact: return "exact";
    case Guarantee::kIntervalEnclosure: return "interval-enclosure";
    case Guarantee::kEmpiricalDouble: return "empirical-double";
    case Guarantee::kAbsolute95: return "absolute-95";
    case Guarantee::kRelative95: return "relative-95";
  }
  PHOM_CHECK_MSG(false, "unknown Guarantee value");
}

struct SolveResult {
  /// Exact answer; meaningful only with NumericBackend::kExact (it stays
  /// zero under the double backends — use probability_double there).
  Rational probability;
  /// The answer as a double under ALL backends (for kExact it is the
  /// rounded exact answer; for kIntervalDouble the enclosure midpoint).
  double probability_double = 0.0;
  /// Bracket on the true probability; see ProbabilityBound for when it is a
  /// certificate vs. a statistical/vacuous bracket.
  ProbabilityBound bound;
  /// Certified relative 95% error of a Monte Carlo answer (== the final
  /// degrade.relative_error_95); 0 for non-statistical answers.
  double relative_error_95 = 0.0;
  /// The backend the answer was computed in.
  NumericBackend numeric = NumericBackend::kExact;
  CaseAnalysis analysis;
  SolveStats stats;
  /// Degradation provenance: degrade.degraded is true iff this result is a
  /// budgeted Monte Carlo estimate produced under deadline pressure (then
  /// probability_double == degrade.estimate, and `probability` is the
  /// exactly-represented hits/samples under the exact backend).
  DegradeInfo degrade;
  /// Width-escalation provenance: escalate.escalated is true iff this result
  /// is an exact re-run of a too-wide interval answer (serve layer only).
  EscalateInfo escalate;
};

/// The guarantee `result` carries, derived from its provenance: exact-zero
/// certificates and immediate answers are kExact even on approximate
/// backends; statistical answers (degraded or the forced "monte-carlo"
/// engine) are kRelative95 when a certified positive lower bound made the
/// relative error finite, else kAbsolute95.
inline Guarantee GuaranteeOf(const SolveResult& result) {
  // A certified POINT bound means the answer is exactly known, whatever
  // route produced it — immediate answers on approximate backends, the
  // estimator's exact-zero certificate, point interval enclosures.
  if (result.bound.certified && result.bound.lo == result.bound.hi) {
    return Guarantee::kExact;
  }
  const bool statistical =
      result.degrade.degraded || result.stats.engine == "monte-carlo";
  if (statistical) {
    if (result.degrade.lower_bound > 0.0 &&
        result.relative_error_95 <
            std::numeric_limits<double>::infinity()) {
      return Guarantee::kRelative95;
    }
    return Guarantee::kAbsolute95;
  }
  switch (result.numeric) {
    case NumericBackend::kExact: return Guarantee::kExact;
    case NumericBackend::kIntervalDouble: return Guarantee::kIntervalEnclosure;
    case NumericBackend::kDouble: return Guarantee::kEmpiricalDouble;
  }
  PHOM_CHECK_MSG(false, "unknown NumericBackend value");
}

class Solver {
 public:
  explicit Solver(SolveOptions options = {}) : options_(std::move(options)) {}

  Result<SolveResult> Solve(const DiGraph& query,
                            const ProbGraph& instance) const;

  /// UCQ front door: prepares the union through lifted::PrepareUcq (a union
  /// that normalizes to one disjunct takes the single-CQ path above,
  /// bit-identically) and solves through the same engine registry.
  Result<SolveResult> SolveUcq(const Ucq& ucq,
                               const ProbGraph& instance) const;

 private:
  SolveOptions options_;
};

/// Solves an already-prepared problem through the engine registry. This is
/// the shared back half of Solver::Solve and EvalSession::Solve.
Result<SolveResult> SolvePrepared(const PreparedProblem& prepared,
                                  const SolveOptions& options);

/// Budgeted Monte Carlo degradation of a deadline-threatened request: the
/// back half of DegradePolicy. Re-solves `prepared` with the Monte Carlo
/// estimator under options.degrade's budget (min_samples floor, optional
/// target ε, max_samples cap), honoring options.cancel — an expired
/// deadline truncates sampling once min_samples are in; an explicit cancel
/// aborts with Cancelled. The result carries full DegradeInfo provenance
/// (estimate, half-width, samples_used, budget_spent). Problems whose
/// prepared answer is immediate return that EXACT answer un-degraded (it is
/// free). Deterministic per (prepared, seed, stop cause).
Result<SolveResult> SolveDegradedMonteCarlo(const PreparedProblem& prepared,
                                            const SolveOptions& options);

// ---------------------------------------------------------------------------
// Within-query component parallelism (used by the serve layer, serve/).
//
// When dispatch routes a prepared problem through a componentwise engine
// (Engine::componentwise(): the Lemma 3.7 per-component combine), the
// component subproblems are independent and may be solved on different
// threads. PlanComponentDispatch resolves the engine ONCE per query (the
// registry scan takes a shared_mutex — re-resolving per component task made
// the lock a hot spot under fan-out); SolvePreparedComponent solves one
// component against the plan; the index-ordered CombinePreparedComponents
// merge then reproduces SolvePrepared's answer BIT FOR BIT (same operations
// in the same order, in both numeric backends).
// ---------------------------------------------------------------------------

/// A componentwise dispatch plan: the engine resolved once per query, shared
/// by every component task. Valid for the registry's lifetime (engines are
/// never removed).
struct ComponentDispatch {
  /// Non-null iff the problem should be fanned out (then componentwise).
  const Engine* engine = nullptr;
  /// The selection was forced (the caller reports the engine's own
  /// algorithm as primary, exactly like SolvePrepared).
  bool forced = false;
  /// Independent component subproblems, 0 when the problem is not
  /// componentwise (immediate answers, whole-forest engines, engine-
  /// selection errors — which must surface through the ordinary
  /// SolvePrepared path, identically — or fewer than two components);
  /// callers solve such problems with one SolvePrepared call.
  size_t components = 0;
};

ComponentDispatch PlanComponentDispatch(const PreparedProblem& prepared,
                                        const SolveOptions& options);

/// Convenience: PlanComponentDispatch(prepared, options).components.
size_t PreparedComponentParallelism(const PreparedProblem& prepared,
                                    const SolveOptions& options);

/// Solves component `component_index` only, against a plan from
/// PlanComponentDispatch (requires dispatch.engine != nullptr and
/// component_index < dispatch.components — no registry access happens
/// here). The result's probability is the component's own success
/// probability (NOT yet combined) plus that component's stats.
Result<SolveResult> SolvePreparedComponent(const PreparedProblem& prepared,
                                           const ComponentDispatch& dispatch,
                                           size_t component_index,
                                           const SolveOptions& options);

/// Merges per-component results (aligned with component indices) into the
/// answer SolvePrepared would produce: first failing component's status in
/// index order, else the Lemma 3.7 combine and summed stats.
Result<SolveResult> CombinePreparedComponents(
    const PreparedProblem& prepared, const ComponentDispatch& dispatch,
    const SolveOptions& options, std::vector<Result<SolveResult>> components);

/// One-call convenience. Always exact: a stray options.numeric = kDouble is
/// overridden to kExact (the Rational return type promises exactness).
Result<Rational> SolveProbability(const DiGraph& query,
                                  const ProbGraph& instance,
                                  const SolveOptions& options = {});

/// One-call convenience for the double backend (options.numeric is
/// overridden to kDouble).
Result<double> SolveProbabilityDouble(const DiGraph& query,
                                      const ProbGraph& instance,
                                      SolveOptions options = {});

/// The unweighted counting view (the paper's future-work "counting CSP"
/// variant where every probability is 1/2): the number of subgraphs of
/// `instance` to which `query` has a homomorphism. Computed as
/// Pr(G ⇝ H_{π≡1/2}) · 2^|E|, which is exact by construction.
Result<BigInt> CountSatisfyingWorlds(const DiGraph& query,
                                     const DiGraph& instance,
                                     const SolveOptions& options = {});

}  // namespace phom
