#pragma once

#include <atomic>
#include <chrono>
#include <optional>
#include <string>

#include "src/core/case.h"
#include "src/core/fallback.h"
#include "src/core/monte_carlo.h"
#include "src/graph/prob_graph.h"
#include "src/util/numeric.h"
#include "src/util/rational.h"
#include "src/util/result.h"

/// \file solver.h
/// The PHom solver: Pr(G ⇝ H) for a query graph G and probabilistic
/// instance (H, π). Dispatches per the dichotomy of Tables 1–3:
///
///   * trivial/collapse preparation (case.h);
///   * the prepared problem is routed through the engine registry
///     (engine.h): connected queries are solved per instance component and
///     combined by Lemma 3.7, each component with the finest applicable
///     algorithm (Prop. 4.11 on 2WPs; Prop. 4.10 / 3.6 on DWTs; Props.
///     5.4/5.5 on polytrees) — this also covers instances mixing component
///     classes;
///   * anything in a #P-hard cell falls back to the exact exponential
///     solver, subject to FallbackOptions limits.
///
/// Probability arithmetic runs in the numeric backend selected by
/// SolveOptions::numeric (exact rationals by default; see util/numeric.h).

namespace phom {

/// Cooperative interruption for long solves (the serve layer's deadline and
/// cancellation support). Dispatch consults the token at well-defined
/// yield points — before each component subproblem of a componentwise
/// engine (Lemma 3.7 loop) — and aborts with DeadlineExceeded / Cancelled
/// when it fires. A token that never fires changes nothing: the answer is
/// bit-identical to solving without one.
///
/// Thread safety: Cancel/cancelled/Check may race freely (the flag is
/// atomic). SetDeadline is NOT synchronized — set it before sharing the
/// token with solving threads.
class CancelToken {
 public:
  using Clock = std::chrono::steady_clock;

  /// Requests cancellation. Cooperative: a solve already past its last
  /// yield point still completes normally.
  void Cancel() { cancelled_.store(true, std::memory_order_relaxed); }
  bool cancelled() const {
    return cancelled_.load(std::memory_order_relaxed);
  }

  /// Absolute deadline; call before handing the token to solving threads.
  void SetDeadline(Clock::time_point deadline) { deadline_ = deadline; }
  bool has_deadline() const {
    return deadline_ != Clock::time_point::max();
  }
  bool expired() const {
    return has_deadline() && Clock::now() >= deadline_;
  }

  /// OK while the computation may continue; otherwise Cancelled (checked
  /// first: an explicit cancel beats a deadline that lapsed in parallel)
  /// or DeadlineExceeded.
  Status Check() const;

 private:
  std::atomic<bool> cancelled_{false};
  Clock::time_point deadline_ = Clock::time_point::max();
};

struct SolveOptions {
  /// Force a specific algorithm (ablations / cross-checks). NotSupported if
  /// the algorithm's engine does not apply to the prepared problem.
  std::optional<Algorithm> force_algorithm;
  /// Force an engine by registry name (see engine.h); takes precedence over
  /// force_algorithm. Invalid if no such engine is registered, NotSupported
  /// if it does not apply to the prepared problem.
  std::string force_engine;
  /// Use the lineage+Shannon engine instead of the direct DP on DWTs.
  bool dwt_via_lineage = false;
  /// Numeric backend for probability arithmetic (exact by default).
  NumericBackend numeric = NumericBackend::kExact;
  FallbackOptions fallback;
  /// Budget/seed for the (non-exact) "monte-carlo" engine, which is only
  /// reachable via force_engine.
  MonteCarloOptions monte_carlo;
  uint64_t monte_carlo_seed = 20170514;
  /// Cooperative interruption hook (non-owning; null = never interrupted).
  /// Checked before each component subproblem of a componentwise dispatch;
  /// see CancelToken. The pointee must outlive the solve.
  const CancelToken* cancel = nullptr;
};

/// The per-request knobs a serving layer may override on top of a session's
/// base SolveOptions (serve::SolveRequest carries one of these). Unset
/// fields inherit the base; preparation/caching is unaffected because
/// instance contexts depend only on the query's label set.
struct SolveOverrides {
  std::optional<NumericBackend> numeric;
  std::optional<std::string> force_engine;
  std::optional<uint64_t> monte_carlo_seed;
};

SolveOptions ApplyOverrides(SolveOptions base, const SolveOverrides& overrides);

struct SolveStats {
  Algorithm primary = Algorithm::kTrivial;
  std::string engine;              ///< registry name of the engine that ran
  size_t components = 0;
  size_t fallback_components = 0;
  uint64_t worlds = 0;             ///< worlds enumerated/sampled by fallbacks
  size_t hom_tests = 0;            ///< X-property AC calls (Prop. 4.11)
  size_t lineage_clauses = 0;      ///< interval/match clauses built
  size_t circuit_gates = 0;        ///< provenance circuit size (Prop. 5.4)
  size_t match_ends = 0;           ///< DWT match ends (Prop. 4.10)
};

struct SolveResult {
  /// Exact answer; meaningful only with NumericBackend::kExact (it stays
  /// zero under the double backend — use probability_double there).
  Rational probability;
  /// The answer as a double under BOTH backends (for kExact it is the
  /// rounded exact answer).
  double probability_double = 0.0;
  /// The backend the answer was computed in.
  NumericBackend numeric = NumericBackend::kExact;
  CaseAnalysis analysis;
  SolveStats stats;
};

class Solver {
 public:
  explicit Solver(SolveOptions options = {}) : options_(std::move(options)) {}

  Result<SolveResult> Solve(const DiGraph& query,
                            const ProbGraph& instance) const;

 private:
  SolveOptions options_;
};

/// Solves an already-prepared problem through the engine registry. This is
/// the shared back half of Solver::Solve and EvalSession::Solve.
Result<SolveResult> SolvePrepared(const PreparedProblem& prepared,
                                  const SolveOptions& options);

// ---------------------------------------------------------------------------
// Within-query component parallelism (used by the serve layer, serve/).
//
// When dispatch routes a prepared problem through a componentwise engine
// (Engine::componentwise(): the Lemma 3.7 per-component combine), the
// component subproblems are independent and may be solved on different
// threads. SolvePreparedComponent solves one component; the index-ordered
// CombinePreparedComponents merge then reproduces SolvePrepared's answer BIT
// FOR BIT (same operations in the same order, in both numeric backends).
// ---------------------------------------------------------------------------

/// Number of independent component subproblems dispatch would solve for
/// `prepared` under `options`, or 0 when the problem is not componentwise
/// (immediate answers, whole-forest engines, engine-selection errors, fewer
/// than two components) — callers solve such problems with one SolvePrepared
/// call.
size_t PreparedComponentParallelism(const PreparedProblem& prepared,
                                    const SolveOptions& options);

/// Solves component `component_index` only. Requires
/// component_index < PreparedComponentParallelism(prepared, options).
/// The result's probability is the component's own success probability
/// (NOT yet combined) plus that component's stats.
Result<SolveResult> SolvePreparedComponent(const PreparedProblem& prepared,
                                           size_t component_index,
                                           const SolveOptions& options);

/// Merges per-component results (aligned with component indices) into the
/// answer SolvePrepared would produce: first failing component's status in
/// index order, else the Lemma 3.7 combine and summed stats.
Result<SolveResult> CombinePreparedComponents(
    const PreparedProblem& prepared, const SolveOptions& options,
    std::vector<Result<SolveResult>> components);

/// One-call convenience. Always exact: a stray options.numeric = kDouble is
/// overridden to kExact (the Rational return type promises exactness).
Result<Rational> SolveProbability(const DiGraph& query,
                                  const ProbGraph& instance,
                                  const SolveOptions& options = {});

/// One-call convenience for the double backend (options.numeric is
/// overridden to kDouble).
Result<double> SolveProbabilityDouble(const DiGraph& query,
                                      const ProbGraph& instance,
                                      SolveOptions options = {});

/// The unweighted counting view (the paper's future-work "counting CSP"
/// variant where every probability is 1/2): the number of subgraphs of
/// `instance` to which `query` has a homomorphism. Computed as
/// Pr(G ⇝ H_{π≡1/2}) · 2^|E|, which is exact by construction.
Result<BigInt> CountSatisfyingWorlds(const DiGraph& query,
                                     const DiGraph& instance,
                                     const SolveOptions& options = {});

}  // namespace phom
