#include "src/hom/backtrack.h"

#include <algorithm>
#include <queue>

namespace phom {

namespace {

/// BFS order over the query's underlying undirected graph so that each
/// assigned vertex (after the first of its component) has at least one
/// previously-assigned neighbor, enabling candidate propagation.
std::vector<VertexId> ConnectivityOrder(const DiGraph& query) {
  std::vector<VertexId> order;
  order.reserve(query.num_vertices());
  std::vector<bool> seen(query.num_vertices(), false);
  for (VertexId start = 0; start < query.num_vertices(); ++start) {
    if (seen[start]) continue;
    std::queue<VertexId> queue;
    queue.push(start);
    seen[start] = true;
    while (!queue.empty()) {
      VertexId v = queue.front();
      queue.pop();
      order.push_back(v);
      for (EdgeId e : query.OutEdges(v)) {
        VertexId w = query.edge(e).dst;
        if (!seen[w]) {
          seen[w] = true;
          queue.push(w);
        }
      }
      for (EdgeId e : query.InEdges(v)) {
        VertexId w = query.edge(e).src;
        if (!seen[w]) {
          seen[w] = true;
          queue.push(w);
        }
      }
    }
  }
  return order;
}

class Search {
 public:
  Search(const DiGraph& query, const DiGraph& instance,
         const BacktrackOptions& options,
         const std::function<bool(const std::vector<VertexId>&)>* callback)
      : query_(query),
        instance_(instance),
        options_(options),
        callback_(callback),
        order_(ConnectivityOrder(query)),
        assignment_(query.num_vertices(), 0),
        assigned_(query.num_vertices(), false) {}

  /// Returns OK(true) if the search completed (or was stopped by the
  /// callback), an error Status if the step budget was exhausted.
  Status Run() {
    stopped_ = false;
    Status st = Recurse(0);
    return st;
  }

  uint64_t count() const { return count_; }
  bool found_any() const { return count_ > 0; }
  bool stopped() const { return stopped_; }

 private:
  Status Recurse(size_t depth) {
    if (stopped_) return Status::OK();
    if (++steps_ > options_.max_steps) {
      return Status::ResourceExhausted(
          "homomorphism search exceeded max_steps");
    }
    if (depth == order_.size()) {
      ++count_;
      if (callback_ != nullptr && !(*callback_)(assignment_)) {
        stopped_ = true;
      } else if (callback_ == nullptr) {
        stopped_ = true;  // existence query: first hit suffices
      }
      return Status::OK();
    }
    VertexId u = order_[depth];
    // Candidates: propagate from an assigned neighbor when available.
    std::vector<VertexId> candidates;
    if (!CollectCandidates(u, &candidates)) {
      for (VertexId a = 0; a < instance_.num_vertices(); ++a) {
        candidates.push_back(a);
      }
    }
    for (VertexId a : candidates) {
      if (!Consistent(u, a)) continue;
      assignment_[u] = a;
      assigned_[u] = true;
      PHOM_RETURN_NOT_OK(Recurse(depth + 1));
      assigned_[u] = false;
      if (stopped_) return Status::OK();
    }
    return Status::OK();
  }

  /// Fills candidates from one assigned neighbor of u, if any; returns false
  /// when u has no assigned neighbor (caller falls back to all vertices).
  bool CollectCandidates(VertexId u, std::vector<VertexId>* candidates) {
    for (EdgeId e : query_.OutEdges(u)) {
      VertexId w = query_.edge(e).dst;
      if (!assigned_[w]) continue;
      for (EdgeId ie : instance_.InEdges(assignment_[w])) {
        if (instance_.edge(ie).label == query_.edge(e).label) {
          candidates->push_back(instance_.edge(ie).src);
        }
      }
      return true;
    }
    for (EdgeId e : query_.InEdges(u)) {
      VertexId w = query_.edge(e).src;
      if (!assigned_[w]) continue;
      for (EdgeId oe : instance_.OutEdges(assignment_[w])) {
        if (instance_.edge(oe).label == query_.edge(e).label) {
          candidates->push_back(instance_.edge(oe).dst);
        }
      }
      return true;
    }
    return false;
  }

  /// Checks all query edges between u and already-assigned vertices.
  bool Consistent(VertexId u, VertexId a) const {
    for (EdgeId e : query_.OutEdges(u)) {
      const Edge& qe = query_.edge(e);
      if (qe.dst != u && !assigned_[qe.dst]) continue;
      VertexId target = qe.dst == u ? a : assignment_[qe.dst];
      if (!instance_.HasEdge(a, target, qe.label)) return false;
    }
    for (EdgeId e : query_.InEdges(u)) {
      const Edge& qe = query_.edge(e);
      if (qe.src == u) continue;  // self-loop handled in OutEdges pass
      if (!assigned_[qe.src]) continue;
      if (!instance_.HasEdge(assignment_[qe.src], a, qe.label)) return false;
    }
    return true;
  }

  const DiGraph& query_;
  const DiGraph& instance_;
  const BacktrackOptions& options_;
  const std::function<bool(const std::vector<VertexId>&)>* callback_;
  std::vector<VertexId> order_;
  std::vector<VertexId> assignment_;
  std::vector<bool> assigned_;
  uint64_t steps_ = 0;
  uint64_t count_ = 0;
  bool stopped_ = false;
};

}  // namespace

Result<bool> HasHomomorphism(const DiGraph& query, const DiGraph& instance,
                             const BacktrackOptions& options) {
  if (query.num_vertices() == 0) return true;
  if (instance.num_vertices() == 0) return false;
  Search search(query, instance, options, nullptr);
  PHOM_RETURN_NOT_OK(search.Run());
  return search.found_any();
}

Result<uint64_t> ForEachHomomorphism(
    const DiGraph& query, const DiGraph& instance,
    const std::function<bool(const std::vector<VertexId>&)>& callback,
    const BacktrackOptions& options) {
  if (instance.num_vertices() == 0) return uint64_t{0};
  Search search(query, instance, options, &callback);
  PHOM_RETURN_NOT_OK(search.Run());
  return search.count();
}

}  // namespace phom
