#pragma once

#include "src/graph/digraph.h"
#include "src/util/result.h"

/// \file equivalence.h
/// Query equivalence (paper §2): G and G' are equivalent iff G ⇝ G' and
/// G' ⇝ G; equivalent queries have the same probability on every instance.
/// Used to validate the collapses of Props. 3.6 and 5.5 (a ⊔DWT query is
/// equivalent to the one-way path of its maximal height).

namespace phom {

/// Decides equivalence via two backtracking homomorphism tests.
Result<bool> AreEquivalent(const DiGraph& g1, const DiGraph& g2);

}  // namespace phom
