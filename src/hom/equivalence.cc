#include "src/hom/equivalence.h"

#include "src/hom/backtrack.h"

namespace phom {

Result<bool> AreEquivalent(const DiGraph& g1, const DiGraph& g2) {
  PHOM_ASSIGN_OR_RETURN(bool forward, HasHomomorphism(g1, g2));
  if (!forward) return false;
  PHOM_ASSIGN_OR_RETURN(bool backward, HasHomomorphism(g2, g1));
  return backward;
}

}  // namespace phom
