#pragma once

#include <vector>

#include "src/graph/digraph.h"
#include "src/util/result.h"

/// \file arc_consistency.h
/// Polynomial-time homomorphism testing for instances with the X-property
/// (Definition 4.12; Gutjahr–Welzl–Woeginger / Gottlob–Koch–Schulz,
/// Theorem 4.13).
///
/// The X-property of a label R w.r.t. a total vertex order < says: whenever
/// n0 < n1, n2 < n3, and both n0 -R-> n3 and n1 -R-> n2 are edges, then
/// n0 -R-> n2 is an edge. Viewing each label relation (and its inverse) as a
/// binary constraint, this is exactly closure under coordinatewise minimum.
/// For min-closed constraint networks, establishing arc consistency is a
/// complete decision procedure: if no domain empties, assigning every query
/// vertex the minimum of its domain is a homomorphism.
///
/// The solver runs AC-3 in O(|G| · |H| · d) and then verifies the minimum
/// witness (a PHOM_CHECK — it cannot fail when the precondition holds).
/// Instances that are (sub)paths trivially have the X-property, which is how
/// Prop. 4.11 uses this machinery.

namespace phom {

struct XPropertyHomResult {
  bool has_hom = false;
  /// A witness homomorphism (query vertex -> instance vertex); valid iff
  /// has_hom.
  std::vector<VertexId> witness;
};

/// Decides query ⇝ instance, where `order` lists instance vertices in a total
/// order w.r.t. which the instance has the X-property (caller's obligation;
/// see HasXProperty). `initial_domain` optionally restricts the instance
/// vertices usable as images (used to test subpaths of a 2WP); pass empty for
/// all vertices.
XPropertyHomResult XPropertyHomomorphism(
    const DiGraph& query, const DiGraph& instance,
    const std::vector<VertexId>& order,
    const std::vector<VertexId>& initial_domain = {});

/// Checks Definition 4.12 directly in O(|E|² · labels) — test helper.
bool HasXProperty(const DiGraph& instance, const std::vector<VertexId>& order);

}  // namespace phom
