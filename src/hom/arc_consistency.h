#pragma once

#include <cstdint>
#include <vector>

#include "src/graph/digraph.h"
#include "src/util/arena.h"
#include "src/util/result.h"

/// \file arc_consistency.h
/// Polynomial-time homomorphism testing for instances with the X-property
/// (Definition 4.12; Gutjahr–Welzl–Woeginger / Gottlob–Koch–Schulz,
/// Theorem 4.13).
///
/// The X-property of a label R w.r.t. a total vertex order < says: whenever
/// n0 < n1, n2 < n3, and both n0 -R-> n3 and n1 -R-> n2 are edges, then
/// n0 -R-> n2 is an edge. Viewing each label relation (and its inverse) as a
/// binary constraint, this is exactly closure under coordinatewise minimum.
/// For min-closed constraint networks, establishing arc consistency is a
/// complete decision procedure: if no domain empties, assigning every query
/// vertex the minimum of its domain is a homomorphism.
///
/// The solver runs AC-3 in O(|G| · |H| · d) and then verifies the minimum
/// witness (a PHOM_CHECK — it cannot fail when the precondition holds).
/// Instances that are (sub)paths trivially have the X-property, which is how
/// Prop. 4.11 uses this machinery.

namespace phom {

struct XPropertyHomResult {
  bool has_hom = false;
  /// A witness homomorphism (query vertex -> instance vertex); valid iff
  /// has_hom.
  std::vector<VertexId> witness;
};

/// Reusable scratch for XPropertyHomomorphism. One AC-3 run needs a
/// query×instance domain bitmap, a position table and a worklist; a caller
/// running MANY tests against the same instance (the 2WP minimal-window
/// sweep performs O(|path|) of them back to back) hands the same scratch to
/// every call and pays for the buffers once instead of per test. All buffers
/// are POD and carved from the backing MonotonicArena (util/arena.h), so a
/// serve worker that resets its per-task arena between requests reuses the
/// same memory with zero allocations after warm-up.
///
/// The struct only caches CAPACITY, never content: every call refills what
/// it reads, so a scratch can be reused across unrelated query/instance
/// pairs (growing sizes re-carve from the arena).
struct XPropScratch {
  /// `arena` must outlive the scratch and every call using it (non-owning).
  explicit XPropScratch(MonotonicArena* arena) : arena(arena) {}

  MonotonicArena* arena;
  uint8_t* domain = nullptr;   ///< nq × ni membership bitmap
  uint32_t* pos = nullptr;     ///< instance vertex -> X-order position
  uint32_t* work = nullptr;    ///< AC-3 worklist ring: (edge << 1) | src-flag
  size_t domain_cap = 0;
  size_t pos_cap = 0;
  size_t work_cap = 0;
};

/// Decides query ⇝ instance, where `order` lists instance vertices in a total
/// order w.r.t. which the instance has the X-property (caller's obligation;
/// see HasXProperty). `initial_domain` optionally restricts the instance
/// vertices usable as images (used to test subpaths of a 2WP); pass empty for
/// all vertices.
XPropertyHomResult XPropertyHomomorphism(
    const DiGraph& query, const DiGraph& instance,
    const std::vector<VertexId>& order,
    const std::vector<VertexId>& initial_domain = {});

/// Allocation-lean variant: `initial_domain` is a raw span (the 2WP sweep
/// passes a window of `order` directly, no staging vector) and every
/// temporary lives in `scratch`. Pass (nullptr, 0) for an unrestricted
/// domain. Semantics and result are identical to the vector overload.
XPropertyHomResult XPropertyHomomorphism(
    const DiGraph& query, const DiGraph& instance,
    const std::vector<VertexId>& order, const VertexId* initial_domain,
    size_t initial_domain_size, XPropScratch* scratch);

/// Checks Definition 4.12 directly in O(|E|² · labels) — test helper.
bool HasXProperty(const DiGraph& instance, const std::vector<VertexId>& order);

}  // namespace phom
