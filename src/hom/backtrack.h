#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "src/graph/digraph.h"
#include "src/util/result.h"

/// \file backtrack.h
/// General graph homomorphism by backtracking search. Exponential in the
/// worst case (the problem is NP-hard); used as the ground-truth oracle in
/// tests and as the per-world test inside the exact fallback solver. Query
/// vertices are assigned in a connectivity-aware order with forward checking
/// against already-assigned neighbors.

namespace phom {

struct BacktrackOptions {
  /// Abort with ResourceExhausted after this many search-node expansions.
  uint64_t max_steps = 50'000'000;
};

/// Is there a homomorphism query ⇝ instance? (Label-respecting, directed.)
Result<bool> HasHomomorphism(const DiGraph& query, const DiGraph& instance,
                             const BacktrackOptions& options = {});

/// Enumerates every homomorphism h : V(query) → V(instance); the callback
/// receives the image vector and returns false to stop early. Returns the
/// number of homomorphisms visited.
Result<uint64_t> ForEachHomomorphism(
    const DiGraph& query, const DiGraph& instance,
    const std::function<bool(const std::vector<VertexId>&)>& callback,
    const BacktrackOptions& options = {});

}  // namespace phom
