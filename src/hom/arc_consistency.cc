#include "src/hom/arc_consistency.h"

#include <algorithm>
#include <deque>

#include "src/util/status.h"

namespace phom {

namespace {

/// Position of each instance vertex in the X-property order.
std::vector<uint32_t> PositionOf(const DiGraph& instance,
                                 const std::vector<VertexId>& order) {
  std::vector<uint32_t> pos(instance.num_vertices(), UINT32_MAX);
  for (uint32_t i = 0; i < order.size(); ++i) pos[order[i]] = i;
  return pos;
}

}  // namespace

XPropertyHomResult XPropertyHomomorphism(
    const DiGraph& query, const DiGraph& instance,
    const std::vector<VertexId>& order,
    const std::vector<VertexId>& initial_domain) {
  XPropertyHomResult out;
  size_t nq = query.num_vertices();
  size_t ni = instance.num_vertices();
  if (nq == 0) {
    out.has_hom = true;
    return out;
  }
  if (ni == 0) return out;

  // Domains as membership bitmaps.
  std::vector<std::vector<bool>> domain(
      nq, std::vector<bool>(ni, initial_domain.empty()));
  if (!initial_domain.empty()) {
    for (auto& d : domain) {
      for (VertexId v : initial_domain) d[v] = true;
    }
  }

  // AC-3 over the directed constraints given by query edges. For a query
  // edge u -R-> v we must revise both endpoints: a ∈ D(u) needs some
  // b ∈ D(v) with a -R-> b, and b ∈ D(v) needs some a ∈ D(u) with a -R-> b.
  std::deque<std::pair<EdgeId, bool>> work;  // (edge, revise_source?)
  for (EdgeId e = 0; e < query.num_edges(); ++e) {
    work.emplace_back(e, true);
    work.emplace_back(e, false);
  }

  auto enqueue_neighbors = [&](VertexId u) {
    for (EdgeId e : query.OutEdges(u)) work.emplace_back(e, false);
    for (EdgeId e : query.InEdges(u)) work.emplace_back(e, true);
  };

  while (!work.empty()) {
    auto [e, revise_source] = work.front();
    work.pop_front();
    const Edge& qe = query.edge(e);
    VertexId revised = revise_source ? qe.src : qe.dst;
    VertexId other = revise_source ? qe.dst : qe.src;
    bool changed = false;
    for (VertexId a = 0; a < ni; ++a) {
      if (!domain[revised][a]) continue;
      bool supported = false;
      if (revise_source) {
        for (EdgeId ie : instance.OutEdges(a)) {
          const Edge& h = instance.edge(ie);
          if (h.label == qe.label && domain[other][h.dst]) {
            supported = true;
            break;
          }
        }
      } else {
        for (EdgeId ie : instance.InEdges(a)) {
          const Edge& h = instance.edge(ie);
          if (h.label == qe.label && domain[other][h.src]) {
            supported = true;
            break;
          }
        }
      }
      if (!supported) {
        domain[revised][a] = false;
        changed = true;
      }
    }
    if (changed) {
      bool empty = true;
      for (VertexId a = 0; a < ni && empty; ++a) empty = !domain[revised][a];
      if (empty) return out;  // no homomorphism
      enqueue_neighbors(revised);
    }
  }

  // Min-closed constraints: the per-vertex minima (w.r.t. the X-property
  // order) of arc-consistent domains form a homomorphism.
  std::vector<uint32_t> pos = PositionOf(instance, order);
  out.witness.assign(nq, 0);
  for (VertexId u = 0; u < nq; ++u) {
    uint32_t best_pos = UINT32_MAX;
    VertexId best = 0;
    bool any = false;
    for (VertexId a = 0; a < ni; ++a) {
      if (!domain[u][a]) continue;
      PHOM_CHECK_MSG(pos[a] != UINT32_MAX,
                     "domain vertex missing from X-property order");
      if (!any || pos[a] < best_pos) {
        any = true;
        best_pos = pos[a];
        best = a;
      }
    }
    PHOM_CHECK(any);
    out.witness[u] = best;
  }
  // Verify the witness; failure would mean the instance violates the
  // X-property precondition.
  for (const Edge& qe : query.edges()) {
    PHOM_CHECK_MSG(
        instance.HasEdge(out.witness[qe.src], out.witness[qe.dst], qe.label),
        "X-property witness invalid: instance lacks the X-property w.r.t. "
        "the provided order");
  }
  out.has_hom = true;
  return out;
}

bool HasXProperty(const DiGraph& instance,
                  const std::vector<VertexId>& order) {
  std::vector<uint32_t> pos(instance.num_vertices(), UINT32_MAX);
  for (uint32_t i = 0; i < order.size(); ++i) pos[order[i]] = i;
  for (const Edge& e1 : instance.edges()) {
    for (const Edge& e2 : instance.edges()) {
      if (e1.label != e2.label) continue;
      // e1 = n0 -> n3, e2 = n1 -> n2 with n0 < n1 and n2 < n3.
      VertexId n0 = e1.src, n3 = e1.dst, n1 = e2.src, n2 = e2.dst;
      if (pos[n0] < pos[n1] && pos[n2] < pos[n3]) {
        if (!instance.HasEdge(n0, n2, e1.label)) return false;
      }
    }
  }
  return true;
}

}  // namespace phom
