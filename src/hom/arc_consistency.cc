#include "src/hom/arc_consistency.h"

#include <algorithm>

#include "src/util/status.h"

namespace phom {

namespace {

/// Grows (re-carves) an arena-backed POD buffer to at least `needed`
/// elements. Monotonic arenas never free, so the discarded buffer is
/// reclaimed at the owner's next Reset — sizes are stable within a task, so
/// this fires once per size class, not per call.
template <class T>
void EnsureCapacity(MonotonicArena* arena, T** buf, size_t* cap,
                    size_t needed) {
  if (*cap >= needed) return;
  size_t grown = *cap == 0 ? 64 : *cap;
  while (grown < needed) grown *= 2;
  *buf = arena->AllocateArray<T>(grown);
  *cap = grown;
}

}  // namespace

XPropertyHomResult XPropertyHomomorphism(
    const DiGraph& query, const DiGraph& instance,
    const std::vector<VertexId>& order,
    const std::vector<VertexId>& initial_domain) {
  MonotonicArena arena;
  XPropScratch scratch(&arena);
  return XPropertyHomomorphism(query, instance, order, initial_domain.data(),
                               initial_domain.size(), &scratch);
}

XPropertyHomResult XPropertyHomomorphism(
    const DiGraph& query, const DiGraph& instance,
    const std::vector<VertexId>& order, const VertexId* initial_domain,
    size_t initial_domain_size, XPropScratch* scratch) {
  XPropertyHomResult out;
  size_t nq = query.num_vertices();
  size_t ni = instance.num_vertices();
  if (nq == 0) {
    out.has_hom = true;
    return out;
  }
  if (ni == 0) return out;

  // Domains as a flat nq × ni membership bitmap in the scratch.
  EnsureCapacity(scratch->arena, &scratch->domain, &scratch->domain_cap,
                 nq * ni);
  uint8_t* domain = scratch->domain;
  std::fill(domain, domain + nq * ni,
            static_cast<uint8_t>(initial_domain_size == 0 ? 1 : 0));
  if (initial_domain_size != 0) {
    for (size_t u = 0; u < nq; ++u) {
      uint8_t* row = domain + u * ni;
      for (size_t i = 0; i < initial_domain_size; ++i) {
        row[initial_domain[i]] = 1;
      }
    }
  }

  // AC-3 over the directed constraints given by query edges. For a query
  // edge u -R-> v we must revise both endpoints: a ∈ D(u) needs some
  // b ∈ D(v) with a -R-> b, and b ∈ D(v) needs some a ∈ D(u) with a -R-> b.
  // The worklist is a FIFO of (edge << 1) | revise_source? entries in a
  // scratch buffer; on overflow the live region compacts into a doubled
  // carve (same order, so the revision sequence is unchanged).
  size_t work_head = 0;
  size_t work_tail = 0;
  EnsureCapacity(scratch->arena, &scratch->work, &scratch->work_cap,
                 2 * static_cast<size_t>(query.num_edges()) + 16);
  auto push_work = [&](EdgeId e, bool revise_source) {
    if (work_tail == scratch->work_cap) {
      const size_t live = work_tail - work_head;
      if (live * 2 <= scratch->work_cap) {
        // Plenty of consumed space at the front: slide instead of growing.
        std::copy(scratch->work + work_head, scratch->work + work_tail,
                  scratch->work);
      } else {
        uint32_t* old = scratch->work;
        size_t old_head = work_head;
        scratch->work = nullptr;
        scratch->work_cap = 0;
        EnsureCapacity(scratch->arena, &scratch->work, &scratch->work_cap,
                       live * 2);
        std::copy(old + old_head, old + old_head + live, scratch->work);
      }
      work_head = 0;
      work_tail = live;
    }
    scratch->work[work_tail++] =
        (static_cast<uint32_t>(e) << 1) | (revise_source ? 1u : 0u);
  };
  for (EdgeId e = 0; e < query.num_edges(); ++e) {
    push_work(e, true);
    push_work(e, false);
  }

  auto enqueue_neighbors = [&](VertexId u) {
    for (EdgeId e : query.OutEdges(u)) push_work(e, false);
    for (EdgeId e : query.InEdges(u)) push_work(e, true);
  };

  while (work_head != work_tail) {
    const uint32_t item = scratch->work[work_head++];
    const EdgeId e = static_cast<EdgeId>(item >> 1);
    const bool revise_source = (item & 1u) != 0;
    const Edge& qe = query.edge(e);
    VertexId revised = revise_source ? qe.src : qe.dst;
    VertexId other = revise_source ? qe.dst : qe.src;
    uint8_t* revised_row = domain + static_cast<size_t>(revised) * ni;
    const uint8_t* other_row = domain + static_cast<size_t>(other) * ni;
    bool changed = false;
    for (VertexId a = 0; a < ni; ++a) {
      if (!revised_row[a]) continue;
      bool supported = false;
      if (revise_source) {
        for (EdgeId ie : instance.OutEdges(a)) {
          const Edge& h = instance.edge(ie);
          if (h.label == qe.label && other_row[h.dst]) {
            supported = true;
            break;
          }
        }
      } else {
        for (EdgeId ie : instance.InEdges(a)) {
          const Edge& h = instance.edge(ie);
          if (h.label == qe.label && other_row[h.src]) {
            supported = true;
            break;
          }
        }
      }
      if (!supported) {
        revised_row[a] = 0;
        changed = true;
      }
    }
    if (changed) {
      bool empty = true;
      for (VertexId a = 0; a < ni && empty; ++a) empty = !revised_row[a];
      if (empty) return out;  // no homomorphism
      enqueue_neighbors(revised);
    }
  }

  // Min-closed constraints: the per-vertex minima (w.r.t. the X-property
  // order) of arc-consistent domains form a homomorphism.
  EnsureCapacity(scratch->arena, &scratch->pos, &scratch->pos_cap, ni);
  uint32_t* pos = scratch->pos;
  std::fill(pos, pos + ni, UINT32_MAX);
  for (uint32_t i = 0; i < order.size(); ++i) pos[order[i]] = i;
  out.witness.assign(nq, 0);
  for (VertexId u = 0; u < nq; ++u) {
    const uint8_t* row = domain + static_cast<size_t>(u) * ni;
    uint32_t best_pos = UINT32_MAX;
    VertexId best = 0;
    bool any = false;
    for (VertexId a = 0; a < ni; ++a) {
      if (!row[a]) continue;
      PHOM_CHECK_MSG(pos[a] != UINT32_MAX,
                     "domain vertex missing from X-property order");
      if (!any || pos[a] < best_pos) {
        any = true;
        best_pos = pos[a];
        best = a;
      }
    }
    PHOM_CHECK(any);
    out.witness[u] = best;
  }
  // Verify the witness; failure would mean the instance violates the
  // X-property precondition.
  for (const Edge& qe : query.edges()) {
    PHOM_CHECK_MSG(
        instance.HasEdge(out.witness[qe.src], out.witness[qe.dst], qe.label),
        "X-property witness invalid: instance lacks the X-property w.r.t. "
        "the provided order");
  }
  out.has_hom = true;
  return out;
}

bool HasXProperty(const DiGraph& instance,
                  const std::vector<VertexId>& order) {
  std::vector<uint32_t> pos(instance.num_vertices(), UINT32_MAX);
  for (uint32_t i = 0; i < order.size(); ++i) pos[order[i]] = i;
  for (const Edge& e1 : instance.edges()) {
    for (const Edge& e2 : instance.edges()) {
      if (e1.label != e2.label) continue;
      // e1 = n0 -> n3, e2 = n1 -> n2 with n0 < n1 and n2 < n3.
      VertexId n0 = e1.src, n3 = e1.dst, n1 = e2.src, n2 = e2.dst;
      if (pos[n0] < pos[n1] && pos[n2] < pos[n3]) {
        if (!instance.HasEdge(n0, n2, e1.label)) return false;
      }
    }
  }
  return true;
}

}  // namespace phom
