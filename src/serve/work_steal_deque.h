#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>

#include "src/serve/mpmc_queue.h"
#include "src/util/status.h"

/// \file work_steal_deque.h
/// Bounded Chase–Lev work-stealing deque: the per-worker task store of the
/// serve executor. The OWNER worker pushes and pops at the bottom (LIFO —
/// freshly fanned-out component tasks run while their request state is hot),
/// while THIEVES steal from the top (FIFO — the oldest task, the one the
/// owner would reach last). This is the weak-memory formulation of Lê,
/// Pop, Cohen & Zappa Nardelli (PPoPP'13), restricted to a fixed-capacity
/// ring: PushBottom reports failure when the deque is full instead of
/// growing, so the caller (the executor) can fall back to its injection
/// queue and the memory bound is preserved.
///
/// Why the races are benign: `top` only ever advances through a successful
/// compare-exchange, so at most one thief consumes any cell, and the owner's
/// bottom decrement plus the seq_cst fence arbitrates the last-element race
/// between PopBottom and a concurrent TrySteal — exactly one side wins the
/// CAS. Cells hold the payload through a std::atomic pointer, so every
/// cross-thread cell access is an atomic load/store (TSan-clean by
/// construction, not by suppression).
///
/// Ownership: the deque stores heap nodes (unique_ptr in, unique_ptr out).
/// Nodes left in the deque at destruction are deleted.

namespace phom::serve {

template <class T>
class WorkStealDeque {
 public:
  /// Capacity rounds up to a power of two, minimum 2 (same contract as
  /// MpmcQueue so the executor can budget the two structures together).
  explicit WorkStealDeque(size_t min_capacity) {
    PHOM_CHECK_MSG(min_capacity <= (size_t{1} << 31),
                   "WorkStealDeque capacity request too large: "
                       << min_capacity);
    size_t cap = 2;
    while (cap < min_capacity) cap <<= 1;
    mask_ = cap - 1;
    cells_ = std::make_unique<std::atomic<T*>[]>(cap);
    for (size_t i = 0; i < cap; ++i) {
      cells_[i].store(nullptr, std::memory_order_relaxed);
    }
  }

  WorkStealDeque(const WorkStealDeque&) = delete;
  WorkStealDeque& operator=(const WorkStealDeque&) = delete;

  ~WorkStealDeque() {
    std::unique_ptr<T> node;
    while (PopBottom(&node)) node.reset();
  }

  size_t capacity() const { return mask_ + 1; }

  /// Owner only. False when full (the node is left with the caller).
  bool PushBottom(std::unique_ptr<T>& node) {
    const uint64_t b = bottom_.load(std::memory_order_relaxed);
    const uint64_t t = top_.load(std::memory_order_acquire);
    if (b - t > mask_) return false;  // full
    cells_[b & mask_].store(node.release(), std::memory_order_relaxed);
    // Publish: a thief that observes bottom > t also observes the cell.
    bottom_.store(b + 1, std::memory_order_release);
    return true;
  }

  /// Owner only. LIFO: pops the most recently pushed node. False when empty.
  bool PopBottom(std::unique_ptr<T>* out) {
    uint64_t b = bottom_.load(std::memory_order_relaxed);
    uint64_t t = top_.load(std::memory_order_relaxed);
    if (b <= t) return false;  // empty (owner's view of bottom is exact)
    b -= 1;
    // The store-load ordering between this bottom write and the top re-read
    // below is what closes the owner/thief race window (Lê et al. use an
    // explicit seq_cst fence; a seq_cst store + seq_cst load is equivalent
    // here and keeps every access on the variables themselves).
    bottom_.store(b, std::memory_order_seq_cst);
    t = top_.load(std::memory_order_seq_cst);
    if (t < b) {
      // More than one element: the bottom one is unreachable to thieves.
      out->reset(cells_[b & mask_].load(std::memory_order_relaxed));
      return true;
    }
    bool got = false;
    if (t == b) {
      // Exactly one element: race thieves for it through the top CAS.
      if (top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                       std::memory_order_relaxed)) {
        out->reset(cells_[b & mask_].load(std::memory_order_relaxed));
        got = true;
      }
    }
    bottom_.store(b + 1, std::memory_order_relaxed);  // restore: empty state
    return got;
  }

  /// Any thread. FIFO: steals the OLDEST node. False when empty or when the
  /// steal lost a race (callers treat both as "try elsewhere").
  bool TrySteal(std::unique_ptr<T>* out) {
    uint64_t t = top_.load(std::memory_order_acquire);
    const uint64_t b = bottom_.load(std::memory_order_acquire);
    if (t >= b) return false;  // empty
    // Reading the cell before the CAS is safe: the owner cannot overwrite
    // index t until top has advanced past it (PushBottom checks fullness
    // against top), and the CAS fails if any other consumer took it first.
    T* node = cells_[t & mask_].load(std::memory_order_relaxed);
    if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                      std::memory_order_relaxed)) {
      return false;  // lost the race to another thief or the owner
    }
    out->reset(node);
    return true;
  }

  /// Racy size estimate for least-loaded routing and stats; never used for
  /// correctness decisions.
  size_t SizeApprox() const {
    const uint64_t b = bottom_.load(std::memory_order_relaxed);
    const uint64_t t = top_.load(std::memory_order_relaxed);
    return b > t ? static_cast<size_t>(b - t) : 0;
  }

 private:
  std::unique_ptr<std::atomic<T*>[]> cells_;
  size_t mask_ = 0;
  alignas(kCacheLine) std::atomic<uint64_t> top_{0};     ///< next steal slot
  alignas(kCacheLine) std::atomic<uint64_t> bottom_{0};  ///< next push slot
};

}  // namespace phom::serve
