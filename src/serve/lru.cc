#include "src/serve/lru.h"

namespace phom::serve {

std::shared_ptr<const InstanceContext> ContextLru::GetOrBuild(
    const ProbGraph& instance, uint64_t instance_fingerprint,
    const std::vector<LabelId>& labels, bool* hit) {
  std::vector<LabelId> norm = NormalizeLabelKey(labels);

  std::shared_ptr<Slot> slot;
  {
    std::lock_guard<std::mutex> lock(mu_);
    Key key(instance_fingerprint, norm);
    auto it = index_.find(key);
    if (it != index_.end() &&
        it->second->num_vertices == instance.num_vertices() &&
        it->second->num_edges == instance.num_edges()) {
      ++stats_.hits;
      if (hit != nullptr) *hit = true;
      lru_.splice(lru_.begin(), lru_, it->second);  // move to front
      slot = it->second->slot;
    } else {
      if (it != index_.end()) {
        // Fingerprint collision (same key, different instance): replace the
        // stale entry rather than serve another instance's context.
        lru_.erase(it->second);
        index_.erase(it);
      }
      ++stats_.misses;
      if (hit != nullptr) *hit = false;
      slot = std::make_shared<Slot>();
      if (options_.capacity > 0) {  // capacity 0: uncached one-shot slot
        lru_.push_front(Entry{key, instance.num_vertices(),
                              instance.num_edges(), slot});
        index_.emplace(std::move(key), lru_.begin());
        while (lru_.size() > options_.capacity) {
          index_.erase(lru_.back().key);
          lru_.pop_back();
          ++stats_.evictions;
        }
      }
    }
  }

  // Build (or wait for the builder) outside the cache-wide lock: a cold
  // build only blocks same-key lookups; other keys' traffic proceeds. The
  // slot outlives eviction via shared_ptr, so a builder never touches a
  // dangling entry.
  std::lock_guard<std::mutex> slot_lock(slot->m);
  if (slot->context == nullptr) {
    slot->context = BuildInstanceContext(instance, norm);
  }
  return slot->context;
}

ContextLruStats ContextLru::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

size_t ContextLru::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return lru_.size();
}

}  // namespace phom::serve
