#pragma once

#include <chrono>
#include <cstddef>
#include <memory>
#include <optional>
#include <utility>

#include "src/core/solver.h"
#include "src/graph/digraph.h"
#include "src/graph/ucq.h"

/// \file request.h
/// The unit of the asynchronous serving API (async.h, executor.h, shard.h):
/// one query addressed to one shard, with per-request overrides of the
/// session's SolveOptions, an optional absolute deadline, and — unlike the
/// raw pointers of the synchronous ShardRequest/BatchItem, which are only
/// safe because those calls block until completion — OWNED query storage:
/// a submitted SolveRequest keeps its query alive even after the caller's
/// batch vector dies, so asynchronous submission cannot dangle.

namespace phom::serve {

/// The serving clock (monotonic; deadlines are absolute points on it).
using RequestClock = CancelToken::Clock;

/// One asynchronous solve request. Construct with an owned query (moved or
/// shared); BorrowQuery exists only for synchronous submit+wait wrappers
/// that outlive the solve by construction.
struct SolveRequest {
  /// Target shard (ShardedServer routing; ignored by direct
  /// BatchExecutor::Submit, which takes the session explicitly).
  size_t shard = 0;
  /// The query graph, owned (shared) by the request and by every task
  /// spawned for it. Null iff `ucq` below is set.
  std::shared_ptr<const DiGraph> query;
  /// A union of conjunctive queries instead of a single CQ: when set, the
  /// request is prepared through the lifted-inference front door
  /// (lifted::PrepareUcq) and fans out over the safe plan's UNITS rather
  /// than over instance components. Exactly one of `query` and `ucq` must
  /// be set. A one-disjunct union answers bit-identically to the same
  /// request submitted as a single CQ.
  std::shared_ptr<const Ucq> ucq;
  /// Absolute deadline. Checked at submit (expired → fail fast, nothing is
  /// prepared — unless the degrade policy is on, see below), at dequeue
  /// (expired before start → DeadlineExceeded without solving), between
  /// component subproblems, and — since the in-component yield points —
  /// every few thousand iterations INSIDE a hard cell's world enumeration
  /// and the Monte Carlo sampling loop (CancelToken, util/status.h).
  ///
  /// With DegradePolicy mode kOnDeadlineRisk (session default or the
  /// per-request override below), a deadline miss anywhere past submit is
  /// converted into a budgeted Monte Carlo ESTIMATE instead of a
  /// DeadlineExceeded error: the request is re-dispatched to the
  /// "monte-carlo" engine with whatever budget remains (at minimum
  /// policy.min_samples samples), and the result carries DegradeInfo
  /// provenance (SolveResult::degrade). An already-expired deadline at
  /// submit then prepares and enqueues normally so a worker can produce the
  /// estimate. Explicit Cancel() is never degraded.
  std::optional<RequestClock::time_point> deadline;
  /// RELATIVE time budget, resolved against the SUBMIT time (not the time
  /// this request object was built): Submit materializes it as
  /// deadline = submit_time + budget, so batch-building time between
  /// WithTimeout/WithBudget and Submit no longer silently eats the budget.
  /// When both a budget and an absolute deadline are set, the earlier of
  /// the two effective deadlines wins.
  std::optional<std::chrono::nanoseconds> budget;
  /// Per-request overrides of the session's base SolveOptions: numeric
  /// backend, forced engine, Monte Carlo seed, degrade policy (solver.h).
  SolveOverrides overrides;

  SolveRequest() = default;
  explicit SolveRequest(DiGraph query_graph, size_t shard_index = 0)
      : shard(shard_index),
        query(std::make_shared<const DiGraph>(std::move(query_graph))) {}
  explicit SolveRequest(std::shared_ptr<const DiGraph> query_graph,
                        size_t shard_index = 0)
      : shard(shard_index), query(std::move(query_graph)) {}
  explicit SolveRequest(Ucq ucq_union, size_t shard_index = 0)
      : shard(shard_index),
        ucq(std::make_shared<const Ucq>(std::move(ucq_union))) {}
  explicit SolveRequest(std::shared_ptr<const Ucq> ucq_union,
                        size_t shard_index = 0)
      : shard(shard_index), ucq(std::move(ucq_union)) {}

  /// Fluent helpers (return *this so requests can be built inline).
  SolveRequest& WithDeadline(RequestClock::time_point d) {
    deadline = d;
    return *this;
  }
  /// Deadline = submit time + budget (materialized in Submit, NOT here —
  /// see `budget` above).
  SolveRequest& WithBudget(std::chrono::nanoseconds b) {
    budget = b;
    return *this;
  }
  /// Alias of WithBudget, kept for callers that read better as "timeout".
  SolveRequest& WithTimeout(std::chrono::nanoseconds b) {
    return WithBudget(b);
  }
  SolveRequest& WithNumeric(NumericBackend backend) {
    overrides.numeric = backend;
    return *this;
  }
  SolveRequest& WithEngine(std::string engine_name) {
    overrides.force_engine = std::move(engine_name);
    return *this;
  }
  SolveRequest& WithMonteCarloSeed(uint64_t seed) {
    overrides.monte_carlo_seed = seed;
    return *this;
  }
  SolveRequest& WithDegrade(DegradePolicy policy) {
    overrides.degrade = policy;
    return *this;
  }
  /// Degrade on deadline risk with the policy's default budget knobs.
  SolveRequest& WithDegradeOnDeadlineRisk() {
    DegradePolicy policy;
    policy.mode = DegradeMode::kOnDeadlineRisk;
    overrides.degrade = policy;
    return *this;
  }
  /// Ask any degraded estimate for a certified RELATIVE 95% bound: sampling
  /// stops once half_width_95 <= target · (certified lower bound on the
  /// answer). Composes with WithDegrade/WithDegradeOnDeadlineRisk in either
  /// order (field-level override; see SolveOverrides::target_relative_error).
  SolveRequest& WithTargetRelativeError(double target) {
    overrides.target_relative_error = target;
    return *this;
  }
  /// Cap the acceptable certified-enclosure width: an interval answer wider
  /// than `width` (hi − lo) is re-run under the EXACT backend when budget
  /// remains (EscalationPolicy; SolveResult::escalate provenance). Forces
  /// mode kOnWideResult; composes with WithEscalate in either order
  /// (field-level override; see SolveOverrides::max_width).
  SolveRequest& WithMaxWidth(double width) {
    overrides.max_width = width;
    return *this;
  }
  /// Replace the whole width-escalation policy (solver.h).
  SolveRequest& WithEscalate(EscalationPolicy policy) {
    overrides.escalate = policy;
    return *this;
  }

  /// A non-owning view of a caller-kept query. ONLY for synchronous
  /// submit+wait paths: the caller must keep `query_graph` alive until the
  /// request's ticket completes.
  static SolveRequest BorrowQuery(const DiGraph& query_graph,
                                  size_t shard_index = 0) {
    return SolveRequest(
        std::shared_ptr<const DiGraph>(std::shared_ptr<void>(), &query_graph),
        shard_index);
  }
};

/// Per-request serving timeline, for observability: when the request was
/// accepted, when its first task started running, and when its result was
/// published. Snapshot via SolveTicket::stats() (safe at any time; fields
/// settle once the ticket is done).
struct RequestStats {
  RequestClock::time_point enqueued{};
  /// First task dequeue (== finished for requests that never ran a task:
  /// rejected, expired or cancelled before start).
  RequestClock::time_point started{};
  RequestClock::time_point finished{};
  /// The request missed its deadline / was cancelled before any solving
  /// work ran (it spent its whole life in the queue).
  bool expired_before_start = false;
  bool cancelled_before_start = false;
  /// The request's exact solve hit its deadline and was converted into a
  /// budgeted Monte Carlo estimate (DegradePolicy); the result is OK and
  /// carries SolveResult::degrade provenance (degrade.proactive
  /// distinguishes an admission-time skip from a reactive conversion).
  bool degraded = false;
  /// The request's interval solve finished too wide (EscalationPolicy) and
  /// was re-run under the exact backend; the published answer is the exact
  /// one and carries SolveResult::escalate provenance.
  bool escalated = false;
  /// Rejected at submit by admission control (ExecutorOptions::
  /// enable_shedding): the predicted backlog exceeded every pending
  /// deadline, the status is kResourceExhausted, and nothing was prepared.
  bool shed = false;
  /// The cost model's expected exact-solve latency, snapshotted at submit
  /// (zero without a cost model). The admission decision — admit, degrade
  /// proactively, or shed — was made against this prediction.
  std::chrono::nanoseconds predicted_cost{0};
  /// The error guarantee the published answer carries (GuaranteeOf — exact,
  /// certified interval enclosure, empirical double, or a statistical
  /// absolute/relative 95% bound). Settles with the result; meaningful only
  /// on successful tickets (kExact default otherwise).
  Guarantee guarantee = Guarantee::kExact;

  std::chrono::nanoseconds queue_delay() const { return started - enqueued; }
  std::chrono::nanoseconds solve_time() const { return finished - started; }
  std::chrono::nanoseconds total_time() const { return finished - enqueued; }
};

}  // namespace phom::serve
