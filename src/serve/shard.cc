#include "src/serve/shard.h"

#include <string>
#include <utility>

namespace phom::serve {

namespace {

Status BadShard(size_t shard, size_t num_shards) {
  return Status::Invalid("serve: shard " + std::to_string(shard) +
                         " out of range (server has " +
                         std::to_string(num_shards) + " shards)");
}

}  // namespace

ShardedServer::ShardedServer(std::vector<ProbGraph> shards,
                             ShardedServerOptions options)
    : options_(std::move(options)),
      cache_(std::make_shared<ContextLru>(options_.context_cache)),
      executor_(options_.executor) {
  sessions_.reserve(shards.size());
  for (ProbGraph& shard : shards) {
    sessions_.push_back(std::make_unique<EvalSession>(
        std::move(shard), options_.solve, cache_));
  }
}

SolveTicket ShardedServer::Submit(SolveRequest request,
                                  CompletionCallback callback) {
  if (request.shard >= sessions_.size()) {
    return SolveTicket::Completed(BadShard(request.shard, sessions_.size()),
                                  callback);
  }
  if (request.query == nullptr) {
    return SolveTicket::Completed(
        Status::Invalid("serve: null query in request"), callback);
  }
  EvalSession& session = *sessions_[request.shard];
  return executor_.Submit(session, std::move(request), std::move(callback));
}

std::vector<SolveTicket> ShardedServer::SubmitBatch(
    std::vector<SolveRequest> requests) {
  std::vector<SolveTicket> tickets;
  tickets.reserve(requests.size());
  for (SolveRequest& request : requests) {
    tickets.push_back(Submit(std::move(request)));
  }
  return tickets;
}

std::vector<Result<SolveResult>> ShardedServer::Collect(
    std::vector<SolveTicket>& tickets) {
  return executor_.CollectHelping(tickets);
}

Result<SolveResult> ShardedServer::Solve(size_t shard, const DiGraph& query) {
  std::vector<SolveTicket> tickets;
  tickets.push_back(Submit(SolveRequest::BorrowQuery(query, shard)));
  return std::move(Collect(tickets)[0]);
}

std::vector<Result<SolveResult>> ShardedServer::SolveBatch(
    size_t shard, const std::vector<DiGraph>& queries) {
  std::vector<SolveTicket> tickets;
  tickets.reserve(queries.size());
  for (const DiGraph& query : queries) {
    tickets.push_back(Submit(SolveRequest::BorrowQuery(query, shard)));
  }
  return Collect(tickets);
}

std::vector<Result<SolveResult>> ShardedServer::SolveRequests(
    const std::vector<ShardRequest>& requests) {
  std::vector<SolveTicket> tickets;
  tickets.reserve(requests.size());
  for (const ShardRequest& request : requests) {
    // Rejections become already-completed tickets inside Submit (shard
    // validated before the query, as before), so per-request failures stay
    // per-request without disturbing neighbors.
    tickets.push_back(Submit(
        request.query == nullptr
            ? SolveRequest(std::shared_ptr<const DiGraph>(), request.shard)
            : SolveRequest::BorrowQuery(*request.query, request.shard)));
  }
  return Collect(tickets);
}

}  // namespace phom::serve
