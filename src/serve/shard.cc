#include "src/serve/shard.h"

#include <string>

namespace phom::serve {

namespace {

Status BadShard(size_t shard, size_t num_shards) {
  return Status::Invalid("serve: shard " + std::to_string(shard) +
                         " out of range (server has " +
                         std::to_string(num_shards) + " shards)");
}

}  // namespace

ShardedServer::ShardedServer(std::vector<ProbGraph> shards,
                             ShardedServerOptions options)
    : options_(std::move(options)),
      cache_(std::make_shared<ContextLru>(options_.context_cache)),
      executor_(options_.executor) {
  sessions_.reserve(shards.size());
  for (ProbGraph& shard : shards) {
    sessions_.push_back(std::make_unique<EvalSession>(
        std::move(shard), options_.solve, cache_));
  }
}

Result<SolveResult> ShardedServer::Solve(size_t shard, const DiGraph& query) {
  if (shard >= sessions_.size()) return BadShard(shard, sessions_.size());
  return sessions_[shard]->Solve(query);
}

std::vector<Result<SolveResult>> ShardedServer::SolveBatch(
    size_t shard, const std::vector<DiGraph>& queries) {
  if (shard >= sessions_.size()) {
    return std::vector<Result<SolveResult>>(
        queries.size(), Result<SolveResult>(BadShard(shard, sessions_.size())));
  }
  return executor_.SolveBatch(*sessions_[shard], queries);
}

std::vector<Result<SolveResult>> ShardedServer::SolveRequests(
    const std::vector<ShardRequest>& requests) {
  // Out-of-range / null requests answer per-slot without disturbing the
  // valid ones: build the executor batch over the valid subset only.
  std::vector<BatchItem> items;
  std::vector<size_t> item_slot;
  items.reserve(requests.size());
  item_slot.reserve(requests.size());
  std::vector<Result<SolveResult>> out(
      requests.size(),
      Result<SolveResult>(Status::Invalid("serve: null query in request")));
  for (size_t i = 0; i < requests.size(); ++i) {
    const ShardRequest& r = requests[i];
    if (r.shard >= sessions_.size()) {
      out[i] = BadShard(r.shard, sessions_.size());
      continue;
    }
    if (r.query == nullptr) continue;  // placeholder status already set
    items.push_back({sessions_[r.shard].get(), r.query});
    item_slot.push_back(i);
  }
  std::vector<Result<SolveResult>> solved = executor_.SolveItems(items);
  for (size_t j = 0; j < solved.size(); ++j) {
    out[item_slot[j]] = std::move(solved[j]);
  }
  return out;
}

}  // namespace phom::serve
