#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "src/serve/mpmc_queue.h"
#include "src/util/status.h"

/// \file relaxed_queue.h
/// RelaxedBlockQueue: a bounded MPMC queue relaxed for throughput, in the
/// spirit of the block-based relaxed FIFOs studied by the
/// Saalvage/block_based_queue work (and the d-balanced / 2D relaxation
/// framework it benchmarks against). The queue is an array of independent
/// Vyukov sub-rings ("blocks", mpmc_queue.h); producers and consumers pick a
/// starting block by bumping a RELAXED shared cursor and probe the blocks
/// round-robin from there. All contention-prone coordination is therefore
/// either a relaxed fetch_add (the cursors — no ordering, no retry loops) or
/// confined to one block (1/B of the producers and consumers on average),
/// which is what removes the single-queue head as the scaling bottleneck.
///
/// Ordering contract — the "relaxed" in the name:
///  * WITHIN one block, elements come out in FIFO order (Vyukov per-cell
///    sequencing).
///  * ACROSS blocks there is no order: an element can overtake at most
///    (blocks − 1) · block_capacity predecessors.
///  * With blocks() == 1 the queue IS the plain Vyukov MPMC FIFO — the
///    executor uses that configuration when strict arrival order matters
///    and the multi-block configuration for order-free component tasks.
///
/// Emptiness/fullness are exact, not probabilistic: TryPush/TryPop fail only
/// after probing EVERY block, so a false return means the whole structure
/// was observed full/empty (same caller contract as MpmcQueue, which is what
/// lets the executor keep its run-inline overflow policy unchanged).
/// Linearizability per element is inherited from the blocks; the relaxation
/// is only about cross-element order, which the serve layer never relies on
/// (results land in preassigned slots and merge in index order).

namespace phom::serve {

template <class T>
class RelaxedBlockQueue {
 public:
  /// `min_capacity` is the TOTAL capacity target, split evenly across
  /// `blocks` sub-rings (each rounds up to a power of two, minimum 2).
  /// `blocks` itself rounds down to a power of two so total capacity stays a
  /// power of two, and is clamped so no block would fall below 2 cells —
  /// a min_capacity-2 queue therefore always degenerates to ONE block of 2,
  /// preserving the exact capacity the full-queue inline-run tests pin.
  RelaxedBlockQueue(size_t min_capacity, size_t blocks) {
    size_t cap = 2;
    while (cap < min_capacity) cap <<= 1;
    size_t b = 1;
    while ((b << 1) <= blocks && (b << 1) <= cap / 2) b <<= 1;
    block_mask_ = b - 1;
    blocks_.reserve(b);
    for (size_t i = 0; i < b; ++i) {
      blocks_.push_back(std::make_unique<MpmcQueue<T>>(cap / b));
    }
  }

  RelaxedBlockQueue(const RelaxedBlockQueue&) = delete;
  RelaxedBlockQueue& operator=(const RelaxedBlockQueue&) = delete;

  size_t blocks() const { return block_mask_ + 1; }
  size_t capacity() const { return blocks() * blocks_[0]->capacity(); }

  /// False only when every block was observed full.
  bool TryPush(T value) {
    const uint64_t start =
        push_cursor_.fetch_add(1, std::memory_order_relaxed);
    for (size_t i = 0; i <= block_mask_; ++i) {
      // TryPushMove consumes `value` only on success, so probing the next
      // block after a full one retries with the payload intact.
      if (blocks_[(start + i) & block_mask_]->TryPushMove(value)) return true;
    }
    return false;
  }

  /// False only when every block was observed empty.
  bool TryPop(T* out) {
    const uint64_t start = pop_cursor_.fetch_add(1, std::memory_order_relaxed);
    for (size_t i = 0; i <= block_mask_; ++i) {
      if (blocks_[(start + i) & block_mask_]->TryPop(out)) return true;
    }
    return false;
  }

 private:
  std::vector<std::unique_ptr<MpmcQueue<T>>> blocks_;
  size_t block_mask_ = 0;
  alignas(kCacheLine) std::atomic<uint64_t> push_cursor_{0};
  alignas(kCacheLine) std::atomic<uint64_t> pop_cursor_{0};
};

}  // namespace phom::serve
