#pragma once

#include <memory>
#include <vector>

#include "src/serve/executor.h"
#include "src/serve/lru.h"

/// \file shard.h
/// Sharded multi-instance serving: a ShardedServer owns one EvalSession per
/// instance shard, a shared BatchExecutor thread pool, and a cross-instance
/// ContextLru so preparations are shared whenever shards (or tenants) carry
/// identical instances and label sets. Requests address shards by index —
/// routing keys to shards is the caller's partitioning policy.
///
/// The front door is the asynchronous request/response API (request.h,
/// async.h): Submit/SubmitBatch return SolveTickets immediately, with
/// per-request deadlines, overrides and cooperative cancellation; Collect
/// waits (helping to drain the pool's queue). The synchronous
/// Solve/SolveBatch/SolveRequests are thin submit+wait wrappers over the
/// same path, kept for callers that want blocking semantics.
///
/// Graceful degradation: set ShardedServerOptions::solve.degrade (server-
/// wide default) or the per-request SolveRequest override to
/// DegradeMode::kOnDeadlineRisk and deadline-threatened requests answer a
/// budgeted Monte Carlo estimate with DegradeInfo provenance instead of
/// DeadlineExceeded — see executor.h for the full semantics.
///
/// Predictive admission & slack ordering: install a CostModel on
/// ShardedServerOptions::executor.cost_model (optionally with
/// executor.enable_shedding) and the shared pool predicts each request's
/// exact-solve cost at submit — degrading doomed requests proactively,
/// shedding hopeless non-degradable ones with kResourceExhausted, and
/// dispatching deadline-carrying requests earliest-effective-deadline-first
/// across ALL shards (the pool is shared, so slack ordering is global).
/// Counters: executor_stats(). Full semantics: executor.h, cost_model.h.
///
/// Thread safety: every public method may be called from many threads at
/// once (sessions, the LRU and the executor are individually thread-safe).
/// Determinism: every request that completes answers bit-identically to
/// solving it serially with EvalSession::Solve, for every thread count (see
/// executor.h for why). Destruction drains: outstanding tickets complete
/// before the sessions die (the executor is destroyed first).

namespace phom::serve {

struct ShardedServerOptions {
  /// Solve options applied by every shard's session (numeric backend,
  /// forced engines, fallback limits, Monte Carlo budget/seed); SolveRequest
  /// overrides are applied per request on top.
  SolveOptions solve;
  /// Capacity of the shared cross-instance context LRU.
  ContextLruOptions context_cache;
  ExecutorOptions executor;
};

/// One query addressed to one shard — the SYNCHRONOUS batch unit. The raw
/// pointer is safe only because SolveRequests blocks until every result is
/// in; asynchronous submission uses SolveRequest (request.h), which owns
/// its query.
struct ShardRequest {
  size_t shard = 0;
  const DiGraph* query = nullptr;
};

class ShardedServer {
 public:
  explicit ShardedServer(std::vector<ProbGraph> shards,
                         ShardedServerOptions options = {});

  size_t num_shards() const { return sessions_.size(); }
  /// PHOM_CHECKs the index: these are operator introspection APIs — an
  /// out-of-range shard here is a caller bug, unlike the request paths
  /// below, which validate untrusted indices and answer Invalid.
  const EvalSession& session(size_t shard) const {
    PHOM_CHECK_MSG(shard < sessions_.size(), "shard index out of range");
    return *sessions_[shard];
  }
  const ShardedServerOptions& options() const { return options_; }

  // -------------------------------------------------------------------------
  // Asynchronous front door.
  // -------------------------------------------------------------------------

  /// Submits one request, routed by request.shard, and returns its ticket
  /// immediately. Rejections (out-of-range shard, null query) come back as
  /// already-completed tickets with Invalid — per request, the batch around
  /// them is undisturbed. Deadline/cancellation semantics: executor.h.
  SolveTicket Submit(SolveRequest request, CompletionCallback callback = nullptr);

  /// Submits a batch in order; tickets align with `requests`.
  std::vector<SolveTicket> SubmitBatch(std::vector<SolveRequest> requests);

  /// Waits for the tickets and moves their results out, in order; the
  /// calling thread helps drain the pool's queue while it waits.
  std::vector<Result<SolveResult>> Collect(std::vector<SolveTicket>& tickets);

  // -------------------------------------------------------------------------
  // Synchronous wrappers (submit + wait over the async path).
  // -------------------------------------------------------------------------

  /// One query against one shard (Invalid when the shard index is out of
  /// range). Equivalent to Submit + Collect on a borrowed query.
  Result<SolveResult> Solve(size_t shard, const DiGraph& query);

  /// A batch against one shard, fanned over the thread pool.
  std::vector<Result<SolveResult>> SolveBatch(
      size_t shard, const std::vector<DiGraph>& queries);

  /// A mixed batch across shards, fanned over the thread pool; results
  /// align with `requests` (per-request failures stay per-request).
  std::vector<Result<SolveResult>> SolveRequests(
      const std::vector<ShardRequest>& requests);

  /// Counters of the shared cross-instance context cache.
  ContextLruStats context_cache_stats() const { return cache_->stats(); }
  SessionStats session_stats(size_t shard) const {
    return session(shard).stats();
  }
  /// Admission/scheduling counters of the shared executor (submitted, exact
  /// solves started, proactive/reactive degradations, shed requests).
  ExecutorStats executor_stats() const { return executor_.stats(); }

 private:
  ShardedServerOptions options_;
  std::shared_ptr<ContextLru> cache_;
  /// unique_ptr so sessions (which hold a mutex) never move.
  std::vector<std::unique_ptr<EvalSession>> sessions_;
  /// Last member: destroyed first, draining outstanding tickets while the
  /// sessions above are still alive.
  BatchExecutor executor_;
};

}  // namespace phom::serve
