#pragma once

#include <memory>
#include <vector>

#include "src/serve/executor.h"
#include "src/serve/lru.h"

/// \file shard.h
/// Sharded multi-instance serving: a ShardedServer owns one EvalSession per
/// instance shard, a shared BatchExecutor thread pool, and a cross-instance
/// ContextLru so preparations are shared whenever shards (or tenants) carry
/// identical instances and label sets. Requests address shards by index —
/// routing keys to shards is the caller's partitioning policy.
///
/// Thread safety: every public method may be called from many threads at
/// once (sessions, the LRU and the executor are individually thread-safe).
/// Determinism: SolveBatch/SolveRequests answers are bit-identical to
/// solving each request serially with Solve, for every thread count (see
/// executor.h for why).

namespace phom::serve {

struct ShardedServerOptions {
  /// Solve options applied by every shard's session (numeric backend,
  /// forced engines, fallback limits, Monte Carlo budget/seed).
  SolveOptions solve;
  /// Capacity of the shared cross-instance context LRU.
  ContextLruOptions context_cache;
  ExecutorOptions executor;
};

/// One query addressed to one shard.
struct ShardRequest {
  size_t shard = 0;
  const DiGraph* query = nullptr;
};

class ShardedServer {
 public:
  explicit ShardedServer(std::vector<ProbGraph> shards,
                         ShardedServerOptions options = {});

  size_t num_shards() const { return sessions_.size(); }
  /// PHOM_CHECKs the index: these are operator introspection APIs — an
  /// out-of-range shard here is a caller bug, unlike the request paths
  /// below, which validate untrusted indices and answer Invalid.
  const EvalSession& session(size_t shard) const {
    PHOM_CHECK_MSG(shard < sessions_.size(), "shard index out of range");
    return *sessions_[shard];
  }
  const ShardedServerOptions& options() const { return options_; }

  /// One query against one shard, solved inline on the calling thread
  /// (Invalid when the shard index is out of range).
  Result<SolveResult> Solve(size_t shard, const DiGraph& query);

  /// A batch against one shard, fanned over the thread pool.
  std::vector<Result<SolveResult>> SolveBatch(
      size_t shard, const std::vector<DiGraph>& queries);

  /// A mixed batch across shards, fanned over the thread pool; results
  /// align with `requests` (per-request failures stay per-request).
  std::vector<Result<SolveResult>> SolveRequests(
      const std::vector<ShardRequest>& requests);

  /// Counters of the shared cross-instance context cache.
  ContextLruStats context_cache_stats() const { return cache_->stats(); }
  SessionStats session_stats(size_t shard) const {
    return session(shard).stats();
  }

 private:
  ShardedServerOptions options_;
  std::shared_ptr<ContextLru> cache_;
  /// unique_ptr so sessions (which hold a mutex) never move.
  std::vector<std::unique_ptr<EvalSession>> sessions_;
  BatchExecutor executor_;
};

}  // namespace phom::serve
