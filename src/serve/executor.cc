#include "src/serve/executor.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cmath>
#include <exception>
#include <string>
#include <utility>

namespace phom::serve {

namespace {

/// Placeholder status for result slots that have not been written yet; every
/// slot is overwritten exactly once before its request completes, so callers
/// never observe it.
Result<SolveResult> PendingResult() {
  return Status::Invalid("serve: result slot not yet computed");
}

size_t ResolveThreads(const ExecutorOptions& options) {
  size_t n = options.threads;
  if (n == 0) {
    n = std::thread::hardware_concurrency();
    if (n == 0) n = 1;
  }
  return n;
}

size_t ResolveInjectionBlocks(const ExecutorOptions& options) {
  if (options.injection_blocks != 0) return options.injection_blocks;
  // Auto: one block per worker up to 8 — enough cursor spread to take the
  // queue off the contention path, few enough that the all-blocks probe on
  // pop stays cheap. RelaxedBlockQueue clamps further so no block drops
  // below 2 cells (a capacity-2 queue is always one strict-FIFO block).
  return std::min<size_t>(ResolveThreads(options), 8);
}

}  // namespace

size_t IntervalWidthBucket(double width) {
  if (!(width >= 0.0)) {
    // NaN, or negative from an inverted hi < lo "enclosure": a kernel bug,
    // not a point answer. The old `!(width > 0.0) → bucket 0` filing hid
    // these among the point enclosures; account for them loudly instead.
    assert(!"IntervalWidthBucket: NaN or negative enclosure width");
    return kIntervalWidthInvalid;
  }
  if (width == 0.0) return 0;  // point enclosures
  int exponent = 0;
  std::frexp(width, &exponent);
  // width = m · 2^exponent with m in [0.5, 1): exponent 0 means widths in
  // [0.5, 1), which lands in bucket 64; everything 2^-63 and below clamps
  // into bucket 1, widths >= 1 into bucket 65.
  return static_cast<size_t>(std::clamp(exponent + 64, 1, 65));
}

BatchExecutor::BatchExecutor(ExecutorOptions options)
    : options_(std::move(options)),
      injection_(options_.queue_capacity == 0 ? 2 : options_.queue_capacity,
                 ResolveInjectionBlocks(options_)) {
  if (options_.cost_model != nullptr &&
      !options_.cost_model_warm_start_json.empty()) {
    // Warm start BEFORE any worker exists: the first Submit's snapshot
    // already sees the imported cells, and no completion can race the
    // import. A bad snapshot is a configuration bug — fail construction
    // loudly rather than silently serving on cold priors.
    const Result<size_t> imported = options_.cost_model->ImportSnapshotJson(
        options_.cost_model_warm_start_json,
        options_.cost_model_warm_start_decay);
    PHOM_CHECK_MSG(imported.ok(),
                   "executor: cost_model_warm_start_json rejected: " +
                       imported.status().message());
  }
  const size_t n = ResolveThreads(options_);
  // Per-worker EDF heap bound: the historical GLOBAL bound (the queue
  // capacity) split across workers, so total queued deadline work keeps the
  // same memory bound — and with one worker the heap is exactly the old
  // global heap (same capacity, same displace threshold).
  const size_t heap_capacity =
      std::max<size_t>(1, injection_.capacity() / n);
  worker_state_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    worker_state_.push_back(std::make_unique<Worker>(
        options_.steal_deque_capacity, heap_capacity,
        options_.steal_seed ^ static_cast<uint64_t>(i)));
  }
  workers_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

BatchExecutor::~BatchExecutor() {
  // Drain (checked replacement for the old "destruction with calls in
  // flight is UB"): run queued tasks on this thread and wait out workers'
  // in-flight ones, so every outstanding ticket completes — and no task can
  // touch the dying pool — before the workers are stopped. The shared pop
  // sweeps every worker's heap and deque, so a parked worker cannot strand
  // its queued tasks.
  Task task;
  while (!AllRequestsFinished()) {
    if (TryPopTaskShared(&task)) {
      RunTask(task);
      task.request.reset();
      continue;
    }
    std::unique_lock<std::mutex> lock(finish_mu_);
    finish_cv_.wait_for(lock, std::chrono::milliseconds(50),
                        [this] { return outstanding_ == 0; });
  }
  {
    std::lock_guard<std::mutex> lock(work_mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

bool BatchExecutor::AllRequestsFinished() {
  std::lock_guard<std::mutex> lock(finish_mu_);
  return outstanding_ == 0;
}

void BatchExecutor::NotifyOne() {
  // Acquiring the lock first orders the preceding push before any worker's
  // re-check-then-wait, so the wakeup cannot be missed.
  { std::lock_guard<std::mutex> lock(work_mu_); }
  work_cv_.notify_one();
}

void BatchExecutor::NotifyAll() {
  { std::lock_guard<std::mutex> lock(work_mu_); }
  work_cv_.notify_all();
}

void BatchExecutor::EnqueueTask(Task task) {
  if (task.request->has_effective_deadline) {
    // Slack-ordered lane: route to the least-loaded worker's EDF heap
    // (ties break to the lowest index, so one worker degenerates to the
    // historical single global heap).
    size_t best = 0;
    size_t best_load = static_cast<size_t>(-1);
    for (size_t i = 0; i < worker_state_.size(); ++i) {
      const Worker& w = *worker_state_[i];
      const size_t load =
          w.edf_size.load(std::memory_order_relaxed) + w.deque.SizeApprox();
      if (load < best_load) {
        best_load = load;
        best = i;
      }
    }
    Worker& w = *worker_state_[best];
    std::optional<Task> displaced;
    {
      std::lock_guard<std::mutex> lock(w.edf_mu);
      w.edf_heap.push(DeadlineEntry{task.request->effective_deadline,
                                    w.edf_seq++, std::move(task)});
      if (w.edf_heap.size() > w.heap_capacity) {
        // Overflow: displace and run the EARLIEST entry inline — which may
        // or may not be the incoming task. (Running the INCOMING task
        // inline, as the pre-rebuild code did, silently bypassed slack
        // ordering whenever the newcomer's deadline was not the earliest.)
        displaced =
            std::move(const_cast<DeadlineEntry&>(w.edf_heap.top()).task);
        w.edf_heap.pop();
      }
      w.edf_size.store(w.edf_heap.size(), std::memory_order_relaxed);
    }
    // notify_all, not notify_one: with stealing off only the owning worker
    // (or a helper) can pop this heap, and a notify_one may land on a
    // different worker that finds nothing and sleeps again.
    NotifyAll();
    if (displaced.has_value()) {
      edf_displaced_.fetch_add(1, std::memory_order_relaxed);
      RunTask(*displaced);
    }
    return;
  }
  if (injection_.TryPush(task)) {
    NotifyOne();
    return;
  }
  // Full queue: run inline. Bounds memory without unbounded blocking, and
  // the result is identical because tasks are location-independent.
  inline_runs_.fetch_add(1, std::memory_order_relaxed);
  RunTask(task);
}

bool BatchExecutor::PopEdf(Worker& w, Task* out) {
  // Lock-free emptiness probe first: the steal sweep touches every victim's
  // heap, and an uncontended-mutex round trip per victim would put the lock
  // back on the idle path the deques just took it off of.
  if (w.edf_size.load(std::memory_order_relaxed) == 0) return false;
  std::lock_guard<std::mutex> lock(w.edf_mu);
  if (w.edf_heap.empty()) return false;
  // priority_queue::top is const; moving the task out is safe because the
  // entry is popped before the lock is released.
  *out = std::move(const_cast<DeadlineEntry&>(w.edf_heap.top()).task);
  w.edf_heap.pop();
  w.edf_size.store(w.edf_heap.size(), std::memory_order_relaxed);
  return true;
}

bool BatchExecutor::TryPopTaskWorker(size_t self, Task* out) {
  Worker& me = *worker_state_[self];
  std::unique_ptr<Task> node;
  // Own deque first: finish the request you fanned out before taking new
  // roots — a later-arriving deadline root must not interleave into an
  // already-running request's component order.
  if (me.deque.PopBottom(&node)) {
    *out = std::move(*node);
    return true;
  }
  if (PopEdf(me, out)) return true;
  if (injection_.TryPop(out)) return true;
  const size_t n = worker_state_.size();
  if (!options_.enable_stealing || n <= 1) return false;
  // Steal from a randomized victim: deque top (the victim's OLDEST task)
  // first, then the victim's EDF heap. The random start decorrelates
  // thieves; the full rotation guarantees any available task is found.
  const size_t start = static_cast<size_t>(me.rng());
  for (size_t k = 0; k < n; ++k) {
    const size_t v = (start + k) % n;
    if (v == self) continue;
    Worker& victim = *worker_state_[v];
    if (victim.deque.TrySteal(&node)) {
      tasks_stolen_.fetch_add(1, std::memory_order_relaxed);
      *out = std::move(*node);
      return true;
    }
    if (PopEdf(victim, out)) {
      tasks_stolen_.fetch_add(1, std::memory_order_relaxed);
      return true;
    }
  }
  return false;
}

bool BatchExecutor::TryPopTaskShared(Task* out) {
  // Helper order (collect-helping, destructor): deadline work first (the
  // historical helper order: heap, then FIFO), then the shared queue, then
  // a sweep of the worker deques so a parked worker cannot strand tasks.
  // The rotating start spreads concurrent helpers across workers.
  const size_t n = worker_state_.size();
  const size_t start = static_cast<size_t>(
      shared_sweep_.fetch_add(1, std::memory_order_relaxed));
  for (size_t k = 0; k < n; ++k) {
    if (PopEdf(*worker_state_[(start + k) % n], out)) return true;
  }
  if (injection_.TryPop(out)) return true;
  std::unique_ptr<Task> node;
  for (size_t k = 0; k < n; ++k) {
    if (worker_state_[(start + k) % n]->deque.TrySteal(&node)) {
      *out = std::move(*node);
      return true;
    }
  }
  return false;
}

void BatchExecutor::Finish(
    const std::shared_ptr<internal::RequestState>& request,
    Result<SolveResult> result) {
  internal::RequestState& req = *request;
  // Release the admission bookkeeping exactly once: refund the predicted
  // backlog charge and withdraw this request's deadline from the pending
  // set (Finish runs once per request, so no double release).
  if (req.charged_backlog_ns != 0 || req.deadline_registered) {
    std::lock_guard<std::mutex> lock(admission_mu_);
    backlog_ns_ -= req.charged_backlog_ns;
    req.charged_backlog_ns = 0;
    if (req.deadline_registered) {
      auto it = pending_deadlines_.find(req.registered_deadline);
      if (it != pending_deadlines_.end()) pending_deadlines_.erase(it);
      req.deadline_registered = false;
    }
  }
  CompletionCallback callback;
  {
    std::lock_guard<std::mutex> lock(req.mu);
    req.stats.finished = RequestClock::now();
    req.stats.degraded = result.ok() && result->degrade.degraded;
    req.stats.escalated = result.ok() && result->escalate.escalated;
    if (result.ok()) {
      // Provenance settles with the result: which error guarantee this
      // answer carries (exact / certified enclosure / statistical bound).
      req.stats.guarantee = GuaranteeOf(*result);
      guarantee_counts_[static_cast<size_t>(req.stats.guarantee)].fetch_add(
          1, std::memory_order_relaxed);
      if (result->numeric == NumericBackend::kIntervalDouble &&
          result->bound.certified) {
        // Enclosure-width observability: log2-bucket how tight the interval
        // backend's published CERTIFIED answer actually was (ExecutorStats).
        // The certified gate keeps degraded Monte Carlo estimates — a
        // statistical bracket, not an enclosure — out of the histogram;
        // they used to slip in here through the degrade path and break the
        // sum(buckets) == certified-interval-results invariant. Escalated
        // results are exact-backend by the time they reach Finish; their
        // pre-escalation width was recorded in MaybeEscalate.
        interval_width_hist_[IntervalWidthBucket(result->bound.hi -
                                                 result->bound.lo)]
            .fetch_add(1, std::memory_order_relaxed);
      }
    }
    if (!req.started_recorded) {
      // The request never ran a task (rejected / expired / cancelled at or
      // before dequeue): it spent its whole life in the queue.
      req.started_recorded = true;
      req.stats.started = req.stats.finished;
    }
    if (!result.ok() && !req.work_started.load(std::memory_order_relaxed)) {
      if (result.status().code() == Status::Code::kDeadlineExceeded) {
        req.stats.expired_before_start = true;
      } else if (result.status().code() == Status::Code::kCancelled) {
        req.stats.cancelled_before_start = true;
      }
    }
    req.result = std::move(result);
    callback = std::move(req.callback);
    req.callback = nullptr;
  }
  if (callback) {
    // Fires before waiters are released (async.h contract), so Take cannot
    // race the callback's view of the result. Must not throw.
    try {
      callback(req.result, req.stats);
    } catch (...) {  // NOLINT(bugprone-empty-catch)
    }
  }
  {
    std::lock_guard<std::mutex> lock(req.mu);
    req.done = true;
  }
  req.cv.notify_all();
  {
    std::lock_guard<std::mutex> lock(finish_mu_);
    --outstanding_;
  }
  finish_cv_.notify_all();
}

void BatchExecutor::FinishOrDegrade(
    const std::shared_ptr<internal::RequestState>& request,
    Result<SolveResult> result) {
  internal::RequestState& req = *request;
  if (!result.ok() && ShouldDegradeStatus(result.status(), req.options.degrade)) {
    // Deadline miss → budgeted Monte Carlo estimate, right here on the
    // thread that detected the miss (submission order and neighbors are
    // unaffected; the sampling floor bounds the overrun). Cancellation is
    // NOT converted — only DeadlineExceeded reaches this branch.
    {
      // The degraded sampling IS this request's first (and only) work when
      // the conversion fires at the dequeue gate of a future call site:
      // record `started` before it runs so solve_time() covers the sampling
      // instead of reading zero (RequestStats monotonicity, request.h).
      std::lock_guard<std::mutex> lock(req.mu);
      if (!req.started_recorded) {
        req.started_recorded = true;
        req.stats.started = RequestClock::now();
      }
    }
    degraded_reactive_.fetch_add(1, std::memory_order_relaxed);
    req.work_started.store(true, std::memory_order_relaxed);
    try {
      result = SolveDegradedMonteCarlo(req.prepared, req.options);
    } catch (const std::exception& e) {
      result =
          Status::Invalid(std::string("serve: degrade exception: ") + e.what());
    }
  }
  MaybeEscalate(req, &result);
  Finish(request, std::move(result));
}

void BatchExecutor::MaybeEscalate(internal::RequestState& req,
                                  Result<SolveResult>* result) {
  if (!result->ok()) return;
  const SolveResult& interval = result->ValueOrDie();
  // Only a successful CERTIFIED interval answer can be "too wide": degraded
  // estimates carry a statistical bracket (re-solving them exactly is what
  // the deadline already ruled out), and exact/double answers have no
  // enclosure. NaN widths (an invalid enclosure) escalate too — better an
  // exact re-run than publishing a broken interval (ShouldEscalateWidth).
  if (interval.numeric != NumericBackend::kIntervalDouble ||
      !interval.bound.certified || interval.degrade.degraded) {
    return;
  }
  const double width = interval.bound.hi - interval.bound.lo;
  if (!ShouldEscalateWidth(width, interval.bound.hi, req.options.escalate)) {
    return;
  }
  escalated_attempted_.fetch_add(1, std::memory_order_relaxed);
  // Budget gates, both sides recorded in ExecutorStats: an already-lapsed
  // deadline (or explicit cancel) keeps the certified interval answer — it
  // is still sound, just wide — and so does a cost-model prediction that
  // the exact re-run cannot fit what remains of the deadline.
  if (!req.cancel.Check().ok()) {
    escalated_budget_denied_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  SolveOptions opts = req.options;
  opts.numeric = NumericBackend::kExact;
  opts.escalate = EscalationPolicy{};  // the re-run must not re-trigger
  if (options_.cost_model != nullptr && req.deadline_registered) {
    const std::shared_ptr<const CostModelSnapshot> snapshot =
        options_.cost_model->Snapshot();
    const CostPrediction rerun =
        snapshot->PredictSolveCost(req.prepared, req.dispatch, opts);
    if (RequestClock::now() + rerun.expected > req.registered_deadline) {
      escalated_budget_denied_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
  }
  const RequestClock::time_point t0 = RequestClock::now();
  Result<SolveResult> exact = PendingResult();
  try {
    // Same prepared problem, exact backend, right here on the completing
    // thread (mirrors FinishOrDegrade's conversion: neighbors unaffected).
    // The request's CancelToken still gates the re-run's yield points, so a
    // deadline lapse mid-re-run aborts it and the interval answer stands.
    exact = SolvePrepared(req.prepared, opts);
  } catch (const std::exception& e) {
    exact =
        Status::Invalid(std::string("serve: escalate exception: ") + e.what());
  }
  const std::chrono::nanoseconds spent = RequestClock::now() - t0;
  if (!exact.ok()) return;  // keep the certified interval answer
  if (options_.cost_model != nullptr) {
    // The model learns what exact re-runs cost on these cells, which is
    // exactly what DecideAdmission's escalation pricing charges for.
    options_.cost_model->RecordSolve(req.prepared, exact.ValueOrDie());
  }
  // The escaped interval is still a completed certified interval result:
  // record its width here, since Finish will only see the exact replacement
  // (exactly-once histogram accounting — executor.h).
  interval_width_hist_[IntervalWidthBucket(width)].fetch_add(
      1, std::memory_order_relaxed);
  SolveResult& replacement = exact.ValueOrDie();
  replacement.escalate.escalated = true;
  replacement.escalate.width_before = width;
  replacement.escalate.budget_spent = spent;
  *result = std::move(exact);
  escalated_succeeded_.fetch_add(1, std::memory_order_relaxed);
}

MonotonicArena* BatchExecutor::TaskArena(size_t self) {
  MonotonicArena* arena;
  if (self != kNoWorker) {
    // A worker's RunTask only ever runs on the owning worker thread
    // (WorkerLoop and FanOut recursion), so its arena is single-threaded.
    arena = &worker_state_[self]->arena;
  } else {
    // Helpers (Submit-inline, collect-helping, the destructor) get one
    // arena per thread with the same reuse discipline.
    static thread_local MonotonicArena helper_arena;
    arena = &helper_arena;
  }
  arena->Reset();
  return arena;
}

void BatchExecutor::FanOut(const Task& root, size_t self) {
  internal::RequestState& req = *root.request;
  const size_t n = req.dispatch.components;
  if (self != kNoWorker && options_.enable_stealing) {
    Worker& me = *worker_state_[self];
    bool queued = false;
    // Push components n-1 .. 1: the owner's LIFO pop then runs them in
    // INDEX order after component 0 (run directly below) — exactly the
    // historical FIFO order at one thread, so cost-model observation order
    // is unchanged. Thieves take the deque top, i.e. the HIGHEST index.
    for (size_t c = n; c-- > 1;) {
      auto node = std::make_unique<Task>(
          Task{root.request, static_cast<int32_t>(c)});
      if (me.deque.PushBottom(node)) {
        queued = true;
        continue;
      }
      Task overflow = std::move(*node);
      if (injection_.TryPush(overflow)) {
        queued = true;
        continue;
      }
      inline_runs_.fetch_add(1, std::memory_order_relaxed);
      RunTask(overflow, self);
    }
    if (queued) NotifyAll();  // idle workers wake to steal
    // Run component 0 immediately: saves a push/pop pair, and the request's
    // work provably starts at fan-out even if every pushed task is stolen.
    RunTask(Task{root.request, 0}, self);
    if (options_.test_after_fanout) options_.test_after_fanout(self);
    return;
  }
  // Helper thread, or stealing disabled: the shared injection lane in index
  // order (the historical dispatch shape).
  for (size_t c = 0; c < n; ++c) {
    Task task{root.request, static_cast<int32_t>(c)};
    if (injection_.TryPush(task)) {
      NotifyOne();
      continue;
    }
    inline_runs_.fetch_add(1, std::memory_order_relaxed);
    RunTask(task, self);
  }
}

void BatchExecutor::RunTask(const Task& task, size_t self) {
  internal::RequestState& req = *task.request;
  {
    std::lock_guard<std::mutex> lock(req.mu);
    if (!req.started_recorded) {
      req.started_recorded = true;
      req.stats.started = RequestClock::now();
    }
  }
  // Proactive degradation: admission already decided the exact attempt
  // cannot fit, so this task runs the budgeted estimator directly. Only an
  // EXPLICIT cancel aborts it — an expired deadline is exactly what the
  // estimate is for (the sampling floor bounds the overrun), so the dequeue
  // gate's DeadlineExceeded must not kill it.
  if (task.component < 0 && req.proactive) {
    if (req.cancel.cancelled()) {
      Finish(task.request, Status::Cancelled("solve cancelled by caller"));
      return;
    }
    req.work_started.store(true, std::memory_order_relaxed);
    Result<SolveResult> result = PendingResult();
    try {
      result = SolveDegradedMonteCarlo(req.prepared, req.options);
      if (result.ok() && result->degrade.degraded) {
        result.ValueOrDie().degrade.proactive = true;
      }
    } catch (const std::exception& e) {
      result =
          Status::Invalid(std::string("serve: degrade exception: ") + e.what());
    }
    Finish(task.request, std::move(result));
    return;
  }
  // Deadline / cancellation gate at dequeue: a request that expired (or was
  // cancelled) while queued fails right here, without solving — later
  // requests behind it in the queue are served normally.
  const Status gate = req.cancel.Check();
  // PHOM_CHECK failures are bugs and throw std::logic_error; on a worker
  // thread that would terminate the process, so surface them as an errored
  // result instead (serial solving would have thrown to the caller).
  if (task.component < 0) {
    if (req.dispatch.components > 0) {
      // Fan-out root of a componentwise request: spawn the component tasks
      // at this thread (deque locality — see FanOut). A root that expired
      // or was cancelled in the queue fails here without spawning anything.
      if (!gate.ok()) {
        FinishOrDegrade(task.request, gate);
        return;
      }
      FanOut(task, self);
      return;
    }
    if (!gate.ok()) {
      FinishOrDegrade(task.request, gate);
      return;
    }
    req.work_started.store(true, std::memory_order_relaxed);
    MarkExactStarted(req);
    Result<SolveResult> result = PendingResult();
    try {
      // Thread the per-task arena through SolveOptions::scratch: kernels
      // reuse it for AC-3 buffers instead of mallocing (answers unchanged).
      SolveOptions opts = req.options;
      opts.scratch = TaskArena(self);
      result = SolvePrepared(req.prepared, opts);
    } catch (const std::exception& e) {
      result =
          Status::Invalid(std::string("serve: worker exception: ") + e.what());
    }
    if (options_.cost_model != nullptr && result.ok()) {
      options_.cost_model->RecordSolve(req.prepared, *result);
    }
    FinishOrDegrade(task.request, std::move(result));
    return;
  }
  const size_t c = static_cast<size_t>(task.component);
  if (!gate.ok()) {
    // The skipped component reports the interruption; the index-ordered
    // merge below turns the first such slot into the request's status.
    req.parts[c] = gate;
  } else {
    req.work_started.store(true, std::memory_order_relaxed);
    MarkExactStarted(req);
    try {
      SolveOptions opts = req.options;
      opts.scratch = TaskArena(self);
      req.parts[c] =
          SolvePreparedComponent(req.prepared, req.dispatch, c, opts);
    } catch (const std::exception& e) {
      req.parts[c] =
          Status::Invalid(std::string("serve: worker exception: ") + e.what());
    }
    if (options_.cost_model != nullptr && req.parts[c].ok()) {
      options_.cost_model->RecordComponentSolve(req.prepared, req.dispatch, c,
                                                *req.parts[c]);
    }
  }
  // acq_rel: the last finisher must observe every other task's part write.
  if (req.remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    Result<SolveResult> merged = PendingResult();
    try {
      merged = CombinePreparedComponents(req.prepared, req.dispatch,
                                         req.options, std::move(req.parts));
    } catch (const std::exception& e) {
      merged =
          Status::Invalid(std::string("serve: merge exception: ") + e.what());
    }
    FinishOrDegrade(task.request, std::move(merged));
  }
}

void BatchExecutor::WorkerLoop(size_t index) {
  for (;;) {
    Task task;
    if (TryPopTaskWorker(index, &task)) {
      RunTask(task, index);
      task.request.reset();
      continue;
    }
    std::unique_lock<std::mutex> lock(work_mu_);
    if (stop_) return;
    // re-check under the lock: no missed wakeup
    if (TryPopTaskWorker(index, &task)) {
      lock.unlock();
      RunTask(task, index);
      task.request.reset();
      continue;
    }
    work_cv_.wait(lock);
  }
}

void BatchExecutor::MarkExactStarted(internal::RequestState& req) {
  if (!req.exact_started.exchange(true, std::memory_order_relaxed)) {
    exact_started_.fetch_add(1, std::memory_order_relaxed);
  }
}

void BatchExecutor::ChargeAdmission(
    internal::RequestState& req, std::chrono::nanoseconds predicted,
    const std::optional<RequestClock::time_point>& deadline) {
  std::lock_guard<std::mutex> lock(admission_mu_);
  req.charged_backlog_ns = predicted.count();
  backlog_ns_ += req.charged_backlog_ns;
  if (deadline.has_value()) {
    req.deadline_registered = true;
    req.registered_deadline = *deadline;
    pending_deadlines_.insert(*deadline);
  }
}

bool BatchExecutor::PredictedBacklogHopeless(RequestClock::time_point deadline,
                                             RequestClock::time_point now) {
  const int64_t threads =
      static_cast<int64_t>(workers_.empty() ? 1 : workers_.size());
  std::lock_guard<std::mutex> lock(admission_mu_);
  // Optimistic drain estimate: the charged backlog split evenly across the
  // workers. Optimism is deliberate — shedding must only fire when the
  // request is hopeless under the BEST case.
  const std::chrono::nanoseconds wait(backlog_ns_ / threads);
  const RequestClock::time_point clears = now + wait;
  if (clears <= deadline) return false;
  // Hopeless only when the backlog also outlives the LATEST pending
  // deadline (thus every pending deadline).
  return pending_deadlines_.empty() || clears > *pending_deadlines_.rbegin();
}

ExecutorStats BatchExecutor::stats() const {
  ExecutorStats s;
  s.submitted = submitted_.load(std::memory_order_relaxed);
  s.exact_solves_started = exact_started_.load(std::memory_order_relaxed);
  s.degraded_proactive = degraded_proactive_.load(std::memory_order_relaxed);
  s.degraded_reactive = degraded_reactive_.load(std::memory_order_relaxed);
  s.shed = shed_.load(std::memory_order_relaxed);
  s.tasks_stolen = tasks_stolen_.load(std::memory_order_relaxed);
  s.inline_runs = inline_runs_.load(std::memory_order_relaxed);
  s.edf_displaced_runs = edf_displaced_.load(std::memory_order_relaxed);
  s.escalated_attempted =
      escalated_attempted_.load(std::memory_order_relaxed);
  s.escalated_succeeded =
      escalated_succeeded_.load(std::memory_order_relaxed);
  s.escalated_budget_denied =
      escalated_budget_denied_.load(std::memory_order_relaxed);
  s.results_exact = guarantee_counts_[static_cast<size_t>(
      Guarantee::kExact)].load(std::memory_order_relaxed);
  s.results_interval = guarantee_counts_[static_cast<size_t>(
      Guarantee::kIntervalEnclosure)].load(std::memory_order_relaxed);
  s.results_empirical = guarantee_counts_[static_cast<size_t>(
      Guarantee::kEmpiricalDouble)].load(std::memory_order_relaxed);
  s.results_absolute95 = guarantee_counts_[static_cast<size_t>(
      Guarantee::kAbsolute95)].load(std::memory_order_relaxed);
  s.results_relative95 = guarantee_counts_[static_cast<size_t>(
      Guarantee::kRelative95)].load(std::memory_order_relaxed);
  for (size_t b = 0; b < interval_width_hist_.size(); ++b) {
    s.interval_width_hist[b] =
        interval_width_hist_[b].load(std::memory_order_relaxed);
  }
  return s;
}

SolveTicket BatchExecutor::Submit(EvalSession& session, SolveRequest request,
                                  CompletionCallback callback) {
  auto state = std::make_shared<internal::RequestState>();
  state->stats.enqueued = RequestClock::now();
  state->query = std::move(request.query);
  state->ucq = std::move(request.ucq);
  state->callback = std::move(callback);
  // A relative budget resolves against the SUBMIT time, here — not against
  // the time the request object was built (request.h): batch-building time
  // between WithBudget and Submit no longer eats the budget. An explicit
  // absolute deadline combines by taking the earlier effective deadline.
  if (request.budget.has_value()) {
    const RequestClock::time_point from_budget =
        state->stats.enqueued + *request.budget;
    if (!request.deadline.has_value() || from_budget < *request.deadline) {
      request.deadline = from_budget;
    }
  }
  if (request.deadline.has_value()) {
    state->cancel.SetDeadline(*request.deadline);
  }
  state->options = ApplyOverrides(session.options(), request.overrides);
  state->options.cancel = &state->cancel;  // state is heap-pinned
  {
    std::lock_guard<std::mutex> lock(finish_mu_);
    ++outstanding_;
  }
  submitted_.fetch_add(1, std::memory_order_relaxed);
  SolveTicket ticket(state);
  if (state->query == nullptr && state->ucq == nullptr) {
    Finish(state, Status::Invalid("serve: null query in request"));
    return ticket;
  }
  if (state->query != nullptr && state->ucq != nullptr) {
    Finish(state, Status::Invalid(
                      "serve: request carries both a query and a ucq — set "
                      "exactly one"));
    return ticket;
  }
  // Fail fast on an already-lapsed deadline: nothing is prepared and the
  // session is never touched (its stats see no query). Exception: with the
  // degrade policy on, an expired deadline is exactly what the policy
  // converts — prepare and enqueue normally so a worker (whose dequeue gate
  // will fail) produces the budgeted estimate instead of the error.
  const Status gate = state->cancel.Check();
  if (!gate.ok() && !ShouldDegradeStatus(gate, state->options.degrade)) {
    Finish(state, gate);
    return ticket;
  }
  // Shedding gate (before any preparation — a shed request never touches
  // the session): a deadline-carrying request that cannot degrade is
  // rejected when the predicted backlog is hopeless against every pending
  // deadline, its own included. Degradable requests fall through to the
  // proactive path below instead — an estimate beats an error.
  if (options_.enable_shedding && options_.cost_model != nullptr &&
      request.deadline.has_value() &&
      state->options.degrade.mode == DegradeMode::kOff &&
      PredictedBacklogHopeless(*request.deadline, state->stats.enqueued)) {
    shed_.fetch_add(1, std::memory_order_relaxed);
    {
      std::lock_guard<std::mutex> lock(state->mu);
      state->stats.shed = true;
    }
    Finish(state,
           Status::ResourceExhausted(
               "serve: request shed at admission (predicted backlog exceeds "
               "every pending deadline)"));
    return ticket;
  }
  try {
    // Preparation runs on the submitting thread: it is the cheap, cached
    // half of a solve, and doing it here fixes the context-cache population
    // order so session stats match serial execution. A UCQ request prepares
    // through the lifted front door; its fan-out (below) is over the safe
    // plan's units instead of instance components.
    state->prepared = state->ucq != nullptr ? session.PrepareUcq(*state->ucq)
                                            : session.Prepare(*state->query);
    if (options_.select_tightest_enclosure && options_.cost_model != nullptr) {
      // Tightest-enclosure routing, BEFORE dispatch planning so the forced
      // engine shapes the component plan: a pure function of the snapshot
      // (cost_model.h), empty when auto dispatch is already the tightest
      // choice or the request is not a plain interval-backend solve.
      std::string tightest =
          SelectTightestEngine(*options_.cost_model->Snapshot(),
                               state->prepared, state->options);
      if (!tightest.empty()) state->options.force_engine = std::move(tightest);
    }
    if (options_.split_components) {
      // One registry scan per query; every component task reuses the plan.
      state->dispatch = PlanComponentDispatch(state->prepared, state->options);
    }
    if (options_.cost_model != nullptr) {
      // Predictive admission against an immutable snapshot taken NOW
      // (snapshot-at-submit: the decision is a pure function of the
      // snapshot, deterministic at every thread count — cost_model.h).
      const std::shared_ptr<const CostModelSnapshot> snapshot =
          options_.cost_model->Snapshot();
      std::optional<std::chrono::nanoseconds> remaining;
      if (request.deadline.has_value()) {
        remaining = *request.deadline - state->stats.enqueued;
      }
      const AdmissionDecision decision =
          DecideAdmission(*snapshot, state->prepared, state->dispatch,
                          state->options, remaining);
      {
        std::lock_guard<std::mutex> lock(state->mu);
        state->stats.predicted_cost = decision.predicted.expected;
      }
      ChargeAdmission(*state, decision.predicted.expected, request.deadline);
      if (request.deadline.has_value()) {
        state->has_effective_deadline = true;
        state->effective_deadline =
            *request.deadline - decision.predicted.expected;
      }
      if (decision.action == AdmissionAction::kDegradeProactively) {
        // Skip the doomed exact attempt entirely: one task, which runs the
        // budgeted estimator directly (provenance DegradeInfo::proactive).
        state->proactive = true;
        degraded_proactive_.fetch_add(1, std::memory_order_relaxed);
        EnqueueTask(Task{state, -1});
        return ticket;
      }
    } else if (request.deadline.has_value()) {
      // No model: the effective deadline is the deadline itself (plain EDF).
      state->has_effective_deadline = true;
      state->effective_deadline = *request.deadline;
    }
    // One task regardless of the dispatch shape: a componentwise request
    // enqueues its FAN-OUT ROOT (component = -1 with dispatch.components
    // set), and whichever thread dequeues the root spawns the component
    // tasks right there (FanOut) — a worker onto its own deque. The result
    // slots and the completion count are preassigned HERE so the merge
    // logic never depends on where the fan-out happened.
    const size_t parallelism = state->dispatch.components;
    if (parallelism > 0) {
      state->parts.assign(parallelism, PendingResult());
      state->remaining.store(parallelism, std::memory_order_relaxed);
    }
    EnqueueTask(Task{state, -1});
  } catch (const std::exception& e) {
    // Reachable only before this request's first EnqueueTask (enqueueing
    // never throws — the payload is a shared_ptr — and RunTask catches its
    // own exceptions), so no task exists yet and finishing here cannot
    // double-complete the request.
    Finish(state,
           Status::Invalid(std::string("serve: submit exception: ") + e.what()));
  }
  return ticket;
}

std::vector<SolveTicket> BatchExecutor::SubmitBatch(
    EvalSession& session, std::vector<SolveRequest> requests) {
  std::vector<SolveTicket> tickets;
  tickets.reserve(requests.size());
  for (SolveRequest& request : requests) {
    tickets.push_back(Submit(session, std::move(request)));
  }
  return tickets;
}

std::vector<Result<SolveResult>> BatchExecutor::Collect(
    std::vector<SolveTicket>& tickets) {
  std::vector<Result<SolveResult>> out;
  out.reserve(tickets.size());
  for (SolveTicket& ticket : tickets) {
    out.push_back(ticket.valid()
                      ? ticket.Take()
                      : Result<SolveResult>(
                            Status::Invalid("serve: empty ticket")));
  }
  return out;
}

std::vector<Result<SolveResult>> BatchExecutor::CollectHelping(
    std::vector<SolveTicket>& tickets) {
  // Help drain the pool while waiting (essential when threads are scarce
  // or busy with other batches), then collect in order.
  Task task;
  for (SolveTicket& ticket : tickets) {
    while (ticket.valid() && !ticket.done()) {
      if (TryPopTaskShared(&task)) {
        RunTask(task);
        task.request.reset();
        continue;
      }
      // Bounded wait (not Wait): the ticket's last task may be held by a
      // worker while new helpable tasks arrive behind our empty-queue read.
      ticket.WaitFor(std::chrono::milliseconds(50));
    }
  }
  return Collect(tickets);
}

std::vector<Result<SolveResult>> BatchExecutor::SolveItems(
    const std::vector<BatchItem>& items) {
  std::vector<SolveTicket> tickets;
  tickets.reserve(items.size());
  for (const BatchItem& item : items) {
    if (item.session == nullptr) {
      tickets.push_back(SolveTicket::Completed(
          Status::Invalid("serve: null session in batch item")));
      continue;
    }
    if (item.query == nullptr) {
      tickets.push_back(SolveTicket::Completed(
          Status::Invalid("serve: null query in request")));
      continue;
    }
    // Borrowed, not owned: this wrapper blocks until every ticket is done,
    // so the caller's graphs outlive all tasks.
    tickets.push_back(Submit(*item.session, SolveRequest::BorrowQuery(*item.query)));
  }
  return CollectHelping(tickets);
}

std::vector<Result<SolveResult>> BatchExecutor::SolveBatch(
    EvalSession& session, const std::vector<DiGraph>& queries) {
  std::vector<BatchItem> items;
  items.reserve(queries.size());
  for (const DiGraph& query : queries) items.push_back({&session, &query});
  return SolveItems(items);
}

}  // namespace phom::serve
