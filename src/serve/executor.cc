#include "src/serve/executor.h"

#include <atomic>
#include <chrono>
#include <exception>

namespace phom::serve {

namespace {

/// Placeholder status for result slots that have not been written yet; every
/// slot is overwritten exactly once before the batch returns, so callers
/// never observe it.
Result<SolveResult> PendingResult() {
  return Status::Invalid("serve: result slot not yet computed");
}

}  // namespace

/// Per-query bookkeeping. `remaining` counts unfinished component tasks;
/// the task that decrements it to zero performs the deterministic merge.
struct QueryState {
  EvalSession* session = nullptr;
  PreparedProblem prepared{DiGraph(0), nullptr, std::nullopt, {}};
  std::vector<Result<SolveResult>> parts;
  std::atomic<size_t> remaining{0};
};

struct BatchExecutor::BatchState {
  explicit BatchState(size_t n)
      : queries(new QueryState[n]),
        results(n, PendingResult()),
        total(n) {}

  std::unique_ptr<QueryState[]> queries;
  std::vector<Result<SolveResult>> results;
  const size_t total;

  std::mutex mu;
  std::condition_variable done_cv;
  size_t queries_done = 0;  ///< guarded by mu

  void FinishQuery() {
    std::lock_guard<std::mutex> lock(mu);
    if (++queries_done == total) done_cv.notify_all();
  }
  bool Done() {
    std::lock_guard<std::mutex> lock(mu);
    return queries_done == total;
  }
};

BatchExecutor::BatchExecutor(ExecutorOptions options)
    : options_(options),
      queue_(options.queue_capacity == 0 ? 2 : options.queue_capacity) {
  size_t n = options_.threads;
  if (n == 0) {
    n = std::thread::hardware_concurrency();
    if (n == 0) n = 1;
  }
  workers_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

BatchExecutor::~BatchExecutor() {
  {
    std::lock_guard<std::mutex> lock(work_mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void BatchExecutor::Submit(const Task& task) {
  if (queue_.TryPush(task)) {
    // Acquiring the lock after the push orders it before any worker's
    // re-check-then-wait, so the wakeup cannot be missed.
    { std::lock_guard<std::mutex> lock(work_mu_); }
    work_cv_.notify_one();
  } else {
    // Full queue: run inline. Bounds memory without blocking, and the
    // result is identical because tasks are location-independent.
    RunTask(task);
  }
}

void BatchExecutor::RunTask(const Task& task) {
  BatchState& batch = *task.batch;
  QueryState& q = batch.queries[task.query];
  const SolveOptions& options = q.session->options();
  // PHOM_CHECK failures are bugs and throw std::logic_error; on a worker
  // thread that would terminate the process, so surface them as an errored
  // result slot instead (serial solving would have thrown to the caller).
  try {
    if (task.component < 0) {
      batch.results[task.query] = SolvePrepared(q.prepared, options);
      batch.FinishQuery();
      return;
    }
    q.parts[static_cast<size_t>(task.component)] =
        SolvePreparedComponent(q.prepared,
                               static_cast<size_t>(task.component), options);
  } catch (const std::exception& e) {
    Result<SolveResult> error =
        Status::Invalid(std::string("serve: worker exception: ") + e.what());
    if (task.component < 0) {
      batch.results[task.query] = std::move(error);
      batch.FinishQuery();
      return;
    }
    q.parts[static_cast<size_t>(task.component)] = std::move(error);
  }
  // acq_rel: the last finisher must observe every other task's part write.
  if (q.remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    try {
      batch.results[task.query] =
          CombinePreparedComponents(q.prepared, options, std::move(q.parts));
    } catch (const std::exception& e) {
      batch.results[task.query] =
          Status::Invalid(std::string("serve: merge exception: ") + e.what());
    }
    batch.FinishQuery();
  }
}

void BatchExecutor::WorkerLoop() {
  for (;;) {
    Task task;
    if (queue_.TryPop(&task)) {
      RunTask(task);
      continue;
    }
    std::unique_lock<std::mutex> lock(work_mu_);
    if (stop_) return;
    if (queue_.TryPop(&task)) {  // re-check under the lock: no missed wakeup
      lock.unlock();
      RunTask(task);
      continue;
    }
    work_cv_.wait(lock);
  }
}

std::vector<Result<SolveResult>> BatchExecutor::SolveItems(
    const std::vector<BatchItem>& items) {
  BatchState batch(items.size());

  for (size_t i = 0; i < items.size(); ++i) {
    QueryState& q = batch.queries[i];
    q.session = items[i].session;
    // A submit-side throw (PHOM_CHECK in preparation, bad_alloc) must NOT
    // unwind out of this loop: tasks already queued hold a pointer to the
    // stack-local batch, so leaving early would be a use-after-free. Every
    // query therefore finishes — with an errored slot when its setup threw.
    try {
      // Preparation runs on the submitting thread: it is the cheap, cached
      // half of a solve, and doing it here fixes the context-cache
      // population order so session stats match serial execution.
      q.prepared = q.session->Prepare(*items[i].query);
      const size_t parallelism =
          options_.split_components
              ? PreparedComponentParallelism(q.prepared, q.session->options())
              : 0;
      if (parallelism == 0) {
        Submit(Task{&batch, static_cast<uint32_t>(i), -1});
        continue;
      }
      q.parts.assign(parallelism, PendingResult());
      q.remaining.store(parallelism, std::memory_order_relaxed);
      for (size_t c = 0; c < parallelism; ++c) {
        Submit(Task{&batch, static_cast<uint32_t>(i),
                    static_cast<int32_t>(c)});
      }
    } catch (const std::exception& e) {
      // Reachable only before this query's first Submit: enqueueing a Task
      // never throws (POD payload) and RunTask catches its own exceptions,
      // so a throw here means no task for query i exists yet.
      batch.results[i] =
          Status::Invalid(std::string("serve: submit exception: ") + e.what());
      batch.FinishQuery();
    }
  }

  // Help drain the queue (essential when threads are scarce or busy with
  // other batches), then wait for the stragglers our workers still hold.
  Task task;
  while (!batch.Done()) {
    if (queue_.TryPop(&task)) {
      RunTask(task);
      continue;
    }
    std::unique_lock<std::mutex> lock(batch.mu);
    // wait_for (not wait): belt and braces against future task-reordering
    // changes — the predicate re-check costs a lock acquisition per 50ms.
    batch.done_cv.wait_for(lock, std::chrono::milliseconds(50), [&batch] {
      return batch.queries_done == batch.total;
    });
  }
  return std::move(batch.results);
}

std::vector<Result<SolveResult>> BatchExecutor::SolveBatch(
    EvalSession& session, const std::vector<DiGraph>& queries) {
  std::vector<BatchItem> items;
  items.reserve(queries.size());
  for (const DiGraph& query : queries) items.push_back({&session, &query});
  return SolveItems(items);
}

}  // namespace phom::serve
