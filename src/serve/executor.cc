#include "src/serve/executor.h"

#include <chrono>
#include <exception>
#include <string>
#include <utility>

namespace phom::serve {

namespace {

/// Placeholder status for result slots that have not been written yet; every
/// slot is overwritten exactly once before its request completes, so callers
/// never observe it.
Result<SolveResult> PendingResult() {
  return Status::Invalid("serve: result slot not yet computed");
}

}  // namespace

BatchExecutor::BatchExecutor(ExecutorOptions options)
    : options_(options),
      queue_(options.queue_capacity == 0 ? 2 : options.queue_capacity) {
  size_t n = options_.threads;
  if (n == 0) {
    n = std::thread::hardware_concurrency();
    if (n == 0) n = 1;
  }
  workers_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

BatchExecutor::~BatchExecutor() {
  // Drain (checked replacement for the old "destruction with calls in
  // flight is UB"): run queued tasks on this thread and wait out workers'
  // in-flight ones, so every outstanding ticket completes — and no task can
  // touch the dying pool — before the workers are stopped.
  Task task;
  while (!AllRequestsFinished()) {
    if (queue_.TryPop(&task)) {
      RunTask(task);
      task.request.reset();
      continue;
    }
    std::unique_lock<std::mutex> lock(finish_mu_);
    finish_cv_.wait_for(lock, std::chrono::milliseconds(50),
                        [this] { return outstanding_ == 0; });
  }
  {
    std::lock_guard<std::mutex> lock(work_mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

bool BatchExecutor::AllRequestsFinished() {
  std::lock_guard<std::mutex> lock(finish_mu_);
  return outstanding_ == 0;
}

void BatchExecutor::EnqueueTask(Task task) {
  if (queue_.TryPush(task)) {
    // Acquiring the lock after the push orders it before any worker's
    // re-check-then-wait, so the wakeup cannot be missed.
    { std::lock_guard<std::mutex> lock(work_mu_); }
    work_cv_.notify_one();
  } else {
    // Full queue: run inline. Bounds memory without unbounded blocking, and
    // the result is identical because tasks are location-independent.
    RunTask(task);
  }
}

void BatchExecutor::Finish(
    const std::shared_ptr<internal::RequestState>& request,
    Result<SolveResult> result) {
  internal::RequestState& req = *request;
  CompletionCallback callback;
  {
    std::lock_guard<std::mutex> lock(req.mu);
    req.stats.finished = RequestClock::now();
    req.stats.degraded = result.ok() && result->degrade.degraded;
    if (!req.started_recorded) {
      // The request never ran a task (rejected / expired / cancelled at or
      // before dequeue): it spent its whole life in the queue.
      req.started_recorded = true;
      req.stats.started = req.stats.finished;
    }
    if (!result.ok() && !req.work_started.load(std::memory_order_relaxed)) {
      if (result.status().code() == Status::Code::kDeadlineExceeded) {
        req.stats.expired_before_start = true;
      } else if (result.status().code() == Status::Code::kCancelled) {
        req.stats.cancelled_before_start = true;
      }
    }
    req.result = std::move(result);
    callback = std::move(req.callback);
    req.callback = nullptr;
  }
  if (callback) {
    // Fires before waiters are released (async.h contract), so Take cannot
    // race the callback's view of the result. Must not throw.
    try {
      callback(req.result, req.stats);
    } catch (...) {  // NOLINT(bugprone-empty-catch)
    }
  }
  {
    std::lock_guard<std::mutex> lock(req.mu);
    req.done = true;
  }
  req.cv.notify_all();
  {
    std::lock_guard<std::mutex> lock(finish_mu_);
    --outstanding_;
  }
  finish_cv_.notify_all();
}

void BatchExecutor::FinishOrDegrade(
    const std::shared_ptr<internal::RequestState>& request,
    Result<SolveResult> result) {
  internal::RequestState& req = *request;
  if (!result.ok() && ShouldDegradeStatus(result.status(), req.options.degrade)) {
    // Deadline miss → budgeted Monte Carlo estimate, right here on the
    // thread that detected the miss (submission order and neighbors are
    // unaffected; the sampling floor bounds the overrun). Cancellation is
    // NOT converted — only DeadlineExceeded reaches this branch.
    req.work_started.store(true, std::memory_order_relaxed);
    try {
      result = SolveDegradedMonteCarlo(req.prepared, req.options);
    } catch (const std::exception& e) {
      result =
          Status::Invalid(std::string("serve: degrade exception: ") + e.what());
    }
  }
  Finish(request, std::move(result));
}

void BatchExecutor::RunTask(const Task& task) {
  internal::RequestState& req = *task.request;
  {
    std::lock_guard<std::mutex> lock(req.mu);
    if (!req.started_recorded) {
      req.started_recorded = true;
      req.stats.started = RequestClock::now();
    }
  }
  // Deadline / cancellation gate at dequeue: a request that expired (or was
  // cancelled) while queued fails right here, without solving — later
  // requests behind it in the queue are served normally.
  const Status gate = req.cancel.Check();
  // PHOM_CHECK failures are bugs and throw std::logic_error; on a worker
  // thread that would terminate the process, so surface them as an errored
  // result instead (serial solving would have thrown to the caller).
  if (task.component < 0) {
    if (!gate.ok()) {
      FinishOrDegrade(task.request, gate);
      return;
    }
    req.work_started.store(true, std::memory_order_relaxed);
    Result<SolveResult> result = PendingResult();
    try {
      result = SolvePrepared(req.prepared, req.options);
    } catch (const std::exception& e) {
      result =
          Status::Invalid(std::string("serve: worker exception: ") + e.what());
    }
    FinishOrDegrade(task.request, std::move(result));
    return;
  }
  const size_t c = static_cast<size_t>(task.component);
  if (!gate.ok()) {
    // The skipped component reports the interruption; the index-ordered
    // merge below turns the first such slot into the request's status.
    req.parts[c] = gate;
  } else {
    req.work_started.store(true, std::memory_order_relaxed);
    try {
      req.parts[c] =
          SolvePreparedComponent(req.prepared, req.dispatch, c, req.options);
    } catch (const std::exception& e) {
      req.parts[c] =
          Status::Invalid(std::string("serve: worker exception: ") + e.what());
    }
  }
  // acq_rel: the last finisher must observe every other task's part write.
  if (req.remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    Result<SolveResult> merged = PendingResult();
    try {
      merged = CombinePreparedComponents(req.prepared, req.dispatch,
                                         req.options, std::move(req.parts));
    } catch (const std::exception& e) {
      merged =
          Status::Invalid(std::string("serve: merge exception: ") + e.what());
    }
    FinishOrDegrade(task.request, std::move(merged));
  }
}

void BatchExecutor::WorkerLoop() {
  for (;;) {
    Task task;
    if (queue_.TryPop(&task)) {
      RunTask(task);
      continue;
    }
    std::unique_lock<std::mutex> lock(work_mu_);
    if (stop_) return;
    if (queue_.TryPop(&task)) {  // re-check under the lock: no missed wakeup
      lock.unlock();
      RunTask(task);
      continue;
    }
    work_cv_.wait(lock);
  }
}

SolveTicket BatchExecutor::Submit(EvalSession& session, SolveRequest request,
                                  CompletionCallback callback) {
  auto state = std::make_shared<internal::RequestState>();
  state->stats.enqueued = RequestClock::now();
  state->query = std::move(request.query);
  state->callback = std::move(callback);
  if (request.deadline.has_value()) {
    state->cancel.SetDeadline(*request.deadline);
  }
  state->options = ApplyOverrides(session.options(), request.overrides);
  state->options.cancel = &state->cancel;  // state is heap-pinned
  {
    std::lock_guard<std::mutex> lock(finish_mu_);
    ++outstanding_;
  }
  SolveTicket ticket(state);
  if (state->query == nullptr) {
    Finish(state, Status::Invalid("serve: null query in request"));
    return ticket;
  }
  // Fail fast on an already-lapsed deadline: nothing is prepared and the
  // session is never touched (its stats see no query). Exception: with the
  // degrade policy on, an expired deadline is exactly what the policy
  // converts — prepare and enqueue normally so a worker (whose dequeue gate
  // will fail) produces the budgeted estimate instead of the error.
  const Status gate = state->cancel.Check();
  if (!gate.ok() && !ShouldDegradeStatus(gate, state->options.degrade)) {
    Finish(state, gate);
    return ticket;
  }
  try {
    // Preparation runs on the submitting thread: it is the cheap, cached
    // half of a solve, and doing it here fixes the context-cache population
    // order so session stats match serial execution.
    state->prepared = session.Prepare(*state->query);
    if (options_.split_components) {
      // One registry scan per query; every component task reuses the plan.
      state->dispatch = PlanComponentDispatch(state->prepared, state->options);
    }
    const size_t parallelism = state->dispatch.components;
    if (parallelism == 0) {
      EnqueueTask(Task{state, -1});
    } else {
      state->parts.assign(parallelism, PendingResult());
      state->remaining.store(parallelism, std::memory_order_relaxed);
      for (size_t c = 0; c < parallelism; ++c) {
        EnqueueTask(Task{state, static_cast<int32_t>(c)});
      }
    }
  } catch (const std::exception& e) {
    // Reachable only before this request's first EnqueueTask (enqueueing
    // never throws — the payload is a shared_ptr — and RunTask catches its
    // own exceptions), so no task exists yet and finishing here cannot
    // double-complete the request.
    Finish(state,
           Status::Invalid(std::string("serve: submit exception: ") + e.what()));
  }
  return ticket;
}

std::vector<SolveTicket> BatchExecutor::SubmitBatch(
    EvalSession& session, std::vector<SolveRequest> requests) {
  std::vector<SolveTicket> tickets;
  tickets.reserve(requests.size());
  for (SolveRequest& request : requests) {
    tickets.push_back(Submit(session, std::move(request)));
  }
  return tickets;
}

std::vector<Result<SolveResult>> BatchExecutor::Collect(
    std::vector<SolveTicket>& tickets) {
  std::vector<Result<SolveResult>> out;
  out.reserve(tickets.size());
  for (SolveTicket& ticket : tickets) {
    out.push_back(ticket.valid()
                      ? ticket.Take()
                      : Result<SolveResult>(
                            Status::Invalid("serve: empty ticket")));
  }
  return out;
}

std::vector<Result<SolveResult>> BatchExecutor::CollectHelping(
    std::vector<SolveTicket>& tickets) {
  // Help drain the queue while waiting (essential when threads are scarce
  // or busy with other batches), then collect in order.
  Task task;
  for (SolveTicket& ticket : tickets) {
    while (ticket.valid() && !ticket.done()) {
      if (queue_.TryPop(&task)) {
        RunTask(task);
        task.request.reset();
        continue;
      }
      // Bounded wait (not Wait): the ticket's last task may be held by a
      // worker while new helpable tasks arrive behind our empty-queue read.
      ticket.WaitFor(std::chrono::milliseconds(50));
    }
  }
  return Collect(tickets);
}

std::vector<Result<SolveResult>> BatchExecutor::SolveItems(
    const std::vector<BatchItem>& items) {
  std::vector<SolveTicket> tickets;
  tickets.reserve(items.size());
  for (const BatchItem& item : items) {
    if (item.session == nullptr) {
      tickets.push_back(SolveTicket::Completed(
          Status::Invalid("serve: null session in batch item")));
      continue;
    }
    if (item.query == nullptr) {
      tickets.push_back(SolveTicket::Completed(
          Status::Invalid("serve: null query in request")));
      continue;
    }
    // Borrowed, not owned: this wrapper blocks until every ticket is done,
    // so the caller's graphs outlive all tasks.
    tickets.push_back(Submit(*item.session, SolveRequest::BorrowQuery(*item.query)));
  }
  return CollectHelping(tickets);
}

std::vector<Result<SolveResult>> BatchExecutor::SolveBatch(
    EvalSession& session, const std::vector<DiGraph>& queries) {
  std::vector<BatchItem> items;
  items.reserve(queries.size());
  for (const DiGraph& query : queries) items.push_back({&session, &query});
  return SolveItems(items);
}

}  // namespace phom::serve
