#pragma once

#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include "src/core/eval_session.h"

/// \file lru.h
/// Cross-instance LRU of InstanceContexts (ROADMAP: "context caching across
/// instances"). An EvalSession amortizes preparation per label set within
/// ONE instance; a ContextLru extends that across instances: entries are
/// keyed by (instance fingerprint, normalized label set), so any number of
/// sessions — e.g. the shards of a ShardedServer, or rotating tenants of a
/// multi-tenant server — share preparations whenever instance and label set
/// coincide, with bounded memory under LRU eviction.
///
/// Correctness of sharing rests on the 64-bit ProbGraph::Fingerprint():
/// entries additionally record the instance's vertex/edge counts and a
/// mismatch forces a rebuild, but two DIFFERENT instances with equal
/// fingerprints AND equal dimensions would still share a context. That is
/// vanishingly unlikely by accident (~2^-64 per pair) yet constructible on
/// purpose — do not share one ContextLru between mutually untrusted
/// tenants; give each tenant its own cache instead.
///
/// Locking: the cache mutex guards only the index/LRU bookkeeping; the
/// expensive BuildInstanceContext runs OUTSIDE it, under a per-entry mutex,
/// so a cold build blocks only same-key lookups — concurrent traffic for
/// other keys proceeds.

namespace phom::serve {

struct ContextLruOptions {
  /// Maximum cached contexts; least-recently-used entries are evicted.
  /// Capacity 0 disables caching (every lookup builds).
  size_t capacity = 64;
};

struct ContextLruStats {
  size_t hits = 0;
  size_t misses = 0;  ///< lookups that had to build a context
  size_t evictions = 0;
};

class ContextLru final : public InstanceContextCache {
 public:
  explicit ContextLru(ContextLruOptions options = {}) : options_(options) {}

  /// Thread-safe. `labels` is normalized (sorted, deduped) before keying, so
  /// equivalent label multisets share one entry. Concurrent misses on one
  /// key build exactly once (the first claims the slot, the rest wait on
  /// the slot's mutex and count as hits).
  std::shared_ptr<const InstanceContext> GetOrBuild(
      const ProbGraph& instance, uint64_t instance_fingerprint,
      const std::vector<LabelId>& labels, bool* hit) override;

  /// Snapshot of the counters (safe during concurrent serving).
  ContextLruStats stats() const;
  size_t size() const;

 private:
  using Key = std::pair<uint64_t, std::vector<LabelId>>;

  /// The context (or the right to build it). `m` serializes same-key
  /// builders/waiters without holding the cache-wide lock.
  struct Slot {
    std::mutex m;
    std::shared_ptr<const InstanceContext> context;  ///< guarded by m
  };

  struct Entry {
    Key key;
    /// Fingerprint-collision guard: dimensions of the instance this entry
    /// was built from (see file comment).
    size_t num_vertices = 0;
    size_t num_edges = 0;
    std::shared_ptr<Slot> slot;
  };

  ContextLruOptions options_;
  mutable std::mutex mu_;
  std::list<Entry> lru_;  ///< front = most recently used; guarded by mu_
  std::map<Key, std::list<Entry>::iterator> index_;  ///< guarded by mu_
  ContextLruStats stats_;  ///< guarded by mu_
};

}  // namespace phom::serve
