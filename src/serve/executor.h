#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <queue>
#include <set>
#include <thread>
#include <vector>

#include "src/core/eval_session.h"
#include "src/serve/async.h"
#include "src/serve/cost_model.h"
#include "src/serve/mpmc_queue.h"
#include "src/serve/request.h"

/// \file executor.h
/// Parallel batch serving: a fixed-size thread pool that fans requests —
/// and, within a request, the independent instance components of a
/// componentwise dispatch (solver.h) — out over worker threads through a
/// bounded MPMC task queue (mpmc_queue.h).
///
/// The front door is ASYNCHRONOUS: Submit accepts a SolveRequest
/// (request.h) and returns a SolveTicket (async.h) immediately — the
/// submitter does not help drain. Per-request deadlines are enforced at
/// four points: at submit (already expired → fail fast, nothing is
/// prepared), at dequeue (expired before start → DeadlineExceeded without
/// solving), between component subproblems, and INSIDE a single hard
/// component's world-enumeration / sampling loop (the CancelToken yield
/// points in solver.h/engines.cc/fallback.cc/monte_carlo.cc). Cooperative
/// cancellation uses the same token, via SolveTicket::Cancel. An expired or
/// cancelled request fails only itself: its neighbors' tasks and results
/// are untouched.
///
/// GRACEFUL DEGRADATION (DegradePolicy, solver.h): with mode
/// kOnDeadlineRisk — set on the session's base options or per request via
/// SolveRequest overrides — a request whose exact solve would answer
/// DeadlineExceeded is instead re-dispatched, on the thread that detected
/// the miss, to the budgeted Monte Carlo estimator with whatever time
/// budget remains (floor: policy.min_samples samples). The converted
/// result is OK, carries SolveResult::degrade provenance (estimate,
/// half-width, samples_used, budget_spent) and marks RequestStats::degraded.
/// At submit, an already-expired deadline then no longer fails fast: the
/// request is prepared and enqueued so a worker produces the estimate.
/// Explicit cancellation always answers Cancelled — with the policy on, a
/// ticket therefore resolves to exactly one of {exact result, degraded
/// estimate, Cancelled}.
///
/// PREDICTIVE ADMISSION & SLACK ORDERING (cost_model.h): install a
/// CostModel on ExecutorOptions::cost_model and Submit consults an
/// immutable model snapshot per request (snapshot-at-submit: decisions are
/// deterministic for a fixed snapshot):
///   * a deadline-carrying request whose predicted exact cost cannot fit
///     the remaining budget — even optimistically — is degraded
///     PROACTIVELY when its DegradePolicy allows: the exact attempt is
///     skipped entirely and the estimate carries DegradeInfo::proactive;
///   * with enable_shedding, a deadline-carrying request that cannot
///     degrade is REJECTED with kResourceExhausted at submit (before any
///     preparation) when the predicted backlog exceeds the remaining slack
///     of every pending deadline, its own included;
///   * deadline-carrying tasks dispatch EARLIEST-EFFECTIVE-DEADLINE-FIRST
///     (effective deadline = deadline − predicted cost) through a bounded
///     priority lane ahead of the FIFO queue; deadline-less requests keep
///     FIFO order among themselves, and with no deadlines set the lane is
///     empty and dispatch is exactly the historical FIFO (bit-identical
///     results at every thread count). Both lanes share one capacity bound
///     and the same full-queue policy: run inline on the submitter.
/// Every completed exact solve is recorded back into the model, so
/// predictions sharpen as the pool serves.
///
/// The synchronous API (SolveBatch/SolveItems) is a thin submit+wait
/// wrapper over the same path; while waiting, the calling thread helps
/// drain the queue — which is why `threads = 1` makes progress even when
/// the lone worker is busy with another batch.
///
/// Determinism guarantee: for every thread count, every request that
/// COMPLETES (is neither expired nor cancelled) answers BIT-IDENTICALLY to
/// session.Solve run serially — probabilities (both backends), stats,
/// analyses and error statuses. This holds because
///   * every result is written to its own ticket (no completion-order
///     dependence),
///   * per-request component answers are merged in component-index order
///     with exactly the serial combine (CombinePreparedComponents),
///   * the Monte Carlo engine derives a fresh Rng stream from the
///     per-request seed inside each task (EstimateProbabilityMonteCarlo is
///     a pure function of (query, instance, seed)), so no thread shares
///     generator state with another.
///
/// The pool is shared infrastructure: several threads may Submit / solve
/// concurrently. Destroying the executor DRAINS it: the destructor runs
/// queued tasks itself and waits for workers' in-flight tasks, so every
/// outstanding ticket completes before the pool is torn down (this was
/// previously documented UB). Sessions named by outstanding requests must
/// outlive the destructor call, and no thread may Submit once destruction
/// has begun — join your submitting threads first.

namespace phom::serve {

struct ExecutorOptions {
  /// Worker threads. 0 = std::thread::hardware_concurrency() (at least 1).
  size_t threads = 0;
  /// Task-queue capacity (rounded up to a power of two). When the queue is
  /// full, the submitter runs the task inline instead of blocking — the
  /// queue bounds memory, not correctness (Submit may therefore block on a
  /// saturated pool: natural backpressure).
  size_t queue_capacity = 1024;
  /// Fan the independent instance components of a componentwise dispatch
  /// out as separate tasks (within-query parallelism). Off = one task per
  /// request. Results are identical either way.
  bool split_components = true;
  /// Learned latency model (cost_model.h) consulted once per Submit via an
  /// immutable snapshot: predictions set the slack-ordering effective
  /// deadline, drive PROACTIVE degradation, and feed the shedding check
  /// below; completed exact solves are recorded back. Null (the default)
  /// disables prediction entirely — admission and provenance are then
  /// unchanged from the pre-cost-model executor.
  std::shared_ptr<CostModel> cost_model;
  /// With a cost model installed: reject a deadline-carrying request at
  /// submit (kResourceExhausted, nothing prepared, the session untouched)
  /// when the predicted backlog exceeds the remaining slack of EVERY
  /// pending deadline including the incoming request's own — the request is
  /// predicted hopeless no matter how the queue is ordered. Requests whose
  /// DegradePolicy allows degradation are degraded proactively instead of
  /// shed (an estimate beats an error); deadline-less requests are never
  /// shed.
  bool enable_shedding = false;
};

/// Monotonic counters of admission/scheduling outcomes (updated with
/// relaxed atomics; a stats() snapshot is exact once the pool has drained).
struct ExecutorStats {
  uint64_t submitted = 0;            ///< requests accepted by Submit
  uint64_t exact_solves_started = 0; ///< requests whose exact solve began
  uint64_t degraded_proactive = 0;   ///< exact attempt skipped at admission
  uint64_t degraded_reactive = 0;    ///< converted after a real deadline miss
  uint64_t shed = 0;                 ///< rejected kResourceExhausted at submit
};

/// One unit of a synchronous heterogeneous batch: a query against a session
/// (sessions may differ per item — that is how ShardedServer fans one
/// request batch across shards). Both pointers must outlive the SolveItems
/// call; for asynchronous submission use SolveRequest, which owns its query.
struct BatchItem {
  EvalSession* session;
  const DiGraph* query;
};

class BatchExecutor {
 public:
  explicit BatchExecutor(ExecutorOptions options = {});
  /// Drains: blocks until every outstanding ticket has completed (helping
  /// to run queued tasks), then joins the workers.
  ~BatchExecutor();

  BatchExecutor(const BatchExecutor&) = delete;
  BatchExecutor& operator=(const BatchExecutor&) = delete;

  size_t num_threads() const { return workers_.size(); }
  const ExecutorOptions& options() const { return options_; }
  /// Snapshot of the admission/scheduling counters.
  ExecutorStats stats() const;

  // -------------------------------------------------------------------------
  // Asynchronous front door.
  // -------------------------------------------------------------------------

  /// Submits one request against `session` and returns its ticket
  /// immediately. Preparation (the cheap, cached half of a solve) runs on
  /// the calling thread — this fixes the context-cache population order, so
  /// session stats match serial execution — unless the deadline has already
  /// expired, in which case the request fails fast with DeadlineExceeded
  /// and the session is never touched. `request.shard` is ignored here
  /// (shard routing is ShardedServer's job). The session must stay alive
  /// until the ticket completes.
  SolveTicket Submit(EvalSession& session, SolveRequest request,
                     CompletionCallback callback = nullptr);

  /// Submits a batch in order; tickets align with `requests`.
  std::vector<SolveTicket> SubmitBatch(EvalSession& session,
                                       std::vector<SolveRequest> requests);

  /// Waits for every ticket and moves the results out, in order (empty
  /// tickets yield Invalid). Pure wait — works for tickets of any executor.
  static std::vector<Result<SolveResult>> Collect(
      std::vector<SolveTicket>& tickets);

  /// Collect, but the calling thread helps drain THIS executor's queue
  /// while it waits (the synchronous wrappers' behavior).
  std::vector<Result<SolveResult>> CollectHelping(
      std::vector<SolveTicket>& tickets);

  // -------------------------------------------------------------------------
  // Synchronous wrappers (submit + wait-helping over the async path).
  // -------------------------------------------------------------------------

  /// Answers `queries` against `session` in order; result i is bit-identical
  /// to serial session.SolveBatch(queries)[i] for every thread count.
  std::vector<Result<SolveResult>> SolveBatch(
      EvalSession& session, const std::vector<DiGraph>& queries);

  /// Heterogeneous variant: items may target different sessions.
  std::vector<Result<SolveResult>> SolveItems(
      const std::vector<BatchItem>& items);

 private:
  /// One queue entry: component `component` of the request (or the whole
  /// request when component < 0). Holds shared ownership of the request
  /// state, so a queued task can never dangle.
  struct Task {
    std::shared_ptr<internal::RequestState> request;
    int32_t component = -1;
  };

  /// One entry of the slack-ordered lane: min-heap on (effective deadline,
  /// submission sequence) — the tiebreak keeps equal-deadline tasks FIFO.
  struct DeadlineEntry {
    RequestClock::time_point effective;
    uint64_t seq = 0;
    Task task;
  };
  struct LaterDeadline {
    bool operator()(const DeadlineEntry& a, const DeadlineEntry& b) const {
      if (a.effective != b.effective) return a.effective > b.effective;
      return a.seq > b.seq;
    }
  };

  void EnqueueTask(Task task);
  /// Pops the next task to run: the slack lane's earliest effective
  /// deadline first, then the FIFO queue. False when both are empty.
  bool TryPopTask(Task* out);
  void RunTask(const Task& task);
  void Finish(const std::shared_ptr<internal::RequestState>& request,
              Result<SolveResult> result);
  /// Finish, but a DeadlineExceeded result is first converted into a
  /// budgeted Monte Carlo estimate when the request's DegradePolicy allows
  /// (the degraded solve runs on the calling thread).
  void FinishOrDegrade(const std::shared_ptr<internal::RequestState>& request,
                       Result<SolveResult> result);
  void WorkerLoop();
  bool AllRequestsFinished();
  /// Marks the request's first exact solving work (counter bump, once).
  void MarkExactStarted(internal::RequestState& req);
  /// Charges the request's predicted cost to the backlog and registers its
  /// deadline in the pending set (admission bookkeeping; refunded in
  /// Finish).
  void ChargeAdmission(internal::RequestState& req,
                       std::chrono::nanoseconds predicted,
                       const std::optional<RequestClock::time_point>& deadline);
  /// The shedding predicate: predicted backlog drain time exceeds the
  /// remaining slack of every pending deadline AND of `deadline` itself.
  bool PredictedBacklogHopeless(RequestClock::time_point deadline,
                                RequestClock::time_point now);

  ExecutorOptions options_;
  MpmcQueue<Task> queue_;
  std::mutex work_mu_;
  std::condition_variable work_cv_;
  bool stop_ = false;  ///< guarded by work_mu_
  std::mutex finish_mu_;
  std::condition_variable finish_cv_;
  size_t outstanding_ = 0;  ///< submitted, not yet finished; guarded by finish_mu_
  /// The slack-ordered lane for deadline-carrying tasks. Bounded by the
  /// SAME capacity as the FIFO queue, with the same overflow policy (run
  /// inline on the submitter), so queue_capacity keeps bounding the pool's
  /// total queued work regardless of lane.
  std::mutex deadline_mu_;
  std::priority_queue<DeadlineEntry, std::vector<DeadlineEntry>, LaterDeadline>
      deadline_heap_;         ///< guarded by deadline_mu_
  uint64_t deadline_seq_ = 0; ///< guarded by deadline_mu_
  /// Admission-control state: predicted-but-unfinished work charged to the
  /// pool and the deadlines of in-flight requests.
  std::mutex admission_mu_;
  int64_t backlog_ns_ = 0;  ///< guarded by admission_mu_
  std::multiset<RequestClock::time_point>
      pending_deadlines_;   ///< guarded by admission_mu_
  std::atomic<uint64_t> submitted_{0};
  std::atomic<uint64_t> exact_started_{0};
  std::atomic<uint64_t> degraded_proactive_{0};
  std::atomic<uint64_t> degraded_reactive_{0};
  std::atomic<uint64_t> shed_{0};
  std::vector<std::thread> workers_;
};

}  // namespace phom::serve
