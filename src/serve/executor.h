#pragma once

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <thread>
#include <vector>

#include "src/core/eval_session.h"
#include "src/serve/mpmc_queue.h"

/// \file executor.h
/// Parallel batch serving: a fixed-size thread pool that fans a batch of
/// queries — and, within a query, the independent instance components of a
/// componentwise dispatch (solver.h) — out over worker threads through a
/// bounded MPMC task queue (mpmc_queue.h).
///
/// Determinism guarantee: for every thread count, SolveBatch(session, qs)
/// is BIT-IDENTICAL to session.SolveBatch(qs) run serially — probabilities
/// (both backends), stats, analyses and error statuses. This holds because
///   * every result is written to a preassigned slot (no completion-order
///     dependence),
///   * per-query component answers are merged in component-index order with
///     exactly the serial combine (CombinePreparedComponents),
///   * the Monte Carlo engine derives a fresh Rng stream from the per-query
///     seed inside each task (EstimateProbabilityMonteCarlo is a pure
///     function of (query, instance, seed)), so no thread shares generator
///     state with another.
///
/// The pool is shared infrastructure: several threads may call SolveBatch /
/// SolveItems concurrently (each call owns its private batch state; tasks
/// interleave in the queue). Destroying the executor while calls are in
/// flight is undefined — join your serving threads first.

namespace phom::serve {

struct ExecutorOptions {
  /// Worker threads. 0 = std::thread::hardware_concurrency() (at least 1).
  /// The submitting thread also helps drain the queue, so `threads = 1`
  /// still makes progress even if the lone worker is busy elsewhere.
  size_t threads = 0;
  /// Task-queue capacity (rounded up to a power of two). When the queue is
  /// full, the submitter runs the task inline instead of blocking — the
  /// queue bounds memory, not correctness.
  size_t queue_capacity = 1024;
  /// Fan the independent instance components of a componentwise dispatch
  /// out as separate tasks (within-query parallelism). Off = one task per
  /// query. Results are identical either way.
  bool split_components = true;
};

/// One unit of a heterogeneous batch: a query against a session (sessions
/// may differ per item — that is how ShardedServer fans one request batch
/// across shards). Both pointers must outlive the SolveItems call.
struct BatchItem {
  EvalSession* session;
  const DiGraph* query;
};

class BatchExecutor {
 public:
  explicit BatchExecutor(ExecutorOptions options = {});
  ~BatchExecutor();

  BatchExecutor(const BatchExecutor&) = delete;
  BatchExecutor& operator=(const BatchExecutor&) = delete;

  size_t num_threads() const { return workers_.size(); }
  const ExecutorOptions& options() const { return options_; }

  /// Answers `queries` against `session` in order; result i is bit-identical
  /// to serial session.SolveBatch(queries)[i] for every thread count.
  std::vector<Result<SolveResult>> SolveBatch(
      EvalSession& session, const std::vector<DiGraph>& queries);

  /// Heterogeneous variant: items may target different sessions.
  std::vector<Result<SolveResult>> SolveItems(
      const std::vector<BatchItem>& items);

 private:
  struct BatchState;

  /// One queue entry: component `component` of query `query` in `batch`,
  /// or the whole query when component < 0.
  struct Task {
    BatchState* batch = nullptr;
    uint32_t query = 0;
    int32_t component = -1;
  };

  void Submit(const Task& task);
  void RunTask(const Task& task);
  void WorkerLoop();

  ExecutorOptions options_;
  MpmcQueue<Task> queue_;
  std::mutex work_mu_;
  std::condition_variable work_cv_;
  bool stop_ = false;  ///< guarded by work_mu_
  std::vector<std::thread> workers_;
};

}  // namespace phom::serve
