#pragma once

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <thread>
#include <vector>

#include "src/core/eval_session.h"
#include "src/serve/async.h"
#include "src/serve/mpmc_queue.h"
#include "src/serve/request.h"

/// \file executor.h
/// Parallel batch serving: a fixed-size thread pool that fans requests —
/// and, within a request, the independent instance components of a
/// componentwise dispatch (solver.h) — out over worker threads through a
/// bounded MPMC task queue (mpmc_queue.h).
///
/// The front door is ASYNCHRONOUS: Submit accepts a SolveRequest
/// (request.h) and returns a SolveTicket (async.h) immediately — the
/// submitter does not help drain. Per-request deadlines are enforced at
/// four points: at submit (already expired → fail fast, nothing is
/// prepared), at dequeue (expired before start → DeadlineExceeded without
/// solving), between component subproblems, and INSIDE a single hard
/// component's world-enumeration / sampling loop (the CancelToken yield
/// points in solver.h/engines.cc/fallback.cc/monte_carlo.cc). Cooperative
/// cancellation uses the same token, via SolveTicket::Cancel. An expired or
/// cancelled request fails only itself: its neighbors' tasks and results
/// are untouched.
///
/// GRACEFUL DEGRADATION (DegradePolicy, solver.h): with mode
/// kOnDeadlineRisk — set on the session's base options or per request via
/// SolveRequest overrides — a request whose exact solve would answer
/// DeadlineExceeded is instead re-dispatched, on the thread that detected
/// the miss, to the budgeted Monte Carlo estimator with whatever time
/// budget remains (floor: policy.min_samples samples). The converted
/// result is OK, carries SolveResult::degrade provenance (estimate,
/// half-width, samples_used, budget_spent) and marks RequestStats::degraded.
/// At submit, an already-expired deadline then no longer fails fast: the
/// request is prepared and enqueued so a worker produces the estimate.
/// Explicit cancellation always answers Cancelled — with the policy on, a
/// ticket therefore resolves to exactly one of {exact result, degraded
/// estimate, Cancelled}.
///
/// The synchronous API (SolveBatch/SolveItems) is a thin submit+wait
/// wrapper over the same path; while waiting, the calling thread helps
/// drain the queue — which is why `threads = 1` makes progress even when
/// the lone worker is busy with another batch.
///
/// Determinism guarantee: for every thread count, every request that
/// COMPLETES (is neither expired nor cancelled) answers BIT-IDENTICALLY to
/// session.Solve run serially — probabilities (both backends), stats,
/// analyses and error statuses. This holds because
///   * every result is written to its own ticket (no completion-order
///     dependence),
///   * per-request component answers are merged in component-index order
///     with exactly the serial combine (CombinePreparedComponents),
///   * the Monte Carlo engine derives a fresh Rng stream from the
///     per-request seed inside each task (EstimateProbabilityMonteCarlo is
///     a pure function of (query, instance, seed)), so no thread shares
///     generator state with another.
///
/// The pool is shared infrastructure: several threads may Submit / solve
/// concurrently. Destroying the executor DRAINS it: the destructor runs
/// queued tasks itself and waits for workers' in-flight tasks, so every
/// outstanding ticket completes before the pool is torn down (this was
/// previously documented UB). Sessions named by outstanding requests must
/// outlive the destructor call, and no thread may Submit once destruction
/// has begun — join your submitting threads first.

namespace phom::serve {

struct ExecutorOptions {
  /// Worker threads. 0 = std::thread::hardware_concurrency() (at least 1).
  size_t threads = 0;
  /// Task-queue capacity (rounded up to a power of two). When the queue is
  /// full, the submitter runs the task inline instead of blocking — the
  /// queue bounds memory, not correctness (Submit may therefore block on a
  /// saturated pool: natural backpressure).
  size_t queue_capacity = 1024;
  /// Fan the independent instance components of a componentwise dispatch
  /// out as separate tasks (within-query parallelism). Off = one task per
  /// request. Results are identical either way.
  bool split_components = true;
};

/// One unit of a synchronous heterogeneous batch: a query against a session
/// (sessions may differ per item — that is how ShardedServer fans one
/// request batch across shards). Both pointers must outlive the SolveItems
/// call; for asynchronous submission use SolveRequest, which owns its query.
struct BatchItem {
  EvalSession* session;
  const DiGraph* query;
};

class BatchExecutor {
 public:
  explicit BatchExecutor(ExecutorOptions options = {});
  /// Drains: blocks until every outstanding ticket has completed (helping
  /// to run queued tasks), then joins the workers.
  ~BatchExecutor();

  BatchExecutor(const BatchExecutor&) = delete;
  BatchExecutor& operator=(const BatchExecutor&) = delete;

  size_t num_threads() const { return workers_.size(); }
  const ExecutorOptions& options() const { return options_; }

  // -------------------------------------------------------------------------
  // Asynchronous front door.
  // -------------------------------------------------------------------------

  /// Submits one request against `session` and returns its ticket
  /// immediately. Preparation (the cheap, cached half of a solve) runs on
  /// the calling thread — this fixes the context-cache population order, so
  /// session stats match serial execution — unless the deadline has already
  /// expired, in which case the request fails fast with DeadlineExceeded
  /// and the session is never touched. `request.shard` is ignored here
  /// (shard routing is ShardedServer's job). The session must stay alive
  /// until the ticket completes.
  SolveTicket Submit(EvalSession& session, SolveRequest request,
                     CompletionCallback callback = nullptr);

  /// Submits a batch in order; tickets align with `requests`.
  std::vector<SolveTicket> SubmitBatch(EvalSession& session,
                                       std::vector<SolveRequest> requests);

  /// Waits for every ticket and moves the results out, in order (empty
  /// tickets yield Invalid). Pure wait — works for tickets of any executor.
  static std::vector<Result<SolveResult>> Collect(
      std::vector<SolveTicket>& tickets);

  /// Collect, but the calling thread helps drain THIS executor's queue
  /// while it waits (the synchronous wrappers' behavior).
  std::vector<Result<SolveResult>> CollectHelping(
      std::vector<SolveTicket>& tickets);

  // -------------------------------------------------------------------------
  // Synchronous wrappers (submit + wait-helping over the async path).
  // -------------------------------------------------------------------------

  /// Answers `queries` against `session` in order; result i is bit-identical
  /// to serial session.SolveBatch(queries)[i] for every thread count.
  std::vector<Result<SolveResult>> SolveBatch(
      EvalSession& session, const std::vector<DiGraph>& queries);

  /// Heterogeneous variant: items may target different sessions.
  std::vector<Result<SolveResult>> SolveItems(
      const std::vector<BatchItem>& items);

 private:
  /// One queue entry: component `component` of the request (or the whole
  /// request when component < 0). Holds shared ownership of the request
  /// state, so a queued task can never dangle.
  struct Task {
    std::shared_ptr<internal::RequestState> request;
    int32_t component = -1;
  };

  void EnqueueTask(Task task);
  void RunTask(const Task& task);
  void Finish(const std::shared_ptr<internal::RequestState>& request,
              Result<SolveResult> result);
  /// Finish, but a DeadlineExceeded result is first converted into a
  /// budgeted Monte Carlo estimate when the request's DegradePolicy allows
  /// (the degraded solve runs on the calling thread).
  void FinishOrDegrade(const std::shared_ptr<internal::RequestState>& request,
                       Result<SolveResult> result);
  void WorkerLoop();
  bool AllRequestsFinished();

  ExecutorOptions options_;
  MpmcQueue<Task> queue_;
  std::mutex work_mu_;
  std::condition_variable work_cv_;
  bool stop_ = false;  ///< guarded by work_mu_
  std::mutex finish_mu_;
  std::condition_variable finish_cv_;
  size_t outstanding_ = 0;  ///< submitted, not yet finished; guarded by finish_mu_
  std::vector<std::thread> workers_;
};

}  // namespace phom::serve
