#pragma once

#include <array>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <queue>
#include <random>
#include <set>
#include <thread>
#include <vector>

#include "src/core/eval_session.h"
#include "src/serve/async.h"
#include "src/serve/cost_model.h"
#include "src/serve/relaxed_queue.h"
#include "src/serve/request.h"
#include "src/serve/work_steal_deque.h"
#include "src/util/arena.h"

/// \file executor.h
/// Parallel batch serving: a fixed-size thread pool that fans requests —
/// and, within a request, the independent instance components of a
/// componentwise dispatch (solver.h) — out over worker threads.
///
/// SCHEDULING CORE (this is the work-stealing rebuild of the original
/// single-global-queue dispatch; see README "Scheduling internals"):
///   * Every worker owns a bounded Chase–Lev deque (work_steal_deque.h).
///     When a worker dequeues a componentwise request it fans components
///     1..n-1 out to its OWN deque, runs component 0 directly (one push/pop
///     pair saved; the request's work starts at fan-out even if every
///     queued task is stolen), and pops the rest LIFO — so at one thread
///     the execution order is exactly the historical 0,1,…,n-1. Idle
///     workers steal the OLDEST task from a randomized victim, so fan-out
///     parallelism costs no shared-queue contention.
///   * Deadline-less requests enter through a relaxed block-based injection
///     queue (relaxed_queue.h): FIFO within a block, relaxed across blocks.
///     With injection_blocks = 1 (or one worker thread, the auto default)
///     dispatch of deadline-less requests is exactly the historical global
///     FIFO.
///   * Deadline-carrying requests route to the LEAST-LOADED worker's
///     bounded EDF heap (earliest effective deadline = deadline − predicted
///     cost, PR 6 semantics). With one worker every deadline task shares one
///     heap, i.e. exact global EDF; with several workers EDF is per-worker
///     and stealing keeps it work-conserving.
///   * Worker pop order: own deque (finish the request you started — this
///     keeps a fanned-out request's completion ahead of later-arriving
///     deadline roots), own EDF heap, injection queue, then steal (victim
///     deque top first, then victim EDF heap). Non-worker helpers (the
///     collect-helping path and the draining destructor) pop injection
///     first, then sweep every worker's heap and deque, so progress never
///     depends on a parked worker.
///   * EDF heap overflow runs the EARLIEST entry inline on the submitter
///     after inserting the incoming task (the pre-rebuild code ran the
///     INCOMING task inline, silently bypassing slack ordering — that bug is
///     fixed; ExecutorStats::edf_displaced_runs counts the event). The
///     injection queue keeps the historical policy: full ⇒ the submitted
///     task itself runs inline.
///
/// The front door is ASYNCHRONOUS: Submit accepts a SolveRequest
/// (request.h) and returns a SolveTicket (async.h) immediately — the
/// submitter does not help drain. Per-request deadlines are enforced at
/// four points: at submit (already expired → fail fast, nothing is
/// prepared), at dequeue (expired before start → DeadlineExceeded without
/// solving), between component subproblems, and INSIDE a single hard
/// component's world-enumeration / sampling loop (the CancelToken yield
/// points in solver.h/engines.cc/fallback.cc/monte_carlo.cc). Cooperative
/// cancellation uses the same token, via SolveTicket::Cancel. An expired or
/// cancelled request fails only itself: its neighbors' tasks and results
/// are untouched.
///
/// GRACEFUL DEGRADATION (DegradePolicy, solver.h): with mode
/// kOnDeadlineRisk — set on the session's base options or per request via
/// SolveRequest overrides — a request whose exact solve would answer
/// DeadlineExceeded is instead re-dispatched, on the thread that detected
/// the miss, to the budgeted Monte Carlo estimator with whatever time
/// budget remains (floor: policy.min_samples samples). The converted
/// result is OK, carries SolveResult::degrade provenance (estimate,
/// half-width, samples_used, budget_spent) and marks RequestStats::degraded.
/// At submit, an already-expired deadline then no longer fails fast: the
/// request is prepared and enqueued so a worker produces the estimate.
/// Explicit cancellation always answers Cancelled — with the policy on, a
/// ticket therefore resolves to exactly one of {exact result, degraded
/// estimate, Cancelled}.
///
/// PREDICTIVE ADMISSION & SLACK ORDERING (cost_model.h): install a
/// CostModel on ExecutorOptions::cost_model and Submit consults an
/// immutable model snapshot per request (snapshot-at-submit: decisions are
/// deterministic for a fixed snapshot):
///   * a deadline-carrying request whose predicted exact cost cannot fit
///     the remaining budget — even optimistically — is degraded
///     PROACTIVELY when its DegradePolicy allows: the exact attempt is
///     skipped entirely and the estimate carries DegradeInfo::proactive;
///   * with enable_shedding, a deadline-carrying request that cannot
///     degrade is REJECTED with kResourceExhausted at submit (before any
///     preparation) when the predicted backlog exceeds the remaining slack
///     of every pending deadline, its own included;
///   * deadline-carrying tasks dispatch earliest-effective-deadline-first
///     through the per-worker EDF heaps described above; with no deadlines
///     set the heaps stay empty and dispatch is the deque/injection path
///     (bit-identical results at every thread count).
/// Every completed exact solve is recorded back into the model, so
/// predictions sharpen as the pool serves.
///
/// HOT-PATH SCRATCH: each worker owns a MonotonicArena (util/arena.h),
/// reset between tasks and threaded through SolveOptions::scratch into the
/// solving kernels, so steady-state component solves perform no scratch
/// mallocs. Helpers running tasks inline use a thread-local arena with the
/// same discipline. Scratch never influences answers.
///
/// The synchronous API (SolveBatch/SolveItems) is a thin submit+wait
/// wrapper over the same path; while waiting, the calling thread helps
/// drain the pool — which is why `threads = 1` makes progress even when
/// the lone worker is busy with another batch.
///
/// Determinism guarantee: for every thread count, with stealing on or off,
/// every request that COMPLETES (is neither expired nor cancelled) answers
/// BIT-IDENTICALLY to session.Solve run serially — probabilities (both
/// backends), stats, analyses and error statuses. This holds because
///   * every result is written to its own ticket (no completion-order
///     dependence),
///   * per-request component answers land in PREASSIGNED slots (parts[i]),
///     and are merged in component-index order with exactly the serial
///     combine (CombinePreparedComponents) by whichever task finishes last
///     — so WHERE a task ran (owner pop, steal, injection, inline) can
///     never reach the arithmetic,
///   * the Monte Carlo engine derives a fresh Rng stream from the
///     per-request seed inside each task (EstimateProbabilityMonteCarlo is
///     a pure function of (query, instance, seed)), so no thread shares
///     generator state with another.
/// Scheduling (steal order, block choice) affects only WHEN tasks run,
/// which is observable in completion ORDER alone — and deadline-less
/// completion order was never part of the contract.
///
/// The pool is shared infrastructure: several threads may Submit / solve
/// concurrently. Destroying the executor DRAINS it: the destructor runs
/// queued tasks itself (sweeping every worker's deque and heap) and waits
/// for workers' in-flight tasks, so every outstanding ticket completes
/// before the pool is torn down. Sessions named by outstanding requests
/// must outlive the destructor call, and no thread may Submit once
/// destruction has begun — join your submitting threads first.

namespace phom::serve {

struct ExecutorOptions {
  /// Worker threads. 0 = std::thread::hardware_concurrency() (at least 1).
  size_t threads = 0;
  /// Injection-queue capacity (rounded up to a power of two, split across
  /// its blocks). When the queue is full, the submitter runs the task
  /// inline instead of blocking — the queue bounds memory, not correctness
  /// (Submit may therefore block on a saturated pool: natural
  /// backpressure). Also sizes the per-worker EDF heaps: each holds up to
  /// queue_capacity / threads entries before the displace-inline overflow
  /// policy fires.
  size_t queue_capacity = 1024;
  /// Fan the independent instance components of a componentwise dispatch
  /// out as separate tasks (within-query parallelism). Off = one task per
  /// request. Results are identical either way.
  bool split_components = true;
  /// Learned latency model (cost_model.h) consulted once per Submit via an
  /// immutable snapshot: predictions set the slack-ordering effective
  /// deadline, drive PROACTIVE degradation, and feed the shedding check
  /// below; completed exact solves are recorded back. Null (the default)
  /// disables prediction entirely — admission and provenance are then
  /// unchanged from the pre-cost-model executor.
  std::shared_ptr<CostModel> cost_model;
  /// Warm-start snapshot for `cost_model` (JSON produced by
  /// CostModel::ExportSnapshotJson, typically persisted at the end of a
  /// previous run). Imported once in the constructor, so the very first
  /// Submit already predicts from learned cells instead of the cold-start
  /// priors. Empty (the default) = no warm start. Ignored when `cost_model`
  /// is null. An unparseable snapshot is a configuration bug and fails the
  /// constructor loudly (PHOM_CHECK).
  std::string cost_model_warm_start_json;
  /// Staleness discount applied to the warm-start snapshot at import, in
  /// [0, 1]: each imported cell is blended toward its cold-start prior by
  /// this factor (0 = trust the snapshot verbatim, 1 = reset to the prior).
  /// Yesterday's latencies are evidence, not truth — a machine or build
  /// change shifts every cell, and the decayed blend lets fresh
  /// observations re-win the EWMA quickly (see ImportSnapshotJson).
  double cost_model_warm_start_decay = 0.0;
  /// With a cost model installed: route each plain interval-backend request
  /// (no forced engine/algorithm, not a UCQ) through the registered exact
  /// engine with the smallest PREDICTED enclosure width for its cell
  /// (SelectTightestEngine, cost_model.h) by forcing that engine on the
  /// request's options at submit. Off (the default) preserves auto dispatch
  /// bit-identically; on, the choice is a pure function of the snapshot
  /// taken at submit — deterministic, but dependent on what the model has
  /// learned so far. Exact/double-backend requests are never rerouted.
  bool select_tightest_enclosure = false;
  /// With a cost model installed: reject a deadline-carrying request at
  /// submit (kResourceExhausted, nothing prepared, the session untouched)
  /// when the predicted backlog exceeds the remaining slack of EVERY
  /// pending deadline including the incoming request's own — the request is
  /// predicted hopeless no matter how the queue is ordered. Requests whose
  /// DegradePolicy allows degradation are degraded proactively instead of
  /// shed (an estimate beats an error); deadline-less requests are never
  /// shed.
  bool enable_shedding = false;
  /// Work stealing (default ON): workers fan component tasks out to their
  /// own deque and steal from randomized victims when idle. OFF routes
  /// fan-out through the shared injection queue instead (the pre-rebuild
  /// dispatch shape) — results are bit-identical either way; the knob
  /// exists for the contender benchmarks and for pinning down scheduling
  /// regressions.
  bool enable_stealing = true;
  /// Per-worker deque capacity (rounded up to a power of two, minimum 2).
  /// A full deque overflows into the injection queue, then inline.
  size_t steal_deque_capacity = 256;
  /// Number of injection-queue blocks. 0 = auto: min(threads, 8), clamped
  /// so no block drops below 2 cells (a capacity-2 queue is therefore
  /// always ONE block — the strict-FIFO configuration — and tiny-queue
  /// inline-run behavior is unchanged). 1 = strict global FIFO. Larger
  /// values relax cross-block ordering for throughput (relaxed_queue.h).
  size_t injection_blocks = 0;
  /// Seed for the per-worker victim-selection RNGs (worker i is seeded with
  /// steal_seed ^ i). The steal-interleaving fuzz suite varies this to
  /// drive victim order through many schedules; results never depend on it.
  uint64_t steal_seed = 0x9e3779b97f4a7c15ull;
  /// TEST ONLY. When set, a WORKER thread invokes this with its index right
  /// after fanning a request out: components 1..n-1 are pushed to its deque
  /// (other workers woken) and component 0 has just run inline. The steal
  /// suites park the fanning worker here so every REMAINING component task
  /// must be stolen (a deterministic forced-steal gate), and the mid-flight
  /// expiry/cancel suites use the same parking spot to land a deadline or
  /// cancel between component tasks. Leave unset in production.
  std::function<void(size_t worker_index)> test_after_fanout;
};

/// Monotonic counters of admission/scheduling outcomes (updated with
/// relaxed atomics; a stats() snapshot is exact once the pool has drained).
struct ExecutorStats {
  uint64_t submitted = 0;            ///< requests accepted by Submit
  uint64_t exact_solves_started = 0; ///< requests whose exact solve began
  uint64_t degraded_proactive = 0;   ///< exact attempt skipped at admission
  uint64_t degraded_reactive = 0;    ///< converted after a real deadline miss
  uint64_t shed = 0;                 ///< rejected kResourceExhausted at submit
  uint64_t tasks_stolen = 0;         ///< tasks taken from another worker's
                                     ///< deque or EDF heap
  uint64_t inline_runs = 0;          ///< tasks run on a non-worker thread
                                     ///< because a queue/deque was full
  uint64_t edf_displaced_runs = 0;   ///< EDF overflow: earliest entry run
                                     ///< inline to admit the incoming task
  /// Width-escalation outcomes (EscalationPolicy, solver.h): how many
  /// completed interval solves came back wider than their target and entered
  /// the escalation hook; how many of those were re-run to an exact answer;
  /// and how many were denied because the remaining deadline budget could
  /// not fit the predicted exact re-run (the published answer is then the
  /// wide — but still certified — interval, with the denial on record).
  uint64_t escalated_attempted = 0;
  uint64_t escalated_succeeded = 0;
  uint64_t escalated_budget_denied = 0;
  /// Per-guarantee provenance counters (GuaranteeOf over each successful
  /// result as it is published; errored tickets count in none of them).
  /// Together they answer the operator's question "what fraction of the
  /// answers we served were certified?" without touching any ticket.
  uint64_t results_exact = 0;        ///< Guarantee::kExact
  uint64_t results_interval = 0;     ///< Guarantee::kIntervalEnclosure
  uint64_t results_empirical = 0;    ///< Guarantee::kEmpiricalDouble
  uint64_t results_absolute95 = 0;   ///< Guarantee::kAbsolute95
  uint64_t results_relative95 = 0;   ///< Guarantee::kRelative95
  /// Log2-bucketed histogram of enclosure WIDTHS (bound.hi − bound.lo) over
  /// successful CERTIFIED kIntervalDouble solves — the operator's view of
  /// how tight the certified answers actually were. Recorded EXACTLY ONCE
  /// per such result on every completion path: in Finish for published
  /// interval results, and at escalation time (with the pre-escalation
  /// width) for interval answers the escalation hook replaced with an exact
  /// re-run — so sum(buckets) == certified interval results completed,
  /// whether published, inline, fanned out, or escalated away. Degraded
  /// Monte Carlo estimates carry a STATISTICAL bracket, not a certified
  /// enclosure, and are counted in results_absolute95/relative95 instead
  /// (they previously polluted this histogram through the uncertified bump).
  /// Bucket 0 holds width 0 (point enclosures); bucket b in [1, 65] holds
  /// widths with binary exponent b − 64 (IntervalWidthBucket below), so
  /// ~1e-16-wide enclosures land near bucket 11 and widths of order 1 near
  /// bucket 64, with both tails clamped. Bucket 66 (kIntervalWidthInvalid)
  /// counts INVALID enclosures — NaN width or hi < lo — which a debug build
  /// additionally asserts on: an inverted enclosure is a kernel bug, not a
  /// point answer (the pre-fix bucketing filed NaN under bucket 0).
  std::array<uint64_t, 67> interval_width_hist{};
};

/// Histogram slot for invalid enclosure widths (NaN, or negative from an
/// inverted hi < lo interval): loud accounting instead of the old silent
/// bucket-0 "point enclosure" filing.
inline constexpr size_t kIntervalWidthInvalid = 66;

/// The histogram bucket for one enclosure width: kIntervalWidthInvalid (66)
/// for NaN or negative widths (with a debug assert — those mean an invalid
/// hi < lo enclosure escaped a kernel), 0 for width == 0 (a point
/// enclosure), otherwise clamp(exponent(width) + 64, 1, 65) where
/// width = m · 2^exponent with m in [0.5, 1) — i.e. a pure log2 bucketing
/// with 64 buckets of subnormal-to-unit resolution and a clamped tail each
/// side. Exposed for tests and for dashboards that label the axis.
size_t IntervalWidthBucket(double width);

/// One unit of a synchronous heterogeneous batch: a query against a session
/// (sessions may differ per item — that is how ShardedServer fans one
/// request batch across shards). Both pointers must outlive the SolveItems
/// call; for asynchronous submission use SolveRequest, which owns its query.
struct BatchItem {
  EvalSession* session;
  const DiGraph* query;
};

class BatchExecutor {
 public:
  explicit BatchExecutor(ExecutorOptions options = {});
  /// Drains: blocks until every outstanding ticket has completed (helping
  /// to run queued tasks), then joins the workers.
  ~BatchExecutor();

  BatchExecutor(const BatchExecutor&) = delete;
  BatchExecutor& operator=(const BatchExecutor&) = delete;

  size_t num_threads() const { return workers_.size(); }
  const ExecutorOptions& options() const { return options_; }
  /// Snapshot of the admission/scheduling counters.
  ExecutorStats stats() const;

  // -------------------------------------------------------------------------
  // Asynchronous front door.
  // -------------------------------------------------------------------------

  /// Submits one request against `session` and returns its ticket
  /// immediately. Preparation (the cheap, cached half of a solve) runs on
  /// the calling thread — this fixes the context-cache population order, so
  /// session stats match serial execution — unless the deadline has already
  /// expired, in which case the request fails fast with DeadlineExceeded
  /// and the session is never touched. `request.shard` is ignored here
  /// (shard routing is ShardedServer's job). The session must stay alive
  /// until the ticket completes.
  SolveTicket Submit(EvalSession& session, SolveRequest request,
                     CompletionCallback callback = nullptr);

  /// Submits a batch in order; tickets align with `requests`.
  std::vector<SolveTicket> SubmitBatch(EvalSession& session,
                                       std::vector<SolveRequest> requests);

  /// Waits for every ticket and moves the results out, in order (empty
  /// tickets yield Invalid). Pure wait — works for tickets of any executor.
  static std::vector<Result<SolveResult>> Collect(
      std::vector<SolveTicket>& tickets);

  /// Collect, but the calling thread helps drain THIS executor's queues
  /// while it waits (the synchronous wrappers' behavior).
  std::vector<Result<SolveResult>> CollectHelping(
      std::vector<SolveTicket>& tickets);

  // -------------------------------------------------------------------------
  // Synchronous wrappers (submit + wait-helping over the async path).
  // -------------------------------------------------------------------------

  /// Answers `queries` against `session` in order; result i is bit-identical
  /// to serial session.SolveBatch(queries)[i] for every thread count.
  std::vector<Result<SolveResult>> SolveBatch(
      EvalSession& session, const std::vector<DiGraph>& queries);

  /// Heterogeneous variant: items may target different sessions.
  std::vector<Result<SolveResult>> SolveItems(
      const std::vector<BatchItem>& items);

 private:
  /// One schedulable unit: component `component` of the request, the whole
  /// request, or — when component < 0 and the request has a componentwise
  /// dispatch — the FAN-OUT ROOT, which spawns the component tasks at the
  /// thread that dequeues it. Holds shared ownership of the request state,
  /// so a queued task can never dangle.
  struct Task {
    std::shared_ptr<internal::RequestState> request;
    int32_t component = -1;
  };

  /// One entry of a worker's EDF heap: min-heap on (effective deadline,
  /// arrival sequence) — the tiebreak keeps equal-deadline tasks FIFO.
  struct DeadlineEntry {
    RequestClock::time_point effective;
    uint64_t seq = 0;
    Task task;
  };
  struct LaterDeadline {
    bool operator()(const DeadlineEntry& a, const DeadlineEntry& b) const {
      if (a.effective != b.effective) return a.effective > b.effective;
      return a.seq > b.seq;
    }
  };

  /// Per-worker scheduling state. Heap-pinned (unique_ptr in the vector):
  /// the deque and mutex must not move while threads hold references.
  struct Worker {
    Worker(size_t deque_capacity, size_t heap_capacity, uint64_t seed)
        : deque(deque_capacity), heap_capacity(heap_capacity), rng(seed) {}
    WorkStealDeque<Task> deque;
    const size_t heap_capacity;
    std::mutex edf_mu;
    std::priority_queue<DeadlineEntry, std::vector<DeadlineEntry>,
                        LaterDeadline>
        edf_heap;          ///< guarded by edf_mu
    uint64_t edf_seq = 0;  ///< guarded by edf_mu
    /// Lock-free mirrors of the heap size / a load probe for least-loaded
    /// routing and cheap emptiness checks (never used for correctness).
    std::atomic<size_t> edf_size{0};
    /// Victim-selection RNG; touched ONLY by the owning worker thread.
    std::mt19937_64 rng;
    /// Per-task scratch (SolveOptions::scratch), reset between tasks;
    /// touched only by whichever thread runs this worker's RunTask — which
    /// is only the owning worker thread.
    MonotonicArena arena;
  };

  static constexpr size_t kNoWorker = static_cast<size_t>(-1);

  void EnqueueTask(Task task);
  /// Worker pop: own deque → own EDF heap → injection → steal.
  bool TryPopTaskWorker(size_t self, Task* out);
  /// Helper pop (collect-helping, destructor): injection → every worker's
  /// heap and deque.
  bool TryPopTaskShared(Task* out);
  bool PopEdf(Worker& w, Task* out);
  void RunTask(const Task& task, size_t self = kNoWorker);
  /// Spawns the component tasks of a fan-out root at the dequeuing thread:
  /// workers push to their own deque (overflow → injection → inline),
  /// everyone else pushes to the injection queue (overflow → inline).
  void FanOut(const Task& root, size_t self);
  void Finish(const std::shared_ptr<internal::RequestState>& request,
              Result<SolveResult> result);
  /// Finish, but a DeadlineExceeded result is first converted into a
  /// budgeted Monte Carlo estimate when the request's DegradePolicy allows
  /// (the degraded solve runs on the calling thread).
  void FinishOrDegrade(const std::shared_ptr<internal::RequestState>& request,
                       Result<SolveResult> result);
  /// The escalation hook (EscalationPolicy, solver.h), run on every solve
  /// completion path just before Finish: a successful certified interval
  /// result wider than the request's target is re-solved under the exact
  /// backend on the calling thread — when the deadline still stands and the
  /// cost model (if any) predicts the re-run fits the remaining budget —
  /// and replaced by the exact answer with EscalateInfo provenance. A
  /// failed or denied re-run publishes the original interval result with
  /// the attempt/denial counted in ExecutorStats.
  void MaybeEscalate(internal::RequestState& req, Result<SolveResult>* result);
  void WorkerLoop(size_t index);
  bool AllRequestsFinished();
  void NotifyOne();
  void NotifyAll();
  /// The arena backing SolveOptions::scratch for a task run by `self` (a
  /// worker's own arena, or a thread-local one for helpers), reset for use.
  MonotonicArena* TaskArena(size_t self);
  /// Marks the request's first exact solving work (counter bump, once).
  void MarkExactStarted(internal::RequestState& req);
  /// Charges the request's predicted cost to the backlog and registers its
  /// deadline in the pending set (admission bookkeeping; refunded in
  /// Finish).
  void ChargeAdmission(internal::RequestState& req,
                       std::chrono::nanoseconds predicted,
                       const std::optional<RequestClock::time_point>& deadline);
  /// The shedding predicate: predicted backlog drain time exceeds the
  /// remaining slack of every pending deadline AND of `deadline` itself.
  bool PredictedBacklogHopeless(RequestClock::time_point deadline,
                                RequestClock::time_point now);

  ExecutorOptions options_;
  /// Deadline-less lane: relaxed block-based MPMC (relaxed_queue.h). Also
  /// the overflow target for full worker deques and the fan-out lane when
  /// stealing is disabled.
  RelaxedBlockQueue<Task> injection_;
  std::mutex work_mu_;
  std::condition_variable work_cv_;
  bool stop_ = false;  ///< guarded by work_mu_
  std::mutex finish_mu_;
  std::condition_variable finish_cv_;
  size_t outstanding_ = 0;  ///< submitted, not yet finished; guarded by finish_mu_
  /// Admission-control state: predicted-but-unfinished work charged to the
  /// pool and the deadlines of in-flight requests.
  std::mutex admission_mu_;
  int64_t backlog_ns_ = 0;  ///< guarded by admission_mu_
  std::multiset<RequestClock::time_point>
      pending_deadlines_;   ///< guarded by admission_mu_
  std::atomic<uint64_t> submitted_{0};
  std::atomic<uint64_t> exact_started_{0};
  std::atomic<uint64_t> degraded_proactive_{0};
  std::atomic<uint64_t> degraded_reactive_{0};
  std::atomic<uint64_t> shed_{0};
  std::atomic<uint64_t> tasks_stolen_{0};
  std::atomic<uint64_t> inline_runs_{0};
  std::atomic<uint64_t> edf_displaced_{0};
  std::atomic<uint64_t> escalated_attempted_{0};
  std::atomic<uint64_t> escalated_succeeded_{0};
  std::atomic<uint64_t> escalated_budget_denied_{0};
  /// Per-guarantee result counters, indexed by static_cast<size_t>(the
  /// Guarantee enum); bumped in Finish alongside RequestStats::guarantee.
  std::array<std::atomic<uint64_t>, 5> guarantee_counts_{};
  /// Interval-width histogram counters (ExecutorStats::interval_width_hist);
  /// bumped exactly once per successful CERTIFIED interval result — in
  /// Finish for published results, in MaybeEscalate for escalated ones.
  std::array<std::atomic<uint64_t>, 67> interval_width_hist_{};
  /// Rotation cursor for the shared (non-worker) sweep over worker state.
  std::atomic<uint64_t> shared_sweep_{0};
  std::vector<std::unique_ptr<Worker>> worker_state_;
  std::vector<std::thread> workers_;
};

}  // namespace phom::serve
