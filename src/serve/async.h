#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "src/core/eval_session.h"
#include "src/serve/request.h"

/// \file async.h
/// Futures for the serving layer: BatchExecutor::Submit (executor.h) accepts
/// a SolveRequest (request.h) and returns a SolveTicket — a shared handle on
/// the request's eventual Result<SolveResult>, its RequestStats timeline,
/// and its CancelToken. Submission returns immediately; the submitter no
/// longer helps drain (the synchronous Solve*/wrappers still do, via the
/// executor's collect-helping path). Completion can additionally be observed
/// through a CompletionCallback.

namespace phom::serve {

class BatchExecutor;

/// Invoked exactly once when the request completes, on the thread that
/// completed it (a pool worker, or the submitting/collecting thread for
/// inline runs). Constraints: it must not throw (throws are swallowed to
/// protect the pool), should be cheap (it runs on the serving hot path), and
/// must not call blocking methods of the SAME ticket (Wait/Get/Take) — the
/// callback fires before waiters are released. The references are valid only
/// for the duration of the call.
using CompletionCallback =
    std::function<void(const Result<SolveResult>&, const RequestStats&)>;

namespace internal {

/// Shared state behind one submitted request: the ticket, every queued task
/// and the completion path all hold the same heap block (shared_ptr), which
/// is what makes asynchronous submission dangle-free — the state outlives
/// whichever side finishes last. Fields are grouped by writer; see the
/// comments for the synchronization story.
struct RequestState {
  // --- Immutable after submission (published to workers by the task
  // queue's release/acquire handoff). ---
  std::shared_ptr<const DiGraph> query;
  /// The union payload of a UCQ request (request.h); null for single-CQ
  /// requests. Tasks still need only `prepared` — its PreparedUcq handle
  /// owns the normalized union and every unit's preparation.
  std::shared_ptr<const Ucq> ucq;
  /// Session options + request overrides; options.cancel points at `cancel`
  /// below (the state is heap-pinned, so the pointer stays valid). The
  /// session itself is not retained: after Submit's preparation, tasks need
  /// only `prepared` (whose context the session's cache keeps alive).
  SolveOptions options;
  CancelToken cancel;
  PreparedProblem prepared{DiGraph(0), nullptr, std::nullopt, {}};
  /// Engine resolved ONCE at submit (PlanComponentDispatch, solver.h);
  /// component tasks reuse it instead of re-scanning the registry under its
  /// shared_mutex. Empty (components == 0) for whole-request tasks.
  ComponentDispatch dispatch;

  // --- Admission & scheduling (written once at submit, before any task is
  // enqueued; published to workers by the task handoff like the fields
  // above). ---
  /// Admission skipped the exact attempt: the request's single task runs
  /// the budgeted Monte Carlo estimator directly and the result carries
  /// DegradeInfo::proactive provenance (cost_model.h).
  bool proactive = false;
  /// The request dispatches through the slack-ordered lane under
  /// `effective_deadline` = deadline − predicted cost (just the deadline
  /// when no cost model is installed). False for deadline-less requests,
  /// which keep FIFO order among themselves.
  bool has_effective_deadline = false;
  RequestClock::time_point effective_deadline{};
  /// Admission-control bookkeeping, guarded by the executor's admission
  /// mutex: the predicted nanoseconds charged to the pool's backlog and the
  /// deadline registered in its pending set. Both are released exactly once,
  /// when the request finishes.
  int64_t charged_backlog_ns = 0;
  bool deadline_registered = false;
  RequestClock::time_point registered_deadline{};

  // --- Component fan-out (same discipline as PR 3's BatchState: each part
  // slot is written by exactly one task; the last finisher's acq_rel
  // fetch_sub orders every part write before the merge). ---
  std::vector<Result<SolveResult>> parts;
  std::atomic<size_t> remaining{0};
  /// Set (relaxed) just before the first real solving work; distinguishes
  /// "expired/cancelled before start" from a mid-flight interruption.
  std::atomic<bool> work_started{false};
  /// Set (relaxed exchange) when the request's first EXACT solving work
  /// begins; feeds ExecutorStats::exact_solves_started. Proactively degraded
  /// and gate-rejected requests never set it — the acceptance criterion for
  /// "the exact solve was skipped".
  std::atomic<bool> exact_started{false};

  // --- Completion (guarded by mu). ---
  std::mutex mu;
  std::condition_variable cv;
  bool done = false;
  bool started_recorded = false;
  Result<SolveResult> result;
  RequestStats stats;
  /// Consumed (moved out) by the completion path; invoked outside mu.
  CompletionCallback callback;

  RequestState()
      : result(Status::Invalid("serve: result slot not yet computed")) {}
};

}  // namespace internal

/// A future on one submitted request. Cheap to copy (shared handle); all
/// methods are thread-safe. A default-constructed ticket is empty
/// (valid() == false) and must not be waited on.
class SolveTicket {
 public:
  SolveTicket() = default;

  bool valid() const { return state_ != nullptr; }
  bool done() const;

  /// Blocks until the request completes.
  void Wait() const;
  /// Bounded wait; true when the request completed within `timeout`.
  bool WaitFor(std::chrono::nanoseconds timeout) const;

  /// Waits, then returns a copy of the result (repeatable).
  Result<SolveResult> Get() const;
  /// Waits, then moves the result out. Call at most once; afterwards Get()
  /// observes the moved-from remains.
  Result<SolveResult> Take();

  /// Requests cooperative cancellation (CancelToken, util/status.h): the
  /// request aborts with Cancelled at its next yield point — at dequeue,
  /// between component subproblems, or (fine granularity) inside a hard
  /// cell's enumeration / sampling loop. Returns true when the request had
  /// not yet completed (delivery in time is still a race the solve may
  /// win). Cancellation is never converted by a DegradePolicy: a cancelled
  /// request answers Cancelled, not an estimate.
  bool Cancel();

  /// Snapshot of the request's timeline (request.h). Safe to call at any
  /// time; fields settle once done() is true.
  RequestStats stats() const;

  /// A ticket that is already complete — for requests rejected before
  /// submission (e.g. an out-of-range shard). `callback`, when given, is
  /// invoked inline before this returns.
  static SolveTicket Completed(Result<SolveResult> result,
                               const CompletionCallback& callback = nullptr);

 private:
  friend class BatchExecutor;
  explicit SolveTicket(std::shared_ptr<internal::RequestState> state)
      : state_(std::move(state)) {}

  std::shared_ptr<internal::RequestState> state_;
};

}  // namespace phom::serve
