#pragma once

#include <array>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>

#include "src/core/solver.h"
#include "src/graph/classify.h"

/// \file cost_model.h
/// A learned solve-latency model for the serve layer's admission control
/// (executor.h). The Dalvi–Suciu-style dichotomy makes per-cell cost vary by
/// ORDERS OF MAGNITUDE — a tractable DP is linear in the uncertain edge
/// count while a #P-hard cell's exact fallback enumerates 2^edges worlds —
/// so a request's fate under a deadline is largely decided by which cell it
/// lands in. The model tracks one latency EWMA per cell:
///
///     key = (engine name, component GraphClass, uncertain-edge bucket)
///
/// where the bucket is the bit width of the uncertain-edge count (log2
/// buckets: counts 0, 1, 2–3, 4–7, ...), updated from every completed
/// component solve under a striped mutex. Cells with no observations fall
/// back to a static PRIOR table shaped after BENCH_baseline.json: linear
/// (~microseconds) for the PTIME classes, exponential in the uncertain edge
/// count (~2 µs per world) for the hard ones.
///
/// DETERMINISM. EWMA updates under concurrent completion races are
/// order-dependent, so admission decisions are NEVER made against the live
/// model: Submit takes an immutable CostModelSnapshot once per request and
/// decides against that. Prediction and DecideAdmission are pure functions
/// of (snapshot, prepared problem, options, remaining budget) — for a fixed
/// snapshot the decision is bit-identical at every thread count and in both
/// numeric backends (the key never involves the backend; exact/double solve
/// the same cells).

namespace phom::serve {

struct CostModelOptions {
  /// EWMA step for both the mean and the mean-absolute-deviation tracker.
  double alpha = 0.25;
  /// Learned-cell uncertainty band half-width, in deviations:
  /// [mean - k·dev, mean + k·dev], clamped at zero.
  double band_sigmas = 2.0;
  /// Prior-cell band: [prior / f, prior · f]. Wide on purpose — priors are
  /// order-of-magnitude guesses, and the optimistic edge is what proactive
  /// degradation keys on (only skip the exact attempt when even the BEST
  /// case misses).
  double prior_band_factor = 8.0;
};

/// A predicted exact-solve latency with its uncertainty band
/// (optimistic <= expected <= pessimistic).
struct CostPrediction {
  std::chrono::nanoseconds expected{0};
  std::chrono::nanoseconds optimistic{0};
  std::chrono::nanoseconds pessimistic{0};
  /// At least one contributing cell had no observations (prior-backed).
  bool from_prior = false;

  CostPrediction& operator+=(const CostPrediction& other) {
    expected += other.expected;
    optimistic += other.optimistic;
    pessimistic += other.pessimistic;
    from_prior = from_prior || other.from_prior;
    return *this;
  }
};

/// Log2 bucketing of uncertain-edge counts: 0 → bucket 0, otherwise the bit
/// width of the count (1 → 1, 2–3 → 2, 4–7 → 3, ...). Coarse enough that a
/// handful of observations covers a cell, fine enough to separate the
/// exponential regimes.
uint32_t UncertainEdgeBucket(size_t uncertain_edges);

/// The static cold-start prior for one cell, shaped after
/// BENCH_baseline.json: hard classes (Connected/General, or the enumeration
/// engines) cost ~2 µs per world = 2 µs · 2^u; tractable classes cost
/// ~20 µs + 2 µs · u. `uncertain_edges` is the real count (bucketing is the
/// caller's concern).
std::chrono::nanoseconds PriorComponentCost(std::string_view engine,
                                            GraphClass component_class,
                                            size_t uncertain_edges);

/// The static cold-start prior for one cell's ENCLOSURE WIDTH (hi − lo of a
/// certified interval answer), seeded from the shape of the executor's
/// interval-width histogram on the bench workloads: each interval operation
/// contributes ~1 ulp of outward rounding (~4e-16 near answers of order 1),
/// and the operation count is ~linear in the uncertain edge count for the
/// tractable DPs but ~2^u for the enumeration engines and hard classes —
/// the same regimes PriorComponentCost models for latency. Clamped to 1
/// (an enclosure of [0, 1] is the widest possible).
double PriorEnclosureWidth(std::string_view engine, GraphClass component_class,
                           size_t uncertain_edges);

/// An immutable copy of the model's cells, the only thing admission
/// decisions may consult (see the determinism notes above). Obtained via
/// CostModel::Snapshot(); cheap to share (shared_ptr) and valid forever.
class CostModelSnapshot {
 public:
  /// Prediction for one solve unit: `engine` run on a component (or whole
  /// restricted instance) of class `component_class` with `uncertain_edges`
  /// uncertain edges. Pure function of this snapshot's cells.
  CostPrediction PredictComponent(std::string_view engine,
                                  GraphClass component_class,
                                  size_t uncertain_edges) const;

  /// Prediction for a whole prepared problem, mirroring exactly how the
  /// executor will run it: immediate answers predict zero; a componentwise
  /// plan (PlanComponentDispatch) sums per-component predictions under the
  /// plan's engine; otherwise the engine is resolved once (as SolvePrepared
  /// would) and the whole restricted instance is one unit. Engine-selection
  /// errors predict zero — admission abstains, and the ordinary solve path
  /// surfaces the error identically.
  CostPrediction PredictSolveCost(const PreparedProblem& prepared,
                                  const ComponentDispatch& plan,
                                  const SolveOptions& options) const;

  /// Predicted certified-enclosure width for one solve unit under `engine`:
  /// the cell's learned width EWMA when it has width observations, else the
  /// PriorEnclosureWidth cold-start seed. Pure function of this snapshot.
  double PredictEnclosureWidth(std::string_view engine,
                               GraphClass component_class,
                               size_t uncertain_edges) const;

  /// Number of learned cells in this snapshot.
  size_t num_cells() const { return cells_.size(); }
  /// Model version this snapshot was taken at (monotone across updates).
  uint64_t version() const { return version_; }

 private:
  friend class CostModel;

  struct Key {
    std::string engine;
    GraphClass component_class = GraphClass::kGeneral;
    uint32_t bucket = 0;
    bool operator==(const Key& o) const {
      return component_class == o.component_class && bucket == o.bucket &&
             engine == o.engine;
    }
  };
  struct KeyHash {
    size_t operator()(const Key& k) const {
      size_t h = std::hash<std::string>()(k.engine);
      h ^= (static_cast<size_t>(k.component_class) * 0x9e3779b97f4a7c15ULL) +
           (h << 6) + (h >> 2);
      h ^= (static_cast<size_t>(k.bucket) * 0xc2b2ae3d27d4eb4fULL) + (h << 6) +
           (h >> 2);
      return h;
    }
  };
  /// One cell's EWMA state: mean latency and mean absolute deviation, both
  /// in nanoseconds — plus the mean certified-enclosure width observed for
  /// this cell under the interval backend (the tightest-enclosure engine
  /// selection's signal; 0-count until an interval solve lands here).
  struct Cell {
    double mean_ns = 0.0;
    double dev_ns = 0.0;
    uint64_t count = 0;
    double width_mean = 0.0;
    uint64_t width_count = 0;
  };

  std::unordered_map<Key, Cell, KeyHash> cells_;
  CostModelOptions options_;
  uint64_t version_ = 0;
};

/// The live, concurrently-updated model. Thread-safe: updates take one of
/// kStripes mutexes (key-hashed), so completions on different cells never
/// contend; Snapshot() copies all stripes and caches the copy until the next
/// update. Install one on ExecutorOptions::cost_model (executor.h) — the
/// executor records every completed exact solve back automatically.
class CostModel {
 public:
  explicit CostModel(CostModelOptions options = {});

  /// Records one observed solve latency for a cell (the raw-key hook; tests
  /// and warm-start loaders use it directly).
  void RecordComponent(std::string_view engine, GraphClass component_class,
                       size_t uncertain_edges,
                       std::chrono::nanoseconds duration);

  /// Records one observed certified-enclosure width (hi − lo of an interval
  /// answer) for a cell — the width EWMA behind PredictEnclosureWidth.
  /// Non-finite or negative widths are ignored (invalid enclosures must not
  /// poison the signal; the executor buckets them loudly instead).
  void RecordComponentWidth(std::string_view engine,
                            GraphClass component_class, size_t uncertain_edges,
                            double width);

  /// Records a completed WHOLE-problem solve (non-componentwise dispatch):
  /// keyed by the result's engine, the restricted instance's class and its
  /// uncertain edge count. Degraded estimates and immediate answers are
  /// skipped — they are not exact-solve latencies. A certified interval
  /// result additionally trains the cell's width EWMA (RecordComponentWidth).
  void RecordSolve(const PreparedProblem& prepared, const SolveResult& result);

  /// Records one completed component solve of a componentwise dispatch:
  /// keyed by the plan's engine and the component's own class/edge count —
  /// the same key PredictSolveCost uses for that component, by construction.
  void RecordComponentSolve(const PreparedProblem& prepared,
                            const ComponentDispatch& plan,
                            size_t component_index, const SolveResult& result);

  /// The current immutable snapshot (cached; rebuilt only after updates).
  std::shared_ptr<const CostModelSnapshot> Snapshot() const;

  /// Serializes the learned cells as a small self-contained JSON document
  /// (schema version, then one record per cell with its key and EWMA
  /// state), suitable for persisting across runs and re-loading with
  /// ImportSnapshotJson. Cells are emitted in sorted key order, so equal
  /// models export byte-identical strings (stable round-trip tests, clean
  /// diffs of persisted snapshots). Latencies are serialized as exact
  /// nanosecond doubles via max_digits10 — export→import→export is
  /// byte-identical.
  std::string ExportSnapshotJson() const;

  /// Bulk warm-start loader, the persisted-snapshot counterpart of the
  /// RecordComponent raw-key hook: installs every cell of a previously
  /// exported snapshot. `decay_toward_prior` in [0, 1] blends each imported
  /// cell toward its cold-start prior (PriorComponentCost at the bucket's
  /// smallest member count): mean and deviation move linearly toward the
  /// prior's, and the observation count is scaled by (1 - decay) — so a
  /// stale snapshot re-learns quickly while still beating the raw prior.
  /// decay = 0 restores verbatim; decay = 1 keeps the keys but resets their
  /// state to the prior with a single-observation weight. Imported state
  /// OVERWRITES cells with matching keys and is itself overwritten by
  /// subsequent RecordComponent updates (the EWMA just continues). Returns
  /// the number of cells installed; malformed JSON or an unknown schema
  /// version is Status::Invalid and installs nothing.
  Result<size_t> ImportSnapshotJson(std::string_view json,
                                    double decay_toward_prior = 0.0);

  const CostModelOptions& options() const { return options_; }

 private:
  static constexpr size_t kStripes = 16;
  struct Stripe {
    mutable std::mutex mu;
    std::unordered_map<CostModelSnapshot::Key, CostModelSnapshot::Cell,
                       CostModelSnapshot::KeyHash>
        cells;  ///< guarded by mu
  };

  CostModelOptions options_;
  std::array<Stripe, kStripes> stripes_;
  std::atomic<uint64_t> version_{0};
  mutable std::mutex snapshot_mu_;
  mutable std::shared_ptr<const CostModelSnapshot>
      snapshot_;  ///< guarded by snapshot_mu_
};

/// What admission decided for one request.
enum class AdmissionAction {
  kAdmitExact = 0,       ///< run the exact solve (the ordinary path)
  kDegradeProactively,   ///< skip the doomed exact attempt; estimate directly
};

struct AdmissionDecision {
  AdmissionAction action = AdmissionAction::kAdmitExact;
  CostPrediction predicted;
};

/// THE admission rule, shared by the executor and the determinism tests: a
/// pure function of (snapshot, prepared, plan, options, remaining budget).
/// Degrade proactively iff the request may degrade (DegradePolicy mode
/// kOnDeadlineRisk) AND even the OPTIMISTIC edge of the predicted cost
/// exceeds the remaining budget (conservative: a prediction that might fit
/// is attempted exactly and can still degrade reactively). Requests without
/// a deadline (nullopt budget) and zero predictions (immediate answers,
/// engine-selection errors) always admit.
///
/// ESCALATION PRICING: an interval-backend request whose EscalationPolicy is
/// kOnWideResult may cost a second, exact re-run of the whole solve
/// (executor.h), so its predicted EXPECTED and PESSIMISTIC costs are doubled
/// — the re-run lands in the same (engine, class, bucket) cells, which the
/// executor trains with every escalated re-run it performs. The OPTIMISTIC
/// edge deliberately stays the single-solve cost (best case: the enclosure
/// comes back tight and no re-run happens), so proactive degradation never
/// fires on escalation risk alone. With escalation off the decision is
/// bit-identical to the pre-escalation rule.
AdmissionDecision DecideAdmission(
    const CostModelSnapshot& snapshot, const PreparedProblem& prepared,
    const ComponentDispatch& plan, const SolveOptions& options,
    std::optional<std::chrono::nanoseconds> remaining_budget);

/// Tightest-enclosure engine choice for an interval-backend request (the
/// serve layer's opt-in refinement, ExecutorOptions::
/// select_tightest_enclosure): among the registered EXACT engines that apply
/// to the prepared problem's cell, the one with the smallest predicted
/// whole-problem enclosure width (summed per component when the instance is
/// componentwise — widths compound through the Lemma 3.7 combine). Returns
/// the chosen engine's registry name when it beats the auto-dispatch choice
/// STRICTLY (ties keep the auto engine, so a cold model — where every
/// tractable variant shares one prior — changes nothing), or "" to keep auto
/// dispatch (also for immediate answers, UCQ plans — the lifted engine owns
/// those — and requests that already force an engine or algorithm). Pure
/// function of (snapshot, prepared, options): deterministic per snapshot.
std::string SelectTightestEngine(const CostModelSnapshot& snapshot,
                                 const PreparedProblem& prepared,
                                 const SolveOptions& options);

}  // namespace phom::serve
