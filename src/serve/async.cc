#include "src/serve/async.h"

namespace phom::serve {

bool SolveTicket::done() const {
  PHOM_CHECK_MSG(valid(), "done() on an empty SolveTicket");
  std::lock_guard<std::mutex> lock(state_->mu);
  return state_->done;
}

void SolveTicket::Wait() const {
  PHOM_CHECK_MSG(valid(), "Wait() on an empty SolveTicket");
  std::unique_lock<std::mutex> lock(state_->mu);
  state_->cv.wait(lock, [this] { return state_->done; });
}

bool SolveTicket::WaitFor(std::chrono::nanoseconds timeout) const {
  PHOM_CHECK_MSG(valid(), "WaitFor() on an empty SolveTicket");
  std::unique_lock<std::mutex> lock(state_->mu);
  return state_->cv.wait_for(lock, timeout, [this] { return state_->done; });
}

Result<SolveResult> SolveTicket::Get() const {
  Wait();
  std::lock_guard<std::mutex> lock(state_->mu);
  return state_->result;
}

Result<SolveResult> SolveTicket::Take() {
  Wait();
  std::lock_guard<std::mutex> lock(state_->mu);
  return std::move(state_->result);
}

bool SolveTicket::Cancel() {
  PHOM_CHECK_MSG(valid(), "Cancel() on an empty SolveTicket");
  state_->cancel.Cancel();
  return !done();
}

RequestStats SolveTicket::stats() const {
  PHOM_CHECK_MSG(valid(), "stats() on an empty SolveTicket");
  std::lock_guard<std::mutex> lock(state_->mu);
  return state_->stats;
}

SolveTicket SolveTicket::Completed(Result<SolveResult> result,
                                   const CompletionCallback& callback) {
  auto state = std::make_shared<internal::RequestState>();
  const RequestClock::time_point now = RequestClock::now();
  state->stats.enqueued = now;
  state->stats.started = now;
  state->stats.finished = now;
  state->started_recorded = true;
  state->result = std::move(result);
  state->done = true;
  if (callback) {
    // Same contract as executor completions: exceptions are swallowed.
    try {
      callback(state->result, state->stats);
    } catch (...) {  // NOLINT(bugprone-empty-catch)
    }
  }
  return SolveTicket(std::move(state));
}

}  // namespace phom::serve
