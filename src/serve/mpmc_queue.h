#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>

#include "src/util/status.h"

/// \file mpmc_queue.h
/// Bounded multi-producer/multi-consumer FIFO in the style of Vyukov's
/// array-based queue: one atomic sequence number per cell arbitrates both
/// producers and consumers, so an enqueue/dequeue is a single CAS on the
/// shared head/tail counter plus cell-local acquire/release traffic — no
/// locks, no spinning on a global mutex (cf. the relaxed concurrent FIFOs
/// of Saalvage/block_based_queue, whose per-window bitsets play the role our
/// per-cell sequence numbers play here). FIFO is per-producer; the serve
/// layer never relies on cross-thread ordering (results go to preassigned
/// slots and are merged in index order), which is what makes the relaxation
/// acceptable.
///
/// TryPush/TryPop fail (return false) on a full/empty queue instead of
/// blocking; callers decide the policy (the executor runs tasks inline when
/// the queue is full, and sleeps on a condition variable when it is empty).

namespace phom::serve {

/// Destructive-interference distance. Pinned to 64 rather than
/// std::hardware_destructive_interference_size: the latter is an
/// ABI-unstable compile-time guess (GCC warns on its use in headers), and
/// 64 is the actual line size on every platform this library targets.
inline constexpr size_t kCacheLine = 64;

template <class T>
class MpmcQueue {
 public:
  /// Capacity is rounded up to a power of two so the cell index is a mask
  /// instead of a modulo. The minimum is 2: min_capacity values of 0 and 1
  /// both yield a 2-cell queue, and capacity() always reports the ROUNDED
  /// capacity (what TryPush can actually hold), never the requested one.
  /// Requests above 2^31 cells are rejected with a PHOM_CHECK: the doubling
  /// loop would overflow past the top power of two (cap << 1 wraps to 0 and
  /// the loop never terminates), and an allocation that large could not
  /// succeed anyway.
  explicit MpmcQueue(size_t min_capacity) {
    PHOM_CHECK_MSG(min_capacity <= (size_t{1} << 31),
                   "MpmcQueue capacity request too large: " << min_capacity);
    size_t cap = 2;
    while (cap < min_capacity) cap <<= 1;
    mask_ = cap - 1;
    cells_ = std::make_unique<Cell[]>(cap);
    for (size_t i = 0; i < cap; ++i) {
      cells_[i].sequence.store(i, std::memory_order_relaxed);
    }
    head_.store(0, std::memory_order_relaxed);
    tail_.store(0, std::memory_order_relaxed);
  }

  MpmcQueue(const MpmcQueue&) = delete;
  MpmcQueue& operator=(const MpmcQueue&) = delete;

  size_t capacity() const { return mask_ + 1; }

  /// False when the queue is full.
  bool TryPush(T value) { return TryPushMove(value); }

  /// As TryPush, but `value` is consumed ONLY on success — on a full queue
  /// it is left intact so the caller can retry elsewhere (this is what lets
  /// RelaxedBlockQueue probe blocks without losing the payload).
  bool TryPushMove(T& value) {
    Cell* cell;
    size_t pos = tail_.load(std::memory_order_relaxed);
    for (;;) {
      cell = &cells_[pos & mask_];
      size_t seq = cell->sequence.load(std::memory_order_acquire);
      intptr_t dif = static_cast<intptr_t>(seq) - static_cast<intptr_t>(pos);
      if (dif == 0) {
        if (tail_.compare_exchange_weak(pos, pos + 1,
                                        std::memory_order_relaxed)) {
          break;
        }
      } else if (dif < 0) {
        return false;  // full: the cell still holds an unconsumed value
      } else {
        pos = tail_.load(std::memory_order_relaxed);
      }
    }
    cell->value = std::move(value);
    cell->sequence.store(pos + 1, std::memory_order_release);
    return true;
  }

  /// False when the queue is empty.
  bool TryPop(T* out) {
    Cell* cell;
    size_t pos = head_.load(std::memory_order_relaxed);
    for (;;) {
      cell = &cells_[pos & mask_];
      size_t seq = cell->sequence.load(std::memory_order_acquire);
      intptr_t dif =
          static_cast<intptr_t>(seq) - static_cast<intptr_t>(pos + 1);
      if (dif == 0) {
        if (head_.compare_exchange_weak(pos, pos + 1,
                                        std::memory_order_relaxed)) {
          break;
        }
      } else if (dif < 0) {
        return false;  // empty: no producer has filled this cell yet
      } else {
        pos = head_.load(std::memory_order_relaxed);
      }
    }
    *out = std::move(cell->value);
    cell->sequence.store(pos + mask_ + 1, std::memory_order_release);
    return true;
  }

 private:
  struct Cell {
    std::atomic<size_t> sequence;
    T value;
  };

  std::unique_ptr<Cell[]> cells_;
  size_t mask_ = 0;
  alignas(kCacheLine) std::atomic<size_t> tail_;  ///< next enqueue position
  alignas(kCacheLine) std::atomic<size_t> head_;  ///< next dequeue position
};

}  // namespace phom::serve
