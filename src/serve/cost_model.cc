#include "src/serve/cost_model.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <tuple>
#include <utility>
#include <vector>

#include "src/core/engine.h"
#include "src/lifted/plan.h"

namespace phom::serve {

namespace {

/// Engines whose cost is exponential in the uncertain edge count regardless
/// of the instance class (they enumerate worlds / matches).
bool IsEnumerationEngine(std::string_view engine) {
  return engine == "fallback" || engine == "match-lineage";
}

std::chrono::nanoseconds ClampNonNegative(double ns) {
  if (!(ns > 0.0)) return std::chrono::nanoseconds(0);
  const double cap = 9.0e18;  // stay clear of int64 overflow
  return std::chrono::nanoseconds(
      static_cast<int64_t>(std::min(ns, cap)));
}

}  // namespace

uint32_t UncertainEdgeBucket(size_t uncertain_edges) {
  if (uncertain_edges == 0) return 0;
  return static_cast<uint32_t>(
      std::bit_width(static_cast<uint64_t>(uncertain_edges)));
}

std::chrono::nanoseconds PriorComponentCost(std::string_view engine,
                                            GraphClass component_class,
                                            size_t uncertain_edges) {
  // Magnitudes from BENCH_baseline.json: the 2^20-world hard-cell
  // enumeration runs ~2.3 s (~2.2 µs per world); small tractable DP solves
  // land between ~20 µs and a few ms, growing roughly linearly with the
  // uncertain edge count.
  const bool exponential = IsEnumerationEngine(engine) ||
                           component_class == GraphClass::kConnected ||
                           component_class == GraphClass::kGeneral;
  const uint64_t u = static_cast<uint64_t>(uncertain_edges);
  if (exponential) {
    // 2 µs · 2^u, capped at shift 40 (~25 days — already "never fits").
    const uint64_t shift = std::min<uint64_t>(u, 40);
    return std::chrono::nanoseconds(int64_t{2000} << shift);
  }
  return std::chrono::nanoseconds(20'000 + 2'000 * static_cast<int64_t>(u));
}

double PriorEnclosureWidth(std::string_view engine,
                           GraphClass component_class,
                           size_t uncertain_edges) {
  // ~1 ulp of outward rounding per interval operation near answers of order
  // 1 (4e-16 ≈ 2 ulp at 1.0 — the histogram mode on the bench workloads),
  // times an operation count in the same regimes as PriorComponentCost:
  // linear for the tractable DPs, 2^u for enumeration engines/hard classes.
  const bool exponential = IsEnumerationEngine(engine) ||
                           component_class == GraphClass::kConnected ||
                           component_class == GraphClass::kGeneral;
  const uint64_t u = static_cast<uint64_t>(uncertain_edges);
  const double ops =
      exponential ? std::ldexp(1.0, static_cast<int>(std::min<uint64_t>(u, 40)))
                  : static_cast<double>(u + 1);
  return std::min(1.0, ops * 4e-16);
}

CostPrediction CostModelSnapshot::PredictComponent(
    std::string_view engine, GraphClass component_class,
    size_t uncertain_edges) const {
  Key key;
  key.engine = std::string(engine);
  key.component_class = component_class;
  key.bucket = UncertainEdgeBucket(uncertain_edges);
  CostPrediction out;
  auto it = cells_.find(key);
  if (it == cells_.end() || it->second.count == 0) {
    const std::chrono::nanoseconds prior =
        PriorComponentCost(engine, component_class, uncertain_edges);
    out.expected = prior;
    out.optimistic = ClampNonNegative(static_cast<double>(prior.count()) /
                                      options_.prior_band_factor);
    out.pessimistic = ClampNonNegative(static_cast<double>(prior.count()) *
                                       options_.prior_band_factor);
    out.from_prior = true;
    return out;
  }
  const Cell& cell = it->second;
  out.expected = ClampNonNegative(cell.mean_ns);
  out.optimistic =
      ClampNonNegative(cell.mean_ns - options_.band_sigmas * cell.dev_ns);
  out.pessimistic =
      ClampNonNegative(cell.mean_ns + options_.band_sigmas * cell.dev_ns);
  return out;
}

CostPrediction CostModelSnapshot::PredictSolveCost(
    const PreparedProblem& prepared, const ComponentDispatch& plan,
    const SolveOptions& options) const {
  CostPrediction out;
  if (prepared.immediate.has_value() || prepared.context == nullptr) {
    return out;  // decided during preparation: free
  }
  if (plan.components > 0) {
    const std::string_view engine = plan.engine->name();
    if (prepared.ucq != nullptr) {
      // UCQ fan-out: each safe-plan UNIT is one solve task (a full single-CQ
      // solve on its own restricted instance) under the lifted engine —
      // keyed per unit, the same cells RecordComponentSolve trains below.
      for (const lifted::LiftedUnit& unit : prepared.ucq->plan.units) {
        out += PredictComponent(
            engine, unit.prepared.analysis.instance_class.finest,
            unit.prepared.instance().NumUncertainEdges());
      }
      return out;
    }
    // Componentwise fan-out: each component is one solve unit under the
    // plan's engine — exactly the tasks the executor will enqueue.
    const InstanceContext& ctx = *prepared.context;
    for (size_t c = 0; c < plan.components; ++c) {
      out += PredictComponent(engine, ctx.component_classes[c].finest,
                              ctx.components[c].graph.NumUncertainEdges());
    }
    return out;
  }
  // Whole-problem dispatch: resolve the engine once, the same way
  // SolvePrepared will. Selection errors (typo'd force_engine, inapplicable
  // forced engines) predict zero — the solve path surfaces them identically.
  bool forced = false;
  Result<const Engine*> engine = SelectEngineForProblem(
      EngineRegistry::Global(), prepared, options, &forced);
  if (!engine.ok() || *engine == nullptr) return out;
  return PredictComponent((*engine)->name(),
                          prepared.analysis.instance_class.finest,
                          prepared.instance().NumUncertainEdges());
}

double CostModelSnapshot::PredictEnclosureWidth(std::string_view engine,
                                                GraphClass component_class,
                                                size_t uncertain_edges) const {
  Key key;
  key.engine = std::string(engine);
  key.component_class = component_class;
  key.bucket = UncertainEdgeBucket(uncertain_edges);
  auto it = cells_.find(key);
  if (it != cells_.end() && it->second.width_count > 0) {
    return it->second.width_mean;
  }
  return PriorEnclosureWidth(engine, component_class, uncertain_edges);
}

CostModel::CostModel(CostModelOptions options) : options_(options) {}

void CostModel::RecordComponent(std::string_view engine,
                                GraphClass component_class,
                                size_t uncertain_edges,
                                std::chrono::nanoseconds duration) {
  CostModelSnapshot::Key key;
  key.engine = std::string(engine);
  key.component_class = component_class;
  key.bucket = UncertainEdgeBucket(uncertain_edges);
  Stripe& stripe =
      stripes_[CostModelSnapshot::KeyHash()(key) % kStripes];
  const double x = static_cast<double>(duration.count());
  {
    std::lock_guard<std::mutex> lock(stripe.mu);
    CostModelSnapshot::Cell& cell = stripe.cells[key];
    if (cell.count == 0) {
      cell.mean_ns = x;
      // A deliberately wide first band: one sample says little about the
      // cell's spread.
      cell.dev_ns = x * 0.5;
    } else {
      const double err = x - cell.mean_ns;
      cell.mean_ns += options_.alpha * err;
      cell.dev_ns += options_.alpha * (std::abs(err) - cell.dev_ns);
    }
    ++cell.count;
  }
  version_.fetch_add(1, std::memory_order_release);
}

void CostModel::RecordComponentWidth(std::string_view engine,
                                     GraphClass component_class,
                                     size_t uncertain_edges, double width) {
  // An invalid enclosure (NaN, negative) must not poison the EWMA — the
  // executor's histogram surfaces those loudly; here they are just skipped.
  if (!(width >= 0.0) || !std::isfinite(width)) return;
  CostModelSnapshot::Key key;
  key.engine = std::string(engine);
  key.component_class = component_class;
  key.bucket = UncertainEdgeBucket(uncertain_edges);
  Stripe& stripe = stripes_[CostModelSnapshot::KeyHash()(key) % kStripes];
  {
    std::lock_guard<std::mutex> lock(stripe.mu);
    CostModelSnapshot::Cell& cell = stripe.cells[key];
    if (cell.width_count == 0) {
      cell.width_mean = width;
    } else {
      cell.width_mean += options_.alpha * (width - cell.width_mean);
    }
    ++cell.width_count;
  }
  version_.fetch_add(1, std::memory_order_release);
}

namespace {

/// A width observation worth training on: a successful certified enclosure
/// from the interval backend (degraded statistical brackets and the vacuous
/// plain-double [0, 1] never reach the width EWMA).
bool HasTrainableWidth(const SolveResult& result) {
  return result.numeric == NumericBackend::kIntervalDouble &&
         result.bound.certified && !result.degrade.degraded;
}

}  // namespace

void CostModel::RecordSolve(const PreparedProblem& prepared,
                            const SolveResult& result) {
  // Only clean exact latencies train the model: degraded estimates ran under
  // a truncated budget and immediate answers ran nothing.
  if (result.degrade.degraded || result.stats.engine.empty() ||
      prepared.context == nullptr) {
    return;
  }
  RecordComponent(result.stats.engine,
                  prepared.analysis.instance_class.finest,
                  prepared.instance().NumUncertainEdges(),
                  result.stats.duration);
  if (HasTrainableWidth(result)) {
    RecordComponentWidth(result.stats.engine,
                         prepared.analysis.instance_class.finest,
                         prepared.instance().NumUncertainEdges(),
                         result.bound.hi - result.bound.lo);
  }
}

void CostModel::RecordComponentSolve(const PreparedProblem& prepared,
                                     const ComponentDispatch& plan,
                                     size_t component_index,
                                     const SolveResult& result) {
  if (plan.engine == nullptr || result.degrade.degraded) return;
  if (prepared.ucq != nullptr) {
    // UCQ unit solve: train the same per-unit cell PredictSolveCost reads —
    // the lifted engine on the unit's own restricted instance.
    const auto& units = prepared.ucq->plan.units;
    if (component_index >= units.size()) return;
    const PreparedProblem& unit = units[component_index].prepared;
    if (unit.context == nullptr) return;  // immediate unit: nothing ran
    RecordComponent(plan.engine->name(),
                    unit.analysis.instance_class.finest,
                    unit.instance().NumUncertainEdges(),
                    result.stats.duration);
    if (HasTrainableWidth(result)) {
      RecordComponentWidth(plan.engine->name(),
                           unit.analysis.instance_class.finest,
                           unit.instance().NumUncertainEdges(),
                           result.bound.hi - result.bound.lo);
    }
    return;
  }
  if (prepared.context == nullptr ||
      component_index >= prepared.context->components.size()) {
    return;
  }
  const InstanceContext& ctx = *prepared.context;
  RecordComponent(
      plan.engine->name(), ctx.component_classes[component_index].finest,
      ctx.components[component_index].graph.NumUncertainEdges(),
      result.stats.duration);
  if (HasTrainableWidth(result)) {
    RecordComponentWidth(
        plan.engine->name(), ctx.component_classes[component_index].finest,
        ctx.components[component_index].graph.NumUncertainEdges(),
        result.bound.hi - result.bound.lo);
  }
}

namespace {

/// Shortest exact decimal for a double: %.17g round-trips every finite
/// value through strtod bit-identically, which is what makes
/// export→import→export byte-stable.
std::string ExactDouble(double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  return buf;
}

/// Minimal cursor over the snapshot grammar — exactly the shape
/// ExportSnapshotJson emits, whitespace-tolerant, field order free. Not a
/// general JSON parser: strings carry no escapes (engine and class names
/// never need them), numbers are plain strtod tokens.
struct SnapshotCursor {
  std::string_view text;
  size_t pos = 0;

  void SkipWs() {
    while (pos < text.size() &&
           (text[pos] == ' ' || text[pos] == '\t' || text[pos] == '\n' ||
            text[pos] == '\r')) {
      ++pos;
    }
  }
  bool Consume(char c) {
    SkipWs();
    if (pos >= text.size() || text[pos] != c) return false;
    ++pos;
    return true;
  }
  bool Peek(char c) {
    SkipWs();
    return pos < text.size() && text[pos] == c;
  }
  Result<std::string> ParseString() {
    if (!Consume('"')) {
      return Status::Invalid("cost-model snapshot: expected a string");
    }
    const size_t start = pos;
    while (pos < text.size() && text[pos] != '"') {
      if (text[pos] == '\\') {
        return Status::Invalid(
            "cost-model snapshot: string escapes are not supported");
      }
      ++pos;
    }
    if (pos >= text.size()) {
      return Status::Invalid("cost-model snapshot: unterminated string");
    }
    std::string out(text.substr(start, pos - start));
    ++pos;  // closing quote
    return out;
  }
  Result<double> ParseNumber() {
    SkipWs();
    const size_t start = pos;
    while (pos < text.size()) {
      const char c = text[pos];
      const bool number_char = (c >= '0' && c <= '9') || c == '+' ||
                               c == '-' || c == '.' || c == 'e' || c == 'E';
      if (!number_char) break;
      ++pos;
    }
    if (pos == start) {
      return Status::Invalid("cost-model snapshot: expected a number");
    }
    const std::string token(text.substr(start, pos - start));
    char* parse_end = nullptr;
    const double value = std::strtod(token.c_str(), &parse_end);
    if (parse_end != token.c_str() + token.size() || !std::isfinite(value)) {
      return Status::Invalid("cost-model snapshot: malformed number '" +
                             token + "'");
    }
    return value;
  }
};

/// One parsed snapshot record, kept free of CostModelSnapshot's private
/// key/cell types so the parser can live outside the class.
struct ParsedCell {
  std::string engine;
  GraphClass component_class = GraphClass::kGeneral;
  uint32_t bucket = 0;
  double mean_ns = 0.0;
  double dev_ns = 0.0;
  uint64_t count = 0;
  double width_mean = 0.0;
  uint64_t width_count = 0;
};

Result<std::vector<ParsedCell>> ParseSnapshotJson(std::string_view json) {
  SnapshotCursor c{json};
  if (!c.Consume('{')) {
    return Status::Invalid("cost-model snapshot: expected a JSON object");
  }
  bool schema_seen = false;
  bool cells_seen = false;
  std::vector<ParsedCell> out;
  while (!c.Peek('}')) {
    PHOM_ASSIGN_OR_RETURN(std::string field, c.ParseString());
    if (!c.Consume(':')) {
      return Status::Invalid("cost-model snapshot: expected ':' after '" +
                             field + "'");
    }
    if (field == "schema") {
      PHOM_ASSIGN_OR_RETURN(double version, c.ParseNumber());
      if (version != 1.0) {
        return Status::Invalid("cost-model snapshot: unknown schema version " +
                               ExactDouble(version));
      }
      schema_seen = true;
    } else if (field == "cells") {
      cells_seen = true;
      if (!c.Consume('[')) {
        return Status::Invalid("cost-model snapshot: 'cells' must be a list");
      }
      while (!c.Peek(']')) {
        if (!c.Consume('{')) {
          return Status::Invalid(
              "cost-model snapshot: each cell must be an object");
        }
        ParsedCell cell;
        bool have_engine = false, have_class = false, have_bucket = false,
             have_mean = false, have_dev = false, have_count = false;
        while (!c.Peek('}')) {
          PHOM_ASSIGN_OR_RETURN(std::string name, c.ParseString());
          if (!c.Consume(':')) {
            return Status::Invalid(
                "cost-model snapshot: expected ':' in cell field '" + name +
                "'");
          }
          if (name == "engine") {
            PHOM_ASSIGN_OR_RETURN(cell.engine, c.ParseString());
            have_engine = true;
          } else if (name == "class") {
            PHOM_ASSIGN_OR_RETURN(std::string class_name, c.ParseString());
            PHOM_ASSIGN_OR_RETURN(cell.component_class,
                                  ParseGraphClass(class_name));
            have_class = true;
          } else if (name == "bucket") {
            PHOM_ASSIGN_OR_RETURN(double bucket, c.ParseNumber());
            if (bucket < 0.0 || bucket > 64.0 ||
                bucket != std::floor(bucket)) {
              return Status::Invalid("cost-model snapshot: bad bucket " +
                                     ExactDouble(bucket));
            }
            cell.bucket = static_cast<uint32_t>(bucket);
            have_bucket = true;
          } else if (name == "mean_ns") {
            PHOM_ASSIGN_OR_RETURN(cell.mean_ns, c.ParseNumber());
            have_mean = true;
          } else if (name == "dev_ns") {
            PHOM_ASSIGN_OR_RETURN(cell.dev_ns, c.ParseNumber());
            have_dev = true;
          } else if (name == "count") {
            PHOM_ASSIGN_OR_RETURN(double count, c.ParseNumber());
            if (count < 0.0 || count != std::floor(count)) {
              return Status::Invalid("cost-model snapshot: bad count " +
                                     ExactDouble(count));
            }
            cell.count = static_cast<uint64_t>(count);
            have_count = true;
          } else if (name == "width_mean") {
            // OPTIONAL (with width_count below): snapshots persisted before
            // the width EWMA existed import cleanly with a cold width signal.
            PHOM_ASSIGN_OR_RETURN(cell.width_mean, c.ParseNumber());
          } else if (name == "width_count") {
            PHOM_ASSIGN_OR_RETURN(double wcount, c.ParseNumber());
            if (wcount < 0.0 || wcount != std::floor(wcount)) {
              return Status::Invalid("cost-model snapshot: bad width_count " +
                                     ExactDouble(wcount));
            }
            cell.width_count = static_cast<uint64_t>(wcount);
          } else {
            return Status::Invalid("cost-model snapshot: unknown cell field '" +
                                   name + "'");
          }
          if (!c.Consume(',')) break;
        }
        if (!c.Consume('}')) {
          return Status::Invalid("cost-model snapshot: unterminated cell");
        }
        if (!(have_engine && have_class && have_bucket && have_mean &&
              have_dev && have_count)) {
          return Status::Invalid("cost-model snapshot: incomplete cell");
        }
        out.push_back(std::move(cell));
        if (!c.Consume(',')) break;
      }
      if (!c.Consume(']')) {
        return Status::Invalid("cost-model snapshot: unterminated cell list");
      }
    } else {
      return Status::Invalid("cost-model snapshot: unknown field '" + field +
                             "'");
    }
    if (!c.Consume(',')) break;
  }
  if (!c.Consume('}')) {
    return Status::Invalid("cost-model snapshot: unterminated object");
  }
  c.SkipWs();
  if (c.pos != json.size()) {
    return Status::Invalid("cost-model snapshot: trailing characters");
  }
  if (!schema_seen || !cells_seen) {
    return Status::Invalid(
        "cost-model snapshot: missing 'schema' or 'cells' field");
  }
  return out;
}

}  // namespace

std::string CostModel::ExportSnapshotJson() const {
  const std::shared_ptr<const CostModelSnapshot> snap = Snapshot();
  std::vector<std::pair<CostModelSnapshot::Key, CostModelSnapshot::Cell>>
      cells(snap->cells_.begin(), snap->cells_.end());
  // Sorted key order: equal models export byte-identical strings (the
  // unordered_map iteration order must not leak into persisted bytes).
  std::sort(cells.begin(), cells.end(), [](const auto& a, const auto& b) {
    return std::tie(a.first.engine, a.first.component_class, a.first.bucket) <
           std::tie(b.first.engine, b.first.component_class, b.first.bucket);
  });
  std::string out = "{\"schema\":1,\"cells\":[";
  bool first = true;
  for (const auto& [key, cell] : cells) {
    if (!first) out += ',';
    first = false;
    out += "\n{\"engine\":\"" + key.engine + "\",\"class\":\"" +
           ToString(key.component_class) +
           "\",\"bucket\":" + std::to_string(key.bucket) +
           ",\"mean_ns\":" + ExactDouble(cell.mean_ns) +
           ",\"dev_ns\":" + ExactDouble(cell.dev_ns) +
           ",\"count\":" + std::to_string(cell.count) +
           ",\"width_mean\":" + ExactDouble(cell.width_mean) +
           ",\"width_count\":" + std::to_string(cell.width_count) + "}";
  }
  out += "]}\n";
  return out;
}

Result<size_t> CostModel::ImportSnapshotJson(std::string_view json,
                                             double decay_toward_prior) {
  if (!(decay_toward_prior >= 0.0 && decay_toward_prior <= 1.0)) {
    return Status::Invalid("decay_toward_prior must be in [0, 1]");
  }
  // Parse EVERYTHING before installing anything: malformed input must not
  // leave the model half-imported.
  PHOM_ASSIGN_OR_RETURN(std::vector<ParsedCell> cells,
                        ParseSnapshotJson(json));
  const double d = decay_toward_prior;
  for (ParsedCell& parsed : cells) {
    CostModelSnapshot::Key key;
    key.engine = parsed.engine;
    key.component_class = parsed.component_class;
    key.bucket = parsed.bucket;
    CostModelSnapshot::Cell cell;
    cell.mean_ns = parsed.mean_ns;
    cell.dev_ns = parsed.dev_ns;
    cell.count = parsed.count;
    cell.width_mean = parsed.width_mean;
    cell.width_count = parsed.width_count;
    if (d > 0.0) {
      // Blend toward the cell's own cold-start prior, evaluated at the
      // bucket's smallest member count (bucket b covers [2^(b-1), 2^b - 1]).
      const size_t representative =
          key.bucket == 0 ? 0 : size_t{1} << (key.bucket - 1);
      const double prior = static_cast<double>(
          PriorComponentCost(key.engine, key.component_class, representative)
              .count());
      cell.mean_ns = (1.0 - d) * cell.mean_ns + d * prior;
      // The prior's deviation convention matches RecordComponent's wide
      // first band: half the mean.
      cell.dev_ns = (1.0 - d) * cell.dev_ns + d * 0.5 * prior;
      cell.count = std::max<uint64_t>(
          1, static_cast<uint64_t>(std::llround(
                 (1.0 - d) * static_cast<double>(cell.count))));
    }
    Stripe& stripe = stripes_[CostModelSnapshot::KeyHash()(key) % kStripes];
    std::lock_guard<std::mutex> lock(stripe.mu);
    stripe.cells[key] = cell;
  }
  version_.fetch_add(1, std::memory_order_release);
  return cells.size();
}

std::shared_ptr<const CostModelSnapshot> CostModel::Snapshot() const {
  const uint64_t version = version_.load(std::memory_order_acquire);
  {
    std::lock_guard<std::mutex> lock(snapshot_mu_);
    if (snapshot_ != nullptr && snapshot_->version_ == version) {
      return snapshot_;
    }
  }
  // Rebuild outside the cache lock (updates proceed concurrently; a racing
  // update just dirties the version so the NEXT Snapshot rebuilds again).
  auto snapshot = std::make_shared<CostModelSnapshot>();
  snapshot->options_ = options_;
  snapshot->version_ = version;
  for (const Stripe& stripe : stripes_) {
    std::lock_guard<std::mutex> lock(stripe.mu);
    for (const auto& [key, cell] : stripe.cells) {
      snapshot->cells_.emplace(key, cell);
    }
  }
  std::lock_guard<std::mutex> lock(snapshot_mu_);
  if (snapshot_ == nullptr || snapshot_->version_ < snapshot->version_) {
    snapshot_ = snapshot;
  }
  return snapshot_;
}

AdmissionDecision DecideAdmission(
    const CostModelSnapshot& snapshot, const PreparedProblem& prepared,
    const ComponentDispatch& plan, const SolveOptions& options,
    std::optional<std::chrono::nanoseconds> remaining_budget) {
  AdmissionDecision decision;
  decision.predicted = snapshot.PredictSolveCost(prepared, plan, options);
  if (options.numeric == NumericBackend::kIntervalDouble &&
      options.escalate.mode == EscalationMode::kOnWideResult) {
    // Price the potential exact re-run (see the header): the re-run solves
    // the same cells under the same engine, so its cost is the prediction
    // itself — doubled expected/pessimistic edges, optimistic untouched
    // (best case the enclosure is tight and no re-run happens).
    const CostPrediction rerun = decision.predicted;
    decision.predicted.expected += rerun.expected;
    decision.predicted.pessimistic += rerun.pessimistic;
  }
  if (!remaining_budget.has_value()) return decision;
  if (options.degrade.mode == DegradeMode::kOnDeadlineRisk &&
      decision.predicted.expected > std::chrono::nanoseconds(0) &&
      decision.predicted.optimistic > *remaining_budget) {
    decision.action = AdmissionAction::kDegradeProactively;
  }
  return decision;
}

std::string SelectTightestEngine(const CostModelSnapshot& snapshot,
                                 const PreparedProblem& prepared,
                                 const SolveOptions& options) {
  // Only a plain interval-backend request with free engine choice: forced
  // engines/algorithms are the caller's ablation contract, UCQ problems are
  // the lifted engine's (its plan already fixed per-unit routing), and
  // immediate answers run nothing.
  if (options.numeric != NumericBackend::kIntervalDouble ||
      !options.force_engine.empty() || options.force_algorithm.has_value() ||
      prepared.immediate.has_value() || prepared.context == nullptr ||
      prepared.ucq != nullptr) {
    return "";
  }
  bool forced = false;
  const Result<const Engine*> auto_engine = SelectEngineForProblem(
      EngineRegistry::Global(), prepared, options, &forced);
  if (!auto_engine.ok() || *auto_engine == nullptr) return "";
  // Predicted whole-problem width under one engine: summed per component —
  // the Lemma 3.7 combine multiplies complements, and to first order the
  // component widths ADD through a product of near-unit intervals.
  const InstanceContext& ctx = *prepared.context;
  const auto predict_width = [&](const Engine& engine) {
    if (engine.componentwise() && ctx.components.size() > 1) {
      double sum = 0.0;
      for (size_t c = 0; c < ctx.components.size(); ++c) {
        sum += snapshot.PredictEnclosureWidth(
            engine.name(), ctx.component_classes[c].finest,
            ctx.components[c].graph.NumUncertainEdges());
      }
      return sum;
    }
    return snapshot.PredictEnclosureWidth(
        engine.name(), prepared.analysis.instance_class.finest,
        prepared.instance().NumUncertainEdges());
  };
  const Engine* best = *auto_engine;
  double best_width = predict_width(**auto_engine);
  for (const Engine* candidate : EngineRegistry::Global().engines()) {
    if (candidate == *auto_engine) continue;
    // Exact applicable engines only: estimators (monte-carlo) answer with a
    // statistical bracket, not an enclosure, and an engine that does not
    // Apply may answer wrongly. Strict improvement — ties keep auto
    // dispatch, so a cold model (equal priors per regime) changes nothing.
    if (!candidate->exact() || !candidate->Applies(prepared.analysis)) {
      continue;
    }
    const double width = predict_width(*candidate);
    if (width < best_width) {
      best = candidate;
      best_width = width;
    }
  }
  if (best == *auto_engine) return "";
  return std::string(best->name());
}

}  // namespace phom::serve
