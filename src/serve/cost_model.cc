#include "src/serve/cost_model.h"

#include <algorithm>
#include <bit>
#include <cmath>

#include "src/core/engine.h"

namespace phom::serve {

namespace {

/// Engines whose cost is exponential in the uncertain edge count regardless
/// of the instance class (they enumerate worlds / matches).
bool IsEnumerationEngine(std::string_view engine) {
  return engine == "fallback" || engine == "match-lineage";
}

std::chrono::nanoseconds ClampNonNegative(double ns) {
  if (!(ns > 0.0)) return std::chrono::nanoseconds(0);
  const double cap = 9.0e18;  // stay clear of int64 overflow
  return std::chrono::nanoseconds(
      static_cast<int64_t>(std::min(ns, cap)));
}

}  // namespace

uint32_t UncertainEdgeBucket(size_t uncertain_edges) {
  if (uncertain_edges == 0) return 0;
  return static_cast<uint32_t>(
      std::bit_width(static_cast<uint64_t>(uncertain_edges)));
}

std::chrono::nanoseconds PriorComponentCost(std::string_view engine,
                                            GraphClass component_class,
                                            size_t uncertain_edges) {
  // Magnitudes from BENCH_baseline.json: the 2^20-world hard-cell
  // enumeration runs ~2.3 s (~2.2 µs per world); small tractable DP solves
  // land between ~20 µs and a few ms, growing roughly linearly with the
  // uncertain edge count.
  const bool exponential = IsEnumerationEngine(engine) ||
                           component_class == GraphClass::kConnected ||
                           component_class == GraphClass::kGeneral;
  const uint64_t u = static_cast<uint64_t>(uncertain_edges);
  if (exponential) {
    // 2 µs · 2^u, capped at shift 40 (~25 days — already "never fits").
    const uint64_t shift = std::min<uint64_t>(u, 40);
    return std::chrono::nanoseconds(int64_t{2000} << shift);
  }
  return std::chrono::nanoseconds(20'000 + 2'000 * static_cast<int64_t>(u));
}

CostPrediction CostModelSnapshot::PredictComponent(
    std::string_view engine, GraphClass component_class,
    size_t uncertain_edges) const {
  Key key;
  key.engine = std::string(engine);
  key.component_class = component_class;
  key.bucket = UncertainEdgeBucket(uncertain_edges);
  CostPrediction out;
  auto it = cells_.find(key);
  if (it == cells_.end() || it->second.count == 0) {
    const std::chrono::nanoseconds prior =
        PriorComponentCost(engine, component_class, uncertain_edges);
    out.expected = prior;
    out.optimistic = ClampNonNegative(static_cast<double>(prior.count()) /
                                      options_.prior_band_factor);
    out.pessimistic = ClampNonNegative(static_cast<double>(prior.count()) *
                                       options_.prior_band_factor);
    out.from_prior = true;
    return out;
  }
  const Cell& cell = it->second;
  out.expected = ClampNonNegative(cell.mean_ns);
  out.optimistic =
      ClampNonNegative(cell.mean_ns - options_.band_sigmas * cell.dev_ns);
  out.pessimistic =
      ClampNonNegative(cell.mean_ns + options_.band_sigmas * cell.dev_ns);
  return out;
}

CostPrediction CostModelSnapshot::PredictSolveCost(
    const PreparedProblem& prepared, const ComponentDispatch& plan,
    const SolveOptions& options) const {
  CostPrediction out;
  if (prepared.immediate.has_value() || prepared.context == nullptr) {
    return out;  // decided during preparation: free
  }
  if (plan.components > 0) {
    // Componentwise fan-out: each component is one solve unit under the
    // plan's engine — exactly the tasks the executor will enqueue.
    const InstanceContext& ctx = *prepared.context;
    const std::string_view engine = plan.engine->name();
    for (size_t c = 0; c < plan.components; ++c) {
      out += PredictComponent(engine, ctx.component_classes[c].finest,
                              ctx.components[c].graph.NumUncertainEdges());
    }
    return out;
  }
  // Whole-problem dispatch: resolve the engine once, the same way
  // SolvePrepared will. Selection errors (typo'd force_engine, inapplicable
  // forced engines) predict zero — the solve path surfaces them identically.
  bool forced = false;
  Result<const Engine*> engine = SelectEngineForProblem(
      EngineRegistry::Global(), prepared, options, &forced);
  if (!engine.ok() || *engine == nullptr) return out;
  return PredictComponent((*engine)->name(),
                          prepared.analysis.instance_class.finest,
                          prepared.instance().NumUncertainEdges());
}

CostModel::CostModel(CostModelOptions options) : options_(options) {}

void CostModel::RecordComponent(std::string_view engine,
                                GraphClass component_class,
                                size_t uncertain_edges,
                                std::chrono::nanoseconds duration) {
  CostModelSnapshot::Key key;
  key.engine = std::string(engine);
  key.component_class = component_class;
  key.bucket = UncertainEdgeBucket(uncertain_edges);
  Stripe& stripe =
      stripes_[CostModelSnapshot::KeyHash()(key) % kStripes];
  const double x = static_cast<double>(duration.count());
  {
    std::lock_guard<std::mutex> lock(stripe.mu);
    CostModelSnapshot::Cell& cell = stripe.cells[key];
    if (cell.count == 0) {
      cell.mean_ns = x;
      // A deliberately wide first band: one sample says little about the
      // cell's spread.
      cell.dev_ns = x * 0.5;
    } else {
      const double err = x - cell.mean_ns;
      cell.mean_ns += options_.alpha * err;
      cell.dev_ns += options_.alpha * (std::abs(err) - cell.dev_ns);
    }
    ++cell.count;
  }
  version_.fetch_add(1, std::memory_order_release);
}

void CostModel::RecordSolve(const PreparedProblem& prepared,
                            const SolveResult& result) {
  // Only clean exact latencies train the model: degraded estimates ran under
  // a truncated budget and immediate answers ran nothing.
  if (result.degrade.degraded || result.stats.engine.empty() ||
      prepared.context == nullptr) {
    return;
  }
  RecordComponent(result.stats.engine,
                  prepared.analysis.instance_class.finest,
                  prepared.instance().NumUncertainEdges(),
                  result.stats.duration);
}

void CostModel::RecordComponentSolve(const PreparedProblem& prepared,
                                     const ComponentDispatch& plan,
                                     size_t component_index,
                                     const SolveResult& result) {
  if (plan.engine == nullptr || prepared.context == nullptr ||
      component_index >= prepared.context->components.size() ||
      result.degrade.degraded) {
    return;
  }
  const InstanceContext& ctx = *prepared.context;
  RecordComponent(
      plan.engine->name(), ctx.component_classes[component_index].finest,
      ctx.components[component_index].graph.NumUncertainEdges(),
      result.stats.duration);
}

std::shared_ptr<const CostModelSnapshot> CostModel::Snapshot() const {
  const uint64_t version = version_.load(std::memory_order_acquire);
  {
    std::lock_guard<std::mutex> lock(snapshot_mu_);
    if (snapshot_ != nullptr && snapshot_->version_ == version) {
      return snapshot_;
    }
  }
  // Rebuild outside the cache lock (updates proceed concurrently; a racing
  // update just dirties the version so the NEXT Snapshot rebuilds again).
  auto snapshot = std::make_shared<CostModelSnapshot>();
  snapshot->options_ = options_;
  snapshot->version_ = version;
  for (const Stripe& stripe : stripes_) {
    std::lock_guard<std::mutex> lock(stripe.mu);
    for (const auto& [key, cell] : stripe.cells) {
      snapshot->cells_.emplace(key, cell);
    }
  }
  std::lock_guard<std::mutex> lock(snapshot_mu_);
  if (snapshot_ == nullptr || snapshot_->version_ < snapshot->version_) {
    snapshot_ = snapshot;
  }
  return snapshot_;
}

AdmissionDecision DecideAdmission(
    const CostModelSnapshot& snapshot, const PreparedProblem& prepared,
    const ComponentDispatch& plan, const SolveOptions& options,
    std::optional<std::chrono::nanoseconds> remaining_budget) {
  AdmissionDecision decision;
  decision.predicted = snapshot.PredictSolveCost(prepared, plan, options);
  if (!remaining_budget.has_value()) return decision;
  if (options.degrade.mode == DegradeMode::kOnDeadlineRisk &&
      decision.predicted.expected > std::chrono::nanoseconds(0) &&
      decision.predicted.optimistic > *remaining_budget) {
    decision.action = AdmissionAction::kDegradeProactively;
  }
  return decision;
}

}  // namespace phom::serve
