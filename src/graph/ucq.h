#pragma once

#include <cstdint>
#include <vector>

#include "src/graph/digraph.h"
#include "src/util/result.h"

/// \file ucq.h
/// Unions of conjunctive queries over the paper's binary signature: a UCQ is
/// a disjunction Q_1 ∨ ... ∨ Q_k where each disjunct Q_j is a query graph
/// (one Boolean CQ, paper §2). PHom extends pointwise:
///   Pr(Q ⇝ H) = Pr(∃j: Q_j has a homomorphism into the sampled world).
/// This is the front door for the Dalvi–Suciu safe-plan workload compiled by
/// src/lifted/: disjuncts over disjoint label sets have edge-disjoint
/// lineages (hence independent events), and entangled disjuncts are handled
/// by inclusion–exclusion over disjunct subsets, where the conjunction
/// Q_i ∧ Q_j of Boolean CQs is simply the disjoint union of their pattern
/// graphs.

namespace phom {

struct Ucq {
  /// The disjuncts. An empty union is the constant-false query (Pr = 0);
  /// a single disjunct is an ordinary CQ.
  std::vector<DiGraph> disjuncts;

  /// Union of the disjuncts' used label sets, sorted ascending.
  std::vector<LabelId> UsedLabels() const;
};

/// Logical normalization:
///   1. drops syntactically duplicate disjuncts (same canonical encoding),
///   2. drops subsumed disjuncts: if some homomorphism Q_i → Q_j exists
///      (i ≠ j), every world matching Q_j also matches Q_i, so Q_j is
///      redundant in the union and is removed (equivalent disjuncts keep the
///      canonically-least representative),
///   3. sorts the surviving disjuncts by canonical encoding, so equal unions
///      normalize to identical objects (stable fingerprints).
/// Subsumption checks that exhaust their backtracking budget soundly keep
/// both disjuncts. A UCQ that normalizes to ONE disjunct is solved on the
/// single-CQ path bit-identically to a plain CQ solve.
Ucq NormalizeUcq(const Ucq& ucq);

/// Canonical fingerprint of a NORMALIZED UCQ (order-sensitive; NormalizeUcq
/// sorts disjuncts canonically, so normalize first). Used to key per-query
/// memoization alongside the instance fingerprint of the context LRU.
uint64_t UcqFingerprint(const Ucq& ucq);

/// Canonical per-disjunct encoding key (num_edges, num_vertices, edge
/// triples) — the sort order used by NormalizeUcq, exposed for tests.
std::vector<uint64_t> CanonicalDisjunctKey(const DiGraph& g);

}  // namespace phom
