#include "src/graph/generators.h"

#include <algorithm>
#include <cmath>

#include "src/graph/builders.h"

namespace phom {

namespace {
LabelId RandomLabel(Rng* rng, size_t num_labels) {
  PHOM_CHECK(num_labels >= 1);
  return static_cast<LabelId>(rng->UniformInt(0, num_labels - 1));
}
}  // namespace

DiGraph RandomOneWayPath(Rng* rng, size_t edges, size_t num_labels) {
  std::vector<LabelId> labels(edges);
  for (LabelId& l : labels) l = RandomLabel(rng, num_labels);
  return MakeLabeledPath(labels);
}

DiGraph RandomTwoWayPath(Rng* rng, size_t edges, size_t num_labels) {
  std::vector<TwoWayStep> steps(edges);
  for (TwoWayStep& s : steps) {
    s.label = RandomLabel(rng, num_labels);
    s.forward = rng->Bernoulli(0.5);
  }
  return MakeTwoWayPath(steps);
}

DiGraph RandomDownwardTree(Rng* rng, size_t vertices, size_t num_labels,
                           double depth_bias) {
  PHOM_CHECK(vertices >= 1);
  std::vector<VertexId> parents;
  std::vector<LabelId> labels;
  parents.reserve(vertices - 1);
  for (size_t i = 1; i < vertices; ++i) {
    // Bias toward recent vertices for deeper trees: pick an offset from the
    // back with geometric-ish decay.
    VertexId parent;
    if (depth_bias <= 0.0) {
      parent = static_cast<VertexId>(rng->UniformInt(0, i - 1));
    } else {
      size_t back = 0;
      while (back + 1 < i && rng->Bernoulli(depth_bias)) ++back;
      parent = static_cast<VertexId>(i - 1 - back);
    }
    parents.push_back(parent);
    labels.push_back(RandomLabel(rng, num_labels));
  }
  return MakeDownwardTree(parents, labels);
}

DiGraph RandomPolytree(Rng* rng, size_t vertices, size_t num_labels) {
  PHOM_CHECK(vertices >= 1);
  DiGraph g(vertices);
  for (size_t i = 1; i < vertices; ++i) {
    VertexId other = static_cast<VertexId>(rng->UniformInt(0, i - 1));
    VertexId self = static_cast<VertexId>(i);
    LabelId label = RandomLabel(rng, num_labels);
    if (rng->Bernoulli(0.5)) {
      AddEdgeOrDie(&g, other, self, label);
    } else {
      AddEdgeOrDie(&g, self, other, label);
    }
  }
  return g;
}

DiGraph RandomConnected(Rng* rng, size_t vertices, size_t extra_edges,
                        size_t num_labels) {
  DiGraph g = RandomPolytree(rng, vertices, num_labels);
  size_t attempts = 0;
  size_t added = 0;
  while (added < extra_edges && attempts < 50 * extra_edges + 100) {
    ++attempts;
    VertexId a = static_cast<VertexId>(rng->UniformInt(0, vertices - 1));
    VertexId b = static_cast<VertexId>(rng->UniformInt(0, vertices - 1));
    if (a == b || g.FindEdge(a, b).has_value()) continue;
    AddEdgeOrDie(&g, a, b, RandomLabel(rng, num_labels));
    ++added;
  }
  return g;
}

DiGraph RandomDisjointUnion(
    Rng* rng, size_t parts,
    const std::function<DiGraph(Rng*)>& part_generator) {
  std::vector<DiGraph> graphs;
  graphs.reserve(parts);
  for (size_t i = 0; i < parts; ++i) graphs.push_back(part_generator(rng));
  return DisjointUnion(graphs);
}

DiGraph RandomGradedDag(Rng* rng, size_t vertices, size_t levels,
                        double edge_prob, size_t num_labels) {
  PHOM_CHECK(levels >= 1);
  DiGraph g(vertices);
  std::vector<size_t> level(vertices);
  for (size_t v = 0; v < vertices; ++v) {
    level[v] = static_cast<size_t>(rng->UniformInt(0, levels - 1));
  }
  for (size_t u = 0; u < vertices; ++u) {
    for (size_t v = 0; v < vertices; ++v) {
      if (level[u] != level[v] + 1) continue;
      if (!rng->Bernoulli(edge_prob)) continue;
      AddEdgeOrDie(&g, static_cast<VertexId>(u), static_cast<VertexId>(v),
                   RandomLabel(rng, num_labels));
    }
  }
  return g;
}

DiGraph RandomQueryOfClass(Rng* rng, GraphClass cls, size_t size,
                           size_t num_labels) {
  const size_t vertices = std::max<size_t>(size, 1);
  switch (cls) {
    case GraphClass::kOneWayPath:
      return RandomOneWayPath(rng, size, num_labels);
    case GraphClass::kTwoWayPath:
      return RandomTwoWayPath(rng, size, num_labels);
    case GraphClass::kDownwardTree:
      return RandomDownwardTree(rng, vertices, num_labels);
    case GraphClass::kPolytree:
      return RandomPolytree(rng, vertices, num_labels);
    case GraphClass::kConnected:
    case GraphClass::kGeneral:
      return RandomConnected(rng, vertices, size / 2, num_labels);
  }
  PHOM_CHECK_MSG(false, "RandomQueryOfClass: unknown GraphClass");
  return DiGraph(0);
}

Ucq RandomUcq(Rng* rng, size_t disjuncts,
              const std::vector<GraphClass>& classes, size_t size,
              size_t num_labels) {
  PHOM_CHECK_MSG(!classes.empty(), "RandomUcq needs at least one class");
  Ucq ucq;
  ucq.disjuncts.reserve(disjuncts);
  for (size_t i = 0; i < disjuncts; ++i) {
    const GraphClass cls = classes[rng->UniformInt(0, classes.size() - 1)];
    ucq.disjuncts.push_back(RandomQueryOfClass(rng, cls, size, num_labels));
  }
  return ucq;
}

ProbGraph AttachRandomProbabilities(Rng* rng, DiGraph g, int log2_den,
                                    double certain_fraction) {
  std::vector<Rational> probs;
  probs.reserve(g.num_edges());
  for (size_t e = 0; e < g.num_edges(); ++e) {
    if (certain_fraction > 0.0 && rng->Bernoulli(certain_fraction)) {
      probs.push_back(Rational::One());
    } else {
      probs.push_back(rng->NontrivialDyadicProbability(log2_den));
    }
  }
  return ProbGraph(std::move(g), std::move(probs));
}

}  // namespace phom
