#pragma once

#include <functional>
#include <vector>

#include "src/graph/classify.h"
#include "src/graph/digraph.h"
#include "src/graph/prob_graph.h"
#include "src/graph/ucq.h"
#include "src/util/rng.h"

/// \file generators.h
/// Seeded random workload generators, one per graph class of the paper. All
/// benchmarks and property tests draw their inputs here, so every experiment
/// is reproducible from its seed.

namespace phom {

/// Random 1WP with `edges` edges and labels uniform in [0, num_labels).
DiGraph RandomOneWayPath(Rng* rng, size_t edges, size_t num_labels);

/// Random 2WP with `edges` edges, uniform labels and orientations.
DiGraph RandomTwoWayPath(Rng* rng, size_t edges, size_t num_labels);

/// Random DWT with `vertices` vertices: vertex i attaches below a uniform
/// earlier vertex. `depth_bias` > 0 skews parents toward recent vertices,
/// producing deeper trees (bias 0 = uniform attachment).
DiGraph RandomDownwardTree(Rng* rng, size_t vertices, size_t num_labels,
                           double depth_bias = 0.0);

/// Random polytree: random tree shape, each edge oriented uniformly.
DiGraph RandomPolytree(Rng* rng, size_t vertices, size_t num_labels);

/// Random connected graph: random tree plus `extra_edges` random non-parallel
/// directed edges (so it is connected but generally not a polytree).
DiGraph RandomConnected(Rng* rng, size_t vertices, size_t extra_edges,
                        size_t num_labels);

/// Disjoint union of `parts` graphs drawn from `part_generator`.
DiGraph RandomDisjointUnion(Rng* rng, size_t parts,
                            const std::function<DiGraph(Rng*)>& part_generator);

/// Random graded DAG with the given number of levels; every edge goes from
/// some level l to level l-1 (Definition 3.5 is satisfied by construction).
DiGraph RandomGradedDag(Rng* rng, size_t vertices, size_t levels,
                        double edge_prob, size_t num_labels);

/// Attaches probabilities to every edge: with probability `certain_fraction`
/// an edge is certain (prob 1), otherwise uniform dyadic k/2^log2_den.
ProbGraph AttachRandomProbabilities(Rng* rng, DiGraph g, int log2_den = 4,
                                    double certain_fraction = 0.0);

/// Random query graph conditioned on a target class of the dichotomy —
/// the class-dispatch companion of the per-class generators above. `size`
/// is edges for the path classes and vertices for the tree/connected ones
/// (clamped to >= 1 vertex); kConnected and kGeneral add size/2 extra
/// edges on top of a random polytree.
DiGraph RandomQueryOfClass(Rng* rng, GraphClass cls, size_t size,
                           size_t num_labels);

/// Random UCQ with `disjuncts` disjuncts, each drawn by RandomQueryOfClass
/// with a class picked uniformly from `classes` (must be non-empty). The
/// returned union is RAW — not normalized — so tests exercise NormalizeUcq
/// on realistic duplicate/subsumed mixes; pass it to PrepareUcq or
/// NormalizeUcq as usual.
Ucq RandomUcq(Rng* rng, size_t disjuncts,
              const std::vector<GraphClass>& classes, size_t size,
              size_t num_labels);

}  // namespace phom
