#pragma once

#include <vector>

#include "src/graph/digraph.h"
#include "src/util/rational.h"

/// \file prob_graph.h
/// Probabilistic graphs (paper §2): a directed labeled graph H together with
/// a probability function π : E → [0, 1]. Possible worlds are the subgraphs
/// of H on the SAME vertex set; each edge is kept independently with its
/// probability.

namespace phom {

class ProbGraph {
 public:
  /// A graph where every edge must still be given a probability via AddEdge.
  explicit ProbGraph(size_t num_vertices = 0) : graph_(num_vertices) {}

  /// Wraps an existing graph; `probs` must align with g.edges().
  ProbGraph(DiGraph g, std::vector<Rational> probs);

  /// All edges certain (probability 1).
  static ProbGraph Certain(DiGraph g);

  const DiGraph& graph() const { return graph_; }
  size_t num_vertices() const { return graph_.num_vertices(); }
  size_t num_edges() const { return graph_.num_edges(); }

  VertexId AddVertex() { return graph_.AddVertex(); }
  Result<EdgeId> AddEdge(VertexId src, VertexId dst, LabelId label,
                         Rational prob);

  const Rational& prob(EdgeId e) const { return probs_[e]; }
  const std::vector<Rational>& probs() const { return probs_; }

  /// Number of edges with probability strictly between 0 and 1.
  size_t NumUncertainEdges() const;

  /// Probability of the possible world keeping exactly the edges with
  /// keep[e] == true: Π_kept π(e) · Π_dropped (1 − π(e)).
  Rational WorldProbability(const std::vector<bool>& keep) const;

  /// Marginalizes out edges whose label is not in `labels` (sorted). Sound
  /// for PHom when `labels` ⊇ labels used by the query: such edges can never
  /// be the image of a query edge, and the independence assumption lets us
  /// sum them out. Keeps all vertices.
  ProbGraph RestrictToLabels(const std::vector<LabelId>& labels) const;

  /// Structural 64-bit hash over the vertex count, the edge list
  /// (src, dst, label, in insertion order) and the exact probabilities.
  /// Equal graphs hash equal; used (with the label set) as the key of the
  /// cross-instance context cache (serve/lru.h). Not cryptographic —
  /// collisions are possible in principle, so cache keys that must be
  /// collision-free should pair it with an owner-assigned id.
  uint64_t Fingerprint() const;

 private:
  DiGraph graph_;
  std::vector<Rational> probs_;
};

EdgeId AddEdgeOrDie(ProbGraph* g, VertexId src, VertexId dst, LabelId label,
                    const Rational& prob);

/// One connected component of a probabilistic graph, with maps back to the
/// original vertex/edge ids (needed to relate lineages across components).
struct ComponentView {
  ProbGraph graph;
  std::vector<VertexId> vertex_map;  ///< component vertex -> original vertex
  std::vector<EdgeId> edge_map;      ///< component edge -> original edge
};

/// Splits into connected components of the underlying undirected graph.
/// Isolated vertices form singleton components.
std::vector<ComponentView> SplitComponents(const ProbGraph& g);

/// Same, for a plain graph (probabilities all 1 in the views).
std::vector<ComponentView> SplitComponents(const DiGraph& g);

}  // namespace phom
