#include "src/graph/graded.h"

#include <algorithm>
#include <limits>
#include <queue>

namespace phom {

GradedAnalysis AnalyzeGraded(const DiGraph& g) {
  GradedAnalysis out;
  size_t n = g.num_vertices();
  std::vector<int64_t> level(n, 0);
  std::vector<bool> assigned(n, false);

  for (VertexId start = 0; start < n; ++start) {
    if (assigned[start]) continue;
    level[start] = 0;
    assigned[start] = true;
    int64_t lo = 0;
    int64_t hi = 0;
    std::vector<VertexId> component{start};
    std::queue<VertexId> queue;
    queue.push(start);
    while (!queue.empty()) {
      VertexId v = queue.front();
      queue.pop();
      auto relax = [&](VertexId w, int64_t expected) -> bool {
        if (!assigned[w]) {
          assigned[w] = true;
          level[w] = expected;
          lo = std::min(lo, expected);
          hi = std::max(hi, expected);
          component.push_back(w);
          queue.push(w);
          return true;
        }
        return level[w] == expected;
      };
      for (EdgeId e : g.OutEdges(v)) {
        if (!relax(g.edge(e).dst, level[v] - 1)) return out;  // not graded
      }
      for (EdgeId e : g.InEdges(v)) {
        if (!relax(g.edge(e).src, level[v] + 1)) return out;  // not graded
      }
    }
    for (VertexId v : component) level[v] -= lo;
    out.difference_of_levels = std::max(out.difference_of_levels, hi - lo);
  }

  out.is_graded = true;
  out.levels = std::move(level);
  return out;
}

}  // namespace phom
