#include "src/graph/prob_graph.h"

#include <algorithm>

#include "src/graph/classify.h"

namespace phom {

ProbGraph::ProbGraph(DiGraph g, std::vector<Rational> probs)
    : graph_(std::move(g)), probs_(std::move(probs)) {
  PHOM_CHECK_MSG(graph_.num_edges() == probs_.size(),
                 "probability vector does not align with edges");
  for (const Rational& p : probs_) {
    PHOM_CHECK_MSG(p.IsProbability(), "edge probability outside [0, 1]");
  }
}

ProbGraph ProbGraph::Certain(DiGraph g) {
  std::vector<Rational> probs(g.num_edges(), Rational::One());
  return ProbGraph(std::move(g), std::move(probs));
}

Result<EdgeId> ProbGraph::AddEdge(VertexId src, VertexId dst, LabelId label,
                                  Rational prob) {
  if (!prob.IsProbability()) {
    return Status::Invalid("edge probability outside [0, 1]: " +
                           prob.ToString());
  }
  PHOM_ASSIGN_OR_RETURN(EdgeId id, graph_.AddEdge(src, dst, label));
  probs_.push_back(std::move(prob));
  return id;
}

size_t ProbGraph::NumUncertainEdges() const {
  size_t count = 0;
  for (const Rational& p : probs_) {
    if (!p.is_zero() && !p.is_one()) ++count;
  }
  return count;
}

Rational ProbGraph::WorldProbability(const std::vector<bool>& keep) const {
  PHOM_CHECK(keep.size() == probs_.size());
  Rational out = Rational::One();
  for (size_t e = 0; e < probs_.size(); ++e) {
    out *= keep[e] ? probs_[e] : probs_[e].Complement();
  }
  return out;
}

ProbGraph ProbGraph::RestrictToLabels(
    const std::vector<LabelId>& labels) const {
  ProbGraph out(num_vertices());
  for (EdgeId e = 0; e < graph_.num_edges(); ++e) {
    const Edge& edge = graph_.edge(e);
    if (std::binary_search(labels.begin(), labels.end(), edge.label)) {
      AddEdgeOrDie(&out, edge.src, edge.dst, edge.label, probs_[e]);
    }
  }
  return out;
}

namespace {

/// FNV-1a over raw bytes.
inline uint64_t HashBytes(uint64_t h, const void* data, size_t len) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ULL;
  }
  return h;
}

inline uint64_t HashU64(uint64_t h, uint64_t v) {
  return HashBytes(h, &v, sizeof(v));
}

inline uint64_t HashString(uint64_t h, const std::string& s) {
  h = HashU64(h, s.size());
  return HashBytes(h, s.data(), s.size());
}

}  // namespace

uint64_t ProbGraph::Fingerprint() const {
  uint64_t h = 0xcbf29ce484222325ULL;  // FNV offset basis
  h = HashU64(h, num_vertices());
  h = HashU64(h, num_edges());
  for (EdgeId e = 0; e < graph_.num_edges(); ++e) {
    const Edge& edge = graph_.edge(e);
    h = HashU64(h, edge.src);
    h = HashU64(h, edge.dst);
    h = HashU64(h, edge.label);
    // Rationals are normalized (gcd-reduced, positive denominator), so the
    // decimal num/den rendering is a canonical form of the exact value.
    h = HashString(h, probs_[e].num().ToString());
    h = HashString(h, probs_[e].den().ToString());
  }
  return h;
}

EdgeId AddEdgeOrDie(ProbGraph* g, VertexId src, VertexId dst, LabelId label,
                    const Rational& prob) {
  Result<EdgeId> result = g->AddEdge(src, dst, label, prob);
  PHOM_CHECK_MSG(result.ok(), result.status().ToString());
  return result.ValueOrDie();
}

namespace {

std::vector<ComponentView> SplitComponentsImpl(const DiGraph& g,
                                               const std::vector<Rational>* probs) {
  std::vector<std::vector<VertexId>> comps = ConnectedComponents(g);
  std::vector<uint32_t> comp_of(g.num_vertices(), 0);
  std::vector<uint32_t> local_id(g.num_vertices(), 0);
  for (uint32_t c = 0; c < comps.size(); ++c) {
    for (uint32_t i = 0; i < comps[c].size(); ++i) {
      comp_of[comps[c][i]] = c;
      local_id[comps[c][i]] = i;
    }
  }
  std::vector<ComponentView> views;
  views.reserve(comps.size());
  for (const std::vector<VertexId>& vs : comps) {
    ComponentView view;
    view.graph = ProbGraph(vs.size());
    view.vertex_map = vs;
    views.push_back(std::move(view));
  }
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const Edge& edge = g.edge(e);
    ComponentView& view = views[comp_of[edge.src]];
    AddEdgeOrDie(&view.graph, local_id[edge.src], local_id[edge.dst],
                 edge.label, probs ? (*probs)[e] : Rational::One());
    view.edge_map.push_back(e);
  }
  return views;
}

}  // namespace

std::vector<ComponentView> SplitComponents(const ProbGraph& g) {
  return SplitComponentsImpl(g.graph(), &g.probs());
}

std::vector<ComponentView> SplitComponents(const DiGraph& g) {
  return SplitComponentsImpl(g, nullptr);
}

}  // namespace phom
