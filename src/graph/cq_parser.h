#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "src/graph/alphabet.h"
#include "src/graph/digraph.h"
#include "src/graph/ucq.h"
#include "src/util/result.h"

/// \file cq_parser.h
/// Textual conjunctive queries over binary atoms, the database-theory view
/// of query graphs (paper §2: PHom "is easily seen to be equivalent to
/// conjunctive query evaluation on probabilistic tuple-independent
/// databases over binary signatures").
///
/// Syntax: comma-separated atoms `R(x, y)`; all variables are existential.
///   "R(x,y), S(y,z), S(t,z)"  becomes the query graph of Example 2.2.
/// Repeated atoms collapse (no multi-edges); `R(x,x)` yields a self-loop.
///
/// Unions of CQs use `|` between disjuncts; each disjunct has its OWN
/// variable scope (all variables are existential, so sharing a name across
/// disjuncts would be meaningless):
///   "R(x,y), S(y,z) | T(x,y)"  is the two-disjunct UCQ Q_1 ∨ Q_2.
///
/// Parse failures report the byte offset into the original text and the
/// offending token, e.g. `cq parse error at byte 7: expected ')' closing
/// atom 'R', got ','`.

namespace phom {

struct ParsedQuery {
  DiGraph graph;
  /// Variable names indexed by vertex id.
  std::vector<std::string> variables;
};

struct ParsedUcq {
  Ucq ucq;
  /// Per-disjunct variable names indexed by vertex id (scopes are
  /// independent across disjuncts).
  std::vector<std::vector<std::string>> variables;
};

Result<ParsedQuery> ParseConjunctiveQuery(std::string_view text,
                                          Alphabet* alphabet);

/// Parses a `|`-separated union of conjunctive queries. A text without `|`
/// yields a one-disjunct UCQ (identical graph to ParseConjunctiveQuery).
/// The result is syntactic — callers wanting dedupe/subsumption run
/// NormalizeUcq themselves (e.g. lifted::PrepareUcq does).
Result<ParsedUcq> ParseUcq(std::string_view text, Alphabet* alphabet);

/// Renders a query graph back to atom syntax using the vertex names
/// v0, v1, ... (or the provided names).
std::string FormatConjunctiveQuery(const DiGraph& query,
                                   const Alphabet& alphabet,
                                   const std::vector<std::string>* names =
                                       nullptr);

/// Renders a UCQ as ` | `-joined disjuncts in FormatConjunctiveQuery syntax.
std::string FormatUcq(const Ucq& ucq, const Alphabet& alphabet);

}  // namespace phom
