#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "src/graph/alphabet.h"
#include "src/graph/digraph.h"
#include "src/util/result.h"

/// \file cq_parser.h
/// Textual conjunctive queries over binary atoms, the database-theory view
/// of query graphs (paper §2: PHom "is easily seen to be equivalent to
/// conjunctive query evaluation on probabilistic tuple-independent
/// databases over binary signatures").
///
/// Syntax: comma-separated atoms `R(x, y)`; all variables are existential.
///   "R(x,y), S(y,z), S(t,z)"  becomes the query graph of Example 2.2.
/// Repeated atoms collapse (no multi-edges); `R(x,x)` yields a self-loop.

namespace phom {

struct ParsedQuery {
  DiGraph graph;
  /// Variable names indexed by vertex id.
  std::vector<std::string> variables;
};

Result<ParsedQuery> ParseConjunctiveQuery(std::string_view text,
                                          Alphabet* alphabet);

/// Renders a query graph back to atom syntax using the vertex names
/// v0, v1, ... (or the provided names).
std::string FormatConjunctiveQuery(const DiGraph& query,
                                   const Alphabet& alphabet,
                                   const std::vector<std::string>* names =
                                       nullptr);

}  // namespace phom
