#include "src/graph/builders.h"

#include "src/util/status.h"

namespace phom {

DiGraph MakeLabeledPath(const std::vector<LabelId>& labels) {
  DiGraph g(labels.size() + 1);
  for (size_t i = 0; i < labels.size(); ++i) {
    AddEdgeOrDie(&g, static_cast<VertexId>(i), static_cast<VertexId>(i + 1),
                 labels[i]);
  }
  return g;
}

DiGraph MakeOneWayPath(size_t length, LabelId label) {
  return MakeLabeledPath(std::vector<LabelId>(length, label));
}

DiGraph MakeTwoWayPath(const std::vector<TwoWayStep>& steps) {
  DiGraph g(steps.size() + 1);
  for (size_t i = 0; i < steps.size(); ++i) {
    VertexId a = static_cast<VertexId>(i);
    VertexId b = static_cast<VertexId>(i + 1);
    if (steps[i].forward) {
      AddEdgeOrDie(&g, a, b, steps[i].label);
    } else {
      AddEdgeOrDie(&g, b, a, steps[i].label);
    }
  }
  return g;
}

DiGraph MakeArrowPath(std::string_view arrows, LabelId label) {
  std::vector<TwoWayStep> steps;
  steps.reserve(arrows.size());
  for (char c : arrows) {
    PHOM_CHECK_MSG(c == '>' || c == '<', "arrow pattern must be '>'/'<'");
    steps.push_back(TwoWayStep{label, c == '>'});
  }
  return MakeTwoWayPath(steps);
}

std::string RepeatArrows(std::string_view arrows, size_t times) {
  std::string out;
  out.reserve(arrows.size() * times);
  for (size_t i = 0; i < times; ++i) out += arrows;
  return out;
}

DiGraph MakeDownwardTree(const std::vector<VertexId>& parents,
                         const std::vector<LabelId>& labels) {
  PHOM_CHECK(parents.size() == labels.size());
  DiGraph g(parents.size() + 1);
  for (size_t i = 0; i < parents.size(); ++i) {
    PHOM_CHECK_MSG(parents[i] <= i, "parent must precede child");
    AddEdgeOrDie(&g, parents[i], static_cast<VertexId>(i + 1), labels[i]);
  }
  return g;
}

DiGraph MakeDownwardTree(const std::vector<VertexId>& parents, LabelId label) {
  return MakeDownwardTree(parents,
                          std::vector<LabelId>(parents.size(), label));
}

DiGraph DisjointUnion(const std::vector<DiGraph>& parts) {
  size_t total = 0;
  for (const DiGraph& p : parts) total += p.num_vertices();
  DiGraph g(total);
  VertexId offset = 0;
  for (const DiGraph& p : parts) {
    for (const Edge& e : p.edges()) {
      AddEdgeOrDie(&g, offset + e.src, offset + e.dst, e.label);
    }
    offset += static_cast<VertexId>(p.num_vertices());
  }
  return g;
}

DiGraph MakeOutStar(size_t leaves, LabelId label) {
  DiGraph g(leaves + 1);
  for (size_t i = 0; i < leaves; ++i) {
    AddEdgeOrDie(&g, 0, static_cast<VertexId>(i + 1), label);
  }
  return g;
}

}  // namespace phom
