#include "src/graph/digraph.h"

#include <algorithm>

namespace phom {

VertexId DiGraph::AddVertex() {
  out_.emplace_back();
  in_.emplace_back();
  return static_cast<VertexId>(out_.size() - 1);
}

Result<EdgeId> DiGraph::AddEdge(VertexId src, VertexId dst, LabelId label) {
  if (src >= num_vertices() || dst >= num_vertices()) {
    return Status::Invalid("edge endpoint out of range");
  }
  uint64_t key = PairKey(src, dst);
  if (by_pair_.count(key)) {
    return Status::Invalid("multi-edge on ordered pair (" +
                           std::to_string(src) + ", " + std::to_string(dst) +
                           ")");
  }
  EdgeId id = static_cast<EdgeId>(edges_.size());
  edges_.push_back(Edge{src, dst, label});
  out_[src].push_back(id);
  in_[dst].push_back(id);
  by_pair_.emplace(key, id);
  return id;
}

std::optional<EdgeId> DiGraph::FindEdge(VertexId src, VertexId dst) const {
  auto it = by_pair_.find(PairKey(src, dst));
  if (it == by_pair_.end()) return std::nullopt;
  return it->second;
}

bool DiGraph::HasEdge(VertexId src, VertexId dst, LabelId label) const {
  std::optional<EdgeId> e = FindEdge(src, dst);
  return e.has_value() && edges_[*e].label == label;
}

std::vector<LabelId> DiGraph::UsedLabels() const {
  std::vector<LabelId> labels;
  labels.reserve(edges_.size());
  for (const Edge& e : edges_) labels.push_back(e.label);
  std::sort(labels.begin(), labels.end());
  labels.erase(std::unique(labels.begin(), labels.end()), labels.end());
  return labels;
}

EdgeId AddEdgeOrDie(DiGraph* g, VertexId src, VertexId dst, LabelId label) {
  Result<EdgeId> result = g->AddEdge(src, dst, label);
  PHOM_CHECK_MSG(result.ok(), result.status().ToString());
  return result.ValueOrDie();
}

}  // namespace phom
