#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "src/graph/digraph.h"
#include "src/util/result.h"

/// \file classify.h
/// Recognizers for the paper's graph classes (§2, Figure 2):
///
///   1WP ⊆ 2WP ⊆ PT,  1WP ⊆ DWT ⊆ PT ⊆ Connected ⊆ All,
///   ⊔C = graphs all of whose connected components are in C.
///
/// Conventions (following the paper's definitions):
///  * a single vertex with no edge is a 1WP (m = 1);
///  * paths have pairwise-distinct vertices, so self-loops and anti-parallel
///    edge pairs disqualify a graph from every tree-like class;
///  * polytree = the underlying undirected graph is a tree.

namespace phom {

enum class GraphClass {
  kOneWayPath = 0,
  kTwoWayPath,
  kDownwardTree,
  kPolytree,
  kConnected,
  kGeneral,
};

const char* ToString(GraphClass c);

/// Inverse of ToString(GraphClass): "1WP" → kOneWayPath, ..., "General" →
/// kGeneral. Unknown names are Status::Invalid (used by loaders that read
/// persisted class names, e.g. the cost-model snapshot import).
Result<GraphClass> ParseGraphClass(std::string_view text);

/// Connectivity of the underlying undirected graph. The empty graph and
/// single vertices are connected.
bool IsConnected(const DiGraph& g);

/// Vertex sets of the connected components (underlying undirected graph),
/// each sorted ascending; components ordered by smallest vertex.
std::vector<std::vector<VertexId>> ConnectedComponents(const DiGraph& g);

bool IsOneWayPath(const DiGraph& g);
bool IsTwoWayPath(const DiGraph& g);
bool IsDownwardTree(const DiGraph& g);
bool IsPolytree(const DiGraph& g);

/// Class membership summary used by the dichotomy dispatcher. The `is_*`
/// flags describe the whole graph (so they imply connectivity); the `all_*`
/// flags describe the ⊔-classes (every component in the class).
struct Classification {
  bool connected = false;
  size_t num_components = 0;

  bool is_1wp = false;
  bool is_2wp = false;
  bool is_dwt = false;
  bool is_pt = false;

  bool all_1wp = false;  ///< g ∈ ⊔1WP
  bool all_2wp = false;  ///< g ∈ ⊔2WP
  bool all_dwt = false;  ///< g ∈ ⊔DWT
  bool all_pt = false;   ///< g ∈ ⊔PT

  /// Finest class of the whole graph in the order of Figure 2 (1WP before
  /// 2WP before DWT before PT before Connected before General). For
  /// disconnected graphs this is kGeneral.
  GraphClass finest = GraphClass::kGeneral;

  std::string ToString() const;
};

Classification Classify(const DiGraph& g);

/// For a 2WP, the vertex order a_1 − a_2 − ... − a_m along the path
/// (an arbitrary one of the two orientations). PHOM_CHECKs IsTwoWayPath.
std::vector<VertexId> TwoWayPathOrder(const DiGraph& g);

/// For a DWT, the root (the unique vertex of in-degree 0; the single vertex
/// for edgeless graphs). PHOM_CHECKs IsDownwardTree.
VertexId DownwardTreeRoot(const DiGraph& g);

/// For a 1WP, the edge labels in path order. PHOM_CHECKs IsOneWayPath.
std::vector<LabelId> OneWayPathLabels(const DiGraph& g);

}  // namespace phom
