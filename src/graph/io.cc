#include "src/graph/io.h"

#include <sstream>

namespace phom {

namespace {

std::string LabelName(LabelId label, const Alphabet* alphabet) {
  if (alphabet != nullptr && label < alphabet->size()) {
    return alphabet->Name(label);
  }
  return "L" + std::to_string(label);
}

struct ParsedEdgeLine {
  VertexId src;
  VertexId dst;
  std::string label;
  std::string prob;  // empty if absent
};

Result<ParsedEdgeLine> ParseEdgeLine(const std::string& line) {
  std::istringstream is(line);
  ParsedEdgeLine out;
  if (!(is >> out.src >> out.dst >> out.label)) {
    return Status::Invalid("bad edge line: " + line);
  }
  is >> out.prob;  // optional
  return out;
}

}  // namespace

std::string Serialize(const DiGraph& g, const Alphabet& alphabet) {
  std::ostringstream os;
  os << g.num_vertices() << " " << g.num_edges() << "\n";
  for (const Edge& e : g.edges()) {
    os << e.src << " " << e.dst << " " << LabelName(e.label, &alphabet)
       << "\n";
  }
  return os.str();
}

std::string Serialize(const ProbGraph& g, const Alphabet& alphabet) {
  std::ostringstream os;
  os << g.num_vertices() << " " << g.num_edges() << "\n";
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const Edge& edge = g.graph().edge(e);
    os << edge.src << " " << edge.dst << " "
       << LabelName(edge.label, &alphabet) << " " << g.prob(e).ToString()
       << "\n";
  }
  return os.str();
}

Result<ProbGraph> ParseProbGraph(std::string_view text, Alphabet* alphabet) {
  std::istringstream is{std::string(text)};
  size_t n = 0;
  size_t m = 0;
  if (!(is >> n >> m)) return Status::Invalid("bad header");
  std::string rest_of_header;
  std::getline(is, rest_of_header);
  ProbGraph g(n);
  for (size_t i = 0; i < m; ++i) {
    std::string line;
    if (!std::getline(is, line)) return Status::Invalid("truncated edge list");
    PHOM_ASSIGN_OR_RETURN(ParsedEdgeLine parsed, ParseEdgeLine(line));
    Rational prob = Rational::One();
    if (!parsed.prob.empty()) {
      PHOM_ASSIGN_OR_RETURN(prob, Rational::FromString(parsed.prob));
    }
    LabelId label = alphabet->Intern(parsed.label);
    PHOM_ASSIGN_OR_RETURN(EdgeId ignored,
                          g.AddEdge(parsed.src, parsed.dst, label, prob));
    (void)ignored;
  }
  return g;
}

Result<DiGraph> ParseDiGraph(std::string_view text, Alphabet* alphabet) {
  PHOM_ASSIGN_OR_RETURN(ProbGraph g, ParseProbGraph(text, alphabet));
  return g.graph();
}

namespace {

std::string DotBody(const DiGraph& g, const std::vector<Rational>* probs,
                    const Alphabet* alphabet) {
  std::ostringstream os;
  os << "digraph H {\n  rankdir=LR;\n";
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    os << "  v" << v << " [shape=circle,label=\"" << v << "\"];\n";
  }
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const Edge& edge = g.edge(e);
    os << "  v" << edge.src << " -> v" << edge.dst << " [label=\""
       << LabelName(edge.label, alphabet);
    if (probs != nullptr && !(*probs)[e].is_one()) {
      os << " : " << (*probs)[e].ToString();
    }
    os << "\"";
    if (probs != nullptr && !(*probs)[e].is_one()) os << ", style=dashed";
    os << "];\n";
  }
  os << "}\n";
  return os.str();
}

}  // namespace

std::string ToDot(const DiGraph& g, const Alphabet* alphabet) {
  return DotBody(g, nullptr, alphabet);
}

std::string ToDot(const ProbGraph& g, const Alphabet* alphabet) {
  return DotBody(g.graph(), &g.probs(), alphabet);
}

}  // namespace phom
