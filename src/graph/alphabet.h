#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "src/graph/digraph.h"
#include "src/util/status.h"

/// \file alphabet.h
/// Maps human-readable label names ("R", "S", ...) to the LabelId integers
/// used by DiGraph. The query and instance graphs of one PHom problem must
/// share an Alphabet so their label ids are comparable.

namespace phom {

class Alphabet {
 public:
  /// Returns the id of `name`, interning it if new.
  LabelId Intern(std::string_view name) {
    auto it = ids_.find(std::string(name));
    if (it != ids_.end()) return it->second;
    LabelId id = static_cast<LabelId>(names_.size());
    names_.emplace_back(name);
    ids_.emplace(names_.back(), id);
    return id;
  }

  std::optional<LabelId> Find(std::string_view name) const {
    auto it = ids_.find(std::string(name));
    if (it == ids_.end()) return std::nullopt;
    return it->second;
  }

  const std::string& Name(LabelId id) const {
    PHOM_CHECK(id < names_.size());
    return names_[id];
  }

  size_t size() const { return names_.size(); }

 private:
  std::vector<std::string> names_;
  std::unordered_map<std::string, LabelId> ids_;
};

}  // namespace phom
