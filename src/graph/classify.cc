#include "src/graph/classify.h"

#include <algorithm>
#include <queue>

#include "src/util/status.h"

namespace phom {

const char* ToString(GraphClass c) {
  switch (c) {
    case GraphClass::kOneWayPath: return "1WP";
    case GraphClass::kTwoWayPath: return "2WP";
    case GraphClass::kDownwardTree: return "DWT";
    case GraphClass::kPolytree: return "PT";
    case GraphClass::kConnected: return "Connected";
    case GraphClass::kGeneral: return "General";
  }
  return "?";
}

Result<GraphClass> ParseGraphClass(std::string_view text) {
  if (text == "1WP") return GraphClass::kOneWayPath;
  if (text == "2WP") return GraphClass::kTwoWayPath;
  if (text == "DWT") return GraphClass::kDownwardTree;
  if (text == "PT") return GraphClass::kPolytree;
  if (text == "Connected") return GraphClass::kConnected;
  if (text == "General") return GraphClass::kGeneral;
  return Status::Invalid("unknown graph class name '" + std::string(text) +
                         "'");
}

std::vector<std::vector<VertexId>> ConnectedComponents(const DiGraph& g) {
  std::vector<int32_t> comp(g.num_vertices(), -1);
  std::vector<std::vector<VertexId>> out;
  for (VertexId start = 0; start < g.num_vertices(); ++start) {
    if (comp[start] >= 0) continue;
    int32_t id = static_cast<int32_t>(out.size());
    out.emplace_back();
    std::queue<VertexId> queue;
    queue.push(start);
    comp[start] = id;
    while (!queue.empty()) {
      VertexId v = queue.front();
      queue.pop();
      out[id].push_back(v);
      for (EdgeId e : g.OutEdges(v)) {
        VertexId w = g.edge(e).dst;
        if (comp[w] < 0) {
          comp[w] = id;
          queue.push(w);
        }
      }
      for (EdgeId e : g.InEdges(v)) {
        VertexId w = g.edge(e).src;
        if (comp[w] < 0) {
          comp[w] = id;
          queue.push(w);
        }
      }
    }
    std::sort(out[id].begin(), out[id].end());
  }
  return out;
}

bool IsConnected(const DiGraph& g) {
  return ConnectedComponents(g).size() <= 1;
}

namespace {

/// True iff g contains a self-loop or an anti-parallel pair (u,v),(v,u).
/// No graph in any path/tree class may contain either.
bool HasLoopOrAntiParallel(const DiGraph& g) {
  for (const Edge& e : g.edges()) {
    if (e.src == e.dst) return true;
    if (e.src < e.dst && g.FindEdge(e.dst, e.src).has_value()) return true;
    if (e.src > e.dst && g.FindEdge(e.dst, e.src).has_value()) return true;
  }
  return false;
}

}  // namespace

bool IsOneWayPath(const DiGraph& g) {
  if (g.num_vertices() == 0) return false;  // graphs have non-empty V
  if (g.num_edges() != g.num_vertices() - 1) return false;
  VertexId start = g.num_vertices();
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    if (g.OutDegree(v) > 1 || g.InDegree(v) > 1) return false;
    if (g.InDegree(v) == 0) {
      if (start != g.num_vertices()) return false;  // two starts
      start = v;
    }
  }
  if (start == g.num_vertices()) return false;  // cycle
  // Walk the unique chain; must cover all vertices.
  size_t visited = 1;
  VertexId v = start;
  while (g.OutDegree(v) == 1) {
    v = g.edge(g.OutEdges(v)[0]).dst;
    ++visited;
    if (visited > g.num_vertices()) return false;  // defensive (cycle)
  }
  return visited == g.num_vertices();
}

bool IsTwoWayPath(const DiGraph& g) {
  if (g.num_vertices() == 0) return false;
  if (g.num_edges() != g.num_vertices() - 1) return false;
  if (HasLoopOrAntiParallel(g)) return false;
  if (!IsConnected(g)) return false;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    if (g.UndirectedDegree(v) > 2) return false;
  }
  return true;
}

bool IsDownwardTree(const DiGraph& g) {
  if (g.num_vertices() == 0) return false;
  if (g.num_edges() != g.num_vertices() - 1) return false;
  if (!IsConnected(g)) return false;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    if (g.InDegree(v) > 1) return false;
  }
  // Connected with n-1 edges and in-degrees <= 1: exactly one root, no
  // cycles, no anti-parallel pairs (those would force a multi-edge in the
  // underlying graph, contradicting connectivity with n-1 edges).
  return true;
}

bool IsPolytree(const DiGraph& g) {
  if (g.num_vertices() == 0) return false;
  if (g.num_edges() != g.num_vertices() - 1) return false;
  return IsConnected(g);
}

Classification Classify(const DiGraph& g) {
  Classification out;
  std::vector<std::vector<VertexId>> comps = ConnectedComponents(g);
  out.num_components = comps.size();
  out.connected = comps.size() <= 1;

  if (out.connected) {
    out.is_1wp = IsOneWayPath(g);
    out.is_2wp = IsTwoWayPath(g);
    out.is_dwt = IsDownwardTree(g);
    out.is_pt = IsPolytree(g);
    out.all_1wp = out.is_1wp;
    out.all_2wp = out.is_2wp;
    out.all_dwt = out.is_dwt;
    out.all_pt = out.is_pt;
  } else {
    out.all_1wp = out.all_2wp = out.all_dwt = out.all_pt = true;
    // Classify each component via an extracted subgraph.
    std::vector<uint32_t> local(g.num_vertices(), 0);
    for (const std::vector<VertexId>& vs : comps) {
      for (uint32_t i = 0; i < vs.size(); ++i) local[vs[i]] = i;
    }
    std::vector<DiGraph> sub;
    sub.reserve(comps.size());
    for (const std::vector<VertexId>& vs : comps) sub.emplace_back(vs.size());
    std::vector<uint32_t> comp_of(g.num_vertices(), 0);
    for (uint32_t c = 0; c < comps.size(); ++c) {
      for (VertexId v : comps[c]) comp_of[v] = c;
    }
    for (const Edge& e : g.edges()) {
      AddEdgeOrDie(&sub[comp_of[e.src]], local[e.src], local[e.dst], e.label);
    }
    for (const DiGraph& s : sub) {
      out.all_1wp = out.all_1wp && IsOneWayPath(s);
      out.all_2wp = out.all_2wp && IsTwoWayPath(s);
      out.all_dwt = out.all_dwt && IsDownwardTree(s);
      out.all_pt = out.all_pt && IsPolytree(s);
    }
  }

  if (out.is_1wp) {
    out.finest = GraphClass::kOneWayPath;
  } else if (out.is_2wp) {
    out.finest = GraphClass::kTwoWayPath;
  } else if (out.is_dwt) {
    out.finest = GraphClass::kDownwardTree;
  } else if (out.is_pt) {
    out.finest = GraphClass::kPolytree;
  } else if (out.connected) {
    out.finest = GraphClass::kConnected;
  } else {
    out.finest = GraphClass::kGeneral;
  }
  return out;
}

std::string Classification::ToString() const {
  std::string s = "{finest=";
  s += phom::ToString(finest);
  s += connected ? ", connected" : ", disconnected";
  auto add = [&s](const char* name, bool v) {
    if (v) {
      s += ", ";
      s += name;
    }
  };
  add("u1wp", all_1wp);
  add("u2wp", all_2wp);
  add("udwt", all_dwt);
  add("upt", all_pt);
  s += "}";
  return s;
}

std::vector<VertexId> TwoWayPathOrder(const DiGraph& g) {
  PHOM_CHECK_MSG(IsTwoWayPath(g), "TwoWayPathOrder requires a 2WP");
  if (g.num_vertices() == 1) return {0};
  // Find an endpoint (undirected degree 1), then walk.
  VertexId start = 0;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    if (g.UndirectedDegree(v) == 1) {
      start = v;
      break;
    }
  }
  std::vector<VertexId> order;
  order.reserve(g.num_vertices());
  std::vector<bool> seen(g.num_vertices(), false);
  VertexId v = start;
  seen[v] = true;
  order.push_back(v);
  while (order.size() < g.num_vertices()) {
    VertexId next = g.num_vertices();
    for (EdgeId e : g.OutEdges(v)) {
      if (!seen[g.edge(e).dst]) next = g.edge(e).dst;
    }
    for (EdgeId e : g.InEdges(v)) {
      if (!seen[g.edge(e).src]) next = g.edge(e).src;
    }
    PHOM_CHECK(next != g.num_vertices());
    seen[next] = true;
    order.push_back(next);
    v = next;
  }
  return order;
}

VertexId DownwardTreeRoot(const DiGraph& g) {
  PHOM_CHECK_MSG(IsDownwardTree(g), "DownwardTreeRoot requires a DWT");
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    if (g.InDegree(v) == 0) return v;
  }
  PHOM_CHECK_MSG(false, "DWT without root");
  return 0;
}

std::vector<LabelId> OneWayPathLabels(const DiGraph& g) {
  PHOM_CHECK_MSG(IsOneWayPath(g), "OneWayPathLabels requires a 1WP");
  std::vector<LabelId> labels;
  labels.reserve(g.num_edges());
  VertexId v = 0;
  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    if (g.InDegree(u) == 0) v = u;
  }
  while (g.OutDegree(v) == 1) {
    EdgeId e = g.OutEdges(v)[0];
    labels.push_back(g.edge(e).label);
    v = g.edge(e).dst;
  }
  PHOM_CHECK(labels.size() == g.num_edges());
  return labels;
}

}  // namespace phom
