#pragma once

#include <string>
#include <string_view>

#include "src/graph/alphabet.h"
#include "src/graph/digraph.h"
#include "src/graph/prob_graph.h"
#include "src/util/result.h"

/// \file io.h
/// Text serialization (a simple line format for fixtures and tooling) and
/// Graphviz DOT export for visual inspection of instances and reductions.
///
/// Text format:
///   line 1: "<num_vertices> <num_edges>"
///   then per edge: "<src> <dst> <label-name> [<prob>]"
/// Probabilities accept "1/2" and "0.5" forms; omitted means certain.

namespace phom {

std::string Serialize(const DiGraph& g, const Alphabet& alphabet);
std::string Serialize(const ProbGraph& g, const Alphabet& alphabet);

Result<DiGraph> ParseDiGraph(std::string_view text, Alphabet* alphabet);
Result<ProbGraph> ParseProbGraph(std::string_view text, Alphabet* alphabet);

/// DOT rendering. Dashed edges carry a probability < 1 (annotated), solid
/// edges are certain — mirroring the paper's figures.
std::string ToDot(const DiGraph& g, const Alphabet* alphabet = nullptr);
std::string ToDot(const ProbGraph& g, const Alphabet* alphabet = nullptr);

}  // namespace phom
