#pragma once

#include <cstdint>
#include <vector>

#include "src/graph/digraph.h"

/// \file graded.h
/// Graded DAGs and level mappings (Definition 3.5, Figure 6). A level mapping
/// maps every vertex to an integer such that each edge u → v satisfies
/// µ(v) = µ(u) − 1. A graph is graded iff it admits one, iff it has no
/// directed cycle and no "jumping edge" (two directed u→v paths of different
/// lengths) [Odagiri & Goto, Prop. 1].
///
/// These mappings power two collapses in the paper:
///  * Prop. 3.6: on ⊔DWT instances, an unlabeled graded query is equivalent
///    to the 1WP →^m where m is its difference of levels (and a non-graded
///    query has probability 0);
///  * Prop. 5.5: an unlabeled ⊔DWT *query* is equivalent to →^height, and a
///    DWT's height equals its difference of levels.

namespace phom {

struct GradedAnalysis {
  /// True iff the graph admits a level mapping.
  bool is_graded = false;
  /// A minimal level mapping: per connected component, levels are shifted so
  /// the smallest is 0. Only meaningful when is_graded.
  std::vector<int64_t> levels;
  /// max over components of (max level − min level); this is the length m of
  /// the equivalent 1WP →^m on forest instances. 0 for edgeless graphs.
  int64_t difference_of_levels = 0;
};

/// BFS over the underlying undirected graph, propagating the level constraint
/// µ(dst) = µ(src) − 1; any conflict witnesses a cycle or a jumping edge.
GradedAnalysis AnalyzeGraded(const DiGraph& g);

}  // namespace phom
