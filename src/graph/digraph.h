#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/util/result.h"
#include "src/util/status.h"

/// \file digraph.h
/// Directed graphs with edge labels from a finite alphabet (paper §2:
/// H = (V, E, λ) with E ⊆ V² and λ : E → σ). Multi-edges are disallowed —
/// an ordered pair (u, v) carries at most one edge and hence one label —
/// matching the paper's definition. Labels are interned integers; mapping
/// label ids to human-readable names is the caller's business (see
/// alphabet.h).

namespace phom {

using VertexId = uint32_t;
using EdgeId = uint32_t;
using LabelId = uint32_t;

/// The single label used by convention in the unlabeled setting (|σ| = 1).
inline constexpr LabelId kUnlabeled = 0;

struct Edge {
  VertexId src;
  VertexId dst;
  LabelId label;

  bool operator==(const Edge& other) const = default;
};

class DiGraph {
 public:
  explicit DiGraph(size_t num_vertices = 0) : out_(num_vertices),
                                              in_(num_vertices) {}

  size_t num_vertices() const { return out_.size(); }
  size_t num_edges() const { return edges_.size(); }

  /// Adds a fresh isolated vertex and returns its id.
  VertexId AddVertex();

  /// Adds the edge src --label--> dst. Fails on out-of-range endpoints or if
  /// the ordered pair (src, dst) already carries an edge (no multi-edges).
  Result<EdgeId> AddEdge(VertexId src, VertexId dst, LabelId label);

  const Edge& edge(EdgeId e) const { return edges_[e]; }
  const std::vector<Edge>& edges() const { return edges_; }

  /// Edge ids leaving / entering a vertex.
  const std::vector<EdgeId>& OutEdges(VertexId v) const { return out_[v]; }
  const std::vector<EdgeId>& InEdges(VertexId v) const { return in_[v]; }

  size_t OutDegree(VertexId v) const { return out_[v].size(); }
  size_t InDegree(VertexId v) const { return in_[v].size(); }
  /// Degree in the underlying undirected multigraph.
  size_t UndirectedDegree(VertexId v) const {
    return out_[v].size() + in_[v].size();
  }

  /// The edge on the ordered pair (src, dst), if any.
  std::optional<EdgeId> FindEdge(VertexId src, VertexId dst) const;
  bool HasEdge(VertexId src, VertexId dst, LabelId label) const;

  /// Distinct labels used by the edges, sorted ascending.
  std::vector<LabelId> UsedLabels() const;
  /// True iff at most one distinct label occurs (the paper's |σ| = 1 case).
  bool UsesSingleLabel() const { return UsedLabels().size() <= 1; }

 private:
  static uint64_t PairKey(VertexId src, VertexId dst) {
    return (static_cast<uint64_t>(src) << 32) | dst;
  }

  std::vector<Edge> edges_;
  std::vector<std::vector<EdgeId>> out_;
  std::vector<std::vector<EdgeId>> in_;
  std::unordered_map<uint64_t, EdgeId> by_pair_;
};

/// Convenience for internal construction where arguments are known valid.
EdgeId AddEdgeOrDie(DiGraph* g, VertexId src, VertexId dst,
                    LabelId label = kUnlabeled);

}  // namespace phom
