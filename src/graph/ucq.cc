#include "src/graph/ucq.h"

#include <algorithm>

#include "src/hom/backtrack.h"

namespace phom {

namespace {

uint64_t HashU64(uint64_t h, uint64_t v) {
  // FNV-1a over the value's bytes.
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xff;
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace

std::vector<LabelId> Ucq::UsedLabels() const {
  std::vector<LabelId> out;
  for (const DiGraph& d : disjuncts) {
    std::vector<LabelId> labels = d.UsedLabels();
    out.insert(out.end(), labels.begin(), labels.end());
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

std::vector<uint64_t> CanonicalDisjunctKey(const DiGraph& g) {
  std::vector<uint64_t> key;
  key.reserve(2 + g.num_edges());
  key.push_back(g.num_edges());
  key.push_back(g.num_vertices());
  std::vector<uint64_t> edges;
  edges.reserve(g.num_edges());
  for (const Edge& e : g.edges()) {
    edges.push_back((uint64_t{e.src} << 42) | (uint64_t{e.dst} << 20) |
                    uint64_t{e.label});
  }
  // Vertex ids are construction-order artifacts, but sorting the packed
  // triples at least makes the key independent of edge insertion order.
  std::sort(edges.begin(), edges.end());
  key.insert(key.end(), edges.begin(), edges.end());
  return key;
}

Ucq NormalizeUcq(const Ucq& ucq) {
  std::vector<std::pair<std::vector<uint64_t>, const DiGraph*>> keyed;
  keyed.reserve(ucq.disjuncts.size());
  for (const DiGraph& d : ucq.disjuncts) {
    keyed.emplace_back(CanonicalDisjunctKey(d), &d);
  }
  std::sort(keyed.begin(), keyed.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  // Syntactic dedupe: identical canonical keys with isomorphic-by-identity
  // encodings collapse to the first copy.
  keyed.erase(std::unique(keyed.begin(), keyed.end(),
                          [](const auto& a, const auto& b) {
                            return a.first == b.first;
                          }),
              keyed.end());

  // Semantic subsumption: a homomorphism Q_i → Q_j composes with any match
  // of Q_j, so Q_j ⟹ Q_i and Q_j contributes nothing to the union. Check
  // every ordered pair; on mutual subsumption (logical equivalence) the
  // canonically-earlier disjunct survives. A hom test that errors out
  // (backtracking budget) keeps both disjuncts — dropping needs proof.
  const size_t n = keyed.size();
  std::vector<bool> dropped(n, false);
  for (size_t i = 0; i < n; ++i) {
    if (dropped[i]) continue;
    for (size_t j = 0; j < n; ++j) {
      if (i == j || dropped[j]) continue;
      Result<bool> maps = HasHomomorphism(*keyed[i].second, *keyed[j].second);
      if (!maps.ok() || !*maps) continue;
      // Q_j is subsumed by Q_i — unless they are equivalent and i comes
      // later, in which case i is the one that falls (to j's earlier copy).
      if (j < i) {
        Result<bool> back =
            HasHomomorphism(*keyed[j].second, *keyed[i].second);
        if (back.ok() && *back) {
          dropped[i] = true;
          break;
        }
      }
      dropped[j] = true;
    }
  }

  Ucq out;
  for (size_t i = 0; i < n; ++i) {
    if (!dropped[i]) out.disjuncts.push_back(*keyed[i].second);
  }
  return out;
}

uint64_t UcqFingerprint(const Ucq& ucq) {
  uint64_t h = 0xcbf29ce484222325ULL;  // FNV offset basis
  h = HashU64(h, ucq.disjuncts.size());
  for (const DiGraph& d : ucq.disjuncts) {
    for (uint64_t v : CanonicalDisjunctKey(d)) h = HashU64(h, v);
    h = HashU64(h, 0x9e3779b97f4a7c15ULL);  // disjunct separator
  }
  return h;
}

}  // namespace phom
