#pragma once

#include <string_view>
#include <vector>

#include "src/graph/digraph.h"
#include "src/graph/prob_graph.h"

/// \file builders.h
/// Deterministic constructors for the paper's graph classes. The arrow-string
/// builders mirror the paper's notation: e.g. the query of Prop. 5.6 is
/// MakeArrowPath(">>>" + Repeat(">><", m+3) + ">>>").

namespace phom {

/// One-way path with the given edge labels: a_1 -L[0]-> a_2 -L[1]-> ...
/// Named differently from MakeOneWayPath because a braced single-element
/// list would otherwise silently select the size_t overload.
DiGraph MakeLabeledPath(const std::vector<LabelId>& labels);

/// Single-label one-way path with `length` edges: →^length.
DiGraph MakeOneWayPath(size_t length, LabelId label = kUnlabeled);

/// A step of a two-way path: label plus orientation (true = forward).
struct TwoWayStep {
  LabelId label;
  bool forward;
};

/// Two-way path a_1 − a_2 − ... with the given steps.
DiGraph MakeTwoWayPath(const std::vector<TwoWayStep>& steps);

/// Two-way path from an arrow pattern: '>' is a forward edge, '<' a backward
/// edge, all with the same label. ">><" is a_1→a_2→a_3←a_4.
DiGraph MakeArrowPath(std::string_view arrows, LabelId label = kUnlabeled);

/// Repeats an arrow pattern `times` times (helper for the codings of
/// Props. 3.4 and 5.6).
std::string RepeatArrows(std::string_view arrows, size_t times);

/// Downward tree from a parent array: vertex 0 is the root; vertex i+1 has
/// parent parents[i] (which must be < i+1) and incoming label labels[i].
DiGraph MakeDownwardTree(const std::vector<VertexId>& parents,
                         const std::vector<LabelId>& labels);
DiGraph MakeDownwardTree(const std::vector<VertexId>& parents,
                         LabelId label = kUnlabeled);

/// Disjoint union; vertex ids of parts[i] are shifted by the total size of
/// the preceding parts.
DiGraph DisjointUnion(const std::vector<DiGraph>& parts);

/// Star with `leaves` children (a DWT of height 1).
DiGraph MakeOutStar(size_t leaves, LabelId label = kUnlabeled);

}  // namespace phom
