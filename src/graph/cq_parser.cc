#include "src/graph/cq_parser.h"

#include <cctype>
#include <sstream>
#include <unordered_map>

namespace phom {

namespace {

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '\'';
}

/// Cursor over one disjunct's text slice. `base` is the slice's byte offset
/// into the ORIGINAL query string, so every diagnostic points into what the
/// user actually typed, not into an internal substring.
struct Cursor {
  std::string_view text;
  size_t base = 0;
  size_t pos = 0;

  void SkipSpace() {
    while (pos < text.size() &&
           std::isspace(static_cast<unsigned char>(text[pos]))) {
      ++pos;
    }
  }
  bool AtEnd() {
    SkipSpace();
    return pos >= text.size();
  }
  bool Consume(char c) {
    SkipSpace();
    if (pos < text.size() && text[pos] == c) {
      ++pos;
      return true;
    }
    return false;
  }

  /// The token starting at the current position, rendered for diagnostics:
  /// a full identifier, a single punctuation character, or "end of input".
  std::string OffendingToken() {
    SkipSpace();
    if (pos >= text.size()) return "end of input";
    if (IsIdentChar(text[pos])) {
      size_t end = pos;
      while (end < text.size() && IsIdentChar(text[end])) ++end;
      return "'" + std::string(text.substr(pos, end - pos)) + "'";
    }
    return std::string("'") + text[pos] + "'";
  }

  /// Parse failure at the CURRENT position: byte offset + offending token.
  Status Error(const std::string& expected) {
    SkipSpace();
    return Status::Invalid("cq parse error at byte " +
                           std::to_string(base + pos) + ": " + expected +
                           ", got " + OffendingToken());
  }

  Result<std::string> Identifier(const std::string& expected) {
    SkipSpace();
    size_t start = pos;
    while (pos < text.size() && IsIdentChar(text[pos])) ++pos;
    if (pos == start) return Error(expected);
    return std::string(text.substr(start, pos - start));
  }
};

Result<ParsedQuery> ParseDisjunct(std::string_view text, size_t base,
                                  Alphabet* alphabet) {
  ParsedQuery out{DiGraph(0), {}};
  std::unordered_map<std::string, VertexId> var_ids;
  auto intern_var = [&](const std::string& name) {
    auto it = var_ids.find(name);
    if (it != var_ids.end()) return it->second;
    VertexId id = out.graph.AddVertex();
    var_ids.emplace(name, id);
    out.variables.push_back(name);
    return id;
  };

  Cursor cursor{text, base};
  bool first = true;
  while (!cursor.AtEnd()) {
    if (!first && !cursor.Consume(',')) {
      return cursor.Error("expected ',' between atoms");
    }
    if (cursor.AtEnd()) break;  // allow trailing comma
    first = false;
    PHOM_ASSIGN_OR_RETURN(std::string relation,
                          cursor.Identifier("expected a relation name"));
    if (!cursor.Consume('(')) {
      return cursor.Error("expected '(' after relation '" + relation + "'");
    }
    PHOM_ASSIGN_OR_RETURN(
        std::string src,
        cursor.Identifier("expected a variable in atom '" + relation + "'"));
    if (!cursor.Consume(',')) {
      return cursor.Error("binary atom '" + relation +
                          "' needs two arguments; expected ','");
    }
    PHOM_ASSIGN_OR_RETURN(
        std::string dst,
        cursor.Identifier("expected a variable in atom '" + relation + "'"));
    if (!cursor.Consume(')')) {
      return cursor.Error("expected ')' closing atom '" + relation + "'");
    }
    LabelId label = alphabet->Intern(relation);
    VertexId a = intern_var(src);
    VertexId b = intern_var(dst);
    // Repeated atoms are idempotent; a second label on the same pair is a
    // genuine error under the no-multi-edge semantics.
    if (std::optional<EdgeId> existing = out.graph.FindEdge(a, b)) {
      if (out.graph.edge(*existing).label != label) {
        return cursor.Error("conflicting atoms on (" + src + ", " + dst +
                            "): the paper's graphs carry one label per "
                            "ordered pair");
      }
      continue;
    }
    PHOM_ASSIGN_OR_RETURN(EdgeId ignored, out.graph.AddEdge(a, b, label));
    (void)ignored;
  }
  if (out.graph.num_vertices() == 0) {
    return cursor.Error("expected a non-empty disjunct");
  }
  return out;
}

}  // namespace

Result<ParsedQuery> ParseConjunctiveQuery(std::string_view text,
                                          Alphabet* alphabet) {
  // A stray '|' in single-CQ context gets a pointed diagnostic instead of
  // the generic "expected ',' between atoms".
  size_t bar = text.find('|');
  if (bar != std::string_view::npos) {
    return Status::Invalid(
        "cq parse error at byte " + std::to_string(bar) +
        ": '|' builds a union of CQs — parse this text with ParseUcq");
  }
  return ParseDisjunct(text, 0, alphabet);
}

Result<ParsedUcq> ParseUcq(std::string_view text, Alphabet* alphabet) {
  ParsedUcq out;
  size_t start = 0;
  while (true) {
    size_t bar = text.find('|', start);
    std::string_view slice = bar == std::string_view::npos
                                 ? text.substr(start)
                                 : text.substr(start, bar - start);
    PHOM_ASSIGN_OR_RETURN(ParsedQuery disjunct,
                          ParseDisjunct(slice, start, alphabet));
    out.ucq.disjuncts.push_back(std::move(disjunct.graph));
    out.variables.push_back(std::move(disjunct.variables));
    if (bar == std::string_view::npos) break;
    start = bar + 1;
  }
  return out;
}

std::string FormatConjunctiveQuery(const DiGraph& query,
                                   const Alphabet& alphabet,
                                   const std::vector<std::string>* names) {
  std::ostringstream os;
  auto name = [&](VertexId v) {
    if (names != nullptr && v < names->size()) return (*names)[v];
    return "v" + std::to_string(v);
  };
  bool first = true;
  for (const Edge& e : query.edges()) {
    if (!first) os << ", ";
    first = false;
    os << (e.label < alphabet.size() ? alphabet.Name(e.label)
                                     : "L" + std::to_string(e.label))
       << "(" << name(e.src) << ", " << name(e.dst) << ")";
  }
  return os.str();
}

std::string FormatUcq(const Ucq& ucq, const Alphabet& alphabet) {
  std::string out;
  bool first = true;
  for (const DiGraph& d : ucq.disjuncts) {
    if (!first) out += " | ";
    first = false;
    out += FormatConjunctiveQuery(d, alphabet);
  }
  return out;
}

}  // namespace phom
