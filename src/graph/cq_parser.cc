#include "src/graph/cq_parser.h"

#include <cctype>
#include <sstream>
#include <unordered_map>

namespace phom {

namespace {

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '\'';
}

struct Cursor {
  std::string_view text;
  size_t pos = 0;

  void SkipSpace() {
    while (pos < text.size() &&
           std::isspace(static_cast<unsigned char>(text[pos]))) {
      ++pos;
    }
  }
  bool AtEnd() {
    SkipSpace();
    return pos >= text.size();
  }
  bool Consume(char c) {
    SkipSpace();
    if (pos < text.size() && text[pos] == c) {
      ++pos;
      return true;
    }
    return false;
  }
  Result<std::string> Identifier() {
    SkipSpace();
    size_t start = pos;
    while (pos < text.size() && IsIdentChar(text[pos])) ++pos;
    if (pos == start) {
      return Status::Invalid("expected identifier at position " +
                             std::to_string(start));
    }
    return std::string(text.substr(start, pos - start));
  }
};

}  // namespace

Result<ParsedQuery> ParseConjunctiveQuery(std::string_view text,
                                          Alphabet* alphabet) {
  ParsedQuery out{DiGraph(0), {}};
  std::unordered_map<std::string, VertexId> var_ids;
  auto intern_var = [&](const std::string& name) {
    auto it = var_ids.find(name);
    if (it != var_ids.end()) return it->second;
    VertexId id = out.graph.AddVertex();
    var_ids.emplace(name, id);
    out.variables.push_back(name);
    return id;
  };

  Cursor cursor{text};
  bool first = true;
  while (!cursor.AtEnd()) {
    if (!first && !cursor.Consume(',')) {
      return Status::Invalid("expected ',' between atoms");
    }
    if (cursor.AtEnd()) break;  // allow trailing comma
    first = false;
    PHOM_ASSIGN_OR_RETURN(std::string relation, cursor.Identifier());
    if (!cursor.Consume('(')) {
      return Status::Invalid("expected '(' after relation " + relation);
    }
    PHOM_ASSIGN_OR_RETURN(std::string src, cursor.Identifier());
    if (!cursor.Consume(',')) {
      return Status::Invalid("binary atoms need two arguments: " + relation);
    }
    PHOM_ASSIGN_OR_RETURN(std::string dst, cursor.Identifier());
    if (!cursor.Consume(')')) {
      return Status::Invalid("expected ')' closing atom " + relation);
    }
    LabelId label = alphabet->Intern(relation);
    VertexId a = intern_var(src);
    VertexId b = intern_var(dst);
    // Repeated atoms are idempotent; a second label on the same pair is a
    // genuine error under the no-multi-edge semantics.
    if (std::optional<EdgeId> existing = out.graph.FindEdge(a, b)) {
      if (out.graph.edge(*existing).label != label) {
        return Status::Invalid("conflicting atoms on (" + src + ", " + dst +
                               "): the paper's graphs carry one label per "
                               "ordered pair");
      }
      continue;
    }
    PHOM_ASSIGN_OR_RETURN(EdgeId ignored, out.graph.AddEdge(a, b, label));
    (void)ignored;
  }
  if (out.graph.num_vertices() == 0) {
    return Status::Invalid("empty query");
  }
  return out;
}

std::string FormatConjunctiveQuery(const DiGraph& query,
                                   const Alphabet& alphabet,
                                   const std::vector<std::string>* names) {
  std::ostringstream os;
  auto name = [&](VertexId v) {
    if (names != nullptr && v < names->size()) return (*names)[v];
    return "v" + std::to_string(v);
  };
  bool first = true;
  for (const Edge& e : query.edges()) {
    if (!first) os << ", ";
    first = false;
    os << (e.label < alphabet.size() ? alphabet.Name(e.label)
                                     : "L" + std::to_string(e.label))
       << "(" << name(e.src) << ", " << name(e.dst) << ")";
  }
  return os.str();
}

}  // namespace phom
