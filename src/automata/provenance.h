#pragma once

#include <cstdint>

#include "src/automata/binary_encoding.h"
#include "src/automata/tree_automaton.h"
#include "src/circuits/circuit.h"
#include "src/util/numeric.h"
#include "src/util/result.h"

/// \file provenance.h
/// Provenance circuit of a deterministic bottom-up tree automaton on a
/// probabilistic tree ([Amarilli, Bourhis, Senellart; Prop. 3.1 of the
/// extended "Provenance circuits for trees and treelike instances"],
/// invoked by Prop. 5.4): for every tree node t and every state q reachable
/// at t, a gate computes "the run on the annotated world reaches state q at
/// t". The circuit is a d-DNNF by construction:
///   * AND gates combine the present/absent literal of t's own variable with
///     one gate from each child — disjoint variable sets (decomposability);
///   * OR gates range over distinct (left state, right state, presence)
///     triples — mutually exclusive because the automaton run on any fixed
///     world is unique (determinism).
/// Probability of acceptance = DnnfProbability of the root OR gate, with one
/// Boolean variable per tree node (ε-nodes are certain).

namespace phom {

struct ProvenanceCircuit {
  Circuit circuit;
  uint32_t root_gate = 0;
  /// Variable probabilities aligned with circuit variables (= tree nodes);
  /// wrap in BackendProbs<Num> (util/numeric.h) to evaluate the circuit in
  /// a non-exact backend.
  std::vector<Rational> var_probs;
  /// Σ over internal nodes of |reachable left states| × |reachable right
  /// states| — the work/size driver, reported by benchmarks.
  size_t state_pairs = 0;
  /// Max number of reachable states at any single node.
  size_t max_states_per_node = 0;
};

/// Builds the provenance circuit of `automaton` on `tree`. Branches with
/// probability-0/1 nodes are pruned (sound: those assignments have
/// probability 0).
ProvenanceCircuit BuildProvenanceCircuit(const BottomUpAutomaton& automaton,
                                         const EncodedPolytree& tree);

}  // namespace phom
