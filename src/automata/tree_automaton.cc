#include "src/automata/tree_automaton.h"

#include <algorithm>

#include "src/util/status.h"

namespace phom {

LongestRunAutomaton::LongestRunAutomaton(uint32_t m) : m_(m) {
  PHOM_CHECK_MSG(m >= 1, "use the trivial answer for m == 0");
}

uint32_t LongestRunAutomaton::Encode(uint32_t i, uint32_t j,
                                     uint32_t k) const {
  PHOM_CHECK(i <= m_ && j <= m_ && k <= m_);
  return (i * (m_ + 1) + j) * (m_ + 1) + k;
}

void LongestRunAutomaton::Decode(uint32_t state, uint32_t* i, uint32_t* j,
                                 uint32_t* k) const {
  *k = state % (m_ + 1);
  state /= m_ + 1;
  *j = state % (m_ + 1);
  *i = state / (m_ + 1);
}

uint32_t LongestRunAutomaton::LeafState(StepLabel label, bool present) const {
  if (!present || label == StepLabel::kEps) return Encode(0, 0, 0);
  if (label == StepLabel::kUp) return Encode(1, 0, 1);
  return Encode(0, 1, 1);  // kDown
}

uint32_t LongestRunAutomaton::Transition(StepLabel label, bool present,
                                         uint32_t left,
                                         uint32_t right) const {
  uint32_t i, j, k, i2, j2, k2;
  Decode(left, &i, &j, &k);
  Decode(right, &i2, &j2, &k2);
  auto cap = [this](uint32_t x) { return std::min(x, m_); };
  // Longest paths crossing the shared root vertex of the two halves.
  uint32_t cross = std::max(i + j2, i2 + j);
  uint32_t best = std::max({k, k2, cross});
  if (!present || label == StepLabel::kEps) {
    if (!present) {
      // The connecting edge is absent: nothing ends at / leaves the parent
      // vertex through this subtree, but paths inside it survive.
      return Encode(0, 0, cap(best));
    }
    // ε: both halves share their root vertex with the parent context.
    return Encode(std::max(i, i2), std::max(j, j2), cap(best));
  }
  if (label == StepLabel::kUp) {
    uint32_t up = cap(std::max(i, i2) + 1);
    return Encode(up, 0, cap(std::max(best, up)));
  }
  // kDown.
  uint32_t down = cap(std::max(j, j2) + 1);
  return Encode(0, down, cap(std::max(best, down)));
}

bool LongestRunAutomaton::IsAccepting(uint32_t state) const {
  uint32_t i, j, k;
  Decode(state, &i, &j, &k);
  return k == m_;
}

uint32_t RunOnWorld(const BottomUpAutomaton& automaton,
                    const EncodedPolytree& tree,
                    const std::vector<bool>& present) {
  PHOM_CHECK(present.size() == tree.nodes.size());
  std::vector<uint32_t> state(tree.nodes.size(), 0);
  for (size_t id = 0; id < tree.nodes.size(); ++id) {
    const EncodedNode& node = tree.nodes[id];
    if (node.IsLeaf()) {
      state[id] = automaton.LeafState(node.label, present[id]);
    } else {
      state[id] = automaton.Transition(node.label, present[id],
                                       state[node.left], state[node.right]);
    }
  }
  return state[tree.root];
}

uint32_t LongestDirectedPath(const DiGraph& g) {
  // DFS-free longest path in a DAG via topological order; PHOM_CHECKs
  // acyclicity (our callers pass forests).
  size_t n = g.num_vertices();
  std::vector<uint32_t> indegree(n, 0);
  for (const Edge& e : g.edges()) ++indegree[e.dst];
  std::vector<VertexId> order;
  order.reserve(n);
  for (VertexId v = 0; v < n; ++v) {
    if (indegree[v] == 0) order.push_back(v);
  }
  std::vector<uint32_t> depth(n, 0);
  uint32_t best = 0;
  for (size_t head = 0; head < order.size(); ++head) {
    VertexId v = order[head];
    for (EdgeId e : g.OutEdges(v)) {
      VertexId w = g.edge(e).dst;
      depth[w] = std::max(depth[w], depth[v] + 1);
      best = std::max(best, depth[w]);
      if (--indegree[w] == 0) order.push_back(w);
    }
  }
  PHOM_CHECK_MSG(order.size() == n, "LongestDirectedPath requires a DAG");
  return best;
}

}  // namespace phom
