#pragma once

#include <cstdint>
#include <vector>

#include "src/automata/binary_encoding.h"

/// \file tree_automaton.h
/// Bottom-up deterministic tree automata (Definition 5.2) over the encoded
/// binary trees of binary_encoding.h, whose node alphabet is
/// {ε, ↑, ↓} × {present, absent}.
///
/// LongestRunAutomaton is the automaton of Prop. 5.4: its states are triples
/// ⟨↑: i, ↓: j, Max: k⟩ with 0 ≤ i, j, k ≤ m meaning, for the sub-instance
/// represented by the subtree below a node rooted at instance vertex r:
///   i = length of the longest directed path ending at r,
///   j = length of the longest directed path starting at r,
///   k = length of the longest directed path anywhere (all capped at m).
/// Accepting states have k == m, i.e. the world contains a directed path of
/// length m — equivalently the 1WP query →^m has a homomorphism.

namespace phom {

class BottomUpAutomaton {
 public:
  virtual ~BottomUpAutomaton() = default;

  virtual uint32_t num_states() const = 0;
  virtual uint32_t LeafState(StepLabel label, bool present) const = 0;
  virtual uint32_t Transition(StepLabel label, bool present, uint32_t left,
                              uint32_t right) const = 0;
  virtual bool IsAccepting(uint32_t state) const = 0;
};

class LongestRunAutomaton final : public BottomUpAutomaton {
 public:
  /// Tests for a directed path with `m` >= 1 edges.
  explicit LongestRunAutomaton(uint32_t m);

  uint32_t num_states() const override { return (m_ + 1) * (m_ + 1) * (m_ + 1); }
  uint32_t LeafState(StepLabel label, bool present) const override;
  uint32_t Transition(StepLabel label, bool present, uint32_t left,
                      uint32_t right) const override;
  bool IsAccepting(uint32_t state) const override;

  uint32_t m() const { return m_; }

  /// State encoding helpers (exposed for tests).
  uint32_t Encode(uint32_t i, uint32_t j, uint32_t k) const;
  void Decode(uint32_t state, uint32_t* i, uint32_t* j, uint32_t* k) const;

 private:
  uint32_t m_;
};

/// Deterministic run on a fixed world: returns the root state. `present`
/// aligns with tree.nodes (see EncodedPolytree::WorldToNodePresence).
uint32_t RunOnWorld(const BottomUpAutomaton& automaton,
                    const EncodedPolytree& tree,
                    const std::vector<bool>& present);

/// Longest directed path (number of edges) in a plain directed forest/DAG —
/// reference implementation used to validate the automaton in tests.
uint32_t LongestDirectedPath(const DiGraph& g);

}  // namespace phom
