#include "src/automata/binary_encoding.h"

#include <algorithm>
#include <queue>

#include "src/graph/classify.h"

namespace phom {

std::vector<bool> EncodedPolytree::WorldToNodePresence(
    const std::vector<bool>& edge_kept) const {
  std::vector<bool> present(nodes.size(), true);
  for (size_t i = 0; i < nodes.size(); ++i) {
    if (nodes[i].source_edge != EncodedNode::kNoSourceEdge) {
      present[i] = edge_kept[nodes[i].source_edge];
    }
  }
  return present;
}

Result<EncodedPolytree> EncodePolytree(const ProbGraph& instance) {
  const DiGraph& g = instance.graph();
  if (!IsPolytree(g)) {
    return Status::Invalid("EncodePolytree requires a polytree instance");
  }

  size_t n = g.num_vertices();
  // Root the underlying tree at vertex 0; BFS to find parents.
  std::vector<int64_t> parent(n, -1);
  std::vector<EdgeId> parent_edge(n, 0);
  std::vector<VertexId> bfs_order;
  bfs_order.reserve(n);
  std::vector<bool> seen(n, false);
  std::queue<VertexId> queue;
  queue.push(0);
  seen[0] = true;
  while (!queue.empty()) {
    VertexId v = queue.front();
    queue.pop();
    bfs_order.push_back(v);
    auto visit = [&](VertexId w, EdgeId e) {
      if (!seen[w]) {
        seen[w] = true;
        parent[w] = v;
        parent_edge[w] = e;
        queue.push(w);
      }
    };
    for (EdgeId e : g.OutEdges(v)) visit(g.edge(e).dst, e);
    for (EdgeId e : g.InEdges(v)) visit(g.edge(e).src, e);
  }
  PHOM_CHECK(bfs_order.size() == n);

  // Tree children lists.
  std::vector<std::vector<VertexId>> children(n);
  for (VertexId v : bfs_order) {
    if (parent[v] >= 0) children[static_cast<VertexId>(parent[v])].push_back(v);
  }

  EncodedPolytree out;
  // Upper bound on nodes: one per vertex (its parent edge / pseudo-root)
  // plus one ε node per extra sibling and per only-child padding.
  out.nodes.reserve(2 * n + 2);

  auto add_node = [&out](StepLabel label, Rational prob, EdgeId source,
                         int32_t left, int32_t right) -> int32_t {
    PHOM_CHECK((left < 0) == (right < 0));
    EncodedNode node;
    node.label = label;
    node.prob = std::move(prob);
    node.source_edge = source;
    node.left = left;
    node.right = right;
    out.nodes.push_back(std::move(node));
    return static_cast<int32_t>(out.nodes.size() - 1);
  };

  // Binarize a list of already-encoded child node ids with an ε spine.
  auto binarize = [&](const std::vector<int32_t>& ids)
      -> std::pair<int32_t, int32_t> {
    if (ids.empty()) return {-1, -1};
    if (ids.size() == 1) {
      int32_t pad = add_node(StepLabel::kEps, Rational::One(),
                             EncodedNode::kNoSourceEdge, -1, -1);
      return {ids[0], pad};
    }
    // Right-leaning spine: (id0, (id1, (... (id_{k-2}, id_{k-1})))).
    int32_t spine = ids.back();
    for (size_t i = ids.size() - 1; i-- > 1;) {
      spine = add_node(StepLabel::kEps, Rational::One(),
                       EncodedNode::kNoSourceEdge, ids[i], spine);
    }
    return {ids[0], spine};
  };

  // Children before parents: process vertices in reverse BFS order.
  std::vector<int32_t> node_of_vertex(n, -1);
  for (size_t idx = n; idx-- > 0;) {
    VertexId v = bfs_order[idx];
    std::vector<int32_t> child_ids;
    child_ids.reserve(children[v].size());
    for (VertexId c : children[v]) {
      PHOM_CHECK(node_of_vertex[c] >= 0);
      child_ids.push_back(node_of_vertex[c]);
    }
    auto [left, right] = binarize(child_ids);
    StepLabel label = StepLabel::kEps;
    Rational prob = Rational::One();
    EdgeId source = EncodedNode::kNoSourceEdge;
    if (parent[v] >= 0) {
      EdgeId e = parent_edge[v];
      source = e;
      prob = instance.prob(e);
      // Edge directed v -> parent is an upward step; parent -> v downward.
      label = g.edge(e).src == v ? StepLabel::kUp : StepLabel::kDown;
    }
    node_of_vertex[v] = add_node(label, std::move(prob), source, left, right);
  }
  out.root = node_of_vertex[0];
  return out;
}

}  // namespace phom
