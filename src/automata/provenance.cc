#include "src/automata/provenance.h"

#include <algorithm>
#include <map>
#include <utility>
#include <vector>

namespace phom {

ProvenanceCircuit BuildProvenanceCircuit(const BottomUpAutomaton& automaton,
                                         const EncodedPolytree& tree) {
  ProvenanceCircuit out{Circuit(static_cast<uint32_t>(tree.nodes.size())),
                        0, {}, 0, 0};
  out.var_probs.reserve(tree.nodes.size());
  for (const EncodedNode& node : tree.nodes) out.var_probs.push_back(node.prob);

  // states[t]: reachable state -> gate id computing "run reaches this state".
  std::vector<std::map<uint32_t, uint32_t>> states(tree.nodes.size());

  for (size_t t = 0; t < tree.nodes.size(); ++t) {
    const EncodedNode& node = tree.nodes[t];
    bool can_be_present = !node.prob.is_zero();
    bool can_be_absent = !node.prob.is_one();
    std::map<uint32_t, std::vector<uint32_t>> disjuncts;  // state -> gates

    if (node.IsLeaf()) {
      if (can_be_present) {
        disjuncts[automaton.LeafState(node.label, true)].push_back(
            out.circuit.AddVar(static_cast<uint32_t>(t)));
      }
      if (can_be_absent) {
        disjuncts[automaton.LeafState(node.label, false)].push_back(
            out.circuit.AddNegVar(static_cast<uint32_t>(t)));
      }
    } else {
      const auto& left = states[node.left];
      const auto& right = states[node.right];
      out.state_pairs += left.size() * right.size();
      for (const auto& [ql, gl] : left) {
        for (const auto& [qr, gr] : right) {
          if (can_be_present) {
            uint32_t q = automaton.Transition(node.label, true, ql, qr);
            uint32_t lit = out.circuit.AddVar(static_cast<uint32_t>(t));
            disjuncts[q].push_back(out.circuit.AddAnd({lit, gl, gr}));
          }
          if (can_be_absent) {
            uint32_t q = automaton.Transition(node.label, false, ql, qr);
            uint32_t lit = out.circuit.AddNegVar(static_cast<uint32_t>(t));
            disjuncts[q].push_back(out.circuit.AddAnd({lit, gl, gr}));
          }
        }
      }
    }

    for (auto& [q, gates] : disjuncts) {
      uint32_t gate = gates.size() == 1 ? gates[0]
                                        : out.circuit.AddOr(std::move(gates));
      states[t].emplace(q, gate);
    }
    out.max_states_per_node =
        std::max(out.max_states_per_node, states[t].size());
  }

  std::vector<uint32_t> accepting;
  for (const auto& [q, gate] : states[tree.root]) {
    if (automaton.IsAccepting(q)) accepting.push_back(gate);
  }
  out.root_gate = accepting.size() == 1 ? accepting[0]
                                        : out.circuit.AddOr(std::move(accepting));
  return out;
}

}  // namespace phom
