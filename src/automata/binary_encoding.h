#pragma once

#include <cstdint>
#include <vector>

#include "src/graph/prob_graph.h"
#include "src/util/result.h"

/// \file binary_encoding.h
/// Encoding of a probabilistic polytree as a full binary probabilistic tree
/// (Appendix C of the paper, a left-child-right-sibling variant with ε-nodes).
///
/// The polytree is rooted at an arbitrary vertex. Every tree node represents
/// one edge of the polytree (label ↑ when the edge points from child to
/// parent, ↓ otherwise) or is a structural ε-node (always present,
/// probability 1). The node for edge (p → c or c → p) has as descendants the
/// binarized list of c's child edges; an ε "spine" chains sibling edges so
/// every node has exactly 0 or 2 children. Both children of any internal node
/// root sub-instances hanging off the same polytree vertex, which is the
/// invariant the automaton transitions of Prop. 5.4 rely on.
///
/// A possible world of the polytree corresponds to the annotated tree where
/// each node is "present" iff its source edge is kept (ε-nodes always).

namespace phom {

enum class StepLabel : uint8_t {
  kEps = 0,  ///< structural node: both halves root at the same vertex
  kUp = 1,   ///< source edge directed child → parent
  kDown = 2, ///< source edge directed parent → child
};

struct EncodedNode {
  int32_t left = -1;   ///< -1 for leaves (left == -1 iff right == -1)
  int32_t right = -1;
  StepLabel label = StepLabel::kEps;
  Rational prob = Rational::One();
  /// Source polytree edge, or kNoSourceEdge for ε-nodes.
  EdgeId source_edge = kNoSourceEdge;

  static constexpr EdgeId kNoSourceEdge = UINT32_MAX;

  bool IsLeaf() const { return left < 0; }
};

struct EncodedPolytree {
  std::vector<EncodedNode> nodes;  ///< children precede parents (topological)
  int32_t root = -1;

  /// Present-bits for the encoded nodes corresponding to a possible world of
  /// the source polytree (ε-nodes and certain edges present). Test helper.
  std::vector<bool> WorldToNodePresence(
      const std::vector<bool>& edge_kept) const;
};

/// Requires the instance to be a polytree (single connected component whose
/// underlying graph is a tree); rooted at vertex 0.
Result<EncodedPolytree> EncodePolytree(const ProbGraph& instance);

}  // namespace phom
