#pragma once

#include <memory>
#include <vector>

#include "src/core/case.h"
#include "src/core/solver.h"
#include "src/graph/ucq.h"
#include "src/lifted/plan.h"

/// \file lift.h
/// The Dalvi–Suciu lifted-inference compiler for UCQs (plan.h describes the
/// operator algebra). PrepareUcq is the UCQ twin of PrepareProblem: it
/// normalizes the union, keeps the single-CQ path BIT-IDENTICAL (a union
/// that normalizes to one disjunct is prepared exactly as a plain CQ, with
/// no lifting machinery touched), and compiles everything else into a
/// UcqEvalPlan whose leaves are ordinary prepared problems:
///
///   1. disjuncts are grouped by label overlap; label-disjoint groups have
///      edge-disjoint lineages, hence INDEPENDENT events → kIndependentUnion;
///   2. an entangled group is expanded by inclusion–exclusion over its
///      non-empty disjunct subsets (capped at kMaxEntangledDisjuncts), the
///      conjunction of Boolean CQs being the disjoint union of their pattern
///      graphs — degenerating to kExclusiveUnion when every cross term folds
///      to 0;
///   3. each subset conjunction is core-reduced (shatter.h), folded to a
///      constant when it is an easy fact against the instance (no hom → 0,
///      hom into the certain subgraph → 1), and split into label-disjoint
///      parts → kIndependentJoin over engine-solved leaves.
///
/// The plan is SAFE ("lifted") when every leaf lands in a PTIME cell of the
/// dichotomy; otherwise the SAME plan stays exact but carries a typed
/// not-liftable verdict and its hard leaves run the exponential fallback
/// engines — that IS the documented fallback route, not a separate code
/// path. Units are solved through SolvePrepared, so every unit honors
/// forced engines (force_engine/force_algorithm pass through, with the
/// "lifted-ucq" force itself stripped to avoid recursion), numeric
/// backends, cancellation, and stats exactly like a single-CQ solve.
///
/// SolveUcqUnit + CombineUcqUnitResults are the shared halves used by BOTH
/// the serial engine and the serve executor's per-unit fan-out — one code
/// path, so parallel UCQ answers are bit-identical to serial ones.

namespace phom {
class Engine;
}

namespace phom::lifted {

/// Cap on the disjuncts of one entangled (label-overlapping) group: the
/// inclusion–exclusion expansion enumerates 2^k − 1 subset conjunctions.
/// A group beyond the cap yields an unsolvable plan (root < 0) whose solve
/// reports NotSupported — a resource guard in the spirit of
/// FallbackOptions' world-count limits.
inline constexpr size_t kMaxEntangledDisjuncts = 12;

/// Prepares a UCQ against an instance. The result either carries an
/// immediate answer (trivial shells), is a plain single-CQ PreparedProblem
/// (union normalized to one disjunct — bit-identical to PrepareProblem),
/// or has `ucq` set with the compiled plan (then analysis.algorithm is
/// Algorithm::kLiftedUcq and auto dispatch routes to the lifted engine).
PreparedProblem PrepareUcq(const Ucq& ucq, const ProbGraph& instance);

/// PrepareUcq with the instance-side work delegated to `provider` — the
/// amortization hook used by EvalSession. The union context is built for
/// the UNION of the disjuncts' label sets; each leaf additionally gets its
/// own label-restricted context through the same provider (cache hits for
/// repeated label sets).
PreparedProblem PrepareUcqWithProvider(const Ucq& ucq,
                                       size_t instance_num_vertices,
                                       const InstanceContextProvider& provider);

/// Solves plan unit `unit_index` of a prepared UCQ through the ordinary
/// engine registry (SolvePrepared). Checks options.cancel first; strips a
/// forced "lifted-ucq" selection (units are CQs) and passes every other
/// force through. PHOM_CHECKs that `prepared` carries a UCQ plan.
Result<SolveResult> SolveUcqUnit(const PreparedProblem& prepared,
                                 size_t unit_index,
                                 const SolveOptions& options);

/// Merges per-unit results (aligned with plan unit indices) into the final
/// UCQ answer: first failing unit's status in index order, else the plan
/// evaluated over the unit values in options.numeric's backend, with summed
/// stats and the ucq_* provenance fields filled. Shared by the serial
/// lifted engine and the executor's parallel merge (bit-identity).
Result<SolveResult> CombineUcqUnitResults(const PreparedProblem& prepared,
                                          const SolveOptions& options,
                                          std::vector<Result<SolveResult>> units);

/// The "lifted-ucq" engine registered by RegisterDefaultEngines: serial
/// unit solves + CombineUcqUnitResults. componentwise() is true — units are
/// the fan-out granularity the serve layer parallelizes over.
std::unique_ptr<Engine> MakeLiftedUcqEngine();

}  // namespace phom::lifted
