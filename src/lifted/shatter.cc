#include "src/lifted/shatter.h"

#include "src/core/case.h"
#include "src/graph/builders.h"
#include "src/hom/backtrack.h"

namespace phom::lifted {

namespace {

DiGraph RemoveEdge(const DiGraph& g, EdgeId skip) {
  DiGraph out(g.num_vertices());
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    if (e == skip) continue;
    const Edge& edge = g.edge(e);
    AddEdgeOrDie(&out, edge.src, edge.dst, edge.label);
  }
  return out;
}

}  // namespace

DiGraph CoreReduceQuery(const DiGraph& query) {
  DiGraph g = query;
  bool changed = true;
  while (changed && g.num_edges() > 1) {
    changed = false;
    for (EdgeId e = 0; e < g.num_edges(); ++e) {
      DiGraph without = RemoveEdge(g, e);
      Result<bool> maps = HasHomomorphism(g, without);
      if (maps.ok() && *maps) {
        g = std::move(without);
        changed = true;
        break;  // edge ids shifted; rescan
      }
    }
  }
  return DropIsolatedVertices(g);
}

DiGraph CertainSubgraph(const ProbGraph& instance) {
  const DiGraph& g = instance.graph();
  DiGraph out(g.num_vertices());
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    if (!instance.prob(e).is_one()) continue;
    const Edge& edge = g.edge(e);
    AddEdgeOrDie(&out, edge.src, edge.dst, edge.label);
  }
  return out;
}

EasyFact ClassifyEasyFact(const DiGraph& query, const ProbGraph& instance) {
  Result<bool> any = HasHomomorphism(query, instance.graph());
  if (any.ok() && !*any) return EasyFact::kNever;
  Result<bool> certain = HasHomomorphism(query, CertainSubgraph(instance));
  if (certain.ok() && *certain) return EasyFact::kAlways;
  return EasyFact::kProbabilistic;
}

}  // namespace phom::lifted
