#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/core/case.h"
#include "src/graph/ucq.h"
#include "src/util/rational.h"

/// \file plan.h
/// The lifted evaluation plan for a UCQ: a small algebraic circuit over
/// probabilities, compiled once per (query, instance-context) by
/// lifted::CompileUcq (lift.h) and evaluated under any NumericBackend.
///
/// The operator vocabulary is the Dalvi–Suciu safe-plan algebra specialized
/// to Boolean CQs on tuple-independent edge facts:
///
///   * kIndependentUnion  — P(∨ children), children over pairwise DISJOINT
///     label sets (edge-disjoint lineages ⇒ independent events):
///     1 − Π (1 − p_i).
///   * kIndependentJoin   — P(∧ children) for label-disjoint parts: Π p_i.
///   * kExclusiveUnion    — P(∨ children) for pairwise-EXCLUSIVE children
///     (every pairwise conjunction was proved unsatisfiable): Σ p_i. For
///     constant-free monotone patterns this split degenerates — satisfiable
///     disjuncts always co-occur in the full world — so the compiler only
///     emits it when inclusion–exclusion's cross terms all folded to 0.
///   * kInclusionExclusion — P(∨ children) with no independence to exploit:
///     the signed sum Σ sign_S · P(∧_{j∈S} Q_j) over non-empty subsets,
///     where a conjunction of Boolean CQs is the disjoint union of their
///     pattern graphs. Partial sums may leave [0, 1]; the interval backend
///     must accumulate them UNCLAMPED (util/interval_double.h WideAdd/
///     WideSub) and clamp only the node's final value.
///   * kLeaf     — one prepared CQ solved by the ordinary engine registry.
///   * kConstant — a probability decided at compile time (shattering of easy
///     facts: a pattern with no homomorphism into the instance graph is 0 in
///     every world; one matched entirely by certain edges is 1).
///
/// Nodes are stored children-before-parents, so a single forward pass
/// evaluates the circuit.

namespace phom::lifted {

enum class LiftedOp : uint8_t {
  kConstant = 0,
  kLeaf,
  kIndependentUnion,
  kIndependentJoin,
  kExclusiveUnion,
  kInclusionExclusion,
};

const char* ToString(LiftedOp op);

struct LiftedNode {
  LiftedOp op = LiftedOp::kConstant;
  /// Indices into UcqEvalPlan::nodes, all < this node's own index.
  std::vector<int32_t> children;
  /// kInclusionExclusion only: ±1 per child, aligned with `children`.
  std::vector<int8_t> signs;
  /// kConstant only.
  Rational constant;
  /// kLeaf only: index into UcqEvalPlan::units.
  int32_t unit = -1;
};

/// One engine-solved subproblem of the plan: the conjunction graph (already
/// core-reduced) prepared against its own label-restricted context. Units
/// are independent of each other and are the serve executor's fan-out
/// granularity for UCQ requests.
struct LiftedUnit {
  DiGraph query;
  PreparedProblem prepared;
  /// Source disjunct indices (into PreparedUcq::normalized) whose
  /// conjunction this unit solves — provenance only.
  std::vector<uint32_t> disjuncts;
};

struct UcqEvalPlan {
  /// True when the compiler produced a SAFE plan: every leaf landed in a
  /// PTIME cell of the dichotomy (the whole evaluation is then polynomial).
  /// False = "not liftable": the plan is still exact, but at least one leaf
  /// is solved by an exponential fallback/lineage engine.
  bool lifted = false;
  /// Why the plan is not safe (empty when `lifted`), e.g. the first leaf
  /// cell that fell outside the dichotomy's PTIME cells.
  std::string not_liftable_reason;
  std::vector<LiftedNode> nodes;  ///< children-before-parents order
  int32_t root = -1;
  std::vector<LiftedUnit> units;
};

/// The UCQ half of a PreparedProblem (case.h forward-declares this): the
/// normalized union, its fingerprint, and the compiled plan.
struct PreparedUcq {
  Ucq normalized;
  uint64_t fingerprint = 0;
  UcqEvalPlan plan;
};

/// Human-readable plan rendering, e.g.
///   "iunion(ijoin(L0, L1), ie(+L2, +L3, -L4))"
/// with L<i> naming units and literal constants inline. Used by docs/tests.
std::string FormatLiftedPlan(const UcqEvalPlan& plan);

}  // namespace phom::lifted
