#include "src/lifted/plan.h"

namespace phom::lifted {

const char* ToString(LiftedOp op) {
  switch (op) {
    case LiftedOp::kConstant: return "const";
    case LiftedOp::kLeaf: return "leaf";
    case LiftedOp::kIndependentUnion: return "iunion";
    case LiftedOp::kIndependentJoin: return "ijoin";
    case LiftedOp::kExclusiveUnion: return "xunion";
    case LiftedOp::kInclusionExclusion: return "ie";
  }
  return "?";
}

namespace {

void FormatNode(const UcqEvalPlan& plan, int32_t index, std::string* out) {
  const LiftedNode& node = plan.nodes[static_cast<size_t>(index)];
  switch (node.op) {
    case LiftedOp::kConstant:
      *out += node.constant.ToString();
      return;
    case LiftedOp::kLeaf:
      *out += "L" + std::to_string(node.unit);
      return;
    default:
      break;
  }
  *out += ToString(node.op);
  *out += '(';
  for (size_t i = 0; i < node.children.size(); ++i) {
    if (i > 0) *out += ", ";
    if (node.op == LiftedOp::kInclusionExclusion) {
      *out += node.signs[i] >= 0 ? '+' : '-';
    }
    FormatNode(plan, node.children[i], out);
  }
  *out += ')';
}

}  // namespace

std::string FormatLiftedPlan(const UcqEvalPlan& plan) {
  if (plan.root < 0) return "(empty)";
  std::string out;
  FormatNode(plan, plan.root, &out);
  return out;
}

}  // namespace phom::lifted
