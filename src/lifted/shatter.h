#pragma once

#include "src/graph/digraph.h"
#include "src/graph/prob_graph.h"

/// \file shatter.h
/// Query-side simplification steps of the lifted compiler (lift.h): the
/// homomorphism-core reduction of conjunction patterns, and the "easy
/// probabilistic fact" classification that lets the compiler fold a leaf to
/// a constant before any engine runs (NeuroLang's shatter_easy_probfacts
/// plays the analogous role in its Dalvi–Suciu pipeline).

namespace phom::lifted {

/// Homomorphism-core reduction: repeatedly removes an edge e such that a
/// homomorphism Q → Q∖e exists (then Q ≡ Q∖e as a Boolean query — the
/// identity maps Q∖e into Q, and composition preserves every match), then
/// drops isolated vertices. Conjunctions built as disjoint unions routinely
/// shrink here: Q_i ⊔ Q_j collapses toward the core whenever the disjuncts
/// overlap homomorphically. Deterministic (edges are scanned in id order);
/// a hom test that exhausts its backtracking budget keeps the edge (sound —
/// reduction is an optimization, never a requirement).
DiGraph CoreReduceQuery(const DiGraph& query);

/// The subgraph of certain edges (probability exactly 1). Vertex ids are
/// shared with `instance`.
DiGraph CertainSubgraph(const ProbGraph& instance);

/// Compile-time verdict for one conjunction pattern against the instance.
enum class EasyFact : uint8_t {
  /// A homomorphism into the CERTAIN subgraph exists: the pattern matches
  /// every possible world, P = 1.
  kAlways = 0,
  /// No homomorphism into the full instance graph exists: no world can
  /// match, P = 0.
  kNever,
  /// Genuinely probabilistic — solve it.
  kProbabilistic,
};

/// Classifies `query` against `instance`. Conservative: hom tests that
/// exhaust their budget report kProbabilistic (folding needs proof).
EasyFact ClassifyEasyFact(const DiGraph& query, const ProbGraph& instance);

}  // namespace phom::lifted
