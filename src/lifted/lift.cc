#include "src/lifted/lift.h"

#include <algorithm>
#include <bit>
#include <string>
#include <utility>

#include "src/core/engine.h"
#include "src/graph/builders.h"
#include "src/graph/classify.h"
#include "src/lifted/shatter.h"
#include "src/util/numeric.h"

namespace phom::lifted {

namespace {

/// Subgraph induced by `vertices`; edges keep the parent graph's id order,
/// so extraction is deterministic.
DiGraph InducedSubgraph(const DiGraph& g,
                        const std::vector<VertexId>& vertices) {
  std::vector<int64_t> remap(g.num_vertices(), -1);
  for (size_t i = 0; i < vertices.size(); ++i) {
    remap[vertices[i]] = static_cast<int64_t>(i);
  }
  DiGraph out(vertices.size());
  for (const Edge& e : g.edges()) {
    if (remap[e.src] < 0) continue;  // component edges never cross the cut
    AddEdgeOrDie(&out, static_cast<VertexId>(remap[e.src]),
                 static_cast<VertexId>(remap[e.dst]), e.label);
  }
  return out;
}

class UnionFind {
 public:
  explicit UnionFind(size_t n) : parent_(n) {
    for (size_t i = 0; i < n; ++i) parent_[i] = i;
  }
  size_t Find(size_t x) {
    while (parent_[x] != x) x = parent_[x] = parent_[parent_[x]];
    return x;
  }
  void Union(size_t a, size_t b) {
    a = Find(a);
    b = Find(b);
    // Smaller root wins, so group identity is the smallest member index.
    if (a < b) parent_[b] = a;
    else if (b < a) parent_[a] = b;
  }

 private:
  std::vector<size_t> parent_;
};

/// Groups items by label overlap (transitively): items sharing any label land
/// in the same group. Groups are ordered by smallest member; members are
/// ascending. Label-disjoint groups have edge-disjoint lineages in the
/// tuple-independent instance — the independence the lifted operators exploit.
std::vector<std::vector<uint32_t>> GroupByLabelOverlap(
    const std::vector<std::vector<LabelId>>& label_sets) {
  UnionFind uf(label_sets.size());
  std::vector<std::pair<LabelId, uint32_t>> first_owner;
  for (uint32_t i = 0; i < label_sets.size(); ++i) {
    for (LabelId label : label_sets[i]) {
      bool seen = false;
      for (const auto& [l, owner] : first_owner) {
        if (l == label) {
          uf.Union(owner, i);
          seen = true;
          break;
        }
      }
      if (!seen) first_owner.emplace_back(label, i);
    }
  }
  std::vector<std::vector<uint32_t>> groups;
  std::vector<int64_t> group_of(label_sets.size(), -1);
  for (uint32_t i = 0; i < label_sets.size(); ++i) {
    const size_t root = uf.Find(i);
    if (group_of[root] < 0) {
      group_of[root] = static_cast<int64_t>(groups.size());
      groups.emplace_back();
    }
    groups[static_cast<size_t>(group_of[root])].push_back(i);
  }
  return groups;
}

/// The compiler's working state: builds plan nodes children-before-parents,
/// deduplicates leaves by canonical pattern encoding, and records the first
/// reason the plan is not a safe ("lifted") one.
struct PlanBuilder {
  const std::vector<DiGraph>& disjuncts;
  size_t instance_num_vertices;
  const InstanceContextProvider& provider;
  /// The union-label-restricted instance, for the easy-fact folds.
  const ProbGraph& restricted;

  UcqEvalPlan plan;
  std::vector<std::pair<std::vector<uint64_t>, int32_t>> leaf_memo;
  std::string cap_failure;

  int32_t AddNode(LiftedNode node) {
    plan.nodes.push_back(std::move(node));
    return static_cast<int32_t>(plan.nodes.size()) - 1;
  }

  int32_t AddConstant(Rational value) {
    LiftedNode node;
    node.op = LiftedOp::kConstant;
    node.constant = std::move(value);
    return AddNode(std::move(node));
  }

  bool IsConstZero(int32_t index) const {
    const LiftedNode& node = plan.nodes[static_cast<size_t>(index)];
    return node.op == LiftedOp::kConstant && node.constant.is_zero();
  }

  /// One engine-solved leaf for `graph` (a label-disjoint part of a subset
  /// conjunction), deduplicated across the whole plan: identical patterns
  /// recur across inclusion–exclusion subsets and must be solved once.
  int32_t MakeLeaf(DiGraph graph, const std::vector<uint32_t>& sources) {
    std::vector<uint64_t> key = CanonicalDisjunctKey(graph);
    for (const auto& [memo_key, memo_node] : leaf_memo) {
      if (memo_key != key) continue;
      const LiftedNode& node = plan.nodes[static_cast<size_t>(memo_node)];
      if (node.op == LiftedOp::kLeaf) {
        std::vector<uint32_t>& dst =
            plan.units[static_cast<size_t>(node.unit)].disjuncts;
        dst.insert(dst.end(), sources.begin(), sources.end());
        std::sort(dst.begin(), dst.end());
        dst.erase(std::unique(dst.begin(), dst.end()), dst.end());
      }
      return memo_node;
    }
    PreparedProblem leaf =
        PrepareProblemWithProvider(graph, instance_num_vertices, provider);
    int32_t node_index;
    if (leaf.immediate.has_value()) {
      node_index = AddConstant(*leaf.immediate);
    } else {
      if (!leaf.analysis.tractable && plan.not_liftable_reason.empty()) {
        plan.not_liftable_reason =
            "unit " + std::to_string(plan.units.size()) +
            " falls in #P-hard cell " + leaf.analysis.cell + " (" +
            leaf.analysis.proposition + "); it runs an exponential engine";
      }
      LiftedNode node;
      node.op = LiftedOp::kLeaf;
      node.unit = static_cast<int32_t>(plan.units.size());
      LiftedUnit unit;
      unit.query = std::move(graph);
      unit.prepared = std::move(leaf);
      unit.disjuncts = sources;
      plan.units.push_back(std::move(unit));
      node_index = AddNode(std::move(node));
    }
    leaf_memo.emplace_back(std::move(key), node_index);
    return node_index;
  }

  /// Compiles the conjunction ∧_{i∈subset} Q_i: disjoint union of the
  /// pattern graphs → core reduction → easy-fact folds → independent join
  /// over label-disjoint parts.
  int32_t CompileConjunction(const std::vector<uint32_t>& subset) {
    DiGraph conj;
    if (subset.size() == 1) {
      conj = disjuncts[subset[0]];
    } else {
      std::vector<DiGraph> graphs;
      graphs.reserve(subset.size());
      for (uint32_t i : subset) graphs.push_back(disjuncts[i]);
      conj = DisjointUnion(graphs);
    }
    conj = CoreReduceQuery(conj);

    std::vector<DiGraph> parts;
    std::vector<std::vector<VertexId>> comps = ConnectedComponents(conj);
    if (comps.size() <= 1) {
      parts.push_back(std::move(conj));
    } else {
      std::vector<DiGraph> comp_graphs;
      std::vector<std::vector<LabelId>> comp_labels;
      comp_graphs.reserve(comps.size());
      comp_labels.reserve(comps.size());
      for (const std::vector<VertexId>& c : comps) {
        comp_graphs.push_back(InducedSubgraph(conj, c));
        comp_labels.push_back(comp_graphs.back().UsedLabels());
      }
      for (const std::vector<uint32_t>& group :
           GroupByLabelOverlap(comp_labels)) {
        if (group.size() == 1) {
          parts.push_back(std::move(comp_graphs[group[0]]));
        } else {
          std::vector<DiGraph> members;
          members.reserve(group.size());
          for (uint32_t ci : group) members.push_back(std::move(comp_graphs[ci]));
          parts.push_back(DisjointUnion(members));
        }
      }
    }

    // Easy-fact folds BEFORE any unit is created: a provably-never part
    // zeroes the conjunction; certain parts are factors of 1.
    std::vector<EasyFact> facts;
    facts.reserve(parts.size());
    for (const DiGraph& part : parts) {
      facts.push_back(ClassifyEasyFact(part, restricted));
      if (facts.back() == EasyFact::kNever) {
        return AddConstant(Rational::Zero());
      }
    }
    std::vector<int32_t> children;
    for (size_t i = 0; i < parts.size(); ++i) {
      if (facts[i] == EasyFact::kAlways) continue;
      children.push_back(MakeLeaf(std::move(parts[i]), subset));
    }
    if (children.empty()) return AddConstant(Rational::One());
    if (children.size() == 1) return children[0];
    LiftedNode node;
    node.op = LiftedOp::kIndependentJoin;
    node.children = std::move(children);
    return AddNode(std::move(node));
  }

  /// Compiles one entangled group: a single disjunct directly, otherwise
  /// inclusion–exclusion over its non-empty subsets in ascending mask order
  /// (sign (−1)^{|S|+1}), pruning subset conjunctions that folded to 0.
  /// When every cross term folded to 0 the signed sum degenerates to a plain
  /// sum over the singletons: kExclusiveUnion. Returns -1 past the cap.
  int32_t CompileGroup(const std::vector<uint32_t>& group) {
    if (group.size() == 1) return CompileConjunction(group);
    if (group.size() > kMaxEntangledDisjuncts) {
      cap_failure = "inclusion-exclusion over " +
                    std::to_string(group.size()) +
                    " entangled disjuncts exceeds the cap of " +
                    std::to_string(kMaxEntangledDisjuncts);
      return -1;
    }
    const uint32_t k = static_cast<uint32_t>(group.size());
    LiftedNode node;
    bool any_cross = false;
    for (uint32_t mask = 1; mask < (1u << k); ++mask) {
      std::vector<uint32_t> subset;
      for (uint32_t b = 0; b < k; ++b) {
        if (mask & (1u << b)) subset.push_back(group[b]);
      }
      const int32_t child = CompileConjunction(subset);
      if (IsConstZero(child)) continue;  // contributes 0 under either sign
      node.children.push_back(child);
      node.signs.push_back(std::popcount(mask) % 2 == 1 ? int8_t{1}
                                                        : int8_t{-1});
      if (std::popcount(mask) >= 2) any_cross = true;
    }
    if (node.children.empty()) return AddConstant(Rational::Zero());
    if (node.children.size() == 1 && node.signs[0] > 0) {
      return node.children[0];
    }
    node.op = any_cross ? LiftedOp::kInclusionExclusion
                        : LiftedOp::kExclusiveUnion;
    return AddNode(std::move(node));
  }

  void Compile() {
    std::vector<std::vector<LabelId>> label_sets;
    label_sets.reserve(disjuncts.size());
    for (const DiGraph& d : disjuncts) label_sets.push_back(d.UsedLabels());
    std::vector<int32_t> children;
    for (const std::vector<uint32_t>& group : GroupByLabelOverlap(label_sets)) {
      const int32_t node = CompileGroup(group);
      if (node < 0) {
        plan.nodes.clear();
        plan.units.clear();
        plan.root = -1;
        plan.lifted = false;
        plan.not_liftable_reason = cap_failure;
        return;
      }
      children.push_back(node);
    }
    if (children.size() == 1) {
      plan.root = children[0];
    } else {
      LiftedNode node;
      node.op = LiftedOp::kIndependentUnion;
      node.children = std::move(children);
      plan.root = AddNode(std::move(node));
    }
    plan.lifted = plan.not_liftable_reason.empty();
  }
};

Status CheckUcqPlan(const PreparedUcq& ucq) {
  if (ucq.plan.root < 0) {
    return Status::NotSupported(ucq.plan.not_liftable_reason.empty()
                                    ? std::string("UCQ plan compilation failed")
                                    : ucq.plan.not_liftable_reason);
  }
  return Status::OK();
}

/// Forward evaluation of the plan circuit over per-unit leaf values, in one
/// backend. The SAME function runs for the serial engine and the executor
/// merge — the bit-identity guarantee is this sharing.
template <class Num>
Num EvaluatePlan(const UcqEvalPlan& plan, const std::vector<Num>& units) {
  using Ops = NumericOps<Num>;
  std::vector<Num> value(plan.nodes.size(), Ops::Zero());
  for (size_t i = 0; i < plan.nodes.size(); ++i) {
    const LiftedNode& node = plan.nodes[i];
    switch (node.op) {
      case LiftedOp::kConstant:
        value[i] = Ops::From(node.constant);
        break;
      case LiftedOp::kLeaf:
        value[i] = units[static_cast<size_t>(node.unit)];
        break;
      case LiftedOp::kIndependentUnion: {
        Num none = Ops::One();
        for (int32_t c : node.children) {
          none *= Ops::Complement(value[static_cast<size_t>(c)]);
        }
        value[i] = Ops::Complement(none);
        break;
      }
      case LiftedOp::kIndependentJoin: {
        Num all = Ops::One();
        for (int32_t c : node.children) all *= value[static_cast<size_t>(c)];
        value[i] = all;
        break;
      }
      case LiftedOp::kExclusiveUnion:
      case LiftedOp::kInclusionExclusion: {
        // Signed partial sums may leave [0, 1]; only the final node value is
        // an event probability. The interval backend therefore accumulates
        // UNCLAMPED (WideAdd/WideSub) and clamps once at the end.
        if constexpr (std::is_same_v<Num, IntervalDouble>) {
          // Compensated signed accumulation (interval_double.h): the lower
          // endpoint collects +lo for added terms and −hi for subtracted
          // ones (crosswise, as WideSub pairs endpoints), the upper the
          // mirror — each through a TwoSum-compensated directed
          // accumulator, so an n-term alternating sum costs residual-sized
          // ulps instead of n full outward roundings per endpoint.
          interval_internal::DownSum lo;
          interval_internal::UpSum hi;
          for (size_t j = 0; j < node.children.size(); ++j) {
            const IntervalDouble& v = value[static_cast<size_t>(node.children[j])];
            if (node.signs[j] >= 0) {
              lo.Add(v.lo);
              hi.Add(v.hi);
            } else {
              lo.Add(-v.hi);
              hi.Add(-v.lo);
            }
          }
          value[i] = IntervalDouble(lo.Value(), hi.Value()).ClampedToUnit();
        } else if constexpr (std::is_same_v<Num, Rational>) {
          Rational acc = Rational::Zero();
          for (size_t j = 0; j < node.children.size(); ++j) {
            const Rational& v = value[static_cast<size_t>(node.children[j])];
            if (node.signs[j] >= 0) acc += v;
            else acc -= v;
          }
          value[i] = std::move(acc);
        } else {
          double acc = 0.0;
          for (size_t j = 0; j < node.children.size(); ++j) {
            const double v = value[static_cast<size_t>(node.children[j])];
            acc = node.signs[j] >= 0 ? acc + v : acc - v;
          }
          value[i] = std::min(1.0, std::max(0.0, acc));
        }
        break;
      }
    }
  }
  return value[static_cast<size_t>(plan.root)];
}

class LiftedUcqEngine : public Engine {
 public:
  std::string_view name() const override { return "lifted-ucq"; }
  Algorithm algorithm() const override { return Algorithm::kLiftedUcq; }
  bool componentwise() const override { return true; }
  bool Applies(const CaseAnalysis& analysis) const override {
    return analysis.algorithm == Algorithm::kLiftedUcq;
  }
  Result<EngineAnswer> Solve(const PreparedProblem& prepared,
                             const SolveOptions& options,
                             SolveStats* stats) const override {
    if (prepared.ucq == nullptr) {
      return Status::NotSupported(
          "lifted-ucq requires a UCQ prepared by lifted::PrepareUcq");
    }
    PHOM_RETURN_NOT_OK(CheckUcqPlan(*prepared.ucq));
    const size_t n = prepared.ucq->plan.units.size();
    std::vector<Result<SolveResult>> parts;
    parts.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      Result<SolveResult> unit = SolveUcqUnit(prepared, i, options);
      // Stopping at the first failure in index order returns exactly the
      // status CombineUcqUnitResults would pick from complete results.
      if (!unit.ok()) return unit.status();
      parts.push_back(std::move(unit));
    }
    PHOM_ASSIGN_OR_RETURN(
        SolveResult combined,
        CombineUcqUnitResults(prepared, options, std::move(parts)));
    stats->components += combined.stats.components;
    stats->fallback_components += combined.stats.fallback_components;
    stats->worlds += combined.stats.worlds;
    stats->hom_tests += combined.stats.hom_tests;
    stats->lineage_clauses += combined.stats.lineage_clauses;
    stats->circuit_gates += combined.stats.circuit_gates;
    stats->match_ends += combined.stats.match_ends;
    stats->ucq_disjuncts = combined.stats.ucq_disjuncts;
    stats->ucq_units = combined.stats.ucq_units;
    stats->ucq_verdict = combined.stats.ucq_verdict;
    EngineAnswer out;
    out.backend = combined.numeric;
    out.exact = std::move(combined.probability);
    out.approx = combined.probability_double;
    out.bound = combined.bound;
    return out;
  }
};

}  // namespace

PreparedProblem PrepareUcqWithProvider(
    const Ucq& ucq, size_t instance_num_vertices,
    const InstanceContextProvider& provider) {
  PreparedProblem out{DiGraph(0), nullptr, std::nullopt, {}};
  if (ucq.disjuncts.empty()) {
    // The empty union is constant false.
    out.analysis.algorithm = Algorithm::kTrivial;
    out.analysis.tractable = true;
    out.analysis.proposition = "trivial (empty union)";
    out.immediate = Rational::Zero();
    return out;
  }
  Ucq normalized = NormalizeUcq(ucq);
  if (normalized.disjuncts.size() == 1) {
    // Bit-identical single-CQ path: no lifting machinery runs at all.
    return PrepareProblemWithProvider(normalized.disjuncts[0],
                                      instance_num_vertices, provider);
  }
  // >= 2 disjuncts survived subsumption, so every one has >= 1 edge after
  // dropping isolated vertices: an effectively-edgeless disjunct has a
  // homomorphism into every non-empty disjunct and would have subsumed them
  // all, collapsing the union to a single disjunct above.
  if (instance_num_vertices == 0) {
    out.analysis.algorithm = Algorithm::kTrivial;
    out.analysis.tractable = true;
    out.analysis.proposition = "trivial (empty instance)";
    out.immediate = Rational::Zero();
    return out;
  }
  // Drop isolated disjunct vertices (sound: the instance is non-empty) and
  // re-normalize, so the stored union, its fingerprint, and the compiler all
  // see the same cleaned canonical form.
  Ucq cleaned;
  cleaned.disjuncts.reserve(normalized.disjuncts.size());
  for (const DiGraph& d : normalized.disjuncts) {
    cleaned.disjuncts.push_back(DropIsolatedVertices(d));
  }
  normalized = NormalizeUcq(cleaned);
  if (normalized.disjuncts.size() == 1) {
    // Only reachable when a hom test's budget behaved differently on the
    // cleaned graphs; defensively keep the single-CQ contract.
    return PrepareProblemWithProvider(normalized.disjuncts[0],
                                      instance_num_vertices, provider);
  }

  auto prepared_ucq = std::make_shared<PreparedUcq>();
  prepared_ucq->normalized = std::move(normalized);
  prepared_ucq->fingerprint = UcqFingerprint(prepared_ucq->normalized);
  out.context = provider(prepared_ucq->normalized.UsedLabels());
  PHOM_CHECK_MSG(out.context != nullptr, "context provider returned null");

  PlanBuilder builder{prepared_ucq->normalized.disjuncts,
                      instance_num_vertices, provider, out.context->instance};
  builder.Compile();
  prepared_ucq->plan = std::move(builder.plan);

  out.analysis.algorithm = Algorithm::kLiftedUcq;
  out.analysis.tractable = prepared_ucq->plan.lifted;
  out.analysis.query_class =
      Classify(DisjointUnion(prepared_ucq->normalized.disjuncts));
  out.analysis.instance_class = out.context->instance_class;
  out.analysis.cell =
      "PHomUCQ(" + std::to_string(prepared_ucq->normalized.disjuncts.size()) +
      " disjuncts, " + TableClassLabel(out.analysis.instance_class) + ")";
  out.analysis.proposition =
      prepared_ucq->plan.lifted
          ? "Dalvi-Suciu safe plan"
          : "not liftable: " + prepared_ucq->plan.not_liftable_reason;
  out.query = prepared_ucq->normalized.disjuncts[0];
  out.ucq = std::move(prepared_ucq);
  return out;
}

PreparedProblem PrepareUcq(const Ucq& ucq, const ProbGraph& instance) {
  return PrepareUcqWithProvider(
      ucq, instance.num_vertices(),
      [&instance](const std::vector<LabelId>& labels) {
        return BuildInstanceContext(instance, labels);
      });
}

Result<SolveResult> SolveUcqUnit(const PreparedProblem& prepared,
                                 size_t unit_index,
                                 const SolveOptions& options) {
  PHOM_CHECK_MSG(prepared.ucq != nullptr &&
                     unit_index < prepared.ucq->plan.units.size(),
                 "SolveUcqUnit outside a prepared UCQ");
  // Same yield point as the per-component loops: an interrupted UCQ solve
  // fails at a unit boundary whether serial or fanned out.
  if (options.cancel != nullptr) {
    PHOM_RETURN_NOT_OK(options.cancel->Check());
  }
  SolveOptions unit_options = options;
  // The UCQ-level force is satisfied by being here; units are plain CQs.
  if (unit_options.force_engine == "lifted-ucq") {
    unit_options.force_engine.clear();
  }
  if (unit_options.force_algorithm == Algorithm::kLiftedUcq) {
    unit_options.force_algorithm.reset();
  }
  return SolvePrepared(prepared.ucq->plan.units[unit_index].prepared,
                       unit_options);
}

Result<SolveResult> CombineUcqUnitResults(
    const PreparedProblem& prepared, const SolveOptions& options,
    std::vector<Result<SolveResult>> units) {
  PHOM_CHECK_MSG(prepared.ucq != nullptr,
                 "CombineUcqUnitResults outside a prepared UCQ");
  const PreparedUcq& ucq = *prepared.ucq;
  PHOM_RETURN_NOT_OK(CheckUcqPlan(ucq));
  PHOM_CHECK_MSG(units.size() == ucq.plan.units.size(),
                 "CombineUcqUnitResults arity mismatch");
  SolveResult out;
  out.analysis = prepared.analysis;
  out.numeric = options.numeric;
  out.stats.primary = Algorithm::kLiftedUcq;
  out.stats.engine = "lifted-ucq";
  for (size_t i = 0; i < units.size(); ++i) {
    // The serial engine stops at the first failing unit in index order;
    // reproduce exactly that error.
    if (!units[i].ok()) return units[i].status();
    const SolveStats& s = units[i]->stats;
    out.stats.components += s.components;
    out.stats.fallback_components += s.fallback_components;
    out.stats.worlds += s.worlds;
    out.stats.hom_tests += s.hom_tests;
    out.stats.lineage_clauses += s.lineage_clauses;
    out.stats.circuit_gates += s.circuit_gates;
    out.stats.match_ends += s.match_ends;
    out.stats.duration += s.duration;
  }
  out.stats.ucq_disjuncts = ucq.normalized.disjuncts.size();
  out.stats.ucq_units = units.size();
  out.stats.ucq_verdict =
      ucq.plan.lifted ? std::string("lifted")
                      : "not-liftable: " + ucq.plan.not_liftable_reason;

  if (options.numeric == NumericBackend::kExact) {
    std::vector<Rational> values;
    values.reserve(units.size());
    for (const Result<SolveResult>& u : units) {
      values.push_back(u->probability);
    }
    out.probability = EvaluatePlan<Rational>(ucq.plan, values);
    out.probability_double = out.probability.ToDouble();
    out.bound = CertifiedPointBound(out.probability);
  } else if (options.numeric == NumericBackend::kIntervalDouble) {
    // Each unit's bound IS its kernel enclosure; replaying the plan on the
    // intervals reproduces the serial interval answer bit for bit. A unit
    // with an uncertified bound (impossible today — units run exact
    // engines — defensive tomorrow) taints the merged certificate.
    std::vector<IntervalDouble> values;
    values.reserve(units.size());
    bool certified = true;
    for (const Result<SolveResult>& u : units) {
      values.emplace_back(u->bound.lo, u->bound.hi);
      certified = certified && u->bound.certified;
    }
    const IntervalDouble enclosure = EvaluatePlan<IntervalDouble>(ucq.plan, values);
    out.probability_double = enclosure.midpoint();
    out.bound = ProbabilityBound{enclosure.lo, enclosure.hi, certified};
  } else {
    std::vector<double> values;
    values.reserve(units.size());
    for (const Result<SolveResult>& u : units) {
      values.push_back(u->probability_double);
    }
    out.probability_double = EvaluatePlan<double>(ucq.plan, values);
  }
  return out;
}

std::unique_ptr<Engine> MakeLiftedUcqEngine() {
  return std::make_unique<LiftedUcqEngine>();
}

}  // namespace phom::lifted
