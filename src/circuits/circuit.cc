#include "src/circuits/circuit.h"

namespace phom {

uint32_t Circuit::Push(Gate gate) {
  for (uint32_t in : gate.inputs) {
    PHOM_CHECK_MSG(in < gates_.size(), "circuit inputs must precede the gate");
  }
  gates_.push_back(std::move(gate));
  return static_cast<uint32_t>(gates_.size() - 1);
}

uint32_t Circuit::AddConst(bool value) {
  return Push(Gate{value ? GateKind::kConstTrue : GateKind::kConstFalse, 0,
                   {}});
}

uint32_t Circuit::AddVar(uint32_t var) {
  PHOM_CHECK(var < num_vars_);
  return Push(Gate{GateKind::kVar, var, {}});
}

uint32_t Circuit::AddNegVar(uint32_t var) {
  PHOM_CHECK(var < num_vars_);
  return Push(Gate{GateKind::kNegVar, var, {}});
}

uint32_t Circuit::AddAnd(std::vector<uint32_t> inputs) {
  return Push(Gate{GateKind::kAnd, 0, std::move(inputs)});
}

uint32_t Circuit::AddOr(std::vector<uint32_t> inputs) {
  return Push(Gate{GateKind::kOr, 0, std::move(inputs)});
}

bool Circuit::Evaluate(uint32_t root, const std::vector<bool>& assignment) const {
  PHOM_CHECK(root < gates_.size());
  PHOM_CHECK(assignment.size() >= num_vars_);
  std::vector<bool> value(root + 1, false);
  for (uint32_t id = 0; id <= root; ++id) {
    const Gate& g = gates_[id];
    switch (g.kind) {
      case GateKind::kConstFalse: value[id] = false; break;
      case GateKind::kConstTrue: value[id] = true; break;
      case GateKind::kVar: value[id] = assignment[g.var]; break;
      case GateKind::kNegVar: value[id] = !assignment[g.var]; break;
      case GateKind::kAnd: {
        bool v = true;
        for (uint32_t in : g.inputs) v = v && value[in];
        value[id] = v;
        break;
      }
      case GateKind::kOr: {
        bool v = false;
        for (uint32_t in : g.inputs) v = v || value[in];
        value[id] = v;
        break;
      }
    }
  }
  return value[root];
}

size_t Circuit::NumWires() const {
  size_t wires = 0;
  for (const Gate& g : gates_) wires += g.inputs.size();
  return wires;
}

}  // namespace phom
