#pragma once

#include <cstdint>
#include <vector>

#include "src/util/status.h"

/// \file circuit.h
/// Boolean circuits in negation normal form: negation is applied to input
/// gates only (variables), internal gates are AND/OR. Gates are stored in
/// topological order (inputs of a gate always have smaller ids), so
/// evaluation and probability computation are single bottom-up passes.
/// See dnnf.h for the d-DNNF restrictions (Definition 5.3).

namespace phom {

enum class GateKind : uint8_t {
  kConstFalse,
  kConstTrue,
  kVar,     ///< positive literal of variable `var`
  kNegVar,  ///< negative literal of variable `var`
  kAnd,
  kOr,
};

struct Gate {
  GateKind kind;
  uint32_t var = 0;              ///< for kVar / kNegVar
  std::vector<uint32_t> inputs;  ///< for kAnd / kOr; ids < own id
};

class Circuit {
 public:
  explicit Circuit(uint32_t num_vars) : num_vars_(num_vars) {}

  uint32_t num_vars() const { return num_vars_; }
  size_t num_gates() const { return gates_.size(); }
  const Gate& gate(uint32_t id) const { return gates_[id]; }

  uint32_t AddConst(bool value);
  uint32_t AddVar(uint32_t var);
  uint32_t AddNegVar(uint32_t var);
  /// AND of inputs; empty input list is the constant true.
  uint32_t AddAnd(std::vector<uint32_t> inputs);
  /// OR of inputs; empty input list is the constant false.
  uint32_t AddOr(std::vector<uint32_t> inputs);

  /// Evaluates the gate under a Boolean assignment (test helper).
  bool Evaluate(uint32_t root, const std::vector<bool>& assignment) const;

  /// Total number of edges (sum of fan-ins), a standard circuit size metric.
  size_t NumWires() const;

 private:
  uint32_t Push(Gate gate);

  uint32_t num_vars_;
  std::vector<Gate> gates_;
};

}  // namespace phom
