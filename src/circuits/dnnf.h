#pragma once

#include <vector>

#include "src/circuits/circuit.h"
#include "src/util/numeric.h"
#include "src/util/rational.h"
#include "src/util/result.h"

/// \file dnnf.h
/// d-DNNF circuits (Definition 5.3): negation normal form where
///  (i)  negation applies to input gates only (structural in Circuit),
///  (ii) AND gates are decomposable — inputs depend on disjoint variables,
///  (iii) OR gates are deterministic — inputs are mutually exclusive.
/// These properties make probability computation a single bottom-up pass:
/// AND ↦ product, OR ↦ sum (Darwiche).

namespace phom {

/// Probability of the function computed at `root` under independent variable
/// probabilities, in the numeric backend of `Num` (Rational or double).
/// Correct only for d-DNNF circuits (the provenance circuits built in
/// automata/provenance.h are d-DNNF by construction; use the validators
/// below in tests).
template <class Num>
Num DnnfProbabilityT(const Circuit& circuit, uint32_t root,
                     const std::vector<Num>& var_probs);

extern template Rational DnnfProbabilityT<Rational>(
    const Circuit&, uint32_t, const std::vector<Rational>&);
extern template double DnnfProbabilityT<double>(const Circuit&, uint32_t,
                                                const std::vector<double>&);
extern template IntervalDouble DnnfProbabilityT<IntervalDouble>(
    const Circuit&, uint32_t, const std::vector<IntervalDouble>&);

/// Exact-backend convenience (the historical entry point).
inline Rational DnnfProbability(const Circuit& circuit, uint32_t root,
                                const std::vector<Rational>& var_probs) {
  return DnnfProbabilityT<Rational>(circuit, root, var_probs);
}

/// Structural check of decomposability: the variable sets reachable from the
/// inputs of every AND gate below `root` are pairwise disjoint.
Status ValidateDecomposability(const Circuit& circuit, uint32_t root);

/// Exhaustive check of determinism (every OR gate below `root` has at most
/// one true input under every assignment). Exponential: requires
/// num_vars <= 20. Test helper.
Status ValidateDeterminismExhaustive(const Circuit& circuit, uint32_t root);

}  // namespace phom
