#include "src/circuits/dnnf.h"

#include <algorithm>
#include <unordered_set>

namespace phom {

template <class Num>
Num DnnfProbabilityT(const Circuit& circuit, uint32_t root,
                     const std::vector<Num>& var_probs) {
  using Ops = NumericOps<Num>;
  PHOM_CHECK(root < circuit.num_gates());
  PHOM_CHECK(var_probs.size() >= circuit.num_vars());
  std::vector<Num> prob(root + 1, Ops::Zero());
  for (uint32_t id = 0; id <= root; ++id) {
    const Gate& g = circuit.gate(id);
    switch (g.kind) {
      case GateKind::kConstFalse: prob[id] = Ops::Zero(); break;
      case GateKind::kConstTrue: prob[id] = Ops::One(); break;
      case GateKind::kVar: prob[id] = var_probs[g.var]; break;
      case GateKind::kNegVar:
        prob[id] = Ops::Complement(var_probs[g.var]);
        break;
      case GateKind::kAnd: {
        Num p = Ops::One();
        for (uint32_t in : g.inputs) p *= prob[in];
        prob[id] = p;
        break;
      }
      case GateKind::kOr: {
        // Deterministic OR: the inputs are mutually exclusive events, so
        // their probabilities sum. Compensated on the interval backend
        // (DisjointSumAccumulator, numeric.h); the plain sequential sum
        // bit-for-bit on the exact/double backends.
        DisjointSumAccumulator<Num> p;
        for (uint32_t in : g.inputs) p.Add(prob[in]);
        prob[id] = p.Total();
        break;
      }
    }
  }
  return prob[root];
}

template Rational DnnfProbabilityT<Rational>(const Circuit&, uint32_t,
                                             const std::vector<Rational>&);
template double DnnfProbabilityT<double>(const Circuit&, uint32_t,
                                         const std::vector<double>&);
template IntervalDouble DnnfProbabilityT<IntervalDouble>(
    const Circuit&, uint32_t, const std::vector<IntervalDouble>&);

Status ValidateDecomposability(const Circuit& circuit, uint32_t root) {
  // Bottom-up variable sets (sorted vectors).
  std::vector<std::vector<uint32_t>> vars(root + 1);
  for (uint32_t id = 0; id <= root; ++id) {
    const Gate& g = circuit.gate(id);
    switch (g.kind) {
      case GateKind::kConstFalse:
      case GateKind::kConstTrue:
        break;
      case GateKind::kVar:
      case GateKind::kNegVar:
        vars[id] = {g.var};
        break;
      case GateKind::kAnd:
      case GateKind::kOr: {
        std::vector<uint32_t> merged;
        for (uint32_t in : g.inputs) {
          merged.insert(merged.end(), vars[in].begin(), vars[in].end());
        }
        std::sort(merged.begin(), merged.end());
        if (g.kind == GateKind::kAnd) {
          size_t before = merged.size();
          std::vector<uint32_t> unique = merged;
          unique.erase(std::unique(unique.begin(), unique.end()),
                       unique.end());
          if (unique.size() != before) {
            return Status::Invalid(
                "AND gate " + std::to_string(id) +
                " is not decomposable (inputs share a variable)");
          }
          vars[id] = std::move(unique);
        } else {
          merged.erase(std::unique(merged.begin(), merged.end()),
                       merged.end());
          vars[id] = std::move(merged);
        }
        break;
      }
    }
  }
  return Status::OK();
}

Status ValidateDeterminismExhaustive(const Circuit& circuit, uint32_t root) {
  uint32_t n = circuit.num_vars();
  if (n > 20) {
    return Status::NotSupported(
        "exhaustive determinism check limited to 20 variables");
  }
  std::vector<bool> assignment(n, false);
  std::vector<bool> value(root + 1, false);
  for (uint64_t mask = 0; mask < (uint64_t{1} << n); ++mask) {
    for (uint32_t i = 0; i < n; ++i) assignment[i] = (mask >> i) & 1;
    for (uint32_t id = 0; id <= root; ++id) {
      const Gate& g = circuit.gate(id);
      switch (g.kind) {
        case GateKind::kConstFalse: value[id] = false; break;
        case GateKind::kConstTrue: value[id] = true; break;
        case GateKind::kVar: value[id] = assignment[g.var]; break;
        case GateKind::kNegVar: value[id] = !assignment[g.var]; break;
        case GateKind::kAnd: {
          bool v = true;
          for (uint32_t in : g.inputs) v = v && value[in];
          value[id] = v;
          break;
        }
        case GateKind::kOr: {
          int true_inputs = 0;
          bool v = false;
          for (uint32_t in : g.inputs) {
            if (value[in]) {
              ++true_inputs;
              v = true;
            }
          }
          if (true_inputs > 1) {
            return Status::Invalid("OR gate " + std::to_string(id) +
                                   " is not deterministic");
          }
          value[id] = v;
          break;
        }
      }
    }
  }
  return Status::OK();
}

}  // namespace phom
