#pragma once

#include <string>
#include <string_view>

#include "src/core/solver.h"
#include "src/graph/alphabet.h"
#include "src/graph/cq_parser.h"
#include "src/graph/prob_graph.h"

/// \file tid_database.h
/// The tuple-independent database view of PHom (paper §2: the problem "is
/// easily seen to be equivalent to conjunctive query evaluation on
/// probabilistic tuple-independent relational databases over binary
/// relational signatures"). Facts are R(a, b) with a probability; constants
/// and relation names are interned strings; Boolean conjunctive queries are
/// evaluated through the dichotomy-aware Solver.
///
///   TidDatabase db;
///   db.AddFact("Friend", "alice", "bob", Rational(9, 10));
///   db.AddFact("Likes", "bob", "jazz", Rational(1, 2));
///   auto result = db.Evaluate("Friend(x, y), Likes(y, z)");

namespace phom {

class TidDatabase {
 public:
  TidDatabase() = default;

  /// Adds the fact relation(subject, object) with the given marginal
  /// probability. Fails if the pair already carries a fact of any relation
  /// (arity-two graphs carry one label per ordered pair, paper §2) or if the
  /// probability is outside [0, 1].
  Status AddFact(std::string_view relation, std::string_view subject,
                 std::string_view object, Rational probability);
  Status AddCertainFact(std::string_view relation, std::string_view subject,
                        std::string_view object) {
    return AddFact(relation, subject, object, Rational::One());
  }

  size_t num_constants() const { return instance_.num_vertices(); }
  size_t num_facts() const { return instance_.num_edges(); }
  const ProbGraph& instance() const { return instance_; }
  const Alphabet& relations() const { return relations_; }

  /// Marginal probability of a fact; 0 when absent.
  Rational FactProbability(std::string_view relation,
                           std::string_view subject,
                           std::string_view object) const;

  /// Evaluates a Boolean conjunctive query ("R(x,y), S(y,z)"; all variables
  /// existential) against the database. Unknown relation names simply never
  /// match. Returns the full SolveResult (probability + dichotomy analysis).
  Result<SolveResult> Evaluate(std::string_view query,
                               const SolveOptions& options = {}) const;

  /// Convenience: just the probability.
  Result<Rational> EvaluateProbability(std::string_view query,
                                       const SolveOptions& options = {}) const;

 private:
  VertexId InternConstant(std::string_view name);

  Alphabet relations_;
  Alphabet constants_;
  ProbGraph instance_;
};

}  // namespace phom
