#include "src/db/tid_database.h"

namespace phom {

VertexId TidDatabase::InternConstant(std::string_view name) {
  size_t before = constants_.size();
  LabelId id = constants_.Intern(name);
  if (constants_.size() > before) {
    VertexId v = instance_.AddVertex();
    PHOM_CHECK(v == id);  // constants and vertices stay aligned
  }
  return id;
}

Status TidDatabase::AddFact(std::string_view relation,
                            std::string_view subject, std::string_view object,
                            Rational probability) {
  if (!probability.IsProbability()) {
    return Status::Invalid("fact probability outside [0, 1]: " +
                           probability.ToString());
  }
  LabelId label = relations_.Intern(relation);
  VertexId a = InternConstant(subject);
  VertexId b = InternConstant(object);
  Result<EdgeId> added = instance_.AddEdge(a, b, label, std::move(probability));
  if (!added.ok()) {
    return Status::Invalid("the pair (" + std::string(subject) + ", " +
                           std::string(object) +
                           ") already carries a fact (arity-two signatures "
                           "allow one fact per ordered pair)");
  }
  return Status::OK();
}

Rational TidDatabase::FactProbability(std::string_view relation,
                                      std::string_view subject,
                                      std::string_view object) const {
  std::optional<LabelId> label = relations_.Find(relation);
  std::optional<LabelId> a = constants_.Find(subject);
  std::optional<LabelId> b = constants_.Find(object);
  if (!label || !a || !b) return Rational::Zero();
  std::optional<EdgeId> e = instance_.graph().FindEdge(*a, *b);
  if (!e || instance_.graph().edge(*e).label != *label) {
    return Rational::Zero();
  }
  return instance_.prob(*e);
}

Result<SolveResult> TidDatabase::Evaluate(std::string_view query,
                                          const SolveOptions& options) const {
  // Parse against a copy of the relation alphabet so unknown relations get
  // fresh label ids (which then match nothing in the instance).
  Alphabet scratch = relations_;
  PHOM_ASSIGN_OR_RETURN(ParsedQuery parsed,
                        ParseConjunctiveQuery(query, &scratch));
  Solver solver(options);
  return solver.Solve(parsed.graph, instance_);
}

Result<Rational> TidDatabase::EvaluateProbability(
    std::string_view query, const SolveOptions& options) const {
  PHOM_ASSIGN_OR_RETURN(SolveResult result, Evaluate(query, options));
  return result.probability;
}

}  // namespace phom
