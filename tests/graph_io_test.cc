#include "src/graph/io.h"

#include <gtest/gtest.h>

#include "src/graph/builders.h"

namespace phom {
namespace {

TEST(Io, SerializeParseRoundTrip) {
  Alphabet alphabet;
  LabelId r = alphabet.Intern("R");
  LabelId s = alphabet.Intern("S");
  ProbGraph g(3);
  AddEdgeOrDie(&g, 0, 1, r, Rational::Half());
  AddEdgeOrDie(&g, 1, 2, s, Rational(3, 4));
  std::string text = Serialize(g, alphabet);

  Alphabet alphabet2;
  Result<ProbGraph> parsed = ParseProbGraph(text, &alphabet2);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->num_vertices(), 3u);
  EXPECT_EQ(parsed->num_edges(), 2u);
  EXPECT_EQ(parsed->prob(0), Rational::Half());
  EXPECT_EQ(parsed->prob(1), Rational(3, 4));
  EXPECT_EQ(alphabet2.Name(parsed->graph().edge(1).label), "S");
}

TEST(Io, ParseAcceptsDecimalAndFractionProbabilities) {
  Alphabet alphabet;
  Result<ProbGraph> parsed =
      ParseProbGraph("2 2\n0 1 R 0.25\n1 0 S 1/3\n", &alphabet);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->prob(0), Rational(1, 4));
  EXPECT_EQ(parsed->prob(1), Rational(1, 3));
}

TEST(Io, ParseDefaultsToCertain) {
  Alphabet alphabet;
  Result<ProbGraph> parsed = ParseProbGraph("2 1\n0 1 R\n", &alphabet);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->prob(0), Rational::One());
}

TEST(Io, ParseErrors) {
  Alphabet alphabet;
  EXPECT_FALSE(ParseProbGraph("", &alphabet).ok());
  EXPECT_FALSE(ParseProbGraph("2 2\n0 1 R\n", &alphabet).ok());  // truncated
  EXPECT_FALSE(ParseProbGraph("2 1\n0 5 R\n", &alphabet).ok());  // range
  EXPECT_FALSE(ParseProbGraph("2 1\n0 1 R 2.5\n", &alphabet).ok());  // prob
  EXPECT_FALSE(
      ParseProbGraph("2 2\n0 1 R\n0 1 S\n", &alphabet).ok());  // multi-edge
}

TEST(Io, DotContainsEdgesAndProbabilities) {
  Alphabet alphabet;
  LabelId r = alphabet.Intern("R");
  ProbGraph g(2);
  AddEdgeOrDie(&g, 0, 1, r, Rational::Half());
  std::string dot = ToDot(g, &alphabet);
  EXPECT_NE(dot.find("v0 -> v1"), std::string::npos);
  EXPECT_NE(dot.find("R : 1/2"), std::string::npos);
  EXPECT_NE(dot.find("style=dashed"), std::string::npos);
}

TEST(Io, DiGraphParse) {
  Alphabet alphabet;
  Result<DiGraph> parsed = ParseDiGraph("3 2\n0 1 R\n2 1 R\n", &alphabet);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->num_edges(), 2u);
  EXPECT_EQ(parsed->edge(1).src, 2u);
}

}  // namespace
}  // namespace phom
