#include "src/core/algo_polytree.h"

#include <gtest/gtest.h>

#include "src/core/algo_dwt.h"
#include "src/core/fallback.h"
#include "src/graph/builders.h"
#include "src/graph/generators.h"

namespace phom {
namespace {

TEST(AlgoPolytree, SingleEdge) {
  ProbGraph h(2);
  AddEdgeOrDie(&h, 0, 1, 0, Rational(1, 3));
  EXPECT_EQ(*SolvePathProbabilityOnPolytree(1, h), Rational(1, 3));
  EXPECT_EQ(*SolvePathProbabilityOnPolytree(2, h), Rational::Zero());
  EXPECT_EQ(*SolvePathProbabilityOnPolytree(0, h), Rational::One());
}

TEST(AlgoPolytree, TwoWayPathInstance) {
  // a -> b <- c: the longest directed path has length 1.
  ProbGraph h(3);
  AddEdgeOrDie(&h, 0, 1, 0, Rational::Half());
  AddEdgeOrDie(&h, 2, 1, 0, Rational::Half());
  EXPECT_EQ(*SolvePathProbabilityOnPolytree(1, h), Rational(3, 4));
  EXPECT_EQ(*SolvePathProbabilityOnPolytree(2, h), Rational::Zero());
}

TEST(AlgoPolytree, PathThroughSharedVertex) {
  // a -> b -> c with independent halves meeting at b.
  ProbGraph h(3);
  AddEdgeOrDie(&h, 0, 1, 0, Rational::Half());
  AddEdgeOrDie(&h, 1, 2, 0, Rational(1, 4));
  EXPECT_EQ(*SolvePathProbabilityOnPolytree(2, h), Rational(1, 8));
}

TEST(AlgoPolytree, MatchesWorldEnumerationOnRandomPolytrees) {
  Rng rng(121);
  for (int trial = 0; trial < 120; ++trial) {
    ProbGraph h = AttachRandomProbabilities(
        &rng, RandomPolytree(&rng, rng.UniformInt(2, 10), 1), 2, 0.3);
    uint32_t m = static_cast<uint32_t>(rng.UniformInt(1, 4));
    Rational fast = *SolvePathProbabilityOnPolytree(m, h);
    Rational brute = *SolveByWorldEnumeration(MakeOneWayPath(m), h);
    EXPECT_EQ(fast, brute) << "trial " << trial;
  }
}

TEST(AlgoPolytree, AgreesWithDwtSolverOnDownwardTrees) {
  // DWT ⊆ PT: the automaton pipeline and the DWT DP must agree.
  Rng rng(122);
  for (int trial = 0; trial < 60; ++trial) {
    ProbGraph h = AttachRandomProbabilities(
        &rng, RandomDownwardTree(&rng, rng.UniformInt(2, 12), 1, 0.5), 3);
    uint32_t m = static_cast<uint32_t>(rng.UniformInt(1, 4));
    std::vector<LabelId> pattern(m, 0);
    Rational automaton = *SolvePathProbabilityOnPolytree(m, h);
    Rational dp = *SolvePathOnDwtForest(pattern, h);
    EXPECT_EQ(automaton, dp) << "trial " << trial;
  }
}

TEST(AlgoPolytree, DwtQueryForestWrapper) {
  // ⊔DWT query (heights 1 and 2 -> m = 2) on a forest of two polytrees.
  DiGraph q = DisjointUnion({MakeOutStar(2), MakeDownwardTree({0, 1})});
  ProbGraph h(6);
  AddEdgeOrDie(&h, 0, 1, 0, Rational::Half());
  AddEdgeOrDie(&h, 1, 2, 0, Rational::Half());
  AddEdgeOrDie(&h, 3, 4, 0, Rational::Half());
  AddEdgeOrDie(&h, 4, 5, 0, Rational::Half());
  PolytreeStats stats;
  Rational p = *SolveDwtQueryOnPolytreeForest(q, h, &stats);
  // Each component contains →→ with probability 1/4; combined by Lemma 3.7.
  EXPECT_EQ(p, Rational(1, 4).Complement()
                    .Pow(2)
                    .Complement());
  EXPECT_GT(stats.circuit_gates, 0u);
}

TEST(AlgoPolytree, RejectsNonDwtQuery) {
  DiGraph q = MakeArrowPath("><");
  ProbGraph h = ProbGraph::Certain(MakeOneWayPath(3));
  EXPECT_FALSE(SolveDwtQueryOnPolytreeForest(q, h).ok());
}

TEST(AlgoPolytree, StatsAreReported) {
  Rng rng(123);
  ProbGraph h = AttachRandomProbabilities(
      &rng, RandomPolytree(&rng, 40, 1), 3);
  PolytreeStats stats;
  ASSERT_TRUE(SolvePathProbabilityOnPolytree(3, h, &stats).ok());
  EXPECT_GT(stats.encoded_nodes, 40u);
  EXPECT_GT(stats.circuit_gates, 0u);
  EXPECT_GT(stats.state_pairs, 0u);
  EXPECT_GT(stats.max_states_per_node, 0u);
}

}  // namespace
}  // namespace phom
