#include "src/db/tid_database.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace phom {
namespace {

using test_util::Q;

TEST(TidDatabase, FactsAndLookups) {
  TidDatabase db;
  ASSERT_TRUE(db.AddFact("Friend", "alice", "bob", Rational(9, 10)).ok());
  ASSERT_TRUE(db.AddCertainFact("Likes", "bob", "jazz").ok());
  EXPECT_EQ(db.num_constants(), 3u);
  EXPECT_EQ(db.num_facts(), 2u);
  EXPECT_EQ(db.FactProbability("Friend", "alice", "bob"), Rational(9, 10));
  EXPECT_EQ(db.FactProbability("Likes", "bob", "jazz"), Rational::One());
  EXPECT_EQ(db.FactProbability("Friend", "bob", "alice"), Rational::Zero());
  EXPECT_EQ(db.FactProbability("Hates", "alice", "bob"), Rational::Zero());
}

TEST(TidDatabase, RejectsBadFacts) {
  TidDatabase db;
  EXPECT_FALSE(db.AddFact("R", "a", "b", Rational(3, 2)).ok());
  ASSERT_TRUE(db.AddFact("R", "a", "b", Rational::Half()).ok());
  // One fact per ordered pair (arity-two signature, no multi-edges).
  EXPECT_FALSE(db.AddFact("S", "a", "b", Rational::Half()).ok());
  EXPECT_TRUE(db.AddFact("S", "b", "a", Rational::Half()).ok());
}

TEST(TidDatabase, EvaluatesJoinQuery) {
  TidDatabase db;
  ASSERT_TRUE(db.AddFact("Friend", "alice", "bob", Rational(1, 2)).ok());
  ASSERT_TRUE(db.AddFact("Likes", "bob", "jazz", Rational(1, 2)).ok());
  ASSERT_TRUE(db.AddFact("Likes", "carol", "jazz", Rational(1, 2)).ok());
  // ∃xyz Friend(x,y) ∧ Likes(y,z): needs Friend(alice,bob) ∧ Likes(bob,jazz).
  Result<Rational> p = db.EvaluateProbability("Friend(x,y), Likes(y,z)");
  ASSERT_TRUE(p.ok()) << p.status().ToString();
  EXPECT_EQ(*p, Rational(1, 4));
  // ∃yz Likes(y,z): either Likes fact.
  EXPECT_EQ(*db.EvaluateProbability("Likes(y,z)"), Rational(3, 4));
}

TEST(TidDatabase, UnknownRelationNeverMatches) {
  TidDatabase db;
  ASSERT_TRUE(db.AddFact("R", "a", "b", Rational::Half()).ok());
  EXPECT_EQ(*db.EvaluateProbability("Missing(x,y)"), Rational::Zero());
  // ...and does not corrupt the database's own relation ids.
  EXPECT_EQ(*db.EvaluateProbability("R(x,y)"), Rational::Half());
}

TEST(TidDatabase, PaperExampleThroughTheRelationalView) {
  TidDatabase db;
  ASSERT_TRUE(db.AddFact("R", "a", "b", Q("0.1")).ok());
  ASSERT_TRUE(db.AddFact("R", "d", "b", Q("0.8")).ok());
  ASSERT_TRUE(db.AddFact("S", "b", "c", Q("0.7")).ok());
  ASSERT_TRUE(db.AddCertainFact("R", "a", "d").ok());
  ASSERT_TRUE(db.AddFact("R", "c", "d", Q("0.05")).ok());
  ASSERT_TRUE(db.AddFact("S", "c", "a", Q("0.1")).ok());
  Result<SolveResult> result = db.Evaluate("R(x,y), S(y,z), S(t,z)");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->probability, Rational(287, 500));
}

TEST(TidDatabase, DichotomyAnalysisSurfaces) {
  TidDatabase db;
  // A chain of Parent facts: a DWT instance; path queries are Prop. 4.10.
  ASSERT_TRUE(db.AddFact("Parent", "a", "b", Rational(1, 2)).ok());
  ASSERT_TRUE(db.AddFact("Parent", "b", "c", Rational(1, 2)).ok());
  Result<SolveResult> result = db.Evaluate("Parent(x,y), Parent(y,z)");
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->analysis.tractable);
  EXPECT_EQ(result->probability, Rational(1, 4));
}

TEST(TidDatabase, SelfJoinVariableReuse) {
  TidDatabase db;
  ASSERT_TRUE(db.AddFact("E", "a", "a", Rational::Half()).ok());
  ASSERT_TRUE(db.AddFact("E", "a", "b", Rational::Half()).ok());
  // ∃x E(x,x): only the self-loop.
  EXPECT_EQ(*db.EvaluateProbability("E(x,x)"), Rational::Half());
}

}  // namespace
}  // namespace phom
