#include "src/hom/arc_consistency.h"

#include <gtest/gtest.h>

#include "src/graph/builders.h"
#include "src/graph/classify.h"
#include "src/graph/generators.h"
#include "src/hom/backtrack.h"

namespace phom {
namespace {

TEST(XProperty, PathsHaveTheXProperty) {
  // Prop. 4.11's proof: 2WPs trivially satisfy Definition 4.12 w.r.t. the
  // path order.
  Rng rng(31);
  for (int trial = 0; trial < 40; ++trial) {
    DiGraph g = RandomTwoWayPath(&rng, rng.UniformInt(1, 12), 2);
    EXPECT_TRUE(HasXProperty(g, TwoWayPathOrder(g)));
  }
}

TEST(XProperty, ViolationDetected) {
  // Crossing edges without the completion edge: n0=0 < n1=1, n2=2 < n3=3,
  // 0->3 and 1->2 but no 0->2.
  DiGraph g(4);
  AddEdgeOrDie(&g, 0, 3, 0);
  AddEdgeOrDie(&g, 1, 2, 0);
  EXPECT_FALSE(HasXProperty(g, {0, 1, 2, 3}));
  // Adding the min edge restores it.
  AddEdgeOrDie(&g, 0, 2, 0);
  EXPECT_TRUE(HasXProperty(g, {0, 1, 2, 3}));
}

TEST(XProperty, SimpleDecisions) {
  DiGraph path = MakeArrowPath(">><");
  std::vector<VertexId> order = TwoWayPathOrder(path);
  EXPECT_TRUE(
      XPropertyHomomorphism(MakeOneWayPath(2), path, order).has_hom);
  EXPECT_FALSE(
      XPropertyHomomorphism(MakeOneWayPath(3), path, order).has_hom);
  EXPECT_TRUE(XPropertyHomomorphism(MakeArrowPath("><"), path, order).has_hom);
}

TEST(XProperty, WitnessIsAHomomorphism) {
  Rng rng(37);
  for (int trial = 0; trial < 100; ++trial) {
    DiGraph instance = RandomTwoWayPath(&rng, rng.UniformInt(1, 10), 2);
    DiGraph query = RandomTwoWayPath(&rng, rng.UniformInt(1, 5), 2);
    std::vector<VertexId> order = TwoWayPathOrder(instance);
    XPropertyHomResult result =
        XPropertyHomomorphism(query, instance, order);
    if (result.has_hom) {
      for (const Edge& qe : query.edges()) {
        EXPECT_TRUE(instance.HasEdge(result.witness[qe.src],
                                     result.witness[qe.dst], qe.label));
      }
    }
  }
}

TEST(XProperty, AgreesWithBacktrackingOnRandomPaths) {
  Rng rng(41);
  for (int trial = 0; trial < 300; ++trial) {
    DiGraph instance = RandomTwoWayPath(&rng, rng.UniformInt(1, 9), 2);
    DiGraph query = trial % 2 == 0
                        ? RandomTwoWayPath(&rng, rng.UniformInt(1, 6), 2)
                        : RandomDownwardTree(&rng, rng.UniformInt(2, 7), 2);
    std::vector<VertexId> order = TwoWayPathOrder(instance);
    bool ac = XPropertyHomomorphism(query, instance, order).has_hom;
    bool bt = *HasHomomorphism(query, instance);
    EXPECT_EQ(ac, bt) << "trial " << trial;
  }
}

TEST(XProperty, DomainRestrictionMatchesSubpath) {
  // Restricting domains to a window of the path equals testing against the
  // induced subpath.
  Rng rng(43);
  for (int trial = 0; trial < 150; ++trial) {
    DiGraph instance = RandomTwoWayPath(&rng, rng.UniformInt(3, 9), 2);
    DiGraph query = RandomTwoWayPath(&rng, rng.UniformInt(1, 4), 2);
    std::vector<VertexId> order = TwoWayPathOrder(instance);
    size_t a = rng.UniformInt(0, order.size() - 2);
    size_t b = rng.UniformInt(a + 1, order.size() - 1);
    std::vector<VertexId> window(order.begin() + a, order.begin() + b + 1);
    bool ac =
        XPropertyHomomorphism(query, instance, order, window).has_hom;

    // Build the induced subpath explicitly.
    DiGraph sub(window.size());
    for (size_t i = 0; i + 1 < window.size(); ++i) {
      if (auto e = instance.FindEdge(order[a + i], order[a + i + 1])) {
        AddEdgeOrDie(&sub, i, i + 1, instance.edge(*e).label);
      } else if (auto e2 = instance.FindEdge(order[a + i + 1], order[a + i])) {
        AddEdgeOrDie(&sub, i + 1, i, instance.edge(*e2).label);
      }
    }
    bool bt = *HasHomomorphism(query, sub);
    EXPECT_EQ(ac, bt) << "trial " << trial;
  }
}

TEST(XProperty, EmptyQueryAndInstance) {
  DiGraph path = MakeOneWayPath(2);
  EXPECT_TRUE(
      XPropertyHomomorphism(DiGraph(0), path, TwoWayPathOrder(path)).has_hom);
  EXPECT_FALSE(XPropertyHomomorphism(MakeOneWayPath(1), DiGraph(0), {})
                   .has_hom);
}

}  // namespace
}  // namespace phom
