#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "src/core/eval_session.h"
#include "src/core/solver.h"
#include "src/graph/builders.h"
#include "src/graph/generators.h"
#include "src/serve/async.h"
#include "src/serve/executor.h"
#include "src/serve/request.h"
#include "src/serve/shard.h"
#include "tests/test_util.h"

/// Slow-tier proof obligations of the degradation pipeline (run under ASan
/// and TSan in CI):
///
///  * STATISTICAL soundness — seeded degraded-MC estimates on the paper's
///    #P-hard cell corpus agree with the exact answers within a Hoeffding
///    bound at a fixed sample count, with consistent samples_used /
///    half-width / budget_spent provenance. The corpus and seeds are fixed,
///    so the suite is deterministic; the bound's nominal failure mass is
///    ~1e-9 per case, so a failure means a bug, not bad luck.
///
///  * CANCELLATION soundness at every yield point — a fuzz loop fires
///    Cancel() at randomized instants (and randomized deadlines) across a
///    mixed corpus served under the degrade policy, asserting every ticket
///    resolves to exactly ONE of {exact result, degraded estimate,
///    Cancelled}: no DeadlineExceeded leaks through the policy, no torn
///    provenance, no leaks (ASan) and no races (TSan).

namespace phom {
namespace {

using serve::BatchExecutor;
using serve::ExecutorOptions;
using serve::RequestClock;
using serve::ShardedServer;
using serve::ShardedServerOptions;
using serve::SolveRequest;
using serve::SolveTicket;
using test_util::CellClass;
using test_util::CrosscheckCase;
using test_util::MakeCrosscheckCase;
using test_util::MixedServeInstance;
using test_util::MixedServeQueries;

// ---------------------------------------------------------------------------
// Statistical agreement on the hard-cell corpus.
// ---------------------------------------------------------------------------

/// Two-sided Hoeffding deviation for n samples at failure mass delta:
/// P(|p̂ - p| >= eps) <= 2 exp(-2 n eps²)  ⇒  eps = sqrt(ln(2/δ) / (2n)).
double HoeffdingEpsilon(uint64_t n, double delta) {
  return std::sqrt(std::log(2.0 / delta) / (2.0 * static_cast<double>(n)));
}

TEST(ServeDegradeStatistical, HardCellEstimatesWithinHoeffdingBound) {
  constexpr uint64_t kSamples = 4096;
  constexpr int kCases = 12;
  // ~1e-9 failure mass per case: across 2 backends x 12 cases the suite
  // flakes (absent bugs) with probability < 1e-7 — and the seeds are fixed
  // anyway, so a pass today is a pass forever.
  const double eps = HoeffdingEpsilon(kSamples, 1e-9);

  Rng rng(test_util::kCrosscheckSeedBase + 77);
  for (int i = 0; i < kCases; ++i) {
    CrosscheckCase hard = MakeCrosscheckCase(CellClass::kHardCell, &rng);
    SCOPED_TRACE("hard-cell case " + std::to_string(i));
    double exact = SolveProbability(hard.query, hard.instance)->ToDouble();

    for (NumericBackend backend :
         {NumericBackend::kExact, NumericBackend::kDouble}) {
      SCOPED_TRACE(std::string("backend=") + ToString(backend));
      SolveOptions options;
      options.numeric = backend;
      EvalSession session(hard.instance, options);
      BatchExecutor executor(ExecutorOptions{.threads = 2});

      DegradePolicy policy;
      policy.mode = DegradeMode::kOnDeadlineRisk;
      policy.min_samples = kSamples;  // expired deadline → exactly kSamples
      SolveRequest request(hard.query);
      request.WithDeadline(RequestClock::now() - std::chrono::milliseconds(1))
          .WithDegrade(policy)
          .WithMonteCarloSeed(9000 + static_cast<uint64_t>(i));
      SolveTicket ticket = executor.Submit(session, std::move(request));
      Result<SolveResult> result = ticket.Get();

      ASSERT_TRUE(result.ok()) << result.status().ToString();
      ASSERT_TRUE(result->degrade.degraded);
      EXPECT_EQ(result->degrade.samples_used, kSamples)
          << "fixed sample count: the lapsed deadline truncates at the floor";
      EXPECT_NEAR(result->degrade.estimate, exact, eps)
          << "Hoeffding bound violated at n=" << kSamples;
      // Provenance consistency.
      EXPECT_EQ(result->degrade.estimate, result->probability_double);
      double p = result->degrade.estimate;
      EXPECT_DOUBLE_EQ(
          result->degrade.half_width_95,
          1.96 * std::sqrt(p * (1.0 - p) / static_cast<double>(kSamples)));
      EXPECT_GT(result->degrade.budget_spent.count(), 0);
      EXPECT_LE(result->degrade.budget_spent,
                ticket.stats().total_time())
          << "the degraded run is part of the request's lifetime";
      EXPECT_EQ(result->stats.worlds, kSamples);
      if (backend == NumericBackend::kExact) {
        EXPECT_EQ(result->probability.ToDouble(), result->degrade.estimate)
            << "exact backend carries hits/samples exactly";
      }
    }
  }
}

TEST(ServeDegradeStatistical, TargetHalfWidthPolicyStopsEarlyAndIsSound) {
  // With a target ε, degraded sampling stops as soon as the confidence
  // half-width reaches it — well before the cap — and still agrees with
  // the exact answer (3x half-width ≈ 6 sigma).
  Rng rng(test_util::kCrosscheckSeedBase + 177);
  for (int i = 0; i < 4; ++i) {
    CrosscheckCase hard = MakeCrosscheckCase(CellClass::kHardCell, &rng);
    SCOPED_TRACE("hard-cell case " + std::to_string(i));
    double exact = SolveProbability(hard.query, hard.instance)->ToDouble();

    EvalSession session(hard.instance);
    BatchExecutor executor(ExecutorOptions{.threads = 1});
    DegradePolicy policy;
    policy.mode = DegradeMode::kOnDeadlineRisk;
    policy.min_samples = 256;
    policy.target_half_width = 0.04;
    policy.max_samples = 1'000'000;
    // An already-lapsed deadline + a target ε exercises the "whichever
    // stop rule fires first" contract deterministically: sampling runs to
    // the floor regardless, then stops at the first chunk boundary where
    // either rule holds — the lapsed deadline guarantees that is at or
    // shortly past the floor, target met or not.
    SolveRequest request(hard.query);
    request.WithDeadline(RequestClock::now() - std::chrono::milliseconds(1))
        .WithDegrade(policy)
        .WithMonteCarloSeed(31 + static_cast<uint64_t>(i));
    SolveTicket ticket = executor.Submit(session, std::move(request));
    Result<SolveResult> result = ticket.Get();
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    ASSERT_TRUE(result->degrade.degraded);
    EXPECT_GE(result->degrade.samples_used, 256u);
    EXPECT_LE(result->degrade.samples_used, 1'000'000u);
    EXPECT_NEAR(result->degrade.estimate, exact,
                3.0 * result->degrade.half_width_95 + 0.05);
  }
}

// ---------------------------------------------------------------------------
// Cancellation fuzz: Cancel() at randomized points, randomized deadlines.
// ---------------------------------------------------------------------------

TEST(ServeDegradeFuzz, CancelAtRandomizedPointsResolvesToExactlyOneOutcome) {
  Rng rng(20260729);
  ProbGraph instance_a = MixedServeInstance(&rng);
  ProbGraph instance_b = MixedServeInstance(&rng);
  std::vector<DiGraph> queries = MixedServeQueries(&rng);

  // Serial exact baselines per (shard, query) for verifying undisturbed
  // results bit for bit.
  EvalSession baseline_a(instance_a);
  EvalSession baseline_b(instance_b);
  std::vector<std::vector<Result<SolveResult>>> expected;
  expected.push_back(baseline_a.SolveBatch(queries));
  expected.push_back(baseline_b.SolveBatch(queries));

  ShardedServerOptions options;
  options.executor.threads = 4;
  options.solve.degrade.mode = DegradeMode::kOnDeadlineRisk;
  options.solve.degrade.min_samples = 64;  // keep degraded runs cheap
  ShardedServer server({instance_a, instance_b}, options);

  constexpr int kRounds = 25;
  int outcome_exact = 0;
  int outcome_degraded = 0;
  int outcome_cancelled = 0;
  for (int round = 0; round < kRounds; ++round) {
    SCOPED_TRACE("round " + std::to_string(round));
    struct Submitted {
      SolveTicket ticket;
      size_t shard;
      size_t query;
      bool cancel_planned;
      int64_t cancel_delay_us;
    };
    std::vector<Submitted> submitted;
    for (size_t q = 0; q < queries.size(); ++q) {
      Submitted s;
      s.shard = static_cast<size_t>(rng.UniformInt(0, 1));
      s.query = q;
      s.cancel_planned = rng.Bernoulli(0.5);
      s.cancel_delay_us = rng.UniformInt(0, 3000);
      SolveRequest request(queries[q], s.shard);
      // Deadlines from "already lapsed" to "comfortable": every gate and
      // yield point gets exercised, and the policy must convert every miss.
      int64_t deadline_us = rng.UniformInt(-500, 20'000);
      request.WithDeadline(RequestClock::now() +
                           std::chrono::microseconds(deadline_us));
      s.ticket = server.Submit(std::move(request));
      submitted.push_back(std::move(s));
    }
    // Fire cancellations from a separate thread at randomized instants.
    std::thread canceller([&submitted] {
      for (Submitted& s : submitted) {
        if (!s.cancel_planned) continue;
        std::this_thread::sleep_for(
            std::chrono::microseconds(s.cancel_delay_us));
        s.ticket.Cancel();
      }
    });
    for (Submitted& s : submitted) {
      Result<SolveResult> result = s.ticket.Get();
      SCOPED_TRACE("shard " + std::to_string(s.shard) + " query " +
                   std::to_string(s.query));
      {
        // Timeline monotonicity holds for EVERY outcome — exact, degraded,
        // expired and cancelled requests alike (request.h).
        serve::RequestStats stats = s.ticket.stats();
        EXPECT_LE(stats.enqueued, stats.started);
        EXPECT_LE(stats.started, stats.finished);
      }
      if (!result.ok()) {
        // The ONLY permitted error: explicit cancellation. In particular a
        // deadline miss must never leak through the policy as
        // DeadlineExceeded.
        EXPECT_EQ(result.status().code(), Status::Code::kCancelled);
        EXPECT_TRUE(s.cancel_planned)
            << "Cancelled without a Cancel() call: " +
                   result.status().ToString();
        EXPECT_FALSE(s.ticket.stats().degraded);
        ++outcome_cancelled;
        continue;
      }
      if (result->degrade.degraded) {
        // Degraded estimate: provenance must be internally consistent (no
        // torn state even when Cancel raced the degraded sampling).
        EXPECT_GE(result->degrade.samples_used, 1u);
        EXPECT_EQ(result->degrade.estimate, result->probability_double);
        EXPECT_GE(result->degrade.estimate, 0.0);
        EXPECT_LE(result->degrade.estimate, 1.0);
        EXPECT_GT(result->degrade.budget_spent.count(), 0);
        EXPECT_TRUE(s.ticket.stats().degraded);
        ++outcome_degraded;
        continue;
      }
      // Exact result: must match the serial baseline bit for bit.
      const Result<SolveResult>& want = expected[s.shard][s.query];
      ASSERT_TRUE(want.ok());
      EXPECT_EQ(want->probability, result->probability);
      EXPECT_EQ(want->probability_double, result->probability_double);
      EXPECT_EQ(want->stats.engine, result->stats.engine);
      EXPECT_FALSE(s.ticket.stats().degraded);
      ++outcome_exact;
    }
    canceller.join();
  }
  // The fuzz only proves something if it actually visited the outcomes.
  EXPECT_GT(outcome_exact + outcome_degraded, 0);
  EXPECT_GT(outcome_cancelled, 0) << "no cancellation ever landed in time";
  SUCCEED() << "outcomes: exact=" << outcome_exact
            << " degraded=" << outcome_degraded
            << " cancelled=" << outcome_cancelled;
}

TEST(ServeDegradeFuzz, DestructionMidPressureDrainsCleanly) {
  // Tear the executor down while degrade-eligible requests are in flight:
  // the drain guarantee must hold for degraded completions too.
  Rng rng(424242);
  ProbGraph instance = MixedServeInstance(&rng);
  std::vector<DiGraph> queries = MixedServeQueries(&rng);
  EvalSession session(instance);

  DegradePolicy policy;
  policy.mode = DegradeMode::kOnDeadlineRisk;
  policy.min_samples = 64;

  std::vector<SolveTicket> tickets;
  {
    BatchExecutor executor(ExecutorOptions{.threads = 2});
    for (int round = 0; round < 4; ++round) {
      for (const DiGraph& q : queries) {
        SolveRequest request(q);
        request
            .WithDeadline(RequestClock::now() +
                          std::chrono::microseconds(rng.UniformInt(-200, 500)))
            .WithDegrade(policy);
        tickets.push_back(executor.Submit(session, std::move(request)));
      }
    }
  }  // destructor drains with conversions likely mid-flight
  for (SolveTicket& ticket : tickets) {
    ASSERT_TRUE(ticket.done());
    serve::RequestStats stats = ticket.stats();
    EXPECT_LE(stats.enqueued, stats.started);
    EXPECT_LE(stats.started, stats.finished);
    Result<SolveResult> result = ticket.Take();
    if (!result.ok()) {
      ADD_FAILURE() << "only {exact, degraded} possible without Cancel: "
                    << result.status().ToString();
    }
  }
}

}  // namespace
}  // namespace phom
