#include "src/graph/generators.h"

#include <gtest/gtest.h>

#include "src/graph/builders.h"
#include "src/graph/classify.h"
#include "src/graph/graded.h"

namespace phom {
namespace {

TEST(Generators, RandomOneWayPathIsOneWayPath) {
  Rng rng(1);
  for (size_t edges : {0u, 1u, 5u, 30u}) {
    DiGraph g = RandomOneWayPath(&rng, edges, 3);
    EXPECT_TRUE(IsOneWayPath(g)) << edges;
    EXPECT_EQ(g.num_edges(), edges);
  }
}

TEST(Generators, RandomTwoWayPathIsTwoWayPath) {
  Rng rng(2);
  for (int trial = 0; trial < 50; ++trial) {
    DiGraph g = RandomTwoWayPath(&rng, rng.UniformInt(0, 20), 3);
    EXPECT_TRUE(IsTwoWayPath(g));
  }
}

TEST(Generators, RandomDownwardTreeIsDwt) {
  Rng rng(3);
  for (int trial = 0; trial < 50; ++trial) {
    DiGraph g = RandomDownwardTree(&rng, 1 + rng.UniformInt(0, 30), 2);
    EXPECT_TRUE(IsDownwardTree(g));
  }
}

TEST(Generators, DepthBiasDeepensTrees) {
  Rng rng(4);
  auto height = [](const DiGraph& g) {
    return AnalyzeGraded(g).difference_of_levels;
  };
  int64_t shallow = 0;
  int64_t deep = 0;
  for (int trial = 0; trial < 30; ++trial) {
    shallow += height(RandomDownwardTree(&rng, 60, 1, 0.0));
    deep += height(RandomDownwardTree(&rng, 60, 1, 0.9));
  }
  EXPECT_GT(deep, shallow);
}

TEST(Generators, RandomPolytreeIsPolytree) {
  Rng rng(5);
  for (int trial = 0; trial < 50; ++trial) {
    DiGraph g = RandomPolytree(&rng, 1 + rng.UniformInt(0, 30), 2);
    EXPECT_TRUE(IsPolytree(g));
  }
}

TEST(Generators, RandomConnectedIsConnectedAndUsuallyNotPolytree) {
  Rng rng(6);
  size_t non_polytrees = 0;
  for (int trial = 0; trial < 30; ++trial) {
    DiGraph g = RandomConnected(&rng, 12, 6, 2);
    EXPECT_TRUE(IsConnected(g));
    if (!IsPolytree(g)) ++non_polytrees;
  }
  EXPECT_GT(non_polytrees, 20u);
}

TEST(Generators, RandomDisjointUnionComponentCount) {
  Rng rng(7);
  DiGraph g = RandomDisjointUnion(
      &rng, 4, [](Rng* r) { return RandomOneWayPath(r, 2, 1); });
  Classification c = Classify(g);
  EXPECT_EQ(c.num_components, 4u);
  EXPECT_TRUE(c.all_1wp);
}

TEST(Generators, RandomGradedDagIsGraded) {
  Rng rng(8);
  for (int trial = 0; trial < 20; ++trial) {
    DiGraph g = RandomGradedDag(&rng, 30, 5, 0.3, 1);
    EXPECT_TRUE(AnalyzeGraded(g).is_graded);
  }
}

TEST(Generators, AttachRandomProbabilitiesRange) {
  Rng rng(9);
  ProbGraph g =
      AttachRandomProbabilities(&rng, RandomOneWayPath(&rng, 50, 1), 4, 0.5);
  size_t certain = 0;
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    EXPECT_TRUE(g.prob(e).IsProbability());
    EXPECT_FALSE(g.prob(e).is_zero());
    if (g.prob(e).is_one()) ++certain;
  }
  EXPECT_GT(certain, 10u);
  EXPECT_LT(certain, 45u);
}

TEST(Generators, Deterministic) {
  Rng rng1(42);
  Rng rng2(42);
  DiGraph a = RandomPolytree(&rng1, 20, 3);
  DiGraph b = RandomPolytree(&rng2, 20, 3);
  ASSERT_EQ(a.num_edges(), b.num_edges());
  for (EdgeId e = 0; e < a.num_edges(); ++e) {
    EXPECT_EQ(a.edge(e), b.edge(e));
  }
}

}  // namespace
}  // namespace phom
