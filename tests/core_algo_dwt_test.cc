#include "src/core/algo_dwt.h"

#include <gtest/gtest.h>

#include "src/core/fallback.h"
#include "src/graph/builders.h"
#include "src/graph/classify.h"
#include "src/graph/generators.h"

namespace phom {
namespace {

TEST(AlgoDwt, SingleEdge) {
  ProbGraph h(2);
  AddEdgeOrDie(&h, 0, 1, 0, Rational(1, 4));
  EXPECT_EQ(*SolvePathOnDwtForest({0}, h), Rational(1, 4));
  // Wrong label: no match.
  EXPECT_EQ(*SolvePathOnDwtForest({1}, h), Rational::Zero());
}

TEST(AlgoDwt, ChainOfTwo) {
  ProbGraph h(3);
  AddEdgeOrDie(&h, 0, 1, 0, Rational::Half());
  AddEdgeOrDie(&h, 1, 2, 0, Rational::Half());
  EXPECT_EQ(*SolvePathOnDwtForest({0, 0}, h), Rational(1, 4));
  EXPECT_EQ(*SolvePathOnDwtForest({0}, h), Rational(3, 4));
}

TEST(AlgoDwt, LabelSequenceMustMatchExactly) {
  // Tree path R-S; query S-R never matches.
  ProbGraph h(3);
  AddEdgeOrDie(&h, 0, 1, 0, Rational::One());
  AddEdgeOrDie(&h, 1, 2, 1, Rational::One());
  EXPECT_EQ(*SolvePathOnDwtForest({0, 1}, h), Rational::One());
  EXPECT_EQ(*SolvePathOnDwtForest({1, 0}, h), Rational::Zero());
}

TEST(AlgoDwt, BranchingTree) {
  // Root 0 with children 1, 2; both edges prob 1/2; query = single edge.
  ProbGraph h(3);
  AddEdgeOrDie(&h, 0, 1, 0, Rational::Half());
  AddEdgeOrDie(&h, 0, 2, 0, Rational::Half());
  EXPECT_EQ(*SolvePathOnDwtForest({0}, h), Rational(3, 4));
}

TEST(AlgoDwt, ForestCombinesComponents) {
  // Two independent single-edge trees with prob 1/2 each.
  ProbGraph h(4);
  AddEdgeOrDie(&h, 0, 1, 0, Rational::Half());
  AddEdgeOrDie(&h, 2, 3, 0, Rational::Half());
  EXPECT_EQ(*SolvePathOnDwtForest({0}, h), Rational(3, 4));
}

TEST(AlgoDwt, RejectsNonForest) {
  ProbGraph h(3);
  AddEdgeOrDie(&h, 0, 2, 0, Rational::One());
  AddEdgeOrDie(&h, 1, 2, 0, Rational::One());  // in-degree 2
  EXPECT_FALSE(SolvePathOnDwtForest({0}, h).ok());
}

TEST(AlgoDwt, KmpOverlappingMatches) {
  // Pattern RR on a chain RRR: matches end at depth 2 and 3.
  ProbGraph h(4);
  for (int i = 0; i < 3; ++i) {
    AddEdgeOrDie(&h, i, i + 1, 0, Rational::Half());
  }
  DwtStats stats;
  Rational p = *SolvePathOnDwtForest({0, 0}, h, &stats);
  EXPECT_EQ(stats.match_ends, 2u);
  EXPECT_EQ(p, Rational(3, 8));
}

TEST(AlgoDwt, DirectDpMatchesLineageEngine) {
  Rng rng(111);
  for (int trial = 0; trial < 100; ++trial) {
    ProbGraph h = AttachRandomProbabilities(
        &rng, RandomDownwardTree(&rng, rng.UniformInt(2, 14), 2, 0.5), 2,
        0.3);
    size_t m = rng.UniformInt(1, 4);
    std::vector<LabelId> pattern;
    for (size_t i = 0; i < m; ++i) {
      pattern.push_back(static_cast<LabelId>(rng.UniformInt(0, 1)));
    }
    Rational direct = *SolvePathOnDwtForest(pattern, h);
    MonotoneDnf lineage(0);
    Rational via_lineage =
        *SolvePathOnDwtForestViaLineage(pattern, h, &lineage);
    EXPECT_EQ(direct, via_lineage) << trial;
    EXPECT_TRUE(lineage.IsBetaAcyclic()) << trial;  // Prop. 4.10's key fact
  }
}

TEST(AlgoDwt, MatchesWorldEnumeration) {
  Rng rng(112);
  for (int trial = 0; trial < 100; ++trial) {
    ProbGraph h = AttachRandomProbabilities(
        &rng, RandomDownwardTree(&rng, rng.UniformInt(2, 9), 2, 0.5), 2);
    size_t m = rng.UniformInt(1, 3);
    std::vector<LabelId> pattern;
    for (size_t i = 0; i < m; ++i) {
      pattern.push_back(static_cast<LabelId>(rng.UniformInt(0, 1)));
    }
    DiGraph q = MakeLabeledPath(pattern);
    Rational fast = *SolvePathOnDwtForest(pattern, h);
    Rational brute = *SolveByWorldEnumeration(q, h);
    EXPECT_EQ(fast, brute) << "trial " << trial;
  }
}

TEST(AlgoDwtUnlabeled, GradedCollapse) {
  // Prop. 3.6: a balanced diamond query (difference of levels 2) on a chain.
  DiGraph diamond(4);
  AddEdgeOrDie(&diamond, 0, 1, 0);
  AddEdgeOrDie(&diamond, 0, 2, 0);
  AddEdgeOrDie(&diamond, 1, 3, 0);
  AddEdgeOrDie(&diamond, 2, 3, 0);
  ProbGraph h(3);
  AddEdgeOrDie(&h, 0, 1, 0, Rational::Half());
  AddEdgeOrDie(&h, 1, 2, 0, Rational::Half());
  // Equivalent to →→ on forests: Pr = 1/4.
  EXPECT_EQ(*SolveUnlabeledOnDwtForest(diamond, h), Rational(1, 4));
}

TEST(AlgoDwtUnlabeled, NonGradedQueryHasProbabilityZero) {
  DiGraph jumping(3);
  AddEdgeOrDie(&jumping, 0, 1, 0);
  AddEdgeOrDie(&jumping, 1, 2, 0);
  AddEdgeOrDie(&jumping, 0, 2, 0);
  ProbGraph h = ProbGraph::Certain(MakeOneWayPath(5));
  EXPECT_EQ(*SolveUnlabeledOnDwtForest(jumping, h), Rational::Zero());
}

TEST(AlgoDwtUnlabeled, MatchesWorldEnumerationOnArbitraryQueries) {
  Rng rng(113);
  for (int trial = 0; trial < 80; ++trial) {
    ProbGraph h = AttachRandomProbabilities(
        &rng, RandomDownwardTree(&rng, rng.UniformInt(2, 8), 1, 0.5), 2);
    // Random connected-or-not unlabeled query, possibly cyclic.
    DiGraph q = trial % 4 == 0 ? RandomConnected(&rng, 4, 2, 1)
                               : RandomPolytree(&rng, rng.UniformInt(2, 5), 1);
    Rational fast = *SolveUnlabeledOnDwtForest(q, h);
    Rational brute = *SolveByWorldEnumeration(q, h);
    EXPECT_EQ(fast, brute) << "trial " << trial;
  }
}

}  // namespace
}  // namespace phom
