#include <gtest/gtest.h>

#include <cstddef>
#include <vector>

#include "src/core/fallback.h"
#include "src/core/monte_carlo.h"
#include "src/core/solver.h"
#include "src/graph/builders.h"
#include "src/graph/generators.h"
#include "tests/test_util.h"

/// Cross-check verification harness (the repo's ground-truth gate): random
/// small query/instance pairs conditioned on the paper's classes — 2WP
/// instances (Prop. 4.11), DWT instances (Prop. 4.10/3.6), polytree
/// instances (Props. 5.4/5.5), and a #P-hard cell (Prop. 3.3) — each
/// checked for EXACT agreement between the dispatcher, every applicable
/// forced polynomial-time engine, the match-lineage solver, and brute-force
/// world enumeration, plus a statistical agreement check against Monte
/// Carlo. All seeds are fixed; every case is reproducible.

namespace phom {
namespace {

enum class CellClass { k2wp, kDwt, kPolytree, kHardCell };

const char* ToString(CellClass c) {
  switch (c) {
    case CellClass::k2wp: return "2WP";
    case CellClass::kDwt: return "DWT";
    case CellClass::kPolytree: return "polytree";
    case CellClass::kHardCell: return "hard-cell";
  }
  return "?";
}

struct CrosscheckCase {
  DiGraph query;
  ProbGraph instance;
  /// The class guarantees tractability (or, for the hard cell, hardness by
  /// construction), so the dispatcher's analysis is asserted per case.
  bool expect_tractable = false;
};

/// Class-conditioned generators. Instances stay small enough (≤ 12 edges)
/// that the 2^m world enumeration oracle is instant.
CrosscheckCase MakeCase(CellClass cell, Rng* rng) {
  CrosscheckCase out;
  switch (cell) {
    case CellClass::k2wp: {
      // Any connected query on a 2WP instance is PTIME (Prop. 4.11).
      size_t labels = static_cast<size_t>(rng->UniformInt(1, 2));
      out.query = RandomTwoWayPath(rng, rng->UniformInt(1, 3), labels);
      out.instance = AttachRandomProbabilities(
          rng, RandomTwoWayPath(rng, rng->UniformInt(2, 10), labels), 3);
      out.expect_tractable = true;
      break;
    }
    case CellClass::kDwt: {
      // Labeled 1WP queries on DWT instances are PTIME (Prop. 4.10).
      std::vector<LabelId> pattern;
      for (int i = 0, m = rng->UniformInt(1, 3); i < m; ++i) {
        pattern.push_back(static_cast<LabelId>(rng->UniformInt(0, 1)));
      }
      out.query = MakeLabeledPath(pattern);
      out.instance = AttachRandomProbabilities(
          rng, RandomDownwardTree(rng, rng->UniformInt(3, 11), 2, 0.4), 3);
      out.expect_tractable = true;
      break;
    }
    case CellClass::kPolytree: {
      // Unlabeled DWT queries collapse to a 1WP (Prop. 5.5) and are then
      // PTIME on polytree instances via the tree-automaton route
      // (Prop. 5.4); general polytree queries on polytree instances are
      // #P-hard (Prop. 5.6), so the class conditions on DWT queries.
      out.query = RandomDownwardTree(rng, rng->UniformInt(2, 5), 1, 0.5);
      out.instance = AttachRandomProbabilities(
          rng, RandomPolytree(rng, rng->UniformInt(3, 10), 1), 3);
      out.expect_tractable = true;
      break;
    }
    case CellClass::kHardCell: {
      // Disconnected two-label query (an R-path ⊔ an S-path) on an instance
      // containing both labels: the Prop. 3.3 #P-hard cell. No collapse
      // applies (two labels, no homomorphism between the components), so the
      // dispatcher must route through the exact exponential fallback.
      std::vector<LabelId> r_part(rng->UniformInt(1, 2), 0);
      std::vector<LabelId> s_part(rng->UniformInt(1, 2), 1);
      out.query =
          DisjointUnion({MakeLabeledPath(r_part), MakeLabeledPath(s_part)});
      DiGraph shape = RandomTwoWayPath(rng, rng->UniformInt(3, 9), 2);
      // Force both labels to appear so the answer is not trivially zero.
      DiGraph relabeled(shape.num_vertices());
      for (size_t e = 0; e < shape.num_edges(); ++e) {
        Edge edge = shape.edge(static_cast<EdgeId>(e));
        if (e == 0) edge.label = 0;
        if (e + 1 == shape.num_edges()) edge.label = 1;
        AddEdgeOrDie(&relabeled, edge.src, edge.dst, edge.label);
      }
      out.instance = AttachRandomProbabilities(rng, std::move(relabeled), 3);
      out.expect_tractable = false;
      break;
    }
  }
  return out;
}

constexpr uint64_t kSeedBase = 20170514;  // PODS 2017, fixed forever
constexpr int kCasesPerClass = 220;

class CrosscheckTest : public ::testing::TestWithParam<CellClass> {};

/// Exact agreement: dispatcher == brute-force world enumeration, and every
/// forced polynomial-time engine that accepts the problem agrees bit-exactly.
TEST_P(CrosscheckTest, SolverAgreesWithWorldEnumeration) {
  CellClass cell = GetParam();
  Rng rng(kSeedBase + static_cast<uint64_t>(cell));
  Solver solver;
  for (int trial = 0; trial < kCasesPerClass; ++trial) {
    CrosscheckCase c = MakeCase(cell, &rng);
    Result<SolveResult> fast = solver.Solve(c.query, c.instance);
    ASSERT_TRUE(fast.ok())
        << ToString(cell) << " trial " << trial << ": "
        << fast.status().ToString();
    EXPECT_EQ(fast->analysis.tractable, c.expect_tractable)
        << ToString(cell) << " trial " << trial << " dispatched to "
        << ToString(fast->analysis.algorithm);

    Result<Rational> oracle = SolveByWorldEnumeration(c.query, c.instance);
    ASSERT_TRUE(oracle.ok()) << ToString(cell) << " trial " << trial;
    EXPECT_EQ(fast->probability, *oracle)
        << ToString(cell) << " trial " << trial << " cell "
        << fast->analysis.cell << " algo "
        << ToString(fast->analysis.algorithm);

    // Every forced polynomial-time engine that accepts this problem must
    // reproduce the oracle exactly; rejections are fine (the engine's
    // preconditions just do not hold for this case).
    for (Algorithm algo :
         {Algorithm::kConnectedOn2wp, Algorithm::kPathOnDwt,
          Algorithm::kUnlabeledDwtInstance, Algorithm::kUnlabeledPolytree}) {
      SolveOptions force;
      force.force_algorithm = algo;
      Result<Rational> forced = SolveProbability(c.query, c.instance, force);
      if (forced.ok()) {
        EXPECT_EQ(*forced, *oracle)
            << ToString(cell) << " trial " << trial << " forced engine "
            << ToString(algo);
      }
    }

    // The match-lineage exponential solver is an independent second oracle
    // for connected queries.
    if (Classify(c.query).num_components == 1 && c.query.num_edges() > 0) {
      Result<Rational> lineage = SolveByMatchLineage(c.query, c.instance);
      ASSERT_TRUE(lineage.ok()) << ToString(cell) << " trial " << trial;
      EXPECT_EQ(*lineage, *oracle) << ToString(cell) << " trial " << trial;
    }
  }
}

/// Statistical agreement: Monte Carlo estimates land within a 5-sigma-ish
/// band of the exact answer on a handful of cases per class.
TEST_P(CrosscheckTest, MonteCarloAgreesStatistically) {
  CellClass cell = GetParam();
  Rng rng(kSeedBase + 1000 + static_cast<uint64_t>(cell));
  for (int trial = 0; trial < 8; ++trial) {
    CrosscheckCase c = MakeCase(cell, &rng);
    Result<Rational> exact_r = SolveProbability(c.query, c.instance);
    ASSERT_TRUE(exact_r.ok())
        << ToString(cell) << " trial " << trial << ": "
        << exact_r.status().ToString();
    double exact = exact_r->ToDouble();
    MonteCarloOptions options;
    options.samples = 20'000;
    Result<MonteCarloEstimate> e = EstimateProbabilityMonteCarlo(
        c.query, c.instance, kSeedBase + trial, options);
    ASSERT_TRUE(e.ok()) << ToString(cell) << " trial " << trial;
    // half_width_95 is ~2 sigma; 2.5x that plus an absolute floor for the
    // p≈0/p≈1 cases where the width estimate itself degenerates.
    EXPECT_NEAR(e->estimate, exact, 2.5 * e->half_width_95 + 5e-3)
        << ToString(cell) << " trial " << trial;
  }
}

INSTANTIATE_TEST_SUITE_P(Classes, CrosscheckTest,
                         ::testing::Values(CellClass::k2wp, CellClass::kDwt,
                                           CellClass::kPolytree,
                                           CellClass::kHardCell),
                         [](const ::testing::TestParamInfo<CellClass>& info) {
                           switch (info.param) {
                             case CellClass::k2wp: return "TwoWayPath";
                             case CellClass::kDwt: return "DownwardTree";
                             case CellClass::kPolytree: return "Polytree";
                             case CellClass::kHardCell: return "HardCell";
                           }
                           return "Unknown";
                         });

}  // namespace
}  // namespace phom
