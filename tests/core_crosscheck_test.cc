#include <gtest/gtest.h>

#include <cstddef>
#include <vector>

#include "src/core/fallback.h"
#include "src/core/monte_carlo.h"
#include "src/core/solver.h"
#include "src/graph/builders.h"
#include "src/graph/generators.h"
#include "tests/test_util.h"

/// Cross-check verification harness (the repo's ground-truth gate): random
/// small query/instance pairs conditioned on the paper's classes — 2WP
/// instances (Prop. 4.11), DWT instances (Prop. 4.10/3.6), polytree
/// instances (Props. 5.4/5.5), and a #P-hard cell (Prop. 3.3) — each
/// checked for EXACT agreement between the dispatcher, every applicable
/// forced polynomial-time engine, the match-lineage solver, and brute-force
/// world enumeration, plus a statistical agreement check against Monte
/// Carlo. All seeds are fixed; every case is reproducible. The corpus
/// generators live in tests/test_util.h and are shared with the numeric
/// backend agreement suite.

namespace phom {
namespace {

using test_util::CellClass;
using test_util::kCrosscheckSeedBase;
using test_util::MakeCrosscheckCase;
using test_util::ToString;

constexpr int kCasesPerClass = 220;

class CrosscheckTest : public ::testing::TestWithParam<CellClass> {};

/// Exact agreement: dispatcher == brute-force world enumeration, and every
/// forced polynomial-time engine that accepts the problem agrees bit-exactly.
TEST_P(CrosscheckTest, SolverAgreesWithWorldEnumeration) {
  CellClass cell = GetParam();
  Rng rng(kCrosscheckSeedBase + static_cast<uint64_t>(cell));
  Solver solver;
  for (int trial = 0; trial < kCasesPerClass; ++trial) {
    test_util::CrosscheckCase c = MakeCrosscheckCase(cell, &rng);
    Result<SolveResult> fast = solver.Solve(c.query, c.instance);
    ASSERT_TRUE(fast.ok())
        << ToString(cell) << " trial " << trial << ": "
        << fast.status().ToString();
    EXPECT_EQ(fast->analysis.tractable, c.expect_tractable)
        << ToString(cell) << " trial " << trial << " dispatched to "
        << ToString(fast->analysis.algorithm);

    Result<Rational> oracle = SolveByWorldEnumeration(c.query, c.instance);
    ASSERT_TRUE(oracle.ok()) << ToString(cell) << " trial " << trial;
    EXPECT_EQ(fast->probability, *oracle)
        << ToString(cell) << " trial " << trial << " cell "
        << fast->analysis.cell << " algo "
        << ToString(fast->analysis.algorithm);

    // Every forced polynomial-time engine that accepts this problem must
    // reproduce the oracle exactly; rejections are fine (the engine's
    // preconditions just do not hold for this case).
    for (Algorithm algo :
         {Algorithm::kConnectedOn2wp, Algorithm::kPathOnDwt,
          Algorithm::kUnlabeledDwtInstance, Algorithm::kUnlabeledPolytree}) {
      SolveOptions force;
      force.force_algorithm = algo;
      Result<Rational> forced = SolveProbability(c.query, c.instance, force);
      if (forced.ok()) {
        EXPECT_EQ(*forced, *oracle)
            << ToString(cell) << " trial " << trial << " forced engine "
            << ToString(algo);
      }
    }

    // Same through the registry's name-based selection: the lineage+Shannon
    // DWT route is an independent engine now.
    {
      SolveOptions force;
      force.force_engine = "dwt-lineage-shannon";
      Result<Rational> forced = SolveProbability(c.query, c.instance, force);
      if (forced.ok()) {
        EXPECT_EQ(*forced, *oracle)
            << ToString(cell) << " trial " << trial << " dwt-lineage-shannon";
      }
    }

    // The match-lineage exponential solver is an independent second oracle
    // for connected queries.
    if (Classify(c.query).num_components == 1 && c.query.num_edges() > 0) {
      Result<Rational> lineage = SolveByMatchLineage(c.query, c.instance);
      ASSERT_TRUE(lineage.ok()) << ToString(cell) << " trial " << trial;
      EXPECT_EQ(*lineage, *oracle) << ToString(cell) << " trial " << trial;
    }
  }
}

/// Statistical agreement: Monte Carlo estimates land within a 5-sigma-ish
/// band of the exact answer on a handful of cases per class — both through
/// the direct estimator API and through the registered "monte-carlo" engine.
TEST_P(CrosscheckTest, MonteCarloAgreesStatistically) {
  CellClass cell = GetParam();
  Rng rng(kCrosscheckSeedBase + 1000 + static_cast<uint64_t>(cell));
  for (int trial = 0; trial < 8; ++trial) {
    test_util::CrosscheckCase c = MakeCrosscheckCase(cell, &rng);
    Result<Rational> exact_r = SolveProbability(c.query, c.instance);
    ASSERT_TRUE(exact_r.ok())
        << ToString(cell) << " trial " << trial << ": "
        << exact_r.status().ToString();
    double exact = exact_r->ToDouble();
    MonteCarloOptions options;
    options.samples = 20'000;
    Result<MonteCarloEstimate> e = EstimateProbabilityMonteCarlo(
        c.query, c.instance, kCrosscheckSeedBase + trial, options);
    ASSERT_TRUE(e.ok()) << ToString(cell) << " trial " << trial;
    // half_width_95 is ~2 sigma; 2.5x that plus an absolute floor for the
    // p≈0/p≈1 cases where the width estimate itself degenerates.
    EXPECT_NEAR(e->estimate, exact, 2.5 * e->half_width_95 + 5e-3)
        << ToString(cell) << " trial " << trial;

    // The registered engine must reproduce the direct estimator bit for bit
    // when given identical inputs: it samples the PREPARED problem (labels
    // marginalized, query possibly collapsed), so compare on that.
    SolveOptions mc;
    mc.force_engine = "monte-carlo";
    mc.monte_carlo = options;
    mc.monte_carlo_seed = kCrosscheckSeedBase + trial;
    Result<SolveResult> via_engine = Solver(mc).Solve(c.query, c.instance);
    ASSERT_TRUE(via_engine.ok()) << ToString(cell) << " trial " << trial;
    PreparedProblem prep = PrepareProblem(c.query, c.instance);
    if (!prep.immediate.has_value()) {
      Result<MonteCarloEstimate> prepared_est = EstimateProbabilityMonteCarlo(
          prep.query, prep.instance(), kCrosscheckSeedBase + trial, options);
      ASSERT_TRUE(prepared_est.ok()) << ToString(cell) << " trial " << trial;
      EXPECT_EQ(via_engine->probability_double, prepared_est->estimate)
          << ToString(cell) << " trial " << trial;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Classes, CrosscheckTest,
                         ::testing::Values(CellClass::k2wp, CellClass::kDwt,
                                           CellClass::kPolytree,
                                           CellClass::kHardCell),
                         [](const ::testing::TestParamInfo<CellClass>& info) {
                           switch (info.param) {
                             case CellClass::k2wp: return "TwoWayPath";
                             case CellClass::kDwt: return "DownwardTree";
                             case CellClass::kPolytree: return "Polytree";
                             case CellClass::kHardCell: return "HardCell";
                           }
                           return "Unknown";
                         });

}  // namespace
}  // namespace phom
