#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "src/core/eval_session.h"
#include "src/core/solver.h"
#include "src/graph/builders.h"
#include "src/graph/generators.h"
#include "src/util/interval_double.h"
#include "src/util/numeric.h"
#include "src/util/rational.h"
#include "src/util/rng.h"
#include "tests/test_util.h"

/// Tier-1 proofs for the compensated directed rounding that backs the
/// IntervalDouble backend (util/interval_double.h):
///
///  * primitive soundness — DownAdd/UpAdd, DownSub/UpSub, DownMul/UpMul
///    bracket the EXACT result (verified against lossless Rational
///    arithmetic) on randomized operands, and are tight to ≤ 2 ulp;
///  * exactness — dyadic operands cost ZERO width (the error-free
///    transformations detect the exact case the seed arithmetic paid a
///    full outward ulp for);
///  * the compensated accumulators — DownSum/UpSum bracket exact signed
///    sums and are strictly tighter than per-term directed rounding;
///  * end to end — a dyadic-probability instance yields a POINT enclosure
///    through the full solve (conversion, kernels, Lemma 3.7 combine), and
///    the enclosure contains the exact Rational answer across the
///    cross-check corpus, including the signed inclusion–exclusion merge
///    of entangled UCQ unions (the deepest cancellation-prone sum).

namespace phom {
namespace {

using interval_internal::DownAdd;
using interval_internal::DownMul;
using interval_internal::DownSub;
using interval_internal::DownSum;
using interval_internal::UpAdd;
using interval_internal::UpMul;
using interval_internal::UpSub;
using interval_internal::UpSum;
using test_util::kCrosscheckSeedBase;
using test_util::MakeCrosscheckCase;
using test_util::MakeUcqCrosscheckCase;
using test_util::UcqProbabilityByEnumeration;

/// A reproducible stream of "awkward" doubles: full-width mantissas across
/// a spread of binades, the kind of operands whose sums and products round.
double RandomDouble(Rng* rng) {
  const double mantissa =
      static_cast<double>(rng->UniformInt(0, (int64_t{1} << 53) - 1));
  return std::ldexp(mantissa, static_cast<int>(rng->UniformInt(-73, -53)));
}

::testing::AssertionResult Brackets(double down, const Rational& exact,
                                    double up) {
  // Rational::FromDouble is lossless, so both comparisons are exact.
  if (Rational::FromDouble(down) > exact) {
    return ::testing::AssertionFailure()
           << "lower bound " << down << " exceeds the exact result";
  }
  if (Rational::FromDouble(up) < exact) {
    return ::testing::AssertionFailure()
           << "upper bound " << up << " is below the exact result";
  }
  return ::testing::AssertionSuccess();
}

double UlpsApart(double lo, double hi) {
  double steps = 0;
  double x = lo;
  while (x < hi && steps <= 4) {
    x = std::nextafter(x, std::numeric_limits<double>::infinity());
    ++steps;
  }
  return steps;
}

// ---------------------------------------------------------------------------
// Primitive soundness and tightness.
// ---------------------------------------------------------------------------

TEST(IntervalCompensation, DirectedAddBracketsExactSum) {
  Rng rng(kCrosscheckSeedBase);
  for (int i = 0; i < 2000; ++i) {
    const double a = RandomDouble(&rng);
    const double b = rng.Bernoulli(0.5) ? RandomDouble(&rng)
                                        : -RandomDouble(&rng);
    const Rational exact = Rational::FromDouble(a) + Rational::FromDouble(b);
    EXPECT_TRUE(Brackets(DownAdd(a, b), exact, UpAdd(a, b)))
        << "a=" << a << " b=" << b;
    // The pair is tight: at most one ulp stepped on each side.
    EXPECT_LE(UlpsApart(DownAdd(a, b), UpAdd(a, b)), 2.0);
    const Rational diff = Rational::FromDouble(a) - Rational::FromDouble(b);
    EXPECT_TRUE(Brackets(DownSub(a, b), diff, UpSub(a, b)))
        << "a=" << a << " b=" << b;
  }
}

TEST(IntervalCompensation, DirectedAddIsExactOnExactSums) {
  // The compensated primitives detect when rounding lost nothing and skip
  // the outward step the seed arithmetic always paid.
  EXPECT_EQ(DownAdd(0.25, 0.5), 0.75);
  EXPECT_EQ(UpAdd(0.25, 0.5), 0.75);
  EXPECT_EQ(DownSub(1.0, 0.5), 0.5);
  EXPECT_EQ(UpSub(1.0, 0.5), 0.5);
  // Sterbenz: 1 − x is exact for x in [1/2, 1].
  const double x = 0.7;
  EXPECT_EQ(DownSub(1.0, x), UpSub(1.0, x));
}

TEST(IntervalCompensation, DirectedMulBracketsExactProduct) {
  Rng rng(kCrosscheckSeedBase + 1);
  for (int i = 0; i < 2000; ++i) {
    const double a = RandomDouble(&rng);
    const double b = RandomDouble(&rng);
    const Rational exact = Rational::FromDouble(a) * Rational::FromDouble(b);
    EXPECT_TRUE(Brackets(DownMul(a, b), exact, UpMul(a, b)))
        << "a=" << a << " b=" << b;
    EXPECT_LE(UlpsApart(DownMul(a, b), UpMul(a, b)), 2.0);
  }
  // Dyadic products are exact: zero width.
  EXPECT_EQ(DownMul(0.5, 0.5), 0.25);
  EXPECT_EQ(UpMul(0.5, 0.5), 0.25);
  EXPECT_EQ(DownMul(0.0, 0.7), 0.0);
  EXPECT_EQ(UpMul(0.0, 0.7), 0.0);
}

TEST(IntervalCompensation, DirectedMulSubnormalFallbackStaysSound) {
  // An underflowed product loses the fma residual guarantee; the fallback
  // steps unconditionally, which must still bracket the exact product.
  const double a = 1e-200;
  const double b = 1e-150;
  const Rational exact = Rational::FromDouble(a) * Rational::FromDouble(b);
  EXPECT_TRUE(Brackets(DownMul(a, b), exact, UpMul(a, b)));
  const double tiny = 5e-324;
  EXPECT_TRUE(Brackets(DownMul(tiny, 0.5),
                       Rational::FromDouble(tiny) * Rational(1, 2),
                       UpMul(tiny, 0.5)));
}

TEST(IntervalCompensation, CompensatedSumsBracketAndBeatPerTermRounding) {
  // 1000 copies of an inexact term: the exact total is 1000 · fl(0.1).
  const double term = 0.1;
  const int n = 1000;
  DownSum lo;
  UpSum hi;
  double naive_lo = 0.0;
  double naive_hi = 0.0;
  Rational exact = Rational::Zero();
  for (int i = 0; i < n; ++i) {
    lo.Add(term);
    hi.Add(term);
    naive_lo = DownAdd(naive_lo, term);
    naive_hi = UpAdd(naive_hi, term);
    exact = exact + Rational::FromDouble(term);
  }
  EXPECT_TRUE(Brackets(lo.Value(), exact, hi.Value()));
  EXPECT_TRUE(Brackets(naive_lo, exact, naive_hi));
  // The compensated pair is strictly tighter than per-term directed
  // rounding: the naive loop pays up to an ulp of the RUNNING SUM per term,
  // the compensated one an ulp of the residual stream.
  EXPECT_LT(hi.Value() - lo.Value(), naive_hi - naive_lo);
  EXPECT_LE(UlpsApart(lo.Value(), hi.Value()), 2.0);
}

TEST(IntervalCompensation, CompensatedSumsHandleSignedCancellation) {
  // Alternating near-cancelling terms — the inclusion–exclusion shape.
  Rng rng(kCrosscheckSeedBase + 2);
  DownSum lo;
  UpSum hi;
  Rational exact = Rational::Zero();
  for (int i = 0; i < 500; ++i) {
    const double x = (i % 2 == 0 ? 1.0 : -1.0) * RandomDouble(&rng);
    lo.Add(x);
    hi.Add(x);
    exact = exact + Rational::FromDouble(x);
  }
  EXPECT_TRUE(Brackets(lo.Value(), exact, hi.Value()));
  // Dyadic-only streams stay EXACT even under cancellation.
  DownSum dyadic_lo;
  UpSum dyadic_hi;
  for (int i = 0; i < 100; ++i) {
    const double x = (i % 3 == 0 ? -1.0 : 1.0) * std::ldexp(1.0, -(i % 7));
    dyadic_lo.Add(x);
    dyadic_hi.Add(x);
  }
  EXPECT_EQ(dyadic_lo.Value(), dyadic_hi.Value());
}

// ---------------------------------------------------------------------------
// End to end through the solver.
// ---------------------------------------------------------------------------

/// PaperFigure1's shape with every probability replaced by a dyadic: every
/// kernel operation (+, ×, 1 − x on small dyadics) is then exact in double,
/// so the compensated backend must deliver a POINT enclosure — the seed's
/// unconditional outward step could not.
TEST(IntervalCompensation, DyadicInstanceYieldsPointEnclosure) {
  DiGraph query(4);
  AddEdgeOrDie(&query, 0, 1, 0);
  AddEdgeOrDie(&query, 1, 2, 1);
  AddEdgeOrDie(&query, 3, 2, 1);
  ProbGraph instance(4);
  AddEdgeOrDie(&instance, 0, 1, 0, Rational(1, 2));
  AddEdgeOrDie(&instance, 3, 1, 0, Rational(3, 4));
  AddEdgeOrDie(&instance, 1, 2, 1, Rational(1, 4));
  AddEdgeOrDie(&instance, 0, 3, 0, Rational::One());
  AddEdgeOrDie(&instance, 2, 3, 0, Rational(1, 16));
  AddEdgeOrDie(&instance, 2, 0, 1, Rational(1, 2));

  EvalSession session(instance);
  Result<SolveResult> exact = session.Solve(query);
  ASSERT_TRUE(exact.ok()) << exact.status().ToString();

  SolveOverrides interval;
  interval.numeric = NumericBackend::kIntervalDouble;
  Result<SolveResult> enclosed = session.Solve(query, interval);
  ASSERT_TRUE(enclosed.ok()) << enclosed.status().ToString();
  ASSERT_TRUE(enclosed->bound.certified);
  EXPECT_EQ(enclosed->bound.lo, enclosed->bound.hi)
      << "dyadic arithmetic is exact; the enclosure must be a point";
  EXPECT_EQ(Rational::FromDouble(enclosed->bound.lo), exact->probability);
}

TEST(IntervalCompensation, EnclosureContainsExactAcrossCrosscheckCorpus) {
  SolveOverrides interval;
  interval.numeric = NumericBackend::kIntervalDouble;
  for (test_util::CellClass cell : test_util::AllCellClasses()) {
    for (uint64_t i = 0; i < 6; ++i) {
      Rng rng(kCrosscheckSeedBase + 100 * static_cast<uint64_t>(cell) + i);
      test_util::CrosscheckCase c = MakeCrosscheckCase(cell, &rng);
      SCOPED_TRACE(std::string(test_util::ToString(cell)) +
                   " seed offset " + std::to_string(i));
      EvalSession session(c.instance);
      Result<SolveResult> exact = session.Solve(c.query);
      ASSERT_TRUE(exact.ok()) << exact.status().ToString();
      Result<SolveResult> enclosed = session.Solve(c.query, interval);
      ASSERT_TRUE(enclosed.ok()) << enclosed.status().ToString();
      ASSERT_TRUE(enclosed->bound.certified);
      EXPECT_LE(Rational::FromDouble(enclosed->bound.lo),
                exact->probability);
      EXPECT_GE(Rational::FromDouble(enclosed->bound.hi),
                exact->probability);
    }
  }
}

TEST(IntervalCompensation, EnclosureSurvivesSignedUcqInclusionExclusion) {
  // The lifted engine's inclusion–exclusion merge is the one signed sum in
  // the system — the compensated WideAdd/WideSub path. Entangled unions
  // from the seeded corpus exercise it; the enumeration oracle is exact.
  SolveOverrides interval;
  interval.numeric = NumericBackend::kIntervalDouble;
  for (uint64_t i = 0; i < 12; ++i) {
    Rng rng(kCrosscheckSeedBase + 1000 + i);
    test_util::UcqCrosscheckCase c = MakeUcqCrosscheckCase(&rng);
    SCOPED_TRACE("ucq seed offset " + std::to_string(i));
    const Rational oracle =
        UcqProbabilityByEnumeration(c.ucq.disjuncts, c.instance);
    EvalSession session(c.instance);
    Result<SolveResult> enclosed = session.SolveUcq(c.ucq, interval);
    ASSERT_TRUE(enclosed.ok()) << enclosed.status().ToString();
    ASSERT_TRUE(enclosed->bound.certified);
    EXPECT_LE(Rational::FromDouble(enclosed->bound.lo), oracle);
    EXPECT_GE(Rational::FromDouble(enclosed->bound.hi), oracle);
    // The union's double estimate sits inside its own enclosure.
    EXPECT_GE(enclosed->probability_double, enclosed->bound.lo);
    EXPECT_LE(enclosed->probability_double, enclosed->bound.hi);
  }
}

}  // namespace
}  // namespace phom
