#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <string>
#include <vector>

#include "src/core/eval_session.h"
#include "src/core/monte_carlo.h"
#include "src/core/solver.h"
#include "src/graph/builders.h"
#include "src/graph/cq_parser.h"
#include "src/graph/generators.h"
#include "src/lifted/lift.h"
#include "src/lifted/plan.h"
#include "src/serve/executor.h"
#include "src/serve/request.h"
#include "tests/test_util.h"

/// Tier-1 coverage of the UCQ front door and the Dalvi–Suciu lifted engine:
/// exact agreement with independent world enumeration on a seeded corpus
/// (whatever the liftability verdict), typed lifted/not-liftable
/// provenance, bit-identity of the single-disjunct path with plain CQ
/// solves, serial-vs-executor bit-identity at several thread counts, the
/// whole-union Monte Carlo estimator, and the executor's interval-width
/// histogram satellite.

namespace phom {
namespace {

using serve::BatchExecutor;
using serve::ExecutorOptions;
using serve::IntervalWidthBucket;
using serve::kIntervalWidthInvalid;
using serve::SolveRequest;
using serve::SolveTicket;
using test_util::MakeUcqCrosscheckCase;
using test_util::UcqCrosscheckCase;
using test_util::UcqProbabilityByEnumeration;

constexpr uint64_t kSeedBase = 20260808;

bool StartsWith(const std::string& s, const std::string& prefix) {
  return s.compare(0, prefix.size(), prefix) == 0;
}

/// Parses against an alphabet pre-seeded with R=0, S=1 so label ids line up
/// with the hand-built instances below.
Ucq ParseRs(const std::string& text) {
  Alphabet alphabet;
  alphabet.Intern("R");
  alphabet.Intern("S");
  Result<ParsedUcq> parsed = ParseUcq(text, &alphabet);
  PHOM_CHECK_MSG(parsed.ok(), parsed.status().ToString());
  return parsed->ucq;
}

/// Directed 4-cycle alternating R(0) and S(1) labels, every edge 1/2:
/// connected and not a polytree, so {R,S}-queries land in #P-hard cells
/// while each single-label restriction is a union of plain 1WP edges.
ProbGraph AlternatingCycle() {
  DiGraph g(4);
  AddEdgeOrDie(&g, 0, 1, 0);
  AddEdgeOrDie(&g, 1, 2, 1);
  AddEdgeOrDie(&g, 2, 3, 0);
  AddEdgeOrDie(&g, 3, 0, 1);
  std::vector<Rational> probs(4, Rational::Half());
  return ProbGraph(std::move(g), std::move(probs));
}

/// Two-edge path R(0,1), S(1,2), every edge 1/2.
ProbGraph RsPath() {
  DiGraph g(3);
  AddEdgeOrDie(&g, 0, 1, 0);
  AddEdgeOrDie(&g, 1, 2, 1);
  std::vector<Rational> probs(2, Rational::Half());
  return ProbGraph(std::move(g), std::move(probs));
}

// ---------------------------------------------------------------------------
// Plan shapes and verdicts
// ---------------------------------------------------------------------------

TEST(LiftedUcq, EmptyUnionIsConstantFalse) {
  ProbGraph instance = AlternatingCycle();
  Result<SolveResult> r = Solver().SolveUcq(Ucq{}, instance);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_TRUE(r->probability.is_zero());
  EXPECT_TRUE(r->bound.certified);
  EXPECT_EQ(r->bound.lo, 0.0);
  EXPECT_EQ(r->bound.hi, 0.0);
}

TEST(LiftedUcq, LabelDisjointUnionCompilesToLiftedIndependentUnion) {
  ProbGraph instance = AlternatingCycle();
  Ucq ucq = ParseRs("R(x,y) | S(x,y)");

  PreparedProblem prepared = lifted::PrepareUcq(ucq, instance);
  ASSERT_NE(prepared.ucq, nullptr);
  EXPECT_TRUE(prepared.ucq->plan.lifted);
  EXPECT_TRUE(prepared.analysis.tractable);
  EXPECT_EQ(lifted::FormatLiftedPlan(prepared.ucq->plan), "iunion(L0, L1)");

  Result<SolveResult> r = Solver().SolveUcq(ucq, instance);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  // P(some R edge) = P(some S edge) = 3/4, independent: 1 - 1/16.
  EXPECT_EQ(r->probability, Rational(15, 16));
  EXPECT_EQ(r->probability, UcqProbabilityByEnumeration(ucq.disjuncts, instance));
  EXPECT_EQ(r->stats.engine, "lifted-ucq");
  EXPECT_EQ(r->stats.ucq_verdict, "lifted");
  EXPECT_EQ(r->stats.ucq_disjuncts, 2u);
  EXPECT_EQ(r->stats.ucq_units, 2u);
}

TEST(LiftedUcq, EntangledUnionGetsInclusionExclusionAndTypedVerdict) {
  ProbGraph instance = AlternatingCycle();
  // Neither disjunct subsumes the other; they share both labels, so the
  // group is entangled, and each {R,S}-leaf runs on the connected cycle —
  // a #P-hard cell (Prop. 5.1) — making the plan exact but not safe.
  Ucq ucq = ParseRs("R(x,y), S(y,z) | S(x,y), R(y,z)");

  PreparedProblem prepared = lifted::PrepareUcq(ucq, instance);
  ASSERT_NE(prepared.ucq, nullptr);
  EXPECT_FALSE(prepared.ucq->plan.lifted);
  EXPECT_FALSE(prepared.analysis.tractable);
  EXPECT_EQ(lifted::FormatLiftedPlan(prepared.ucq->plan),
            "ie(+L0, +L1, -L2)");

  Result<SolveResult> r = Solver().SolveUcq(ucq, instance);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->probability, UcqProbabilityByEnumeration(ucq.disjuncts, instance));
  EXPECT_TRUE(StartsWith(r->stats.ucq_verdict, "not-liftable: "))
      << r->stats.ucq_verdict;
  EXPECT_EQ(r->stats.ucq_units, 3u) << "two singletons + one cross term";
}

TEST(LiftedUcq, ImpossibleDisjunctAndCrossTermsArePruned) {
  // On the R->S path the S->R disjunct has no homomorphism, so its
  // singleton and the cross term fold to constant 0 and are pruned: the
  // whole plan collapses to the surviving leaf.
  ProbGraph instance = RsPath();
  Ucq ucq = ParseRs("R(x,y), S(y,z) | S(x,y), R(y,z)");

  PreparedProblem prepared = lifted::PrepareUcq(ucq, instance);
  ASSERT_NE(prepared.ucq, nullptr);
  EXPECT_TRUE(prepared.ucq->plan.lifted);
  EXPECT_EQ(lifted::FormatLiftedPlan(prepared.ucq->plan), "L0");

  Result<SolveResult> r = Solver().SolveUcq(ucq, instance);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->probability, Rational(1, 4));
  EXPECT_EQ(r->probability, UcqProbabilityByEnumeration(ucq.disjuncts, instance));
  EXPECT_EQ(r->stats.ucq_verdict, "lifted");
}

TEST(LiftedUcq, EntangledGroupBeyondCapReportsNotSupported) {
  // 13 disjuncts all sharing label R, none subsuming another (each has a
  // private second label): one entangled group past kMaxEntangledDisjuncts.
  Alphabet alphabet;
  alphabet.Intern("R");
  std::string text;
  for (size_t i = 0; i <= lifted::kMaxEntangledDisjuncts; ++i) {
    if (!text.empty()) text += " | ";
    text += "R(x,y), P" + std::to_string(i) + "(y,z)";
  }
  Result<ParsedUcq> parsed = ParseUcq(text, &alphabet);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();

  ProbGraph instance = AlternatingCycle();
  PreparedProblem prepared = lifted::PrepareUcq(parsed->ucq, instance);
  ASSERT_NE(prepared.ucq, nullptr);
  EXPECT_EQ(prepared.ucq->plan.root, -1);
  EXPECT_TRUE(prepared.ucq->plan.units.empty())
      << "a non-compilable plan must not fan out";

  Result<SolveResult> r = Solver().SolveUcq(parsed->ucq, instance);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), Status::Code::kNotSupported);
  EXPECT_NE(r.status().message().find("exceeds the cap"), std::string::npos)
      << r.status().message();
}

// ---------------------------------------------------------------------------
// Single-disjunct bit-identity with the plain CQ path
// ---------------------------------------------------------------------------

TEST(LiftedUcq, OneDisjunctUnionBitIdenticalToPlainCqSolve) {
  for (uint64_t i = 0; i < 6; ++i) {
    Rng rng(kSeedBase + i);
    UcqCrosscheckCase c = MakeUcqCrosscheckCase(&rng);
    const DiGraph& query = c.ucq.disjuncts[0];
    Ucq single;
    single.disjuncts.push_back(query);
    for (NumericBackend backend :
         {NumericBackend::kExact, NumericBackend::kIntervalDouble,
          NumericBackend::kDouble}) {
      SolveOptions options;
      options.numeric = backend;
      Solver solver(options);
      Result<SolveResult> cq = solver.Solve(query, c.instance);
      Result<SolveResult> ucq = solver.SolveUcq(single, c.instance);
      ASSERT_EQ(cq.ok(), ucq.ok());
      if (!cq.ok()) continue;
      EXPECT_EQ(cq->probability, ucq->probability);
      EXPECT_EQ(cq->probability_double, ucq->probability_double);
      EXPECT_EQ(cq->bound.lo, ucq->bound.lo);
      EXPECT_EQ(cq->bound.hi, ucq->bound.hi);
      EXPECT_EQ(cq->bound.certified, ucq->bound.certified);
      EXPECT_EQ(cq->stats.engine, ucq->stats.engine);
      EXPECT_TRUE(ucq->stats.ucq_verdict.empty())
          << "the single-CQ path must not run the lifting machinery";
    }
  }
}

// ---------------------------------------------------------------------------
// Seeded crosscheck corpus: lifted == world enumeration == forced fallback
// ---------------------------------------------------------------------------

TEST(LiftedUcq, CrosscheckCorpusMatchesWorldEnumerationExactly) {
  size_t multi_disjunct = 0;
  for (uint64_t i = 0; i < 20; ++i) {
    Rng rng(kSeedBase + 100 + i);
    UcqCrosscheckCase c = MakeUcqCrosscheckCase(&rng);
    Rational oracle = UcqProbabilityByEnumeration(c.ucq.disjuncts, c.instance);
    Result<SolveResult> r = Solver().SolveUcq(c.ucq, c.instance);
    ASSERT_TRUE(r.ok()) << "case " << i << ": " << r.status().ToString();
    EXPECT_EQ(r->probability, oracle) << "case " << i;
    if (r->stats.ucq_units > 0) ++multi_disjunct;
  }
  EXPECT_GT(multi_disjunct, 0u)
      << "the corpus should exercise genuine multi-disjunct plans";
}

TEST(LiftedUcq, CrosscheckCorpusBackendsAgree) {
  for (uint64_t i = 0; i < 8; ++i) {
    Rng rng(kSeedBase + 200 + i);
    UcqCrosscheckCase c = MakeUcqCrosscheckCase(&rng);
    const double oracle =
        UcqProbabilityByEnumeration(c.ucq.disjuncts, c.instance).ToDouble();

    SolveOptions interval;
    interval.numeric = NumericBackend::kIntervalDouble;
    Result<SolveResult> ri = Solver(interval).SolveUcq(c.ucq, c.instance);
    ASSERT_TRUE(ri.ok()) << ri.status().ToString();
    EXPECT_TRUE(ri->bound.certified);
    EXPECT_LE(ri->bound.lo, oracle + 1e-12) << "case " << i;
    EXPECT_GE(ri->bound.hi, oracle - 1e-12) << "case " << i;

    SolveOptions dbl;
    dbl.numeric = NumericBackend::kDouble;
    Result<SolveResult> rd = Solver(dbl).SolveUcq(c.ucq, c.instance);
    ASSERT_TRUE(rd.ok()) << rd.status().ToString();
    EXPECT_NEAR(rd->probability_double, oracle, 1e-9) << "case " << i;
  }
}

TEST(LiftedUcq, ForcedFallbackEnginePerUnitStaysExact) {
  SolveOptions options;
  options.force_engine = "fallback";
  Solver solver(options);
  for (uint64_t i = 0; i < 6; ++i) {
    Rng rng(kSeedBase + 300 + i);
    UcqCrosscheckCase c = MakeUcqCrosscheckCase(&rng);
    Rational oracle = UcqProbabilityByEnumeration(c.ucq.disjuncts, c.instance);
    Result<SolveResult> r = solver.SolveUcq(c.ucq, c.instance);
    ASSERT_TRUE(r.ok()) << "case " << i << ": " << r.status().ToString();
    EXPECT_EQ(r->probability, oracle) << "case " << i;
  }
}

// ---------------------------------------------------------------------------
// EvalSession front door
// ---------------------------------------------------------------------------

TEST(LiftedUcq, EvalSessionSolveUcqMatchesOneShotSolver) {
  Rng rng(kSeedBase + 400);
  UcqCrosscheckCase c = MakeUcqCrosscheckCase(&rng);
  EvalSession session(c.instance);
  Result<SolveResult> via_session = session.SolveUcq(c.ucq);
  Result<SolveResult> one_shot = Solver().SolveUcq(c.ucq, c.instance);
  ASSERT_EQ(via_session.ok(), one_shot.ok());
  ASSERT_TRUE(via_session.ok()) << via_session.status().ToString();
  EXPECT_EQ(via_session->probability, one_shot->probability);
  EXPECT_EQ(via_session->stats.ucq_verdict, one_shot->stats.ucq_verdict);

  SolveOverrides overrides;
  overrides.numeric = NumericBackend::kDouble;
  Result<SolveResult> overridden = session.SolveUcq(c.ucq, overrides);
  ASSERT_TRUE(overridden.ok());
  EXPECT_EQ(overridden->numeric, NumericBackend::kDouble);
  EXPECT_NEAR(overridden->probability_double, one_shot->probability.ToDouble(),
              1e-12);
}

// ---------------------------------------------------------------------------
// Serial vs executor bit-identity, threads {1, 2, 8}
// ---------------------------------------------------------------------------

TEST(LiftedUcq, ExecutorAnswersBitIdenticalToSerialAtEveryThreadCount) {
  constexpr size_t kCases = 6;
  std::vector<UcqCrosscheckCase> cases;
  for (uint64_t i = 0; i < kCases; ++i) {
    Rng rng(kSeedBase + 500 + i);
    cases.push_back(MakeUcqCrosscheckCase(&rng));
  }
  // Handcrafted liftable + not-liftable plans ride along.
  UcqCrosscheckCase lifted_case;
  lifted_case.ucq = ParseRs("R(x,y) | S(x,y)");
  lifted_case.instance = AlternatingCycle();
  cases.push_back(lifted_case);
  UcqCrosscheckCase hard_case;
  hard_case.ucq = ParseRs("R(x,y), S(y,z) | S(x,y), R(y,z)");
  hard_case.instance = AlternatingCycle();
  cases.push_back(hard_case);

  for (NumericBackend backend :
       {NumericBackend::kExact, NumericBackend::kIntervalDouble}) {
    SolveOptions options;
    options.numeric = backend;
    std::vector<std::unique_ptr<EvalSession>> sessions;
    std::vector<Result<SolveResult>> serial;
    for (const UcqCrosscheckCase& c : cases) {
      sessions.push_back(std::make_unique<EvalSession>(c.instance, options));
      serial.push_back(sessions.back()->SolveUcq(c.ucq));
    }
    for (size_t threads : {size_t{1}, size_t{2}, size_t{8}}) {
      ExecutorOptions exec_options;
      exec_options.threads = threads;
      BatchExecutor executor(exec_options);
      std::vector<SolveTicket> tickets;
      for (size_t i = 0; i < cases.size(); ++i) {
        tickets.push_back(
            executor.Submit(*sessions[i], SolveRequest(cases[i].ucq)));
      }
      std::vector<Result<SolveResult>> parallel =
          executor.CollectHelping(tickets);
      ASSERT_EQ(parallel.size(), serial.size());
      for (size_t i = 0; i < serial.size(); ++i) {
        ASSERT_EQ(parallel[i].ok(), serial[i].ok())
            << "case " << i << " threads " << threads;
        if (!serial[i].ok()) continue;
        EXPECT_EQ(parallel[i]->probability, serial[i]->probability)
            << "case " << i << " threads " << threads;
        EXPECT_EQ(parallel[i]->probability_double,
                  serial[i]->probability_double)
            << "case " << i << " threads " << threads;
        EXPECT_EQ(parallel[i]->bound.lo, serial[i]->bound.lo);
        EXPECT_EQ(parallel[i]->bound.hi, serial[i]->bound.hi);
        EXPECT_EQ(parallel[i]->bound.certified, serial[i]->bound.certified);
        EXPECT_EQ(parallel[i]->stats.engine, serial[i]->stats.engine);
        EXPECT_EQ(parallel[i]->stats.ucq_verdict,
                  serial[i]->stats.ucq_verdict);
        EXPECT_EQ(parallel[i]->stats.ucq_units, serial[i]->stats.ucq_units);
      }
    }
  }
}

TEST(LiftedUcq, ExecutorSurfacesTypedNotSupportedForNonCompilablePlans) {
  Alphabet alphabet;
  std::string text;
  for (size_t i = 0; i <= lifted::kMaxEntangledDisjuncts; ++i) {
    if (!text.empty()) text += " | ";
    text += "R(x,y), P" + std::to_string(i) + "(y,z)";
  }
  Result<ParsedUcq> parsed = ParseUcq(text, &alphabet);
  ASSERT_TRUE(parsed.ok());
  ProbGraph instance = AlternatingCycle();
  EvalSession session(instance);
  ExecutorOptions exec_options;
  exec_options.threads = 2;
  BatchExecutor executor(exec_options);
  std::vector<SolveTicket> tickets;
  tickets.push_back(executor.Submit(session, SolveRequest(parsed->ucq)));
  std::vector<Result<SolveResult>> results = executor.CollectHelping(tickets);
  ASSERT_EQ(results.size(), 1u);
  ASSERT_FALSE(results[0].ok());
  EXPECT_EQ(results[0].status().code(), Status::Code::kNotSupported);
}

// ---------------------------------------------------------------------------
// Whole-union Monte Carlo estimation
// ---------------------------------------------------------------------------

TEST(LiftedUcq, MonteCarloUnionEstimatorSamplesTheWholeUnion) {
  ProbGraph instance = AlternatingCycle();
  Ucq ucq = ParseRs("R(x,y), S(y,z) | S(x,y), R(y,z)");
  const double oracle =
      UcqProbabilityByEnumeration(ucq.disjuncts, instance).ToDouble();

  Result<MonteCarloEstimate> est =
      EstimateUcqProbabilityMonteCarlo(ucq.disjuncts, instance, kSeedBase);
  ASSERT_TRUE(est.ok()) << est.status().ToString();
  EXPECT_NEAR(est->estimate, oracle, 0.02);

  // Through the solver: a forced "monte-carlo" engine on a UCQ samples the
  // union directly (never a signed combination of per-disjunct estimates).
  SolveOptions options;
  options.force_engine = "monte-carlo";
  Result<SolveResult> r = Solver(options).SolveUcq(ucq, instance);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->stats.engine, "monte-carlo");
  EXPECT_NEAR(r->probability_double, oracle, 0.02);
}

TEST(LiftedUcq, MonteCarloUnionEstimatorEdgeCases) {
  ProbGraph instance = AlternatingCycle();
  // Empty unions are a caller bug, not a sample-free zero.
  Result<MonteCarloEstimate> empty =
      EstimateUcqProbabilityMonteCarlo({}, instance, kSeedBase);
  ASSERT_FALSE(empty.ok());
  EXPECT_EQ(empty.status().code(), Status::Code::kInvalidArgument);

  // One disjunct is bit-identical to the single-query estimator.
  Ucq ucq = ParseRs("R(x,y), S(y,z)");
  MonteCarloOptions mc;
  mc.samples = 4096;
  Result<MonteCarloEstimate> single = EstimateProbabilityMonteCarlo(
      ucq.disjuncts[0], instance, kSeedBase, mc);
  Result<MonteCarloEstimate> union_of_one = EstimateUcqProbabilityMonteCarlo(
      ucq.disjuncts, instance, kSeedBase, mc);
  ASSERT_TRUE(single.ok());
  ASSERT_TRUE(union_of_one.ok());
  EXPECT_EQ(single->estimate, union_of_one->estimate);
  EXPECT_EQ(single->samples, union_of_one->samples);
  EXPECT_EQ(single->hits, union_of_one->hits);
}

// ---------------------------------------------------------------------------
// Interval-width histogram (ExecutorStats satellite)
// ---------------------------------------------------------------------------

TEST(LiftedUcq, IntervalWidthBucketing) {
  EXPECT_EQ(IntervalWidthBucket(0.0), 0u);
#ifdef NDEBUG
  // Invalid widths (hi < lo, or NaN endpoints) land in the loud overflow
  // bucket instead of masquerading as point enclosures in bucket 0; debug
  // builds assert instead.
  EXPECT_EQ(IntervalWidthBucket(-1.0), kIntervalWidthInvalid);
  EXPECT_EQ(IntervalWidthBucket(std::nan("")), kIntervalWidthInvalid);
#endif
  // width = m * 2^e with m in [0.5, 1) lands in bucket e + 64.
  EXPECT_EQ(IntervalWidthBucket(0.5), 64u);
  EXPECT_EQ(IntervalWidthBucket(0.75), 64u);
  EXPECT_EQ(IntervalWidthBucket(1.0), 65u);
  EXPECT_EQ(IntervalWidthBucket(std::ldexp(1.0, -64)), 1u);
  // Tails clamp instead of overflowing the array.
  EXPECT_EQ(IntervalWidthBucket(5e-324), 1u);
  EXPECT_EQ(IntervalWidthBucket(1e308), 65u);
  // Monotone in the width.
  EXPECT_LT(IntervalWidthBucket(1e-10), IntervalWidthBucket(1e-5));
  EXPECT_LT(IntervalWidthBucket(1e-5), IntervalWidthBucket(0.5));
}

TEST(LiftedUcq, ExecutorRecordsIntervalWidthHistogram) {
  ProbGraph instance = AlternatingCycle();
  EvalSession session(instance);
  ExecutorOptions exec_options;
  exec_options.threads = 2;
  BatchExecutor executor(exec_options);

  std::vector<SolveTicket> tickets;
  tickets.push_back(executor.Submit(
      session,
      SolveRequest(ParseRs("R(x,y) | S(x,y)"))
          .WithNumeric(NumericBackend::kIntervalDouble)));
  tickets.push_back(executor.Submit(
      session,
      SolveRequest(ParseRs("R(x,y), S(y,z)").disjuncts[0])
          .WithNumeric(NumericBackend::kIntervalDouble)));
  // An exact solve must NOT land in the histogram.
  tickets.push_back(
      executor.Submit(session, SolveRequest(ParseRs("R(x,y)").disjuncts[0])));
  std::vector<Result<SolveResult>> results = executor.CollectHelping(tickets);
  for (const Result<SolveResult>& r : results) {
    ASSERT_TRUE(r.ok()) << r.status().ToString();
  }

  serve::ExecutorStats stats = executor.stats();
  uint64_t total = 0;
  for (uint64_t count : stats.interval_width_hist) total += count;
  EXPECT_EQ(total, 2u) << "one bump per successful interval-backend solve";
}

}  // namespace
}  // namespace phom
