#include "src/util/status.h"

#include <gtest/gtest.h>

#include "src/util/result.h"

namespace phom {
namespace {

TEST(Status, Basics) {
  EXPECT_TRUE(Status::OK().ok());
  Status invalid = Status::Invalid("bad input");
  EXPECT_FALSE(invalid.ok());
  EXPECT_EQ(invalid.code(), Status::Code::kInvalidArgument);
  EXPECT_EQ(invalid.message(), "bad input");
  EXPECT_EQ(invalid.ToString(), "Invalid: bad input");
  EXPECT_EQ(Status::NotSupported("x").code(), Status::Code::kNotSupported);
  EXPECT_EQ(Status::ResourceExhausted("y").code(),
            Status::Code::kResourceExhausted);
  EXPECT_EQ(Status::DeadlineExceeded("late").code(),
            Status::Code::kDeadlineExceeded);
  EXPECT_EQ(Status::DeadlineExceeded("late").ToString(),
            "DeadlineExceeded: late");
  EXPECT_EQ(Status::Cancelled("stop").code(), Status::Code::kCancelled);
  EXPECT_EQ(Status::Cancelled("stop").ToString(), "Cancelled: stop");
}

TEST(Result, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.ValueOrDie(), 42);
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(Result, HoldsStatus) {
  Result<int> r(Status::Invalid("nope"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().message(), "nope");
  EXPECT_THROW(r.ValueOrDie(), std::logic_error);
}

TEST(Result, OkStatusIsABug) {
  EXPECT_THROW(Result<int>(Status::OK()), std::logic_error);
}

Result<int> Doubler(Result<int> in) {
  PHOM_ASSIGN_OR_RETURN(int v, in);
  return 2 * v;
}

TEST(Result, AssignOrReturnMacro) {
  EXPECT_EQ(Doubler(21).ValueOrDie(), 42);
  EXPECT_FALSE(Doubler(Status::Invalid("broken")).ok());
  EXPECT_EQ(Doubler(Status::Invalid("broken")).status().message(), "broken");
}

TEST(Check, ThrowsLogicError) {
  EXPECT_THROW(PHOM_CHECK(1 == 2), std::logic_error);
  EXPECT_NO_THROW(PHOM_CHECK(1 == 1));
  try {
    PHOM_CHECK_MSG(false, "context " << 7);
    FAIL();
  } catch (const std::logic_error& e) {
    EXPECT_NE(std::string(e.what()).find("context 7"), std::string::npos);
  }
}

}  // namespace
}  // namespace phom
