#include "src/reductions/arrow_rewrite.h"

#include <gtest/gtest.h>

#include "src/core/fallback.h"
#include "src/graph/builders.h"
#include "src/graph/classify.h"

namespace phom {
namespace {

TEST(ArrowRewrite, SingleForwardEdgeExpands) {
  ProbGraph g(2);
  AddEdgeOrDie(&g, 0, 1, 0, Rational::Half());
  std::map<LabelId, ArrowRewriteRule> rules;
  rules[0] = ArrowRewriteRule{">><", 1};
  ProbGraph out = RewriteArrows(g, rules);
  // a -> x1 -> x2 <- b: 4 vertices, 3 edges, middle edge carries 1/2.
  EXPECT_EQ(out.num_vertices(), 4u);
  EXPECT_EQ(out.num_edges(), 3u);
  EXPECT_EQ(out.NumUncertainEdges(), 1u);
  size_t uncertain_at = 99;
  for (EdgeId e = 0; e < out.num_edges(); ++e) {
    if (!out.prob(e).is_one()) uncertain_at = e;
  }
  EXPECT_EQ(uncertain_at, 1u);  // pattern position 1
}

TEST(ArrowRewrite, EndpointsPreserved) {
  ProbGraph g(3);
  AddEdgeOrDie(&g, 0, 1, 0, Rational::One());
  AddEdgeOrDie(&g, 1, 2, 1, Rational::One());
  std::map<LabelId, ArrowRewriteRule> rules;
  rules[0] = ArrowRewriteRule{">>", 0};
  rules[1] = ArrowRewriteRule{"<", 0};
  ProbGraph out = RewriteArrows(g, rules);
  // Label 0 edge becomes 0 -> v3 -> 1; label 1 edge becomes 2 -> 1.
  EXPECT_EQ(out.num_vertices(), 4u);
  EXPECT_TRUE(out.graph().FindEdge(0, 3).has_value());
  EXPECT_TRUE(out.graph().FindEdge(3, 1).has_value());
  EXPECT_TRUE(out.graph().FindEdge(2, 1).has_value());
}

TEST(ArrowRewrite, PreservesTwoWayPathShape) {
  // Rewriting a labeled 1WP with path-shaped gadgets yields a 2WP.
  DiGraph path = MakeLabeledPath({0, 1, 0, 1});
  std::map<LabelId, ArrowRewriteRule> rules;
  rules[0] = ArrowRewriteRule{">><", 0};
  rules[1] = ArrowRewriteRule{"<<<", 0};
  DiGraph out = RewriteArrows(path, rules);
  EXPECT_TRUE(IsTwoWayPath(out));
  EXPECT_TRUE(out.UsesSingleLabel());
  EXPECT_EQ(out.num_edges(), 12u);
}

TEST(ArrowRewrite, PreservesPolytreeShape) {
  DiGraph star = MakeOutStar(3, 0);
  std::map<LabelId, ArrowRewriteRule> rules;
  rules[0] = ArrowRewriteRule{">><", 0};
  DiGraph out = RewriteArrows(star, rules);
  EXPECT_TRUE(IsPolytree(out));
  EXPECT_FALSE(IsTwoWayPath(out));
}

TEST(ArrowRewrite, MissingRuleIsABug) {
  DiGraph g(2);
  AddEdgeOrDie(&g, 0, 1, 7);
  std::map<LabelId, ArrowRewriteRule> rules;
  rules[0] = ArrowRewriteRule{">", 0};
  EXPECT_THROW(RewriteArrows(g, rules), std::logic_error);
}

TEST(ArrowRewrite, ProbabilityMassPreservedPerGadget) {
  // The rewritten instance's worlds marginalize back to the original edge's
  // two outcomes: Pr(all gadget edges present) = p, and the query-relevant
  // structure only appears when the probabilistic step is present.
  ProbGraph g(2);
  AddEdgeOrDie(&g, 0, 1, 0, Rational(1, 4));
  std::map<LabelId, ArrowRewriteRule> rules;
  rules[0] = ArrowRewriteRule{">>>", 2};
  ProbGraph out = RewriteArrows(g, rules);
  // Query = the full gadget path →→→: present iff the probabilistic edge is.
  Result<Rational> p = SolveByWorldEnumeration(MakeOneWayPath(3), out);
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(*p, Rational(1, 4));
}

}  // namespace
}  // namespace phom
