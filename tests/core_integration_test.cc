#include <gtest/gtest.h>

#include "src/core/phom.h"
#include "src/hom/backtrack.h"
#include "src/reductions/edge_cover_reduction.h"
#include "src/reductions/pp2dnf_reduction.h"
#include "tests/test_util.h"

/// End-to-end suites crossing module boundaries: counting semantics,
/// Lemma 3.7, label restriction, the reductions run through the full solver,
/// and agreement between every applicable tractable engine on cells where
/// several apply at once.

namespace phom {
namespace {

// ---------------------------------------------------------------------------
// Counting view (all probabilities 1/2).
// ---------------------------------------------------------------------------

using test_util::CountWorldsByEnumeration;

TEST(Counting, MatchesEnumerationAcrossCells) {
  Rng rng(201);
  for (int trial = 0; trial < 60; ++trial) {
    DiGraph instance;
    switch (trial % 4) {
      case 0: instance = RandomTwoWayPath(&rng, rng.UniformInt(1, 8), 2); break;
      case 1: instance = RandomDownwardTree(&rng, rng.UniformInt(2, 9), 2); break;
      case 2: instance = RandomPolytree(&rng, rng.UniformInt(2, 9), 1); break;
      default: instance = RandomConnected(&rng, rng.UniformInt(2, 6), 2, 1);
    }
    DiGraph query = trial % 2 == 0
                        ? RandomOneWayPath(&rng, rng.UniformInt(1, 3), 2)
                        : RandomTwoWayPath(&rng, rng.UniformInt(1, 3), 1);
    Result<BigInt> counted = CountSatisfyingWorlds(query, instance);
    ASSERT_TRUE(counted.ok()) << counted.status().ToString();
    EXPECT_EQ(*counted, CountWorldsByEnumeration(query, instance)) << trial;
  }
}

TEST(Counting, PathOnPath) {
  // #subgraphs of →→→ containing →→: e0e1, e1e2, all three = 3 of 8... by
  // enumeration: masks {011,110,111} -> 3.
  EXPECT_EQ(*CountSatisfyingWorlds(MakeOneWayPath(2), MakeOneWayPath(3)),
            BigInt(3));
  EXPECT_EQ(*CountSatisfyingWorlds(MakeOneWayPath(1), MakeOneWayPath(1)),
            BigInt(1));
}

// ---------------------------------------------------------------------------
// Lemma 3.7: disconnected instances.
// ---------------------------------------------------------------------------

TEST(Lemma37, ManyComponentsCombineIndependently) {
  Rng rng(202);
  DiGraph query = MakeOneWayPath(2);
  // Build k single-chain components and check against the closed form.
  ProbGraph h(0);
  std::vector<Rational> expected_miss;
  for (int k = 0; k < 5; ++k) {
    VertexId a = h.AddVertex();
    VertexId b = h.AddVertex();
    VertexId c = h.AddVertex();
    Rational p1 = rng.NontrivialDyadicProbability(3);
    Rational p2 = rng.NontrivialDyadicProbability(3);
    AddEdgeOrDie(&h, a, b, 0, p1);
    AddEdgeOrDie(&h, b, c, 0, p2);
    expected_miss.push_back((p1 * p2).Complement());
  }
  Rational expected = Rational::One();
  for (const Rational& miss : expected_miss) expected *= miss;
  EXPECT_EQ(*SolveProbability(query, h), expected.Complement());
}

TEST(Lemma37, AgreesWithFallbackOnRandomForests) {
  Rng rng(203);
  for (int trial = 0; trial < 40; ++trial) {
    DiGraph shape = RandomDisjointUnion(&rng, 3, [&](Rng* r) {
      return RandomPolytree(r, 1 + r->UniformInt(1, 4), 1);
    });
    ProbGraph h = AttachRandomProbabilities(&rng, shape, 2);
    DiGraph query = MakeOneWayPath(rng.UniformInt(1, 2));
    SolveOptions force;
    force.force_algorithm = Algorithm::kFallback;
    EXPECT_EQ(*SolveProbability(query, h),
              *SolveProbability(query, h, force))
        << trial;
  }
}

// ---------------------------------------------------------------------------
// Label restriction.
// ---------------------------------------------------------------------------

TEST(LabelRestriction, IrrelevantLabelsNeverChangeTheAnswer) {
  Rng rng(204);
  for (int trial = 0; trial < 40; ++trial) {
    // Query over label 0 only; instance gets random label-1 edges added.
    DiGraph query = RandomOneWayPath(&rng, rng.UniformInt(1, 3), 1);
    DiGraph base = RandomPolytree(&rng, rng.UniformInt(2, 7), 1);
    ProbGraph h1 = AttachRandomProbabilities(&rng, base, 2);
    // Superimpose label-1 noise edges (fresh vertices to stay loop-free).
    ProbGraph h2 = h1;
    for (int i = 0; i < 4; ++i) {
      VertexId a = h2.AddVertex();
      VertexId b = static_cast<VertexId>(
          rng.UniformInt(0, h2.num_vertices() - 1));
      AddEdgeOrDie(&h2, a, b, 1, rng.NontrivialDyadicProbability(2));
    }
    EXPECT_EQ(*SolveProbability(query, h1), *SolveProbability(query, h2))
        << trial;
  }
}

// ---------------------------------------------------------------------------
// Reductions through the full solver (dispatch + fallback).
// ---------------------------------------------------------------------------

TEST(ReductionsEndToEnd, EdgeCoverThroughSolver) {
  Rng rng(205);
  BipartiteGraph bipartite = RandomBipartite(&rng, 2, 3, 0.5);
  if (bipartite.edges.size() > 7) bipartite.edges.resize(7);
  EdgeCoverReduction red = BuildEdgeCoverReductionLabeled(bipartite);
  Solver solver;
  Result<SolveResult> result = solver.Solve(red.query, red.instance);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_FALSE(result->analysis.tractable);  // Prop. 3.3 cell
  EXPECT_EQ(RecoverCount(result->probability, red.num_probabilistic_edges),
            CountEdgeCoversBruteForce(bipartite));
}

TEST(ReductionsEndToEnd, Pp2DnfThroughSolver) {
  Rng rng(206);
  Pp2Dnf formula = RandomPp2Dnf(&rng, 2, 2, 3);
  Pp2DnfReduction red = BuildPp2DnfReductionLabeled(formula);
  Solver solver;
  Result<SolveResult> result = solver.Solve(red.query, red.instance);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_FALSE(result->analysis.tractable);  // Prop. 4.1 cell
  EXPECT_EQ(RecoverCount(result->probability, red.num_probabilistic_edges),
            CountSatisfyingAssignments(formula));
}

// ---------------------------------------------------------------------------
// Multi-engine agreement on overlapping cells (parameterized).
// ---------------------------------------------------------------------------

class EngineAgreementTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(EngineAgreementTest, UnlabeledPathOn1wpInstance) {
  // A 1WP instance sits in 2WP ∩ DWT ∩ PT: Prop. 4.11, Prop. 4.10/3.6 and
  // Prop. 5.4 all apply and must agree (plus the fallback oracle).
  Rng rng(GetParam());
  ProbGraph h = AttachRandomProbabilities(
      &rng, RandomOneWayPath(&rng, rng.UniformInt(1, 12), 1), 3);
  DiGraph q = MakeOneWayPath(rng.UniformInt(1, 4));

  std::vector<Rational> answers;
  for (Algorithm algo : {Algorithm::kUnlabeledDwtInstance,
                         Algorithm::kUnlabeledPolytree,
                         Algorithm::kFallback}) {
    SolveOptions options;
    options.force_algorithm = algo;
    Result<Rational> p = SolveProbability(q, h, options);
    ASSERT_TRUE(p.ok()) << ToString(algo) << ": " << p.status().ToString();
    answers.push_back(*p);
  }
  // Dispatcher (will pick Prop. 4.11's route since the instance is a 2WP).
  answers.push_back(*SolveProbability(q, h));
  for (size_t i = 1; i < answers.size(); ++i) {
    EXPECT_EQ(answers[0], answers[i]) << "engine " << i;
  }
}

TEST_P(EngineAgreementTest, DwtLineageEngineAgrees) {
  Rng rng(GetParam() + 500);
  ProbGraph h = AttachRandomProbabilities(
      &rng, RandomDownwardTree(&rng, rng.UniformInt(2, 12), 2, 0.4), 2);
  std::vector<LabelId> pattern;
  for (int i = 0, m = rng.UniformInt(1, 4); i < m; ++i) {
    pattern.push_back(static_cast<LabelId>(rng.UniformInt(0, 1)));
  }
  DiGraph q = MakeLabeledPath(pattern);
  SolveOptions lineage;
  lineage.dwt_via_lineage = true;
  EXPECT_EQ(*SolveProbability(q, h), *SolveProbability(q, h, lineage));
}

INSTANTIATE_TEST_SUITE_P(Seeds, EngineAgreementTest,
                         ::testing::Range<uint64_t>(300, 316));

// ---------------------------------------------------------------------------
// Paper fixtures at the paper's own scale.
// ---------------------------------------------------------------------------

TEST(PaperFixtures, Figure5Construction) {
  // Γ from Figure 5: X = {x1, x2}, Y = {y1, y2, y3},
  // e1=(x1,y1) e2=(x1,y2) e3=(x2,y2) e4=(x2,y3).
  BipartiteGraph gamma;
  gamma.left_size = 2;
  gamma.right_size = 3;
  gamma.edges = {{0, 0}, {0, 1}, {1, 1}, {1, 2}};
  EdgeCoverReduction red = BuildEdgeCoverReductionLabeled(gamma);
  // Instance: C + Σ_j (l_j + 1 + r_j) + m C's. Query: one component per
  // vertex of Γ with i+2 edges for index i.
  EXPECT_TRUE(IsOneWayPath(red.instance.graph()));
  EXPECT_EQ(Classify(red.query).num_components, 5u);
  Result<Rational> prob = SolveProbability(red.query, red.instance);
  ASSERT_TRUE(prob.ok());
  // Edge covers of Γ: both x's and all three y's covered. y1 only via e1,
  // y3 only via e4 -> e1, e4 forced; y2 via e2 or e3 (x's then covered).
  // Subsets: {e1,e4} ∪ any non-empty subset of {e2,e3} -> 3 covers.
  EXPECT_EQ(RecoverCount(*prob, 4), BigInt(3));
}

TEST(PaperFixtures, Figure7And8AgreeWithEachOther) {
  Pp2Dnf example = test_util::MakePaperPp2Dnf();
  Pp2DnfReduction labeled = BuildPp2DnfReductionLabeled(example);
  Pp2DnfReduction unlabeled = BuildPp2DnfReductionUnlabeled(example);
  Rational p1 = *SolveProbability(labeled.query, labeled.instance);
  Rational p2 = *SolveProbability(unlabeled.query, unlabeled.instance);
  EXPECT_EQ(p1, p2);
  EXPECT_EQ(p1, Rational::Half());
}

}  // namespace
}  // namespace phom
