#include "src/util/rational.h"

#include <gtest/gtest.h>

#include <random>

namespace phom {
namespace {

TEST(Rational, NormalizationAndAccessors) {
  Rational r(6, 8);
  EXPECT_EQ(r.num(), BigInt(3));
  EXPECT_EQ(r.den(), BigInt(4));
  Rational neg(3, -9);
  EXPECT_EQ(neg.num(), BigInt(-1));
  EXPECT_EQ(neg.den(), BigInt(3));
  EXPECT_EQ(Rational(0, 17), Rational::Zero());
  EXPECT_EQ(Rational(0, 17).den(), BigInt(1));
}

TEST(Rational, ZeroDenominatorIsABug) {
  EXPECT_THROW(Rational(1, 0), std::logic_error);
}

TEST(Rational, Arithmetic) {
  Rational half = Rational::Half();
  Rational third(1, 3);
  EXPECT_EQ(half + third, Rational(5, 6));
  EXPECT_EQ(half - third, Rational(1, 6));
  EXPECT_EQ(half * third, Rational(1, 6));
  EXPECT_EQ(half / third, Rational(3, 2));
  EXPECT_EQ(-half, Rational(-1, 2));
  EXPECT_EQ(half.Complement(), Rational(1, 2));
  EXPECT_EQ(Rational(1, 4).Complement(), Rational(3, 4));
}

TEST(Rational, Comparisons) {
  EXPECT_LT(Rational(1, 3), Rational(1, 2));
  EXPECT_GT(Rational(2, 3), Rational(1, 2));
  EXPECT_LE(Rational(2, 4), Rational(1, 2));
  EXPECT_EQ(Rational(-1, 2).Compare(Rational(1, 2)), -1);
}

TEST(Rational, Pow) {
  EXPECT_EQ(Rational::Half().Pow(10), Rational(1, 1024));
  EXPECT_EQ(Rational(2, 3).Pow(0), Rational::One());
  EXPECT_EQ(Rational(2, 3).Pow(3), Rational(8, 27));
}

TEST(Rational, IsProbability) {
  EXPECT_TRUE(Rational::Zero().IsProbability());
  EXPECT_TRUE(Rational::One().IsProbability());
  EXPECT_TRUE(Rational(3, 7).IsProbability());
  EXPECT_FALSE(Rational(8, 7).IsProbability());
  EXPECT_FALSE(Rational(-1, 7).IsProbability());
}

TEST(Rational, FromStringForms) {
  EXPECT_EQ(*Rational::FromString("3/4"), Rational(3, 4));
  EXPECT_EQ(*Rational::FromString("-3/4"), Rational(-3, 4));
  EXPECT_EQ(*Rational::FromString("0.25"), Rational(1, 4));
  EXPECT_EQ(*Rational::FromString("-0.5"), Rational(-1, 2));
  EXPECT_EQ(*Rational::FromString("7"), Rational(7));
  EXPECT_EQ(*Rational::FromString("1.000"), Rational::One());
  EXPECT_EQ(*Rational::FromString("0.1"), Rational(1, 10));
  EXPECT_FALSE(Rational::FromString("").ok());
  EXPECT_FALSE(Rational::FromString("1/0").ok());
  EXPECT_FALSE(Rational::FromString("1.").ok());
  EXPECT_FALSE(Rational::FromString("a/b").ok());
}

TEST(Rational, ToStringAndDecimal) {
  EXPECT_EQ(Rational(3, 4).ToString(), "3/4");
  EXPECT_EQ(Rational(7).ToString(), "7");
  EXPECT_EQ(Rational(3, 4).ToDecimalString(3), "0.750");
  EXPECT_EQ(Rational(-1, 3).ToDecimalString(4), "-0.3333");
  EXPECT_EQ(Rational(287, 500).ToDecimalString(3), "0.574");
}

TEST(Rational, ToDouble) {
  EXPECT_DOUBLE_EQ(Rational(1, 2).ToDouble(), 0.5);
  EXPECT_DOUBLE_EQ(Rational(-7, 4).ToDouble(), -1.75);
  // Huge numerator/denominator still produce a sane ratio.
  Rational huge(BigInt::Pow2(1000) + BigInt(1), BigInt::Pow2(1001));
  EXPECT_NEAR(huge.ToDouble(), 0.5, 1e-9);
}

TEST(Rational, RandomFieldIdentities) {
  std::mt19937_64 rng(23);
  auto random_rational = [&rng] {
    int64_t num = static_cast<int64_t>(rng() % 2001) - 1000;
    int64_t den = static_cast<int64_t>(rng() % 1000) + 1;
    return Rational(num, den);
  };
  for (int trial = 0; trial < 500; ++trial) {
    Rational a = random_rational();
    Rational b = random_rational();
    Rational c = random_rational();
    EXPECT_EQ(a + b, b + a);
    EXPECT_EQ(a * b, b * a);
    EXPECT_EQ(a * (b + c), a * b + a * c);
    EXPECT_EQ((a + b) + c, a + (b + c));
    EXPECT_EQ(a - a, Rational::Zero());
    if (!b.is_zero()) {
      EXPECT_EQ(a / b * b, a);
    }
  }
}

TEST(Rational, ProbabilitySemantics) {
  // Complement chains used throughout the solver: 1 - prod(1 - p_i).
  std::vector<Rational> ps{Rational(1, 2), Rational(1, 4), Rational(3, 4)};
  Rational none = Rational::One();
  for (const Rational& p : ps) none *= p.Complement();
  EXPECT_EQ(none, Rational(3, 32));
  EXPECT_EQ(none.Complement(), Rational(29, 32));
}

}  // namespace
}  // namespace phom
