#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "src/core/engine.h"
#include "src/core/solver.h"
#include "src/graph/builders.h"
#include "src/graph/generators.h"
#include "tests/test_util.h"

/// Numeric-policy agreement across the seeded cross-check corpus (all four
/// instance classes): the double backend must track the exact Rational
/// backend within 1e-9 relative error, through auto dispatch and through
/// every forced engine that accepts the problem. Engine selection itself
/// must be backend-independent.

namespace phom {
namespace {

using test_util::CellClass;
using test_util::kCrosscheckSeedBase;
using test_util::MakeCrosscheckCase;
using test_util::ToString;

/// |approx - exact| <= 1e-9 * max(|exact|, 1e-9): relative error with an
/// absolute floor for answers at/near zero.
void ExpectClose(double approx, const Rational& exact, const char* context) {
  double e = exact.ToDouble();
  double tol = 1e-9 * std::max(std::abs(e), 1e-9);
  EXPECT_NEAR(approx, e, tol) << context;
}

class NumericBackendTest : public ::testing::TestWithParam<CellClass> {};

TEST_P(NumericBackendTest, DoubleAgreesWithExactAcrossCorpus) {
  CellClass cell = GetParam();
  // Offset 2000: an independent stream from the crosscheck suites, same
  // fixed seed base.
  Rng rng(kCrosscheckSeedBase + 2000 + static_cast<uint64_t>(cell));
  for (int trial = 0; trial < 60; ++trial) {
    test_util::CrosscheckCase c = MakeCrosscheckCase(cell, &rng);

    Result<SolveResult> exact = Solver().Solve(c.query, c.instance);
    ASSERT_TRUE(exact.ok())
        << ToString(cell) << " trial " << trial << ": "
        << exact.status().ToString();
    EXPECT_EQ(exact->numeric, NumericBackend::kExact);
    // probability_double is the rounded exact answer under kExact.
    EXPECT_EQ(exact->probability_double, exact->probability.ToDouble());

    SolveOptions approx_options;
    approx_options.numeric = NumericBackend::kDouble;
    Result<SolveResult> approx =
        Solver(approx_options).Solve(c.query, c.instance);
    ASSERT_TRUE(approx.ok()) << ToString(cell) << " trial " << trial;
    EXPECT_EQ(approx->numeric, NumericBackend::kDouble);
    // Both backends go through the same preparation and engine selection.
    EXPECT_EQ(approx->stats.engine, exact->stats.engine)
        << ToString(cell) << " trial " << trial;
    ExpectClose(approx->probability_double, exact->probability,
                ToString(cell));

    // The one-call double convenience agrees too.
    Result<double> convenience = SolveProbabilityDouble(c.query, c.instance);
    ASSERT_TRUE(convenience.ok());
    EXPECT_EQ(*convenience, approx->probability_double);

    // Forced engines: whenever an engine accepts the problem, its double
    // answer must track its exact answer.
    for (const Engine* engine : EngineRegistry::Global().engines()) {
      if (!engine->exact()) continue;  // Monte Carlo is not a fixed target
      SolveOptions force_exact;
      force_exact.force_engine = std::string(engine->name());
      Result<SolveResult> fe = Solver(force_exact).Solve(c.query, c.instance);
      if (!fe.ok()) continue;
      SolveOptions force_double = force_exact;
      force_double.numeric = NumericBackend::kDouble;
      Result<SolveResult> fd =
          Solver(force_double).Solve(c.query, c.instance);
      ASSERT_TRUE(fd.ok()) << ToString(cell) << " trial " << trial << " "
                           << engine->name();
      ExpectClose(fd->probability_double, fe->probability,
                  std::string(engine->name()).c_str());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Classes, NumericBackendTest,
                         ::testing::ValuesIn(test_util::AllCellClasses()),
                         [](const ::testing::TestParamInfo<CellClass>& info) {
                           switch (info.param) {
                             case CellClass::k2wp: return "TwoWayPath";
                             case CellClass::kDwt: return "DownwardTree";
                             case CellClass::kPolytree: return "Polytree";
                             case CellClass::kHardCell: return "HardCell";
                           }
                           return "Unknown";
                         });

}  // namespace
}  // namespace phom
