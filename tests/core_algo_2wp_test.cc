#include "src/core/algo_two_way_path.h"

#include <gtest/gtest.h>

#include "src/core/fallback.h"
#include "src/graph/builders.h"
#include "src/graph/generators.h"

namespace phom {
namespace {

TEST(Algo2wp, SingleEdgeQueryOnSingleEdgeInstance) {
  ProbGraph h(2);
  AddEdgeOrDie(&h, 0, 1, 0, Rational(1, 3));
  Rational p = *SolveConnectedOn2wpComponent(MakeOneWayPath(1), h);
  EXPECT_EQ(p, Rational(1, 3));
}

TEST(Algo2wp, PathQueryOnPathInstance) {
  // →→ on →→→ with probs 1/2 each: worlds containing 2 consecutive edges.
  ProbGraph h(4);
  for (int i = 0; i < 3; ++i) {
    AddEdgeOrDie(&h, i, i + 1, 0, Rational::Half());
  }
  Rational p = *SolveConnectedOn2wpComponent(MakeOneWayPath(2), h);
  // Pr(e0e1 or e1e2) = 1/4 + 1/4 - 1/8 = 3/8.
  EXPECT_EQ(p, Rational(3, 8));
}

TEST(Algo2wp, QueryLongerThanInstance) {
  ProbGraph h = ProbGraph::Certain(MakeOneWayPath(2));
  EXPECT_EQ(*SolveConnectedOn2wpComponent(MakeOneWayPath(3), h),
            Rational::Zero());
}

TEST(Algo2wp, OrientationSensitive) {
  // Query a->b<-c cannot match a one-way instance path of length 2... it can:
  // collapse c onto a. But ><> needs genuine two-wayness.
  ProbGraph oneway = ProbGraph::Certain(MakeOneWayPath(2));
  EXPECT_EQ(*SolveConnectedOn2wpComponent(MakeArrowPath("><"), oneway),
            Rational::One());
  EXPECT_EQ(*SolveConnectedOn2wpComponent(MakeArrowPath("><>"), oneway),
            Rational::One());
  // Query requiring a sink of in-degree 2 with distinct labels cannot
  // collapse: use labels.
  DiGraph q = MakeTwoWayPath({{0, true}, {1, false}});
  ProbGraph labeled_oneway = ProbGraph::Certain(MakeLabeledPath({0, 0}));
  EXPECT_EQ(*SolveConnectedOn2wpComponent(q, labeled_oneway),
            Rational::Zero());
}

TEST(Algo2wp, StarQueryCollapsesOntoOneEdge) {
  ProbGraph h(2);
  AddEdgeOrDie(&h, 0, 1, 0, Rational(2, 5));
  EXPECT_EQ(*SolveConnectedOn2wpComponent(MakeOutStar(5), h),
            Rational(2, 5));
}

TEST(Algo2wp, RejectsBadInputs) {
  ProbGraph star = ProbGraph::Certain(MakeOutStar(3));
  EXPECT_FALSE(
      SolveConnectedOn2wpComponent(MakeOneWayPath(1), star).ok());
  ProbGraph path = ProbGraph::Certain(MakeOneWayPath(3));
  DiGraph disconnected = DisjointUnion({MakeOneWayPath(1), MakeOneWayPath(1)});
  EXPECT_FALSE(SolveConnectedOn2wpComponent(disconnected, path).ok());
}

TEST(Algo2wp, LineageIsBetaAcyclic) {
  Rng rng(101);
  for (int trial = 0; trial < 40; ++trial) {
    ProbGraph h = AttachRandomProbabilities(
        &rng, RandomTwoWayPath(&rng, rng.UniformInt(1, 10), 2), 3);
    DiGraph q = RandomTwoWayPath(&rng, rng.UniformInt(1, 4), 2);
    MonotoneDnf lineage(0);
    Result<Rational> p =
        SolveConnectedOn2wpComponent(q, h, nullptr, &lineage);
    ASSERT_TRUE(p.ok());
    EXPECT_TRUE(lineage.IsBetaAcyclic()) << trial;
  }
}

TEST(Algo2wp, MatchesWorldEnumerationOnRandomInputs) {
  Rng rng(102);
  for (int trial = 0; trial < 150; ++trial) {
    ProbGraph h = AttachRandomProbabilities(
        &rng, RandomTwoWayPath(&rng, rng.UniformInt(1, 8), 2), 2, 0.25);
    DiGraph q = trial % 3 == 0
                    ? RandomDownwardTree(&rng, rng.UniformInt(2, 5), 2)
                    : RandomTwoWayPath(&rng, rng.UniformInt(1, 5), 2);
    TwoWayPathStats stats;
    Result<Rational> fast = SolveConnectedOn2wpComponent(q, h, &stats);
    ASSERT_TRUE(fast.ok());
    Rational brute = *SolveByWorldEnumeration(q, h);
    EXPECT_EQ(*fast, brute) << "trial " << trial;
  }
}

TEST(Algo2wp, TwoPointerStats) {
  // The sweep should do O(L) homomorphism tests, not O(L^2).
  Rng rng(103);
  ProbGraph h = AttachRandomProbabilities(
      &rng, RandomTwoWayPath(&rng, 60, 1), 3);
  TwoWayPathStats stats;
  ASSERT_TRUE(SolveConnectedOn2wpComponent(MakeOneWayPath(3), h, &stats).ok());
  EXPECT_LE(stats.hom_tests, 2 * 60 + 2u);
}

}  // namespace
}  // namespace phom
