#pragma once

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "src/core/engine.h"
#include "src/core/fallback.h"
#include "src/graph/builders.h"
#include "src/graph/digraph.h"
#include "src/graph/generators.h"
#include "src/graph/prob_graph.h"
#include "src/hom/backtrack.h"
#include "src/reductions/pp2dnf.h"
#include "src/util/bigint.h"
#include "src/util/rational.h"
#include "src/util/rng.h"

/// \file test_util.h
/// Shared fixtures and generators for the test suites: the paper's running
/// example (Figure 1 / Examples 2.1-2.2), the Figure 7/8 PP2DNF formula,
/// class-conditioned random graph generators spanning Tables 1-3, rational
/// helpers, an independent brute-force world counter, and the serve-layer
/// timing harness (a registry "gate" engine that parks workers on a latch
/// the test opens) shared by the async/degrade suites.

namespace phom::test_util {

/// Parses a decimal/fraction literal into an exact Rational, dying on
/// malformed input — test shorthand for *Rational::FromString(...).
inline Rational Q(std::string_view text) {
  Result<Rational> r = Rational::FromString(text);
  PHOM_CHECK_MSG(r.ok(), "bad rational literal in test");
  return *r;
}

/// The running example of the paper (Figure 1 / Examples 2.1-2.2).
/// Vertices: a=0, b=1, c=2, d=3. Labels: R=0, S=1.
/// Query: R(x,y) ∧ S(y,z) ∧ S(t,z), i.e. -R-> -S-> <-S-.
/// With S(b,c) at 0.7 and R-edges into b at 0.1 and 0.8, the paper's
/// computation gives 0.7 * (1 - 0.9 * 0.2) = 0.574 = 287/500.
struct PaperFigure1 {
  DiGraph query;
  ProbGraph instance;
  Rational expected;

  PaperFigure1() : query(4), instance(4), expected(287, 500) {
    AddEdgeOrDie(&query, 0, 1, 0);  // x -R-> y
    AddEdgeOrDie(&query, 1, 2, 1);  // y -S-> z
    AddEdgeOrDie(&query, 3, 2, 1);  // t -S-> z

    AddEdgeOrDie(&instance, 0, 1, 0, Rational(1, 10));  // R(a,b)
    AddEdgeOrDie(&instance, 3, 1, 0, Rational(4, 5));   // R(d,b)
    AddEdgeOrDie(&instance, 1, 2, 1, Rational(7, 10));  // S(b,c)
    AddEdgeOrDie(&instance, 0, 3, 0, Rational::One());  // R(a,d)
    AddEdgeOrDie(&instance, 2, 3, 0, Rational(1, 20));  // R(c,d)
    AddEdgeOrDie(&instance, 2, 0, 1, Rational(1, 10));  // S(c,a)
  }
};

/// A three-component serving instance mixing classes: a 2WP, a DWT and a
/// dense connected component (#P-hard cell → per-component exact fallback).
/// Shared by the serve-layer suites (executor, async) so their corpora and
/// determinism baselines agree.
inline ProbGraph MixedServeInstance(Rng* rng) {
  // Kept small (~10 edges total): the hard disconnected query in
  // MixedServeQueries routes through whole-instance world enumeration,
  // which is 2^edges — this corpus must stay tier-1 fast.
  DiGraph shape = DisjointUnion({
      RandomTwoWayPath(rng, 4, 2),
      RandomDownwardTree(rng, 4, 2, 0.4),
      RandomConnected(rng, 4, 1, 2),
  });
  return AttachRandomProbabilities(rng, std::move(shape), 3);
}

/// A batch touching every dispatch shape: componentwise connected queries,
/// whole-forest kernels, immediate answers, and a hard disconnected query.
inline std::vector<DiGraph> MixedServeQueries(Rng* rng) {
  std::vector<DiGraph> queries;
  queries.push_back(MakeLabeledPath({0}));
  queries.push_back(MakeLabeledPath({1, 0}));
  queries.push_back(MakeLabeledPath({0, 1, 0}));
  queries.push_back(RandomTwoWayPath(rng, 2, 2));
  queries.push_back(DiGraph(3));  // edgeless: immediate answer
  queries.push_back(
      DisjointUnion({MakeLabeledPath({0}), MakeLabeledPath({1})}));  // hard
  queries.push_back(MakeOneWayPath(2));  // single label: unlabeled collapse
  return queries;
}

/// Figure 7/8's PP2DNF formula X1Y2 ∨ X1Y1 ∨ X2Y2 (0-based pairs); it has
/// exactly 8 satisfying assignments over its 4 variables.
inline Pp2Dnf MakePaperPp2Dnf() {
  Pp2Dnf f;
  f.num_x = 2;
  f.num_y = 2;
  f.clauses = {{0, 1}, {0, 0}, {1, 1}};
  return f;
}

/// Graph classes of Tables 1-3 (and their ⊔-closures) for class-conditioned
/// random generation of queries and instances.
enum class GraphClass {
  k1wp,
  k2wp,
  kDwt,
  kPt,
  kConn,
  kU1wp,
  kU2wp,
  kUDwt,
  kUPt,
};

inline const std::vector<GraphClass>& AllGraphClasses() {
  static const std::vector<GraphClass> kAll = {
      GraphClass::k1wp, GraphClass::k2wp,  GraphClass::kDwt,
      GraphClass::kPt,  GraphClass::kConn, GraphClass::kU1wp,
      GraphClass::kU2wp, GraphClass::kUDwt, GraphClass::kUPt};
  return kAll;
}

/// Random member of the class; `size` scales edges/vertices, labels are
/// uniform in [0, labels).
inline DiGraph MakeClassGraph(GraphClass kind, Rng* rng, size_t size,
                              size_t labels) {
  switch (kind) {
    case GraphClass::k1wp: return RandomOneWayPath(rng, size, labels);
    case GraphClass::k2wp: return RandomTwoWayPath(rng, size, labels);
    case GraphClass::kDwt:
      return RandomDownwardTree(rng, size + 1, labels, 0.4);
    case GraphClass::kPt: return RandomPolytree(rng, size + 1, labels);
    case GraphClass::kConn: return RandomConnected(rng, size + 1, 2, labels);
    case GraphClass::kU1wp:
      return RandomDisjointUnion(rng, 2, [&](Rng* r) {
        return RandomOneWayPath(r, 1 + size / 2, labels);
      });
    case GraphClass::kU2wp:
      return RandomDisjointUnion(rng, 2, [&](Rng* r) {
        return RandomTwoWayPath(r, 1 + size / 2, labels);
      });
    case GraphClass::kUDwt:
      return RandomDisjointUnion(rng, 2, [&](Rng* r) {
        return RandomDownwardTree(r, 2 + size / 2, labels, 0.4);
      });
    case GraphClass::kUPt:
      return RandomDisjointUnion(rng, 2, [&](Rng* r) {
        return RandomPolytree(r, 2 + size / 2, labels);
      });
  }
  return DiGraph(1);
}

/// The four dichotomy cells the cross-check corpus conditions on: three
/// PTIME cells (one per tractable algorithm family) and one #P-hard cell.
enum class CellClass { k2wp, kDwt, kPolytree, kHardCell };

inline const char* ToString(CellClass c) {
  switch (c) {
    case CellClass::k2wp: return "2WP";
    case CellClass::kDwt: return "DWT";
    case CellClass::kPolytree: return "polytree";
    case CellClass::kHardCell: return "hard-cell";
  }
  return "?";
}

inline const std::vector<CellClass>& AllCellClasses() {
  static const std::vector<CellClass> kAll = {
      CellClass::k2wp, CellClass::kDwt, CellClass::kPolytree,
      CellClass::kHardCell};
  return kAll;
}

struct CrosscheckCase {
  DiGraph query;
  ProbGraph instance;
  /// The class guarantees tractability (or, for the hard cell, hardness by
  /// construction), so the dispatcher's analysis is asserted per case.
  bool expect_tractable = false;

  CrosscheckCase() : query(0), instance(0) {}
};

/// Seed base of the cross-check corpus (PODS 2017, fixed forever). Tests
/// deriving per-class streams use kCrosscheckSeedBase + offsets.
constexpr uint64_t kCrosscheckSeedBase = 20170514;

/// Class-conditioned generators for the cross-check corpus. Instances stay
/// small enough (≤ 12 edges) that the 2^m world enumeration oracle is
/// instant.
inline CrosscheckCase MakeCrosscheckCase(CellClass cell, Rng* rng) {
  CrosscheckCase out;
  switch (cell) {
    case CellClass::k2wp: {
      // Any connected query on a 2WP instance is PTIME (Prop. 4.11).
      size_t labels = static_cast<size_t>(rng->UniformInt(1, 2));
      out.query = RandomTwoWayPath(rng, rng->UniformInt(1, 3), labels);
      out.instance = AttachRandomProbabilities(
          rng, RandomTwoWayPath(rng, rng->UniformInt(2, 10), labels), 3);
      out.expect_tractable = true;
      break;
    }
    case CellClass::kDwt: {
      // Labeled 1WP queries on DWT instances are PTIME (Prop. 4.10).
      std::vector<LabelId> pattern;
      for (int i = 0, m = rng->UniformInt(1, 3); i < m; ++i) {
        pattern.push_back(static_cast<LabelId>(rng->UniformInt(0, 1)));
      }
      out.query = MakeLabeledPath(pattern);
      out.instance = AttachRandomProbabilities(
          rng, RandomDownwardTree(rng, rng->UniformInt(3, 11), 2, 0.4), 3);
      out.expect_tractable = true;
      break;
    }
    case CellClass::kPolytree: {
      // Unlabeled DWT queries collapse to a 1WP (Prop. 5.5) and are then
      // PTIME on polytree instances via the tree-automaton route
      // (Prop. 5.4); general polytree queries on polytree instances are
      // #P-hard (Prop. 5.6), so the class conditions on DWT queries.
      out.query = RandomDownwardTree(rng, rng->UniformInt(2, 5), 1, 0.5);
      out.instance = AttachRandomProbabilities(
          rng, RandomPolytree(rng, rng->UniformInt(3, 10), 1), 3);
      out.expect_tractable = true;
      break;
    }
    case CellClass::kHardCell: {
      // Disconnected two-label query (an R-path ⊔ an S-path) on an instance
      // containing both labels: the Prop. 3.3 #P-hard cell. No collapse
      // applies (two labels, no homomorphism between the components), so the
      // dispatcher must route through the exact exponential fallback.
      std::vector<LabelId> r_part(rng->UniformInt(1, 2), 0);
      std::vector<LabelId> s_part(rng->UniformInt(1, 2), 1);
      out.query =
          DisjointUnion({MakeLabeledPath(r_part), MakeLabeledPath(s_part)});
      DiGraph shape = RandomTwoWayPath(rng, rng->UniformInt(3, 9), 2);
      // Force both labels to appear so the answer is not trivially zero.
      DiGraph relabeled(shape.num_vertices());
      for (size_t e = 0; e < shape.num_edges(); ++e) {
        Edge edge = shape.edge(static_cast<EdgeId>(e));
        if (e == 0) edge.label = 0;
        if (e + 1 == shape.num_edges()) edge.label = 1;
        AddEdgeOrDie(&relabeled, edge.src, edge.dst, edge.label);
      }
      out.instance = AttachRandomProbabilities(rng, std::move(relabeled), 3);
      out.expect_tractable = false;
      break;
    }
  }
  return out;
}

/// A Prop. 3.3 hard cell whose exact solve enumerates 2^edges worlds while
/// a Monte Carlo estimate needs only its sample budget: a disconnected
/// R ⊔ S query over a connected 2-label instance whose `edges` edges are
/// all uncertain. The first/last edges are forced to labels 0/1 so the
/// full world has a match while the empty world has none — neither of the
/// world-enumeration short-circuits fires, and the loop really runs.
/// Shared by the degradation test suites and bench_serve_degrade (the
/// bench must measure exactly the workload the tests pin down).
struct HardCellEnumerationCase {
  DiGraph query;
  ProbGraph instance;

  explicit HardCellEnumerationCase(Rng* rng, size_t edges = 20)
      : query(DisjointUnion({MakeLabeledPath({0}), MakeLabeledPath({1})})),
        instance(0) {
    size_t vertices = edges / 2 + 2;
    DiGraph shape = RandomConnected(rng, vertices, edges - (vertices - 1), 2);
    DiGraph relabeled(shape.num_vertices());
    for (EdgeId e = 0; e < shape.num_edges(); ++e) {
      Edge edge = shape.edge(e);
      if (e == 0) edge.label = 0;
      if (e + 1 == shape.num_edges()) edge.label = 1;
      AddEdgeOrDie(&relabeled, edge.src, edge.dst, edge.label);
    }
    std::vector<Rational> probs(relabeled.num_edges(), Rational(1, 3));
    instance = ProbGraph(relabeled, std::move(probs));
  }
};

// ---------------------------------------------------------------------------
// The serve-layer timing harness: a deterministic "slow" engine whose Solve
// blocks on a process-wide gate until the test opens it. Forced per request
// via overrides.force_engine, so a test controls exactly when a worker is
// busy (register-before-serve: registration happens on first use, before
// any pool touches the registry).
// ---------------------------------------------------------------------------

struct Gate {
  std::mutex mu;
  std::condition_variable cv;
  int entered = 0;    ///< guarded by mu
  bool open = false;  ///< guarded by mu

  void Enter() {
    std::unique_lock<std::mutex> lock(mu);
    ++entered;
    cv.notify_all();
    cv.wait(lock, [this] { return open; });
  }
  void AwaitEntered(int n) {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [this, n] { return entered >= n; });
  }
  void Open() {
    {
      std::lock_guard<std::mutex> lock(mu);
      open = true;
    }
    cv.notify_all();
  }
  void Reset() {
    std::lock_guard<std::mutex> lock(mu);
    open = false;
    entered = 0;
  }
};

/// The per-binary gate instance (leaked intentionally: engines registered
/// in the global registry may outlive static teardown order).
inline Gate* TestGate() {
  static Gate* gate = new Gate();
  return gate;
}

/// Parks on TestGate(), then answers 1/2 in the requested backend.
class GateEngine : public Engine {
 public:
  explicit GateEngine(std::string name) : name_(std::move(name)) {}
  std::string_view name() const override { return name_; }
  Algorithm algorithm() const override { return Algorithm::kFallback; }
  bool exact() const override { return false; }
  bool Applies(const CaseAnalysis&) const override { return true; }
  bool AutoMatch(const CaseAnalysis&) const override { return false; }
  Result<EngineAnswer> Solve(const PreparedProblem&,
                             const SolveOptions& options,
                             SolveStats*) const override {
    TestGate()->Enter();
    EngineAnswer out;
    out.backend = options.numeric;
    out.approx = 0.5;
    if (options.numeric == NumericBackend::kExact) out.exact = Rational(1, 2);
    return out;
  }

 private:
  std::string name_;
};

/// Registers a GateEngine under `name`, at most once per name.
inline void EnsureGateEngineRegistered(const std::string& name) {
  static std::mutex* mu = new std::mutex();
  static std::set<std::string>* registered = new std::set<std::string>();
  std::lock_guard<std::mutex> lock(*mu);
  if (registered->insert(name).second) {
    EngineRegistry::Global().Register(std::make_unique<GateEngine>(name));
  }
}

/// Opens the gate on scope exit so a failing ASSERT cannot leave a worker
/// parked forever (declare AFTER the executor: destroyed first, the
/// executor's draining destructor then finds the gate open).
struct GateOpener {
  ~GateOpener() { TestGate()->Open(); }
};

/// Independent brute-force oracle: counts the subgraphs of `instance` that
/// `query` maps into by enumerating all 2^edges edge subsets directly — no
/// shared code with the solver's own fallback beyond the homomorphism test.
inline BigInt CountWorldsByEnumeration(const DiGraph& query,
                                       const DiGraph& instance) {
  size_t m = instance.num_edges();
  PHOM_CHECK(m <= 20);
  BigInt count(0);
  for (uint64_t mask = 0; mask < (uint64_t{1} << m); ++mask) {
    DiGraph world(instance.num_vertices());
    for (size_t e = 0; e < m; ++e) {
      if ((mask >> e) & 1) {
        const Edge& edge = instance.edge(e);
        AddEdgeOrDie(&world, edge.src, edge.dst, edge.label);
      }
    }
    if (*HasHomomorphism(query, world)) count += BigInt(1);
  }
  return count;
}

/// Exact UCQ oracle, sharing no code with the lifted engine: enumerates all
/// 2^edges worlds of `instance` directly and sums the probability of every
/// world that ANY disjunct maps into. The weight of a world multiplies
/// π(e) / 1−π(e) per kept/dropped edge in exact rationals, so the result is
/// the exact union probability whatever the disjuncts' overlap structure.
inline Rational UcqProbabilityByEnumeration(
    const std::vector<DiGraph>& disjuncts, const ProbGraph& instance) {
  const DiGraph& g = instance.graph();
  const size_t m = g.num_edges();
  PHOM_CHECK(m <= 20);
  Rational total = Rational::Zero();
  for (uint64_t mask = 0; mask < (uint64_t{1} << m); ++mask) {
    Rational weight = Rational::One();
    DiGraph world(g.num_vertices());
    for (size_t e = 0; e < m; ++e) {
      const Rational& p = instance.prob(static_cast<EdgeId>(e));
      if ((mask >> e) & 1) {
        weight *= p;
        const Edge& edge = g.edge(static_cast<EdgeId>(e));
        AddEdgeOrDie(&world, edge.src, edge.dst, edge.label);
      } else {
        weight *= p.Complement();
      }
    }
    if (weight.is_zero()) continue;
    for (const DiGraph& d : disjuncts) {
      if (*HasHomomorphism(d, world)) {
        total += weight;
        break;
      }
    }
  }
  return total;
}

struct UcqCrosscheckCase {
  Ucq ucq;
  ProbGraph instance;

  UcqCrosscheckCase() : instance(0) {}
};

/// Class-conditioned UCQ corpus maker: 1–3 small disjuncts over 2 labels
/// spanning the dichotomy's query classes, on a small 2-label instance with
/// both labels forced present (≤ 9 edges, so the world-enumeration oracle is
/// instant). The mix deliberately produces liftable unions (label-disjoint
/// disjuncts over PTIME cells), inclusion–exclusion plans (overlapping
/// labels) and not-liftable verdicts (#P-hard units) alike — the crosscheck
/// suites assert exact agreement with UcqProbabilityByEnumeration on all of
/// them, whatever the verdict.
inline UcqCrosscheckCase MakeUcqCrosscheckCase(Rng* rng) {
  UcqCrosscheckCase out;
  const size_t disjuncts = static_cast<size_t>(rng->UniformInt(1, 3));
  const std::vector<phom::GraphClass> classes = {
      phom::GraphClass::kOneWayPath, phom::GraphClass::kTwoWayPath,
      phom::GraphClass::kDownwardTree, phom::GraphClass::kConnected};
  out.ucq = RandomUcq(rng, disjuncts, classes,
                      static_cast<size_t>(rng->UniformInt(1, 3)), 2);
  DiGraph shape = RandomTwoWayPath(rng, rng->UniformInt(3, 9), 2);
  // Force both labels to appear so answers are rarely trivially zero.
  DiGraph relabeled(shape.num_vertices());
  for (EdgeId e = 0; e < shape.num_edges(); ++e) {
    Edge edge = shape.edge(e);
    if (e == 0) edge.label = 0;
    if (e + 1 == shape.num_edges()) edge.label = 1;
    AddEdgeOrDie(&relabeled, edge.src, edge.dst, edge.label);
  }
  out.instance = AttachRandomProbabilities(rng, std::move(relabeled), 3);
  return out;
}

}  // namespace phom::test_util
