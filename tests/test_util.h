#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "src/core/fallback.h"
#include "src/graph/builders.h"
#include "src/graph/digraph.h"
#include "src/graph/generators.h"
#include "src/graph/prob_graph.h"
#include "src/hom/backtrack.h"
#include "src/reductions/pp2dnf.h"
#include "src/util/bigint.h"
#include "src/util/rational.h"
#include "src/util/rng.h"

/// \file test_util.h
/// Shared fixtures and generators for the test suites: the paper's running
/// example (Figure 1 / Examples 2.1-2.2), the Figure 7/8 PP2DNF formula,
/// class-conditioned random graph generators spanning Tables 1-3, rational
/// helpers, and an independent brute-force world counter.

namespace phom::test_util {

/// Parses a decimal/fraction literal into an exact Rational, dying on
/// malformed input — test shorthand for *Rational::FromString(...).
inline Rational Q(std::string_view text) {
  Result<Rational> r = Rational::FromString(text);
  PHOM_CHECK_MSG(r.ok(), "bad rational literal in test");
  return *r;
}

/// The running example of the paper (Figure 1 / Examples 2.1-2.2).
/// Vertices: a=0, b=1, c=2, d=3. Labels: R=0, S=1.
/// Query: R(x,y) ∧ S(y,z) ∧ S(t,z), i.e. -R-> -S-> <-S-.
/// With S(b,c) at 0.7 and R-edges into b at 0.1 and 0.8, the paper's
/// computation gives 0.7 * (1 - 0.9 * 0.2) = 0.574 = 287/500.
struct PaperFigure1 {
  DiGraph query;
  ProbGraph instance;
  Rational expected;

  PaperFigure1() : query(4), instance(4), expected(287, 500) {
    AddEdgeOrDie(&query, 0, 1, 0);  // x -R-> y
    AddEdgeOrDie(&query, 1, 2, 1);  // y -S-> z
    AddEdgeOrDie(&query, 3, 2, 1);  // t -S-> z

    AddEdgeOrDie(&instance, 0, 1, 0, Rational(1, 10));  // R(a,b)
    AddEdgeOrDie(&instance, 3, 1, 0, Rational(4, 5));   // R(d,b)
    AddEdgeOrDie(&instance, 1, 2, 1, Rational(7, 10));  // S(b,c)
    AddEdgeOrDie(&instance, 0, 3, 0, Rational::One());  // R(a,d)
    AddEdgeOrDie(&instance, 2, 3, 0, Rational(1, 20));  // R(c,d)
    AddEdgeOrDie(&instance, 2, 0, 1, Rational(1, 10));  // S(c,a)
  }
};

/// Figure 7/8's PP2DNF formula X1Y2 ∨ X1Y1 ∨ X2Y2 (0-based pairs); it has
/// exactly 8 satisfying assignments over its 4 variables.
inline Pp2Dnf MakePaperPp2Dnf() {
  Pp2Dnf f;
  f.num_x = 2;
  f.num_y = 2;
  f.clauses = {{0, 1}, {0, 0}, {1, 1}};
  return f;
}

/// Graph classes of Tables 1-3 (and their ⊔-closures) for class-conditioned
/// random generation of queries and instances.
enum class GraphClass {
  k1wp,
  k2wp,
  kDwt,
  kPt,
  kConn,
  kU1wp,
  kU2wp,
  kUDwt,
  kUPt,
};

inline const std::vector<GraphClass>& AllGraphClasses() {
  static const std::vector<GraphClass> kAll = {
      GraphClass::k1wp, GraphClass::k2wp,  GraphClass::kDwt,
      GraphClass::kPt,  GraphClass::kConn, GraphClass::kU1wp,
      GraphClass::kU2wp, GraphClass::kUDwt, GraphClass::kUPt};
  return kAll;
}

/// Random member of the class; `size` scales edges/vertices, labels are
/// uniform in [0, labels).
inline DiGraph MakeClassGraph(GraphClass kind, Rng* rng, size_t size,
                              size_t labels) {
  switch (kind) {
    case GraphClass::k1wp: return RandomOneWayPath(rng, size, labels);
    case GraphClass::k2wp: return RandomTwoWayPath(rng, size, labels);
    case GraphClass::kDwt:
      return RandomDownwardTree(rng, size + 1, labels, 0.4);
    case GraphClass::kPt: return RandomPolytree(rng, size + 1, labels);
    case GraphClass::kConn: return RandomConnected(rng, size + 1, 2, labels);
    case GraphClass::kU1wp:
      return RandomDisjointUnion(rng, 2, [&](Rng* r) {
        return RandomOneWayPath(r, 1 + size / 2, labels);
      });
    case GraphClass::kU2wp:
      return RandomDisjointUnion(rng, 2, [&](Rng* r) {
        return RandomTwoWayPath(r, 1 + size / 2, labels);
      });
    case GraphClass::kUDwt:
      return RandomDisjointUnion(rng, 2, [&](Rng* r) {
        return RandomDownwardTree(r, 2 + size / 2, labels, 0.4);
      });
    case GraphClass::kUPt:
      return RandomDisjointUnion(rng, 2, [&](Rng* r) {
        return RandomPolytree(r, 2 + size / 2, labels);
      });
  }
  return DiGraph(1);
}

/// Independent brute-force oracle: counts the subgraphs of `instance` that
/// `query` maps into by enumerating all 2^edges edge subsets directly — no
/// shared code with the solver's own fallback beyond the homomorphism test.
inline BigInt CountWorldsByEnumeration(const DiGraph& query,
                                       const DiGraph& instance) {
  size_t m = instance.num_edges();
  PHOM_CHECK(m <= 20);
  BigInt count(0);
  for (uint64_t mask = 0; mask < (uint64_t{1} << m); ++mask) {
    DiGraph world(instance.num_vertices());
    for (size_t e = 0; e < m; ++e) {
      if ((mask >> e) & 1) {
        const Edge& edge = instance.edge(e);
        AddEdgeOrDie(&world, edge.src, edge.dst, edge.label);
      }
    }
    if (*HasHomomorphism(query, world)) count += BigInt(1);
  }
  return count;
}

}  // namespace phom::test_util
